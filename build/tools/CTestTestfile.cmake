# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/tunekit_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/tunekit_cli" "info" "--app" "tddft:cs1")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/tunekit_cli" "analyze" "--app" "synth:case3" "--cutoff" "0.25" "--variations" "50")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/tunekit_cli" "plan" "--app" "tddft:cs2" "--cutoff" "0.10")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "/root/repo/build/tools/tunekit_cli" "tune" "--app" "synth:case1" "--cutoff" "0.25" "--variations" "30" "--evals-per-param" "3" "--min-evals" "6" "--seed" "7")
set_tests_properties(cli_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_minislater_info "/root/repo/build/tools/tunekit_cli" "info" "--app" "minislater")
set_tests_properties(cli_minislater_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_app "/root/repo/build/tools/tunekit_cli" "plan" "--app" "nope:x")
set_tests_properties(cli_bad_app PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
