file(REMOVE_RECURSE
  "CMakeFiles/tunekit_cli.dir/tunekit_cli.cpp.o"
  "CMakeFiles/tunekit_cli.dir/tunekit_cli.cpp.o.d"
  "tunekit_cli"
  "tunekit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunekit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
