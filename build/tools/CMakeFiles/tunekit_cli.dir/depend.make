# Empty dependencies file for tunekit_cli.
# This may be replaced when dependencies are built.
