file(REMOVE_RECURSE
  "CMakeFiles/fig2_dag_case3.dir/fig2_dag_case3.cpp.o"
  "CMakeFiles/fig2_dag_case3.dir/fig2_dag_case3.cpp.o.d"
  "fig2_dag_case3"
  "fig2_dag_case3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dag_case3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
