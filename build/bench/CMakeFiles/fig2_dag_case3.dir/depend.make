# Empty dependencies file for fig2_dag_case3.
# This may be replaced when dependencies are built.
