# Empty dependencies file for table5_sensitivity_cs1.
# This may be replaced when dependencies are built.
