file(REMOVE_RECURSE
  "CMakeFiles/table5_sensitivity_cs1.dir/table5_sensitivity_cs1.cpp.o"
  "CMakeFiles/table5_sensitivity_cs1.dir/table5_sensitivity_cs1.cpp.o.d"
  "table5_sensitivity_cs1"
  "table5_sensitivity_cs1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_sensitivity_cs1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
