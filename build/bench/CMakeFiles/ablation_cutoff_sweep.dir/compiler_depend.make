# Empty compiler generated dependencies file for ablation_cutoff_sweep.
# This may be replaced when dependencies are built.
