file(REMOVE_RECURSE
  "CMakeFiles/ablation_cutoff_sweep.dir/ablation_cutoff_sweep.cpp.o"
  "CMakeFiles/ablation_cutoff_sweep.dir/ablation_cutoff_sweep.cpp.o.d"
  "ablation_cutoff_sweep"
  "ablation_cutoff_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cutoff_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
