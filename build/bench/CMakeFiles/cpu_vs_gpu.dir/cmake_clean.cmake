file(REMOVE_RECURSE
  "CMakeFiles/cpu_vs_gpu.dir/cpu_vs_gpu.cpp.o"
  "CMakeFiles/cpu_vs_gpu.dir/cpu_vs_gpu.cpp.o.d"
  "cpu_vs_gpu"
  "cpu_vs_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_vs_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
