# Empty compiler generated dependencies file for cpu_vs_gpu.
# This may be replaced when dependencies are built.
