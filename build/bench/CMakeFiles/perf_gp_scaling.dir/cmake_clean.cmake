file(REMOVE_RECURSE
  "CMakeFiles/perf_gp_scaling.dir/perf_gp_scaling.cpp.o"
  "CMakeFiles/perf_gp_scaling.dir/perf_gp_scaling.cpp.o.d"
  "perf_gp_scaling"
  "perf_gp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_gp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
