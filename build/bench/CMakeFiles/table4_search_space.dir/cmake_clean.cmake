file(REMOVE_RECURSE
  "CMakeFiles/table4_search_space.dir/table4_search_space.cpp.o"
  "CMakeFiles/table4_search_space.dir/table4_search_space.cpp.o.d"
  "table4_search_space"
  "table4_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
