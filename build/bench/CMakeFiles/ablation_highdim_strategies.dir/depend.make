# Empty dependencies file for ablation_highdim_strategies.
# This may be replaced when dependencies are built.
