file(REMOVE_RECURSE
  "CMakeFiles/ablation_highdim_strategies.dir/ablation_highdim_strategies.cpp.o"
  "CMakeFiles/ablation_highdim_strategies.dir/ablation_highdim_strategies.cpp.o.d"
  "ablation_highdim_strategies"
  "ablation_highdim_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_highdim_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
