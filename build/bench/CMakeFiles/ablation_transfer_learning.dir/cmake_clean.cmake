file(REMOVE_RECURSE
  "CMakeFiles/ablation_transfer_learning.dir/ablation_transfer_learning.cpp.o"
  "CMakeFiles/ablation_transfer_learning.dir/ablation_transfer_learning.cpp.o.d"
  "ablation_transfer_learning"
  "ablation_transfer_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfer_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
