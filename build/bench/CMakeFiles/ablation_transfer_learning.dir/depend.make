# Empty dependencies file for ablation_transfer_learning.
# This may be replaced when dependencies are built.
