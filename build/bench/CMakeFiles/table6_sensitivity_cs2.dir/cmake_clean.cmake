file(REMOVE_RECURSE
  "CMakeFiles/table6_sensitivity_cs2.dir/table6_sensitivity_cs2.cpp.o"
  "CMakeFiles/table6_sensitivity_cs2.dir/table6_sensitivity_cs2.cpp.o.d"
  "table6_sensitivity_cs2"
  "table6_sensitivity_cs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sensitivity_cs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
