# Empty compiler generated dependencies file for table6_sensitivity_cs2.
# This may be replaced when dependencies are built.
