file(REMOVE_RECURSE
  "CMakeFiles/table1_synthetic_defs.dir/table1_synthetic_defs.cpp.o"
  "CMakeFiles/table1_synthetic_defs.dir/table1_synthetic_defs.cpp.o.d"
  "table1_synthetic_defs"
  "table1_synthetic_defs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_synthetic_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
