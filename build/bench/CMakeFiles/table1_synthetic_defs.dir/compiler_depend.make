# Empty compiler generated dependencies file for table1_synthetic_defs.
# This may be replaced when dependencies are built.
