# Empty dependencies file for table2_synth_sensitivity.
# This may be replaced when dependencies are built.
