file(REMOVE_RECURSE
  "CMakeFiles/table2_synth_sensitivity.dir/table2_synth_sensitivity.cpp.o"
  "CMakeFiles/table2_synth_sensitivity.dir/table2_synth_sensitivity.cpp.o.d"
  "table2_synth_sensitivity"
  "table2_synth_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_synth_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
