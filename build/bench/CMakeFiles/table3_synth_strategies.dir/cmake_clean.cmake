file(REMOVE_RECURSE
  "CMakeFiles/table3_synth_strategies.dir/table3_synth_strategies.cpp.o"
  "CMakeFiles/table3_synth_strategies.dir/table3_synth_strategies.cpp.o.d"
  "table3_synth_strategies"
  "table3_synth_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_synth_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
