# Empty compiler generated dependencies file for table3_synth_strategies.
# This may be replaced when dependencies are built.
