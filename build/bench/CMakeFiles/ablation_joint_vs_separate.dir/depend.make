# Empty dependencies file for ablation_joint_vs_separate.
# This may be replaced when dependencies are built.
