file(REMOVE_RECURSE
  "CMakeFiles/ablation_joint_vs_separate.dir/ablation_joint_vs_separate.cpp.o"
  "CMakeFiles/ablation_joint_vs_separate.dir/ablation_joint_vs_separate.cpp.o.d"
  "ablation_joint_vs_separate"
  "ablation_joint_vs_separate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_joint_vs_separate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
