file(REMOVE_RECURSE
  "CMakeFiles/ablation_variations.dir/ablation_variations.cpp.o"
  "CMakeFiles/ablation_variations.dir/ablation_variations.cpp.o.d"
  "ablation_variations"
  "ablation_variations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
