# Empty compiler generated dependencies file for ablation_acquisitions.
# This may be replaced when dependencies are built.
