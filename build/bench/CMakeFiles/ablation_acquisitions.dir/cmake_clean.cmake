file(REMOVE_RECURSE
  "CMakeFiles/ablation_acquisitions.dir/ablation_acquisitions.cpp.o"
  "CMakeFiles/ablation_acquisitions.dir/ablation_acquisitions.cpp.o.d"
  "ablation_acquisitions"
  "ablation_acquisitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_acquisitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
