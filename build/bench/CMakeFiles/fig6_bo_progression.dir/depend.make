# Empty dependencies file for fig6_bo_progression.
# This may be replaced when dependencies are built.
