file(REMOVE_RECURSE
  "CMakeFiles/fig6_bo_progression.dir/fig6_bo_progression.cpp.o"
  "CMakeFiles/fig6_bo_progression.dir/fig6_bo_progression.cpp.o.d"
  "fig6_bo_progression"
  "fig6_bo_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bo_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
