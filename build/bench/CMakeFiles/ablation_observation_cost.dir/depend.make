# Empty dependencies file for ablation_observation_cost.
# This may be replaced when dependencies are built.
