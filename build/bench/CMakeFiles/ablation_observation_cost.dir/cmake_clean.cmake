file(REMOVE_RECURSE
  "CMakeFiles/ablation_observation_cost.dir/ablation_observation_cost.cpp.o"
  "CMakeFiles/ablation_observation_cost.dir/ablation_observation_cost.cpp.o.d"
  "ablation_observation_cost"
  "ablation_observation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_observation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
