file(REMOVE_RECURSE
  "CMakeFiles/table7_search_plan.dir/table7_search_plan.cpp.o"
  "CMakeFiles/table7_search_plan.dir/table7_search_plan.cpp.o.d"
  "table7_search_plan"
  "table7_search_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_search_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
