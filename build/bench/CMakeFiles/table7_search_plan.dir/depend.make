# Empty dependencies file for table7_search_plan.
# This may be replaced when dependencies are built.
