# Empty compiler generated dependencies file for ablation_dimcap.
# This may be replaced when dependencies are built.
