file(REMOVE_RECURSE
  "CMakeFiles/ablation_dimcap.dir/ablation_dimcap.cpp.o"
  "CMakeFiles/ablation_dimcap.dir/ablation_dimcap.cpp.o.d"
  "ablation_dimcap"
  "ablation_dimcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dimcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
