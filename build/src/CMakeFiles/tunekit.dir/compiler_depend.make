# Empty compiler generated dependencies file for tunekit.
# This may be replaced when dependencies are built.
