file(REMOVE_RECURSE
  "libtunekit.a"
)
