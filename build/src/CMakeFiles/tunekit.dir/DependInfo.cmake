
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/acquisition.cpp" "src/CMakeFiles/tunekit.dir/bo/acquisition.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/acquisition.cpp.o.d"
  "/root/repo/src/bo/additive_bo.cpp" "src/CMakeFiles/tunekit.dir/bo/additive_bo.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/additive_bo.cpp.o.d"
  "/root/repo/src/bo/additive_gp.cpp" "src/CMakeFiles/tunekit.dir/bo/additive_gp.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/additive_gp.cpp.o.d"
  "/root/repo/src/bo/bayes_opt.cpp" "src/CMakeFiles/tunekit.dir/bo/bayes_opt.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/bayes_opt.cpp.o.d"
  "/root/repo/src/bo/dropout_bo.cpp" "src/CMakeFiles/tunekit.dir/bo/dropout_bo.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/dropout_bo.cpp.o.d"
  "/root/repo/src/bo/gp.cpp" "src/CMakeFiles/tunekit.dir/bo/gp.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/gp.cpp.o.d"
  "/root/repo/src/bo/kernels.cpp" "src/CMakeFiles/tunekit.dir/bo/kernels.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/kernels.cpp.o.d"
  "/root/repo/src/bo/nelder_mead.cpp" "src/CMakeFiles/tunekit.dir/bo/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/nelder_mead.cpp.o.d"
  "/root/repo/src/bo/rembo.cpp" "src/CMakeFiles/tunekit.dir/bo/rembo.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/rembo.cpp.o.d"
  "/root/repo/src/bo/transfer.cpp" "src/CMakeFiles/tunekit.dir/bo/transfer.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/bo/transfer.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/tunekit.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/common/json.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/tunekit.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/tunekit.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/tunekit.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/tunekit.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/CMakeFiles/tunekit.dir/core/executor.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/core/executor.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/CMakeFiles/tunekit.dir/core/export.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/core/export.cpp.o.d"
  "/root/repo/src/core/methodology.cpp" "src/CMakeFiles/tunekit.dir/core/methodology.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/core/methodology.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/tunekit.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/core/report.cpp.o.d"
  "/root/repo/src/core/tunable_app.cpp" "src/CMakeFiles/tunekit.dir/core/tunable_app.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/core/tunable_app.cpp.o.d"
  "/root/repo/src/graph/influence_graph.cpp" "src/CMakeFiles/tunekit.dir/graph/influence_graph.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/graph/influence_graph.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/tunekit.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/graph/partition.cpp.o.d"
  "/root/repo/src/graph/search_plan.cpp" "src/CMakeFiles/tunekit.dir/graph/search_plan.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/graph/search_plan.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/tunekit.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/tunekit.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/vecops.cpp" "src/CMakeFiles/tunekit.dir/linalg/vecops.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/linalg/vecops.cpp.o.d"
  "/root/repo/src/minislater/fft.cpp" "src/CMakeFiles/tunekit.dir/minislater/fft.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/minislater/fft.cpp.o.d"
  "/root/repo/src/minislater/kernels.cpp" "src/CMakeFiles/tunekit.dir/minislater/kernels.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/minislater/kernels.cpp.o.d"
  "/root/repo/src/minislater/minislater_app.cpp" "src/CMakeFiles/tunekit.dir/minislater/minislater_app.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/minislater/minislater_app.cpp.o.d"
  "/root/repo/src/minislater/pipeline.cpp" "src/CMakeFiles/tunekit.dir/minislater/pipeline.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/minislater/pipeline.cpp.o.d"
  "/root/repo/src/search/config.cpp" "src/CMakeFiles/tunekit.dir/search/config.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/config.cpp.o.d"
  "/root/repo/src/search/constraints.cpp" "src/CMakeFiles/tunekit.dir/search/constraints.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/constraints.cpp.o.d"
  "/root/repo/src/search/eval_db.cpp" "src/CMakeFiles/tunekit.dir/search/eval_db.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/eval_db.cpp.o.d"
  "/root/repo/src/search/grid_search.cpp" "src/CMakeFiles/tunekit.dir/search/grid_search.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/grid_search.cpp.o.d"
  "/root/repo/src/search/objective.cpp" "src/CMakeFiles/tunekit.dir/search/objective.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/objective.cpp.o.d"
  "/root/repo/src/search/param.cpp" "src/CMakeFiles/tunekit.dir/search/param.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/param.cpp.o.d"
  "/root/repo/src/search/random_search.cpp" "src/CMakeFiles/tunekit.dir/search/random_search.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/random_search.cpp.o.d"
  "/root/repo/src/search/samplers.cpp" "src/CMakeFiles/tunekit.dir/search/samplers.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/samplers.cpp.o.d"
  "/root/repo/src/search/sobol.cpp" "src/CMakeFiles/tunekit.dir/search/sobol.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/sobol.cpp.o.d"
  "/root/repo/src/search/space.cpp" "src/CMakeFiles/tunekit.dir/search/space.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/search/space.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/CMakeFiles/tunekit.dir/stats/correlation.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/correlation.cpp.o.d"
  "/root/repo/src/stats/decision_tree.cpp" "src/CMakeFiles/tunekit.dir/stats/decision_tree.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/decision_tree.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/tunekit.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/orthogonality.cpp" "src/CMakeFiles/tunekit.dir/stats/orthogonality.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/orthogonality.cpp.o.d"
  "/root/repo/src/stats/random_forest.cpp" "src/CMakeFiles/tunekit.dir/stats/random_forest.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/random_forest.cpp.o.d"
  "/root/repo/src/stats/sensitivity.cpp" "src/CMakeFiles/tunekit.dir/stats/sensitivity.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/stats/sensitivity.cpp.o.d"
  "/root/repo/src/synth/synth_app.cpp" "src/CMakeFiles/tunekit.dir/synth/synth_app.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/synth/synth_app.cpp.o.d"
  "/root/repo/src/synth/synthetic.cpp" "src/CMakeFiles/tunekit.dir/synth/synthetic.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/synth/synthetic.cpp.o.d"
  "/root/repo/src/tddft/cpu_pipeline.cpp" "src/CMakeFiles/tunekit.dir/tddft/cpu_pipeline.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/cpu_pipeline.cpp.o.d"
  "/root/repo/src/tddft/gpu_arch.cpp" "src/CMakeFiles/tunekit.dir/tddft/gpu_arch.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/gpu_arch.cpp.o.d"
  "/root/repo/src/tddft/kernel_models.cpp" "src/CMakeFiles/tunekit.dir/tddft/kernel_models.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/kernel_models.cpp.o.d"
  "/root/repo/src/tddft/mpi_grid.cpp" "src/CMakeFiles/tunekit.dir/tddft/mpi_grid.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/mpi_grid.cpp.o.d"
  "/root/repo/src/tddft/physical_system.cpp" "src/CMakeFiles/tunekit.dir/tddft/physical_system.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/physical_system.cpp.o.d"
  "/root/repo/src/tddft/slater_pipeline.cpp" "src/CMakeFiles/tunekit.dir/tddft/slater_pipeline.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/slater_pipeline.cpp.o.d"
  "/root/repo/src/tddft/tddft_app.cpp" "src/CMakeFiles/tunekit.dir/tddft/tddft_app.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/tddft_app.cpp.o.d"
  "/root/repo/src/tddft/transfer_model.cpp" "src/CMakeFiles/tunekit.dir/tddft/transfer_model.cpp.o" "gcc" "src/CMakeFiles/tunekit.dir/tddft/transfer_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
