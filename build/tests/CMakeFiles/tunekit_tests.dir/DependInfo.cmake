
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acquisition.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_acquisition.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_acquisition.cpp.o.d"
  "/root/repo/tests/test_baseline_search.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_baseline_search.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_baseline_search.cpp.o.d"
  "/root/repo/tests/test_bayes_opt.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_bayes_opt.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_bayes_opt.cpp.o.d"
  "/root/repo/tests/test_bo_properties.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_bo_properties.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_bo_properties.cpp.o.d"
  "/root/repo/tests/test_cholesky.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_cholesky.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_cholesky.cpp.o.d"
  "/root/repo/tests/test_constraints.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_constraints.cpp.o.d"
  "/root/repo/tests/test_correlation.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_correlation.cpp.o.d"
  "/root/repo/tests/test_cpu_pipeline.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_cpu_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_cpu_pipeline.cpp.o.d"
  "/root/repo/tests/test_decision_tree.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_decision_tree.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_eval_db.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_eval_db.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_eval_db.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_export.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_export.cpp.o.d"
  "/root/repo/tests/test_gp.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_gp.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_gp.cpp.o.d"
  "/root/repo/tests/test_gp_diagnostics.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_gp_diagnostics.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_gp_diagnostics.cpp.o.d"
  "/root/repo/tests/test_highdim_strategies.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_highdim_strategies.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_highdim_strategies.cpp.o.d"
  "/root/repo/tests/test_influence_graph.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_influence_graph.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_influence_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_methodology.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_methodology.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_methodology.cpp.o.d"
  "/root/repo/tests/test_minislater.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_minislater.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_minislater.cpp.o.d"
  "/root/repo/tests/test_nelder_mead.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_nelder_mead.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_nelder_mead.cpp.o.d"
  "/root/repo/tests/test_objective.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_objective.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_objective.cpp.o.d"
  "/root/repo/tests/test_orthogonality.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_orthogonality.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_orthogonality.cpp.o.d"
  "/root/repo/tests/test_param.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_param.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_param.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_random_forest.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_random_forest.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_random_forest.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_samplers.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_samplers.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_samplers.cpp.o.d"
  "/root/repo/tests/test_search_plan.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_search_plan.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_search_plan.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_sobol.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_sobol.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_sobol.cpp.o.d"
  "/root/repo/tests/test_space.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_space.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_space.cpp.o.d"
  "/root/repo/tests/test_space_properties.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_space_properties.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_space_properties.cpp.o.d"
  "/root/repo/tests/test_synth_app.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_synth_app.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_synth_app.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_table_log.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_table_log.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_table_log.cpp.o.d"
  "/root/repo/tests/test_tddft_app.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_app.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_app.cpp.o.d"
  "/root/repo/tests/test_tddft_models.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_models.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_models.cpp.o.d"
  "/root/repo/tests/test_tddft_pipeline.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_tddft_pipeline.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/tunekit_tests.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/tunekit_tests.dir/test_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tunekit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
