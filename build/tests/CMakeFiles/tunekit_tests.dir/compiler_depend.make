# Empty compiler generated dependencies file for tunekit_tests.
# This may be replaced when dependencies are built.
