file(REMOVE_RECURSE
  "CMakeFiles/example_synthetic_methodology.dir/synthetic_methodology.cpp.o"
  "CMakeFiles/example_synthetic_methodology.dir/synthetic_methodology.cpp.o.d"
  "example_synthetic_methodology"
  "example_synthetic_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_synthetic_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
