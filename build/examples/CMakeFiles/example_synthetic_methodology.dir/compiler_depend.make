# Empty compiler generated dependencies file for example_synthetic_methodology.
# This may be replaced when dependencies are built.
