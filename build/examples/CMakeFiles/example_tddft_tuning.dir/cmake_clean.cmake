file(REMOVE_RECURSE
  "CMakeFiles/example_tddft_tuning.dir/tddft_tuning.cpp.o"
  "CMakeFiles/example_tddft_tuning.dir/tddft_tuning.cpp.o.d"
  "example_tddft_tuning"
  "example_tddft_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tddft_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
