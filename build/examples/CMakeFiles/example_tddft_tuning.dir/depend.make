# Empty dependencies file for example_tddft_tuning.
# This may be replaced when dependencies are built.
