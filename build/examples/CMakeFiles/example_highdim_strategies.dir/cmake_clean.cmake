file(REMOVE_RECURSE
  "CMakeFiles/example_highdim_strategies.dir/highdim_strategies.cpp.o"
  "CMakeFiles/example_highdim_strategies.dir/highdim_strategies.cpp.o.d"
  "example_highdim_strategies"
  "example_highdim_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_highdim_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
