# Empty compiler generated dependencies file for example_highdim_strategies.
# This may be replaced when dependencies are built.
