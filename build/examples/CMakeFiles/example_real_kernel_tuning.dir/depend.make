# Empty dependencies file for example_real_kernel_tuning.
# This may be replaced when dependencies are built.
