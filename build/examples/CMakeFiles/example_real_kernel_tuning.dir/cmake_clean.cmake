file(REMOVE_RECURSE
  "CMakeFiles/example_real_kernel_tuning.dir/real_kernel_tuning.cpp.o"
  "CMakeFiles/example_real_kernel_tuning.dir/real_kernel_tuning.cpp.o.d"
  "example_real_kernel_tuning"
  "example_real_kernel_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_real_kernel_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
