// Ablation (§VIII): transfer learning from Case Study 1's configuration
// database into Case Study 2's search, at several target budgets. The
// smaller the target budget, the more the source prior matters.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

bo::BoOptions bo_options(std::size_t evals, std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = evals;
  opt.n_init = 5;
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  return opt;
}

const graph::PlannedSearch* find_g23(const graph::SearchPlan& plan) {
  for (const auto& s : plan.searches) {
    if (s.name == "Group2+Group3") return &s;
  }
  throw std::runtime_error("expected Group2+Group3 search");
}

}  // namespace

int main() {
  std::cout << "=== Ablation: transfer learning CS1 -> CS2 ===\n";
  std::cout << "(joint Group2+Group3 search on CS2 at shrinking budgets, with and\n"
            << " without the CS1-derived prior; averaged over 3 seeds)\n\n";

  core::MethodologyOptions mopt;
  mopt.cutoff = 0.10;
  mopt.importance_samples = 0;
  core::Methodology m(mopt);

  // Source run on CS1 (one generous search).
  tddft::RtTddftApp cs1(tddft::PhysicalSystem::case_study_1());
  const auto analysis1 = m.analyze(cs1);
  const auto plan1 = m.make_plan(cs1, analysis1);
  const auto* g23_1 = find_g23(plan1);
  core::RegionSumObjective src_obj(cs1, {"Group2", "Group3"});
  search::SubspaceObjective src_sub(src_obj, cs1.space(), g23_1->params, cs1.baseline());
  search::EvalDb src_db;
  bo::BayesOpt(bo_options(100, 11)).run(src_sub, src_sub.space(), src_db);

  // Target searches on CS2.
  tddft::RtTddftApp cs2(tddft::PhysicalSystem::case_study_2());
  const auto analysis2 = m.analyze(cs2);
  const auto plan2 = m.make_plan(cs2, analysis2);
  const auto* g23_2 = find_g23(plan2);

  const double scale = cs2.evaluate_regions(cs2.baseline()).regions.at("Group3") /
                       cs1.evaluate_regions(cs1.baseline()).regions.at("Group3");
  const auto sub_space = cs1.space().subspace(g23_1->params);

  Table table({"CS2 budget", "No transfer (ms)", "With transfer (ms)", "Improvement"});
  for (std::size_t budget : {15u, 30u, 60u, 100u}) {
    double plain = 0.0, transfer = 0.0;
    for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
      core::RegionSumObjective obj(cs2, {"Group2", "Group3"});
      search::SubspaceObjective sub(obj, cs2.space(), g23_2->params, cs2.baseline());
      plain += bo::BayesOpt(bo_options(budget, seed)).run(sub, sub.space()).best_value;

      tunekit::Rng prng(seed);
      auto opt = bo_options(budget, seed);
      opt.transfer = bo::TransferPrior::fit(sub_space, src_db.all(), prng,
                                            bo::KernelKind::Matern52, scale);
      for (const auto& e : src_db.best_k(3)) opt.warm_start.push_back(e.config);
      core::RegionSumObjective obj2(cs2, {"Group2", "Group3"});
      search::SubspaceObjective sub2(obj2, cs2.space(), g23_2->params, cs2.baseline());
      transfer += bo::BayesOpt(opt).run(sub2, sub2.space()).best_value;
    }
    plain /= 3.0;
    transfer /= 3.0;
    table.add_row({std::to_string(budget), Table::fmt(plain * 1e3, 4),
                   Table::fmt(transfer * 1e3, 4),
                   Table::pct((plain - transfer) / plain, 2)});
  }
  std::cout << table.str();
  std::cout << "(positive improvement: the source prior steers early exploration\n"
               " toward regions that were good on the related system)\n";
  return 0;
}
