// Table VI reproduction: per-routine sensitivity analysis for Case Study 2
// (4x4 h-BN slab, 36 k-points). Same protocol as Table V; the k-point
// dimension makes nkpb a first-order parameter for the overall runtime.

#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

int main() {
  std::cout << "=== Table VI: sensitivity analysis, Case Study 2 ===\n\n";
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_2());

  core::MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);

  std::cout << core::sensitivity_tables(analysis.sensitivity,
                                        {"Group1", "Group2", "Group3", "SlaterDet"}, 10);
  std::cout << "\nObservations used: " << analysis.observations << "\n";

  // Overall-runtime sensitivity (the paper's §VIII "insights" step): with 36
  // k-points, nkpb and nstb dominate total-runtime variability.
  std::cout << "\nTop-8 parameters by total-runtime variability:\n";
  std::cout << core::sensitivity_table(analysis.sensitivity, "total", 8);
  return 0;
}
