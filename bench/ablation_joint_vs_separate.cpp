// §VIII reproduction: the joint Group2+Group3 search vs independent Group 2
// and Group 3 searches, on both case studies.
//
// Paper numbers: joint beats separate by ~1% on Case Study 1 and ~4.6% on
// Case Study 2, while also using fewer evaluations (N=100 joint vs
// N=30+N=100 separate). The mechanism is the cuPairwise->Group3 cache
// interdependence: an independent Group 2 search maximizes cuPairwise's own
// occupancy, which silently slows Group 3.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

constexpr std::size_t kRepeats = 3;

bo::BoOptions bo_options(std::size_t evals, std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = evals;
  opt.n_init = 5;
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  return opt;
}

/// Joint G2+G3 region time at a full configuration.
double g23_time(tddft::RtTddftApp& app, const search::Config& config) {
  const auto t = app.evaluate_regions(config);
  return t.regions.at("Group2") + t.regions.at("Group3");
}

struct Row {
  double joint = 0.0;
  double separate = 0.0;
  std::size_t joint_evals = 0;
  std::size_t separate_evals = 0;
};

Row run_case(const tddft::PhysicalSystem& system) {
  Row row;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    const std::uint64_t seed = 40 + rep;
    tddft::RtTddftApp app(system);
    core::MethodologyOptions mopt;
    mopt.cutoff = 0.10;
    mopt.importance_samples = 0;
    core::Methodology m(mopt);
    const auto analysis = m.analyze(app);
    const auto plan = m.make_plan(app, analysis);

    const graph::PlannedSearch* g23 = nullptr;
    for (const auto& s : plan.searches) {
      if (s.name == "Group2+Group3") g23 = &s;
    }
    if (g23 == nullptr) throw std::runtime_error("expected merged Group2+Group3");

    // --- Joint search: N = 100 over the merged (capped) parameter set. ---
    {
      core::RegionSumObjective obj(app, {"Group2", "Group3"});
      search::SubspaceObjective sub(obj, app.space(), g23->params, app.baseline());
      const auto r = bo::BayesOpt(bo_options(100, seed)).run(sub, sub.space());
      search::Config combined = app.baseline();
      for (std::size_t k = 0; k < g23->params.size(); ++k) {
        combined[g23->params[k]] = r.best_config[k];
      }
      row.joint += g23_time(app, combined);
      row.joint_evals += r.evaluations;
    }

    // --- Separate: Group 2 (3 params, N = 30) then Group 3 (10 params,
    // N = 100); each optimizes only its own region. ---
    {
      search::Config combined = app.baseline();
      const auto routines = app.routines();
      // Group 2 search.
      {
        core::RegionSumObjective obj(app, {"Group2"});
        search::SubspaceObjective sub(obj, app.space(), routines[1].params,
                                      app.baseline());
        const auto r = bo::BayesOpt(bo_options(30, seed + 7)).run(sub, sub.space());
        for (std::size_t k = 0; k < routines[1].params.size(); ++k) {
          combined[routines[1].params[k]] = r.best_config[k];
        }
        row.separate_evals += r.evaluations;
      }
      // Group 3 search: all 9 owned params + u_zvec is within 10 dims, so
      // nothing is discarded (the paper notes the same).
      {
        core::RegionSumObjective obj(app, {"Group3"});
        search::SubspaceObjective sub(obj, app.space(), routines[2].params,
                                      app.baseline());
        const auto r = bo::BayesOpt(bo_options(100, seed + 13)).run(sub, sub.space());
        for (std::size_t k = 0; k < routines[2].params.size(); ++k) {
          combined[routines[2].params[k]] = r.best_config[k];
        }
        row.separate_evals += r.evaluations;
      }
      row.separate += g23_time(app, combined);
    }
  }
  row.joint /= kRepeats;
  row.separate /= kRepeats;
  row.joint_evals /= kRepeats;
  row.separate_evals /= kRepeats;
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: joint Group2+Group3 vs separate searches ===\n";
  std::cout << "(average of " << kRepeats << " runs; objective is the combined\n"
            << " Group2+Group3 region time at the composed best configuration)\n\n";

  Table table({"Case study", "Joint G2+3 (ms)", "Separate G2,G3 (ms)", "Joint gain",
               "Joint evals", "Separate evals"});
  for (const auto& system :
       {tddft::PhysicalSystem::case_study_1(), tddft::PhysicalSystem::case_study_2()}) {
    const Row row = run_case(system);
    const double gain = (row.separate - row.joint) / row.separate;
    table.add_row({system.name, Table::fmt(row.joint * 1e3, 4),
                   Table::fmt(row.separate * 1e3, 4), Table::pct(gain, 2),
                   std::to_string(row.joint_evals), std::to_string(row.separate_evals)});
  }
  std::cout << table.str();
  std::cout << "(paper: ~1% gain on CS1, ~4.6% on CS2, with fewer evaluations for\n"
               " the joint search: 100 vs 130)\n";
  return 0;
}
