// Ablation (§IV-D): the cut-off value decides how aggressively routines
// merge. Sweep the cut-off on the synthetic cases and on RT-TDDFT CS1 and
// report the resulting partitions — "an extremely low cut-off resulting in a
// merged search of higher dimensionality may not compensate" while a high
// cut-off misses real interdependence.

#include <iostream>
#include <memory>
#include <sstream>

#include "common/table.hpp"
#include "core/methodology.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

std::string plan_summary(const graph::SearchPlan& plan) {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : plan.searches) {
    if (!first) os << " | ";
    first = false;
    os << s.name << "(" << s.params.size() << ")";
  }
  return os.str();
}

}  // namespace

int main() {
  const std::vector<double> cutoffs{0.02, 0.05, 0.10, 0.25, 0.50, 0.90};

  std::cout << "=== Ablation: cut-off sweep ===\n\n";
  std::cout << "--- Synthetic cases (analysis reused across cut-offs) ---\n";
  Table synth_table({"Cutoff", "Case 1", "Case 3", "Case 5"});
  // Analyze once per case; re-plan per cutoff (the analysis is cut-off-free).
  core::MethodologyOptions base;
  base.sensitivity.n_variations = 100;
  base.importance_samples = 0;

  std::vector<std::unique_ptr<synth::SynthApp>> apps;
  std::vector<core::InfluenceAnalysis> analyses;
  for (int c : {1, 3, 5}) {
    apps.push_back(std::make_unique<synth::SynthApp>(static_cast<synth::SynthCase>(c)));
    core::Methodology m(base);
    analyses.push_back(m.analyze(*apps.back()));
  }

  for (double cutoff : cutoffs) {
    std::vector<std::string> row{Table::pct(cutoff, 0)};
    for (std::size_t i = 0; i < apps.size(); ++i) {
      auto opt = base;
      opt.cutoff = cutoff;
      core::Methodology m(opt);
      row.push_back(plan_summary(m.make_plan(*apps[i], analyses[i])));
    }
    synth_table.add_row(std::move(row));
  }
  std::cout << synth_table.str();

  std::cout << "\n--- RT-TDDFT Case Study 1 ---\n";
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  core::Methodology m0(base);
  const auto analysis = m0.analyze(app);
  Table tddft_table({"Cutoff", "Resulting searches"});
  for (double cutoff : cutoffs) {
    auto opt = base;
    opt.cutoff = cutoff;
    core::Methodology m(opt);
    tddft_table.add_row({Table::pct(cutoff, 0), plan_summary(m.make_plan(app, analysis))});
  }
  std::cout << tddft_table.str();
  std::cout << "(the paper's choices: 25% for the synthetic study — merging only\n"
               " cases 3-5 — and a strict 10% for RT-TDDFT, which merges Group2+3)\n";
  return 0;
}
