// Ablation: acquisition-function choice for the joint Group2+Group3 search
// (EI vs PI vs LCB) and the initial-design choice (LHS vs Sobol' vs uniform)
// at the paper's 10 x dims budget. BO internals are options in tunekit; this
// quantifies how much they matter relative to the partitioning decision.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

const graph::PlannedSearch* find_g23(const graph::SearchPlan& plan) {
  for (const auto& s : plan.searches) {
    if (s.name == "Group2+Group3") return &s;
  }
  throw std::runtime_error("expected Group2+Group3");
}

bo::BoOptions base_options(std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = 100;
  opt.n_init = 5;
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  return opt;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: acquisition function and initial design ===\n";
  std::cout << "(joint Group2+Group3 search on CS1, N = 100, 3 seeds)\n\n";

  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  core::MethodologyOptions mopt;
  mopt.cutoff = 0.10;
  mopt.importance_samples = 0;
  core::Methodology m(mopt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);
  const auto* g23 = find_g23(plan);

  auto run_with = [&](const bo::BoOptions& opt) {
    core::RegionSumObjective obj(app, {"Group2", "Group3"});
    search::SubspaceObjective sub(obj, app.space(), g23->params, app.baseline());
    return bo::BayesOpt(opt).run(sub, sub.space()).best_value;
  };

  Table acq_table({"Acquisition", "Best (ms, avg)", "Notes"});
  struct AcqCase {
    bo::AcquisitionKind kind;
    const char* name;
    const char* note;
  };
  for (const AcqCase c :
       {AcqCase{bo::AcquisitionKind::ExpectedImprovement, "EI", "default"},
        AcqCase{bo::AcquisitionKind::ProbabilityOfImprovement, "PI",
                "exploit-leaning"},
        AcqCase{bo::AcquisitionKind::LowerConfidenceBound, "LCB (beta=2)",
                "explore-leaning"}}) {
    double total = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      auto opt = base_options(seed);
      opt.acquisition = c.kind;
      total += run_with(opt);
    }
    acq_table.add_row({c.name, Table::fmt(total / 3.0 * 1e3, 4), c.note});
  }
  std::cout << acq_table.str() << "\n";

  Table init_table({"Initial design", "Best (ms, avg)"});
  struct InitCase {
    bo::InitialDesign design;
    const char* name;
  };
  for (const InitCase c : {InitCase{bo::InitialDesign::LatinHypercube, "Latin hypercube"},
                           InitCase{bo::InitialDesign::Sobol, "Sobol'"},
                           InitCase{bo::InitialDesign::UniformRandom, "Uniform random"}}) {
    double total = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      auto opt = base_options(seed);
      opt.init_design = c.design;
      total += run_with(opt);
    }
    init_table.add_row({c.name, Table::fmt(total / 3.0 * 1e3, 4)});
  }
  std::cout << init_table.str();
  std::cout << "(differences between BO internals are small next to the partition\n"
               " decision itself — the methodology's point)\n";
  return 0;
}
