// Figure 6 reproduction: progression of the best configuration found by the
// BO searches over the number of evaluated candidates, for Case Study 1 and
// Case Study 2. Case Study 2 reuses Case Study 1's configuration database
// through transfer learning, as in the paper.
//
// Shape to reproduce: monotone improvement that flattens near the budget,
// and a CS2 curve that starts lower / converges faster with transfer.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

constexpr std::size_t kBudget = 100;  // 10 x 10 params (Group2+Group3 search)

bo::BoOptions bo_options(std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = kBudget;
  opt.n_init = 5;
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  return opt;
}

/// The Group2+Group3 joint search for one case study, optionally with a
/// transfer prior and warm-start configurations. Returns the search result.
search::SearchResult run_g23(tddft::RtTddftApp& app, core::Methodology& m,
                             std::uint64_t seed, search::EvalDb& db,
                             const std::optional<bo::TransferPrior>& prior,
                             const std::vector<search::Config>& warm_start = {}) {
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);
  const graph::PlannedSearch* g23 = nullptr;
  for (const auto& s : plan.searches) {
    if (s.name == "Group2+Group3") g23 = &s;
  }
  if (g23 == nullptr) throw std::runtime_error("expected a Group2+Group3 search");

  core::RegionSumObjective region_obj(app, g23->objective_regions);
  search::SubspaceObjective sub(region_obj, app.space(), g23->params, app.baseline());

  auto opt = bo_options(seed);
  opt.transfer = prior;
  opt.warm_start = warm_start;
  return bo::BayesOpt(opt).run(sub, sub.space(), db);
}

}  // namespace

int main() {
  std::cout << "=== Figure 6: BO progression over evaluated candidates ===\n";
  std::cout << "(objective: joint Group2+Group3 region time, seconds/band)\n\n";

  core::MethodologyOptions mopt;
  mopt.cutoff = 0.10;
  mopt.importance_samples = 0;
  core::Methodology m(mopt);

  // Case Study 1 from scratch.
  tddft::RtTddftApp cs1(tddft::PhysicalSystem::case_study_1());
  search::EvalDb cs1_db;
  const auto cs1_result = run_g23(cs1, m, 101, cs1_db, std::nullopt);

  // Case Study 2 without transfer.
  tddft::RtTddftApp cs2a(tddft::PhysicalSystem::case_study_2());
  search::EvalDb cs2_plain_db;
  const auto cs2_plain = run_g23(cs2a, m, 202, cs2_plain_db, std::nullopt);

  // Case Study 2 with the CS1 database as a transfer prior. Both searches
  // share the same 10-parameter subspace, so unit coordinates align; the
  // source values are rescaled by the baseline ratio of the two systems.
  tddft::RtTddftApp cs2b(tddft::PhysicalSystem::case_study_2());
  const double scale = cs2b.evaluate_regions(cs2b.baseline()).regions.at("Group3") /
                       cs1.evaluate_regions(cs1.baseline()).regions.at("Group3");
  tunekit::Rng prior_rng(7);
  // Rebuild the subspace the CS1 search ran in to fit the prior.
  const auto analysis1 = m.analyze(cs1);
  const auto plan1 = m.make_plan(cs1, analysis1);
  const graph::PlannedSearch* g23 = nullptr;
  for (const auto& s : plan1.searches) {
    if (s.name == "Group2+Group3") g23 = &s;
  }
  const auto sub_space = cs1.space().subspace(g23->params);
  const auto prior =
      bo::TransferPrior::fit(sub_space, cs1_db.all(), prior_rng,
                             bo::KernelKind::Matern52, scale);
  // Warm-start with the source task's three best configurations — the
  // "configuration database" reuse of the paper.
  std::vector<search::Config> warm;
  for (const auto& e : cs1_db.best_k(3)) warm.push_back(e.config);
  search::EvalDb cs2_transfer_db;
  const auto cs2_transfer = run_g23(cs2b, m, 202, cs2_transfer_db, prior, warm);

  // Progression table (the Figure 6 series, sampled every 10 evaluations).
  Table table({"Evaluations", "CS1 (orange)", "CS2 plain", "CS2 + transfer (blue)"});
  for (std::size_t n = 10; n <= kBudget; n += 10) {
    table.add_row({std::to_string(n), Table::fmt(cs1_result.trajectory[n - 1] * 1e3, 4),
                   Table::fmt(cs2_plain.trajectory[n - 1] * 1e3, 4),
                   Table::fmt(cs2_transfer.trajectory[n - 1] * 1e3, 4)});
  }
  std::cout << table.str();
  std::cout << "(values in milliseconds per band)\n\n";

  std::cout << "Final best: CS1 " << Table::fmt(cs1_result.best_value * 1e3, 4)
            << " ms | CS2 plain " << Table::fmt(cs2_plain.best_value * 1e3, 4)
            << " ms | CS2 transfer " << Table::fmt(cs2_transfer.best_value * 1e3, 4)
            << " ms\n";
  const double gain =
      (cs2_plain.best_value - cs2_transfer.best_value) / cs2_plain.best_value;
  std::cout << "Transfer-learning improvement on CS2: " << Table::pct(gain, 2) << "\n";
  return 0;
}
