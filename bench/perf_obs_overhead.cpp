// Observability overhead gate: the per-evaluation cost of the tracing layer.
//
// One "evaluation" here is what the robust measurement path actually runs
// per journaled eval: a repeats-batch of application executions (--repeats,
// MAD-trimmed) — kRepeats runs of the synth Case3 objective, ~20 us total.
// That is still orders of magnitude cheaper than any real process-isolated
// or fleet-dispatched measurement, so the percentage reported here is a
// conservative upper bound on production overhead.
//
// Timed loops over identical work:
//   bare     — the objective alone, no Telemetry object at all (floor).
//   disabled — a default-constructed Telemetry (enabled() == false) with the
//              same instrumentation compiled in; this is the hot path every
//              non-exporting run takes, guarded elsewhere to stay < 1 us.
//   enabled  — telemetry on, each eval wrapped the way EvalScheduler wraps
//              it: a ScopedSpan joining the ambient batch span plus one
//              histogram observation.
// Also reported (not gated): the extra cost of exemplar capture with a
// freshly formatted trace id, which the HTTP layer pays once per request.
//
// Emits BENCH_obs_overhead.json (override with TUNEKIT_BENCH_OUT) and exits
// nonzero when the enabled-path overhead is >= 5% per eval, so CI gates the
// perf trajectory instead of eyeballing it.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "common/json.hpp"
#include "obs/telemetry.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kEvals = 1000;
constexpr std::size_t kRepeats = 8;  // objective runs per journaled eval
constexpr std::size_t kReps = 5;     // timing repetitions (best-of)

double ns_per_eval(std::size_t evals, const std::function<void()>& body) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < evals; ++i) body();
  const auto stop = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         static_cast<double>(evals);
}

/// Best of `reps` runs: on a loaded box a scheduler hiccup inflates one run,
/// and the minimum is the closest estimate of the true cost.
double best_ns_per_eval(std::size_t reps, std::size_t evals,
                        const std::function<void()>& body) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double ns = ns_per_eval(evals, body);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  synth::SynthApp app(synth::SynthCase::Case3);
  const auto config = app.baseline();
  volatile double sink = 0.0;
  const auto objective = [&] {
    for (std::size_t r = 0; r < kRepeats; ++r) {
      sink = sink + app.evaluate_regions(config).total;
    }
  };

  // Floor: the repeats-batch with no telemetry object in sight.
  const double bare_ns = best_ns_per_eval(kReps, kEvals, objective);

  // Disabled hot path: Telemetry exists but was never enable()d, so the
  // span constructor bails immediately and the enabled() guard skips the
  // metric — exactly what instrumented call sites compile down to.
  obs::Telemetry off;
  const double disabled_ns = best_ns_per_eval(kReps, kEvals, [&] {
    obs::ScopedSpan span(&off, "eval", obs::Telemetry::kInheritParent, "bench");
    objective();
    if (off.enabled()) {
      off.metrics().histogram(obs::metric::kEvalSeconds).observe(1e-6);
    }
  });

  // Enabled path, instrumented the way EvalScheduler instruments one
  // evaluation: a traced span under the ambient batch span plus one
  // histogram observation.
  obs::Telemetry on;
  on.enable();
  obs::ScopedSpan root(&on, "bench.root", 0, "bench");
  obs::CurrentSpanScope ambient(root.id());
  const double enabled_ns = best_ns_per_eval(kReps, kEvals, [&] {
    obs::ScopedSpan span(&on, "eval", obs::Telemetry::kInheritParent, "bench");
    objective();
    on.metrics().histogram(obs::metric::kEvalSeconds).observe(1e-6);
  });

  // Exemplar capture with a freshly formatted trace id — the once-per-HTTP-
  // request extra, reported for the record but not part of the per-eval gate.
  const double exemplar_ns = best_ns_per_eval(kReps, kEvals, [&] {
    obs::ScopedSpan span(&on, "eval", obs::Telemetry::kInheritParent, "bench");
    objective();
    on.metrics()
        .histogram(obs::metric::kEvalSeconds)
        .observe_with_exemplar(1e-6, obs::trace_id_hex(span.context().trace));
  });

  const double overhead_ns = enabled_ns - disabled_ns;
  const double overhead_pct =
      disabled_ns > 0.0 ? overhead_ns / disabled_ns * 100.0 : 0.0;

  std::printf("obs overhead per eval (%zu evals x %zu repeats, best of %zu):\n",
              kEvals, kRepeats, kReps);
  std::printf("  bare objective:    %10.1f ns\n", bare_ns);
  std::printf("  telemetry off:     %10.1f ns\n", disabled_ns);
  std::printf("  telemetry on:      %10.1f ns\n", enabled_ns);
  std::printf("  on + exemplar:     %10.1f ns\n", exemplar_ns);
  std::printf("  overhead:          %10.1f ns  (%.2f%%)\n", overhead_ns,
              overhead_pct);

  json::Object bench;
  bench["bench"] = json::Value(std::string("obs_overhead"));
  bench["evals"] = json::Value(static_cast<double>(kEvals));
  bench["repeats_per_eval"] = json::Value(static_cast<double>(kRepeats));
  bench["reps"] = json::Value(static_cast<double>(kReps));
  bench["bare_ns_per_eval"] = json::Value(bare_ns);
  bench["disabled_ns_per_eval"] = json::Value(disabled_ns);
  bench["enabled_ns_per_eval"] = json::Value(enabled_ns);
  bench["enabled_exemplar_ns_per_eval"] = json::Value(exemplar_ns);
  bench["overhead_ns_per_eval"] = json::Value(overhead_ns);
  bench["overhead_pct"] = json::Value(overhead_pct);

  const char* out_env = std::getenv("TUNEKIT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_obs_overhead.json";
  std::ofstream out(out_path);
  out << json::Value(std::move(bench)).dump(2) << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (overhead_pct >= 5.0) {
    std::fprintf(stderr, "FAIL: enabled-path overhead %.2f%% >= 5%%\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
