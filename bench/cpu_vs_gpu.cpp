// §V reproduction: the CPU/MPI pipeline with the distributed 3D FFT versus
// the GPU-offloaded version.
//
// Shapes to reproduce:
//   * "around 40-50% of the runtime is attributed to communication
//     primitives", dominated by the transpose & padding of the distributed
//     FFT (the CPU breakdown shows it),
//   * offloading removes the nqb dimension (nqb = 1), disrupting the
//     previous MPI balance and motivating the re-tuning of the grid,
//   * the GPU version is substantially faster at equal allocation.

#include <iostream>
#include <limits>
#include <sstream>

#include "common/table.hpp"
#include "tddft/cpu_pipeline.hpp"
#include "tddft/slater_pipeline.hpp"

using namespace tunekit;

namespace {

void run_case(const tddft::PhysicalSystem& system) {
  std::cout << "--- " << system.name << " ---\n";
  constexpr int kRanks = 40;  // 10-node allocation

  // CPU pipeline across nqb choices (the distributed-FFT width).
  tddft::CpuPipeline cpu(system, tddft::CpuArch::perlmutter_cpu(), kRanks);
  Table cpu_table({"CPU grid (nstb x nkpb x nspb x nqb)", "Slater (ms)", "FFT (ms)",
                   "Transpose (ms)", "Comm share"});
  double best_cpu = std::numeric_limits<double>::infinity();
  for (int nqb : {1, 2, 4, 8}) {
    // Keep the rank budget: give the rest to bands/k-points.
    tddft::CpuGrid grid;
    grid.nqb = nqb;
    grid.nkpb = system.nkpoints >= 4 ? 4 : 1;
    grid.nstb = std::max(1, kRanks / (nqb * grid.nkpb));
    while (grid.ranks() > kRanks && grid.nstb > 1) --grid.nstb;
    if (!cpu.valid(grid)) continue;
    const auto b = cpu.simulate(grid);
    // The CPU code distributes the FFT out of per-rank memory necessity;
    // nqb = 1 is shown for reference only and excluded from "best CPU".
    if (nqb >= 2) best_cpu = std::min(best_cpu, b.total);
    std::ostringstream name;
    name << grid.nstb << "x" << grid.nkpb << "x" << grid.nspb << "x" << grid.nqb;
    cpu_table.add_row({name.str(), Table::fmt(b.slater * 1e3, 2),
                       Table::fmt(b.fft_compute * 1e3, 2),
                       Table::fmt(b.transpose_comm * 1e3, 2),
                       Table::pct(b.comm_share(), 1)});
  }
  std::cout << cpu_table.str();

  // GPU pipeline at default tuning (nqb = 1 by construction).
  tddft::SlaterPipeline gpu(system, tddft::GpuArch::a100(), kRanks);
  auto config = tddft::TddftConfig::defaults();
  if (system.nkpoints >= 4) {
    config.grid = {8, 4, 1};
  } else {
    config.grid = {32, 1, 1};
  }
  const auto g = gpu.simulate(config);

  std::cout << "GPU-offloaded (default tuning, grid " << config.grid.nstb << "x"
            << config.grid.nkpb << "x" << config.grid.nspb
            << ", nqb=1): total = " << Table::fmt(g.total * 1e3, 2) << " ms\n";
  std::cout << "Offloading speedup vs best CPU total: "
            << Table::fmt(best_cpu / g.total, 2) << "x\n\n";
}

}  // namespace

int main() {
  std::cout << "=== CPU (distributed FFT) vs GPU-offloaded pipeline (SS 5) ===\n\n";
  run_case(tddft::PhysicalSystem::case_study_1());
  run_case(tddft::PhysicalSystem::case_study_2());
  std::cout << "(paper: 40-50% of CPU runtime in communication primitives, mostly\n"
               " the transpose & padding of the distributed 3D FFT; offloading\n"
               " replaces the nqb ranks with a single-rank shared-memory FFT)\n";
  return 0;
}
