// Table III reproduction: minima found and search time for the five
// synthetic cases under four strategies:
//
//   * Random Search (N = 200, trivially parallel),
//   * fully joint 20-dim BO  G1+G2+G3+G4 (N = 200),
//   * the methodology's split G1, G2, G3+G4 (N = 50, 50, 100 in parallel),
//   * fully independent BO   G1, G2, G3, G4 (N = 50 each, in parallel).
//
// "Minima found" is the full objective F evaluated at the combination of
// each strategy's best sub-configurations; "Time" for multi-search
// strategies is the slowest member (they run concurrently in the paper).
//
// Shape to reproduce: BO beats Random everywhere; the joint 20-dim search is
// by far the slowest and navigates poorly; the methodology's split matches
// or beats fully-independent on the interdependent cases (3, 4, 5) and ties
// on cases 1-2; both split strategies are ~an order of magnitude cheaper
// than the joint search.

#include <algorithm>
#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "search/random_search.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

namespace {

constexpr std::size_t kRepeats = 3;

bo::BoOptions bo_options(std::size_t evals, std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = evals;
  opt.n_init = 5;  // the paper starts training with 5 random configurations
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  opt.maximizer.refine_iters = 20;
  return opt;
}

struct StrategyResult {
  double minimum = 0.0;
  double seconds = 0.0;
};

/// Sub-search over one or more groups: tunes those groups' variables
/// against the sum of their log-transformed outputs, everything else frozen
/// at the baseline.
search::SearchResult run_group_search(synth::SynthApp& app,
                                      const std::vector<int>& groups, std::size_t evals,
                                      std::uint64_t seed) {
  std::vector<std::size_t> indices;
  for (int g : groups) {
    for (std::size_t i = 0; i < 5; ++i) indices.push_back(5 * (g - 1) + i);
  }
  search::FunctionObjective objective([&app, groups](const search::Config& c) {
    const auto values = app.function().evaluate_groups(c);
    double acc = 0.0;
    for (int g : groups) acc += values.groups[g - 1];
    return acc;
  });
  search::SubspaceObjective sub(objective, app.space(), indices, app.baseline());
  return bo::BayesOpt(bo_options(evals, seed)).run(sub, sub.space());
}

/// Compose group-search winners into a full config and evaluate F.
StrategyResult compose(synth::SynthApp& app,
                       const std::vector<std::vector<int>>& partition,
                       const std::vector<std::size_t>& budgets, std::uint64_t seed) {
  search::Config combined = app.baseline();
  double slowest = 0.0;
  for (std::size_t s = 0; s < partition.size(); ++s) {
    const auto result = run_group_search(app, partition[s], budgets[s], seed + 31 * s);
    slowest = std::max(slowest, result.seconds);
    std::size_t k = 0;
    for (int g : partition[s]) {
      for (std::size_t i = 0; i < 5; ++i) {
        combined[5 * (g - 1) + i] = result.best_config[k++];
      }
    }
  }
  return {app.function().evaluate(combined), slowest};
}

}  // namespace

int main() {
  std::cout << "=== Table III: minima found / search time (s), averaged over "
            << kRepeats << " runs ===\n";
  Table table({"Case", "Random minima", "Random t", "Joint BO minima", "Joint t",
               "G1,G2,G3+G4 minima", "G1,G2,G3+G4 t", "G1,G2,G3,G4 minima",
               "G1,G2,G3,G4 t", "Suggested"});

  for (int c = 1; c <= 5; ++c) {
    StrategyResult random{}, joint{}, split{}, indep{};
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      const std::uint64_t seed = 1000 * static_cast<std::uint64_t>(c) + rep;
      synth::SynthApp app(static_cast<synth::SynthCase>(c), 0.01, 12345);

      // Random search over all 20 dims.
      {
        search::FunctionObjective objective(
            [&app](const search::Config& x) { return app.function().evaluate(x); });
        search::RandomSearchOptions opt;
        opt.max_evals = 200;
        opt.seed = seed;
        const auto r = search::RandomSearch(opt).run(objective, app.space());
        random.minimum += r.best_value;
        random.seconds += r.seconds;
      }

      // Fully joint 20-dim BO.
      {
        search::FunctionObjective objective(
            [&app](const search::Config& x) { return app.function().evaluate(x); });
        const auto r = bo::BayesOpt(bo_options(200, seed)).run(objective, app.space());
        joint.minimum += r.best_value;
        joint.seconds += r.seconds;
      }

      // Methodology split: G1, G2, G3+G4 (N = 50, 50, 100).
      {
        const auto r = compose(app, {{1}, {2}, {3, 4}}, {50, 50, 100}, seed);
        split.minimum += r.minimum;
        split.seconds += r.seconds;
      }

      // Fully independent: G1..G4 (N = 50 each).
      {
        const auto r = compose(app, {{1}, {2}, {3}, {4}}, {50, 50, 50, 50}, seed);
        indep.minimum += r.minimum;
        indep.seconds += r.seconds;
      }
    }

    const double n = static_cast<double>(kRepeats);
    const bool merged_suggested = c >= 3;  // methodology merges G3+G4 on cases 3-5
    table.add_row({"Case " + std::to_string(c), Table::fmt(random.minimum / n, 1),
                   Table::fmt(random.seconds / n, 2), Table::fmt(joint.minimum / n, 1),
                   Table::fmt(joint.seconds / n, 2), Table::fmt(split.minimum / n, 1),
                   Table::fmt(split.seconds / n, 2), Table::fmt(indep.minimum / n, 1),
                   Table::fmt(indep.seconds / n, 2),
                   merged_suggested ? "G1,G2,G3+G4" : "G1,G2,G3,G4"});
    std::cout << "finished case " << c << "\n";
  }
  std::cout << table.str();
  std::cout << "(multi-search strategies report the slowest member's time — the\n"
               " searches run concurrently; Random Search is embarrassingly\n"
               " parallel, matching the paper's observation)\n";
  return 0;
}
