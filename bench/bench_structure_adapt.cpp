// Online structure adaptation: static vs living partition on a mis-specified
// synthetic objective.
//
// The objective is a 6-dim sum of three coupled pair terms
//   h(a, b) = (a + b - 1)^2 + 0.5 (a - b + 0.2)^2
// over the true blocks {0,1} {2,3} {4,5} — each pair has a genuine
// multiplicative cross term (expand: the ab coefficients do not cancel), so
// an additive GP split across a pair cannot model it. Three arms:
//
//   static-correct — AdditiveBo seeded with the true blocks (the oracle).
//   static-wrong   — AdditiveBo seeded with a partition that cuts every true
//                    pair, never corrected (the paper's fixed Phase-1 cut
//                    when the analysis was wrong).
//   online-wrong   — the same wrong seed, but a structure::OnlineLearner
//                    watches the observation stream through the regroup hook
//                    and re-cuts the search mid-run.
//
// Emits BENCH_structure_adapt.json (override with TUNEKIT_BENCH_OUT):
// best-found-vs-evals trajectories per arm, every repartition event, and the
// acceptance summary (online must repartition >= 1x and reach the oracle's
// best within 1.5x its budget). Exits nonzero when the acceptance fails, so
// CI gates the adaptation behavior instead of eyeballing it.
//
// --smoke shrinks budgets/repeats for CI smoke runs (same gates).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bo/additive_bo.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"
#include "structure/online_learner.hpp"

using namespace tunekit;

namespace {

constexpr std::size_t kDims = 6;

search::SearchSpace unit_cube() {
  search::SearchSpace s;
  for (std::size_t i = 0; i < kDims; ++i) {
    s.add(search::ParamSpec::real("x" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return s;
}

/// Pairwise-coupled objective; unique minimum 0 at a=0.4, b=0.6 per block.
double pair_term(double a, double b) {
  const double u = a + b - 1.0;
  const double v = a - b + 0.2;
  return u * u + 0.5 * v * v;
}

search::FunctionObjective coupled_objective() {
  return search::FunctionObjective([](const search::Config& c) {
    return pair_term(c[0], c[1]) + pair_term(c[2], c[3]) + pair_term(c[4], c[5]);
  });
}

const std::vector<std::vector<std::size_t>> kTrueBlocks{{0, 1}, {2, 3}, {4, 5}};
/// Every true pair is cut; every block pairs non-interacting coordinates.
const std::vector<std::vector<std::size_t>> kWrongBlocks{{0, 3}, {1, 4}, {2, 5}};

structure::OnlineLearnerOptions learner_options(std::uint64_t seed) {
  structure::OnlineLearnerOptions opt;
  opt.cadence = 10;
  opt.min_observations = 20;
  opt.affinity_threshold = 0.3;
  opt.policy.evidence_threshold = 0.15;
  opt.policy.hysteresis = 2;
  opt.policy.cooldown = 10;
  opt.affinity.forest.seed = seed ^ 0xbeefull;
  return opt;
}

struct RepartitionEvent {
  std::size_t eval = 0;
  structure::Partition partition;
};

struct ArmResult {
  std::vector<double> trajectory;  // best-found after each eval
  double best = 0.0;
  std::vector<RepartitionEvent> events;
};

ArmResult run_arm(const std::vector<std::vector<std::size_t>>& seed_blocks,
                  std::size_t budget, std::uint64_t seed, bool online) {
  auto obj = coupled_objective();
  const auto space = unit_cube();
  bo::AdditiveBoOptions opt;
  opt.max_evals = budget;
  opt.seed = seed;

  ArmResult out;
  std::shared_ptr<structure::OnlineLearner> learner;
  if (online) {
    learner = std::make_shared<structure::OnlineLearner>(
        kDims, seed_blocks, learner_options(seed));
    // The hook sees the cumulative archive; feed only the unseen tail.
    auto fed = std::make_shared<std::size_t>(0);
    opt.regroup_hook = [learner, fed, &out](
                           const std::vector<std::vector<double>>& units,
                           const std::vector<double>& values)
        -> std::optional<std::vector<std::vector<std::size_t>>> {
      bool repartitioned = false;
      for (; *fed < values.size(); ++*fed) {
        repartitioned |= learner->observe(units[*fed], values[*fed]).repartitioned;
      }
      if (!repartitioned) return std::nullopt;
      out.events.push_back({learner->last_repartition_eval(),
                            learner->active_partition()});
      return learner->active_partition();
    };
  }

  const auto result = bo::AdditiveBo(seed_blocks, opt).run(obj, space);
  out.trajectory = result.trajectory;
  out.best = result.best_value;
  return out;
}

json::Value trajectory_json(const std::vector<double>& t) {
  json::Array a;
  a.reserve(t.size());
  for (double v : t) a.emplace_back(v);
  return json::Value(std::move(a));
}

json::Value events_json(const std::vector<RepartitionEvent>& events) {
  json::Array a;
  for (const auto& e : events) {
    json::Object o;
    o["eval"] = json::Value(static_cast<double>(e.eval));
    json::Array blocks;
    for (const auto& block : e.partition) {
      json::Array b;
      for (std::size_t i : block) b.emplace_back(static_cast<double>(i));
      blocks.emplace_back(std::move(b));
    }
    o["partition"] = json::Value(std::move(blocks));
    a.emplace_back(std::move(o));
  }
  return json::Value(std::move(a));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Budget 60 is where a wrong cut hurts most: at long budgets even the
  // mis-specified additive GP stumbles onto good points and the arms blur.
  const std::size_t budget = 60;
  const std::size_t online_budget = budget + budget / 2;  // the 1.5x allowance
  const std::size_t repeats = smoke ? 1 : 3;

  std::printf("=== Structure adaptation: static vs online repartition ===\n");
  std::printf("(oracle budget %zu, online budget %zu, %zu repeat%s%s)\n\n",
              budget, online_budget, repeats, repeats == 1 ? "" : "s",
              smoke ? ", smoke" : "");

  json::Array runs;
  double correct_sum = 0.0, wrong_sum = 0.0, online_sum = 0.0;
  std::size_t total_repartitions = 0;

  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const std::uint64_t seed = 900 + rep;
    const ArmResult correct = run_arm(kTrueBlocks, budget, seed, false);
    const ArmResult wrong = run_arm(kWrongBlocks, online_budget, seed, false);
    const ArmResult online = run_arm(kWrongBlocks, online_budget, seed, true);

    correct_sum += correct.best;
    wrong_sum += wrong.best;
    online_sum += online.best;
    total_repartitions += online.events.size();

    json::Object run;
    run["seed"] = json::Value(static_cast<double>(seed));
    run["static_correct"] = trajectory_json(correct.trajectory);
    run["static_wrong"] = trajectory_json(wrong.trajectory);
    run["online_wrong"] = trajectory_json(online.trajectory);
    run["repartitions"] = events_json(online.events);
    runs.emplace_back(std::move(run));

    std::printf("repeat %zu: correct=%.4f wrong=%.4f online=%.4f "
                "(repartitions: %zu)\n",
                rep + 1, correct.best, wrong.best, online.best,
                online.events.size());
  }

  const double n = static_cast<double>(repeats);
  Table table({"Arm", "Budget", "Best F (avg)"});
  table.add_row({"static correct (oracle)", std::to_string(budget),
                 Table::fmt(correct_sum / n, 4)});
  table.add_row({"static wrong", std::to_string(online_budget),
                 Table::fmt(wrong_sum / n, 4)});
  table.add_row({"online repartition", std::to_string(online_budget),
                 Table::fmt(online_sum / n, 4)});
  std::printf("\n%s", table.str().c_str());

  json::Object bench;
  bench["bench"] = json::Value(std::string("structure_adapt"));
  bench["dims"] = json::Value(static_cast<double>(kDims));
  bench["budget"] = json::Value(static_cast<double>(budget));
  bench["online_budget"] = json::Value(static_cast<double>(online_budget));
  bench["repeats"] = json::Value(static_cast<double>(repeats));
  bench["smoke"] = json::Value(smoke);
  bench["static_correct_best_avg"] = json::Value(correct_sum / n);
  bench["static_wrong_best_avg"] = json::Value(wrong_sum / n);
  bench["online_best_avg"] = json::Value(online_sum / n);
  bench["repartitions_total"] = json::Value(static_cast<double>(total_repartitions));
  bench["runs"] = json::Value(std::move(runs));

  const char* out_env = std::getenv("TUNEKIT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_structure_adapt.json";
  std::ofstream out(out_path);
  out << json::Value(std::move(bench)).dump(2) << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (total_repartitions == 0) {
    std::fprintf(stderr, "FAIL: the online arm never repartitioned\n");
    return 1;
  }
  // Acceptance gate on the averages (per-repeat GP noise is too large to
  // gate single runs): within 1.5x the oracle's budget the online arm must
  // reach the oracle's best-found, with a small absolute slack.
  if (online_sum / n > correct_sum / n + 0.02) {
    std::fprintf(stderr,
                 "FAIL: online arm (avg %.4f) did not reach the oracle's best "
                 "(avg %.4f) within 1.5x its budget\n",
                 online_sum / n, correct_sum / n);
    return 1;
  }
  return 0;
}
