// Ablation (§IV-B / §VIII): how many variations per parameter does the
// sensitivity analysis need? The paper notes "more variations improve
// accuracy, but real HPC applications ... are resource-intensive" and uses
// V = 5 expert variations for RT-TDDFT. Sweep V and report (a) observations
// consumed and (b) whether the resulting plan is stable.

#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/methodology.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

std::string plan_summary(const graph::SearchPlan& plan) {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : plan.searches) {
    if (!first) os << " | ";
    first = false;
    os << s.name;
  }
  return os.str();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: sensitivity variations per parameter (V) ===\n\n";

  std::cout << "--- RT-TDDFT CS1 (ladder mode so V actually varies) ---\n";
  Table tddft_table({"V", "Observations", "Resulting plan"});
  for (std::size_t v : {1u, 2u, 3u, 5u, 10u, 20u}) {
    tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
    core::MethodologyOptions opt;
    opt.cutoff = 0.10;
    opt.importance_samples = 0;
    opt.sensitivity.mode = stats::VariationMode::MultiplicativeLadder;
    opt.sensitivity.n_variations = v;
    opt.use_app_expert_variations = false;  // force the ladder so V is honored
    core::Methodology m(opt);
    const auto analysis = m.analyze(app);
    const auto plan = m.make_plan(app, analysis);
    tddft_table.add_row({std::to_string(v), std::to_string(analysis.observations),
                         plan_summary(plan)});
  }
  std::cout << tddft_table.str();
  std::cout << "(the paper's protocol — 5 expert variations — lands where the plan\n"
               " has stabilized; fewer variations risk missing the G2->G3 edge)\n\n";

  std::cout << "--- Synthetic Case 3 (25% cut-off) ---\n";
  Table synth_table({"V", "Observations", "Resulting plan"});
  for (std::size_t v : {5u, 10u, 25u, 50u, 100u}) {
    synth::SynthApp app(synth::SynthCase::Case3);
    core::MethodologyOptions opt;
    opt.cutoff = 0.25;
    opt.importance_samples = 0;
    opt.sensitivity.n_variations = v;
    opt.sensitivity.ladder_factor = 1.10;
    core::Methodology m(opt);
    const auto analysis = m.analyze(app);
    const auto plan = m.make_plan(app, analysis);
    synth_table.add_row({std::to_string(v), std::to_string(analysis.observations),
                         plan_summary(plan)});
  }
  std::cout << synth_table.str();
  return 0;
}
