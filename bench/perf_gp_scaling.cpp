// google-benchmark: the O(N^3) Gaussian-process training cost the paper
// cites as the reason high-dimensional joint searches need disproportionate
// budgets — plus the prediction cost that drives acquisition maximization.

#include <benchmark/benchmark.h>

#include "bo/gp.hpp"
#include "common/rng.hpp"

using namespace tunekit;

namespace {

struct Dataset {
  linalg::Matrix x;
  std::vector<double> y;
};

Dataset make_dataset(std::size_t n, std::size_t dim) {
  Rng rng(17);
  Dataset d{linalg::Matrix(n, dim), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      d.x(i, k) = rng.uniform();
      acc += (d.x(i, k) - 0.3) * (d.x(i, k) - 0.3);
    }
    d.y[i] = acc;
  }
  return d;
}

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto data = make_dataset(n, dim);
  bo::GaussianProcess gp;
  gp.set_hyperparams(bo::GpHyperparams::isotropic(dim, 0.3));
  for (auto _ : state) {
    gp.fit(data.x, data.y);
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
  state.SetComplexityN(state.range(0));
}

void BM_GpPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = make_dataset(n, 10);
  bo::GaussianProcess gp;
  gp.set_hyperparams(bo::GpHyperparams::isotropic(10, 0.3));
  gp.fit(data.x, data.y);
  const std::vector<double> probe(10, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict(probe));
  }
}

void BM_GpHyperopt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = make_dataset(n, 5);
  for (auto _ : state) {
    bo::GaussianProcess gp;
    Rng rng(3);
    gp.fit_with_hyperopt(data.x, data.y, rng, 1, 30);
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}

}  // namespace

BENCHMARK(BM_GpFit)
    ->Args({25, 10})
    ->Args({50, 10})
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({200, 20})
    ->Complexity(benchmark::oNCubed);
BENCHMARK(BM_GpPredict)->Arg(50)->Arg(100)->Arg(200);
BENCHMARK(BM_GpHyperopt)->Arg(30)->Arg(60);
