// Table IV reproduction: the RT-TDDFT tuning parameters and the size of the
// search space, for both case studies.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

void print_for(const tddft::PhysicalSystem& system) {
  tddft::RtTddftApp app(system, /*nodes=*/10);
  const auto& space = app.space();
  std::cout << "--- " << system.name << " ---\n";

  Table table({"Parameter", "Kind", "Configurations"});
  for (const auto& p : space.params()) {
    const std::size_t card = p.cardinality();
    table.add_row({p.name(), search::to_string(p.kind()),
                   card ? std::to_string(card) : "continuous"});
  }
  std::cout << table.str();

  // The paper reports 41,943,040 x N_nstb x N_nkpb x N_nspb; our per-kernel
  // block is (4 x 32 x 32)^5 x 32 x 32.
  std::vector<std::size_t> gpu;
  for (std::size_t i = 3; i < space.size(); ++i) gpu.push_back(i);
  const double gpu_log10 = space.subspace(gpu).log10_cardinality();
  const double full_log10 = space.log10_cardinality();
  std::cout << "GPU-parameter configurations: 10^" << Table::fmt(gpu_log10, 2)
            << "  (= (4*32*32)^5 * 32 * 32)\n";
  std::cout << "Full space (incl. MPI grid):  10^" << Table::fmt(full_log10, 2) << "\n";

  // Constraint pressure: fraction of random configurations that are valid.
  tunekit::Rng rng(7);
  int valid = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (space.is_valid(space.sample(rng))) ++valid;
  }
  std::cout << "Validity rate of uniform samples: "
            << Table::pct(static_cast<double>(valid) / kTrials, 1)
            << "  (residency + MPI-grid constraints)\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Table IV: RT-TDDFT tuning parameters and search-space size ===\n\n";
  print_for(tddft::PhysicalSystem::case_study_1());
  print_for(tddft::PhysicalSystem::case_study_2());
  return 0;
}
