// Table II reproduction: variability of Group 3's output for the five
// synthetic cases — the top-10 sensitive variables per case, computed with
// the paper's protocol (random baseline, 100 variations per parameter, each
// +10% over the previous).
//
// Shape to reproduce: Cases 1-2 dominated by Group 3's own variables
// (x10..x14), Case 3 balanced, Cases 4-5 dominated by Group 4's variables
// (x15..x19).

#include <iostream>

#include "common/table.hpp"
#include "core/methodology.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

int main() {
  constexpr std::uint64_t kSeed = 12345;
  std::cout << "=== Table II: Group 3 output variability (baseline seed " << kSeed
            << ") ===\n";

  // One sensitivity report per case.
  std::vector<stats::SensitivityReport> reports;
  std::size_t observations = 0;
  for (int c = 1; c <= 5; ++c) {
    synth::SynthApp app(static_cast<synth::SynthCase>(c), 0.01, kSeed);
    stats::SensitivityOptions opt;
    opt.n_variations = 100;
    opt.ladder_factor = 1.10;
    stats::SensitivityAnalyzer analyzer(opt);
    reports.push_back(analyzer.analyze(app, app.space(), app.baseline()));
    observations += reports.back().observations;
  }

  // Paper layout: rows are x10..x19, columns are the cases.
  Table table({"Feature", "Case 1", "Case 2", "Case 3", "Case 4", "Case 5"});
  for (std::size_t p = 10; p <= 19; ++p) {
    std::vector<std::string> row{"x" + std::to_string(p)};
    for (const auto& report : reports) {
      row.push_back(Table::pct(report.score("Group3", p), 2));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.str();

  std::cout << "\nTop-10 sensitive variables per case (always Group 3 + Group 4 "
               "variables, as in the paper):\n";
  Table top({"Rank", "Case 1", "Case 2", "Case 3", "Case 4", "Case 5"});
  std::vector<std::vector<stats::SensitivityEntry>> tops;
  for (const auto& report : reports) tops.push_back(report.top("Group3", 10));
  for (std::size_t rank = 0; rank < 10; ++rank) {
    std::vector<std::string> row{std::to_string(rank + 1)};
    for (const auto& t : tops) row.push_back(t[rank].param_name);
    top.add_row(std::move(row));
  }
  std::cout << top.str();
  std::cout << "Total observations across all five analyses: " << observations << "\n";
  return 0;
}
