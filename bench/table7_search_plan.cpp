// Table VII + Figure 5 reproduction: the lower-dimensional searches the
// methodology generates for RT-TDDFT, and the dependency diagram between
// them.
//
// Expected (the paper's Table VII):
//   MPI Grid   (3):  nstb, nkpb, nspb
//   Iterations (2):  nbatches, nstreams
//   Group 1    (3):  u_VEC, tb_VEC, tb_sm_VEC
//   Group 2+3 (10):  PAIR + ZCOPY + DSCAL knobs + ZVEC remainder,
//                    two ZVEC/ZCOPY parameters dropped by the 10-dim cap.

#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

void plan_for(const tddft::PhysicalSystem& system) {
  tddft::RtTddftApp app(system);
  core::MethodologyOptions opt;
  opt.cutoff = 0.10;  // the paper's strict 10% cut-off
  opt.importance_samples = 100;
  opt.forest.n_trees = 60;
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);

  std::cout << "--- " << app.name() << " ---\n";
  std::cout << core::plan_table(plan, analysis.graph) << "\n";

  std::cout << "Figure 5: search dependencies\n";
  std::cout << "  stage 0 (first):  shared application parameters tuned against the\n"
               "                    Slater Determinant region\n";
  std::cout << "  stage 1:          MPI structure aligned with the tuned iteration\n"
               "                    shape\n";
  std::cout << "  stage 2 (last):   per-group kernel searches, Group2+Group3 joint\n";
  for (std::size_t stage = 0; stage < plan.n_stages(); ++stage) {
    for (const auto* s : plan.stage_searches(stage)) {
      std::cout << "    [stage " << stage << "] " << s->name << " (" << s->params.size()
                << " params)\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Table VII / Figure 5: generated lower-dimensional searches ===\n\n";
  plan_for(tddft::PhysicalSystem::case_study_1());
  plan_for(tddft::PhysicalSystem::case_study_2());
  std::cout << "(the paper reports the same strategy for both material systems)\n";
  return 0;
}
