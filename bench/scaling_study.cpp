// Extension bench: strong scaling of the tuned RT-TDDFT configuration.
//
// The paper motivates tuning with "significant savings of computing hours"
// when scaling across Perlmutter resources. This harness sweeps the node
// allocation, runs the methodology at each size, and compares the tuned
// per-iteration runtime against the default configuration — showing that
// the best configuration (MPI grid in particular) changes with scale, so a
// configuration tuned at one size should not be blindly reused at another.

#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/methodology.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

double default_runtime(const tddft::PhysicalSystem& system, int nodes) {
  tddft::RtTddftApp app(system, nodes);
  return app.evaluate_regions(app.space().defaults()).total;
}

struct Tuned {
  double runtime;
  search::NamedConfig mpi;
  std::size_t evals;
};

Tuned tuned_runtime(const tddft::PhysicalSystem& system, int nodes) {
  tddft::RtTddftApp app(system, nodes);
  core::MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 8;
  opt.executor.min_evals = 16;
  opt.executor.bo.seed = 1000 + static_cast<std::uint64_t>(nodes);
  core::Methodology m(opt);
  const auto result = m.run(app);

  Tuned out;
  out.runtime = result.execution.final_times.total;
  out.evals = result.total_observations;
  const auto named = search::to_named(app.space(), result.execution.final_config);
  for (const char* k : {"nstb", "nkpb", "nspb"}) out.mpi[k] = named.at(k);
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Scaling study: tuned vs default across allocations ===\n";
  std::cout << "(per-iteration runtime in ms; MPI grid shown as nstb x nkpb x nspb)\n\n";

  for (const auto& system :
       {tddft::PhysicalSystem::case_study_1(), tddft::PhysicalSystem::case_study_2()}) {
    std::cout << "--- " << system.name << " ---\n";
    Table table({"Nodes", "Ranks", "Default (ms)", "Tuned (ms)", "Speedup", "Tuned grid",
                 "Observations"});
    for (int nodes : {1, 2, 4, 10}) {
      const double def = default_runtime(system, nodes);
      const Tuned tuned = tuned_runtime(system, nodes);
      std::ostringstream grid;
      grid << tuned.mpi.at("nstb") << "x" << tuned.mpi.at("nkpb") << "x"
           << tuned.mpi.at("nspb");
      table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                     Table::fmt(def * 1e3, 2), Table::fmt(tuned.runtime * 1e3, 2),
                     Table::fmt(def / tuned.runtime, 2) + "x", grid.str(),
                     std::to_string(tuned.evals)});
    }
    std::cout << table.str() << "\n";
  }
  std::cout << "(the optimal MPI grid grows with the allocation — a configuration\n"
               " tuned at one scale is suboptimal at another, motivating re-tuning\n"
               " or transfer learning across scales)\n";
  return 0;
}
