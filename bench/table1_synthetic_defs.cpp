// Table I / Figure 1 reproduction: the synthetic function family.
// Prints each case's Group 3 definition, its Group-4 influence label, and
// sanity values of all four groups at a reference point.

#include <iostream>

#include "common/table.hpp"
#include "synth/synthetic.hpp"

using namespace tunekit;

int main() {
  std::cout << "=== Table I: synthetic case definitions (Fig. 1 family) ===\n";
  std::cout << "F(x0..x19) = sum over groups of log|group|; x_i in [-50, 50]\n";
  std::cout << "Group1 = sum (x_i - x_{i+1})^2 + sum A_i            (i = 0..4)\n";
  std::cout << "Group2 = sum (x_k - x_{k+1})^4 + sum A_k            (k = 5..9)\n";
  std::cout << "Group4 = sum 1/x_v + eps                            (v = 15..19)\n";
  std::cout << "A_i = 10 cos(2 pi (x_i - 1)) + eps\n\n";

  const char* group3_formula[5] = {
      "sum x_u + sum cos(2 pi x_v) + eps",
      "sum x_u^2 + sum x_v + eps",
      "sum x_u^2 + sum x_v^2 + eps",
      "sum (x_u x_v^4)^2 + eps",
      "sum (x_u x_v^8)^2 + eps",
  };

  Table table({"Name", "Group 4's influence", "Group 3 formula", "G1@x=3", "G2@x=3",
               "G3@x=3", "G4@x=3"});
  const std::vector<double> ref(synth::SyntheticFunction::kDim, 3.0);
  for (int c = 1; c <= 5; ++c) {
    const auto which = static_cast<synth::SynthCase>(c);
    synth::SyntheticFunction f(which, /*noise_scale=*/0.0);
    const auto g = f.evaluate_groups(ref);
    table.add_row({to_string(which), group4_influence_label(which),
                   group3_formula[c - 1], Table::fmt(g.groups[0], 2),
                   Table::fmt(g.groups[1], 2), Table::fmt(g.groups[2], 2),
                   Table::fmt(g.groups[3], 2)});
  }
  std::cout << table.str();
  std::cout << "(group values shown are the log-transformed outputs at x_i = 3)\n";
  return 0;
}
