// The paper's core cost argument (§IV-C): inferring routine interdependence
// from per-routine *sensitivity* needs O(V·D) observations, while the
// classical pairwise orthogonality analysis needs O(V·D²) — prohibitive when
// one observation is a full HPC application run.
//
// This harness runs both analyses on the synthetic cases and on RT-TDDFT
// CS1 and reports (a) observations consumed and (b) whether each analysis
// recovers the correct partition.

#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "core/methodology.hpp"
#include "stats/orthogonality.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

std::string group_summary(const std::vector<std::vector<std::size_t>>& groups) {
  std::ostringstream os;
  bool first_group = true;
  for (const auto& g : groups) {
    if (g.size() < 2) continue;  // singletons are uninformative here
    if (!first_group) os << " ";
    first_group = false;
    os << "{";
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (i) os << ",";
      os << g[i];
    }
    os << "}";
  }
  return first_group ? std::string("none") : os.str();
}

std::string plan_summary(const graph::SearchPlan& plan) {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : plan.searches) {
    if (!first) os << " | ";
    first = false;
    os << s.name;
  }
  return os.str();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: observation cost of interdependence analyses ===\n\n";
  std::cout << "--- Synthetic cases (D = 20) ---\n";
  Table table({"Case", "Sensitivity obs", "Suggested partition", "Orthogonality obs",
               "Interacting vars (pairwise)"});

  for (int c : {1, 3, 5}) {
    synth::SynthApp app(static_cast<synth::SynthCase>(c));

    // Methodology's sensitivity-based analysis (the paper's protocol).
    core::MethodologyOptions mopt;
    mopt.cutoff = 0.25;
    mopt.sensitivity.n_variations = 100;
    mopt.importance_samples = 0;
    core::Methodology m(mopt);
    const auto analysis = m.analyze(app);
    const auto plan = m.make_plan(app, analysis);

    // Classical pairwise orthogonality on the full objective.
    search::FunctionObjective objective(
        [&app](const search::Config& x) { return app.function().evaluate(x); });
    stats::OrthogonalityOptions oopt;
    oopt.n_draws = 3;
    stats::OrthogonalityAnalyzer orth(oopt);
    tunekit::Rng rng(17);
    const auto report = orth.analyze(objective, app.space(), app.baseline(), rng);

    table.add_row({"Case " + std::to_string(c), std::to_string(analysis.observations),
                   plan_summary(plan), std::to_string(report.observations),
                   group_summary(report.additive_groups(0.02))});
  }
  std::cout << table.str();

  std::cout << "\n--- RT-TDDFT Case Study 1 (D = 20, expensive evaluations) ---\n";
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  core::MethodologyOptions mopt;
  mopt.cutoff = 0.10;
  mopt.importance_samples = 0;
  core::Methodology m(mopt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);

  stats::OrthogonalityOptions oopt;
  oopt.n_draws = 3;
  stats::OrthogonalityAnalyzer orth(oopt);
  const std::size_t predicted = orth.predicted_observations(app.space().size());

  Table tddft_table({"Analysis", "Observations", "Outcome"});
  tddft_table.add_row({"Sensitivity (methodology)", std::to_string(analysis.observations),
                       plan_summary(plan)});
  tddft_table.add_row({"Pairwise orthogonality", std::to_string(predicted) + " (predicted)",
                       "each one a full application run"});
  std::cout << tddft_table.str();

  const double ratio =
      static_cast<double>(predicted) / static_cast<double>(analysis.observations);
  std::cout << "Cost ratio (orthogonality / sensitivity): " << Table::fmt(ratio, 1)
            << "x\n";
  std::cout << "(the methodology's analysis also yields per-routine influence scores,\n"
               " which the pairwise analysis does not provide)\n";
  return 0;
}
