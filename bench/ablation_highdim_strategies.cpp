// §II reproduction: the three high-dimensional BO strategies the paper
// surveys — random embeddings (REMBO), dropout BO, and additive
// decomposition (Kandasamy) — against the methodology's partitioned search
// and plain joint BO, on the hardest synthetic case (Case 5).
//
// Shape to reproduce (the paper's qualitative claims):
//   * embeddings distort near the box boundary and miss the optimum,
//   * dropout converges slowly ("slower convergence rate"),
//   * additive BO needs the right decomposition; with the methodology's
//     partition it is competitive, but discovering that partition costs a
//     quadratic orthogonality analysis (see ablation_observation_cost),
//   * the methodology's split searches reach the best configurations at the
//     same total budget.

#include <iostream>

#include "bo/additive_bo.hpp"
#include "bo/bayes_opt.hpp"
#include "bo/dropout_bo.hpp"
#include "bo/rembo.hpp"
#include "common/table.hpp"
#include "search/random_search.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

namespace {

constexpr std::size_t kBudget = 200;
constexpr std::size_t kRepeats = 3;

search::FunctionObjective full_objective(synth::SynthApp& app) {
  return search::FunctionObjective(
      [&app](const search::Config& x) { return app.function().evaluate(x); });
}

/// The methodology's strategy for Case 5: G1, G2, G3+G4 with 50/50/100.
double methodology_strategy(synth::SynthApp& app, std::uint64_t seed) {
  search::Config combined = app.baseline();
  const std::vector<std::pair<std::vector<int>, std::size_t>> searches{
      {{1}, 50}, {{2}, 50}, {{3, 4}, 100}};
  for (std::size_t s = 0; s < searches.size(); ++s) {
    const auto& [groups, evals] = searches[s];
    std::vector<std::size_t> indices;
    for (int g : groups) {
      for (std::size_t i = 0; i < 5; ++i) indices.push_back(5 * (g - 1) + i);
    }
    search::FunctionObjective objective([&app, &groups = groups](const search::Config& c) {
      const auto values = app.function().evaluate_groups(c);
      double acc = 0.0;
      for (int g : groups) acc += values.groups[g - 1];
      return acc;
    });
    search::SubspaceObjective sub(objective, app.space(), indices, app.baseline());
    bo::BoOptions opt;
    opt.max_evals = evals;
    opt.seed = seed + 31 * s;
    opt.hyperopt_every = 10;
    opt.hyperopt_restarts = 1;
    opt.hyperopt_max_iters = 60;
    opt.maximizer.n_candidates = 256;
    const auto r = bo::BayesOpt(opt).run(sub, sub.space());
    std::size_t k = 0;
    for (int g : groups) {
      for (std::size_t i = 0; i < 5; ++i) combined[5 * (g - 1) + i] = r.best_config[k++];
    }
  }
  return app.function().evaluate(combined);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: high-dimensional BO strategies, synthetic Case 5 ===\n";
  std::cout << "(budget " << kBudget << " evaluations per strategy, " << kRepeats
            << " repeats; objective F, lower is better)\n\n";

  struct Acc {
    double sum = 0.0;
  };
  Acc random, joint, dropout, rembo, additive_right, additive_wrong, methodology;

  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    const std::uint64_t seed = 500 + rep;
    synth::SynthApp app(synth::SynthCase::Case5);

    {
      auto obj = full_objective(app);
      search::RandomSearchOptions opt;
      opt.max_evals = kBudget;
      opt.seed = seed;
      random.sum += search::RandomSearch(opt).run(obj, app.space()).best_value;
    }
    {
      auto obj = full_objective(app);
      bo::BoOptions opt;
      opt.max_evals = kBudget;
      opt.seed = seed;
      opt.hyperopt_every = 10;
      opt.hyperopt_restarts = 1;
      opt.hyperopt_max_iters = 60;
      opt.maximizer.n_candidates = 256;
      joint.sum += bo::BayesOpt(opt).run(obj, app.space()).best_value;
    }
    {
      auto obj = full_objective(app);
      bo::DropoutBoOptions opt;
      opt.max_evals = kBudget;
      opt.active_dims = 5;
      opt.seed = seed;
      dropout.sum += bo::DropoutBo(opt).run(obj, app.space()).best_value;
    }
    {
      auto obj = full_objective(app);
      bo::RemboOptions opt;
      opt.max_evals = kBudget;
      opt.embedding_dims = 5;
      opt.seed = seed;
      rembo.sum += bo::Rembo(opt).run(obj, app.space()).best_value;
    }
    {
      // Additive BO with the *correct* interdependence-aware decomposition
      // (what an orthogonality analysis would discover at quadratic cost).
      auto obj = full_objective(app);
      bo::AdditiveBoOptions opt;
      opt.max_evals = kBudget;
      opt.seed = seed;
      bo::AdditiveBo driver({{0, 1, 2, 3, 4},
                             {5, 6, 7, 8, 9},
                             {10, 11, 12, 13, 14, 15, 16, 17, 18, 19}},
                            opt);
      additive_right.sum += driver.run(obj, app.space()).best_value;
    }
    {
      // Additive BO with the naive per-group decomposition that ignores the
      // G3-G4 interdependence — the modeling error the paper warns about.
      auto obj = full_objective(app);
      bo::AdditiveBoOptions opt;
      opt.max_evals = kBudget;
      opt.seed = seed;
      bo::AdditiveBo driver({{0, 1, 2, 3, 4},
                             {5, 6, 7, 8, 9},
                             {10, 11, 12, 13, 14},
                             {15, 16, 17, 18, 19}},
                            opt);
      additive_wrong.sum += driver.run(obj, app.space()).best_value;
    }
    { methodology.sum += methodology_strategy(app, seed); }
    std::cout << "finished repeat " << rep + 1 << "/" << kRepeats << "\n";
  }

  const double n = static_cast<double>(kRepeats);
  Table table({"Strategy", "F at best (avg)", "Notes"});
  table.add_row({"Random search", Table::fmt(random.sum / n, 1), "baseline"});
  table.add_row({"Joint BO (20-dim)", Table::fmt(joint.sum / n, 1),
                 "struggles past ~20 dims"});
  table.add_row({"Dropout BO (d=5)", Table::fmt(dropout.sum / n, 1),
                 "random subspace per iter"});
  table.add_row({"REMBO (d=5)", Table::fmt(rembo.sum / n, 1), "random linear embedding"});
  table.add_row({"Additive BO (G3+G4 merged)", Table::fmt(additive_right.sum / n, 1),
                 "correct decomposition"});
  table.add_row({"Additive BO (naive groups)", Table::fmt(additive_wrong.sum / n, 1),
                 "ignores G3-G4 coupling"});
  table.add_row({"Methodology (G1,G2,G3+G4)", Table::fmt(methodology.sum / n, 1),
                 "sensitivity-guided split"});
  std::cout << "\n" << table.str();
  return 0;
}
