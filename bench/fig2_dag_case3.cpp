// Figure 2 reproduction: the influence DAG for synthetic Case 3 after the
// 25% cut-off. The paper's diagram shows Groups 1, 2, 4 self-contained and
// Group 4's variables (x15..x19) linking into Group 3, forcing a joint
// Group3+Group4 search.

#include <iostream>

#include "core/methodology.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

int main() {
  constexpr double kCutoff = 0.25;
  synth::SynthApp app(synth::SynthCase::Case3);

  core::MethodologyOptions opt;
  opt.cutoff = kCutoff;
  opt.sensitivity.n_variations = 100;
  opt.sensitivity.ladder_factor = 1.10;
  opt.importance_samples = 0;
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto pruned = analysis.graph.pruned(kCutoff);

  std::cout << "=== Figure 2: influence DAG, synthetic Case 3, cut-off 25% ===\n\n";
  std::cout << "Cross edges surviving the cut-off (param owner -> influenced group):\n";
  for (const auto& e : pruned.cross_edges()) {
    std::cout << "  " << analysis.graph.param_name(e.param) << " ("
              << analysis.graph.routine_name(e.from_routine) << ") -> "
              << analysis.graph.routine_name(e.to_routine) << "  ["
              << static_cast<int>(e.weight * 100.0) << "%]\n";
  }

  std::cout << "\nResulting partition:\n";
  const auto plan = m.make_plan(app, analysis);
  std::cout << plan.describe(analysis.graph);

  std::cout << "\nGraphviz rendering of the pruned DAG:\n" << pruned.to_dot();
  return 0;
}
