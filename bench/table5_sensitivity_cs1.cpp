// Table V reproduction: per-routine sensitivity analysis for Case Study 1
// (Mg-porphyrin). Top-10 sensitive parameters for Group 1, Group 2, Group 3
// and the enclosing Slater Determinant region, using expert-suggested
// variations (5 per parameter).
//
// Shape to reproduce: nbatches tops every group; the Slater region is led by
// nstb, nbatches, nstreams; Group 3 is influenced by Group 2's tb_PAIR /
// tb_sm_PAIR (the cache interdependence) while Group 1's parameters do not
// cross.

#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

int main() {
  std::cout << "=== Table V: sensitivity analysis, Case Study 1 ===\n\n";
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());

  core::MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);

  std::cout << core::sensitivity_tables(analysis.sensitivity,
                                        {"Group1", "Group2", "Group3", "SlaterDet"}, 10);
  std::cout << "\nObservations used: " << analysis.observations
            << "  (baseline + 5 expert variations per parameter, invalid ones "
               "skipped)\n";

  std::cout << "\nCross-group interdependencies above the 10% cut-off:\n";
  const auto pruned = analysis.graph.pruned(0.10);
  for (const auto& e : pruned.cross_edges()) {
    std::cout << "  " << analysis.graph.param_name(e.param) << " ("
              << analysis.graph.routine_name(e.from_routine) << ") -> "
              << analysis.graph.routine_name(e.to_routine) << "  ["
              << static_cast<int>(e.weight * 100.0) << "%]\n";
  }
  return 0;
}
