// google-benchmark: component costs of the methodology — one simulated
// application evaluation, a full sensitivity analysis, forest-based feature
// importance, and plan synthesis. These are the costs the paper trades
// against each other when arguing its analysis is "cost-effective".

#include <benchmark/benchmark.h>

#include "common/rng.hpp"

#include "core/methodology.hpp"
#include "stats/random_forest.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

namespace {

void BM_TddftEvaluate(benchmark::State& state) {
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  const auto config = app.space().defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.evaluate_regions(config).total);
  }
}

void BM_SynthEvaluate(benchmark::State& state) {
  synth::SynthApp app(synth::SynthCase::Case3);
  const auto config = app.baseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.evaluate_regions(config).total);
  }
}

void BM_SensitivityAnalysisTddft(benchmark::State& state) {
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  core::MethodologyOptions opt;
  opt.importance_samples = 0;
  core::Methodology m(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.analyze(app).observations);
  }
}

void BM_ForestImportance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  linalg::Matrix x(n, 20);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < 20; ++k) x(i, k) = rng.uniform();
    y[i] = x(i, 0) * 3.0 + x(i, 5);
  }
  stats::ForestOptions opt;
  opt.n_trees = 60;
  for (auto _ : state) {
    stats::RandomForest forest(opt);
    forest.fit(x, y);
    benchmark::DoNotOptimize(forest.impurity_importance());
  }
}

void BM_PlanSynthesis(benchmark::State& state) {
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  core::MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.make_plan(app, analysis).searches.size());
  }
}

}  // namespace

BENCHMARK(BM_TddftEvaluate);
BENCHMARK(BM_SynthEvaluate);
BENCHMARK(BM_SensitivityAnalysisTddft)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForestImportance)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanSynthesis);
