// Ablation (§IV-D): the 10-dimension cap per search. One merged search over
// all 20 variables of synthetic Case 5, capped at k dimensions by influence
// rank, at a FIXED evaluation budget (the HPC regime: evaluations are the
// scarce resource). Also reported: the 10 x dims budget rule for context.
//
// Expected shape at fixed budget: very small caps discard variables that
// matter; very large caps make BO navigate poorly per evaluation and burn
// O(N^3) surrogate time. A mid cap is the sweet spot, supporting the
// paper's choice of 10.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

namespace {

bo::BoOptions bo_options(std::size_t evals, std::uint64_t seed) {
  bo::BoOptions opt;
  opt.max_evals = evals;
  opt.n_init = 5;
  opt.seed = seed;
  opt.hyperopt_every = 10;
  opt.hyperopt_restarts = 1;
  opt.hyperopt_max_iters = 60;
  opt.maximizer.n_candidates = 256;
  return opt;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: dimension cap per search ===\n";
  std::cout << "(synthetic Case 5; one merged search over all 20 variables,\n"
            << " capped at k dims by influence rank; budget 10 x k evals;\n"
            << " averaged over 3 seeds)\n\n";

  synth::SynthApp app(synth::SynthCase::Case5);
  core::MethodologyOptions mopt;
  mopt.cutoff = 0.25;
  mopt.sensitivity.n_variations = 100;
  mopt.importance_samples = 0;
  core::Methodology m(mopt);
  const auto analysis = m.analyze(app);

  // Rank all 20 variables by their maximum influence on any group.
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t p = 0; p < 20; ++p) {
    double best = 0.0;
    for (std::size_t r = 0; r < analysis.graph.n_routines(); ++r) {
      best = std::max(best, analysis.graph.influence(p, r));
    }
    ranked.push_back({best, p});
  }
  std::sort(ranked.rbegin(), ranked.rend());

  constexpr std::size_t kFixedBudget = 80;
  Table table({"Cap (dims)", "F @ fixed 80 evals", "F @ 10x dims evals",
               "Seconds @ fixed"});
  for (std::size_t cap : {4u, 6u, 8u, 10u, 14u, 20u}) {
    std::vector<std::size_t> indices;
    for (std::size_t k = 0; k < cap; ++k) indices.push_back(ranked[k].second);

    double fixed_value = 0.0, scaled_value = 0.0, seconds = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      {
        search::FunctionObjective objective(
            [&app](const search::Config& x) { return app.function().evaluate(x); });
        search::SubspaceObjective sub(objective, app.space(), indices, app.baseline());
        const auto r = bo::BayesOpt(bo_options(kFixedBudget, seed)).run(sub, sub.space());
        fixed_value += r.best_value;
        seconds += r.seconds;
      }
      {
        search::FunctionObjective objective(
            [&app](const search::Config& x) { return app.function().evaluate(x); });
        search::SubspaceObjective sub(objective, app.space(), indices, app.baseline());
        const auto r = bo::BayesOpt(bo_options(10 * cap, seed)).run(sub, sub.space());
        scaled_value += r.best_value;
      }
    }
    table.add_row({std::to_string(cap), Table::fmt(fixed_value / 3.0, 2),
                   Table::fmt(scaled_value / 3.0, 2), Table::fmt(seconds / 3.0, 2)});
  }
  std::cout << table.str();
  std::cout << "(F is the full 20-dim objective at the capped search's best\n"
               " configuration, untuned variables at the baseline; at the fixed\n"
               " budget a mid-size cap balances coverage against navigability)\n";
  return 0;
}
