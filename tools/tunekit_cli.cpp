// tunekit_cli — command-line front end for the methodology.
//
//   tunekit_cli info    --app <name>                  parameter table
//   tunekit_cli analyze --app <name> [options]        sensitivity + DAG
//   tunekit_cli plan    --app <name> [options]        the suggested search set
//   tunekit_cli tune    --app <name> [options]        full methodology run
//   tunekit_cli session --app <name> [options]        NDJSON ask/tell server
//   tunekit_cli report  --session <dir>               time/failure breakdown
//                                                     from session journals
//   tunekit_cli fsck    --journal-dir <dir> [--repair] offline journal
//                                                     verification/repair
//   tunekit_cli serve   [options]                     HTTP/JSON tuning server
//                                                     (--fleet adds a TCP
//                                                     evaluation dispatcher)
//   tunekit_cli fleet-node   --server host:port --app <name> [options]
//                                                     evaluation node: dials
//                                                     the dispatcher, hosts
//                                                     worker slots
//   tunekit_cli fleet-status --server host:port       fleet registry snapshot
//   tunekit_cli fleet-drive  --server host:port --session-id ID
//                                                     run a session on the
//                                                     fleet, synchronously
//   tunekit_cli remote-create|remote-ask|remote-tell|remote-report|
//               remote-close|remote-drive --server host:port [options]
//                                                     HTTP client commands
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (unknown flag or
// command, missing/conflicting options).
//
// Built-in apps: synth:case1..synth:case5, tddft:cs1, tddft:cs2, minislater.
// Common options:
//   --cutoff <frac>          influence cut-off (default 0.10; synthetic: 0.25)
//   --max-dims <n>           per-search dimension cap (default 10)
//   --variations <n>         sensitivity variations per parameter
//   --importance-samples <n> random-forest dataset size (0 disables)
//   --evals-per-param <n>    search budget rule (default 10)
//   --min-evals <n>          search budget floor (default 20)
//   --seed <n>               RNG seed
//   --checkpoint-dir <path>  per-search crash-recovery checkpoints
//   --dot                    also print the pruned influence DAG as Graphviz
//
// Observability:
//   --trace-out <file>       write a Chrome trace_event JSON of the run
//                            (open in chrome://tracing or ui.perfetto.dev)
//   --metrics-out <file>     write Prometheus text exposition at exit
//   --log-file <file>        tee log lines (with wall-clock timestamp and
//                            thread id) to a file
//
// Session options (see docs/SERVICE.md for the NDJSON protocol):
//   --max-evals <n>          session evaluation budget (default 100)
//   --backend <bo|random|grid>  suggestion backend (default bo)
//   --journal <path>         durable ask/tell journal (JSON lines)
//   --resume                 resume the session from --journal

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/log.hpp"
#include "common/table.hpp"
#include "core/app_registry.hpp"
#include "core/methodology.hpp"
#include "fleet/dispatcher.hpp"
#include "fleet/node_agent.hpp"
#include "net/client.hpp"
#include "net/rest_api.hpp"
#include "net/server.hpp"
#include "net/session_manager.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "robust/measure.hpp"
#include "robust/worker_pool.hpp"
#include "core/report.hpp"
#include "search/config.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/session_store.hpp"

using namespace tunekit;

namespace {

/// A mistake in how the tool was invoked (exit code 2), as opposed to a
/// failure while doing the work (exit code 1). Scripts and CI key off the
/// distinction.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

int usage(const char* argv0) {
  std::printf(
      "usage: %s <info|analyze|plan|tune|session|report|fsck|serve|remote-*> [options]\n"
      "apps:  synth:case1..case5 | tddft:cs1 | tddft:cs2 | minislater\n"
      "options: --cutoff F --max-dims N --variations N --importance-samples N\n"
      "         --evals-per-param N --min-evals N --seed N --checkpoint-dir P --dot\n"
      "         --session-scheduler (journaled ask/tell searches; with\n"
      "           --checkpoint-dir each search writes a crash-proof journal\n"
      "           that `report` aggregates)\n"
      "robust:  --repeats N (measurements per config, MAD-trimmed)\n"
      "         --eval-timeout S (watchdog deadline per measurement)\n"
      "         --eval-retries N (re-attempts after a transient crash)\n"
      "         --mad-threshold F (outlier cut in scaled MADs; 0 disables)\n"
      "sandbox: --isolate thread|process (default thread; process runs every\n"
      "           evaluation in a supervised tunekit_worker with SIGKILL\n"
      "           deadlines and crash quarantine)\n"
      "         --worker-bin P (worker binary; default: tunekit_worker next\n"
      "           to this executable; requires --isolate process)\n"
      "         --mem-limit-mb N (RLIMIT_AS cap per worker; requires\n"
      "           --isolate process)\n"
      "session: speaks NDJSON ask/tell on stdin/stdout (docs/SERVICE.md)\n"
      "         --max-evals N --backend bo|random|grid --journal P --resume\n"
      "structure (session, remote-create; docs/METHODOLOGY.md \"Online\n"
      "         structure learning\"):\n"
      "         --structure-online (learn the parameter dependency structure\n"
      "           from the observation stream; journaled, resumes exactly)\n"
      "         --structure-cadence N (affinity refit every N evals)\n"
      "         --structure-threshold F (pair-merge affinity cut)\n"
      "         --structure-evidence F (min evidence to repartition)\n"
      "         --structure-hysteresis N (confirming refits required)\n"
      "         --structure-cooldown N (min evals between repartitions)\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "         --trace-out P (Chrome trace_event JSON of the run)\n"
      "         --metrics-out P (Prometheus text exposition at exit)\n"
      "         --log-file P (tee timestamped log lines to a file)\n"
      "report:  per-phase/per-search time and failure breakdown from the\n"
      "         journals in a checkpoint dir: report --session DIR\n"
      "fsck:    verify (or repair) session journals offline: CRC framing,\n"
      "         segment seals/sequence, torn tails (docs/SERVICE.md\n"
      "         \"Durability & recovery\"): fsck --journal-dir DIR\n"
      "         [--repair] [--session-id ID]; exit 0 = clean or repaired,\n"
      "         1 = damage found (or left, without --repair)\n"
      "serve:   HTTP/JSON tuning server (docs/SERVICE.md \"Remote service\")\n"
      "         --host A --port N (0 = ephemeral) --journal-dir P\n"
      "         --max-sessions N --max-resident N --max-connections N\n"
      "         --threads N --max-queue N --request-timeout S --drain-timeout S\n"
      "         --shards N (session lock/journal shards, default 1)\n"
      "         --queue-delay-target S (shed 503 when smoothed queue wait\n"
      "           exceeds this; 0 disables; default 0.25)\n"
      "         --header-timeout S --body-timeout S (slow-request 408 cutoffs\n"
      "           anchored at the first request byte; 0 disables)\n"
      "         --fleet (accept TCP evaluation nodes) --fleet-port N\n"
      "           (default 8078; 0 = ephemeral)\n"
      "fleet-node: evaluation node for a serve --fleet dispatcher\n"
      "         --server H:P --app NAME [--slots N --node-id ID\n"
      "         --worker-bin P --mem-limit-mb N --seed N]\n"
      "fleet-status: --server H:P (GET /v1/fleet snapshot)\n"
      "fleet-drive:  --server H:P --session-id ID (run the session on the\n"
      "         fleet; synchronous, see docs/SERVICE.md \"Distributed fleet\")\n"
      "top:     live polling view of a serve instance: sessions, queue depth,\n"
      "         fleet nodes/breakers/clock sync, p50/p99 request latency\n"
      "         --server H:P [--interval S (default 2) --iterations N\n"
      "           (default 0 = until interrupted)]\n"
      "remote-create: --server H:P --app NAME [--session-id ID --backend B\n"
      "         --max-evals N --seed N]\n"
      "remote-ask:    --server H:P --session-id ID [--k N]\n"
      "remote-tell:   --server H:P --session-id ID --eval-id N\n"
      "         (--value V | --outcome crashed|timed-out|invalid-config|non-finite)\n"
      "remote-report / remote-close: --server H:P --session-id ID\n"
      "remote-drive:  full remote tune, evaluating --app locally:\n"
      "         --server H:P --app NAME [--session-id ID --backend B\n"
      "         --max-evals N --seed N]\n"
      "remote/fleet client options (all remote-* and fleet-drive):\n"
      "         --retries N (exactly-once retries via Idempotency-Key;\n"
      "           default 0) --deadline-s S (end-to-end X-Tunekit-Deadline\n"
      "           budget, retries included; default none)\n",
      argv0);
  return 2;
}

struct CliArgs {
  std::string command;
  std::string app;
  double cutoff = -1.0;  // negative = per-app default
  std::size_t max_dims = 10;
  std::size_t variations = 0;  // 0 = per-app default
  std::size_t importance_samples = 0;
  std::size_t evals_per_param = 10;
  std::size_t min_evals = 20;
  std::uint64_t seed = 42;
  std::string checkpoint_dir;
  bool dot = false;
  /// Route searches through TuningSession + EvalScheduler (journaled
  /// ask/tell); with --checkpoint-dir each search writes
  /// search_<id>.journal.jsonl, which `report` aggregates.
  bool session_scheduler = false;
  // hardened evaluation (applies to sensitivity and search evaluations)
  std::size_t repeats = 1;
  double eval_timeout = std::numeric_limits<double>::infinity();
  std::size_t eval_retries = 0;
  double mad_threshold = 3.5;
  // session command
  std::size_t max_evals = 100;
  std::string backend = "bo";
  std::string journal;
  bool resume = false;
  // online structure learning (session + remote-create specs)
  bool structure_online = false;
  std::size_t structure_cadence = 20;
  double structure_threshold = 0.25;
  double structure_evidence = 0.10;
  std::size_t structure_hysteresis = 2;
  std::size_t structure_cooldown = 20;
  // process isolation
  std::string isolate;  // "" = default (thread), else "thread"/"process"
  std::string worker_bin;
  double mem_limit_mb = -1.0;  // negative = unset
  // observability
  std::string trace_out;
  std::string metrics_out;
  std::string log_file;
  std::string session_dir;  // report command
  // serve command
  std::string host = "127.0.0.1";
  std::uint16_t port = 8077;
  std::string journal_dir;
  std::size_t max_sessions = 1024;
  std::size_t max_resident = 64;
  std::size_t max_connections = 256;
  std::size_t threads = 2;
  std::size_t max_queue = 64;
  double request_timeout = 30.0;
  double drain_timeout = 5.0;
  std::size_t shards = 1;
  // fleet (serve --fleet dispatcher + fleet-node command)
  bool fleet = false;
  std::uint16_t fleet_port = 8078;
  std::size_t slots = 2;
  std::string node_id;
  double chaos_mute_s = 0.0;
  double spin_ms = 0.0;
  // serve admission control (overload shedding + slow-loris hardening)
  double queue_delay_target = 0.25;
  double header_timeout = 10.0;
  double body_timeout = 20.0;
  // remote-* commands
  std::string server;      // host:port
  std::string session_id;  // remote session id
  std::uint64_t eval_id = 0;
  bool has_eval_id = false;
  std::string value;  // kept as text so "absent" is distinguishable
  std::string outcome;
  std::size_t k = 1;
  /// Client retry budget beyond the first attempt (0 = no retries, the
  /// old behavior). Retries stamp Idempotency-Key so they are exactly-once.
  std::size_t retries = 0;
  /// End-to-end deadline stamped as X-Tunekit-Deadline (retries and
  /// backoff included); infinity = none.
  double deadline_s = std::numeric_limits<double>::infinity();
  // top command
  double interval_s = 2.0;
  std::size_t iterations = 0;  // 0 = poll until interrupted
  // fsck command
  bool repair = false;
};

bool parse_args(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const auto eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.erase(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    try {
      if (flag == "--app") args.app = next();
      else if (flag == "--cutoff") args.cutoff = std::stod(next());
      else if (flag == "--max-dims") args.max_dims = std::stoul(next());
      else if (flag == "--variations") args.variations = std::stoul(next());
      else if (flag == "--importance-samples") args.importance_samples = std::stoul(next());
      else if (flag == "--evals-per-param") args.evals_per_param = std::stoul(next());
      else if (flag == "--min-evals") args.min_evals = std::stoul(next());
      else if (flag == "--seed") args.seed = std::stoull(next());
      else if (flag == "--checkpoint-dir") args.checkpoint_dir = next();
      else if (flag == "--dot") args.dot = true;
      else if (flag == "--session-scheduler") args.session_scheduler = true;
      else if (flag == "--repeats") args.repeats = std::stoul(next());
      else if (flag == "--eval-timeout") args.eval_timeout = std::stod(next());
      else if (flag == "--eval-retries") args.eval_retries = std::stoul(next());
      else if (flag == "--mad-threshold") args.mad_threshold = std::stod(next());
      else if (flag == "--max-evals") args.max_evals = std::stoul(next());
      else if (flag == "--backend") args.backend = next();
      else if (flag == "--journal") args.journal = next();
      else if (flag == "--resume") args.resume = true;
      else if (flag == "--structure-online") args.structure_online = true;
      else if (flag == "--structure-cadence") args.structure_cadence = std::stoul(next());
      else if (flag == "--structure-threshold") args.structure_threshold = std::stod(next());
      else if (flag == "--structure-evidence") args.structure_evidence = std::stod(next());
      else if (flag == "--structure-hysteresis") args.structure_hysteresis = std::stoul(next());
      else if (flag == "--structure-cooldown") args.structure_cooldown = std::stoul(next());
      else if (flag == "--isolate") args.isolate = next();
      else if (flag == "--worker-bin") args.worker_bin = next();
      else if (flag == "--mem-limit-mb") args.mem_limit_mb = std::stod(next());
      else if (flag == "--trace-out") args.trace_out = next();
      else if (flag == "--metrics-out") args.metrics_out = next();
      else if (flag == "--log-file") args.log_file = next();
      else if (flag == "--session") args.session_dir = next();
      else if (flag == "--host") args.host = next();
      else if (flag == "--port") args.port = static_cast<std::uint16_t>(std::stoul(next()));
      else if (flag == "--journal-dir") args.journal_dir = next();
      else if (flag == "--max-sessions") args.max_sessions = std::stoul(next());
      else if (flag == "--max-resident") args.max_resident = std::stoul(next());
      else if (flag == "--max-connections") args.max_connections = std::stoul(next());
      else if (flag == "--threads") args.threads = std::stoul(next());
      else if (flag == "--max-queue") args.max_queue = std::stoul(next());
      else if (flag == "--request-timeout") args.request_timeout = std::stod(next());
      else if (flag == "--drain-timeout") args.drain_timeout = std::stod(next());
      else if (flag == "--queue-delay-target") args.queue_delay_target = std::stod(next());
      else if (flag == "--header-timeout") args.header_timeout = std::stod(next());
      else if (flag == "--body-timeout") args.body_timeout = std::stod(next());
      else if (flag == "--retries") args.retries = std::stoul(next());
      else if (flag == "--deadline-s") args.deadline_s = std::stod(next());
      else if (flag == "--interval") args.interval_s = std::stod(next());
      else if (flag == "--iterations") args.iterations = std::stoul(next());
      else if (flag == "--shards") args.shards = std::stoul(next());
      else if (flag == "--fleet") args.fleet = true;
      else if (flag == "--fleet-port") args.fleet_port = static_cast<std::uint16_t>(std::stoul(next()));
      else if (flag == "--slots") args.slots = std::stoul(next());
      else if (flag == "--node-id") args.node_id = next();
      else if (flag == "--chaos-mute-s") args.chaos_mute_s = std::stod(next());
      else if (flag == "--spin-ms") args.spin_ms = std::stod(next());
      else if (flag == "--server") args.server = next();
      else if (flag == "--session-id") args.session_id = next();
      else if (flag == "--eval-id") { args.eval_id = std::stoull(next()); args.has_eval_id = true; }
      else if (flag == "--value") args.value = next();
      else if (flag == "--outcome") args.outcome = next();
      else if (flag == "--k") args.k = std::stoul(next());
      else if (flag == "--repair") args.repair = true;
      else {
        std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
        return false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument for %s: %s\n", flag.c_str(), e.what());
      return false;
    }
  }
  return true;
}

// Validate the isolation flag combination (before any work happens) and
// translate it into IsolationOptions. Conflicting flags are hard errors, not
// warnings: a user who passed --mem-limit-mb expects the cap to be enforced,
// and silently ignoring it under thread isolation would be worse than
// refusing to run.
robust::IsolationOptions make_isolation(const CliArgs& args, const char* argv0) {
  robust::IsolationOptions iso;
  if (!args.isolate.empty()) {
    try {
      iso.mode = robust::isolation_from_string(args.isolate);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
  }
  if (iso.mode != robust::IsolationMode::Process) {
    if (!args.worker_bin.empty()) {
      throw UsageError(
          "--worker-bin requires --isolate process (worker binaries are only "
          "used by the process sandbox)");
    }
    if (args.mem_limit_mb >= 0.0) {
      throw UsageError(
          "--mem-limit-mb requires --isolate process (thread isolation cannot "
          "enforce a per-evaluation memory cap)");
    }
    return iso;
  }
  if (args.mem_limit_mb >= 0.0) iso.sandbox.mem_limit_mb = args.mem_limit_mb;
  std::string bin = args.worker_bin;
  if (bin.empty()) {
    // Default: the tunekit_worker built next to this executable.
    bin = (std::filesystem::path(argv0).parent_path() / "tunekit_worker").string();
  }
  iso.sandbox.argv = {bin, "--app", args.app, "--seed", std::to_string(args.seed)};
  return iso;
}

core::MethodologyOptions make_options(const CliArgs& args, const core::AppBundle& bundle,
                                      const robust::IsolationOptions& iso,
                                      obs::Telemetry* telemetry) {
  core::MethodologyOptions opt;
  opt.cutoff = args.cutoff >= 0.0 ? args.cutoff : bundle.default_cutoff;
  opt.max_dims = args.max_dims;
  opt.sensitivity.n_variations =
      args.variations > 0 ? args.variations : bundle.default_variations;
  opt.importance_samples = args.importance_samples;
  opt.executor.evals_per_param = args.evals_per_param;
  opt.executor.min_evals = args.min_evals;
  opt.executor.bo.seed = args.seed;
  opt.executor.checkpoint_dir = args.checkpoint_dir;
  opt.executor.session_scheduler = args.session_scheduler;
  opt.seed = args.seed;
  // One hardened-measurement policy for the whole pipeline: the sensitivity
  // analysis and every search evaluation measure under the same rules.
  robust::MeasureOptions measure;
  measure.repeats = args.repeats;
  measure.mad_threshold = args.mad_threshold;
  measure.watchdog.timeout_seconds = args.eval_timeout;
  measure.watchdog.max_retries = args.eval_retries;
  measure.watchdog.backoff_seconds = args.eval_retries > 0 ? 0.05 : 0.0;
  opt.sensitivity.measure = measure;
  opt.executor.measure = measure;
  opt.sensitivity.isolation = iso;
  opt.executor.isolation = iso;
  opt.telemetry = telemetry;
  return opt;
}

int cmd_info(core::TunableApp& app) {
  std::cout << "App: " << app.name() << "\n";
  Table table({"#", "Parameter", "Kind", "Default", "Cardinality"});
  const auto& space = app.space();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.param(i);
    table.add_row({std::to_string(i), p.name(), search::to_string(p.kind()),
                   Table::fmt(p.default_value(), 2),
                   p.cardinality() ? std::to_string(p.cardinality()) : "inf"});
  }
  std::cout << table.str();
  std::cout << "Constraints: " << space.constraints().size()
            << " | log10(#configs) = " << Table::fmt(space.log10_cardinality(), 2)
            << "\n";
  std::cout << "Routines:";
  for (const auto& r : app.routines()) std::cout << " " << r.name;
  const auto outer = app.outer_regions();
  if (!outer.empty()) {
    std::cout << " | outer:";
    for (const auto& o : outer) std::cout << " " << o;
  }
  std::cout << "\n";
  return 0;
}

int cmd_analyze(core::TunableApp& app, const core::MethodologyOptions& opt, bool dot) {
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  std::cout << "Observations: " << analysis.observations << "\n\n";
  std::cout << core::sensitivity_tables(analysis.sensitivity,
                                        analysis.sensitivity.regions(),
                                        std::min<std::size_t>(10, app.space().size()));
  std::cout << "\nCross edges above the " << Table::pct(opt.cutoff, 0) << " cut-off:\n";
  const auto pruned = analysis.graph.pruned(opt.cutoff);
  for (const auto& e : pruned.cross_edges()) {
    std::cout << "  " << analysis.graph.param_name(e.param) << " ("
              << analysis.graph.routine_name(e.from_routine) << ") -> "
              << analysis.graph.routine_name(e.to_routine) << " ["
              << Table::pct(e.weight, 0) << "]\n";
  }
  if (dot) std::cout << "\n" << pruned.to_dot();
  return 0;
}

int cmd_plan(core::TunableApp& app, const core::MethodologyOptions& opt) {
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);
  std::cout << core::plan_table(plan, analysis.graph);
  return 0;
}

int cmd_tune(core::TunableApp& app, const core::MethodologyOptions& opt) {
  core::Methodology m(opt);
  const auto result = m.run(app);
  std::cout << core::full_report(app, result);
  return 0;
}

// Serve the app's search space as an NDJSON ask/tell session: the client (an
// external, non-linked application) evaluates the suggested configurations
// itself and reports results back on stdin.
int cmd_session(core::TunableApp& app, const CliArgs& args, obs::Telemetry* telemetry) {
  service::SessionOptions opt;
  opt.max_evals = args.max_evals;
  opt.backend = service::backend_from_string(args.backend);
  opt.seed = args.seed;
  opt.telemetry = telemetry;
  opt.structure_online = args.structure_online;
  opt.structure_cadence = args.structure_cadence;
  opt.structure_threshold = args.structure_threshold;
  opt.structure_evidence = args.structure_evidence;
  opt.structure_hysteresis = args.structure_hysteresis;
  opt.structure_cooldown = args.structure_cooldown;

  std::unique_ptr<service::TuningSession> session;
  if (args.resume) {
    if (args.journal.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal\n");
      return 2;
    }
    session = service::TuningSession::resume(app.space(), opt, args.journal);
  } else {
    session = std::make_unique<service::TuningSession>(app.space(), opt, args.journal);
  }
  service::SessionServer server(*session);
  server.serve(std::cin, std::cout);
  return 0;
}

// --- report: offline breakdown from the journals in a checkpoint dir. ---

/// Per-journal aggregate, built by a tolerant line-by-line parse. We do not
/// go through SessionStore::replay here: journals in one checkpoint dir
/// belong to different subspace searches (different config arities) and the
/// report needs no configs — only counts, times, and the metrics snapshots.
/// Per-fleet-node attribution, rebuilt from the "node" key that tell/fail
/// records carry when the evaluation ran on a remote fleet node. Durations
/// are kept raw so the report can interpolate a p99 after folding segments.
struct NodeStats {
  std::size_t tells = 0;
  std::size_t fails = 0;
  std::vector<double> durations_ms;
};

struct JournalSummary {
  std::string name;
  std::string backend;
  std::size_t tells = 0;
  std::size_t fails = 0;
  std::size_t drops = 0;
  double cost_seconds = 0.0;
  double duration_ms = 0.0;
  std::map<std::string, std::size_t> failure_outcomes;  // from "fail" records
  std::map<int, std::size_t> slot_tells;                // tells per worker slot
  std::map<std::string, NodeStats> node_stats;          // keyed by fleet node id
  json::Value metrics;    // latest {"e":"metrics"} snapshot (null = none)
  json::Value structure;  // latest {"e":"struct"} snapshot (null = none)
};

/// Linearly interpolated percentile (q in [0,1]); sorts `values` in place.
double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (pos - static_cast<double>(lo));
}

JournalSummary summarize_journal(const std::filesystem::path& path) {
  JournalSummary s;
  s.name = path.stem().stem().string();  // strip .journal.jsonl
  // Sealed segments are "<id>.journal.NNNNNN.jsonl": strip the number too so
  // they merge into the same search's summary.
  if (const auto dot = s.name.rfind(".journal"); dot != std::string::npos) {
    s.name.resize(dot);
  }
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // v2 journals frame each line as "<8 hex CRC> <json>"; the report only
    // aggregates, so the payload is taken on faith (fsck checks the CRCs).
    std::string_view payload = line;
    if (line.size() > 9 && line[0] != '{' && line[8] == ' ') {
      payload = std::string_view(line).substr(9);
    }
    json::Value rec;
    try {
      rec = json::parse(std::string(payload));
    } catch (const std::exception&) {
      continue;  // torn tail line from a crash — exactly what replay skips
    }
    if (!rec.is_object() || !rec.contains("e")) continue;
    const std::string& e = rec.at("e").as_string();
    if (e == "open") {
      if (rec.contains("backend")) s.backend = rec.at("backend").as_string();
    } else if (e == "tell") {
      ++s.tells;
      s.cost_seconds += rec.number_or("cost", 0.0);
      s.duration_ms += rec.number_or("dur_ms", 0.0);
      const int slot = static_cast<int>(rec.number_or("slot", -1.0));
      if (slot >= 0) ++s.slot_tells[slot];
      if (rec.contains("node")) {
        NodeStats& node = s.node_stats[rec.at("node").as_string()];
        ++node.tells;
        node.durations_ms.push_back(rec.number_or("dur_ms", 0.0));
      }
    } else if (e == "fail") {
      ++s.fails;
      const std::string why =
          rec.contains("why") ? rec.at("why").as_string() : "crashed";
      ++s.failure_outcomes[why];
      if (rec.contains("node")) ++s.node_stats[rec.at("node").as_string()].fails;
    } else if (e == "drop") {
      ++s.drops;
    } else if (e == "metrics") {
      if (rec.contains("snap")) s.metrics = rec.at("snap");
    } else if (e == "struct") {
      // Latest dependency-structure snapshot wins, same contract as metrics;
      // its embedded adoption history covers every earlier repartition, so
      // compaction never loses the partition trail.
      if (rec.contains("snap")) s.structure = rec.at("snap");
    }
  }
  return s;
}

/// "[0 1][2 3][4]" from a snapshot's partition array.
std::string format_partition(const json::Value& partition) {
  std::string out;
  if (!partition.is_array()) return out;
  for (const auto& block : partition.as_array()) {
    out += '[';
    bool first = true;
    for (const auto& idx : block.as_array()) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(static_cast<std::size_t>(idx.as_number()));
    }
    out += ']';
  }
  return out;
}

int cmd_report(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "error: --session '%s' is not a directory\n", dir.c_str());
    return 1;
  }
  std::vector<JournalSummary> sessions;
  json::Value telemetry_snap;  // from the telemetry journal, if present
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 && name.substr(name.size() - 14) == ".journal.jsonl") {
      files.push_back(entry.path());
      continue;
    }
    // Sealed rotation segments: "<id>.journal.NNNNNN.jsonl".
    const auto pos = name.find(".journal.");
    if (pos != std::string::npos && name.size() > 6 &&
        name.substr(name.size() - 6) == ".jsonl") {
      const std::string middle =
          name.substr(pos + 9, name.size() - 6 - (pos + 9));
      if (!middle.empty() &&
          middle.find_first_not_of("0123456789") == std::string::npos) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    JournalSummary s = summarize_journal(path);
    if (s.backend == "telemetry") {
      telemetry_snap = s.metrics;
      continue;
    }
    // Segments of one journal share a name (sorted: sealed first, active
    // last) — fold them into a single per-search summary.
    if (!sessions.empty() && sessions.back().name == s.name) {
      JournalSummary& acc = sessions.back();
      if (acc.backend.empty()) acc.backend = s.backend;
      acc.tells += s.tells;
      acc.fails += s.fails;
      acc.drops += s.drops;
      acc.cost_seconds += s.cost_seconds;
      acc.duration_ms += s.duration_ms;
      for (const auto& [why, n] : s.failure_outcomes) acc.failure_outcomes[why] += n;
      for (const auto& [slot, n] : s.slot_tells) acc.slot_tells[slot] += n;
      for (auto& [node, ns] : s.node_stats) {
        NodeStats& dst = acc.node_stats[node];
        dst.tells += ns.tells;
        dst.fails += ns.fails;
        dst.durations_ms.insert(dst.durations_ms.end(), ns.durations_ms.begin(),
                                ns.durations_ms.end());
      }
      if (!s.metrics.is_null()) acc.metrics = s.metrics;
      if (!s.structure.is_null()) acc.structure = s.structure;
    } else {
      sessions.push_back(std::move(s));
    }
  }
  if (sessions.empty() && telemetry_snap.is_null()) {
    std::fprintf(stderr, "error: no *.journal.jsonl files under '%s'\n", dir.c_str());
    return 1;
  }

  // Per-search breakdown. "fails" are attempts (a candidate retried twice
  // counts two fails); "drops" are candidates that consumed budget at the
  // failure penalty.
  if (!sessions.empty()) {
    Table table({"Search", "Backend", "Tells", "Fails", "Drops", "Cost s",
                 "Eval ms (mean)", "Wall s"});
    JournalSummary total;
    double total_wall = 0.0;
    for (const auto& s : sessions) {
      const double wall =
          s.metrics.is_null() ? 0.0 : s.metrics.number_or("wall_seconds", 0.0);
      table.add_row({s.name, s.backend, std::to_string(s.tells),
                     std::to_string(s.fails), std::to_string(s.drops),
                     Table::fmt(s.cost_seconds, 3),
                     s.tells > 0
                         ? Table::fmt(s.duration_ms / static_cast<double>(s.tells), 3)
                         : "-",
                     wall > 0.0 ? Table::fmt(wall, 3) : "-"});
      total.tells += s.tells;
      total.fails += s.fails;
      total.drops += s.drops;
      total.cost_seconds += s.cost_seconds;
      total.duration_ms += s.duration_ms;
      total_wall += wall;
      for (const auto& [why, n] : s.failure_outcomes) total.failure_outcomes[why] += n;
      for (const auto& [slot, n] : s.slot_tells) total.slot_tells[slot] += n;
      for (const auto& [node, ns] : s.node_stats) {
        NodeStats& dst = total.node_stats[node];
        dst.tells += ns.tells;
        dst.fails += ns.fails;
        dst.durations_ms.insert(dst.durations_ms.end(), ns.durations_ms.begin(),
                                ns.durations_ms.end());
      }
    }
    if (sessions.size() > 1) {
      table.add_row({"total", "", std::to_string(total.tells),
                     std::to_string(total.fails), std::to_string(total.drops),
                     Table::fmt(total.cost_seconds, 3),
                     total.tells > 0
                         ? Table::fmt(total.duration_ms /
                                          static_cast<double>(total.tells), 3)
                         : "-",
                     total_wall > 0.0 ? Table::fmt(total_wall, 3) : "-"});
    }
    std::cout << "Searches (" << dir << "):\n" << table.str();

    if (!total.failure_outcomes.empty()) {
      std::cout << "\nFailed attempts by outcome:\n";
      for (const auto& [why, n] : total.failure_outcomes) {
        std::cout << "  " << why << ": " << n << "\n";
      }
    }
    if (!total.slot_tells.empty()) {
      std::cout << "\nEvaluations by worker slot:\n";
      for (const auto& [slot, n] : total.slot_tells) {
        std::cout << "  slot " << slot << ": " << n << "\n";
      }
    }
    // Partition history: the living partition's trail — initial cut, then
    // every adopted repartition with its evidence score and eval index —
    // reconstructed from the {"e":"struct"} journal records alone.
    for (const auto& s : sessions) {
      if (s.structure.is_null() || !s.structure.contains("history")) continue;
      std::cout << "\nPartition history (" << s.name << "):\n";
      for (const auto& entry : s.structure.at("history").as_array()) {
        const std::string kind =
            entry.contains("kind") ? entry.at("kind").as_string() : "?";
        const auto eval = static_cast<std::size_t>(entry.number_or("eval", 0.0));
        std::cout << "  " << kind;
        for (std::size_t pad = kind.size(); pad < 12; ++pad) std::cout << ' ';
        std::cout << "eval " << eval;
        if (kind != "init") {
          std::cout << "  evidence " << Table::fmt(entry.number_or("evidence", 0.0), 3);
        }
        std::cout << "  " << static_cast<std::size_t>(entry.number_or("blocks", 0.0))
                  << " blocks  " << format_partition(entry.contains("partition")
                                                         ? entry.at("partition")
                                                         : json::Value())
                  << "\n";
      }
      const auto since = static_cast<std::size_t>(
          s.structure.number_or("observations", 0.0) -
          s.structure.number_or("last_repartition_eval", 0.0));
      std::cout << "  active: " << format_partition(s.structure.at("partition"))
                << "  (" << since << " evals since last repartition)\n";
    }
    // Per-fleet-node attribution, reconstructed from journals alone — no
    // server, no telemetry endpoint; works on any checkpoint dir copied off
    // a dead machine.
    if (!total.node_stats.empty()) {
      Table node_table({"Node", "Evals", "Failures", "p99 ms"});
      for (auto& [node, ns] : total.node_stats) {
        node_table.add_row(
            {node, std::to_string(ns.tells), std::to_string(ns.fails),
             ns.durations_ms.empty() ? "-"
                                     : Table::fmt(percentile(ns.durations_ms, 0.99), 3)});
      }
      std::cout << "\nEvaluations by fleet node:\n" << node_table.str();
    }
  }

  // Phase breakdown: the tunekit_phase_<name>_seconds gauges journaled by a
  // traced `tune` run (telemetry.journal.jsonl). These are measured by
  // stopwatches co-located with the phase spans, so the totals here match
  // the trace within a millisecond.
  if (telemetry_snap.is_object() && telemetry_snap.contains("gauges")) {
    const auto& gauges = telemetry_snap.at("gauges").as_object();
    Table table({"Phase", "Time ms"});
    const std::string prefix = "tunekit_phase_";
    const std::string suffix = "_seconds";
    for (const auto& [name, value] : gauges) {
      if (name.size() <= prefix.size() + suffix.size()) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
      const std::string phase =
          name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
      table.add_row({phase, Table::fmt(value.as_number() * 1e3, 3)});
    }
    std::cout << "\nPhases:\n" << table.str();
    if (telemetry_snap.contains("counters")) {
      const auto& counters = telemetry_snap.at("counters").as_object();
      std::cout << "\nCounters:\n";
      for (const auto& [name, value] : counters) {
        std::cout << "  " << name << ": "
                  << static_cast<std::uint64_t>(value.as_number()) << "\n";
      }
    }
  }
  return 0;
}

// --- fsck: offline journal verification/repair (docs/SERVICE.md). ---

/// Active session journals under `dir` and its shard-*/ subdirectories
/// (sealed rotation segments belong to their active journal; fsck walks
/// them itself). Sorted, so output and exit codes are deterministic.
std::vector<std::filesystem::path> find_journals(const std::string& dir,
                                                 const std::string& only_id) {
  std::vector<std::filesystem::path> journals;
  auto collect = [&](const std::filesystem::path& d) {
    if (!std::filesystem::is_directory(d)) return;
    for (const auto& entry : std::filesystem::directory_iterator(d)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.size() <= 14 || name.substr(name.size() - 14) != ".journal.jsonl") {
        continue;
      }
      if (!only_id.empty() && name != only_id + ".journal.jsonl") continue;
      journals.push_back(entry.path());
    }
  };
  collect(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("shard-", 0) == 0) {
      collect(entry.path());
    }
  }
  std::sort(journals.begin(), journals.end());
  return journals;
}

int cmd_fsck(const CliArgs& args) {
  if (!std::filesystem::is_directory(args.journal_dir)) {
    std::fprintf(stderr, "error: --journal-dir '%s' is not a directory\n",
                 args.journal_dir.c_str());
    return 1;
  }
  const auto journals = find_journals(args.journal_dir, args.session_id);
  if (journals.empty()) {
    std::fprintf(stderr, "error: no *.journal.jsonl files under '%s'\n",
                 args.journal_dir.c_str());
    return 1;
  }
  bool damage_left = false;
  for (const auto& path : journals) {
    const auto report = service::SessionStore::fsck(path.string(), args.repair);
    std::cout << path.string() << ": ";
    if (!report.ok) {
      std::cout << "UNREADABLE (" << report.error << ")\n";
      damage_left = true;
      continue;
    }
    std::cout << (report.legacy_v1 ? "v1" : "v2") << ", " << report.records
              << " records, " << report.segments << " sealed segment(s)";
    if (report.salvage.clean()) {
      std::cout << ": clean\n";
      continue;
    }
    std::cout << ": " << report.salvage.lost_records << " lost record(s), "
              << report.salvage.corrupt_segments << " corrupt file(s), "
              << report.salvage.torn_tails << " torn tail(s)"
              << (args.repair ? " [repaired]" : "") << "\n";
    for (const std::string& note : report.salvage.notes) {
      std::cout << "  " << note << "\n";
    }
    // Read-only mode leaves the damage in place; repair mode fixed it.
    if (!args.repair) damage_left = true;
  }
  return damage_left ? 1 : 0;
}

// --- serve: the HTTP/JSON remote tuning server (docs/SERVICE.md). ---

net::HttpServer* g_server = nullptr;

void handle_shutdown_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();  // async-signal-safe
}

int cmd_serve(const CliArgs& args, obs::Telemetry* telemetry) {
  net::SessionManagerOptions mopt;
  mopt.journal_dir = args.journal_dir;
  mopt.max_resident = args.max_resident;
  mopt.max_sessions = args.max_sessions;
  mopt.shards = args.shards;
  mopt.telemetry = telemetry;
  net::SessionManager manager(mopt);

  std::shared_ptr<fleet::FleetDispatcher> dispatcher;
  if (args.fleet) {
    fleet::DispatcherOptions fopt;
    fopt.host = args.host;
    fopt.port = args.fleet_port;
    fopt.telemetry = telemetry;
    dispatcher = std::make_shared<fleet::FleetDispatcher>(fopt);
  }

  net::RestApi api(manager, telemetry, dispatcher);
  net::ServerOptions sopt;
  sopt.host = args.host;
  sopt.port = args.port;
  sopt.max_connections = args.max_connections;
  sopt.worker_threads = args.threads;
  sopt.max_queue = args.max_queue;
  sopt.request_timeout_seconds = args.request_timeout;
  sopt.drain_timeout_seconds = args.drain_timeout;
  sopt.queue_delay_target_seconds = args.queue_delay_target;
  sopt.header_timeout_seconds = args.header_timeout;
  sopt.body_timeout_seconds = args.body_timeout;
  // Shed drives before asks before tells: a tell carries a measurement the
  // fleet already paid for, so it is the last thing admission control drops.
  sopt.priority = net::RestApi::priority;
  sopt.telemetry = telemetry;
  net::HttpServer server(sopt,
                         [&api](const net::HttpRequest& r) { return api.handle(r); });
  server.start();

  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = handle_shutdown_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Scripts parse this line to learn the bound port (--port 0 is ephemeral).
  std::printf("tunekit_cli: listening on http://%s:%u\n", args.host.c_str(),
              static_cast<unsigned>(server.port()));
  if (dispatcher) {
    // Same contract for the fleet port: node scripts parse this line.
    std::printf("tunekit_cli: fleet dispatcher on %s:%u\n", args.host.c_str(),
                static_cast<unsigned>(dispatcher->port()));
  }
  std::fflush(stdout);

  server.wait();
  g_server = nullptr;
  if (dispatcher) dispatcher->stop();
  // Drain: every resident session journals a final metrics snapshot, so a
  // restart resumes with nothing lost but what was never told.
  manager.flush_all();
  std::printf("tunekit_cli: drained, journals flushed\n");
  return 0;
}

// --- fleet-*: evaluation fleet commands (docs/SERVICE.md "Distributed
// fleet"). fleet-node runs in the foreground until SIGTERM/SIGINT. ---

fleet::NodeAgent* g_node_agent = nullptr;

void handle_node_signal(int) {
  if (g_node_agent != nullptr) g_node_agent->stop();  // async-signal-compatible
}

std::pair<std::string, std::uint16_t> parse_server(const std::string& server);
net::ClientRetryOptions make_retry(const CliArgs& args,
                                   obs::Telemetry* telemetry = nullptr);

int cmd_fleet_node(const CliArgs& args, const char* argv0,
                   obs::Telemetry* telemetry) {
  if (args.server.empty()) {
    throw UsageError("fleet-node requires --server host:port (the dispatcher)");
  }
  if (args.app.empty()) throw UsageError("fleet-node requires --app");
  auto [host, port] = parse_server(args.server);

  fleet::NodeAgentOptions opt;
  opt.host = host;
  opt.port = port;
  opt.node_id = args.node_id;
  opt.slots = std::max<std::size_t>(1, args.slots);
  opt.chaos_mute_after_s = args.chaos_mute_s;
  opt.spin_ms = args.spin_ms;
  opt.telemetry = telemetry;
  std::string bin = args.worker_bin;
  if (bin.empty()) {
    bin = (std::filesystem::path(argv0).parent_path() / "tunekit_worker").string();
  }
  opt.sandbox.argv = {bin, "--app", args.app, "--seed", std::to_string(args.seed)};
  if (args.mem_limit_mb >= 0.0) opt.sandbox.mem_limit_mb = args.mem_limit_mb;

  fleet::NodeAgent agent(opt);
  g_node_agent = &agent;
  struct sigaction sa {};
  sa.sa_handler = handle_node_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Scripts parse this line (same contract as serve's listening line).
  std::printf("tunekit_cli: fleet node '%s' serving %zu slots for %s\n",
              agent.node_id().c_str(), opt.slots, args.server.c_str());
  std::fflush(stdout);
  const bool ok = agent.run();
  g_node_agent = nullptr;
  std::printf("tunekit_cli: fleet node '%s' stopped after %llu evals\n",
              agent.node_id().c_str(),
              static_cast<unsigned long long>(agent.evals_served()));
  return ok ? 0 : 1;
}

int cmd_fleet_status(const CliArgs& args) {
  if (args.server.empty()) throw UsageError("fleet-status requires --server host:port");
  auto [host, port] = parse_server(args.server);
  net::Client client(host, port);
  std::cout << client.fleet_status().dump(2) << "\n";
  return 0;
}

int cmd_fleet_drive(const CliArgs& args, obs::Telemetry* telemetry) {
  if (args.server.empty()) throw UsageError("fleet-drive requires --server host:port");
  if (args.session_id.empty()) throw UsageError("fleet-drive requires --session-id");
  auto [host, port] = parse_server(args.server);
  // A drive holds the connection for the whole run; give it a long leash.
  net::Client client(host, port, /*timeout_seconds=*/3600.0,
                     make_retry(args, telemetry));
  json::Object body;
  if (args.k > 1) body["batch_size"] = json::Value(args.k);
  std::cout << client.drive_session(args.session_id, json::Value(std::move(body))).dump(2)
            << "\n";
  return 0;
}

// --- top: polling live view of a serve instance. ---

/// One Prometheus histogram scraped from /metrics text: cumulative bucket
/// counts by upper bound, plus _count/_sum. Tolerant of exemplar suffixes
/// ("... # {trace_id=\"...\"} v") — std::stod stops at the first space.
struct HistogramSnapshot {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  double count = 0.0;
  double sum = 0.0;

  /// Standard histogram_quantile() estimate: linear interpolation inside the
  /// winning bucket; the +Inf bucket reports the last finite bound. 0 when
  /// the histogram is empty.
  double quantile(double q) const {
    if (buckets.empty() || count <= 0.0) return 0.0;
    const double target = q * count;
    double prev_bound = 0.0;
    double prev_cum = 0.0;
    for (const auto& [bound, cum] : buckets) {
      if (cum >= target) {
        if (std::isinf(bound)) return prev_bound;
        const double width = cum - prev_cum;
        if (width <= 0.0) return bound;
        return prev_bound + (bound - prev_bound) * (target - prev_cum) / width;
      }
      prev_bound = bound;
      prev_cum = cum;
    }
    return prev_bound;
  }
};

HistogramSnapshot parse_histogram(const std::string& text, const std::string& name) {
  HistogramSnapshot h;
  const std::string bucket_prefix = name + "_bucket{le=\"";
  const std::string count_prefix = name + "_count ";
  const std::string sum_prefix = name + "_sum ";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    try {
      if (line.rfind(bucket_prefix, 0) == 0) {
        const std::size_t close = line.find('"', bucket_prefix.size());
        if (close == std::string::npos) continue;
        const std::string le =
            line.substr(bucket_prefix.size(), close - bucket_prefix.size());
        const std::size_t space = line.find(' ', close);
        if (space == std::string::npos) continue;
        const double bound = (le == "+Inf")
                                 ? std::numeric_limits<double>::infinity()
                                 : std::stod(le);
        h.buckets.emplace_back(bound, std::stod(line.substr(space + 1)));
      } else if (line.rfind(count_prefix, 0) == 0) {
        h.count = std::stod(line.substr(count_prefix.size()));
      } else if (line.rfind(sum_prefix, 0) == 0) {
        h.sum = std::stod(line.substr(sum_prefix.size()));
      }
    } catch (const std::exception&) {
      continue;  // malformed line; skip rather than kill the whole poll
    }
  }
  return h;
}

/// One unlabelled gauge/counter sample from /metrics text. Returns NaN when
/// the metric is absent (e.g. structure learning off — no gauge exported).
double parse_gauge(const std::string& text, const std::string& name) {
  const std::string prefix = name + " ";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    try {
      return std::stod(line.substr(prefix.size()));
    } catch (const std::exception&) {
      continue;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void render_latency_line(const std::string& label, const HistogramSnapshot& h) {
  if (h.count <= 0.0) {
    std::printf("  %-14s (no samples)\n", label.c_str());
    return;
  }
  std::printf("  %-14s n=%-8.0f p50=%8.3f ms  p99=%8.3f ms  mean=%8.3f ms\n",
              label.c_str(), h.count, h.quantile(0.5) * 1e3,
              h.quantile(0.99) * 1e3, h.sum / h.count * 1e3);
}

int cmd_top(const CliArgs& args) {
  if (args.server.empty()) throw UsageError("top requires --server host:port");
  auto [host, port] = parse_server(args.server);
  net::Client client(host, port, /*timeout_seconds=*/10.0);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (std::size_t iter = 0; args.iterations == 0 || iter < args.iterations; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.1, args.interval_s)));
    }
    json::Value sessions;
    json::Value fleet;
    std::string metrics_text;
    try {
      sessions = client.request("GET", "/v1/sessions").json();
      metrics_text = client.metrics();
      // No fleet dispatcher is a normal deployment, not an error: serve
      // without --fleet answers 503 here and top simply omits the section.
      const net::ClientResponse fleet_resp = client.request("GET", "/v1/fleet");
      if (fleet_resp.status == 200) fleet = fleet_resp.json();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "top: %s (retrying)\n", e.what());
      continue;
    }

    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);
    std::printf("tunekit top — %s   (sample %zu%s)\n", args.server.c_str(),
                iter + 1,
                args.iterations > 0
                    ? ("/" + std::to_string(args.iterations)).c_str()
                    : "");

    const auto& session_list = sessions.at("sessions").as_array();
    std::printf("\nSessions (%zu):\n", session_list.size());
    for (const auto& s : session_list) {
      std::printf("  %-24s %-10s completed=%-6.0f %s\n",
                  s.at("id").as_string().c_str(), s.at("state").as_string().c_str(),
                  s.number_or("completed", 0.0),
                  s.contains("resident") && s.at("resident").as_bool() ? "resident"
                                                                      : "evicted");
    }
    if (session_list.empty()) std::printf("  (none)\n");

    if (fleet.is_object()) {
      std::printf("\nFleet: queue_depth=%.0f steals=%.0f redispatches=%.0f%s\n",
                  fleet.number_or("queue_depth", 0.0), fleet.number_or("steals", 0.0),
                  fleet.number_or("redispatches", 0.0),
                  fleet.contains("degraded") && fleet.at("degraded").as_bool()
                      ? "  DEGRADED (all breakers open)"
                      : "");
      for (const auto& n : fleet.at("nodes").as_array()) {
        const std::string id = n.at("id").as_string();
        std::string breaker = "-";
        if (fleet.contains("breakers") &&
            fleet.at("breakers").as_object().count(id) != 0u) {
          breaker =
              fleet.at("breakers").as_object().at(id).at("state").as_string();
        }
        std::string clock = "unsynced";
        if (fleet.contains("clocks") &&
            fleet.at("clocks").as_object().count(id) != 0u) {
          const json::Value& c = fleet.at("clocks").as_object().at(id);
          if (c.contains("synced") && c.at("synced").as_bool()) {
            clock = "offset=" +
                    Table::fmt(c.number_or("offset_ns", 0.0) / 1e6, 3) + " ms";
          }
        }
        std::printf("  %-20s %-5s busy=%2.0f/%-2.0f ok=%-6.0f failed=%-4.0f "
                    "breaker=%-9s clock=%s\n",
                    id.c_str(), n.at("alive").as_bool() ? "up" : "down",
                    n.number_or("busy", 0.0), n.number_or("slots", 0.0),
                    n.number_or("evals_ok", 0.0), n.number_or("evals_failed", 0.0),
                    breaker.c_str(), clock.c_str());
      }
    }

    // Active learned partition, when any session runs --structure-online.
    // The gauges track the most recent refit fleet-wide; absent metrics
    // (structure learning off everywhere) hide the panel entirely.
    {
      const double blocks = parse_gauge(metrics_text, obs::metric::kStructureBlocks);
      if (!std::isnan(blocks)) {
        const double largest =
            parse_gauge(metrics_text, obs::metric::kStructureLargestBlock);
        const double since = parse_gauge(
            metrics_text, obs::metric::kStructureEvalsSinceRepartition);
        const double repartitions =
            parse_gauge(metrics_text, obs::metric::kStructureRepartitions);
        std::printf("\nStructure: blocks=%.0f largest=%.0f "
                    "evals_since_repartition=%.0f repartitions=%.0f\n",
                    blocks, std::isnan(largest) ? 0.0 : largest,
                    std::isnan(since) ? 0.0 : since,
                    std::isnan(repartitions) ? 0.0 : repartitions);
      }
    }

    std::printf("\nLatency:\n");
    render_latency_line("http request",
                        parse_histogram(metrics_text, obs::metric::kHttpRequestSeconds));
    render_latency_line("fleet eval",
                        parse_histogram(metrics_text, obs::metric::kFleetEvalSeconds));
    render_latency_line("local eval",
                        parse_histogram(metrics_text, obs::metric::kEvalSeconds));
    std::fflush(stdout);
  }
  return 0;
}

// --- remote-*: client commands against a running serve instance. ---

std::pair<std::string, std::uint16_t> parse_server(const std::string& server) {
  const std::size_t colon = server.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= server.size()) {
    throw UsageError("--server must be host:port (e.g. 127.0.0.1:8077)");
  }
  unsigned long port = 0;
  try {
    port = std::stoul(server.substr(colon + 1));
  } catch (const std::exception&) {
    throw UsageError("bad port in --server '" + server + "'");
  }
  if (port == 0 || port > 65535) {
    throw UsageError("bad port in --server '" + server + "'");
  }
  return {server.substr(0, colon), static_cast<std::uint16_t>(port)};
}

net::ClientRetryOptions make_retry(const CliArgs& args,
                                   obs::Telemetry* telemetry) {
  net::ClientRetryOptions retry;
  retry.max_attempts = 1 + static_cast<int>(args.retries);
  retry.default_deadline_seconds = args.deadline_s;
  // A traced client (--trace-out/--metrics-out) opens a span per request and
  // sends its traceparent, so the server-side subtree — and, through the
  // fleet, the node-side spans — root under this process's trace.
  retry.telemetry = telemetry;
  return retry;
}

net::Client make_client(const CliArgs& args, double timeout_seconds = 30.0,
                        obs::Telemetry* telemetry = nullptr) {
  if (args.server.empty()) throw UsageError("remote commands require --server host:port");
  auto [host, port] = parse_server(args.server);
  return net::Client(host, port, timeout_seconds, make_retry(args, telemetry));
}

json::Value make_session_spec(const CliArgs& args) {
  if (args.app.empty()) throw UsageError("remote session creation requires --app");
  json::Object spec;
  spec["app"] = json::Value(args.app);
  spec["backend"] = json::Value(args.backend);
  spec["max_evals"] = json::Value(args.max_evals);
  spec["seed"] = json::Value(args.seed);
  if (!args.session_id.empty()) spec["id"] = json::Value(args.session_id);
  if (args.structure_online) {
    spec["structure_online"] = json::Value(true);
    spec["structure_cadence"] = json::Value(args.structure_cadence);
    spec["structure_threshold"] = json::Value(args.structure_threshold);
    spec["structure_evidence"] = json::Value(args.structure_evidence);
    spec["structure_hysteresis"] = json::Value(args.structure_hysteresis);
    spec["structure_cooldown"] = json::Value(args.structure_cooldown);
  }
  return json::Value(std::move(spec));
}

std::string require_session_id(const CliArgs& args) {
  if (args.session_id.empty()) throw UsageError("this command requires --session-id");
  return args.session_id;
}

int cmd_remote_create(const CliArgs& args, obs::Telemetry* telemetry) {
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);
  std::cout << client.create_session(make_session_spec(args)).dump(2) << "\n";
  return 0;
}

int cmd_remote_ask(const CliArgs& args, obs::Telemetry* telemetry) {
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);
  std::cout << client.ask(require_session_id(args), args.k).dump(2) << "\n";
  return 0;
}

int cmd_remote_tell(const CliArgs& args, obs::Telemetry* telemetry) {
  if (!args.has_eval_id) throw UsageError("remote-tell requires --eval-id");
  if (args.value.empty() == args.outcome.empty()) {
    throw UsageError("remote-tell needs exactly one of --value or --outcome");
  }
  json::Object body;
  body["id"] = json::Value(args.eval_id);
  if (!args.value.empty()) {
    try {
      body["value"] = json::Value(std::stod(args.value));
    } catch (const std::exception&) {
      throw UsageError("--value must be a number");
    }
  } else {
    body["outcome"] = json::Value(args.outcome);
  }
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);
  std::cout << client.tell(require_session_id(args), json::Value(std::move(body))).dump(2)
            << "\n";
  return 0;
}

int cmd_remote_report(const CliArgs& args, obs::Telemetry* telemetry) {
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);
  std::cout << client.report(require_session_id(args)).dump(2) << "\n";
  return 0;
}

int cmd_remote_close(const CliArgs& args, obs::Telemetry* telemetry) {
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);
  std::cout << client.close_session(require_session_id(args)).dump(2) << "\n";
  return 0;
}

// A full remote tune in one command: create (or attach to) a server-side
// session for --app, then loop ask -> evaluate locally -> tell until the
// budget is exhausted. This is the CI smoke path and the reference client
// implementation for external integrations.
int cmd_remote_drive(const CliArgs& args, obs::Telemetry* telemetry) {
  if (args.app.empty()) throw UsageError("remote-drive requires --app");
  net::Client client = make_client(args, /*timeout_seconds=*/30.0, telemetry);

  std::string id = args.session_id;
  try {
    const json::Value created = client.create_session(make_session_spec(args));
    id = created.at("id").as_string();
    log_info("remote-drive: created session '", id, "'");
  } catch (const std::exception& e) {
    // With an explicit --session-id a conflict means "resume it".
    if (id.empty() || std::string(e.what()).find("HTTP 409") == std::string::npos) {
      throw;
    }
    log_info("remote-drive: attaching to existing session '", id, "'");
  }

  core::AppBundle bundle = core::make_builtin_app(args.app, args.seed);
  core::RegionSumObjective objective(*bundle.app, {});
  const search::SearchSpace& space = bundle.app->space();

  std::string state = "active";
  while (state == "active") {
    const json::Value batch = client.ask(id, 4);
    state = batch.at("state").as_string();
    const auto& candidates = batch.at("candidates").as_array();
    if (candidates.empty()) {
      if (state == "active" && batch.number_or("outstanding", 0.0) > 0.0) {
        // Another client holds the outstanding candidates; nothing to do.
        break;
      }
      continue;
    }
    for (const auto& cand : candidates) {
      search::NamedConfig named;
      for (const auto& [name, v] : cand.at("config").as_object()) {
        named[name] = v.as_number();
      }
      const search::Config config = search::from_named(space, named);
      json::Object tell_body;
      tell_body["id"] = cand.at("id");
      try {
        const double value = objective.evaluate(config);
        tell_body["value"] = json::Value(value);
        tell_body["cost_seconds"] = json::Value(value);
      } catch (const std::exception&) {
        tell_body["outcome"] = json::Value(std::string("crashed"));
      }
      client.tell(id, json::Value(std::move(tell_body)));
    }
  }

  std::cout << client.report(id).dump(2) << "\n";
  return 0;
}

int cmd_remote(const CliArgs& args, obs::Telemetry* telemetry) {
  if (args.command == "remote-create") return cmd_remote_create(args, telemetry);
  if (args.command == "remote-ask") return cmd_remote_ask(args, telemetry);
  if (args.command == "remote-tell") return cmd_remote_tell(args, telemetry);
  if (args.command == "remote-report") return cmd_remote_report(args, telemetry);
  if (args.command == "remote-close") return cmd_remote_close(args, telemetry);
  if (args.command == "remote-drive") return cmd_remote_drive(args, telemetry);
  throw UsageError("unknown remote command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (argc >= 2 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    usage(argv[0]);
    return 0;
  }
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  // Offline report: reads journals only, no app (and no telemetry) needed.
  if (args.command == "report") {
    if (args.session_dir.empty()) {
      std::fprintf(stderr, "error: report requires --session <dir>\n");
      return 2;
    }
    try {
      return cmd_report(args.session_dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // Offline journal verification: like report, needs no app or telemetry.
  if (args.command == "fsck") {
    if (args.journal_dir.empty()) {
      std::fprintf(stderr, "error: fsck requires --journal-dir <dir>\n");
      return 2;
    }
    try {
      return cmd_fsck(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  const bool is_serve = args.command == "serve";
  const bool is_remote = args.command.rfind("remote-", 0) == 0;
  const bool is_fleet = args.command.rfind("fleet-", 0) == 0;
  const bool is_top = args.command == "top";
  // fleet-status / fleet-drive / top are pure clients; fleet-node needs
  // --app to build its worker sandbox (checked in cmd_fleet_node).
  if (!is_serve && !is_remote && !is_fleet && !is_top && args.app.empty()) {
    std::fprintf(stderr, "error: --app is required\n");
    return usage(argv[0]);
  }

  // --log-file tees every log line to a file; both streams then carry the
  // decorated format (wall-clock timestamp + thread id) so the file can be
  // correlated with external events. Without the flag the stderr format is
  // the historical "[tunekit LEVEL] msg", unchanged.
  std::FILE* log_fp = nullptr;
  if (!args.log_file.empty()) {
    log_fp = std::fopen(args.log_file.c_str(), "a");
    if (log_fp == nullptr) {
      std::fprintf(stderr, "error: cannot open --log-file '%s'\n",
                   args.log_file.c_str());
      return 1;
    }
    set_log_decorations(true);
    set_log_sink([log_fp](LogLevel level, const std::string& msg) {
      const std::string line = format_log_line(level, msg);
      std::fprintf(stderr, "%s\n", line.c_str());
      std::fprintf(log_fp, "%s\n", line.c_str());
      std::fflush(log_fp);
    });
  }

  // Telemetry is enabled only when an exporter asked for it; every layer
  // below receives either this instance or a null pointer (zero overhead).
  // serve always carries telemetry: /metrics is part of its contract.
  obs::Telemetry telemetry;
  const bool want_telemetry =
      !args.trace_out.empty() || !args.metrics_out.empty() || is_serve;
  if (want_telemetry) telemetry.enable();
  obs::Telemetry* tel = want_telemetry ? &telemetry : nullptr;

  int rc = 1;
  try {
    if (is_serve) {
      rc = cmd_serve(args, tel);
    } else if (is_top) {
      rc = cmd_top(args);
    } else if (is_remote) {
      rc = cmd_remote(args, tel);
    } else if (is_fleet) {
      if (args.command == "fleet-node") rc = cmd_fleet_node(args, argv[0], tel);
      else if (args.command == "fleet-status") rc = cmd_fleet_status(args);
      else if (args.command == "fleet-drive") rc = cmd_fleet_drive(args, tel);
      else {
        std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
        return usage(argv[0]);
      }
    } else {
      core::AppBundle bundle = core::make_builtin_app(args.app, args.seed);
      const auto iso = make_isolation(args, argv[0]);
      const auto opt = make_options(args, bundle, iso, tel);
      if (args.command == "info") rc = cmd_info(*bundle.app);
      else if (args.command == "analyze") rc = cmd_analyze(*bundle.app, opt, args.dot);
      else if (args.command == "plan") rc = cmd_plan(*bundle.app, opt);
      else if (args.command == "tune") rc = cmd_tune(*bundle.app, opt);
      else if (args.command == "session") rc = cmd_session(*bundle.app, args, tel);
      else {
        std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
        return usage(argv[0]);
      }
    }
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  if (want_telemetry) {
    try {
      if (!args.trace_out.empty()) {
        obs::write_chrome_trace(telemetry, args.trace_out);
        log_info("cli: trace written to ", args.trace_out);
      }
      if (!args.metrics_out.empty()) {
        obs::write_prometheus_text(telemetry.metrics(), args.metrics_out);
        log_info("cli: metrics written to ", args.metrics_out);
      }
      // A traced tune with a checkpoint dir also journals the full metrics
      // snapshot (phase gauges included) next to the per-search journals, so
      // `report --session <dir>` reproduces the breakdown offline.
      if (!args.checkpoint_dir.empty() && args.command == "tune") {
        std::filesystem::create_directories(args.checkpoint_dir);
        service::JournalHeader header;
        header.backend = "telemetry";
        auto store = service::SessionStore::create(
            args.checkpoint_dir + "/telemetry.journal.jsonl", header);
        store->metrics(obs::metrics_to_json(telemetry.metrics()));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: telemetry export failed: %s\n", e.what());
      if (rc == 0) rc = 1;
    }
  }
  if (log_fp != nullptr) {
    set_log_sink(nullptr);  // before the FILE* goes away
    std::fclose(log_fp);
  }
  return rc;
}
