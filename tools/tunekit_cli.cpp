// tunekit_cli — command-line front end for the methodology.
//
//   tunekit_cli info    --app <name>                  parameter table
//   tunekit_cli analyze --app <name> [options]        sensitivity + DAG
//   tunekit_cli plan    --app <name> [options]        the suggested search set
//   tunekit_cli tune    --app <name> [options]        full methodology run
//   tunekit_cli session --app <name> [options]        NDJSON ask/tell server
//
// Built-in apps: synth:case1..synth:case5, tddft:cs1, tddft:cs2, minislater.
// Common options:
//   --cutoff <frac>          influence cut-off (default 0.10; synthetic: 0.25)
//   --max-dims <n>           per-search dimension cap (default 10)
//   --variations <n>         sensitivity variations per parameter
//   --importance-samples <n> random-forest dataset size (0 disables)
//   --evals-per-param <n>    search budget rule (default 10)
//   --min-evals <n>          search budget floor (default 20)
//   --seed <n>               RNG seed
//   --checkpoint-dir <path>  per-search crash-recovery checkpoints
//   --dot                    also print the pruned influence DAG as Graphviz
//
// Session options (see docs/SERVICE.md for the NDJSON protocol):
//   --max-evals <n>          session evaluation budget (default 100)
//   --backend <bo|random|grid>  suggestion backend (default bo)
//   --journal <path>         durable ask/tell journal (JSON lines)
//   --resume                 resume the session from --journal

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/app_registry.hpp"
#include "core/methodology.hpp"
#include "robust/measure.hpp"
#include "robust/worker_pool.hpp"
#include "core/report.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"

using namespace tunekit;

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s <info|analyze|plan|tune|session> --app <name> [options]\n"
      "apps:  synth:case1..case5 | tddft:cs1 | tddft:cs2 | minislater\n"
      "options: --cutoff F --max-dims N --variations N --importance-samples N\n"
      "         --evals-per-param N --min-evals N --seed N --checkpoint-dir P --dot\n"
      "robust:  --repeats N (measurements per config, MAD-trimmed)\n"
      "         --eval-timeout S (watchdog deadline per measurement)\n"
      "         --eval-retries N (re-attempts after a transient crash)\n"
      "         --mad-threshold F (outlier cut in scaled MADs; 0 disables)\n"
      "sandbox: --isolate thread|process (default thread; process runs every\n"
      "           evaluation in a supervised tunekit_worker with SIGKILL\n"
      "           deadlines and crash quarantine)\n"
      "         --worker-bin P (worker binary; default: tunekit_worker next\n"
      "           to this executable; requires --isolate process)\n"
      "         --mem-limit-mb N (RLIMIT_AS cap per worker; requires\n"
      "           --isolate process)\n"
      "session: speaks NDJSON ask/tell on stdin/stdout (docs/SERVICE.md)\n"
      "         --max-evals N --backend bo|random|grid --journal P --resume\n",
      argv0);
  return 2;
}

struct CliArgs {
  std::string command;
  std::string app;
  double cutoff = -1.0;  // negative = per-app default
  std::size_t max_dims = 10;
  std::size_t variations = 0;  // 0 = per-app default
  std::size_t importance_samples = 0;
  std::size_t evals_per_param = 10;
  std::size_t min_evals = 20;
  std::uint64_t seed = 42;
  std::string checkpoint_dir;
  bool dot = false;
  // hardened evaluation (applies to sensitivity and search evaluations)
  std::size_t repeats = 1;
  double eval_timeout = std::numeric_limits<double>::infinity();
  std::size_t eval_retries = 0;
  double mad_threshold = 3.5;
  // session command
  std::size_t max_evals = 100;
  std::string backend = "bo";
  std::string journal;
  bool resume = false;
  // process isolation
  std::string isolate;  // "" = default (thread), else "thread"/"process"
  std::string worker_bin;
  double mem_limit_mb = -1.0;  // negative = unset
};

bool parse_args(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const auto eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.erase(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    try {
      if (flag == "--app") args.app = next();
      else if (flag == "--cutoff") args.cutoff = std::stod(next());
      else if (flag == "--max-dims") args.max_dims = std::stoul(next());
      else if (flag == "--variations") args.variations = std::stoul(next());
      else if (flag == "--importance-samples") args.importance_samples = std::stoul(next());
      else if (flag == "--evals-per-param") args.evals_per_param = std::stoul(next());
      else if (flag == "--min-evals") args.min_evals = std::stoul(next());
      else if (flag == "--seed") args.seed = std::stoull(next());
      else if (flag == "--checkpoint-dir") args.checkpoint_dir = next();
      else if (flag == "--dot") args.dot = true;
      else if (flag == "--repeats") args.repeats = std::stoul(next());
      else if (flag == "--eval-timeout") args.eval_timeout = std::stod(next());
      else if (flag == "--eval-retries") args.eval_retries = std::stoul(next());
      else if (flag == "--mad-threshold") args.mad_threshold = std::stod(next());
      else if (flag == "--max-evals") args.max_evals = std::stoul(next());
      else if (flag == "--backend") args.backend = next();
      else if (flag == "--journal") args.journal = next();
      else if (flag == "--resume") args.resume = true;
      else if (flag == "--isolate") args.isolate = next();
      else if (flag == "--worker-bin") args.worker_bin = next();
      else if (flag == "--mem-limit-mb") args.mem_limit_mb = std::stod(next());
      else {
        std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
        return false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument for %s: %s\n", flag.c_str(), e.what());
      return false;
    }
  }
  return true;
}

// Validate the isolation flag combination (before any work happens) and
// translate it into IsolationOptions. Conflicting flags are hard errors, not
// warnings: a user who passed --mem-limit-mb expects the cap to be enforced,
// and silently ignoring it under thread isolation would be worse than
// refusing to run.
robust::IsolationOptions make_isolation(const CliArgs& args, const char* argv0) {
  robust::IsolationOptions iso;
  if (!args.isolate.empty()) {
    iso.mode = robust::isolation_from_string(args.isolate);  // throws on junk
  }
  if (iso.mode != robust::IsolationMode::Process) {
    if (!args.worker_bin.empty()) {
      throw std::runtime_error(
          "--worker-bin requires --isolate process (worker binaries are only "
          "used by the process sandbox)");
    }
    if (args.mem_limit_mb >= 0.0) {
      throw std::runtime_error(
          "--mem-limit-mb requires --isolate process (thread isolation cannot "
          "enforce a per-evaluation memory cap)");
    }
    return iso;
  }
  if (args.mem_limit_mb >= 0.0) iso.sandbox.mem_limit_mb = args.mem_limit_mb;
  std::string bin = args.worker_bin;
  if (bin.empty()) {
    // Default: the tunekit_worker built next to this executable.
    bin = (std::filesystem::path(argv0).parent_path() / "tunekit_worker").string();
  }
  iso.sandbox.argv = {bin, "--app", args.app, "--seed", std::to_string(args.seed)};
  return iso;
}

core::MethodologyOptions make_options(const CliArgs& args, const core::AppBundle& bundle,
                                      const robust::IsolationOptions& iso) {
  core::MethodologyOptions opt;
  opt.cutoff = args.cutoff >= 0.0 ? args.cutoff : bundle.default_cutoff;
  opt.max_dims = args.max_dims;
  opt.sensitivity.n_variations =
      args.variations > 0 ? args.variations : bundle.default_variations;
  opt.importance_samples = args.importance_samples;
  opt.executor.evals_per_param = args.evals_per_param;
  opt.executor.min_evals = args.min_evals;
  opt.executor.bo.seed = args.seed;
  opt.executor.checkpoint_dir = args.checkpoint_dir;
  opt.seed = args.seed;
  // One hardened-measurement policy for the whole pipeline: the sensitivity
  // analysis and every search evaluation measure under the same rules.
  robust::MeasureOptions measure;
  measure.repeats = args.repeats;
  measure.mad_threshold = args.mad_threshold;
  measure.watchdog.timeout_seconds = args.eval_timeout;
  measure.watchdog.max_retries = args.eval_retries;
  measure.watchdog.backoff_seconds = args.eval_retries > 0 ? 0.05 : 0.0;
  opt.sensitivity.measure = measure;
  opt.executor.measure = measure;
  opt.sensitivity.isolation = iso;
  opt.executor.isolation = iso;
  return opt;
}

int cmd_info(core::TunableApp& app) {
  std::cout << "App: " << app.name() << "\n";
  Table table({"#", "Parameter", "Kind", "Default", "Cardinality"});
  const auto& space = app.space();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.param(i);
    table.add_row({std::to_string(i), p.name(), search::to_string(p.kind()),
                   Table::fmt(p.default_value(), 2),
                   p.cardinality() ? std::to_string(p.cardinality()) : "inf"});
  }
  std::cout << table.str();
  std::cout << "Constraints: " << space.constraints().size()
            << " | log10(#configs) = " << Table::fmt(space.log10_cardinality(), 2)
            << "\n";
  std::cout << "Routines:";
  for (const auto& r : app.routines()) std::cout << " " << r.name;
  const auto outer = app.outer_regions();
  if (!outer.empty()) {
    std::cout << " | outer:";
    for (const auto& o : outer) std::cout << " " << o;
  }
  std::cout << "\n";
  return 0;
}

int cmd_analyze(core::TunableApp& app, const core::MethodologyOptions& opt, bool dot) {
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  std::cout << "Observations: " << analysis.observations << "\n\n";
  std::cout << core::sensitivity_tables(analysis.sensitivity,
                                        analysis.sensitivity.regions(),
                                        std::min<std::size_t>(10, app.space().size()));
  std::cout << "\nCross edges above the " << Table::pct(opt.cutoff, 0) << " cut-off:\n";
  const auto pruned = analysis.graph.pruned(opt.cutoff);
  for (const auto& e : pruned.cross_edges()) {
    std::cout << "  " << analysis.graph.param_name(e.param) << " ("
              << analysis.graph.routine_name(e.from_routine) << ") -> "
              << analysis.graph.routine_name(e.to_routine) << " ["
              << Table::pct(e.weight, 0) << "]\n";
  }
  if (dot) std::cout << "\n" << pruned.to_dot();
  return 0;
}

int cmd_plan(core::TunableApp& app, const core::MethodologyOptions& opt) {
  core::Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);
  std::cout << core::plan_table(plan, analysis.graph);
  return 0;
}

int cmd_tune(core::TunableApp& app, const core::MethodologyOptions& opt) {
  core::Methodology m(opt);
  const auto result = m.run(app);
  std::cout << core::full_report(app, result);
  return 0;
}

// Serve the app's search space as an NDJSON ask/tell session: the client (an
// external, non-linked application) evaluates the suggested configurations
// itself and reports results back on stdin.
int cmd_session(core::TunableApp& app, const CliArgs& args) {
  service::SessionOptions opt;
  opt.max_evals = args.max_evals;
  opt.backend = service::backend_from_string(args.backend);
  opt.seed = args.seed;

  std::unique_ptr<service::TuningSession> session;
  if (args.resume) {
    if (args.journal.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal\n");
      return 2;
    }
    session = service::TuningSession::resume(app.space(), opt, args.journal);
  } else {
    session = std::make_unique<service::TuningSession>(app.space(), opt, args.journal);
  }
  service::SessionServer server(*session);
  server.serve(std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (argc >= 2 && (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    usage(argv[0]);
    return 0;
  }
  if (!parse_args(argc, argv, args)) return usage(argv[0]);
  if (args.app.empty()) {
    std::fprintf(stderr, "error: --app is required\n");
    return usage(argv[0]);
  }

  try {
    core::AppBundle bundle = core::make_builtin_app(args.app, args.seed);
    const auto iso = make_isolation(args, argv[0]);
    const auto opt = make_options(args, bundle, iso);
    if (args.command == "info") return cmd_info(*bundle.app);
    if (args.command == "analyze") return cmd_analyze(*bundle.app, opt, args.dot);
    if (args.command == "plan") return cmd_plan(*bundle.app, opt);
    if (args.command == "tune") return cmd_tune(*bundle.app, opt);
    if (args.command == "session") return cmd_session(*bundle.app, args);
    std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
