// tunekit_worker: the out-of-process evaluation side of the sandbox.
//
// Speaks "tunekit-worker-v1" NDJSON over stdio (see
// src/robust/process_sandbox.hpp for the protocol): a ready handshake on
// start-up, periodic {"e":"hb"} heartbeats from a background thread, and one
// {"e":"result",...} line per {"op":"eval",...} request. The supervisor owns
// all deadline enforcement (SIGKILL) and resource caps (setrlimit, applied
// pre-exec), so this binary just evaluates and reports — if it dies doing so,
// that is precisely the event the sandbox exists to contain.
//
// --chaos-segv / --chaos-hang inject deterministic per-config faults (a real
// segfault / an uninterruptible busy-loop) for the fault-injection acceptance
// tests: the same config always misbehaves the same way, so crash quarantine
// and resume behave reproducibly.

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

#include "common/json.hpp"
#include "core/app_registry.hpp"
#include "robust/outcome.hpp"

namespace {

using tunekit::robust::EvalOutcome;

struct WorkerArgs {
  std::string app;
  std::uint64_t seed = 12345;
  int heartbeat_ms = 250;
  double chaos_segv = 0.0;
  double chaos_hang = 0.0;
  std::uint64_t chaos_seed = 0;
};

int usage() {
  std::fprintf(stderr,
               "usage: tunekit_worker --app <name> [--seed N] [--heartbeat-ms M]\n"
               "                      [--chaos-segv P] [--chaos-hang P] [--chaos-seed N]\n"
               "apps: %s\n",
               tunekit::core::builtin_app_names());
  return 2;
}

bool parse_args(int argc, char** argv, WorkerArgs& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--app" && (v = next())) out.app = v;
    else if (flag == "--seed" && (v = next())) out.seed = std::strtoull(v, nullptr, 10);
    else if (flag == "--heartbeat-ms" && (v = next())) out.heartbeat_ms = std::atoi(v);
    else if (flag == "--chaos-segv" && (v = next())) out.chaos_segv = std::atof(v);
    else if (flag == "--chaos-hang" && (v = next())) out.chaos_hang = std::atof(v);
    else if (flag == "--chaos-seed" && (v = next())) out.chaos_seed = std::strtoull(v, nullptr, 10);
    else return false;
  }
  return !out.app.empty();
}

/// stdout is shared between the request loop and the heartbeat thread.
std::mutex g_stdout_mutex;

void emit_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_stdout_mutex);
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// Deterministic per-config uniform in [0,1): FNV-1a over the raw double
/// bits, finished with a splitmix64 avalanche of the chaos seed. The same
/// config always draws the same number — faults are reproducible.
double chaos_draw(const std::vector<double>& config, std::uint64_t chaos_seed) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : config) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  std::uint64_t z = h + chaos_seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

[[noreturn]] void chaos_segfault() {
  volatile int* p = nullptr;
  *p = 42;  // real SIGSEGV — the supervisor must see a signal death
  std::abort();
}

[[noreturn]] void chaos_hang() {
  // Uninterruptible from the evaluation's point of view: no cancellation
  // polling, heartbeats keep flowing, only the supervisor's SIGKILL ends it.
  volatile std::uint64_t sink = 0;
  for (;;) ++sink;
}

tunekit::json::Value handle_eval(tunekit::core::TunableApp& app,
                                 const WorkerArgs& args,
                                 const tunekit::json::Value& request) {
  // Trace propagation: a "span" id in the request asks for phase timings
  // (setup / objective / teardown) relative to request receipt. Old
  // supervisors never send it, and ignore the reply fields if they do.
  const bool traced = request.contains("span");
  const auto received = std::chrono::steady_clock::now();
  auto rel_ns = [&](std::chrono::steady_clock::time_point t) -> std::int64_t {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - received).count();
  };

  tunekit::json::Object reply;
  reply["e"] = "result";
  reply["id"] = request.at("id").as_int();
  if (traced) reply["span"] = request.at("span").as_number();

  std::vector<double> config;
  for (const auto& v : request.at("config").as_array()) {
    config.push_back(v.as_number());
  }

  if (config.size() != app.space().size()) {
    reply["outcome"] = "invalid-config";
    reply["error"] = "config has " + std::to_string(config.size()) +
                     " coordinates, space has " + std::to_string(app.space().size());
    return tunekit::json::Value(std::move(reply));
  }

  if (args.chaos_segv > 0.0 || args.chaos_hang > 0.0) {
    const double u = chaos_draw(config, args.chaos_seed);
    if (u < args.chaos_segv) chaos_segfault();
    if (u < args.chaos_segv + args.chaos_hang) chaos_hang();
  }

  EvalOutcome outcome = EvalOutcome::Ok;
  std::string error;
  tunekit::search::RegionTimes times;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    times = app.evaluate_regions(config);
    if (!std::isfinite(times.total)) {
      outcome = EvalOutcome::NonFinite;
      error = "evaluation returned a non-finite total";
    }
  } catch (const tunekit::robust::EvalFailure& f) {
    outcome = f.outcome();
    error = f.what();
  } catch (const std::invalid_argument& e) {
    outcome = EvalOutcome::InvalidConfig;
    error = e.what();
  } catch (const std::exception& e) {
    outcome = EvalOutcome::Crashed;
    error = e.what();
  } catch (...) {
    outcome = EvalOutcome::Crashed;
    error = "unknown exception";
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double cost = std::chrono::duration<double>(t1 - t0).count();

  reply["outcome"] = tunekit::robust::to_string(outcome);
  reply["cost"] = cost;
  if (outcome == EvalOutcome::Ok) {
    reply["value"] = times.total;
    reply["total"] = times.total;
    tunekit::json::Object regions;
    for (const auto& [name, seconds] : times.regions) regions[name] = seconds;
    reply["regions"] = tunekit::json::Value(std::move(regions));
  }
  if (!error.empty()) reply["error"] = error;

  if (traced) {
    auto make_span = [](const char* name, std::int64_t start_ns,
                        std::int64_t dur_ns) {
      tunekit::json::Object s;
      s["name"] = name;
      s["start_ns"] = static_cast<double>(start_ns < 0 ? 0 : start_ns);
      s["dur_ns"] = static_cast<double>(dur_ns < 0 ? 0 : dur_ns);
      return tunekit::json::Value(std::move(s));
    };
    const auto t2 = std::chrono::steady_clock::now();  // reply built
    tunekit::json::Array spans;
    spans.push_back(make_span("setup", 0, rel_ns(t0)));
    spans.push_back(make_span("objective", rel_ns(t0), rel_ns(t1) - rel_ns(t0)));
    spans.push_back(make_span("teardown", rel_ns(t1), rel_ns(t2) - rel_ns(t1)));
    reply["spans"] = tunekit::json::Value(std::move(spans));
  }
  return tunekit::json::Value(std::move(reply));
}

}  // namespace

int main(int argc, char** argv) {
  WorkerArgs args;
  if (!parse_args(argc, argv, args)) return usage();

#if defined(__unix__) || defined(__APPLE__)
  // A dying supervisor closes our stdout; fail the write, don't take a signal.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  std::unique_ptr<tunekit::core::TunableApp> app;
  try {
    app = tunekit::core::make_builtin_app(args.app, args.seed).app;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tunekit_worker: %s\n", e.what());
    return 2;
  }

  {
    tunekit::json::Object ready;
    ready["e"] = "ready";
    ready["format"] = "tunekit-worker-v1";
    ready["app"] = args.app;
#if defined(__unix__) || defined(__APPLE__)
    ready["pid"] = static_cast<std::int64_t>(::getpid());
#endif
    emit_line(tunekit::json::Value(std::move(ready)).dump());
  }

  // Heartbeat thread: proves liveness to the supervisor while long
  // evaluations hold the request loop. A condition variable (instead of a
  // plain sleep) lets shutdown interrupt the wait immediately.
  std::atomic<bool> stop{false};
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  std::thread heartbeat;
  if (args.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mutex);
      while (!stop.load(std::memory_order_relaxed)) {
        if (hb_cv.wait_for(lock, std::chrono::milliseconds(args.heartbeat_ms),
                           [&] { return stop.load(std::memory_order_relaxed); })) {
          break;
        }
        emit_line("{\"e\":\"hb\"}");
      }
    });
  }

  int rc = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      const tunekit::json::Value request = tunekit::json::parse(line);
      const std::string op = request.at("op").as_string();
      if (op == "ping") {
        emit_line("{\"e\":\"pong\"}");
      } else if (op == "exit") {
        break;
      } else if (op == "eval") {
        emit_line(handle_eval(*app, args, request).dump());
      } else {
        std::fprintf(stderr, "tunekit_worker: unknown op '%s'\n", op.c_str());
        rc = 3;
        break;
      }
    } catch (const std::exception& e) {
      // A malformed request line means the channel itself is broken; bail
      // out with a nonzero code so the supervisor classifies InvalidConfig.
      std::fprintf(stderr, "tunekit_worker: bad request: %s\n", e.what());
      rc = 3;
      break;
    }
  }

  stop.store(true, std::memory_order_relaxed);
  hb_cv.notify_all();
  if (heartbeat.joinable()) heartbeat.join();
  return rc;
}
