// tunekit_fleet_node: standalone evaluation node for a fleet dispatcher
// (tunekit_cli serve --fleet). Speaks "tunekit-fleet-v1" NDJSON over TCP —
// see src/fleet/remote_worker.hpp for the protocol. Each slot hosts a
// sandboxed tunekit_worker process, so the node inherits SIGKILL deadlines
// and respawn backoff; the dispatcher owns crash quarantine and re-dispatch.
//
// This is the binary the fleet-smoke CI job and production deployments run
// on worker machines; `tunekit_cli fleet-node` is the same agent embedded in
// the CLI for one-machine setups.
//
//   tunekit_fleet_node --server host:port --app <name>
//                      [--slots N] [--node-id ID] [--seed N]
//                      [--worker-bin P] [--mem-limit-mb N]
//                      [--chaos-mute-s S] [--spin-ms MS]
//
// Chaos flags exist for the soak/bench harnesses: --chaos-mute-s makes the
// node go silent (heartbeats stop, evals held) that long after registration;
// --spin-ms adds artificial per-eval cost.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/app_registry.hpp"
#include "fleet/node_agent.hpp"

namespace {

struct NodeArgs {
  std::string server;
  std::string app;
  std::string node_id;
  std::string worker_bin;
  std::size_t slots = 2;
  std::uint64_t seed = 42;
  double mem_limit_mb = -1.0;
  double chaos_mute_s = 0.0;
  double spin_ms = 0.0;
};

int usage() {
  std::fprintf(stderr,
               "usage: tunekit_fleet_node --server host:port --app <name>\n"
               "                          [--slots N] [--node-id ID] [--seed N]\n"
               "                          [--worker-bin P] [--mem-limit-mb N]\n"
               "                          [--chaos-mute-s S] [--spin-ms MS]\n"
               "apps: %s\n",
               tunekit::core::builtin_app_names());
  return 2;
}

bool parse_args(int argc, char** argv, NodeArgs& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--server" && (v = next())) out.server = v;
    else if (flag == "--app" && (v = next())) out.app = v;
    else if (flag == "--node-id" && (v = next())) out.node_id = v;
    else if (flag == "--worker-bin" && (v = next())) out.worker_bin = v;
    else if (flag == "--slots" && (v = next())) out.slots = std::strtoull(v, nullptr, 10);
    else if (flag == "--seed" && (v = next())) out.seed = std::strtoull(v, nullptr, 10);
    else if (flag == "--mem-limit-mb" && (v = next())) out.mem_limit_mb = std::atof(v);
    else if (flag == "--chaos-mute-s" && (v = next())) out.chaos_mute_s = std::atof(v);
    else if (flag == "--spin-ms" && (v = next())) out.spin_ms = std::atof(v);
    else return false;
  }
  return !out.server.empty() && !out.app.empty();
}

tunekit::fleet::NodeAgent* g_agent = nullptr;

void handle_signal(int) {
  if (g_agent != nullptr) g_agent->stop();
}

}  // namespace

int main(int argc, char** argv) {
  NodeArgs args;
  if (!parse_args(argc, argv, args)) return usage();

  const std::size_t colon = args.server.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= args.server.size()) {
    std::fprintf(stderr, "tunekit_fleet_node: --server must be host:port\n");
    return 2;
  }
  const unsigned long port = std::strtoul(args.server.c_str() + colon + 1, nullptr, 10);
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "tunekit_fleet_node: bad port in --server '%s'\n",
                 args.server.c_str());
    return 2;
  }

  tunekit::fleet::NodeAgentOptions opt;
  opt.host = args.server.substr(0, colon);
  opt.port = static_cast<std::uint16_t>(port);
  opt.node_id = args.node_id;
  opt.slots = args.slots > 0 ? args.slots : 1;
  opt.chaos_mute_after_s = args.chaos_mute_s;
  opt.spin_ms = args.spin_ms;
  std::string bin = args.worker_bin;
  if (bin.empty()) {
    // Default: the tunekit_worker built next to this executable.
    bin = (std::filesystem::path(argv[0]).parent_path() / "tunekit_worker").string();
  }
  opt.sandbox.argv = {bin, "--app", args.app, "--seed", std::to_string(args.seed)};
  if (args.mem_limit_mb >= 0.0) opt.sandbox.mem_limit_mb = args.mem_limit_mb;

  tunekit::fleet::NodeAgent agent(opt);
  g_agent = &agent;
  struct sigaction sa {};
  sa.sa_handler = handle_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  // Scripts parse this line (same contract as the CLI's listening line).
  std::printf("tunekit_fleet_node: node '%s' serving %zu slots for %s\n",
              agent.node_id().c_str(), opt.slots, args.server.c_str());
  std::fflush(stdout);

  const bool ok = agent.run();
  g_agent = nullptr;
  std::printf("tunekit_fleet_node: node '%s' stopped after %llu evals\n",
              agent.node_id().c_str(),
              static_cast<unsigned long long>(agent.evals_served()));
  return ok ? 0 : 1;
}
