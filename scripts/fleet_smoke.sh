#!/usr/bin/env sh
# End-to-end smoke test for the distributed evaluation fleet.
#
# Real processes, real sockets:
#   1. `tunekit_cli serve --fleet` (HTTP API + TCP evaluation dispatcher)
#   2. two `tunekit_fleet_node` processes dial in and register
#   3. fleet-status shows both nodes live
#   4. a session is created and driven end-to-end on the fleet (fleet-drive)
#   5. one node is SIGKILLed; the registry declares it dead, and a second
#      drive still completes on the survivor (re-dispatch under the
#      existing failure taxonomy)
#   6. /metrics carries the fleet gauges
#
# Usage: scripts/fleet_smoke.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>
# Exits nonzero (with a FAIL line) on the first broken invariant. Keeps the
# server and node logs in $WORK for CI to upload on failure; set
# TUNEKIT_SMOKE_LOG_DIR to put them somewhere durable.
set -eu

CLI=${1:?usage: fleet_smoke.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>}
NODE_BIN=${2:?usage: fleet_smoke.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>}
WORK=${TUNEKIT_SMOKE_LOG_DIR:-$(mktemp -d)}
mkdir -p "$WORK"
SERVER_PID=""
NODE1_PID=""
NODE2_PID=""

fail() {
    echo "FAIL: $*" >&2
    for log in serve.log node1.log node2.log; do
        [ -f "$WORK/$log" ] && sed "s/^/  $log: /" "$WORK/$log" >&2
    done
    exit 1
}

cleanup() {
    for pid in "$SERVER_PID" "$NODE1_PID" "$NODE2_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    [ -z "${TUNEKIT_SMOKE_LOG_DIR:-}" ] && rm -rf "$WORK" || true
}
trap cleanup EXIT

# --- 1. serve --fleet --------------------------------------------------------
"$CLI" serve --port 0 --fleet --fleet-port 0 --journal-dir "$WORK/journals" \
    --shards 4 --threads 2 --request-timeout 60 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$WORK/serve.log" | head -n1)
    FLEET=$(sed -n 's#.*fleet dispatcher on ##p' "$WORK/serve.log" | head -n1)
    [ -n "$ADDR" ] && [ -n "$FLEET" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "server never printed its HTTP address"
[ -n "$FLEET" ] || fail "server never printed its fleet address"
echo "server on $ADDR, dispatcher on $FLEET (pid $SERVER_PID)"

# --- 2. two evaluation nodes dial in -----------------------------------------
"$NODE_BIN" --server "$FLEET" --app synth:case1 --node-id smoke-a --slots 2 \
    >"$WORK/node1.log" 2>&1 &
NODE1_PID=$!
"$NODE_BIN" --server "$FLEET" --app synth:case1 --node-id smoke-b --slots 2 \
    >"$WORK/node2.log" 2>&1 &
NODE2_PID=$!

# --- 3. both nodes visible in the registry -----------------------------------
NODES=0
for _ in $(seq 1 50); do
    NODES=$("$CLI" fleet-status --server "$ADDR" \
        | grep -c '"alive": true' || true)
    [ "$NODES" -ge 2 ] && break
    sleep 0.2
done
[ "$NODES" -ge 2 ] || fail "expected 2 live nodes, registry shows $NODES"
echo "both nodes registered"

# --- 4. create a session and drive it on the fleet ---------------------------
"$CLI" remote-create --server "$ADDR" --app synth:case1 \
    --session-id fleet-smoke --max-evals 12 --backend random --seed 7 \
    || fail "remote-create"
"$CLI" fleet-drive --server "$ADDR" --session-id fleet-smoke \
    >"$WORK/drive1.txt" || fail "fleet-drive"
grep -q '"state": "exhausted"' "$WORK/drive1.txt" || fail "drive did not exhaust"
grep -q '"completed": 12' "$WORK/drive1.txt" || fail "drive lost evaluations"
echo "first drive exhausted its budget on the fleet"

# --- 5. SIGKILL one node; the fleet keeps working ----------------------------
kill -9 "$NODE1_PID"
NODE1_PID=""
for _ in $(seq 1 50); do
    ALIVE=$("$CLI" fleet-status --server "$ADDR" \
        | grep -c '"alive": true' || true)
    [ "$ALIVE" -eq 1 ] && break
    sleep 0.2
done
[ "$ALIVE" -eq 1 ] || fail "killed node never expired from the registry"

"$CLI" remote-create --server "$ADDR" --app synth:case1 \
    --session-id fleet-smoke-2 --max-evals 8 --backend random --seed 8 \
    || fail "remote-create (post-kill)"
"$CLI" fleet-drive --server "$ADDR" --session-id fleet-smoke-2 \
    >"$WORK/drive2.txt" || fail "fleet-drive after node kill"
grep -q '"completed": 8' "$WORK/drive2.txt" || fail "post-kill drive lost evals"
echo "fleet survived a SIGKILLed node"

# --- 6. fleet metrics exposed ------------------------------------------------
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.prom" || fail "metrics scrape"
grep -q 'tunekit_fleet_nodes_up' "$WORK/metrics.prom" \
    || fail "metrics missing fleet gauges"

echo "PASS: fleet smoke (register, drive, node kill, re-drive, metrics)"
