#!/usr/bin/env sh
# End-to-end smoke test for the remote tuning server.
#
# Exercises the full deployment story with real processes and real sockets:
#   1. `tunekit_cli serve` on an ephemeral port with a journal directory
#   2. a complete remote tune driven through the client commands
#   3. /metrics and /healthz scraped over plain HTTP (curl)
#   4. malformed traffic answered with 4xx, server stays up
#   5. SIGTERM -> graceful drain, journals flushed
#   6. a fresh server on the same journal dir resumes the session by id
#
# Usage: scripts/server_smoke.sh <path-to-tunekit_cli>
# Exits nonzero (with a FAIL line) on the first broken invariant.
set -eu

CLI=${1:?usage: server_smoke.sh <path-to-tunekit_cli>}
WORK=$(mktemp -d)
SERVER_PID=""

fail() {
    echo "FAIL: $*" >&2
    [ -f "$WORK/serve.log" ] && sed 's/^/  serve: /' "$WORK/serve.log" >&2
    exit 1
}

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_server() {
    "$CLI" serve --port 0 --journal-dir "$WORK/journals" \
        --threads 2 --request-timeout 10 >"$WORK/serve.log" 2>&1 &
    SERVER_PID=$!
    # The serve command prints its bound address once the listener is up.
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's#.*listening on http://##p' "$WORK/serve.log" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup"
        sleep 0.1
    done
    [ -n "$ADDR" ] || fail "server never printed its address"
    PORT=${ADDR##*:}
    echo "server up on port $PORT (pid $SERVER_PID)"
}

stop_server() {
    kill -TERM "$SERVER_PID"
    for _ in $(seq 1 100); do
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$SERVER_PID" 2>/dev/null && fail "server ignored SIGTERM"
    SERVER_PID=""
}

# --- 1. serve ---------------------------------------------------------------
start_server

# --- 2. full remote tune through the client commands ------------------------
"$CLI" remote-create --server "$ADDR" --app synth:case1 \
    --session-id smoke --max-evals 8 --backend random --seed 7 \
    || fail "remote-create"
"$CLI" remote-drive --server "$ADDR" --app synth:case1 --session-id smoke \
    >"$WORK/drive.txt" || fail "remote-drive"
grep -q 'exhausted' "$WORK/drive.txt" || fail "drive did not exhaust the budget"

"$CLI" remote-report --server "$ADDR" --session-id smoke >"$WORK/report.txt" \
    || fail "remote-report"
grep -q '"completed": 8' "$WORK/report.txt" || fail "report lost evaluations"

# --- 3. observability endpoints over plain HTTP -----------------------------
curl -sf "http://$ADDR/healthz" >/dev/null || fail "healthz"
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.prom" || fail "metrics scrape"
grep -q 'tunekit_http_requests_total' "$WORK/metrics.prom" \
    || fail "metrics missing http counters"
grep -q 'tunekit_sessions_created_total' "$WORK/metrics.prom" \
    || fail "metrics missing session counters"

# --- 4. malformed traffic is rejected, server survives ----------------------
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -d '{broken json' "http://$ADDR/v1/sessions")
[ "$CODE" = 400 ] || fail "malformed JSON answered $CODE, want 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/no/such/route")
[ "$CODE" = 404 ] || fail "unknown route answered $CODE, want 404"
curl -sf "http://$ADDR/healthz" >/dev/null || fail "server down after bad traffic"

# --- 5. SIGTERM drains and flushes journals ---------------------------------
stop_server
grep -q 'drained, journals flushed' "$WORK/serve.log" || fail "no drain message"
[ -f "$WORK/journals/smoke.journal.jsonl" ] || fail "journal missing after drain"
[ -f "$WORK/journals/smoke.spec.json" ] || fail "spec sidecar missing after drain"

# --- 6. a new server resumes the session from its journal -------------------
start_server
"$CLI" remote-report --server "$ADDR" --session-id smoke >"$WORK/resumed.txt" \
    || fail "resume-by-id after restart"
grep -q '"completed": 8' "$WORK/resumed.txt" || fail "restart lost journaled evals"
grep -q '"state": "exhausted"' "$WORK/resumed.txt" || fail "restart lost state"
stop_server

echo "PASS: server smoke (tune, metrics, chaos, drain, resume)"
