#!/usr/bin/env sh
# Distributed-tracing validation smoke.
#
# Real processes, real sockets, tracing on end to end:
#   1. `tunekit_cli serve --fleet --trace-out` (telemetry is always on in
#      serve mode; --trace-out additionally dumps a Chrome trace at exit)
#   2. two `tunekit_fleet_node` processes dial in and register
#   3. a session is created and driven end-to-end on the fleet
#   4. GET /v1/debug/traces: every emitted trace tree is single-rooted,
#      span ids are globally unique (an eval belongs to exactly one tree),
#      and the drive request's tree contains every node.objective span,
#      each contained inside the root's interval
#   5. SIGTERM the server; the Chrome trace_event export loads cleanly and
#      carries the distributed span names (server handler, fleet.rpc,
#      node.objective)
#
# Usage: scripts/trace_validate.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>
# Exits nonzero (with a FAIL line) on the first broken invariant. Keeps the
# server and node logs in $WORK for CI to upload on failure; set
# TUNEKIT_SMOKE_LOG_DIR to put them somewhere durable.
set -eu

CLI=${1:?usage: trace_validate.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>}
NODE_BIN=${2:?usage: trace_validate.sh <path-to-tunekit_cli> <path-to-tunekit_fleet_node>}
EVALS=10
WORK=${TUNEKIT_SMOKE_LOG_DIR:-$(mktemp -d)}
mkdir -p "$WORK"
SERVER_PID=""
NODE1_PID=""
NODE2_PID=""

fail() {
    echo "FAIL: $*" >&2
    for log in serve.log node1.log node2.log; do
        [ -f "$WORK/$log" ] && sed "s/^/  $log: /" "$WORK/$log" >&2
    done
    exit 1
}

cleanup() {
    for pid in "$SERVER_PID" "$NODE1_PID" "$NODE2_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    [ -z "${TUNEKIT_SMOKE_LOG_DIR:-}" ] && rm -rf "$WORK" || true
}
trap cleanup EXIT

# --- 1. serve --fleet with a Chrome-trace dump at exit -----------------------
"$CLI" serve --port 0 --fleet --fleet-port 0 --journal-dir "$WORK/journals" \
    --shards 4 --threads 2 --request-timeout 60 \
    --trace-out "$WORK/serve_trace.json" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's#.*listening on http://##p' "$WORK/serve.log" | head -n1)
    FLEET=$(sed -n 's#.*fleet dispatcher on ##p' "$WORK/serve.log" | head -n1)
    [ -n "$ADDR" ] && [ -n "$FLEET" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "server never printed its HTTP address"
[ -n "$FLEET" ] || fail "server never printed its fleet address"
echo "server on $ADDR, dispatcher on $FLEET (pid $SERVER_PID)"

# --- 2. two evaluation nodes dial in -----------------------------------------
"$NODE_BIN" --server "$FLEET" --app synth:case1 --node-id trace-a --slots 2 \
    >"$WORK/node1.log" 2>&1 &
NODE1_PID=$!
"$NODE_BIN" --server "$FLEET" --app synth:case1 --node-id trace-b --slots 2 \
    >"$WORK/node2.log" 2>&1 &
NODE2_PID=$!

NODES=0
for _ in $(seq 1 50); do
    NODES=$("$CLI" fleet-status --server "$ADDR" \
        | grep -c '"alive": true' || true)
    [ "$NODES" -ge 2 ] && break
    sleep 0.2
done
[ "$NODES" -ge 2 ] || fail "expected 2 live nodes, registry shows $NODES"
echo "both nodes registered"

# --- 3. drive a session across the fleet -------------------------------------
"$CLI" remote-create --server "$ADDR" --app synth:case1 \
    --session-id trace-smoke --max-evals "$EVALS" --backend random --seed 7 \
    || fail "remote-create"
"$CLI" fleet-drive --server "$ADDR" --session-id trace-smoke \
    >"$WORK/drive.txt" || fail "fleet-drive"
grep -q "\"completed\": $EVALS" "$WORK/drive.txt" || fail "drive lost evaluations"
echo "drive completed $EVALS evaluations on the fleet"

# --- 4. /v1/debug/traces: single-rooted trees, evals owned by one tree -------
# The drive handler's root span finishes a hair after the response is on the
# wire, and traces_json withholds incomplete trees — poll briefly.
OK=""
for _ in $(seq 1 20); do
    curl -sf "http://$ADDR/v1/debug/traces" >"$WORK/traces.json" \
        || fail "GET /v1/debug/traces"
    if EVALS="$EVALS" python3 - "$WORK/traces.json" <<'PY' >"$WORK/traces_check.txt" 2>&1
import json, os, sys
doc = json.load(open(sys.argv[1]))
traces = doc['traces']
assert traces, 'no complete traces'
seen_ids = {}
drive = None
for t in traces:
    spans = t['spans']
    assert t['span_count'] == len(spans), t['trace_id']
    in_tree = {s['id'] for s in spans}
    assert len(in_tree) == len(spans), f'duplicate span id in {t["trace_id"]}'
    roots = [s for s in spans if s.get('parent') not in in_tree]
    assert len(roots) == 1, \
        f'{t["trace_id"]}: {len(roots)} roots, expected exactly 1'
    root = roots[0]
    assert root['name'] == t['root'], t['trace_id']
    for s in spans:
        assert s['id'] not in seen_ids, \
            f'span {s["id"]} in two traces: {seen_ids[s["id"]]}, {t["trace_id"]}'
        seen_ids[s['id']] = t['trace_id']
    if '/drive' in root['name']:
        drive = (t, root)
assert drive is not None, 'no trace rooted at the drive request'
t, root = drive
objectives = [s for s in t['spans'] if s['name'] == 'node.objective']
want = int(os.environ['EVALS'])
assert len(objectives) >= want, \
    f'drive trace has {len(objectives)} node.objective spans, want >= {want}'
lo, hi = root['start_ns'], root['start_ns'] + root['dur_ns']
for s in objectives:
    assert lo <= s['start_ns'] and s['start_ns'] + s['dur_ns'] <= hi, \
        f'objective span {s["id"]} escapes the drive root interval'
print(f'{len(traces)} traces, drive tree: {t["span_count"]} spans, '
      f'{len(objectives)} objective leaves, OK')
PY
    then OK=1; break; fi
    sleep 0.3
done
[ -n "$OK" ] || { cat "$WORK/traces_check.txt" >&2; fail "trace tree validation"; }
cat "$WORK/traces_check.txt"

# --- 5. graceful shutdown; the Chrome trace export loads cleanly -------------
kill "$SERVER_PID"
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit on SIGTERM"
SERVER_PID=""
[ -f "$WORK/serve_trace.json" ] || fail "serve wrote no Chrome trace"

python3 - "$WORK/serve_trace.json" <<'PY' || fail "Chrome trace validation"
import collections, json, sys
doc = json.load(open(sys.argv[1]))
events = doc['traceEvents']
assert events, 'empty trace'
ids = set()
for e in events:
    assert e['ph'] == 'X', e
    assert e['ts'] >= 0 and e['dur'] >= 0, e
    ids.add(e['args']['span'])
bad = [e for e in events
       if e['args'].get('parent') not in (None, 0)
       and e['args']['parent'] not in ids]
assert not bad, bad[:5]
names = collections.Counter(e['name'] for e in events)
for required in ('server.POST /v1/sessions/trace-smoke/drive',
                 'scheduler.batch', 'fleet.rpc', 'node.objective'):
    assert names[required] > 0, f'missing {required} spans'
print(f'{len(events)} Chrome trace events, OK')
PY

echo "PASS: trace validation (fleet drive, single-rooted trees, Chrome export)"
