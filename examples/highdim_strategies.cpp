// Comparing high-dimensional search strategies on one problem.
//
// The library ships the three related-work strategies the paper surveys —
// dropout BO, random-embedding BO (REMBO), and additive-decomposition BO —
// next to plain joint BO and the methodology's partitioned search. This
// example races them on synthetic Case 4 at an equal evaluation budget and
// writes the best-so-far trajectories to a CSV for plotting.

#include <iostream>

#include "bo/additive_bo.hpp"
#include "bo/bayes_opt.hpp"
#include "bo/dropout_bo.hpp"
#include "bo/rembo.hpp"
#include "common/table.hpp"
#include "core/export.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

int main() {
  constexpr std::size_t kBudget = 120;
  constexpr std::uint64_t kSeed = 21;

  synth::SynthApp app(synth::SynthCase::Case4);
  auto make_objective = [&app]() {
    return search::FunctionObjective(
        [&app](const search::Config& x) { return app.function().evaluate(x); });
  };

  std::vector<std::string> labels;
  std::vector<std::vector<double>> trajectories;
  Table table({"Strategy", "Best F", "Seconds"});

  {
    auto obj = make_objective();
    bo::BoOptions opt;
    opt.max_evals = kBudget;
    opt.seed = kSeed;
    opt.hyperopt_every = 10;
    opt.hyperopt_restarts = 1;
    opt.hyperopt_max_iters = 60;
    const auto r = bo::BayesOpt(opt).run(obj, app.space());
    labels.push_back("joint-bo");
    trajectories.push_back(r.trajectory);
    table.add_row({"Joint BO (20-dim)", Table::fmt(r.best_value, 2),
                   Table::fmt(r.seconds, 2)});
  }
  {
    auto obj = make_objective();
    bo::DropoutBoOptions opt;
    opt.max_evals = kBudget;
    opt.active_dims = 5;
    opt.seed = kSeed;
    const auto r = bo::DropoutBo(opt).run(obj, app.space());
    labels.push_back("dropout-bo");
    trajectories.push_back(r.trajectory);
    table.add_row({"Dropout BO (d=5)", Table::fmt(r.best_value, 2),
                   Table::fmt(r.seconds, 2)});
  }
  {
    auto obj = make_objective();
    bo::RemboOptions opt;
    opt.max_evals = kBudget;
    opt.embedding_dims = 5;
    opt.seed = kSeed;
    const auto r = bo::Rembo(opt).run(obj, app.space());
    labels.push_back("rembo");
    trajectories.push_back(r.trajectory);
    table.add_row({"REMBO (d=5)", Table::fmt(r.best_value, 2), Table::fmt(r.seconds, 2)});
  }
  {
    auto obj = make_objective();
    bo::AdditiveBoOptions opt;
    opt.max_evals = kBudget;
    opt.seed = kSeed;
    // The interdependence-aware decomposition (Case 4 couples G3 and G4).
    bo::AdditiveBo driver(
        std::vector<std::vector<std::size_t>>{
            {0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}, {10, 11, 12, 13, 14, 15, 16, 17, 18, 19}},
        opt);
    const auto r = driver.run(obj, app.space());
    labels.push_back("additive-bo");
    trajectories.push_back(r.trajectory);
    table.add_row({"Additive BO (G3+G4 merged)", Table::fmt(r.best_value, 2),
                   Table::fmt(r.seconds, 2)});
  }

  std::cout << table.str();
  const std::string csv = "highdim_strategies_trajectories.csv";
  core::write_trajectories_csv(csv, labels, trajectories);
  std::cout << "Trajectories written to " << csv << "\n";
  return 0;
}
