// Tuning the GPU-offloaded RT-TDDFT application (paper §VIII):
//
//   * Case Study 1 (Mg-porphyrin) is analyzed and tuned from scratch with
//     the methodology's staged search plan (Iterations -> MPI Grid ->
//     Group1 / Group2+Group3),
//   * Case Study 2 (h-BN slab) then reuses Case Study 1's configuration
//     database through transfer learning: the source GP's posterior mean
//     becomes the target search's prior.

#include <iostream>

#include "bo/bayes_opt.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "tddft/tddft_app.hpp"

using namespace tunekit;

int main() {
  // --- Case Study 1: full methodology. ---
  tddft::RtTddftApp cs1(tddft::PhysicalSystem::case_study_1());

  core::MethodologyOptions options;
  options.cutoff = 0.10;  // the paper's RT-TDDFT cut-off
  options.importance_samples = 100;
  options.executor.evals_per_param = 10;
  options.executor.min_evals = 20;
  options.executor.bo.seed = 11;

  core::Methodology methodology(options);
  const auto result1 = methodology.run(cs1);
  std::cout << core::full_report(cs1, result1) << "\n";

  // --- Case Study 2: reuse CS1's best-search evaluations as a transfer
  // prior for the joint Group2+Group3 search. ---
  tddft::RtTddftApp cs2(tddft::PhysicalSystem::case_study_2());
  const auto result2 = methodology.run(cs2);
  std::cout << core::full_report(cs2, result2) << "\n";

  const double t1 = result1.execution.final_times.total;
  const double t2 = result2.execution.final_times.total;
  std::cout << "Tuned per-iteration runtime: CS1 " << t1 * 1e3 << " ms, CS2 " << t2 * 1e3
            << " ms\n";
  return 0;
}
