// Bringing your own application to the methodology.
//
// This example defines a small fictional pipeline with two routines — a
// stencil sweep and a reduction — whose performance model exposes a hidden
// interdependence: the stencil's tile size controls cache residue that the
// reduction consumes. Implement TunableApp, hand it to Methodology, and the
// analysis discovers the coupling and merges the two searches.

#include <cmath>
#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"

using namespace tunekit;

namespace {

class StencilReduceApp final : public core::TunableApp {
 public:
  StencilReduceApp() {
    // Routine "stencil": tile size and unroll. Routine "reduce": block size
    // and a fan-in arity. One global knob: element count per chunk.
    space_.add(search::ParamSpec::ordinal("tile", {8, 16, 32, 64, 128}, 32));
    space_.add(search::ParamSpec::ordinal("unroll", {1, 2, 4, 8}, 1));
    space_.add(search::ParamSpec::ordinal("block", {64, 128, 256, 512}, 128));
    space_.add(search::ParamSpec::integer("fanin", 2, 16, 4));
    space_.add(search::ParamSpec::integer("chunk", 1, 64, 8));
  }

  const search::SearchSpace& space() const override { return space_; }

  std::vector<core::RoutineSpec> routines() const override {
    return {{"stencil", {0, 1}}, {"reduce", {2, 3}}};
  }

  search::RegionTimes evaluate_regions(const search::Config& c) override {
    const double tile = c[0], unroll = c[1], block = c[2], fanin = c[3], chunk = c[4];

    // Stencil: best at tile 64, unroll 4; chunking amortizes launch cost.
    const double t_stencil = (1.0 + 0.3 * std::abs(std::log2(tile / 64.0)) +
                              0.2 * std::abs(std::log2(unroll / 4.0))) *
                             (1.0 + 4.0 / chunk);

    // Reduction: best at block 256, fanin 8 — but large stencil tiles evict
    // the reduction's working set (the hidden interdependence).
    const double cache_penalty = 1.0 + 0.4 * (tile / 128.0);
    const double t_reduce = (1.0 + 0.25 * std::abs(std::log2(block / 256.0)) +
                             0.15 * std::abs(std::log2(fanin / 8.0))) *
                            cache_penalty * (1.0 + 2.0 / chunk);

    search::RegionTimes t;
    t.regions["stencil"] = t_stencil;
    t.regions["reduce"] = t_reduce;
    t.total = t_stencil + t_reduce;
    return t;
  }

  bool thread_safe() const override { return true; }
  std::string name() const override { return "stencil+reduce demo"; }

 private:
  search::SearchSpace space_;
};

}  // namespace

int main() {
  StencilReduceApp app;

  core::MethodologyOptions options;
  options.cutoff = 0.10;
  options.sensitivity.n_variations = 5;
  options.importance_samples = 60;
  options.executor.bo.seed = 3;

  core::Methodology methodology(options);
  const auto result = methodology.run(app);
  std::cout << core::full_report(app, result);

  // The plan should show "stencil+reduce" merged: tile's influence on the
  // reduce region exceeds the cut-off.
  return 0;
}
