// Quickstart: tune a black-box function with tunekit's Bayesian optimizer.
//
// The function is a noisy 4-dimensional bowl with a known minimum; BO finds
// it in ~50 evaluations where random search needs far more. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cmath>
#include <iostream>

#include "bo/bayes_opt.hpp"
#include "search/random_search.hpp"

using namespace tunekit;

int main() {
  // 1. Describe the search space: two real knobs, one power-of-two ordinal,
  //    one integer, plus a validity constraint.
  search::SearchSpace space;
  space.add(search::ParamSpec::real("alpha", -5.0, 5.0, 0.0));
  space.add(search::ParamSpec::real("beta", -5.0, 5.0, 0.0));
  space.add(search::ParamSpec::ordinal("tile", {16, 32, 64, 128, 256}, 64));
  space.add(search::ParamSpec::integer("threads", 1, 16, 4));
  space.add_constraint("tile_x_threads", [](const search::Config& c) {
    return c[2] * c[3] <= 1024.0;  // tile * threads bounded
  });

  // 2. Wrap the objective. Optimum: alpha=1.2, beta=-0.7, tile=128,
  //    threads=8.
  search::FunctionObjective objective([](const search::Config& c) {
    const double da = c[0] - 1.2;
    const double db = c[1] + 0.7;
    const double dtile = std::log2(c[2] / 128.0);
    const double dthreads = std::log2(c[3] / 8.0);
    return da * da + db * db + 0.3 * dtile * dtile + 0.2 * dthreads * dthreads;
  });

  // 3. Run Bayesian optimization.
  bo::BoOptions options;
  options.max_evals = 50;
  options.n_init = 5;
  options.seed = 42;
  bo::BayesOpt driver(options);
  const auto bo_result = driver.run(objective, space);

  // 4. Compare with random search at the same budget.
  search::RandomSearchOptions rs_options;
  rs_options.max_evals = 50;
  rs_options.seed = 42;
  const auto rs_result = search::RandomSearch(rs_options).run(objective, space);

  std::cout << "Bayesian optimization: best = " << bo_result.best_value << " at "
            << search::describe(space, bo_result.best_config) << "\n";
  std::cout << "Random search:         best = " << rs_result.best_value << " at "
            << search::describe(space, rs_result.best_config) << "\n";
  std::cout << "(both after " << bo_result.evaluations << " evaluations)\n";
  return 0;
}
