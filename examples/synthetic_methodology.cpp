// Full methodology walk-through on synthetic Case 4 (high Group4 -> Group3
// interdependence, Table I):
//
//   1. sensitivity analysis per group infers the interdependence,
//   2. the influence DAG is pruned at the 25% cut-off,
//   3. the partition suggests {Group1}, {Group2}, {Group3+Group4},
//   4. the searches execute (BO), and the merged search handles the
//      interdependent variables jointly.
//
// Compare against a fully-independent strategy to see the merged search
// win on this interdependent case.

#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "synth/synth_app.hpp"

using namespace tunekit;

int main() {
  synth::SynthApp app(synth::SynthCase::Case4);

  core::MethodologyOptions options;
  options.cutoff = 0.25;  // the paper's synthetic-study cut-off
  options.sensitivity.n_variations = 100;
  options.sensitivity.ladder_factor = 1.10;
  options.importance_samples = 0;  // influence-based ranking is enough here
  options.executor.evals_per_param = 10;
  options.executor.min_evals = 20;
  options.executor.bo.seed = 7;
  options.executor.enumerate_threshold = 0.0;  // continuous space: never enumerate

  core::Methodology methodology(options);
  const auto result = methodology.run(app);

  std::cout << core::full_report(app, result);

  std::cout << "\nInfluence DAG (Graphviz):\n"
            << result.analysis.graph.pruned(options.cutoff).to_dot() << "\n";
  return 0;
}
