// Tuning REAL kernels: the full methodology against the MiniSlater pipeline,
// whose runtimes are measured on this machine (a genuine 3-D FFT + pairwise
// multiplication pattern, not a performance model). Expect timer noise —
// this is what the methodology faces on a production system.

#include <iostream>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "minislater/minislater_app.hpp"

using namespace tunekit;

int main() {
  minislater::MiniSlaterApp app(/*n=*/32, /*bands=*/4, /*reps=*/2);

  core::MethodologyOptions options;
  options.cutoff = 0.10;
  options.importance_samples = 0;  // measured evaluations are precious
  options.executor.evals_per_param = 8;
  options.executor.min_evals = 12;
  options.executor.bo.seed = 23;

  core::Methodology methodology(options);
  const auto result = methodology.run(app);
  std::cout << core::full_report(app, result);

  const double default_time = app.evaluate_regions(app.space().defaults()).total;
  const double tuned_time = result.execution.final_times.total;
  std::cout << "\nDefault tuning: " << default_time * 1e3 << " ms per run\n";
  std::cout << "Tuned:          " << tuned_time * 1e3 << " ms per run  ("
            << default_time / tuned_time << "x)\n";
  return 0;
}
