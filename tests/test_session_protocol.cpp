#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hpp"
#include "service/session.hpp"

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

json::Value handle(SessionServer& server, const std::string& line,
                   bool* exited = nullptr) {
  bool exit_requested = false;
  const std::string response = server.handle(line, exit_requested);
  if (exited) *exited = exit_requested;
  return json::parse(response);
}

class SessionServerTest : public ::testing::Test {
 protected:
  SessionServerTest() : space_(two_dim_space()) {}

  TuningSession& make_session(std::size_t max_evals = 8) {
    SessionOptions opt;
    opt.max_evals = max_evals;
    opt.backend = SessionBackend::Random;
    opt.seed = 3;
    session_ = std::make_unique<TuningSession>(space_, opt);
    return *session_;
  }

  search::SearchSpace space_;
  std::unique_ptr<TuningSession> session_;
};

TEST_F(SessionServerTest, AskTellStatusRoundTrip) {
  auto& session = make_session();
  SessionServer server(session);

  auto ask = handle(server, R"({"op":"ask","k":2})");
  ASSERT_TRUE(ask.at("ok").as_bool());
  EXPECT_EQ(ask.at("state").as_string(), "active");
  const auto& candidates = ask.at("candidates").as_array();
  ASSERT_EQ(candidates.size(), 2u);
  const auto id = static_cast<std::uint64_t>(candidates[0].at("id").as_number());
  // Configs are keyed by parameter name.
  EXPECT_TRUE(candidates[0].at("config").contains("x"));
  EXPECT_TRUE(candidates[0].at("config").contains("y"));

  auto tell = handle(server, R"({"op":"tell","id":)" + std::to_string(id) +
                                 R"(,"value":4.5,"cost_seconds":0.1})");
  ASSERT_TRUE(tell.at("ok").as_bool());
  EXPECT_TRUE(tell.at("accepted").as_bool());
  EXPECT_EQ(tell.at("completed").as_number(), 1.0);
  EXPECT_EQ(tell.at("best_value").as_number(), 4.5);

  auto status = handle(server, R"({"op":"status"})");
  ASSERT_TRUE(status.at("ok").as_bool());
  EXPECT_EQ(status.at("completed").as_number(), 1.0);
  EXPECT_EQ(status.at("outstanding").as_number(), 1.0);
  EXPECT_TRUE(status.at("best_config").contains("x"));
}

TEST_F(SessionServerTest, UnsolicitedTellByConfig) {
  auto& session = make_session();
  SessionServer server(session);

  auto tell = handle(server, R"({"op":"tell","config":{"x":1.0,"y":2.0},"value":5.0})");
  ASSERT_TRUE(tell.at("ok").as_bool());
  EXPECT_TRUE(tell.at("accepted").as_bool());
  EXPECT_EQ(session.completed(), 1u);
  EXPECT_DOUBLE_EQ(session.best()->value, 5.0);
}

TEST_F(SessionServerTest, FailRequeuesCandidate) {
  auto& session = make_session();
  SessionServer server(session);

  auto ask = handle(server, R"({"op":"ask","k":1})");
  const auto id = static_cast<std::uint64_t>(
      ask.at("candidates").as_array()[0].at("id").as_number());
  auto fail = handle(server, R"({"op":"fail","id":)" + std::to_string(id) + "}");
  ASSERT_TRUE(fail.at("ok").as_bool());
  EXPECT_TRUE(fail.at("accepted").as_bool());

  auto retry = handle(server, R"({"op":"ask","k":1})");
  const auto& candidates = retry.at("candidates").as_array();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(candidates[0].at("id").as_number()), id);
  EXPECT_EQ(candidates[0].at("attempt").as_number(), 1.0);
}

TEST_F(SessionServerTest, ErrorResponses) {
  auto& session = make_session();
  SessionServer server(session);

  EXPECT_FALSE(handle(server, "not json at all").at("ok").as_bool());
  EXPECT_FALSE(handle(server, R"({"op":"warp"})").at("ok").as_bool());
  EXPECT_FALSE(handle(server, R"({"op":"tell","value":1.0})").at("ok").as_bool());
  // Unknown id is not an error — it is a rejected (accepted:false) tell.
  auto tell = handle(server, R"({"op":"tell","id":400,"value":1.0})");
  EXPECT_TRUE(tell.at("ok").as_bool());
  EXPECT_FALSE(tell.at("accepted").as_bool());
  // Unknown parameter name in an unsolicited config is an error.
  EXPECT_FALSE(handle(server, R"({"op":"tell","config":{"zz":1.0},"value":1.0})")
                   .at("ok")
                   .as_bool());
}

TEST_F(SessionServerTest, ServeStreamsUntilExit) {
  auto& session = make_session(4);
  SessionServer server(session);

  std::istringstream in(
      "{\"op\":\"ask\",\"k\":1}\n"
      "\n"  // blank lines are skipped
      "{\"op\":\"status\"}\n"
      "{\"op\":\"exit\"}\n"
      "{\"op\":\"status\"}\n");  // after exit: never read
  std::ostringstream out;
  const std::size_t handled = server.serve(in, out);
  EXPECT_EQ(handled, 3u);

  // One response line per request.
  std::istringstream lines(out.str());
  std::vector<std::string> responses;
  for (std::string line; std::getline(lines, line);) responses.push_back(line);
  ASSERT_EQ(responses.size(), 3u);
  for (const auto& line : responses) {
    EXPECT_TRUE(json::parse(line).at("ok").as_bool());
  }
}

}  // namespace
}  // namespace tunekit::service
