#include "bo/acquisition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tunekit::bo {
namespace {

TEST(NormalFunctions, PdfCdfValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(8.0), 1.0, 1e-9);
}

TEST(ExpectedImprovement, ZeroWhenFarWorseThanBest) {
  AcquisitionParams p;
  const double ei =
      acquisition_score(AcquisitionKind::ExpectedImprovement, 100.0, 0.1, 0.0, p);
  EXPECT_NEAR(ei, 0.0, 1e-9);
}

TEST(ExpectedImprovement, PositiveWhenLikelyBetter) {
  AcquisitionParams p;
  const double ei =
      acquisition_score(AcquisitionKind::ExpectedImprovement, -1.0, 0.5, 0.0, p);
  EXPECT_GT(ei, 0.9);
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  AcquisitionParams p;
  // Same mean as the incumbent: improvement comes only from variance.
  const double lo = acquisition_score(AcquisitionKind::ExpectedImprovement, 0.0, 0.1, 0.0, p);
  const double hi = acquisition_score(AcquisitionKind::ExpectedImprovement, 0.0, 1.0, 0.0, p);
  EXPECT_GT(hi, lo);
}

TEST(ExpectedImprovement, DeterministicLimit) {
  AcquisitionParams p;
  p.xi = 0.0;
  // sd -> 0: EI = max(0, best - mean).
  EXPECT_NEAR(acquisition_score(AcquisitionKind::ExpectedImprovement, 1.0, 0.0, 3.0, p),
              2.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      acquisition_score(AcquisitionKind::ExpectedImprovement, 5.0, 0.0, 3.0, p), 0.0);
}

TEST(ProbabilityOfImprovement, BoundsAndMonotonicity) {
  AcquisitionParams p;
  p.xi = 0.0;
  const double worse =
      acquisition_score(AcquisitionKind::ProbabilityOfImprovement, 2.0, 1.0, 0.0, p);
  const double better =
      acquisition_score(AcquisitionKind::ProbabilityOfImprovement, -2.0, 1.0, 0.0, p);
  EXPECT_GT(better, 0.95);
  EXPECT_LT(worse, 0.05);
  EXPECT_GE(worse, 0.0);
  EXPECT_LE(better, 1.0);
}

TEST(ProbabilityOfImprovement, DeterministicLimit) {
  AcquisitionParams p;
  p.xi = 0.0;
  EXPECT_DOUBLE_EQ(
      acquisition_score(AcquisitionKind::ProbabilityOfImprovement, 1.0, 0.0, 2.0, p), 1.0);
  EXPECT_DOUBLE_EQ(
      acquisition_score(AcquisitionKind::ProbabilityOfImprovement, 3.0, 0.0, 2.0, p), 0.0);
}

TEST(LowerConfidenceBound, PrefersLowMeanAndHighVariance) {
  AcquisitionParams p;
  p.beta = 2.0;
  const double a = acquisition_score(AcquisitionKind::LowerConfidenceBound, 1.0, 0.5, 0.0, p);
  const double b = acquisition_score(AcquisitionKind::LowerConfidenceBound, 0.5, 0.5, 0.0, p);
  EXPECT_GT(b, a);  // lower mean preferred
  const double c = acquisition_score(AcquisitionKind::LowerConfidenceBound, 1.0, 1.0, 0.0, p);
  EXPECT_GT(c, a);  // higher variance preferred
}

TEST(Acquisition, Names) {
  EXPECT_STREQ(to_string(AcquisitionKind::ExpectedImprovement), "ei");
  EXPECT_STREQ(to_string(AcquisitionKind::ProbabilityOfImprovement), "pi");
  EXPECT_STREQ(to_string(AcquisitionKind::LowerConfidenceBound), "lcb");
}

class MaximizerFixture : public ::testing::Test {
 protected:
  MaximizerFixture() {
    // GP over a 1-d bowl with minimum near x = 0.3.
    linalg::Matrix x(9, 1);
    std::vector<double> y(9);
    for (std::size_t i = 0; i < 9; ++i) {
      x(i, 0) = static_cast<double>(i) / 8.0;
      y[i] = (x(i, 0) - 0.3) * (x(i, 0) - 0.3);
    }
    gp_.set_hyperparams(GpHyperparams::isotropic(1, 0.2, 1.0, 1e-6));
    gp_.fit(x, y);
  }

  GaussianProcess gp_;
};

TEST_F(MaximizerFixture, ChoosesPromisingRegion) {
  tunekit::Rng rng(1);
  AcquisitionMaximizerOptions opt;
  opt.n_candidates = 256;
  const auto u = maximize_acquisition(gp_, AcquisitionKind::LowerConfidenceBound, {}, 0.0,
                                      {0.3}, rng, opt, nullptr);
  ASSERT_EQ(u.size(), 1u);
  // LCB at beta=2 should stay reasonably near the basin.
  EXPECT_NEAR(u[0], 0.3, 0.35);
}

TEST_F(MaximizerFixture, RespectsFeasibilityFilter) {
  tunekit::Rng rng(2);
  AcquisitionMaximizerOptions opt;
  opt.n_candidates = 256;
  const auto accept = [](const std::vector<double>& u) { return u[0] >= 0.6; };
  const auto u = maximize_acquisition(gp_, AcquisitionKind::ExpectedImprovement, {}, 0.0,
                                      {0.3}, rng, opt, accept);
  EXPECT_GE(u[0], 0.6);
}

TEST_F(MaximizerFixture, FallsBackWhenFilterVeryTight) {
  tunekit::Rng rng(3);
  AcquisitionMaximizerOptions opt;
  opt.n_candidates = 16;  // likely no candidate passes
  opt.refine_iters = 0;
  const auto accept = [](const std::vector<double>& u) {
    return u[0] >= 0.998;  // sliver of feasibility
  };
  const auto u = maximize_acquisition(gp_, AcquisitionKind::ExpectedImprovement, {}, 0.0,
                                      {}, rng, opt, accept);
  EXPECT_GE(u[0], 0.998);
}

TEST_F(MaximizerFixture, UnfittedGpThrows) {
  GaussianProcess unfitted;
  tunekit::Rng rng(4);
  EXPECT_THROW(maximize_acquisition(unfitted, AcquisitionKind::ExpectedImprovement, {},
                                    0.0, {}, rng, {}, nullptr),
               std::runtime_error);
}

}  // namespace
}  // namespace tunekit::bo
