#include "bo/transfer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bo/bayes_opt.hpp"

namespace tunekit::bo {
namespace {

using search::Config;
using search::FunctionObjective;
using search::ParamSpec;
using search::SearchSpace;

SearchSpace unit_space(std::size_t dims) {
  SearchSpace s;
  for (std::size_t i = 0; i < dims; ++i) {
    s.add(ParamSpec::real("x" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return s;
}

/// Source and target tasks share the same basin at (0.8, 0.2); the target is
/// a shifted/scaled version of the source.
double source_fn(const Config& c) {
  const double dx = c[0] - 0.8, dy = c[1] - 0.2;
  return 10.0 * (dx * dx + dy * dy);
}
double target_fn(const Config& c) { return 1.5 * source_fn(c) + 0.3; }

TEST(TransferPrior, FitsAndPredictsSourceShape) {
  const auto space = unit_space(2);
  FunctionObjective src(source_fn);

  // Collect source evaluations with a quick BO run.
  BoOptions opt;
  opt.max_evals = 30;
  opt.seed = 1;
  search::EvalDb db;
  BayesOpt(opt).run(src, space, db);

  tunekit::Rng rng(2);
  const auto prior = TransferPrior::fit(space, db.all(), rng);
  EXPECT_EQ(prior.source_points(), 30u);

  // The prior's landscape must rank the basin below a far corner.
  const double at_basin = prior.mean_at(space.encode_unit({0.8, 0.2}));
  const double at_corner = prior.mean_at(space.encode_unit({0.1, 0.9}));
  EXPECT_LT(at_basin, at_corner);
}

TEST(TransferPrior, ScaleMultipliesPrediction) {
  const auto space = unit_space(1);
  std::vector<search::Evaluation> evals;
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    evals.push_back({{x}, 2.0 * x, 0.0});
  }
  tunekit::Rng rng(3);
  const auto p1 = TransferPrior::fit(space, evals, rng, KernelKind::Matern52, 1.0);
  tunekit::Rng rng2(3);
  const auto p2 = TransferPrior::fit(space, evals, rng2, KernelKind::Matern52, 2.0);
  const auto u = space.encode_unit({0.5});
  EXPECT_NEAR(p2.mean_at(u), 2.0 * p1.mean_at(u), 1e-9);
}

TEST(TransferPrior, EmptySourceThrows) {
  const auto space = unit_space(1);
  tunekit::Rng rng(1);
  EXPECT_THROW(TransferPrior::fit(space, {}, rng), std::invalid_argument);
}

TEST(TransferLearning, ImprovesEarlySearchOnRelatedTask) {
  const auto space = unit_space(2);

  // Source database from a generous source run.
  FunctionObjective src(source_fn);
  BoOptions src_opt;
  src_opt.max_evals = 40;
  src_opt.seed = 10;
  search::EvalDb src_db;
  BayesOpt(src_opt).run(src, space, src_db);

  double with_total = 0.0, without_total = 0.0;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    FunctionObjective tgt(target_fn);
    // Tiny budget: the prior must help.
    BoOptions with_opt;
    with_opt.max_evals = 12;
    with_opt.n_init = 3;
    with_opt.seed = seed;
    tunekit::Rng prng(seed);
    with_opt.transfer = TransferPrior::fit(space, src_db.all(), prng);
    with_total += BayesOpt(with_opt).run(tgt, space).best_value;

    BoOptions without_opt;
    without_opt.max_evals = 12;
    without_opt.n_init = 3;
    without_opt.seed = seed;
    without_total += BayesOpt(without_opt).run(tgt, space).best_value;
  }
  EXPECT_LE(with_total, without_total * 1.1);
}

TEST(TransferPrior, UnfittedMeanThrows) {
  // Default-constructed prior is not reachable through the public API, but a
  // moved-from optional pattern is; verify fit() is the only entry point by
  // checking a valid prior works.
  const auto space = unit_space(1);
  std::vector<search::Evaluation> evals{{{0.5}, 1.0, 0.0}, {{0.7}, 2.0, 0.0}};
  tunekit::Rng rng(4);
  const auto prior = TransferPrior::fit(space, evals, rng);
  EXPECT_NO_THROW(prior.mean_at({0.5}));
}

}  // namespace
}  // namespace tunekit::bo
