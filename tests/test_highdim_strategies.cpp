#include <gtest/gtest.h>

#include <cmath>

#include "bo/additive_bo.hpp"
#include "bo/bayes_opt.hpp"
#include "bo/additive_gp.hpp"
#include "bo/dropout_bo.hpp"
#include "bo/rembo.hpp"
#include "search/random_search.hpp"

namespace tunekit::bo {
namespace {

using search::Config;
using search::FunctionObjective;
using search::ParamSpec;
using search::SearchSpace;

SearchSpace unit_cube(std::size_t dims) {
  SearchSpace s;
  for (std::size_t i = 0; i < dims; ++i) {
    s.add(ParamSpec::real("x" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return s;
}

/// Additive bowl: Σ (x_i - t_i)^2 with known per-dimension optima.
FunctionObjective additive_bowl(std::size_t dims) {
  return FunctionObjective([dims](const Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dims; ++i) {
      const double t = 0.2 + 0.05 * static_cast<double>(i % 5);
      acc += (c[i] - t) * (c[i] - t);
    }
    return acc;
  });
}

TEST(DropoutBo, ImprovesOverInitialDesign) {
  auto obj = additive_bowl(8);
  const auto space = unit_cube(8);
  DropoutBoOptions opt;
  opt.max_evals = 40;
  opt.active_dims = 3;
  opt.seed = 1;
  const auto result = DropoutBo(opt).run(obj, space);
  EXPECT_EQ(result.method, "dropout-bo");
  EXPECT_EQ(result.evaluations, 40u);
  const double init_best = result.trajectory[4];
  EXPECT_LT(result.best_value, init_best);
}

TEST(DropoutBo, FillFromBestVariantConverges) {
  auto obj = additive_bowl(10);
  const auto space = unit_cube(10);
  DropoutBoOptions opt;
  opt.max_evals = 60;
  opt.active_dims = 4;
  opt.fill_from_best = true;
  opt.seed = 2;
  const auto copy = DropoutBo(opt).run(obj, space);
  opt.fill_from_best = false;
  opt.seed = 2;
  const auto random = DropoutBo(opt).run(obj, space);
  // The copy variant should not be dramatically worse (generally better on
  // additive objectives, per Li et al.).
  EXPECT_LT(copy.best_value, random.best_value + 0.5);
}

TEST(DropoutBo, TrajectoryMonotone) {
  auto obj = additive_bowl(6);
  const auto space = unit_cube(6);
  DropoutBoOptions opt;
  opt.max_evals = 25;
  const auto result = DropoutBo(opt).run(obj, space);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(Rembo, ProjectionClipsToUnitCube) {
  linalg::Matrix a(3, 2);
  a(0, 0) = 10.0;  // strong coefficient forces clipping
  a(1, 1) = -10.0;
  a(2, 0) = 0.01;
  const auto x = Rembo::project(a, {1.0, 1.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);  // clipped high
  EXPECT_DOUBLE_EQ(x[1], 0.0);  // clipped low
  EXPECT_NEAR(x[2], 0.51, 1e-12);
}

TEST(Rembo, FindsLowDimensionalStructure) {
  // Effective dimensionality 2: objective ignores all but x0, x1.
  FunctionObjective obj([](const Config& c) {
    return (c[0] - 0.3) * (c[0] - 0.3) + (c[1] - 0.7) * (c[1] - 0.7);
  });
  const auto space = unit_cube(12);
  RemboOptions opt;
  opt.max_evals = 50;
  opt.embedding_dims = 4;
  opt.seed = 3;
  const auto result = Rembo(opt).run(obj, space);
  EXPECT_EQ(result.method, "rembo");
  EXPECT_LT(result.best_value, 0.15);
}

TEST(Rembo, DeterministicPerSeed) {
  auto obj = additive_bowl(6);
  const auto space = unit_cube(6);
  RemboOptions opt;
  opt.max_evals = 20;
  opt.seed = 9;
  const auto r1 = Rembo(opt).run(obj, space);
  const auto r2 = Rembo(opt).run(obj, space);
  EXPECT_EQ(r1.values, r2.values);
}

TEST(AdditiveGp, ValidatesGroups) {
  EXPECT_THROW(AdditiveGp(std::vector<std::vector<std::size_t>>{}),
               std::invalid_argument);
  EXPECT_THROW(AdditiveGp(std::vector<std::vector<std::size_t>>{{0}, {}}),
               std::invalid_argument);
  EXPECT_THROW(AdditiveGp(std::vector<std::vector<std::size_t>>{{0, 1}, {1}}),
               std::invalid_argument);  // overlap
  AdditiveGp ok(std::vector<std::vector<std::size_t>>{{0, 1}, {2}});
  EXPECT_EQ(ok.n_groups(), 2u);
  EXPECT_EQ(ok.dim(), 3u);
}

TEST(AdditiveGp, FitsAdditiveFunction) {
  tunekit::Rng rng(4);
  const std::size_t n = 40;
  linalg::Matrix x(n, 4);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < 4; ++k) x(i, k) = rng.uniform();
    y[i] = std::sin(4.0 * x(i, 0)) + x(i, 1) * x(i, 1) + 2.0 * x(i, 2) - x(i, 3);
  }
  AdditiveGp gp(std::vector<std::vector<std::size_t>>{{0}, {1}, {2}, {3}});
  tunekit::Rng hrng(5);
  gp.fit_with_hyperopt(x, y, hrng, 2, 60);

  // Held-out accuracy.
  double sse = 0.0, sst = 0.0, mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> p{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    const double truth = std::sin(4.0 * p[0]) + p[1] * p[1] + 2.0 * p[2] - p[3];
    const double pred = gp.predict(p).mean;
    sse += (pred - truth) * (pred - truth);
    sst += (truth - mean) * (truth - mean);
  }
  EXPECT_GT(1.0 - sse / sst, 0.7);
}

TEST(AdditiveGp, GroupContributionsRespondToOwnCoordsOnly) {
  tunekit::Rng rng(6);
  const std::size_t n = 30;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = 3.0 * x(i, 0) + std::cos(3.0 * x(i, 1));
  }
  AdditiveGp gp(std::vector<std::vector<std::size_t>>{{0}, {1}});
  gp.fit(x, y);
  const auto a = gp.predict_group(0, {0.2, 0.5});
  const auto b = gp.predict_group(0, {0.2, 0.9});  // group-1 coord changed
  EXPECT_NEAR(a.mean, b.mean, 1e-9);
  const auto c = gp.predict_group(0, {0.8, 0.5});
  EXPECT_GT(std::abs(c.mean - a.mean), 1e-3);
}

TEST(AdditiveGp, PredictBeforeFitThrows) {
  AdditiveGp gp(std::vector<std::vector<std::size_t>>{{0}});
  EXPECT_THROW(gp.predict({0.5}), std::runtime_error);
  EXPECT_THROW(gp.predict_group(0, {0.5}), std::runtime_error);
}

TEST(AdditiveBo, OutperformsRandomOnAdditiveObjective) {
  const std::size_t dims = 10;
  const auto space = unit_cube(dims);
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < dims; i += 2) groups.push_back({i, i + 1});

  double add_total = 0.0, rnd_total = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    auto obj1 = additive_bowl(dims);
    AdditiveBoOptions opt;
    opt.max_evals = 40;
    opt.seed = seed;
    add_total += AdditiveBo(groups, opt).run(obj1, space).best_value;

    auto obj2 = additive_bowl(dims);
    search::RandomSearchOptions ropt;
    ropt.max_evals = 40;
    ropt.seed = seed;
    rnd_total += search::RandomSearch(ropt).run(obj2, space).best_value;
  }
  EXPECT_LT(add_total, rnd_total);
}

TEST(AdditiveBo, ValidatesGroups) {
  EXPECT_THROW(AdditiveBo(std::vector<std::vector<std::size_t>>{}),
               std::invalid_argument);
  auto obj = additive_bowl(2);
  const auto space = unit_cube(2);
  AdditiveBoOptions opt;
  opt.max_evals = 8;
  AdditiveBo bad(std::vector<std::vector<std::size_t>>{{0, 5}}, opt);  // index out of range for the space
  EXPECT_THROW(bad.run(obj, space), std::invalid_argument);
}

TEST(BayesOptBatch, SuggestsDistinctConfigs) {
  auto obj = additive_bowl(3);
  const auto space = unit_cube(3);
  BoOptions opt;
  opt.max_evals = 15;
  opt.seed = 11;
  search::EvalDb db;
  BayesOpt(opt).run(obj, space, db);

  const auto batch = BayesOpt(opt).suggest_batch(db, space, 4);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(space.is_valid(batch[i]));
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      EXPECT_NE(batch[i], batch[j]);
    }
  }
}

TEST(BayesOptBatch, EmptyDbThrows) {
  const auto space = unit_cube(2);
  search::EvalDb db;
  EXPECT_THROW(BayesOpt().suggest_batch(db, space, 2), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::bo
