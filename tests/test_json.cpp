#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

namespace tunekit::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedStructure) {
  const auto v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto v = parse("  {\n\t\"k\" :\r [ ] }  ");
  EXPECT_TRUE(v.at("k").as_array().empty());
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), JsonError);
  EXPECT_THROW(parse("{"), JsonError);
  EXPECT_THROW(parse("[1,]"), JsonError);
  EXPECT_THROW(parse("tru"), JsonError);
  EXPECT_THROW(parse("{\"a\":1} extra"), JsonError);
  EXPECT_THROW(parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(parse("\"unterminated"), JsonError);
}

// Untrusted network input: truncated documents must throw, never crash or
// silently reinterpret.
TEST(Json, TruncatedInputThrows) {
  const std::string full = R"({"op":"tell","id":7,"value":12.5,"cfg":[1,2,3]})";
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_THROW(parse(full.substr(0, n)), JsonError) << "prefix length " << n;
  }
}

TEST(Json, DeepNestingIsRejectedNotStackOverflow) {
  // 100k open brackets: without the depth bound this recursed to a stack
  // overflow (UB); with it, a clean JsonError.
  const std::string deep_arrays(100000, '[');
  EXPECT_THROW(parse(deep_arrays), JsonError);
  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) deep_objects += "{\"k\":";
  EXPECT_THROW(parse(deep_objects), JsonError);
  // A balanced document at the limit is also rejected...
  std::string at_limit(kMaxParseDepth, '[');
  at_limit.append(kMaxParseDepth, ']');
  EXPECT_THROW(parse(at_limit), JsonError);
  // ...while one just below it parses fine.
  std::string below_limit(kMaxParseDepth - 1, '[');
  below_limit.append(kMaxParseDepth - 1, ']');
  EXPECT_NO_THROW(parse(below_limit));
}

TEST(Json, HugeNumbersAreRejectedCleanly) {
  EXPECT_THROW(parse("1e999"), JsonError);
  EXPECT_THROW(parse("-1e999"), JsonError);
  EXPECT_THROW(parse("[1, 2, 1e309]"), JsonError);
  // Underflow is not an error: it rounds toward zero like strtod does.
  EXPECT_DOUBLE_EQ(parse("1e-999").as_number(), 0.0);
  // Subnormals (what %.17g emits for them) still round-trip.
  EXPECT_GT(parse("4.9406564584124654e-324").as_number(), 0.0);
  // The largest finite double round-trips.
  EXPECT_DOUBLE_EQ(parse("1.7976931348623157e308").as_number(),
                   std::numeric_limits<double>::max());
}

TEST(Json, MalformedNumbersAreRejected) {
  EXPECT_THROW(parse("01"), JsonError);
  EXPECT_THROW(parse("+1"), JsonError);
  EXPECT_THROW(parse("--5"), JsonError);
  EXPECT_THROW(parse("1."), JsonError);
  EXPECT_THROW(parse(".5"), JsonError);
  EXPECT_THROW(parse("1e"), JsonError);
  EXPECT_THROW(parse("1e+"), JsonError);
  EXPECT_THROW(parse("1.2.3"), JsonError);
  EXPECT_THROW(parse("[1-2]"), JsonError);
  EXPECT_THROW(parse("-"), JsonError);
  // Valid forms stay valid.
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-0.5e-2").as_number(), -0.005);
  EXPECT_DOUBLE_EQ(parse("10.25E+1").as_number(), 102.5);
}

TEST(Json, TypeMismatchThrows) {
  const auto v = parse("[1]");
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.at("k"), JsonError);
  EXPECT_THROW(parse("{}").at("missing"), JsonError);
}

TEST(Json, DumpRoundTrip) {
  const std::string doc = R"({"arr":[1,2.5,null,true,"s"],"nested":{"x":-3}})";
  const auto v = parse(doc);
  const auto round = parse(v.dump());
  EXPECT_DOUBLE_EQ(round.at("arr").as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(round.at("arr").as_array()[2].is_null());
  EXPECT_DOUBLE_EQ(round.at("nested").at("x").as_number(), -3.0);
}

TEST(Json, DumpCompactAndPretty) {
  Object obj;
  obj["a"] = Value(Array{Value(1), Value(2)});
  const Value v(obj);
  EXPECT_EQ(v.dump(), "{\"a\":[1,2]}");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_DOUBLE_EQ(parse(pretty).at("a").as_array()[1].as_number(), 2.0);
}

TEST(Json, IntegersSerializeWithoutDecimals) {
  EXPECT_EQ(Value(42.0).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(0.5).dump(), "0.5");
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(Json, PreservesPrecision) {
  const double x = 0.1234567890123456;
  EXPECT_DOUBLE_EQ(parse(Value(x).dump()).as_number(), x);
}

TEST(Json, NumberOrFallback) {
  const auto v = parse(R"({"present": 2})");
  EXPECT_DOUBLE_EQ(v.number_or("present", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(v.number_or("absent", 9.0), 9.0);
}

TEST(Json, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tunekit_json_test.json").string();
  Object obj;
  obj["k"] = Value("v");
  save(path, Value(obj));
  const auto loaded = load(path);
  EXPECT_EQ(loaded.at("k").as_string(), "v");
  std::remove(path.c_str());
}

TEST(Json, LoadMissingFileThrows) {
  EXPECT_THROW(load("/nonexistent/definitely/missing.json"), JsonError);
}

TEST(Json, AsIntRounds) {
  EXPECT_EQ(parse("3").as_int(), 3);
  EXPECT_EQ(parse("2.9999999").as_int(), 3);
  EXPECT_THROW(parse("\"x\"").as_int(), JsonError);
}

}  // namespace
}  // namespace tunekit::json
