// Durability regression tests for the session journal (SessionStore).
//
// The contract under test: once tell() has returned true, that evaluation
// survives a SIGKILL of the whole process — the journal line was fsync'd
// before the ack. The kill is simulated with fork() + _exit(), which skips
// every destructor and stdio flush exactly like a kill would; the only bytes
// on disk are the ones append_line() pushed through fsync.

#include "common/io.hpp"
#include "service/session.hpp"
#include "service/session_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define TUNEKIT_HAVE_FORK 1
#endif

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

/// A space with exactly one valid configuration: every backend suggestion
/// collides with it, which makes quarantine behavior deterministic.
search::SearchSpace singleton_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::ordinal("mode", {3}, 3));
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SessionOptions random_options(std::size_t max_evals) {
  SessionOptions opt;
  opt.max_evals = max_evals;
  opt.backend = SessionBackend::Random;
  opt.seed = 17;
  return opt;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

#ifdef TUNEKIT_HAVE_FORK
TEST(SessionDurability, AckedTellsSurviveKill) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_kill.jsonl");
  std::filesystem::remove(journal);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: issue four candidates, tell three, then die without cleanup.
    // _exit() runs no destructors and flushes nothing — any acked tell that
    // was still sitting in a stdio buffer would be lost here.
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(4);
    if (batch.size() != 4) _exit(3);
    if (!session.tell(batch[0].id, 10.0, 0.5)) _exit(4);
    if (!session.tell(batch[1].id, 20.0)) _exit(4);
    if (!session.tell(batch[2].id, 30.0)) _exit(4);
    // Simulate the kill landing mid-append: a torn, unterminated line is
    // exactly what a crash during a later write leaves behind.
    if (std::FILE* f = std::fopen(journal.c_str(), "ab")) {
      std::fputs("{\"e\":\"tell\",\"id\":3,\"val", f);
      std::fflush(f);
    }
    _exit(0);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child setup failed";

  const auto replay = SessionStore::replay(journal, space);
  ASSERT_EQ(replay.completed.size(), 3u) << "an acked tell was lost";
  EXPECT_DOUBLE_EQ(replay.completed[0].value, 10.0);
  EXPECT_DOUBLE_EQ(replay.completed[0].cost_seconds, 0.5);
  EXPECT_DOUBLE_EQ(replay.completed[1].value, 20.0);
  EXPECT_DOUBLE_EQ(replay.completed[2].value, 30.0);
  // The un-told fourth candidate is still in flight and must be re-issued.
  ASSERT_EQ(replay.in_flight.size(), 1u);

  auto resumed = TuningSession::resume(space, random_options(8), journal);
  EXPECT_EQ(resumed->completed(), 3u);
  auto reissued = resumed->ask(4);
  ASSERT_EQ(reissued.size(), 1u) << "re-issue must drain before new asks";
  EXPECT_EQ(reissued[0].id, replay.in_flight[0].id);
  std::filesystem::remove(journal);
}
#endif  // TUNEKIT_HAVE_FORK

TEST(SessionDurability, TornTailToleratedMidJournalCorruptionSalvaged) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_torn.jsonl");
  const std::string quarantined =
      (std::filesystem::temp_directory_path() / "corrupt" /
       "tunekit_durability_torn.jsonl")
          .string();
  std::filesystem::remove(journal);
  std::filesystem::remove(quarantined);
  {
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(2);
    ASSERT_EQ(batch.size(), 2u);
    ASSERT_TRUE(session.tell(batch[0].id, 1.0));
    ASSERT_TRUE(session.tell(batch[1].id, 2.0));
  }
  const std::string clean = slurp(journal);

  // A torn final line (no newline, half a record) is a normal crash artifact
  // and must be tolerated — reported as a torn tail, not as corruption.
  {
    std::ofstream out(journal, std::ios::app);
    out << "{\"e\":\"ask\",\"id\":9,\"conf";
  }
  {
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_EQ(replay.completed.size(), 2u);
    EXPECT_TRUE(replay.in_flight.empty());
    EXPECT_EQ(replay.salvage.torn_tails, 1u);
    EXPECT_EQ(replay.salvage.lost_records, 0u);
    EXPECT_EQ(replay.salvage.corrupt_segments, 0u);
  }

  // Garbage in the *middle* of the journal is real corruption. The CRC
  // framing pins the damage to the exact record: replay drops it, keeps
  // every valid record on both sides, and reports what was lost instead of
  // aborting the whole journal.
  spew(journal, clean);
  std::string bytes = clean;
  const auto tell_pos = bytes.find("\"e\":\"tell\"");
  ASSERT_NE(tell_pos, std::string::npos);
  bytes[tell_pos] ^= 0x01;  // one flipped bit: the line's CRC no longer matches
  spew(journal, bytes);
  {
    const auto replay = SessionStore::replay(journal, space);  // read-only
    EXPECT_EQ(replay.salvage.lost_records, 1u);
    EXPECT_EQ(replay.salvage.corrupt_segments, 1u);
    EXPECT_EQ(replay.salvage.torn_tails, 0u);
    // The damaged tell is gone, so its candidate is back in flight; the
    // *later* valid tell still replays.
    ASSERT_EQ(replay.completed.size(), 1u);
    EXPECT_DOUBLE_EQ(replay.completed[0].value, 2.0);
    ASSERT_EQ(replay.in_flight.size(), 1u);
    // Read-only mode must not touch the file.
    EXPECT_EQ(slurp(journal), bytes);
    EXPECT_FALSE(std::filesystem::exists(quarantined));
  }
  // Repair mode quarantines the damaged bytes under corrupt/ and rewrites
  // the journal with the salvageable records.
  {
    StoreReplayOptions repair_opt;
    repair_opt.repair = true;
    const auto repaired = SessionStore::replay(journal, space, repair_opt);
    EXPECT_EQ(repaired.salvage.lost_records, 1u);
    ASSERT_EQ(repaired.completed.size(), 1u);
    ASSERT_TRUE(std::filesystem::exists(quarantined));
    EXPECT_EQ(slurp(quarantined), bytes)
        << "the quarantine copy must preserve the damaged bytes for forensics";
  }
  // After repair the journal replays clean, with the same state.
  {
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_TRUE(replay.salvage.clean());
    EXPECT_EQ(replay.completed.size(), 1u);
    ASSERT_EQ(replay.in_flight.size(), 1u);
  }
  std::filesystem::remove(journal);
  std::filesystem::remove(quarantined);
}

TEST(SessionDurability, EnospcMidAppendPoisonsStoreAndKeepsAckedRecords) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_enospc.jsonl");
  std::filesystem::remove(journal);

  common::FaultScript script;
  script.enospc_after_bytes = 2048;  // the "disk" fills a few records in
  script.path_contains = "tunekit_durability_enospc";
  common::FaultIo io(script);

  SessionOptions opt = random_options(64);
  opt.compact_every = 0;  // keep every record in the active file
  opt.io = &io;
  TuningSession session(space, opt, journal);
  std::size_t acked = 0;
  try {
    while (acked < 64) {
      auto batch = session.ask(1);
      ASSERT_EQ(batch.size(), 1u);
      session.tell(batch[0].id, static_cast<double>(acked));
      ++acked;  // only counted once tell() returned (= the record was acked)
    }
  } catch (const StorePoisonedError&) {
  }
  ASSERT_GT(acked, 0u) << "the disk filled before anything was journaled";
  ASSERT_LT(acked, 64u) << "ENOSPC never fired";
  EXPECT_GE(io.faults_injected(), 1u);
  // A failed append poisons the store: later appends fail fast with the same
  // error instead of pretending the journal still accepts records.
  EXPECT_THROW(session.flush_metrics(), StorePoisonedError);

  // ENOSPC rejects the whole line, so the journal ends at a record boundary:
  // every acked tell replays, nothing more, no damage.
  const auto replay = SessionStore::replay(journal, space);
  EXPECT_TRUE(replay.salvage.clean());
  ASSERT_EQ(replay.completed.size(), acked);
  for (std::size_t i = 0; i < replay.completed.size(); ++i) {
    EXPECT_DOUBLE_EQ(replay.completed[i].value, static_cast<double>(i));
  }
  std::filesystem::remove(journal);
}

TEST(SessionDurability, FsyncFailurePoisonsTheStore) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_fsync.jsonl");
  std::filesystem::remove(journal);

  common::FaultScript script;
  script.fail_fsync_at = 3;  // header = 1, first ask = 2, second ask = 3
  script.path_contains = "tunekit_durability_fsync";
  common::FaultIo io(script);

  SessionStore::Options store_opt;
  store_opt.io = &io;
  JournalHeader header;
  header.space_size = 2;
  header.max_evals = 8;
  header.backend = "random";
  auto store = SessionStore::create(journal, header, store_opt);
  Candidate first;
  first.id = 1;
  first.config = {0.5, 0.5};
  store->ask(first);
  EXPECT_FALSE(store->poisoned());

  Candidate second;
  second.id = 2;
  second.config = {1.5, -0.5};
  EXPECT_THROW(store->ask(second), StorePoisonedError);
  EXPECT_TRUE(store->poisoned());
  // fsyncgate: the kernel dropped the dirty page and a retried fsync would
  // falsely succeed, so the store is read-only from here on — every append
  // fails fast without touching the disk.
  EXPECT_THROW(store->tell(1, 1.0, 0.0), StorePoisonedError);
  EXPECT_EQ(io.faults_injected(), 1u);
  store.reset();

  // Everything acked before the failed fsync is intact.
  const auto replay = SessionStore::replay(journal, space);
  EXPECT_TRUE(replay.completed.empty());
  ASSERT_GE(replay.in_flight.size(), 1u);
  EXPECT_EQ(replay.in_flight[0].id, 1u);
  std::filesystem::remove(journal);
}

TEST(SessionDurability, SealedSegmentByteFlipIsSalvagedOnResume) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_rotate.jsonl");
  const std::string segment1 = temp_path("tunekit_durability_rotate.000001.jsonl");
  const auto corrupt_dir = std::filesystem::temp_directory_path() / "corrupt";
  std::filesystem::remove(journal);
  for (int i = 1; i <= 9; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "tunekit_durability_rotate.%06d.jsonl", i);
    std::filesystem::remove(temp_path(name));
    std::filesystem::remove(corrupt_dir / name);
  }

  SessionOptions opt = random_options(32);
  opt.compact_every = 0;
  opt.rotate_bytes = 512;  // a handful of records per segment
  const std::size_t told = 16;
  {
    TuningSession session(space, opt, journal);
    for (std::size_t i = 0; i < told; ++i) {
      auto batch = session.ask(1);
      ASSERT_EQ(batch.size(), 1u);
      ASSERT_TRUE(session.tell(batch[0].id, static_cast<double>(i)));
    }
  }
  ASSERT_TRUE(std::filesystem::exists(segment1))
      << "rotation never sealed a segment";
  // Replay stitches sealed segments + active file losslessly before damage.
  {
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_TRUE(replay.salvage.clean());
    EXPECT_EQ(replay.completed.size(), told);
  }

  // Flip one byte inside a record of the sealed segment.
  std::string bytes = slurp(segment1);
  const auto tell_pos = bytes.find("\"e\":\"tell\"");
  ASSERT_NE(tell_pos, std::string::npos);
  bytes[tell_pos] ^= 0x01;
  spew(segment1, bytes);

  // Read-only replay pins the damage to exactly one record.
  {
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_EQ(replay.salvage.corrupt_segments, 1u);
    EXPECT_EQ(replay.salvage.lost_records, 1u);
    EXPECT_EQ(replay.completed.size(), told - 1);
    ASSERT_EQ(replay.in_flight.size(), 1u);
  }

  // Resume repairs: the segment is quarantined + rewritten, the lost tell's
  // candidate is re-issued, and the journal records salvage provenance.
  {
    auto resumed = TuningSession::resume(space, opt, journal);
    EXPECT_EQ(resumed->completed(), told - 1);
    auto batch = resumed->ask(1);
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_TRUE(resumed->tell(batch[0].id, 99.0));
  }
  EXPECT_TRUE(std::filesystem::exists(
      corrupt_dir / "tunekit_durability_rotate.000001.jsonl"))
      << "repair must quarantine the damaged segment";
  // The provenance marker lives somewhere in the journal chain (rotation may
  // have sealed it into a segment already).
  std::string chain = slurp(journal);
  for (int i = 1; i <= 9; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "tunekit_durability_rotate.%06d.jsonl", i);
    chain += slurp(temp_path(name));
  }
  EXPECT_NE(chain.find("\"e\":\"salvage\""), std::string::npos)
      << "resume after salvage must journal a provenance marker";
  // The repaired chain replays clean and whole.
  {
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_TRUE(replay.salvage.clean());
    EXPECT_EQ(replay.completed.size(), told);
  }

  std::filesystem::remove(journal);
  for (int i = 1; i <= 9; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "tunekit_durability_rotate.%06d.jsonl", i);
    std::filesystem::remove(temp_path(name));
    std::filesystem::remove(corrupt_dir / name);
  }
}

// Crash-consistency sweep: replay every byte prefix of the whole write
// stream (not just cuts inside the final record). Every prefix is a state a
// real crash could leave behind, so none may abort the replay, and the
// recovered tell count must grow monotonically with the prefix.
TEST(SessionDurability, EveryPrefixOfTheWriteStreamReplays) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_prefix.jsonl");
  std::filesystem::remove(journal);
  SessionOptions opt = random_options(8);
  opt.compact_every = 0;
  {
    TuningSession session(space, opt, journal);
    auto batch = session.ask(3);
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(session.tell(batch[i].id, static_cast<double>(i + 1)));
    }
  }
  const std::string bytes = slurp(journal);
  const auto header_end = bytes.find('\n');
  ASSERT_NE(header_end, std::string::npos);

  std::size_t prev_completed = 0;
  for (std::size_t cut = header_end + 1; cut <= bytes.size(); ++cut) {
    spew(journal, bytes.substr(0, cut));
    SessionStore::Replay replay;
    ASSERT_NO_THROW(replay = SessionStore::replay(journal, space))
        << "cut at byte " << cut;
    EXPECT_LE(replay.completed.size(), 3u) << "cut at byte " << cut;
    EXPECT_GE(replay.completed.size(), prev_completed)
        << "cut at byte " << cut << ": a longer prefix lost an acked tell";
    prev_completed = replay.completed.size();
  }
  EXPECT_EQ(prev_completed, 3u);
  std::filesystem::remove(journal);
}

// The satellite case the torn-line test above does not cover: the file is cut
// at an arbitrary *byte* offset inside the final record — the exact artifact
// of a crash (or full disk) partway through a write. Every truncation point
// within the last record must replay the prior records and resume cleanly.
TEST(SessionDurability, TruncationAtEveryByteOfTheLastRecordIsTolerated) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_truncate.jsonl");
  std::filesystem::remove(journal);
  {
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(3);
    ASSERT_EQ(batch.size(), 3u);
    ASSERT_TRUE(session.tell(batch[0].id, 1.0));
    ASSERT_TRUE(session.tell(batch[1].id, 2.0));
    ASSERT_TRUE(session.tell(batch[2].id, 3.0));
  }
  const auto full_size = std::filesystem::file_size(journal);
  // Locate the start of the final record (the byte after the second-to-last
  // newline; the file ends with a newline).
  std::string bytes(full_size, '\0');
  {
    std::ifstream in(journal, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(in) << "could not read the journal back";
  }
  ASSERT_EQ(bytes.back(), '\n');
  const auto last_start = bytes.rfind('\n', bytes.size() - 2) + 1;

  const std::string backup = bytes;
  const auto restore = [&] {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out.write(backup.data(), static_cast<std::streamsize>(full_size));
  };
  // Cuts strictly inside the record leave unparseable JSON: the third tell is
  // gone and its candidate must come back in flight for re-issue.
  for (std::uintmax_t cut = last_start; cut + 1 < full_size; ++cut) {
    restore();
    std::filesystem::resize_file(journal, cut);
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_EQ(replay.completed.size(), 2u) << "cut at byte " << cut;
    ASSERT_EQ(replay.in_flight.size(), 1u) << "cut at byte " << cut;
    auto resumed = TuningSession::resume(space, random_options(8), journal);
    EXPECT_EQ(resumed->completed(), 2u) << "cut at byte " << cut;
  }
  // Losing only the trailing newline leaves the record's JSON complete: the
  // acked tell must NOT be dropped in that case.
  restore();
  std::filesystem::resize_file(journal, full_size - 1);
  EXPECT_EQ(SessionStore::replay(journal, space).completed.size(), 3u);
  std::filesystem::remove(journal);
}

TEST(SessionDurability, QuarantineBanSurvivesResume) {
  const auto space = singleton_space();
  const std::string journal = temp_path("tunekit_durability_quar.jsonl");
  std::filesystem::remove(journal);

  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  opt.max_attempts = 5;  // retries alone would keep re-issuing
  opt.quarantine_after = 2;
  opt.seed = 17;
  {
    TuningSession session(space, opt, journal);
    auto first = session.ask(1);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(session.tell_failure(first[0].id, robust::EvalOutcome::Crashed));
    // Crash #1: below threshold, the candidate is queued for retry.
    auto retry = session.ask(1);
    ASSERT_EQ(retry.size(), 1u);
    EXPECT_EQ(retry[0].id, first[0].id);
    ASSERT_TRUE(session.tell_failure(retry[0].id, robust::EvalOutcome::Crashed));
    // Crash #2: quarantined — dropped at penalty despite remaining attempts.
    EXPECT_EQ(session.completed(), 1u);
    // The only configuration in the space is banned: asks cannot issue it
    // again (each refused re-suggestion is recorded and consumes budget).
    const std::size_t before = session.completed();
    EXPECT_TRUE(session.ask(1).empty());
    EXPECT_GT(session.completed(), before);
  }

  // The "quar" record must be on disk in the journal.
  bool has_quar = false;
  {
    std::ifstream in(journal);
    for (std::string line; std::getline(in, line);) {
      if (line.find("\"quar\"") != std::string::npos) has_quar = true;
    }
  }
  EXPECT_TRUE(has_quar) << "quarantine event was not journaled";

  // A resumed session inherits the ban: it never issues the quarantined
  // configuration, burning the remaining budget on refused suggestions
  // instead of dispatching a config known to crash its evaluator.
  auto resumed = TuningSession::resume(space, opt, journal);
  while (resumed->state() == SessionState::Active) {
    ASSERT_TRUE(resumed->ask(1).empty())
        << "resumed session re-issued a quarantined config";
  }
  EXPECT_EQ(resumed->completed(), opt.max_evals);
  std::filesystem::remove(journal);
}

TEST(SessionDurability, QuarantineSurvivesCompaction) {
  const auto space = singleton_space();
  const std::string journal = temp_path("tunekit_durability_quar_compact.jsonl");
  std::filesystem::remove(journal);

  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  opt.max_attempts = 5;
  opt.quarantine_after = 2;
  opt.compact_every = 1;  // compact after every recorded evaluation
  opt.seed = 17;
  {
    TuningSession session(space, opt, journal);
    for (int crash = 0; crash < 2; ++crash) {
      auto batch = session.ask(1);
      ASSERT_EQ(batch.size(), 1u);
      ASSERT_TRUE(session.tell_failure(batch[0].id, robust::EvalOutcome::Crashed));
    }
    // The drop at the quarantine threshold triggered a compaction: the
    // journal was rewritten. The quarantine record must have survived it.
    EXPECT_TRUE(session.ask(1).empty());
  }
  const auto replay = SessionStore::replay(journal, space);
  ASSERT_EQ(replay.quarantined.size(), 1u);
  EXPECT_DOUBLE_EQ(replay.quarantined[0][0], 3.0);

  auto resumed = TuningSession::resume(space, opt, journal);
  EXPECT_TRUE(resumed->ask(1).empty())
      << "compaction dropped the quarantine record";
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace tunekit::service
