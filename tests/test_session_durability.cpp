// Durability regression tests for the session journal (SessionStore).
//
// The contract under test: once tell() has returned true, that evaluation
// survives a SIGKILL of the whole process — the journal line was fsync'd
// before the ack. The kill is simulated with fork() + _exit(), which skips
// every destructor and stdio flush exactly like a kill would; the only bytes
// on disk are the ones append_line() pushed through fsync.

#include "service/session.hpp"
#include "service/session_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define TUNEKIT_HAVE_FORK 1
#endif

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

/// A space with exactly one valid configuration: every backend suggestion
/// collides with it, which makes quarantine behavior deterministic.
search::SearchSpace singleton_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::ordinal("mode", {3}, 3));
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SessionOptions random_options(std::size_t max_evals) {
  SessionOptions opt;
  opt.max_evals = max_evals;
  opt.backend = SessionBackend::Random;
  opt.seed = 17;
  return opt;
}

#ifdef TUNEKIT_HAVE_FORK
TEST(SessionDurability, AckedTellsSurviveKill) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_kill.jsonl");
  std::filesystem::remove(journal);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: issue four candidates, tell three, then die without cleanup.
    // _exit() runs no destructors and flushes nothing — any acked tell that
    // was still sitting in a stdio buffer would be lost here.
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(4);
    if (batch.size() != 4) _exit(3);
    if (!session.tell(batch[0].id, 10.0, 0.5)) _exit(4);
    if (!session.tell(batch[1].id, 20.0)) _exit(4);
    if (!session.tell(batch[2].id, 30.0)) _exit(4);
    // Simulate the kill landing mid-append: a torn, unterminated line is
    // exactly what a crash during a later write leaves behind.
    if (std::FILE* f = std::fopen(journal.c_str(), "ab")) {
      std::fputs("{\"e\":\"tell\",\"id\":3,\"val", f);
      std::fflush(f);
    }
    _exit(0);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child setup failed";

  const auto replay = SessionStore::replay(journal, space);
  ASSERT_EQ(replay.completed.size(), 3u) << "an acked tell was lost";
  EXPECT_DOUBLE_EQ(replay.completed[0].value, 10.0);
  EXPECT_DOUBLE_EQ(replay.completed[0].cost_seconds, 0.5);
  EXPECT_DOUBLE_EQ(replay.completed[1].value, 20.0);
  EXPECT_DOUBLE_EQ(replay.completed[2].value, 30.0);
  // The un-told fourth candidate is still in flight and must be re-issued.
  ASSERT_EQ(replay.in_flight.size(), 1u);

  auto resumed = TuningSession::resume(space, random_options(8), journal);
  EXPECT_EQ(resumed->completed(), 3u);
  auto reissued = resumed->ask(4);
  ASSERT_EQ(reissued.size(), 1u) << "re-issue must drain before new asks";
  EXPECT_EQ(reissued[0].id, replay.in_flight[0].id);
  std::filesystem::remove(journal);
}
#endif  // TUNEKIT_HAVE_FORK

TEST(SessionDurability, TornFinalLineIgnoredMidJournalCorruptionFatal) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_torn.jsonl");
  std::filesystem::remove(journal);
  {
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(2);
    ASSERT_EQ(batch.size(), 2u);
    ASSERT_TRUE(session.tell(batch[0].id, 1.0));
    ASSERT_TRUE(session.tell(batch[1].id, 2.0));
  }
  // A torn final line (no newline, half a JSON object) is a normal crash
  // artifact and must be tolerated...
  {
    std::ofstream out(journal, std::ios::app);
    out << "{\"e\":\"ask\",\"id\":9,\"conf";
  }
  const auto replay = SessionStore::replay(journal, space);
  EXPECT_EQ(replay.completed.size(), 2u);
  EXPECT_TRUE(replay.in_flight.empty());

  // ...but garbage in the *middle* of the journal is real corruption and
  // must be an error, not silently skipped.
  {
    std::ofstream out(journal, std::ios::app);
    out << "\n{\"e\":\"ask\",\"id\":10,\"attempt\":0,\"config\":[0.0,0.0]}\n";
  }
  EXPECT_THROW(SessionStore::replay(journal, space), std::runtime_error);
  std::filesystem::remove(journal);
}

// The satellite case the torn-line test above does not cover: the file is cut
// at an arbitrary *byte* offset inside the final record — the exact artifact
// of a crash (or full disk) partway through a write. Every truncation point
// within the last record must replay the prior records and resume cleanly.
TEST(SessionDurability, TruncationAtEveryByteOfTheLastRecordIsTolerated) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_durability_truncate.jsonl");
  std::filesystem::remove(journal);
  {
    TuningSession session(space, random_options(8), journal);
    auto batch = session.ask(3);
    ASSERT_EQ(batch.size(), 3u);
    ASSERT_TRUE(session.tell(batch[0].id, 1.0));
    ASSERT_TRUE(session.tell(batch[1].id, 2.0));
    ASSERT_TRUE(session.tell(batch[2].id, 3.0));
  }
  const auto full_size = std::filesystem::file_size(journal);
  // Locate the start of the final record (the byte after the second-to-last
  // newline; the file ends with a newline).
  std::string bytes(full_size, '\0');
  {
    std::ifstream in(journal, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(in) << "could not read the journal back";
  }
  ASSERT_EQ(bytes.back(), '\n');
  const auto last_start = bytes.rfind('\n', bytes.size() - 2) + 1;

  const std::string backup = bytes;
  const auto restore = [&] {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out.write(backup.data(), static_cast<std::streamsize>(full_size));
  };
  // Cuts strictly inside the record leave unparseable JSON: the third tell is
  // gone and its candidate must come back in flight for re-issue.
  for (std::uintmax_t cut = last_start; cut + 1 < full_size; ++cut) {
    restore();
    std::filesystem::resize_file(journal, cut);
    const auto replay = SessionStore::replay(journal, space);
    EXPECT_EQ(replay.completed.size(), 2u) << "cut at byte " << cut;
    ASSERT_EQ(replay.in_flight.size(), 1u) << "cut at byte " << cut;
    auto resumed = TuningSession::resume(space, random_options(8), journal);
    EXPECT_EQ(resumed->completed(), 2u) << "cut at byte " << cut;
  }
  // Losing only the trailing newline leaves the record's JSON complete: the
  // acked tell must NOT be dropped in that case.
  restore();
  std::filesystem::resize_file(journal, full_size - 1);
  EXPECT_EQ(SessionStore::replay(journal, space).completed.size(), 3u);
  std::filesystem::remove(journal);
}

TEST(SessionDurability, QuarantineBanSurvivesResume) {
  const auto space = singleton_space();
  const std::string journal = temp_path("tunekit_durability_quar.jsonl");
  std::filesystem::remove(journal);

  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  opt.max_attempts = 5;  // retries alone would keep re-issuing
  opt.quarantine_after = 2;
  opt.seed = 17;
  {
    TuningSession session(space, opt, journal);
    auto first = session.ask(1);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(session.tell_failure(first[0].id, robust::EvalOutcome::Crashed));
    // Crash #1: below threshold, the candidate is queued for retry.
    auto retry = session.ask(1);
    ASSERT_EQ(retry.size(), 1u);
    EXPECT_EQ(retry[0].id, first[0].id);
    ASSERT_TRUE(session.tell_failure(retry[0].id, robust::EvalOutcome::Crashed));
    // Crash #2: quarantined — dropped at penalty despite remaining attempts.
    EXPECT_EQ(session.completed(), 1u);
    // The only configuration in the space is banned: asks cannot issue it
    // again (each refused re-suggestion is recorded and consumes budget).
    const std::size_t before = session.completed();
    EXPECT_TRUE(session.ask(1).empty());
    EXPECT_GT(session.completed(), before);
  }

  // The "quar" record must be on disk in the journal.
  bool has_quar = false;
  {
    std::ifstream in(journal);
    for (std::string line; std::getline(in, line);) {
      if (line.find("\"quar\"") != std::string::npos) has_quar = true;
    }
  }
  EXPECT_TRUE(has_quar) << "quarantine event was not journaled";

  // A resumed session inherits the ban: it never issues the quarantined
  // configuration, burning the remaining budget on refused suggestions
  // instead of dispatching a config known to crash its evaluator.
  auto resumed = TuningSession::resume(space, opt, journal);
  while (resumed->state() == SessionState::Active) {
    ASSERT_TRUE(resumed->ask(1).empty())
        << "resumed session re-issued a quarantined config";
  }
  EXPECT_EQ(resumed->completed(), opt.max_evals);
  std::filesystem::remove(journal);
}

TEST(SessionDurability, QuarantineSurvivesCompaction) {
  const auto space = singleton_space();
  const std::string journal = temp_path("tunekit_durability_quar_compact.jsonl");
  std::filesystem::remove(journal);

  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  opt.max_attempts = 5;
  opt.quarantine_after = 2;
  opt.compact_every = 1;  // compact after every recorded evaluation
  opt.seed = 17;
  {
    TuningSession session(space, opt, journal);
    for (int crash = 0; crash < 2; ++crash) {
      auto batch = session.ask(1);
      ASSERT_EQ(batch.size(), 1u);
      ASSERT_TRUE(session.tell_failure(batch[0].id, robust::EvalOutcome::Crashed));
    }
    // The drop at the quarantine threshold triggered a compaction: the
    // journal was rewritten. The quarantine record must have survived it.
    EXPECT_TRUE(session.ask(1).empty());
  }
  const auto replay = SessionStore::replay(journal, space);
  ASSERT_EQ(replay.quarantined.size(), 1u);
  EXPECT_DOUBLE_EQ(replay.quarantined[0][0], 3.0);

  auto resumed = TuningSession::resume(space, opt, journal);
  EXPECT_TRUE(resumed->ask(1).empty())
      << "compaction dropped the quarantine record";
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace tunekit::service
