#include "graph/influence_graph.hpp"

#include <gtest/gtest.h>

namespace tunekit::graph {
namespace {

InfluenceGraph make_graph() {
  // Routines A, B; params p0 (owned by A), p1 (owned by A and B, shared),
  // p2 (global).
  InfluenceGraph g({"A", "B"}, {"p0", "p1", "p2"});
  g.add_owner(0, 0);
  g.add_owner(1, 0);
  g.add_owner(1, 1);
  g.set_influence(0, 0, 0.5);   // p0 on its own routine
  g.set_influence(0, 1, 0.2);   // p0 crosses to B
  g.set_influence(1, 0, 0.05);  // p1 weak on A
  g.set_influence(1, 1, 0.4);   // p1 strong on B
  g.set_influence(2, 0, 0.3);   // global p2 on A
  g.set_influence(2, 1, 0.08);  // global p2 weak on B
  return g;
}

TEST(InfluenceGraph, ConstructionAndLookup) {
  const auto g = make_graph();
  EXPECT_EQ(g.n_routines(), 2u);
  EXPECT_EQ(g.n_params(), 3u);
  EXPECT_EQ(g.routine_index("B"), 1u);
  EXPECT_EQ(g.param_index("p2"), 2u);
  EXPECT_THROW(g.routine_index("X"), std::out_of_range);
  EXPECT_THROW(g.param_index("X"), std::out_of_range);
  EXPECT_THROW(InfluenceGraph({}, {"p"}), std::invalid_argument);
  EXPECT_THROW(InfluenceGraph({"r"}, {}), std::invalid_argument);
}

TEST(InfluenceGraph, Ownership) {
  const auto g = make_graph();
  EXPECT_TRUE(g.is_owned_by(0, 0));
  EXPECT_FALSE(g.is_owned_by(0, 1));
  EXPECT_TRUE(g.is_owned_by(1, 0));
  EXPECT_TRUE(g.is_owned_by(1, 1));
  EXPECT_TRUE(g.is_global(2));
  EXPECT_FALSE(g.is_global(0));
  EXPECT_EQ(g.owners(1).size(), 2u);
}

TEST(InfluenceGraph, DuplicateOwnerIgnored) {
  auto g = make_graph();
  g.add_owner(0, 0);
  EXPECT_EQ(g.owners(0).size(), 1u);
}

TEST(InfluenceGraph, InfluenceRoundTrip) {
  const auto g = make_graph();
  EXPECT_DOUBLE_EQ(g.influence(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(g.influence(2, 0), 0.3);
}

TEST(InfluenceGraph, PruneZeroesBelowCutoff) {
  const auto pruned = make_graph().pruned(0.25);
  EXPECT_DOUBLE_EQ(pruned.influence(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(pruned.influence(0, 1), 0.0);   // 0.2 < 0.25
  EXPECT_DOUBLE_EQ(pruned.influence(1, 1), 0.4);
  EXPECT_DOUBLE_EQ(pruned.influence(2, 1), 0.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(make_graph().influence(0, 1), 0.2);
}

TEST(InfluenceGraph, CrossEdgesExcludeOwnersAndGlobals) {
  const auto g = make_graph();
  const auto edges = g.cross_edges();
  // Only p0 crosses (A -> B); p1 is owned by both; p2 is global.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].param, 0u);
  EXPECT_EQ(edges[0].from_routine, 0u);
  EXPECT_EQ(edges[0].to_routine, 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 0.2);
}

TEST(InfluenceGraph, CrossEdgesAfterPrune) {
  const auto pruned = make_graph().pruned(0.25);
  EXPECT_TRUE(pruned.cross_edges().empty());
  const auto loose = make_graph().pruned(0.1);
  EXPECT_EQ(loose.cross_edges().size(), 1u);
}

TEST(InfluenceGraph, GlobalEdges) {
  const auto g = make_graph();
  const auto edges = g.global_edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].param, 2u);
  // Pruning drops the weak one.
  EXPECT_EQ(g.pruned(0.1).global_edges().size(), 1u);
}

TEST(InfluenceGraph, SharedOwnerParamEmitsCrossEdgesPerOwner) {
  InfluenceGraph g({"A", "B", "C"}, {"p"});
  g.add_owner(0, 0);
  g.add_owner(0, 1);
  g.set_influence(0, 2, 0.5);  // influences a non-owner
  const auto edges = g.cross_edges();
  ASSERT_EQ(edges.size(), 2u);  // one per owner
  EXPECT_EQ(edges[0].to_routine, 2u);
  EXPECT_EQ(edges[1].to_routine, 2u);
}

TEST(InfluenceGraph, DotOutputContainsVerticesAndEdges) {
  const auto g = make_graph();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("\"B\""), std::string::npos);
  EXPECT_NE(dot.find("p0"), std::string::npos);  // cross edge label
  EXPECT_NE(dot.find("p2"), std::string::npos);  // global vertex
}

TEST(InfluenceGraph, BoundsChecked) {
  auto g = make_graph();
  EXPECT_THROW(g.add_owner(9, 0), std::out_of_range);
  EXPECT_THROW(g.add_owner(0, 9), std::out_of_range);
  EXPECT_THROW(g.set_influence(9, 0, 1.0), std::out_of_range);
  EXPECT_THROW(g.influence(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace tunekit::graph
