#include "stats/orthogonality.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tunekit::stats {
namespace {

using search::Config;
using search::FunctionObjective;
using search::ParamSpec;
using search::SearchSpace;

SearchSpace cube(std::size_t dims) {
  SearchSpace s;
  for (std::size_t i = 0; i < dims; ++i) {
    s.add(ParamSpec::real("p" + std::to_string(i), 0.5, 10.0, 2.0));
  }
  return s;
}

TEST(Orthogonality, AdditiveFunctionShowsNoInteractions) {
  // f = p0^2 + p1 + p2 : fully additive.
  FunctionObjective f([](const Config& c) { return c[0] * c[0] + c[1] + c[2]; });
  const auto space = cube(3);
  Rng rng(1);
  OrthogonalityAnalyzer analyzer;
  const auto report = analyzer.analyze(f, space, {2.0, 2.0, 2.0}, rng);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(report.interaction(i, j), 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(report.interacting_pairs(0.01).empty());
}

TEST(Orthogonality, MultiplicativePairDetected) {
  // f = p0 * p1 + p2 : only the (0, 1) pair interacts.
  FunctionObjective f([](const Config& c) { return c[0] * c[1] + c[2]; });
  const auto space = cube(3);
  Rng rng(2);
  OrthogonalityAnalyzer analyzer;
  const auto report = analyzer.analyze(f, space, {2.0, 2.0, 2.0}, rng);
  EXPECT_GT(report.interaction(0, 1), 0.05);
  EXPECT_NEAR(report.interaction(0, 2), 0.0, 1e-9);
  EXPECT_NEAR(report.interaction(1, 2), 0.0, 1e-9);

  const auto pairs = report.interacting_pairs(0.05);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].i, 0u);
  EXPECT_EQ(pairs[0].j, 1u);
}

TEST(Orthogonality, InteractionIsSymmetric) {
  FunctionObjective f([](const Config& c) { return c[0] * c[1]; });
  const auto space = cube(2);
  Rng rng(3);
  const auto report = OrthogonalityAnalyzer().analyze(f, space, {2.0, 2.0}, rng);
  EXPECT_DOUBLE_EQ(report.interaction(0, 1), report.interaction(1, 0));
}

TEST(Orthogonality, AdditiveGroupsPartitionCorrectly) {
  // Groups {0,1} (multiplied) and {2,3} (multiplied), additive in between.
  FunctionObjective f(
      [](const Config& c) { return c[0] * c[1] + c[2] * c[3] + c[0] + c[3]; });
  const auto space = cube(4);
  Rng rng(4);
  const auto report = OrthogonalityAnalyzer().analyze(f, space, {2.0, 2.0, 2.0, 2.0}, rng);
  const auto groups = report.additive_groups(0.02);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Orthogonality, ObservationCountQuadraticInDims) {
  OrthogonalityOptions opt;
  opt.n_draws = 3;
  OrthogonalityAnalyzer analyzer(opt);
  // 1 + V*(D + D(D-1)/2)
  EXPECT_EQ(analyzer.predicted_observations(20), 1u + 3u * (20u + 190u));
  EXPECT_EQ(analyzer.predicted_observations(4), 1u + 3u * (4u + 6u));

  FunctionObjective f([](const Config& c) { return c[0] + c[1] + c[2] + c[3]; });
  const auto space = cube(4);
  Rng rng(5);
  const auto report = analyzer.analyze(f, space, {2.0, 2.0, 2.0, 2.0}, rng);
  EXPECT_EQ(report.observations, analyzer.predicted_observations(4));
}

TEST(Orthogonality, MuchMoreExpensiveThanSensitivity) {
  // The paper's cost argument in one assertion: for D = 20, V = 3 the
  // pairwise analysis needs ~3x more observations than a V = 10 sensitivity
  // sweep, and the gap grows quadratically.
  OrthogonalityOptions opt;
  opt.n_draws = 3;
  const std::size_t orth = OrthogonalityAnalyzer(opt).predicted_observations(20);
  const std::size_t sens = 1 + 20 * 10;  // baseline + V*D
  EXPECT_GT(orth, 3 * sens);
}

TEST(Orthogonality, SkipsInvalidPerturbations) {
  FunctionObjective f([](const Config& c) { return c[0] + c[1]; });
  SearchSpace space = cube(2);
  space.add_constraint("sum", [](const Config& c) { return c[0] + c[1] <= 6.0; });
  Rng rng(6);
  OrthogonalityAnalyzer analyzer;
  // Perturbations past the constraint are skipped, not fatal.
  EXPECT_NO_THROW(analyzer.analyze(f, space, {2.0, 2.0}, rng));
}

TEST(Orthogonality, ValidatesBaseline) {
  FunctionObjective f([](const Config& c) { return c[0]; });
  const auto space = cube(1);
  Rng rng(7);
  OrthogonalityAnalyzer analyzer;
  EXPECT_THROW(analyzer.analyze(f, space, {100.0}, rng), std::invalid_argument);

  FunctionObjective zero([](const Config&) { return 0.0; });
  EXPECT_THROW(analyzer.analyze(zero, space, {2.0}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::stats
