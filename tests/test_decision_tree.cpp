#include "stats/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::stats {
namespace {

TEST(RegressionTree, FitsStepFunction) {
  // y = 1 if x > 0.5 else 0: one split suffices.
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i) / 19.0;
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, y, rng);
  EXPECT_DOUBLE_EQ(tree.predict({0.1}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict({0.9}), 1.0);
}

TEST(RegressionTree, PureTargetsGiveSingleLeaf) {
  linalg::Matrix x(10, 2);
  Rng rng(2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  RegressionTree tree;
  tree.fit(x, std::vector<double>(10, 4.2), rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({0.3, 0.3}), 4.2);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(3);
  linalg::Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(20.0 * x(i, 0));
  }
  TreeOptions opt;
  opt.max_depth = 3;
  RegressionTree tree(opt);
  tree.fit(x, y, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(RegressionTree, MinSamplesLeafHonored) {
  Rng rng(4);
  linalg::Matrix x(30, 1);
  std::vector<double> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i % 2);
  }
  TreeOptions opt;
  opt.min_samples_leaf = 10;
  opt.min_samples_split = 20;
  RegressionTree tree(opt);
  tree.fit(x, y, rng);
  // With leaves >= 10 samples over alternating labels, depth stays small.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(RegressionTree, ImportanceConcentratesOnInformativeFeature) {
  Rng rng(5);
  linalg::Matrix x(300, 3);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x(i, f) = rng.uniform();
    y[i] = 5.0 * x(i, 1);  // only feature 1 matters
  }
  RegressionTree tree;
  tree.fit(x, y, rng);
  const auto& imp = tree.impurity_importance();
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
  EXPECT_GT(imp[1], 0.0);
}

TEST(RegressionTree, BootstrapRowsSupported) {
  linalg::Matrix x(10, 1);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  Rng rng(6);
  RegressionTree tree;
  // Train only on the low half (with duplicates).
  tree.fit(x, y, {0, 1, 2, 2, 3, 4, 4, 0}, rng);
  EXPECT_LE(tree.predict({9.0}), 4.0);
}

TEST(RegressionTree, InputValidation) {
  Rng rng(7);
  RegressionTree tree;
  EXPECT_THROW(tree.fit(linalg::Matrix(3, 1), {1.0, 2.0}, rng), std::invalid_argument);
  EXPECT_THROW(tree.fit(linalg::Matrix(3, 1), {1.0, 2.0, 3.0}, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(tree.predict({0.0}), std::runtime_error);
}

TEST(RegressionTree, PredictsTrainingMeanAtRoot) {
  linalg::Matrix x(4, 1);
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = 0.5;  // no split possible
  Rng rng(8);
  RegressionTree tree;
  tree.fit(x, {1.0, 2.0, 3.0, 4.0}, rng);
  EXPECT_DOUBLE_EQ(tree.predict({0.5}), 2.5);
}

}  // namespace
}  // namespace tunekit::stats
