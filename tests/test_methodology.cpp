#include "core/methodology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/report.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

namespace tunekit::core {
namespace {

MethodologyOptions synth_options() {
  MethodologyOptions opt;
  opt.cutoff = 0.25;  // the paper's synthetic cut-off
  opt.sensitivity.n_variations = 100;
  opt.sensitivity.ladder_factor = 1.10;
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 4;  // small budget keeps tests fast
  opt.executor.min_evals = 10;
  opt.executor.enumerate_threshold = 0.0;
  return opt;
}

struct CaseExpectation {
  synth::SynthCase which;
  bool merged;  // Group3+Group4 expected merged?
};

class SynthPlan : public ::testing::TestWithParam<CaseExpectation> {};

TEST_P(SynthPlan, MatchesPaperPartition) {
  synth::SynthApp app(GetParam().which);
  Methodology m(synth_options());
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);

  std::vector<std::string> names;
  for (const auto& s : plan.searches) names.push_back(s.name);
  const bool has_merged =
      std::find(names.begin(), names.end(), "Group3+Group4") != names.end();

  EXPECT_EQ(has_merged, GetParam().merged);
  EXPECT_EQ(plan.searches.size(), GetParam().merged ? 3u : 4u);
  // Group1 and Group2 always independent.
  EXPECT_NE(std::find(names.begin(), names.end(), "Group1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Group2"), names.end());
  // Every parameter is tuned somewhere (no dim cap hit: max group is 10).
  EXPECT_TRUE(plan.untuned_params.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SynthPlan,
    ::testing::Values(CaseExpectation{synth::SynthCase::Case1, false},
                      CaseExpectation{synth::SynthCase::Case2, false},
                      CaseExpectation{synth::SynthCase::Case3, true},
                      CaseExpectation{synth::SynthCase::Case4, true},
                      CaseExpectation{synth::SynthCase::Case5, true}),
    [](const auto& info) {
      return "Case" + std::to_string(static_cast<int>(info.param.which));
    });

TEST(Methodology, AnalysisObservationCountIsCheap) {
  // Phase 1+3 must cost O(V * D) evaluations, far below a grid or a full
  // orthogonality analysis.
  synth::SynthApp app(synth::SynthCase::Case3);
  auto opt = synth_options();
  opt.sensitivity.n_variations = 10;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  EXPECT_LE(analysis.observations, 1u + 20u * 10u);
  EXPECT_GE(analysis.observations, 1u + 20u * 2u);
}

TEST(Methodology, SensitivityTableIIShape) {
  // Case 1: Group 3's top sensitive variables are its own (x10..x14) and
  // Group 4's influence is weak; Case 5 inverts this (Table II).
  synth::SynthApp app1(synth::SynthCase::Case1);
  Methodology m(synth_options());
  const auto a1 = m.analyze(app1);
  const auto top1 = a1.sensitivity.top("Group3", 5);
  for (const auto& e : top1) {
    EXPECT_GE(e.param_index, 10u);
    EXPECT_LE(e.param_index, 14u);
  }

  synth::SynthApp app5(synth::SynthCase::Case5);
  const auto a5 = m.analyze(app5);
  const auto top5 = a5.sensitivity.top("Group3", 3);
  for (const auto& e : top5) {
    EXPECT_GE(e.param_index, 15u);
    EXPECT_LE(e.param_index, 19u);
  }
}

TEST(Methodology, FeatureImportanceProduced) {
  synth::SynthApp app(synth::SynthCase::Case2);
  auto opt = synth_options();
  opt.importance_samples = 60;
  opt.forest.n_trees = 20;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  ASSERT_EQ(analysis.importance.size(), 20u);
  double total = 0.0;
  for (double v : analysis.importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(analysis.observations, 60u);
}

TEST(Methodology, FullRunImprovesOverBaseline) {
  synth::SynthApp app(synth::SynthCase::Case4);
  auto opt = synth_options();
  opt.executor.evals_per_param = 6;
  opt.executor.bo.seed = 5;
  Methodology m(opt);
  const auto result = m.run(app);

  const double baseline_value = app.evaluate_regions(app.baseline()).total;
  EXPECT_LT(result.execution.final_times.total, baseline_value);
  EXPECT_GT(result.total_observations, result.analysis.observations);
  EXPECT_FALSE(result.execution.outcomes.empty());
  EXPECT_TRUE(app.space().is_valid(result.execution.final_config));
}

TEST(Methodology, TddftPlanReproducesTableVII) {
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  MethodologyOptions opt;
  opt.cutoff = 0.10;  // the paper's RT-TDDFT cut-off
  opt.importance_samples = 0;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto plan = m.make_plan(app, analysis);

  // Table VII: MPI Grid (3), Iterations (2), Group1 (3), Group2+3 (10).
  ASSERT_EQ(plan.searches.size(), 4u);
  auto find = [&](const std::string& name) -> const graph::PlannedSearch* {
    for (const auto& s : plan.searches) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const auto* iterations = find("Iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->params.size(), 2u);
  EXPECT_EQ(iterations->stage, 0u);

  const auto* mpi = find("MPI Grid");
  ASSERT_NE(mpi, nullptr);
  EXPECT_EQ(mpi->params.size(), 3u);

  const auto* g1 = find("Group1");
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->params.size(), 3u);  // only VEC: ZCOPY went to Group2+3

  const auto* g23 = find("Group2+Group3");
  ASSERT_NE(g23, nullptr);
  EXPECT_EQ(g23->params.size(), 10u);  // capped at 10, two dropped
  EXPECT_EQ(g23->dropped_params.size(), 2u);
}

TEST(Methodology, TddftSensitivityShapes) {
  tddft::RtTddftApp app(tddft::PhysicalSystem::case_study_1());
  MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  const auto& s = analysis.sensitivity;
  const auto& space = app.space();

  // nbatches dominates every GPU group (paper Tables V/VI).
  const std::size_t nbatches = space.index_of("nbatches");
  for (const char* region : {"Group1", "Group2", "Group3"}) {
    EXPECT_EQ(s.top(region, 1)[0].param_index, nbatches) << region;
  }
  // nstb leads the Slater Determinant region.
  EXPECT_EQ(s.top("SlaterDet", 1)[0].param_name, "nstb");
  // The G2 -> G3 cache interdependence is visible above the cut-off.
  EXPECT_GE(s.score("Group3", space.index_of("tb_sm_pair")), 0.10);
  // Group 1's parameters stay below the cut-off on Groups 2 and 3.
  EXPECT_LT(s.score("Group2", space.index_of("u_vec")), 0.10);
  EXPECT_LT(s.score("Group3", space.index_of("u_vec")), 0.10);
}

TEST(Methodology, ReportRendersAllSections) {
  synth::SynthApp app(synth::SynthCase::Case3);
  auto opt = synth_options();
  opt.executor.evals_per_param = 3;
  opt.executor.min_evals = 6;
  Methodology m(opt);
  const auto result = m.run(app);
  const std::string report = full_report(app, result);
  EXPECT_NE(report.find("Influence analysis"), std::string::npos);
  EXPECT_NE(report.find("Search plan"), std::string::npos);
  EXPECT_NE(report.find("Execution"), std::string::npos);
  EXPECT_NE(report.find("Group3+Group4"), std::string::npos);
}

}  // namespace
}  // namespace tunekit::core
