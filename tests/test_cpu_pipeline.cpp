#include "tddft/cpu_pipeline.hpp"
#include "tddft/slater_pipeline.hpp"

#include <gtest/gtest.h>

namespace tunekit::tddft {
namespace {

CpuPipeline make_pipeline(int ranks = 40) {
  return CpuPipeline(PhysicalSystem::case_study_1(), CpuArch::perlmutter_cpu(), ranks);
}

TEST(CpuPipeline, ValidityRules) {
  const auto p = make_pipeline(40);
  EXPECT_TRUE(p.valid({4, 1, 1, 8}));    // 32 ranks
  EXPECT_FALSE(p.valid({8, 1, 1, 8}));   // 64 > 40
  EXPECT_FALSE(p.valid({4, 2, 1, 4}));   // nkpb > nkpoints (CS1 has 1)
  EXPECT_FALSE(p.valid({0, 1, 1, 1}));
  EXPECT_FALSE(p.valid({4, 1, 1, 0}));
  EXPECT_THROW(p.simulate({8, 1, 1, 8}), std::invalid_argument);
}

TEST(CpuPipeline, BreakdownPositiveAndConsistent) {
  const auto p = make_pipeline();
  const auto b = p.simulate({4, 1, 1, 8});
  EXPECT_GT(b.fft_compute, 0.0);
  EXPECT_GT(b.transpose_comm, 0.0);
  EXPECT_GT(b.pointwise, 0.0);
  EXPECT_NEAR(b.slater, b.fft_compute + b.transpose_comm + b.pointwise + b.reductions,
              1e-12);
  EXPECT_GT(b.total, b.slater);
}

TEST(CpuPipeline, CommShareMatchesPaperRange) {
  // Paper SS 5: "around 40-50% of the runtime is attributed to communication
  // primitives" at typical distributed-FFT widths.
  const auto p = make_pipeline();
  const auto b = p.simulate({4, 1, 1, 8});
  EXPECT_GE(b.comm_share(), 0.35);
  EXPECT_LE(b.comm_share(), 0.60);
}

TEST(CpuPipeline, NoTransposeWithoutDistribution) {
  const auto p = make_pipeline();
  const auto b = p.simulate({4, 1, 1, 1});  // nqb = 1: single-rank FFT
  EXPECT_DOUBLE_EQ(b.transpose_comm, 0.0);
}

TEST(CpuPipeline, WiderFftDistributionTradesComputeForComm) {
  const auto p = make_pipeline();
  const auto narrow = p.simulate({4, 1, 1, 2});
  const auto wide = p.simulate({4, 1, 1, 8});
  EXPECT_LT(wide.fft_compute, narrow.fft_compute);     // compute shrinks
  // Per-rank transpose traffic shrinks with nqb but latency terms grow;
  // comm share always grows with nqb.
  EXPECT_GT(wide.comm_share(), narrow.comm_share());
}

TEST(CpuPipeline, BandParallelismSpeedsUp) {
  const auto p = make_pipeline();
  const auto serial = p.simulate({1, 1, 1, 4});
  const auto parallel = p.simulate({8, 1, 1, 4});
  EXPECT_GT(serial.slater, parallel.slater * 4.0);
}

TEST(CpuPipeline, GpuOffloadIsFasterAtEqualAllocation) {
  // The motivating comparison of SS 5-A: the offloaded pipeline beats the
  // CPU version at the same rank budget.
  const auto cpu = make_pipeline();
  const auto cpu_best = cpu.simulate({4, 1, 1, 8});

  SlaterPipeline gpu(PhysicalSystem::case_study_1(), GpuArch::a100(), 40);
  auto config = TddftConfig::defaults();
  config.grid = {32, 1, 1};
  const auto g = gpu.simulate(config);
  EXPECT_LT(g.total, cpu_best.total);
}

TEST(CpuPipeline, NoiseSeedJittersDeterministically) {
  CpuPipeline a(PhysicalSystem::case_study_1(), CpuArch::perlmutter_cpu(), 40, 1);
  CpuPipeline b(PhysicalSystem::case_study_1(), CpuArch::perlmutter_cpu(), 40, 1);
  CpuPipeline c(PhysicalSystem::case_study_1(), CpuArch::perlmutter_cpu(), 40, 2);
  const CpuGrid grid{4, 1, 1, 8};
  EXPECT_DOUBLE_EQ(a.simulate(grid).total, b.simulate(grid).total);
  EXPECT_NE(a.simulate(grid).total, c.simulate(grid).total);
}

}  // namespace
}  // namespace tunekit::tddft
