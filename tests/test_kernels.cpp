#include "bo/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"

namespace tunekit::bo {
namespace {

class KernelKinds : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelKinds, SelfCovarianceIsSignalVariance) {
  const auto hp = GpHyperparams::isotropic(3, 0.5, 2.0, 1e-6);
  const std::vector<double> x{0.1, 0.2, 0.3};
  EXPECT_NEAR(kernel_value(GetParam(), x, x, hp), 2.0, 1e-12);
}

TEST_P(KernelKinds, Symmetric) {
  const auto hp = GpHyperparams::isotropic(2, 0.4);
  const std::vector<double> a{0.1, 0.9};
  const std::vector<double> b{0.7, 0.3};
  EXPECT_DOUBLE_EQ(kernel_value(GetParam(), a, b, hp),
                   kernel_value(GetParam(), b, a, hp));
}

TEST_P(KernelKinds, DecaysWithDistance) {
  const auto hp = GpHyperparams::isotropic(1, 0.3);
  const std::vector<double> origin{0.0};
  double prev = kernel_value(GetParam(), origin, {0.0}, hp);
  for (double d : {0.1, 0.2, 0.4, 0.8}) {
    const double k = kernel_value(GetParam(), origin, {d}, hp);
    EXPECT_LT(k, prev);
    EXPECT_GT(k, 0.0);
    prev = k;
  }
}

TEST_P(KernelKinds, GramMatrixIsPsd) {
  // A PSD Gram matrix must Cholesky-factor (with tiny jitter allowance).
  tunekit::Rng rng(3);
  linalg::Matrix x(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  const auto hp = GpHyperparams::isotropic(2, 0.3, 1.0, 1e-6);
  const auto gram = kernel_gram(GetParam(), x, hp);
  EXPECT_NO_THROW(linalg::cholesky(gram));
  // Symmetry and diagonal structure.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(gram(i, i), 1.0 + 1e-6, 1e-12);
    for (std::size_t j = 0; j < 12; ++j) EXPECT_DOUBLE_EQ(gram(i, j), gram(j, i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelKinds,
                         ::testing::Values(KernelKind::RBF, KernelKind::Matern32,
                                           KernelKind::Matern52),
                         [](const auto& info) { return to_string(info.param); });

TEST(Kernels, RbfMatchesClosedForm) {
  const auto hp = GpHyperparams::isotropic(1, 0.5, 1.0);
  const double k = kernel_value(KernelKind::RBF, {0.0}, {0.5}, hp);
  EXPECT_NEAR(k, std::exp(-0.5), 1e-12);
}

TEST(Kernels, ArdLengthscalesWeightDimensions) {
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.lengthscales = {0.1, 10.0};
  hp.noise_variance = 0.0;
  // Moving along the short-lengthscale axis decays far faster.
  const double k_fast = kernel_value(KernelKind::RBF, {0.0, 0.0}, {0.5, 0.0}, hp);
  const double k_slow = kernel_value(KernelKind::RBF, {0.0, 0.0}, {0.0, 0.5}, hp);
  EXPECT_LT(k_fast, 0.01);
  EXPECT_GT(k_slow, 0.99);
}

TEST(Kernels, LengthscaleArityChecked) {
  const auto hp = GpHyperparams::isotropic(2);
  EXPECT_THROW(kernel_value(KernelKind::RBF, {0.0}, {1.0}, hp), std::invalid_argument);
}

TEST(Kernels, CrossVectorShape) {
  linalg::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 0.2 * static_cast<double>(i);
  const auto hp = GpHyperparams::isotropic(1, 0.3);
  const auto k = kernel_cross(KernelKind::Matern52, x, {0.4}, hp);
  ASSERT_EQ(k.size(), 5u);
  // Maximum at the matching training point.
  EXPECT_NEAR(k[2], 1.0, 1e-9);
  EXPECT_GT(k[2], k[0]);
  EXPECT_GT(k[2], k[4]);
}

TEST(Kernels, Matern52SmootherThanMatern32Nearby) {
  const auto hp = GpHyperparams::isotropic(1, 0.5);
  // At small distances Matern52 stays higher (smoother decay start).
  const double k52 = kernel_value(KernelKind::Matern52, {0.0}, {0.1}, hp);
  const double k32 = kernel_value(KernelKind::Matern32, {0.0}, {0.1}, hp);
  EXPECT_GT(k52, k32);
}

TEST(Kernels, Names) {
  EXPECT_STREQ(to_string(KernelKind::RBF), "rbf");
  EXPECT_STREQ(to_string(KernelKind::Matern32), "matern32");
  EXPECT_STREQ(to_string(KernelKind::Matern52), "matern52");
}

}  // namespace
}  // namespace tunekit::bo
