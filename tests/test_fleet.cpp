// Fleet subsystem tests: registry liveness/backoff policy (injected time,
// no sleeping), shard assignment stability, net deadlines, the
// tunekit-fleet-v1 wire codec, and dispatcher + node-agent integration over
// real loopback sockets with injected synthetic backends.

#include "fleet/dispatcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "fleet/node_agent.hpp"
#include "fleet/registry.hpp"
#include "fleet/remote_worker.hpp"
#include "net/deadline.hpp"
#include "robust/eval_backend.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"

namespace tunekit::fleet {
namespace {

using robust::EvalOutcome;

// --- NodeRegistry: liveness + re-admission policy, time injected. ---

TEST(NodeRegistry, AdmitHeartbeatExpire) {
  RegistryOptions opt;
  opt.heartbeat_timeout_s = 5.0;
  NodeRegistry reg(opt);

  EXPECT_TRUE(reg.admit("n1", 4, /*now=*/0.0).ok);
  EXPECT_TRUE(reg.alive("n1"));
  EXPECT_EQ(reg.nodes_alive(), 1u);
  EXPECT_EQ(reg.slots_total(), 4u);

  EXPECT_TRUE(reg.heartbeat("n1", /*busy=*/2, /*now=*/3.0));
  // Within the deadline of the last heartbeat: nothing expires.
  EXPECT_TRUE(reg.expire(/*now=*/7.0).empty());
  // Silent past the deadline: expired exactly once.
  const auto dead = reg.expire(/*now=*/8.5);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "n1");
  EXPECT_FALSE(reg.alive("n1"));
  EXPECT_EQ(reg.slots_total(), 0u);
  // A dead node's heartbeat is refused — the dispatcher drops that link.
  EXPECT_FALSE(reg.heartbeat("n1", 0, 9.0));
  EXPECT_FALSE(reg.heartbeat("never-registered", 0, 9.0));
  // expire() is idempotent.
  EXPECT_TRUE(reg.expire(10.0).empty());
}

TEST(NodeRegistry, ReadmissionBackoffDoublesAndResets) {
  RegistryOptions opt;
  opt.readmit_base_s = 1.0;
  opt.readmit_max_s = 60.0;
  NodeRegistry reg(opt);

  ASSERT_TRUE(reg.admit("n1", 2, 0.0).ok);
  reg.mark_dead("n1", 10.0);

  // First death: one base-length backoff window.
  auto refused = reg.admit("n1", 2, 10.5);
  EXPECT_FALSE(refused.ok);
  EXPECT_GT(refused.retry_after_s, 0.0);
  EXPECT_FALSE(refused.reason.empty());
  ASSERT_TRUE(reg.admit("n1", 2, 11.1).ok);

  // Second consecutive death: the window doubles.
  reg.mark_dead("n1", 20.0);
  EXPECT_FALSE(reg.admit("n1", 2, 21.1).ok);
  ASSERT_TRUE(reg.admit("n1", 2, 22.1).ok);

  // A delivered result clears the streak: the next backoff is base again.
  reg.record_eval("n1", /*ok=*/false);  // any result counts, even a failure
  reg.mark_dead("n1", 30.0);
  EXPECT_TRUE(reg.admit("n1", 2, 31.1).ok);
}

TEST(NodeRegistry, ReadmissionBackoffJitterIsDeterministicAndSubtractOnly) {
  RegistryOptions opt;
  opt.readmit_base_s = 10.0;
  opt.readmit_max_s = 60.0;

  // Same id, fresh registry: the jitter is a pure function of (id, deaths),
  // so a failing run can be replayed exactly.
  double retry[2] = {0.0, 0.0};
  for (int run = 0; run < 2; ++run) {
    NodeRegistry reg(opt);
    ASSERT_TRUE(reg.admit("jitter-node", 4, 0.0).ok);
    reg.mark_dead("jitter-node", 100.0);
    const auto refused = reg.admit("jitter-node", 4, 100.0);
    ASSERT_FALSE(refused.ok);
    retry[run] = refused.retry_after_s;
  }
  EXPECT_DOUBLE_EQ(retry[0], retry[1]);
  // Subtract-only: the window shrinks by at most 20% and never grows, so the
  // advertised exponential backoff stays an upper bound.
  EXPECT_GE(retry[0], 0.8 * opt.readmit_base_s);
  EXPECT_LE(retry[0], opt.readmit_base_s);

  // Different ids land at different points of the window — that spread is
  // the whole point (no re-admission stampede after a correlated outage).
  NodeRegistry reg(opt);
  ASSERT_TRUE(reg.admit("other-node", 4, 0.0).ok);
  reg.mark_dead("other-node", 100.0);
  const auto other = reg.admit("other-node", 4, 100.0);
  ASSERT_FALSE(other.ok);
  EXPECT_NE(other.retry_after_s, retry[0]);
}

// --- CircuitBreaker: the per-node trip/cool-down/probe state machine. ---

TEST(CircuitBreaker, TripsAtErrorRateAndRecoversThroughHalfOpenProbe) {
  BreakerOptions opt;
  opt.window = 8;
  opt.min_samples = 4;
  opt.error_rate_open = 0.5;
  opt.open_duration_s = 5.0;
  opt.half_open_probes = 1;
  CircuitBreaker cb(opt);
  double t = 100.0;

  EXPECT_TRUE(cb.allow(t));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(cb.record(true, 0.01, t));
  EXPECT_EQ(cb.state(t), BreakerState::Closed);

  // Failures trip the breaker exactly when the window error rate reaches the
  // threshold (4 ok + 4 failed = 0.5) — not one record earlier.
  EXPECT_FALSE(cb.record(false, 0.01, t));
  EXPECT_FALSE(cb.record(false, 0.01, t));
  EXPECT_FALSE(cb.record(false, 0.01, t));
  EXPECT_TRUE(cb.record(false, 0.01, t));
  EXPECT_TRUE(cb.open_now(t));
  EXPECT_FALSE(cb.allow(t + 1.0)) << "open breaker must refuse work";

  // Cool-down elapsed: half-open admits exactly `half_open_probes` probes.
  EXPECT_TRUE(cb.allow(t + 5.5));
  EXPECT_EQ(cb.state(t + 5.5), BreakerState::HalfOpen);
  EXPECT_FALSE(cb.allow(t + 5.6)) << "only one probe may be in flight";

  // The probe succeeds: closed again, with the pre-trip history forgotten.
  EXPECT_FALSE(cb.record(true, 0.01, t + 5.7));
  EXPECT_EQ(cb.state(t + 5.8), BreakerState::Closed);
  EXPECT_FALSE(cb.open_now(t + 5.8));
  EXPECT_DOUBLE_EQ(cb.error_rate(), 0.0);
}

TEST(CircuitBreaker, FailedProbeReopensWithRestartedCoolDown) {
  BreakerOptions opt;
  opt.window = 4;
  opt.min_samples = 2;
  opt.error_rate_open = 0.5;
  opt.open_duration_s = 5.0;
  CircuitBreaker cb(opt);
  double t = 0.0;
  EXPECT_FALSE(cb.record(false, 0.0, t));
  EXPECT_TRUE(cb.record(false, 0.0, t));  // trips
  ASSERT_TRUE(cb.allow(t + 5.5));         // half-open probe
  EXPECT_TRUE(cb.record(false, 0.0, t + 5.6)) << "a failed probe re-opens";
  EXPECT_TRUE(cb.open_now(t + 5.7));
  EXPECT_FALSE(cb.allow(t + 9.0)) << "cool-down restarts from the re-open";
  EXPECT_TRUE(cb.allow(t + 11.0));
}

TEST(CircuitBreaker, MedianLatencyTripsEvenWhenEvalsSucceed) {
  BreakerOptions opt;
  opt.window = 8;
  opt.min_samples = 4;
  opt.error_rate_open = 1.1;  // error rate can never trip
  opt.latency_open_s = 0.5;
  CircuitBreaker cb(opt);
  // Successful but crawling evals: the node is useless even though nothing
  // "fails", and the latency median must catch that.
  EXPECT_FALSE(cb.record(true, 2.0, 0.0));
  EXPECT_FALSE(cb.record(true, 2.0, 0.0));
  EXPECT_FALSE(cb.record(true, 2.0, 0.0));
  EXPECT_TRUE(cb.record(true, 2.0, 0.0));
  EXPECT_TRUE(cb.open_now(0.0));
}

TEST(NodeRegistry, LiveDuplicateIdRefused) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.admit("n1", 2, 0.0).ok);
  EXPECT_FALSE(reg.admit("n1", 2, 1.0).ok);
  // After death (and backoff) the id is reusable.
  reg.mark_dead("n1", 2.0);
  EXPECT_TRUE(reg.admit("n1", 8, 100.0).ok);
  EXPECT_EQ(reg.slots_total(), 8u);
}

TEST(NodeRegistry, SnapshotCarriesEvalCounts) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.admit("n1", 2, 0.0).ok);
  reg.record_eval("n1", true);
  reg.record_eval("n1", true);
  reg.record_eval("n1", false);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].evals_ok, 2u);
  EXPECT_EQ(snap[0].evals_failed, 1u);
  const json::Value j = reg.to_json();
  ASSERT_TRUE(j.contains("nodes"));
  EXPECT_EQ(j.at("nodes").as_array().size(), 1u);
}

// --- Shard assignment: stable, in-range, and non-degenerate. ---

TEST(ShardOf, StableInRangeAndSpreads) {
  const std::size_t n = 8;
  std::set<std::size_t> used;
  for (int i = 0; i < 256; ++i) {
    const std::string id = "s" + std::to_string(i);
    const std::size_t shard = common::shard_of(id, n);
    EXPECT_LT(shard, n);
    // Deterministic: the same id always lands on the same shard.
    EXPECT_EQ(shard, common::shard_of(id, n));
    used.insert(shard);
  }
  // FNV-1a over 256 ids must touch every one of 8 shards.
  EXPECT_EQ(used.size(), n);
  // Degenerate shard counts collapse to shard 0.
  EXPECT_EQ(common::shard_of("anything", 1), 0u);
  EXPECT_EQ(common::shard_of("anything", 0), 0u);
}

// --- net::Deadline ---

TEST(Deadline, ExpiryAndRemaining) {
  const auto d = net::Deadline::after(0.05);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);

  const auto forever = net::Deadline::infinite();
  EXPECT_FALSE(forever.expired());
  EXPECT_LT(0.0, forever.remaining_seconds());
}

// --- Wire codec: eval/result round trips. ---

TEST(FleetWire, EvalMessageCarriesConfigAndDeadline) {
  const search::Config config = {1.5, -2.0, 8.0};
  const json::Value msg = eval_message(42, config, 12.5);
  EXPECT_EQ(msg.at("op").as_string(), "eval");
  EXPECT_EQ(static_cast<std::uint64_t>(msg.at("id").as_number()), 42u);
  EXPECT_DOUBLE_EQ(msg.at("deadline_s").as_number(), 12.5);
  const auto& arr = msg.at("config").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), -2.0);
  // An infinite deadline is simply absent from the wire.
  EXPECT_FALSE(eval_message(1, config, std::numeric_limits<double>::infinity())
                   .contains("deadline_s"));
}

TEST(FleetWire, ResultRoundTripOk) {
  robust::SandboxResult r;
  r.outcome = EvalOutcome::Ok;
  r.value = 3.25;
  r.cost_seconds = 0.5;
  r.dispersion = 0.01;
  r.worker_slot = 2;
  r.regions.total = 3.25;
  r.regions.regions["fft"] = 2.0;
  r.regions.regions["mix"] = 1.25;

  const json::Value wire = result_message(7, r);
  EXPECT_EQ(wire.at("op").as_string(), "result");
  const robust::SandboxResult back = result_from_wire(wire);
  EXPECT_EQ(back.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(back.value, 3.25);
  EXPECT_DOUBLE_EQ(back.cost_seconds, 0.5);
  EXPECT_DOUBLE_EQ(back.dispersion, 0.01);
  EXPECT_EQ(back.worker_slot, 2);
  EXPECT_FALSE(back.worker_died);
  EXPECT_DOUBLE_EQ(back.regions.total, 3.25);
  ASSERT_EQ(back.regions.regions.size(), 2u);
  EXPECT_DOUBLE_EQ(back.regions.regions.at("fft"), 2.0);
}

TEST(FleetWire, ResultRoundTripFailureCarriesDeath) {
  robust::SandboxResult r;
  r.outcome = EvalOutcome::Crashed;
  r.error = "signal 11";
  r.worker_died = true;
  const robust::SandboxResult back = result_from_wire(result_message(9, r));
  EXPECT_EQ(back.outcome, EvalOutcome::Crashed);
  EXPECT_EQ(back.error, "signal 11");
  EXPECT_TRUE(back.worker_died);
}

TEST(FleetWire, MalformedResultsClassifyInvalidConfig) {
  // Unknown outcome string.
  json::Object bad;
  bad["op"] = json::Value(std::string("result"));
  bad["id"] = json::Value(1.0);
  bad["outcome"] = json::Value(std::string("exploded"));
  EXPECT_EQ(result_from_wire(json::Value(bad)).outcome, EvalOutcome::InvalidConfig);
  // "ok" without a value is unusable too.
  bad["outcome"] = json::Value(std::string("ok"));
  EXPECT_EQ(result_from_wire(json::Value(std::move(bad))).outcome,
            EvalOutcome::InvalidConfig);
}

// --- Dispatcher + agents over loopback, synthetic backends injected. ---

/// Thread-safe counting backend: value = sum of coordinates. A designated
/// "crash" first coordinate reports a worker death, which the dispatcher's
/// per-config quarantine must act on.
class SyntheticBackend final : public robust::EvalBackend {
 public:
  explicit SyntheticBackend(double delay_ms = 0.0, double crash_coord = NAN)
      : delay_ms_(delay_ms), crash_coord_(crash_coord) {}

  robust::SandboxResult evaluate(const search::Config& config,
                                 double /*deadline_seconds*/) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (delay_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(delay_ms_ * 1000.0)));
    }
    robust::SandboxResult r;
    if (!config.empty() && !std::isnan(crash_coord_) &&
        config[0] == crash_coord_) {
      r.outcome = EvalOutcome::Crashed;
      r.error = "synthetic crash";
      r.worker_died = true;
      return r;
    }
    double sum = 0.0;
    for (const double c : config) sum += c;
    r.outcome = EvalOutcome::Ok;
    r.value = sum;
    r.cost_seconds = delay_ms_ / 1e3;
    r.regions.total = sum;
    return r;
  }

  bool healthy() const override { return true; }
  std::size_t concurrency() const override { return 2; }
  std::size_t calls() const { return calls_.load(); }

 private:
  double delay_ms_;
  double crash_coord_;
  std::atomic<std::size_t> calls_{0};
};

struct AgentHandle {
  std::shared_ptr<SyntheticBackend> backend;
  std::unique_ptr<NodeAgent> agent;
  std::thread thread;

  void stop_join() {
    if (agent) agent->stop();
    if (thread.joinable()) thread.join();
  }
};

AgentHandle start_agent(std::uint16_t port, const std::string& id,
                        std::size_t slots, double delay_ms = 0.0,
                        double crash_coord = NAN) {
  AgentHandle h;
  h.backend = std::make_shared<SyntheticBackend>(delay_ms, crash_coord);
  NodeAgentOptions opt;
  opt.host = "127.0.0.1";
  opt.port = port;
  opt.node_id = id;
  opt.slots = slots;
  opt.backend = h.backend;
  opt.reconnect_base_s = 0.05;
  opt.reconnect_max_s = 0.2;
  h.agent = std::make_unique<NodeAgent>(opt);
  NodeAgent* raw = h.agent.get();
  h.thread = std::thread([raw] { raw->run(); });
  return h;
}

void wait_nodes(const FleetDispatcher& d, std::size_t n, double timeout_s = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (d.registry().nodes_alive() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(d.registry().nodes_alive(), n);
}

DispatcherOptions fast_dispatcher_options() {
  DispatcherOptions opt;
  opt.port = 0;
  opt.heartbeat_interval_s = 0.1;
  opt.registry.heartbeat_timeout_s = 1.0;
  opt.registry.readmit_base_s = 0.1;
  return opt;
}

TEST(FleetDispatcher, EvaluatesAcrossNodes) {
  FleetDispatcher dispatcher(fast_dispatcher_options());
  auto a = start_agent(dispatcher.port(), "node-a", 2);
  auto b = start_agent(dispatcher.port(), "node-b", 2);
  wait_nodes(dispatcher, 2);
  EXPECT_EQ(dispatcher.concurrency(), 4u);

  // Concurrent evaluations spread over both nodes and all come back right.
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&dispatcher, &ok, i] {
      const search::Config config = {static_cast<double>(i), 1.0};
      const auto r = dispatcher.evaluate(config, 30.0);
      if (r.outcome == EvalOutcome::Ok &&
          r.value == static_cast<double>(i) + 1.0) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 16u);
  EXPECT_EQ(a.backend->calls() + b.backend->calls(), 16u);
  // Both nodes did real work (16 evals over 2x2 slots cannot be one-sided:
  // the free-slot pump drains the queue onto whichever node is idle).
  EXPECT_GT(a.backend->calls(), 0u);
  EXPECT_GT(b.backend->calls(), 0u);

  const json::Value status = dispatcher.status_json();
  EXPECT_EQ(status.at("nodes").as_array().size(), 2u);

  a.stop_join();
  b.stop_join();
  dispatcher.stop();
}

TEST(FleetDispatcher, SchedulerRunsSessionThroughFleet) {
  auto dispatcher = std::make_shared<FleetDispatcher>(fast_dispatcher_options());
  auto a = start_agent(dispatcher->port(), "node-a", 2);
  wait_nodes(*dispatcher, 1);

  search::SearchSpace space;
  space.add(search::ParamSpec::real("x", -2.0, 2.0, 0.0));
  space.add(search::ParamSpec::real("y", -2.0, 2.0, 0.0));
  service::SessionOptions sopt;
  sopt.max_evals = 24;
  sopt.backend = service::SessionBackend::Random;
  sopt.seed = 7;
  service::TuningSession session(space, sopt);

  service::SchedulerOptions opt;
  opt.backend = dispatcher;
  const auto result = service::EvalScheduler(opt).run(session);
  EXPECT_EQ(result.evaluations, 24u);
  EXPECT_TRUE(std::isfinite(result.best_value));
  EXPECT_EQ(a.backend->calls(), 24u);

  a.stop_join();
  dispatcher->stop();
}

TEST(FleetDispatcher, BackendlessSchedulerRunThrows) {
  search::SearchSpace space;
  space.add(search::ParamSpec::real("x", 0.0, 1.0, 0.5));
  service::SessionOptions sopt;
  sopt.max_evals = 4;
  service::TuningSession session(space, sopt);
  service::EvalScheduler scheduler{service::SchedulerOptions{}};
  EXPECT_THROW(scheduler.run(session), std::invalid_argument);
}

TEST(FleetDispatcher, QuarantinesCrashingConfigFleetWide) {
  auto opt = fast_dispatcher_options();
  opt.quarantine_after = 2;
  FleetDispatcher dispatcher(opt);
  auto a = start_agent(dispatcher.port(), "node-a", 2, /*delay_ms=*/0.0,
                       /*crash_coord=*/13.0);
  wait_nodes(dispatcher, 1);

  const search::Config poison = {13.0, 0.0};
  EXPECT_EQ(dispatcher.evaluate(poison, 30.0).outcome, EvalOutcome::Crashed);
  EXPECT_EQ(dispatcher.evaluate(poison, 30.0).outcome, EvalOutcome::Crashed);
  const std::size_t served = a.backend->calls();
  // Third attempt is refused dispatcher-side: no node ever sees it.
  const auto refused = dispatcher.evaluate(poison, 30.0);
  EXPECT_EQ(refused.outcome, EvalOutcome::Crashed);
  EXPECT_NE(refused.error.find("quarantined"), std::string::npos);
  EXPECT_EQ(a.backend->calls(), served);
  // Healthy configs still flow.
  EXPECT_EQ(dispatcher.evaluate({1.0, 1.0}, 30.0).outcome, EvalOutcome::Ok);

  a.stop_join();
  dispatcher.stop();
}

TEST(FleetDispatcher, NoNodesFailsClassifiedAfterTimeout) {
  auto opt = fast_dispatcher_options();
  opt.no_nodes_timeout_s = 0.3;
  FleetDispatcher dispatcher(opt);
  const auto r = dispatcher.evaluate({1.0}, 5.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_NE(r.error.find("no fleet nodes"), std::string::npos);
  // Empty fleet still reports one slot so schedulers keep a thread ready.
  EXPECT_EQ(dispatcher.concurrency(), 1u);
  dispatcher.stop();
}

TEST(FleetDispatcher, RedispatchesInflightWorkOfDeadNode) {
  auto opt = fast_dispatcher_options();
  opt.registry.heartbeat_timeout_s = 0.6;
  FleetDispatcher dispatcher(opt);
  // Victim is slow enough that work is reliably in flight when it dies.
  auto victim = start_agent(dispatcher.port(), "victim", 2, /*delay_ms=*/300.0);
  wait_nodes(dispatcher, 1);

  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&dispatcher, &ok, i] {
      const auto r = dispatcher.evaluate({static_cast<double>(i)}, 60.0);
      if (r.outcome == EvalOutcome::Ok) ok.fetch_add(1);
    });
  }
  // Let the victim pick work up, then drop it mid-eval and bring up a healthy
  // replacement to steal the re-queued tickets.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  victim.stop_join();
  auto rescue = start_agent(dispatcher.port(), "rescue", 2);
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok.load(), 4u);
  EXPECT_GE(dispatcher.redispatches(), 1u);
  EXPECT_GT(rescue.backend->calls(), 0u);

  rescue.stop_join();
  dispatcher.stop();
}

}  // namespace
}  // namespace tunekit::fleet
