// Process-sandbox tests: every row of the wait-status → EvalOutcome
// classification matrix, exercised against the real crash fixture binary
// (tests/crash_fixture.cpp), plus worker restart, restart-budget exhaustion,
// and crash quarantine at the pool level.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <string>

#include "core/app_registry.hpp"
#include "robust/process_sandbox.hpp"
#include "robust/quarantine.hpp"
#include "robust/worker_pool.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define TUNEKIT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TUNEKIT_ASAN 1
#endif
#endif

namespace {

using namespace tunekit;
using robust::EvalOutcome;
using robust::SandboxOptions;
using robust::SandboxResult;
using robust::WorkerPool;

SandboxOptions fixture_options() {
  SandboxOptions opts;
  opts.argv = {TUNEKIT_CRASH_FIXTURE_BIN};
  opts.restart_backoff_seconds = 0.001;
  opts.restart_backoff_max_seconds = 0.01;
  if (const char* dir = std::getenv("TUNEKIT_SANDBOX_LOG_DIR")) {
    opts.stderr_path = std::string(dir) + "/crash_fixture.stderr.log";
  }
  return opts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

#define REQUIRE_SANDBOX()                                            \
  if (!robust::process_sandbox_supported()) {                        \
    GTEST_SKIP() << "process sandbox unsupported on this platform"; \
  }

TEST(ProcessSandbox, OkReplyCarriesValueAndRegions) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({0.0, 3.5}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Ok);
  EXPECT_FALSE(r.worker_died);
  EXPECT_DOUBLE_EQ(r.value, 3.5);
  EXPECT_DOUBLE_EQ(r.regions.total, 3.5);
  ASSERT_EQ(r.regions.regions.size(), 2u);
  EXPECT_DOUBLE_EQ(r.regions.regions.at("a"), 1.75);
  EXPECT_DOUBLE_EQ(r.regions.regions.at("b"), 1.75);
  EXPECT_EQ(pool.stats().ok.load(), 1u);
}

TEST(ProcessSandbox, SegfaultClassifiedAsCrashedWithSignal) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({1.0, 0.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(r.worker_died);
  EXPECT_EQ(r.term_signal, SIGSEGV);
  EXPECT_NE(r.error.find("signal"), std::string::npos) << r.error;
}

TEST(ProcessSandbox, AbortClassifiedAsCrashed) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({2.0, 0.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(r.worker_died);
  EXPECT_EQ(r.term_signal, SIGABRT);
}

TEST(ProcessSandbox, NonzeroExitClassifiedAsInvalidConfig) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({3.0, 7.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::InvalidConfig);
  EXPECT_TRUE(r.worker_died);
  EXPECT_EQ(r.exit_code, 7);
  EXPECT_NE(r.error.find("exited with code 7"), std::string::npos) << r.error;
}

TEST(ProcessSandbox, CleanExitWithoutReplyClassifiedAsCrashed) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({3.0, 0.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(r.worker_died);
  EXPECT_NE(r.error.find("without replying"), std::string::npos) << r.error;
}

TEST(ProcessSandbox, HungWorkerIsKilledAtDeadline) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const double deadline = 0.5;
  const auto t0 = std::chrono::steady_clock::now();
  const SandboxResult r = pool.evaluate({4.0, 0.0}, deadline);
  const double elapsed = seconds_since(t0);
  EXPECT_EQ(r.outcome, EvalOutcome::TimedOut);
  EXPECT_TRUE(r.worker_died);
  // The SIGKILL must land promptly: within the deadline plus a generous
  // epsilon for scheduling noise, far below the "waits forever" failure mode.
  EXPECT_LT(elapsed, deadline + 1.5);
  EXPECT_GE(elapsed, deadline * 0.5);
}

TEST(ProcessSandbox, MemoryHogDiesUnderRlimit) {
  REQUIRE_SANDBOX();
#ifdef TUNEKIT_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan's shadow memory";
#else
  SandboxOptions opts = fixture_options();
  opts.mem_limit_mb = 256.0;
  WorkerPool pool(opts, 1);
  const SandboxResult r = pool.evaluate({5.0, 0.0}, 20.0);
  // malloc failure aborts (SIGABRT) or the touch faults (SIGSEGV); either
  // way the limit turned unbounded growth into a contained signal death.
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(r.worker_died);
#endif
}

TEST(ProcessSandbox, GarbageReplyClassifiedAsInvalidConfig) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  const SandboxResult r = pool.evaluate({6.0, 0.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::InvalidConfig);
  EXPECT_TRUE(r.worker_died);  // the protocol is broken: worker was killed
  EXPECT_NE(r.error.find("malformed"), std::string::npos) << r.error;
}

TEST(ProcessSandbox, SilentWorkerTripsLivenessTimeout) {
  REQUIRE_SANDBOX();
  SandboxOptions opts = fixture_options();
  opts.liveness_timeout_seconds = 0.5;
  WorkerPool pool(opts, 1);
  const auto t0 = std::chrono::steady_clock::now();
  const SandboxResult r = pool.evaluate({7.0, 0.0}, 30.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(r.worker_died);
  EXPECT_NE(r.error.find("silent"), std::string::npos) << r.error;
  EXPECT_LT(seconds_since(t0), 5.0);  // long before the 30 s deadline
}

TEST(ProcessSandbox, WorkerRestartsAfterCrash) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1);
  EXPECT_EQ(pool.evaluate({1.0, 0.0}, 10.0).outcome, EvalOutcome::Crashed);
  const SandboxResult r = pool.evaluate({0.0, 2.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
  EXPECT_GE(pool.stats().restarts.load(), 1u);
  EXPECT_TRUE(pool.healthy());
}

TEST(ProcessSandbox, RestartBudgetExhaustionFastFails) {
  REQUIRE_SANDBOX();
  SandboxOptions opts = fixture_options();
  opts.max_restarts = 1;
  // quarantine_after=0 disables quarantine so the same config can keep
  // crashing and exhaust the restart budget instead.
  WorkerPool pool(opts, 1, /*quarantine_after=*/0);
  SandboxResult r;
  for (int i = 0; i < 4; ++i) r = pool.evaluate({1.0, 0.0}, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_NE(r.error.find("restart budget exhausted"), std::string::npos)
      << r.error;
  EXPECT_FALSE(pool.healthy());
}

TEST(ProcessSandbox, QuarantineRefusesRepeatOffender) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1, /*quarantine_after=*/2);
  const search::Config offender = {1.0, 0.0};
  EXPECT_EQ(pool.evaluate(offender, 10.0).outcome, EvalOutcome::Crashed);
  EXPECT_FALSE(pool.quarantine().quarantined(offender));
  EXPECT_EQ(pool.evaluate(offender, 10.0).outcome, EvalOutcome::Crashed);
  EXPECT_TRUE(pool.quarantine().quarantined(offender));

  const SandboxResult r = pool.evaluate(offender, 10.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_FALSE(r.worker_died);  // refused pre-dispatch, no worker touched
  EXPECT_NE(r.error.find("quarantined"), std::string::npos) << r.error;
  EXPECT_EQ(pool.stats().dispatched.load(), 2u);
  EXPECT_EQ(pool.stats().quarantine_hits.load(), 1u);

  // A different config still runs fine.
  EXPECT_EQ(pool.evaluate({0.0, 1.0}, 10.0).outcome, EvalOutcome::Ok);
}

TEST(ProcessSandbox, TimeoutsDoNotCountTowardQuarantine) {
  REQUIRE_SANDBOX();
  WorkerPool pool(fixture_options(), 1, /*quarantine_after=*/2);
  const search::Config hanger = {4.0, 0.0};
  EXPECT_EQ(pool.evaluate(hanger, 0.3).outcome, EvalOutcome::TimedOut);
  EXPECT_EQ(pool.evaluate(hanger, 0.3).outcome, EvalOutcome::TimedOut);
  const SandboxResult r = pool.evaluate(hanger, 0.3);
  EXPECT_EQ(r.outcome, EvalOutcome::TimedOut);  // still dispatched, not refused
  EXPECT_EQ(pool.stats().quarantine_hits.load(), 0u);
}

TEST(ProcessSandbox, CreateDegradesOnMissingBinary) {
  robust::IsolationOptions iso;
  iso.mode = robust::IsolationMode::Process;
  iso.sandbox.argv = {"/nonexistent/tunekit_worker_that_is_not_there"};
  EXPECT_EQ(WorkerPool::create(iso, 2), nullptr);
}

TEST(ProcessSandbox, CreateReturnsNullInThreadMode) {
  robust::IsolationOptions iso;  // defaults to Thread
  iso.sandbox.argv = {TUNEKIT_CRASH_FIXTURE_BIN};
  EXPECT_EQ(WorkerPool::create(iso, 2), nullptr);
}

TEST(ProcessSandbox, RealWorkerEvaluatesSynthApp) {
  REQUIRE_SANDBOX();
  robust::IsolationOptions iso;
  iso.mode = robust::IsolationMode::Process;
  iso.sandbox.argv = {TUNEKIT_WORKER_BIN, "--app", "synth:case1", "--seed", "7"};
  auto pool = WorkerPool::create(iso, 1);
  ASSERT_NE(pool, nullptr);
  // synth:case1's space defaults are a valid config of the right arity.
  core::AppBundle bundle = core::make_builtin_app("synth:case1", 7);
  const SandboxResult r = pool->evaluate(bundle.app->space().defaults(), 30.0);
  EXPECT_EQ(r.outcome, EvalOutcome::Ok) << r.error;
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_FALSE(r.regions.regions.empty());
}

TEST(ProcessSandbox, RealWorkerRejectsWrongArity) {
  REQUIRE_SANDBOX();
  robust::IsolationOptions iso;
  iso.mode = robust::IsolationMode::Process;
  iso.sandbox.argv = {TUNEKIT_WORKER_BIN, "--app", "synth:case1", "--seed", "7"};
  auto pool = WorkerPool::create(iso, 1);
  ASSERT_NE(pool, nullptr);
  const SandboxResult r = pool->evaluate({1.0}, 30.0);
  EXPECT_EQ(r.outcome, EvalOutcome::InvalidConfig);
  EXPECT_FALSE(r.worker_died);  // polite protocol-level rejection
}

TEST(IsolationMode, StringRoundTrip) {
  EXPECT_EQ(robust::isolation_from_string("thread"), robust::IsolationMode::Thread);
  EXPECT_EQ(robust::isolation_from_string("process"), robust::IsolationMode::Process);
  EXPECT_STREQ(robust::to_string(robust::IsolationMode::Thread), "thread");
  EXPECT_STREQ(robust::to_string(robust::IsolationMode::Process), "process");
  EXPECT_THROW(robust::isolation_from_string("container"), std::invalid_argument);
}

TEST(CrashQuarantine, ThresholdAndRestore) {
  robust::CrashQuarantine q(2);
  const search::Config a = {1.0, 2.0};
  const search::Config b = {1.0, 2.000001};
  EXPECT_EQ(q.record_crash(a), 1u);
  EXPECT_FALSE(q.quarantined(a));
  EXPECT_EQ(q.record_crash(a), 2u);
  EXPECT_TRUE(q.quarantined(a));
  EXPECT_FALSE(q.quarantined(b));  // bit-exact keying: near-misses distinct
  EXPECT_EQ(q.size(), 1u);

  // Journal-restore path: quarantine_now is immediately effective.
  robust::CrashQuarantine restored(2);
  restored.quarantine_now(a);
  EXPECT_TRUE(restored.quarantined(a));

  robust::CrashQuarantine disabled(0);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.record_crash(a), 0u);
  EXPECT_FALSE(disabled.quarantined(a));
}

}  // namespace
