#include "search/param.hpp"

#include <gtest/gtest.h>

namespace tunekit::search {
namespace {

TEST(ParamSpec, RealBasics) {
  const auto p = ParamSpec::real("x", -2.0, 3.0, 0.5);
  EXPECT_EQ(p.kind(), ParamKind::Real);
  EXPECT_EQ(p.cardinality(), 0u);
  EXPECT_TRUE(p.is_valid_value(0.0));
  EXPECT_TRUE(p.is_valid_value(-2.0));
  EXPECT_FALSE(p.is_valid_value(3.1));
  EXPECT_DOUBLE_EQ(p.snap(100.0), 3.0);
  EXPECT_DOUBLE_EQ(p.snap(-100.0), -2.0);
}

TEST(ParamSpec, RealValidation) {
  EXPECT_THROW(ParamSpec::real("x", 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::real("x", 0.0, 1.0, 2.0), std::invalid_argument);
}

TEST(ParamSpec, RealUnitRoundTrip) {
  const auto p = ParamSpec::real("x", -50.0, 50.0, 0.0);
  for (double v : {-50.0, -12.3, 0.0, 27.5, 50.0}) {
    EXPECT_NEAR(p.from_unit(p.to_unit(v)), v, 1e-9);
  }
  EXPECT_DOUBLE_EQ(p.from_unit(0.0), -50.0);
  EXPECT_DOUBLE_EQ(p.from_unit(1.0), 50.0);
}

TEST(ParamSpec, IntegerBasics) {
  const auto p = ParamSpec::integer("n", 1, 32, 4);
  EXPECT_EQ(p.cardinality(), 32u);
  EXPECT_TRUE(p.is_valid_value(7));
  EXPECT_FALSE(p.is_valid_value(7.5));
  EXPECT_FALSE(p.is_valid_value(33));
  EXPECT_DOUBLE_EQ(p.snap(7.4), 7.0);
  EXPECT_DOUBLE_EQ(p.snap(100), 32.0);
}

TEST(ParamSpec, IntegerUnitRoundTrip) {
  const auto p = ParamSpec::integer("n", 1, 32, 4);
  for (double v = 1; v <= 32; ++v) {
    EXPECT_DOUBLE_EQ(p.from_unit(p.to_unit(v)), v);
  }
  // from_unit covers the full range uniformly.
  EXPECT_DOUBLE_EQ(p.from_unit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.from_unit(0.999999), 32.0);
}

TEST(ParamSpec, OrdinalBasics) {
  const auto p = ParamSpec::ordinal("tb", {32, 64, 128, 256}, 64);
  EXPECT_EQ(p.cardinality(), 4u);
  EXPECT_TRUE(p.is_valid_value(128));
  EXPECT_FALSE(p.is_valid_value(100));
  EXPECT_DOUBLE_EQ(p.snap(100), 128.0);  // nearest level
  EXPECT_DOUBLE_EQ(p.snap(90), 64.0);
  EXPECT_DOUBLE_EQ(p.snap(1e9), 256.0);
}

TEST(ParamSpec, OrdinalValidation) {
  EXPECT_THROW(ParamSpec::ordinal("x", {}, 0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::ordinal("x", {1, 1, 2}, 1), std::invalid_argument);
  EXPECT_THROW(ParamSpec::ordinal("x", {2, 1}, 1), std::invalid_argument);
  EXPECT_THROW(ParamSpec::ordinal("x", {1, 2}, 3), std::invalid_argument);
}

TEST(ParamSpec, OrdinalUnitRoundTrip) {
  const auto p = ParamSpec::ordinal("tb", {1, 2, 4, 8, 16}, 4);
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    EXPECT_DOUBLE_EQ(p.from_unit(p.to_unit(v)), v);
  }
  EXPECT_DOUBLE_EQ(p.from_unit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.from_unit(0.99), 16.0);
}

TEST(ParamSpec, CategoricalBasics) {
  const auto p = ParamSpec::categorical("algo", 3, 1);
  EXPECT_EQ(p.cardinality(), 3u);
  EXPECT_DOUBLE_EQ(p.default_value(), 1.0);
  EXPECT_TRUE(p.is_valid_value(0));
  EXPECT_TRUE(p.is_valid_value(2));
  EXPECT_FALSE(p.is_valid_value(3));
  EXPECT_THROW(ParamSpec::categorical("x", 0, 0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::categorical("x", 2, 2), std::invalid_argument);
}

TEST(ParamSpec, FromUnitClampsInput) {
  const auto p = ParamSpec::real("x", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(p.from_unit(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.from_unit(1.5), 1.0);
}

TEST(Pow2Levels, GeneratesLadder) {
  EXPECT_EQ(pow2_levels(32, 1024).size(), 6u);
  EXPECT_EQ(pow2_levels(1, 8), (std::vector<double>{1, 2, 4, 8}));
  EXPECT_THROW(pow2_levels(0, 8), std::invalid_argument);
  EXPECT_THROW(pow2_levels(16, 8), std::invalid_argument);
}

TEST(ParamKind, Names) {
  EXPECT_STREQ(to_string(ParamKind::Real), "real");
  EXPECT_STREQ(to_string(ParamKind::Integer), "integer");
  EXPECT_STREQ(to_string(ParamKind::Ordinal), "ordinal");
  EXPECT_STREQ(to_string(ParamKind::Categorical), "categorical");
}

}  // namespace
}  // namespace tunekit::search
