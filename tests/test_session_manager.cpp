// SessionManager tests: lifecycle over the JSON API surface, client-error
// mapping (404/409/422), restart resume from spec sidecars, LRU eviction of
// idle sessions, and — the critical property for a multi-client server —
// that concurrent ask/tell on one session never double-issues a candidate.

#include "net/session_manager.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tunekit::net {
namespace {

json::Value inline_space_spec(const std::string& id, std::size_t max_evals,
                              const std::string& backend = "random") {
  json::Object spec;
  if (!id.empty()) spec["id"] = json::Value(id);
  spec["backend"] = json::Value(backend);
  spec["max_evals"] = json::Value(max_evals);
  spec["seed"] = json::Value(7);
  spec["space"] = json::parse(
      "{\"params\": ["
      "{\"name\":\"x\",\"kind\":\"real\",\"lo\":-5,\"hi\":5,\"default\":0},"
      "{\"name\":\"y\",\"kind\":\"integer\",\"lo\":0,\"hi\":10,\"default\":5}"
      "]}");
  return json::Value(std::move(spec));
}

std::string fresh_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

int status_of(const std::function<void()>& op) {
  try {
    op();
  } catch (const ApiError& e) {
    return e.status();
  }
  return 0;
}

TEST(SessionManager, FullLifecycleOverJson) {
  SessionManager manager(SessionManagerOptions{});
  const json::Value created = manager.create(inline_space_spec("life", 4));
  EXPECT_EQ(created.at("id").as_string(), "life");
  EXPECT_EQ(created.at("backend").as_string(), "random");
  EXPECT_DOUBLE_EQ(created.at("space_size").as_number(), 2.0);

  const json::Value batch = manager.ask("life", 4);
  const auto& candidates = batch.at("candidates").as_array();
  ASSERT_EQ(candidates.size(), 4u);
  // Configs come back *named*, ready for an external evaluator.
  EXPECT_TRUE(candidates[0].at("config").contains("x"));
  EXPECT_TRUE(candidates[0].at("config").contains("y"));

  for (const auto& cand : candidates) {
    json::Object tell;
    tell["id"] = cand.at("id");
    tell["value"] = json::Value(cand.at("config").at("x").as_number());
    const json::Value reply = manager.tell("life", json::Value(std::move(tell)));
    EXPECT_TRUE(reply.at("accepted").as_bool());
  }

  const json::Value report = manager.report("life");
  EXPECT_EQ(report.at("state").as_string(), "exhausted");
  EXPECT_DOUBLE_EQ(report.at("completed").as_number(), 4.0);
  EXPECT_TRUE(report.contains("best_value"));
  EXPECT_TRUE(report.at("best_config").contains("x"));
  EXPECT_DOUBLE_EQ(report.at("metrics").at("tells").as_number(), 4.0);

  manager.close("life");
  EXPECT_EQ(status_of([&] { manager.report("life"); }), 404);
}

TEST(SessionManager, AppSpecsBuildBuiltinSpaces) {
  SessionManager manager(SessionManagerOptions{});
  json::Object spec;
  spec["app"] = json::Value(std::string("synth:case1"));
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(3);
  const json::Value created = manager.create(json::Value(std::move(spec)));
  EXPECT_DOUBLE_EQ(created.at("space_size").as_number(), 20.0);
}

TEST(SessionManager, ClientErrorsCarryHttpStatuses) {
  SessionManager manager(SessionManagerOptions{});
  // Unknown id -> 404 (also for ids that could never be valid).
  EXPECT_EQ(status_of([&] { manager.ask("ghost", 1); }), 404);
  EXPECT_EQ(status_of([&] { manager.ask("../etc/passwd", 1); }), 404);

  // Bad specs -> 422.
  EXPECT_EQ(status_of([&] { manager.create(json::parse("{}")); }), 422);
  EXPECT_EQ(status_of([&] {
              manager.create(json::parse("{\"app\":\"no-such-app\"}"));
            }),
            422);
  EXPECT_EQ(status_of([&] {
              manager.create(json::parse(
                  "{\"space\":{\"params\":[{\"name\":\"x\",\"kind\":\"warp\"}]}}"));
            }),
            422);
  EXPECT_EQ(status_of([&] {
              manager.create(json::parse("{\"id\":\"bad/slash\",\"space\":{}}"));
            }),
            422);

  // Duplicate id -> 409.
  manager.create(inline_space_spec("dup", 2));
  EXPECT_EQ(status_of([&] { manager.create(inline_space_spec("dup", 2)); }), 409);

  // Tell without id or config -> 422; unknown parameter names -> 422.
  EXPECT_EQ(status_of([&] { manager.tell("dup", json::parse("{}")); }), 422);
  EXPECT_EQ(status_of([&] {
              manager.tell("dup", json::parse("{\"config\":{\"zz\":1},\"value\":1}"));
            }),
            422);
}

TEST(SessionManager, SessionCapIs429) {
  SessionManagerOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  manager.create(inline_space_spec("a", 2));
  manager.create(inline_space_spec("b", 2));
  EXPECT_EQ(status_of([&] { manager.create(inline_space_spec("c", 2)); }), 429);
}

TEST(SessionManager, ResumesByIdAfterRestart) {
  const std::string dir = fresh_dir("tunekit_sm_restart");
  std::uint64_t first_eval_id = 0;
  {
    SessionManagerOptions options;
    options.journal_dir = dir;
    SessionManager manager(options);
    manager.create(inline_space_spec("surv", 6));
    const json::Value batch = manager.ask("surv", 2);
    const auto& cands = batch.at("candidates").as_array();
    ASSERT_EQ(cands.size(), 2u);
    first_eval_id = static_cast<std::uint64_t>(cands[0].at("id").as_number());
    json::Object tell;
    tell["id"] = cands[0].at("id");
    tell["value"] = json::Value(1.5);
    manager.tell("surv", json::Value(std::move(tell)));
    // cands[1] stays in flight across the "restart".
  }
  // A brand-new manager on the same journal dir has never seen "surv": the
  // spec sidecar + journal must fully rebuild it on first touch.
  SessionManagerOptions options;
  options.journal_dir = dir;
  SessionManager manager(options);
  const json::Value report = manager.report("surv");
  EXPECT_DOUBLE_EQ(report.at("completed").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(report.at("best_value").as_number(), 1.5);

  // The in-flight candidate is re-issued before anything new.
  const json::Value batch = manager.ask("surv", 4);
  const auto& cands = batch.at("candidates").as_array();
  ASSERT_FALSE(cands.empty());
  EXPECT_NE(static_cast<std::uint64_t>(cands[0].at("id").as_number()), first_eval_id);
  std::filesystem::remove_all(dir);
}

TEST(SessionManager, EvictsIdleSessionsAndResumesThemOnTouch) {
  const std::string dir = fresh_dir("tunekit_sm_evict");
  SessionManagerOptions options;
  options.journal_dir = dir;
  options.max_resident = 2;
  SessionManager manager(options);
  for (const char* id : {"e1", "e2", "e3", "e4"}) {
    manager.create(inline_space_spec(id, 4));
    json::Object tell;
    const json::Value batch = manager.ask(id, 1);
    tell["id"] = batch.at("candidates").as_array().at(0).at("id");
    tell["value"] = json::Value(2.0);
    manager.tell(id, json::Value(std::move(tell)));
  }
  EXPECT_LE(manager.resident(), 2u) << "idle sessions past the cap must be evicted";

  // Touching an evicted session transparently resumes it from its journal.
  const json::Value report = manager.report("e1");
  EXPECT_DOUBLE_EQ(report.at("completed").as_number(), 1.0);
  const json::Value list = manager.list();
  EXPECT_EQ(list.at("sessions").as_array().size(), 4u);
  std::filesystem::remove_all(dir);
}

TEST(SessionManager, InMemorySessionsAreNeverEvicted) {
  SessionManagerOptions options;
  options.max_resident = 1;  // no journal_dir: eviction would lose state
  SessionManager manager(options);
  manager.create(inline_space_spec("m1", 2));
  manager.create(inline_space_spec("m2", 2));
  EXPECT_EQ(manager.resident(), 2u);
}

// Satellite requirement: two clients interleaving ask/tell on one session
// must serialize correctly — every (candidate id, attempt) pair is issued to
// exactly one client, and the session runs to completion.
TEST(SessionManager, ConcurrentAskTellNeverDoubleIssues) {
  constexpr std::size_t kMaxEvals = 60;
  SessionManager manager(SessionManagerOptions{});
  manager.create(inline_space_spec("conc", kMaxEvals));

  std::mutex issued_mutex;
  std::set<std::pair<std::uint64_t, std::size_t>> issued;
  std::size_t duplicates = 0;

  auto client = [&]() {
    for (;;) {
      const json::Value batch = manager.ask("conc", 2);
      const auto& cands = batch.at("candidates").as_array();
      if (cands.empty()) {
        if (batch.at("state").as_string() != "active") return;
        std::this_thread::yield();
        continue;
      }
      for (const auto& cand : cands) {
        const auto key = std::make_pair(
            static_cast<std::uint64_t>(cand.at("id").as_number()),
            static_cast<std::size_t>(cand.at("attempt").as_number()));
        {
          std::lock_guard<std::mutex> lock(issued_mutex);
          if (!issued.insert(key).second) ++duplicates;
        }
        json::Object tell;
        tell["id"] = cand.at("id");
        tell["value"] = json::Value(cand.at("config").at("x").as_number());
        manager.tell("conc", json::Value(std::move(tell)));
      }
    }
  };

  std::thread a(client);
  std::thread b(client);
  a.join();
  b.join();

  EXPECT_EQ(duplicates, 0u) << "a candidate was issued to two clients";
  const json::Value report = manager.report("conc");
  EXPECT_EQ(report.at("state").as_string(), "exhausted");
  EXPECT_DOUBLE_EQ(report.at("completed").as_number(),
                   static_cast<double>(kMaxEvals));
  EXPECT_EQ(issued.size(), kMaxEvals);
}

}  // namespace
}  // namespace tunekit::net
