// Telemetry layer tests: metrics registry math, span nesting and cross-thread
// propagation, exporters, the disabled-path overhead guard, cross-process span
// stitching against the real tunekit_worker, and the session metrics snapshot
// surviving journal compaction + resume.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "core/app_registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "robust/process_sandbox.hpp"
#include "robust/worker_pool.hpp"
#include "search/eval_db.hpp"
#include "service/session.hpp"

namespace tunekit {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c_total", "a counter");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Get-or-create returns the same instance; help sticks from registration.
  EXPECT_EQ(&reg.counter("c_total"), &c);
  EXPECT_EQ(reg.help("c_total"), "a counter");

  obs::Gauge& g = reg.gauge("g");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, HistogramBucketAssignment) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // lower_bound semantics: a value equal to a bound lands in that bound's
  // bucket (le="1.0" includes 1.0), above the last bound → overflow.
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0, 100.0}) h.observe(v);
  h.observe(std::numeric_limits<double>::quiet_NaN());  // dropped

  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 9.0 + 100.0);
  EXPECT_EQ(h.bucket_count(0), 2u);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 2u);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 2u);  // (2, 4]
  EXPECT_EQ(h.bucket_count(3), 2u);  // overflow
}

TEST(Metrics, HistogramQuantileMath) {
  obs::Histogram empty({1.0, 2.0});
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));

  // 10 observations in (1, 2]: every quantile interpolates inside that bucket.
  obs::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  EXPECT_NEAR(h.quantile(0.5), 1.5, 1e-12);   // rank 5 of 10 → halfway
  EXPECT_NEAR(h.quantile(1.0), 2.0, 1e-12);   // top of the bucket
  EXPECT_NEAR(h.quantile(0.1), 1.1, 1e-12);

  // Ranks landing in the overflow bucket clamp to the last finite bound.
  obs::Histogram over({1.0, 2.0});
  over.observe(0.5);
  over.observe(50.0);
  over.observe(60.0);
  EXPECT_DOUBLE_EQ(over.quantile(0.99), 2.0);

  // First bucket interpolates from 0.
  obs::Histogram first({4.0});
  first.observe(1.0);
  first.observe(2.0);
  EXPECT_NEAR(first.quantile(0.5), 2.0, 1e-12);  // rank 1 of 2 → 0 + 0.5 * 4
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(Metrics, OutcomeCounterSanitizesNames) {
  obs::MetricsRegistry reg;
  obs::outcome_counter(reg, "timed-out").inc();
  EXPECT_EQ(reg.counter("tunekit_evals_timed_out_total").value(), 1u);
  obs::outcome_counter(reg, "ok").inc(3);
  EXPECT_EQ(reg.counter("tunekit_evals_ok_total").value(), 3u);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(Telemetry, DisabledRecordsNothing) {
  obs::Telemetry t;  // never enabled
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin_span("x"), 0u);
  EXPECT_EQ(t.record_span("y", 0, 0, 10), 0u);
  EXPECT_TRUE(t.spans().empty());
  // ScopedSpan tolerates null and disabled telemetry alike.
  obs::ScopedSpan null_span(nullptr, "a");
  obs::ScopedSpan disabled_span(&t, "b");
  EXPECT_EQ(null_span.id(), 0u);
  EXPECT_EQ(disabled_span.id(), 0u);
}

TEST(Telemetry, NestedScopedSpansInheritParents) {
  obs::Telemetry t;
  t.enable();
  {
    obs::ScopedSpan outer(&t, "methodology.run");
    EXPECT_EQ(obs::Telemetry::current_span(), outer.id());
    {
      obs::ScopedSpan inner(&t, "phase.sensitivity");
      EXPECT_NE(inner.id(), outer.id());
      obs::ScopedSpan leaf(&t, "eval");
      (void)leaf;
    }
    // inner closed: ambient span is back to outer.
    EXPECT_EQ(obs::Telemetry::current_span(), outer.id());
  }
  EXPECT_EQ(obs::Telemetry::current_span(), 0u);

  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 3u);
  obs::SpanId outer_id = 0, inner_id = 0;
  for (const auto& s : spans) {
    if (s.name == "methodology.run") outer_id = s.id;
    if (s.name == "phase.sensitivity") inner_id = s.id;
  }
  for (const auto& s : spans) {
    if (s.name == "methodology.run") {
      EXPECT_EQ(s.parent, 0u);
    } else if (s.name == "phase.sensitivity") {
      EXPECT_EQ(s.parent, outer_id);
    } else if (s.name == "eval") {
      EXPECT_EQ(s.parent, inner_id);
    }
  }
}

TEST(Telemetry, CurrentSpanScopeCrossesThreads) {
  obs::Telemetry t;
  t.enable();
  obs::ScopedSpan batch(&t, "scheduler.batch");
  const obs::SpanId parent = batch.id();

  std::thread worker([&] {
    // A fresh thread has no ambient span until seeded.
    EXPECT_EQ(obs::Telemetry::current_span(), 0u);
    obs::CurrentSpanScope ambient(parent);
    obs::ScopedSpan eval(&t, "eval");
    (void)eval;
  });
  worker.join();
  batch.end();

  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    if (s.name == "eval") {
      EXPECT_EQ(s.parent, parent);
      EXPECT_EQ(s.pid, 0);  // same-process span
    }
  }
}

TEST(Telemetry, RecordSpanImportsWorkerTimings) {
  obs::Telemetry t;
  t.enable();
  const obs::SpanId rpc = t.begin_span("worker.rpc", 0);
  const obs::SpanId imported = t.record_span("worker.objective", rpc, 100, 50,
                                             /*pid=*/4242);
  t.end_span(rpc);
  ASSERT_NE(imported, 0u);

  bool found = false;
  for (const auto& s : t.spans()) {
    if (s.name != "worker.objective") continue;
    found = true;
    EXPECT_EQ(s.parent, rpc);
    EXPECT_EQ(s.start_ns, 100u);
    EXPECT_EQ(s.dur_ns, 50u);
    EXPECT_EQ(s.pid, 4242);
  }
  EXPECT_TRUE(found);
}

TEST(Telemetry, BoundedBufferCountsDrops) {
  obs::Telemetry t;
  t.enable(/*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan s(&t, "span");
    (void)s;
  }
  EXPECT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.dropped_spans(), 6u);
}

// The contract every instrumented hot path relies on: with telemetry off, an
// evaluation pays one null check and nothing else. Budget is < 1 µs per eval;
// the real cost is a few ns, so the bound holds on any CI box.
TEST(Telemetry, DisabledOverheadUnderOneMicrosecond) {
  constexpr int kIters = 200000;
  obs::Telemetry* telemetry = nullptr;
  Stopwatch watch;
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedSpan eval_span(telemetry, "eval");
    const bool traced = telemetry != nullptr && telemetry->enabled();
    if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
    eval_span.end();
  }
  const double per_eval_us = watch.seconds() * 1e6 / kIters;
  EXPECT_LT(per_eval_us, 1.0) << "disabled telemetry costs " << per_eval_us
                              << " us per eval";

  // The disabled-but-present instance must be just as cheap (one relaxed load).
  obs::Telemetry present;
  telemetry = &present;
  watch.reset();
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedSpan eval_span(telemetry, "eval");
    const bool traced = telemetry != nullptr && telemetry->enabled();
    if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
    eval_span.end();
  }
  const double per_eval_disabled_us = watch.seconds() * 1e6 / kIters;
  EXPECT_LT(per_eval_disabled_us, 1.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, ChromeTraceEventsCarryHierarchy) {
  obs::Telemetry t;
  t.enable();
  {
    obs::ScopedSpan outer(&t, "methodology.run");
    obs::ScopedSpan inner(&t, "eval");
    (void)inner;
  }
  t.record_span("worker.objective", 0, 10, 5, /*pid=*/999);

  const json::Value doc = obs::chrome_trace(t);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  std::string outer_id;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    if (e.at("name").as_string() == "methodology.run") {
      outer_id = e.at("args").at("span").as_string();
    }
  }
  EXPECT_EQ(outer_id.size(), 16u);  // hex-encoded: doubles drop bits past 2^53
  for (const auto& e : events) {
    if (e.at("name").as_string() == "eval") {
      EXPECT_EQ(e.at("args").at("parent").as_string(), outer_id);
    }
    if (e.at("name").as_string() == "worker.objective") {
      EXPECT_EQ(e.at("pid").as_number(), 999.0);  // worker pid preserved
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 10.0 / 1e3);  // ns → us
    }
  }
}

TEST(Export, PrometheusTextExposition) {
  obs::MetricsRegistry reg;
  reg.counter("tunekit_evals_started_total", "evals started").inc(7);
  reg.gauge("tunekit_queue_depth").set(3.0);
  obs::Histogram& h = reg.histogram("tunekit_eval_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(20.0);

  const std::string text = obs::prometheus_text(reg);
  EXPECT_NE(text.find("# HELP tunekit_evals_started_total evals started"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tunekit_evals_started_total counter"), std::string::npos);
  EXPECT_NE(text.find("tunekit_evals_started_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tunekit_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("tunekit_queue_depth 3"), std::string::npos);
  // Cumulative bucket counts, ending in the +Inf catch-all.
  EXPECT_NE(text.find("tunekit_eval_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tunekit_eval_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("tunekit_eval_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("tunekit_eval_seconds_count 3"), std::string::npos);
}

TEST(Export, MetricsJsonSnapshotShape) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").inc(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);

  const json::Value doc = obs::metrics_to_json(reg);
  EXPECT_EQ(doc.at("counters").at("c_total").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("g").as_number(), 1.5);
  const auto& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("bounds").as_array().size(), 1u);
  EXPECT_EQ(h.at("counts").as_array().size(), 2u);  // bounds + overflow
  EXPECT_EQ(h.at("count").as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// Cross-process span stitching (real tunekit_worker)
// ---------------------------------------------------------------------------

TEST(Telemetry, WorkerSpansStitchAcrossProcessBoundary) {
  if (!robust::process_sandbox_supported()) {
    GTEST_SKIP() << "process sandbox unsupported on this platform";
  }
  obs::Telemetry telemetry;
  telemetry.enable();

  robust::IsolationOptions iso;
  iso.mode = robust::IsolationMode::Process;
  iso.sandbox.argv = {TUNEKIT_WORKER_BIN, "--app", "synth:case1", "--seed", "7"};
  iso.telemetry = &telemetry;
  auto pool = robust::WorkerPool::create(iso, 1);
  ASSERT_NE(pool, nullptr);

  core::AppBundle bundle = core::make_builtin_app("synth:case1", 7);
  obs::ScopedSpan eval_span(&telemetry, "eval");
  const obs::SpanId eval_id = eval_span.id();
  const robust::SandboxResult r =
      pool->evaluate(bundle.app->space().defaults(), 30.0);
  eval_span.end();
  ASSERT_EQ(r.outcome, robust::EvalOutcome::Ok) << r.error;

  const auto spans = telemetry.spans();
  obs::SpanRecord rpc;
  for (const auto& s : spans) {
    if (s.name == "worker.rpc") rpc = s;
  }
  ASSERT_NE(rpc.id, 0u) << "no worker.rpc span recorded";
  EXPECT_EQ(rpc.parent, eval_id);
  EXPECT_EQ(rpc.pid, 0);  // the rpc is timed supervisor-side

  // The worker reports its own setup/objective/teardown timings over the
  // pipe; they come back parented under the rpc span, carrying the worker's
  // pid, and clamped inside the rpc interval.
  std::size_t worker_side = 0;
  bool saw_objective = false;
  for (const auto& s : spans) {
    if (s.pid == 0) continue;
    ++worker_side;
    EXPECT_EQ(s.parent, rpc.id) << s.name;
    EXPECT_GE(s.start_ns, rpc.start_ns) << s.name;
    EXPECT_LE(s.start_ns + s.dur_ns, rpc.start_ns + rpc.dur_ns) << s.name;
    if (s.name == "worker.objective") saw_objective = true;
  }
  EXPECT_GE(worker_side, 1u);
  EXPECT_TRUE(saw_objective);
}

// ---------------------------------------------------------------------------
// Session metrics snapshot: compaction + resume round trip
// ---------------------------------------------------------------------------

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SessionMetrics, SnapshotSurvivesCompactionAndResume) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_obs_metrics_roundtrip.jsonl");
  std::filesystem::remove(journal);

  service::SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = service::SessionBackend::Random;
  opt.seed = 11;
  opt.compact_every = 2;  // force compactions mid-run

  {
    service::TuningSession session(space, opt, journal);
    for (int round = 0; round < 2; ++round) {
      const auto batch = session.ask(2);
      ASSERT_EQ(batch.size(), 2u);
      for (const auto& c : batch) {
        session.tell(c.id, 1.0, /*cost_seconds=*/0.25, /*dispersion=*/0.0,
                     /*duration_ms=*/300.0, /*worker_slot=*/0);
      }
    }
    const auto batch = session.ask(1);
    ASSERT_EQ(batch.size(), 1u);
    session.tell_failure(batch[0].id, robust::EvalOutcome::TimedOut);
    session.flush_metrics();

    const service::SessionMetrics m = session.metrics();
    EXPECT_EQ(m.tells, 4u);
    EXPECT_EQ(m.fails, 1u);
    EXPECT_DOUBLE_EQ(m.cost_seconds, 1.0);
    EXPECT_DOUBLE_EQ(m.eval_duration_ms, 1200.0);
    EXPECT_EQ(m.failure_outcomes.at("timed-out"), 1u);
    // Session dies here without close(): the flushed snapshot is all that
    // survives, exactly the crash the journal exists for.
  }

  // The compacted journal still carries a metrics record.
  {
    std::ifstream in(journal);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"e\":\"metrics\""), std::string::npos);
  }

  auto resumed = service::TuningSession::resume(space, opt, journal);
  ASSERT_NE(resumed, nullptr);
  const service::SessionMetrics restored = resumed->metrics();
  EXPECT_EQ(restored.tells, 4u);
  EXPECT_EQ(restored.fails, 1u);
  EXPECT_DOUBLE_EQ(restored.cost_seconds, 1.0);
  EXPECT_DOUBLE_EQ(restored.eval_duration_ms, 1200.0);
  EXPECT_EQ(restored.failure_outcomes.at("timed-out"), 1u);

  // Counters keep accumulating on top of the replayed values.
  const auto batch = resumed->ask(2);
  ASSERT_GE(batch.size(), 1u);
  for (const auto& c : batch) {
    resumed->tell(c.id, 2.0, 0.5, 0.0, 100.0, 1);
  }
  const service::SessionMetrics after = resumed->metrics();
  EXPECT_EQ(after.tells, 4u + batch.size());
  EXPECT_DOUBLE_EQ(after.cost_seconds, 1.0 + 0.5 * batch.size());

  std::filesystem::remove(journal);
}

TEST(SessionMetrics, JsonRoundTrip) {
  service::SessionMetrics m;
  m.tells = 3;
  m.fails = 2;
  m.drops = 1;
  m.failure_outcomes["crashed"] = 2;
  m.cost_seconds = 4.5;
  m.eval_duration_ms = 123.0;
  m.wall_seconds = 9.0;
  const service::SessionMetrics back = service::SessionMetrics::from_json(m.to_json());
  EXPECT_EQ(back.tells, 3u);
  EXPECT_EQ(back.fails, 2u);
  EXPECT_EQ(back.drops, 1u);
  EXPECT_EQ(back.failure_outcomes.at("crashed"), 2u);
  EXPECT_DOUBLE_EQ(back.cost_seconds, 4.5);
  EXPECT_DOUBLE_EQ(back.eval_duration_ms, 123.0);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 9.0);
}

TEST(SessionMetrics, FsyncLatencyObservedWhenTelemetryAttached) {
  const auto space = two_dim_space();
  const std::string journal = temp_path("tunekit_obs_fsync_histogram.jsonl");
  std::filesystem::remove(journal);

  obs::Telemetry telemetry;
  telemetry.enable();
  service::SessionOptions opt;
  opt.max_evals = 2;
  opt.backend = service::SessionBackend::Random;
  opt.telemetry = &telemetry;

  service::TuningSession session(space, opt, journal);
  const auto batch = session.ask(1);
  ASSERT_EQ(batch.size(), 1u);
  session.tell(batch[0].id, 1.0);

  const obs::Histogram& h =
      telemetry.metrics().histogram(obs::metric::kJournalFsyncSeconds);
  EXPECT_GT(h.count(), 0u);
  std::filesystem::remove(journal);
}

// ---------------------------------------------------------------------------
// EvalDb provenance fields: migration-safe load
// ---------------------------------------------------------------------------

TEST(EvalDbProvenance, LoadsPreTelemetryCheckpoints) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_obs_old_evaldb.json");
  {
    // A checkpoint written before duration_ms/worker_slot existed.
    std::ofstream out(path);
    out << R"({"format":"tunekit-evaldb-v1","evaluations":[)"
        << R"({"config":[1.0,2.0],"value":3.0,"cost_seconds":0.5}]})";
  }
  const search::EvalDb db = search::EvalDb::load(path, space);
  ASSERT_EQ(db.size(), 1u);
  const search::Evaluation e = db.all()[0];
  EXPECT_DOUBLE_EQ(e.value, 3.0);
  EXPECT_DOUBLE_EQ(e.duration_ms, 0.0);  // unknown, not garbage
  EXPECT_EQ(e.worker_slot, -1);
  std::filesystem::remove(path);
}

TEST(EvalDbProvenance, SaveLoadRoundTripsNewFields) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_obs_new_evaldb.json");
  search::EvalDb db;
  search::Evaluation e;
  e.config = {1.0, 2.0};
  e.value = 3.0;
  e.cost_seconds = 0.5;
  e.duration_ms = 612.5;
  e.worker_slot = 2;
  db.record(std::move(e));
  db.save(path);

  const search::EvalDb loaded = search::EvalDb::load(path, space);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.all()[0].duration_ms, 612.5);
  EXPECT_EQ(loaded.all()[0].worker_slot, 2);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Log sink + decorations, Stopwatch::ns
// ---------------------------------------------------------------------------

TEST(LogSink, CapturesBareMessagesAndRestores) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::Warn);
  LogSink previous = set_log_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });

  log_warn("disk ", 93, "% full");
  log_info("dropped below threshold");

  set_log_sink(std::move(previous));
  set_log_level(saved_level);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "disk 93% full");  // bare text, no prefix
}

TEST(LogSink, FormatLineStableByDefaultDecoratedOnRequest) {
  EXPECT_FALSE(log_decorations());
  EXPECT_EQ(format_log_line(LogLevel::Warn, "msg"), "[tunekit WARN ] msg");

  set_log_decorations(true);
  const std::string line = format_log_line(LogLevel::Error, "boom");
  set_log_decorations(false);
  // "[tunekit ERROR 2026-...Z t=N] boom"
  EXPECT_EQ(line.rfind("[tunekit ERROR ", 0), 0u);
  EXPECT_NE(line.find("Z t="), std::string::npos);
  EXPECT_NE(line.find("] boom"), std::string::npos);
}

TEST(StopwatchNs, MonotonicNanoseconds) {
  Stopwatch w;
  const std::uint64_t a = w.ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t b = w.ns();
  EXPECT_GE(b, a + 1000000u);  // at least 1 ms elapsed
  EXPECT_NEAR(static_cast<double>(b) * 1e-9, w.seconds(), 0.05);
}

}  // namespace
}  // namespace tunekit
