// Cross-module integration tests: the full methodology against apps with
// real measurements, crashing evaluations, and checkpoint recovery — the
// robustness scenarios a production tuning campaign hits.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/methodology.hpp"
#include "core/report.hpp"
#include "minislater/minislater_app.hpp"
#include "synth/synth_app.hpp"

namespace tunekit::core {
namespace {

TEST(Integration, MethodologyOnRealMeasuredKernels) {
  // Tiny MiniSlater instance: the whole pipeline (sensitivity on measured
  // times -> plan -> staged searches) must complete and produce a valid,
  // evaluable configuration.
  minislater::MiniSlaterApp app(/*n=*/16, /*bands=*/2, /*reps=*/1);
  MethodologyOptions opt;
  opt.cutoff = 0.15;  // real timer noise needs a slightly higher cut-off
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 3;
  opt.executor.min_evals = 6;
  opt.executor.bo.seed = 3;
  Methodology m(opt);
  const auto result = m.run(app);

  EXPECT_FALSE(result.plan.searches.empty());
  EXPECT_TRUE(app.space().is_valid(result.execution.final_config));
  EXPECT_GT(result.execution.final_times.total, 0.0);
  EXPECT_GT(result.total_observations, result.analysis.observations);
}

/// App whose evaluation crashes on part of the space.
class FlakyApp final : public TunableApp {
 public:
  FlakyApp() {
    space_.add(search::ParamSpec::integer("a", 1, 16, 4));
    space_.add(search::ParamSpec::integer("b", 1, 16, 4));
  }

  const search::SearchSpace& space() const override { return space_; }
  std::vector<RoutineSpec> routines() const override {
    return {{"A", {0}}, {"B", {1}}};
  }

  search::RegionTimes evaluate_regions(const search::Config& c) override {
    ++evaluations;
    if (c[0] > 12.0) throw std::runtime_error("node failure");
    search::RegionTimes t;
    t.regions["A"] = 10.0 + (c[0] - 8.0) * (c[0] - 8.0);
    t.regions["B"] = 10.0 + (c[1] - 3.0) * (c[1] - 3.0);
    t.total = t.regions["A"] + t.regions["B"];
    return t;
  }
  bool thread_safe() const override { return true; }

  std::size_t evaluations = 0;

 private:
  search::SearchSpace space_;
};

TEST(Integration, ExecutorToleratesCrashingRegion) {
  // The BO backend records failures and keeps searching; the final config
  // lands in the non-crashing region. (The baseline and sensitivity ladder
  // stay below the crash threshold by construction: defaults are 4 and the
  // 1.1^k ladder from 4 reaches at most 4 * 1.1^5 < 7.)
  FlakyApp app;
  MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  opt.sensitivity.n_variations = 5;
  opt.executor.evals_per_param = 8;
  opt.executor.min_evals = 12;
  opt.executor.enumerate_threshold = 0.0;  // force BO (grid would throw)
  Methodology m(opt);
  const auto result = m.run(app);
  EXPECT_TRUE(app.space().is_valid(result.execution.final_config));
  EXPECT_LE(result.execution.final_config[0], 12.0);
  EXPECT_GT(result.execution.final_times.total, 0.0);
}

TEST(Integration, CheckpointDirectoryEnablesRecovery) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tunekit_ckpt_test").string();
  std::filesystem::remove_all(dir);

  synth::SynthApp app(synth::SynthCase::Case1);
  MethodologyOptions opt;
  opt.cutoff = 0.25;
  opt.sensitivity.n_variations = 10;
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 2;
  opt.executor.min_evals = 6;
  opt.executor.enumerate_threshold = 0.0;
  opt.executor.checkpoint_dir = dir;
  opt.executor.bo.checkpoint_every = 2;
  Methodology m(opt);
  m.run(app);

  // One checkpoint file per executed search, loadable as an EvalDb.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    // Each checkpoint belongs to a 5-dim subspace search.
    SUCCEED() << entry.path();
  }
  EXPECT_GE(files, 4u);
  std::filesystem::remove_all(dir);
}

TEST(Integration, FullReportForRealApp) {
  minislater::MiniSlaterApp app(16, 2, 1);
  MethodologyOptions opt;
  opt.cutoff = 0.15;
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 2;
  opt.executor.min_evals = 4;
  Methodology m(opt);
  const auto result = m.run(app);
  const std::string report = full_report(app, result);
  EXPECT_NE(report.find("MiniSlater"), std::string::npos);
  EXPECT_NE(report.find("Slater"), std::string::npos);
}

}  // namespace
}  // namespace tunekit::core
