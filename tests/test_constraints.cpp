#include "search/constraints.hpp"

#include "search/space.hpp"

#include <gtest/gtest.h>

namespace tunekit::search::constraints {
namespace {

TEST(Constraints, ProductLe) {
  const auto p = product_le({0, 1}, 12.0);
  EXPECT_TRUE(p({3.0, 4.0, 99.0}));
  EXPECT_TRUE(p({12.0, 1.0}));
  EXPECT_FALSE(p({4.0, 4.0}));
}

TEST(Constraints, SumLe) {
  const auto p = sum_le({0, 2}, 5.0);
  EXPECT_TRUE(p({2.0, 100.0, 3.0}));
  EXPECT_FALSE(p({3.0, 0.0, 3.0}));
}

TEST(Constraints, Divides) {
  const auto p = divides(0, 64);
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) EXPECT_TRUE(p({v}));
  for (double v : {3.0, 5.0, 6.0, 48.0}) EXPECT_FALSE(p({v}));
  EXPECT_FALSE(p({0.0}));
  EXPECT_FALSE(p({2.5}));  // non-integer cannot divide
  EXPECT_THROW(divides(0, 0), std::invalid_argument);
}

TEST(Constraints, AtMostAndOrdering) {
  EXPECT_TRUE(at_most(1, 10.0)({0.0, 10.0}));
  EXPECT_FALSE(at_most(1, 10.0)({0.0, 10.5}));
  EXPECT_TRUE(le_param(0, 1)({3.0, 3.0}));
  EXPECT_FALSE(le_param(0, 1)({4.0, 3.0}));
}

TEST(Constraints, AllOfAnyOf) {
  const auto both = all_of({at_most(0, 5.0), at_most(1, 5.0)});
  EXPECT_TRUE(both({4.0, 4.0}));
  EXPECT_FALSE(both({4.0, 6.0}));

  const auto either = any_of({at_most(0, 1.0), at_most(1, 1.0)});
  EXPECT_TRUE(either({0.5, 9.0}));
  EXPECT_TRUE(either({9.0, 0.5}));
  EXPECT_FALSE(either({9.0, 9.0}));

  EXPECT_TRUE(all_of({})({1.0}));  // vacuous truth
  EXPECT_TRUE(any_of({})({1.0}));  // no disjuncts: treated as unconstrained
}

TEST(Constraints, IfEqualGuardsConditionally) {
  // If mode (index 0) == 1, then size (index 1) must be <= 8.
  const auto p = if_equal(0, 1.0, at_most(1, 8.0));
  EXPECT_TRUE(p({0.0, 100.0}));  // guard inactive
  EXPECT_TRUE(p({1.0, 8.0}));
  EXPECT_FALSE(p({1.0, 9.0}));
}

TEST(Constraints, ComposeIntoSearchSpace) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 1, 16, 1));
  space.add(ParamSpec::integer("b", 1, 16, 1));
  space.add_constraint("fits", product_le({0, 1}, 32.0));
  space.add_constraint("balanced", divides(0, 16));
  EXPECT_TRUE(space.is_valid({4.0, 8.0}));
  EXPECT_FALSE(space.is_valid({4.0, 9.0}));   // product
  EXPECT_FALSE(space.is_valid({5.0, 1.0}));   // 5 does not divide 16
}

TEST(Constraints, OutOfRangeIndexThrowsAtEvaluation) {
  const auto p = at_most(5, 1.0);
  EXPECT_THROW(p({1.0, 2.0}), std::out_of_range);
}

}  // namespace
}  // namespace tunekit::search::constraints
