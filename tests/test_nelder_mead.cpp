#include "bo/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tunekit::bo {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  NelderMeadOptions opt;
  opt.max_iters = 500;
  const auto res = nelder_mead(f, {0.0, 0.0}, opt);
  EXPECT_NEAR(res.x[0], 2.0, 1e-3);
  EXPECT_NEAR(res.x[1], -1.0, 1e-3);
  EXPECT_LT(res.value, 1e-5);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iters = 3000;
  opt.initial_step = 0.5;
  opt.f_tol = 1e-14;
  const auto res = nelder_mead(f, {-1.0, 1.0}, opt);
  EXPECT_NEAR(res.x[0], 1.0, 0.05);
  EXPECT_NEAR(res.x[1], 1.0, 0.1);
}

TEST(NelderMead, OneDimensional) {
  const auto f = [](const std::vector<double>& x) { return std::cosh(x[0] - 0.3); };
  const auto res = nelder_mead(f, {5.0});
  EXPECT_NEAR(res.x[0], 0.3, 1e-3);
}

TEST(NelderMead, RespectsBoxBounds) {
  // Unconstrained optimum at (2, 2); box caps at 1.
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 2.0) * (x[1] - 2.0);
  };
  NelderMeadOptions opt;
  opt.max_iters = 500;
  opt.lower = {0.0, 0.0};
  opt.upper = {1.0, 1.0};
  const auto res = nelder_mead(f, {0.5, 0.5}, opt);
  EXPECT_LE(res.x[0], 1.0);
  EXPECT_LE(res.x[1], 1.0);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], 1.0, 1e-2);
}

TEST(NelderMead, StartAtBoundStillMoves) {
  // Start pinned at the upper corner; initial simplex must step inward.
  const auto f = [](const std::vector<double>& x) { return x[0] * x[0] + x[1] * x[1]; };
  NelderMeadOptions opt;
  opt.lower = {-1.0, -1.0};
  opt.upper = {1.0, 1.0};
  opt.max_iters = 300;
  const auto res = nelder_mead(f, {1.0, 1.0}, opt);
  EXPECT_LT(res.value, 1e-3);
}

TEST(NelderMead, ReportsEvaluationCount) {
  int count = 0;
  const auto f = [&count](const std::vector<double>& x) {
    ++count;
    return x[0] * x[0];
  };
  const auto res = nelder_mead(f, {3.0});
  EXPECT_EQ(static_cast<int>(res.evaluations), count);
  EXPECT_GT(res.iterations, 0u);
}

TEST(NelderMead, ConvergesOnFlatFunctionByShrinking) {
  // Equal values over a non-degenerate simplex must not terminate early —
  // the simplex shrinks to the x_tol diameter first (~20 halvings of the
  // 0.1 initial step), well short of max_iters.
  const auto f = [](const std::vector<double>&) { return 1.0; };
  NelderMeadOptions opt;
  opt.max_iters = 1000;
  const auto res = nelder_mead(f, {0.0, 0.0}, opt);
  EXPECT_LT(res.iterations, 40u);
  EXPECT_DOUBLE_EQ(res.value, 1.0);
}

TEST(NelderMead, SymmetricObjectiveDoesNotStallOnEqualValues) {
  // cosh(x - 0.3) takes equal values at 0.3 +- w; the diameter criterion
  // forces a shrink and the search reaches the true minimum.
  const auto f = [](const std::vector<double>& x) { return std::cosh(x[0] - 0.3); };
  const auto res = nelder_mead(f, {5.0});
  EXPECT_NEAR(res.x[0], 0.3, 1e-3);
}

TEST(NelderMead, ValidatesInput) {
  const auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(nelder_mead(f, {}), std::invalid_argument);
  NelderMeadOptions opt;
  opt.lower = {0.0, 0.0};  // arity mismatch with 1-d start
  EXPECT_THROW(nelder_mead(f, {1.0}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::bo
