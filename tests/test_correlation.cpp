#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::stats {
namespace {

TEST(Pearson, PerfectLinear) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant) {
  const std::vector<double> x{1, 5, 2, 8, 3};
  const std::vector<double> y{0.2, 9, 1, 4, 7};
  const double r = pearson(x, y);
  std::vector<double> x2(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x2[i] = 3.0 * x[i] - 10.0;
  EXPECT_NEAR(pearson(x2, y), r, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, IndependentRoughlyZero) {
  Rng rng(9);
  std::vector<double> x(3000), y(3000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.06);
}

TEST(Pearson, BadInputThrows) {
  EXPECT_THROW(pearson({1}, {1}), std::invalid_argument);
  EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  // y = x^3 is monotone: Spearman 1, Pearson < 1.
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(static_cast<double>(i * i * i));
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(PearsonMatrix, DiagonalOnesSymmetric) {
  linalg::Matrix samples(4, 3);
  Rng rng(2);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) samples(r, c) = rng.uniform();
  }
  const auto corr = pearson_matrix(samples);
  EXPECT_EQ(corr.rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(corr(i, j), corr(j, i));
      EXPECT_LE(std::abs(corr(i, j)), 1.0 + 1e-12);
    }
  }
}

TEST(CorrelatedPairs, FindsInjectedCorrelation) {
  Rng rng(5);
  linalg::Matrix samples(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    const double a = rng.uniform();
    samples(r, 0) = a;
    samples(r, 1) = a + 0.01 * rng.uniform();  // strongly correlated with 0
    samples(r, 2) = rng.uniform();             // independent
  }
  const auto pairs = correlated_pairs(samples, 0.5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].i, 0u);
  EXPECT_EQ(pairs[0].j, 1u);
  EXPECT_GT(pairs[0].r, 0.9);
}

TEST(CorrelatedPairs, SortedByStrength) {
  Rng rng(6);
  linalg::Matrix samples(300, 4);
  for (std::size_t r = 0; r < 300; ++r) {
    const double a = rng.uniform();
    samples(r, 0) = a;
    samples(r, 1) = a + 0.02 * rng.normal();   // very strong
    samples(r, 2) = a + 0.4 * rng.normal();    // moderate
    samples(r, 3) = rng.uniform();
  }
  const auto pairs = correlated_pairs(samples, 0.3);
  ASSERT_GE(pairs.size(), 2u);
  EXPECT_GE(std::abs(pairs[0].r), std::abs(pairs[1].r));
}

}  // namespace
}  // namespace tunekit::stats
