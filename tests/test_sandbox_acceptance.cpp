// Fault-injection acceptance tests: the full methodology pipeline must
// survive a worker that randomly segfaults (10%) and hangs uninterruptibly
// (5%) per configuration, with every failure classified into the taxonomy,
// the supervisor never dying, and the final DAG partition identical to a
// clean (fault-free, in-process) run. The faults are injected by
// tunekit_worker's --chaos-* flags: deterministic per-config draws, so the
// same configuration always fails the same way — exactly the adversary the
// crash quarantine exists for.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/app_registry.hpp"
#include "core/methodology.hpp"
#include "robust/process_sandbox.hpp"
#include "robust/worker_pool.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"

namespace tunekit {
namespace {

#define REQUIRE_SANDBOX()                                            \
  do {                                                               \
    if (!robust::process_sandbox_supported())                        \
      GTEST_SKIP() << "process sandbox unsupported on this platform"; \
  } while (0)

/// A pool running the real tunekit_worker with fault injection enabled.
std::shared_ptr<robust::WorkerPool> make_chaos_pool(const std::string& app,
                                                    std::size_t n_workers,
                                                    const char* segv_p,
                                                    const char* hang_p,
                                                    const char* chaos_seed) {
  robust::SandboxOptions sandbox;
  sandbox.argv = {TUNEKIT_WORKER_BIN, "--app",        app,
                  "--seed",           "42",           "--chaos-segv",
                  segv_p,             "--chaos-hang", hang_p,
                  "--chaos-seed",     chaos_seed};
  sandbox.restart_backoff_seconds = 0.001;
  sandbox.restart_backoff_max_seconds = 0.01;
  sandbox.max_restarts = 1000;  // chaos kills workers constantly; keep going
  return std::make_shared<robust::WorkerPool>(sandbox, n_workers,
                                              /*quarantine_after=*/2);
}

/// The partition a plan induces: each search's tuned parameters as a sorted
/// set, plus the untuned remainder. Two runs agree on the DAG exactly when
/// these compare equal.
std::set<std::vector<std::size_t>> partition_of(const graph::SearchPlan& plan) {
  std::set<std::vector<std::size_t>> out;
  for (const auto& s : plan.searches) {
    auto params = s.params;
    std::sort(params.begin(), params.end());
    out.insert(std::move(params));
  }
  return out;
}

core::MethodologyOptions base_options() {
  core::MethodologyOptions opt;
  opt.cutoff = 0.25;
  opt.sensitivity.n_variations = 20;
  opt.importance_samples = 0;  // keep the partition a pure sensitivity product
  opt.executor.evals_per_param = 2;
  opt.executor.min_evals = 4;
  opt.executor.bo.seed = 42;
  opt.seed = 42;
  return opt;
}

TEST(SandboxAcceptance, MethodologySurvivesChaosWithIdenticalPartition) {
  REQUIRE_SANDBOX();
  const auto bundle = core::make_builtin_app("synth:case3", 42);

  // Clean reference: fully in-process, no faults.
  core::Methodology clean(base_options());
  const auto clean_analysis = clean.analyze(*bundle.app);
  const auto clean_plan = clean.make_plan(*bundle.app, clean_analysis);

  // Chaos run: every evaluation goes through a worker that segfaults on 10%
  // of configurations and hangs on another 5%.
  auto opt = base_options();
  opt.sensitivity.measure.watchdog.timeout_seconds = 0.2;  // pool deadline
  opt.executor.measure.watchdog.timeout_seconds = 0.2;
  opt.executor.isolation.mode = robust::IsolationMode::Process;
  const auto pool = make_chaos_pool("synth:case3", 2, "0.10", "0.05", "1");
  opt.executor.isolation.pool = pool;

  // If a worker crash or hang escaped containment this call would throw
  // (or kill the test process outright) — completing it is the acceptance
  // criterion.
  core::Methodology chaotic(opt);
  const auto result = chaotic.run(*bundle.app);

  // The run completed and produced a usable result.
  EXPECT_FALSE(result.plan.searches.empty());
  EXPECT_GT(result.execution.total_evaluations, 0u);

  // Every dispatched evaluation came back with a classified outcome — the
  // stats buckets partition the dispatch count exactly, nothing was lost.
  const auto& s = pool->stats();
  EXPECT_GT(s.dispatched.load(), 0u);
  EXPECT_GT(s.ok.load(), 0u);
  EXPECT_GT(s.crashed.load() + s.timed_out.load(), 0u)
      << "chaos injection never fired; the test is vacuous";
  EXPECT_EQ(s.ok.load() + s.crashed.load() + s.timed_out.load() +
                s.invalid.load() + s.non_finite.load(),
            s.dispatched.load());

  // The faults changed individual measurements but not the structure the
  // methodology extracted: same parameter partition as the clean run.
  EXPECT_EQ(partition_of(result.plan), partition_of(clean_plan));
  auto untuned_clean = clean_plan.untuned_params;
  auto untuned_chaos = result.plan.untuned_params;
  std::sort(untuned_clean.begin(), untuned_clean.end());
  std::sort(untuned_chaos.begin(), untuned_chaos.end());
  EXPECT_EQ(untuned_chaos, untuned_clean);
}

TEST(SandboxAcceptance, SchedulerClassifiesEveryChaosFailure) {
  REQUIRE_SANDBOX();
  const auto bundle = core::make_builtin_app("synth:case1", 42);
  const auto& space = bundle.app->space();

  service::SessionOptions sopt;
  sopt.max_evals = 40;
  sopt.backend = service::SessionBackend::Random;
  sopt.max_attempts = 3;
  sopt.quarantine_after = 2;
  sopt.seed = 9;
  service::TuningSession session(space, sopt);

  service::SchedulerOptions opt;
  opt.n_threads = 2;
  opt.measure.watchdog.timeout_seconds = 0.2;
  opt.isolation.mode = robust::IsolationMode::Process;
  const auto pool = make_chaos_pool("synth:case1", 2, "0.15", "0.05", "7");
  opt.isolation.pool = pool;

  // The in-process objective is a decoy: with isolation active every
  // evaluation must go to the pool instead. Throwing proves it is never hit.
  class NeverCalled final : public search::Objective {
   public:
    double evaluate(const search::Config&) override {
      throw std::logic_error("in-process objective used despite isolation");
    }
    bool thread_safe() const override { return true; }
  } decoy;

  service::EvalScheduler scheduler(opt);
  const auto result = scheduler.run(session, decoy);

  // The session ran to exhaustion: every candidate was resolved — told,
  // retried, dropped, or quarantined — and the budget is fully consumed.
  EXPECT_EQ(session.state(), service::SessionState::Exhausted);
  EXPECT_EQ(session.completed(), sopt.max_evals);
  EXPECT_EQ(result.evaluations, sopt.max_evals);

  const auto& s = pool->stats();
  EXPECT_GT(s.ok.load(), 0u);
  EXPECT_GT(s.crashed.load() + s.timed_out.load(), 0u);
  EXPECT_EQ(s.ok.load() + s.crashed.load() + s.timed_out.load() +
                s.invalid.load() + s.non_finite.load(),
            s.dispatched.load());

  // Failed evaluations surface in the session as penalty records with their
  // classified outcome, never as unclassified Ok rows.
  std::size_t failed = 0;
  for (const auto& e : session.evaluations()) {
    if (e.outcome != robust::EvalOutcome::Ok) ++failed;
  }
  EXPECT_GT(failed, 0u);
}

TEST(SandboxAcceptance, DegradesToInProcessWhenWorkerMissing) {
  const auto bundle = core::make_builtin_app("synth:case3", 42);
  auto opt = base_options();
  opt.executor.isolation.mode = robust::IsolationMode::Process;
  opt.executor.isolation.sandbox.argv = {"/nonexistent/tunekit_worker"};

  // Pool creation fails, a warning is logged, and the run completes on the
  // in-process path — isolation is an upgrade, never a new failure mode.
  core::Methodology m(opt);
  const auto result = m.run(*bundle.app);
  EXPECT_GT(result.execution.total_evaluations, 0u);
  EXPECT_FALSE(result.plan.searches.empty());
}

}  // namespace
}  // namespace tunekit
