#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/vecops.hpp"

namespace tunekit::linalg {
namespace {

/// Random SPD matrix A = B B^T + n I.
Matrix random_spd(std::size_t n, Rng& rng, double diag_boost = 0.0) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n) * 0.1 + diag_boost;
  return a;
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix a = random_spd(8, rng);
    const Matrix l = cholesky(a);
    const Matrix rebuilt = l * l.transposed();
    EXPECT_LT(rebuilt.max_abs_diff(a), 1e-9);
  }
}

TEST(Cholesky, FactorIsLowerTriangular) {
  Rng rng(2);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, KnownSmallCase) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
  const Matrix a{{4, 2}, {2, 3}};
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, IndefiniteMatrixThrowsEvenWithJitter) {
  // Strongly indefinite: jitter up to max cannot fix it.
  Matrix a{{1, 0}, {0, -100}};
  EXPECT_THROW(cholesky(a, 1e-10, 1e-4), std::runtime_error);
}

TEST(Cholesky, JitterRescuesNearSingular) {
  // Rank-deficient PSD matrix: plain Cholesky fails, jitter succeeds.
  Matrix a{{1, 1}, {1, 1}};
  double jitter = -1.0;
  const Matrix l = cholesky(a, 1e-10, 1e-2, &jitter);
  EXPECT_GT(jitter, 0.0);
  EXPECT_GT(l(0, 0), 0.0);
}

TEST(Cholesky, NoJitterForWellConditioned) {
  Rng rng(3);
  const Matrix a = random_spd(5, rng, 1.0);
  double jitter = -1.0;
  cholesky(a, 1e-10, 1e-2, &jitter);
  EXPECT_DOUBLE_EQ(jitter, 0.0);
}

TEST(CholeskySolve, SolvesLinearSystem) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 7;
    const Matrix a = random_spd(n, rng);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
    const std::vector<double> b = a.mul(x_true);
    const Matrix l = cholesky(a);
    const std::vector<double> x = solve_with_cholesky(l, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(CholeskySolve, TriangularSolvesInverse) {
  Rng rng(5);
  const std::size_t n = 6;
  const Matrix a = random_spd(n, rng);
  const Matrix l = cholesky(a);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  // L (L^-1 b) == b
  const auto y = solve_lower(l, b);
  const auto b2 = l.mul(y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b2[i], b[i], 1e-10);
  // L^T (L^-T y) == y
  const auto x = solve_lower_transpose(l, y);
  const auto y2 = l.transposed().mul(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y2[i], y[i], 1e-10);
}

TEST(CholeskySolve, SizeMismatchThrows) {
  const Matrix l = cholesky(Matrix{{4, 0}, {0, 4}});
  EXPECT_THROW(solve_lower(l, {1.0}), std::invalid_argument);
  EXPECT_THROW(solve_lower_transpose(l, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(CholeskyLogDet, MatchesKnownDeterminant) {
  // det([[4,2],[2,3]]) = 8 -> log 8
  const Matrix l = cholesky(Matrix{{4, 2}, {2, 3}});
  EXPECT_NEAR(log_det_from_cholesky(l), std::log(8.0), 1e-12);
}

TEST(CholeskyLogDet, IdentityIsZero) {
  const Matrix l = cholesky(Matrix::identity(5));
  EXPECT_NEAR(log_det_from_cholesky(l), 0.0, 1e-12);
}

TEST(VecOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

TEST(VecOps, Distances) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(scaled_squared_distance({0, 0}, {2, 2}, {2, 1}), 1.0 + 4.0);
  EXPECT_THROW(scaled_squared_distance({0}, {1}, {1, 2}), std::invalid_argument);
}

TEST(VecOps, AddSubScaleClamp) {
  EXPECT_EQ(add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(sub({3, 4}, {1, 2}), (std::vector<double>{2, 2}));
  EXPECT_EQ(scale({1, -2}, 3.0), (std::vector<double>{3, -6}));
  std::vector<double> v{-1.0, 0.5, 2.0};
  clamp_inplace(v, 0.0, 1.0);
  EXPECT_EQ(v, (std::vector<double>{0.0, 0.5, 1.0}));
}

}  // namespace
}  // namespace tunekit::linalg
