#include "core/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "synth/synth_app.hpp"

namespace tunekit::core {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ExportCsv, WritesHeaderAndRows) {
  const std::string path = temp_path("tunekit_traj.csv");
  write_trajectories_csv(path, {"a", "b"}, {{3.0, 2.0, 1.0}, {5.0, 4.0, 3.5}});
  const std::string content = slurp(path);
  EXPECT_NE(content.find("evaluation,a,b"), std::string::npos);
  EXPECT_NE(content.find("1,3,5"), std::string::npos);
  EXPECT_NE(content.find("3,1,3.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportCsv, PadsShorterSeriesWithFinalValue) {
  const std::string path = temp_path("tunekit_traj_pad.csv");
  write_trajectories_csv(path, {"long", "short"}, {{4.0, 3.0, 2.0, 1.0}, {9.0, 8.0}});
  const std::string content = slurp(path);
  EXPECT_NE(content.find("4,1,8"), std::string::npos);  // short padded with 8
  std::remove(path.c_str());
}

TEST(ExportCsv, ValidatesArity) {
  EXPECT_THROW(write_trajectories_csv(temp_path("x.csv"), {"a"}, {}),
               std::invalid_argument);
}

TEST(ExportJson, SearchResultRoundTrips) {
  search::SearchSpace space;
  space.add(search::ParamSpec::real("alpha", 0.0, 1.0, 0.5));
  search::SearchResult result;
  result.method = "bo";
  result.best_config = {0.25};
  result.best_value = 1.5;
  result.values = {3.0, 1.5};
  result.trajectory = {3.0, 1.5};
  result.evaluations = 2;
  result.seconds = 0.1;

  const auto v = search_result_to_json(space, result);
  EXPECT_EQ(v.at("method").as_string(), "bo");
  EXPECT_DOUBLE_EQ(v.at("best_value").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("best_config").at("alpha").as_number(), 0.25);
  EXPECT_EQ(v.at("trajectory").as_array().size(), 2u);

  // Serializes to parseable JSON.
  EXPECT_NO_THROW(json::parse(v.dump()));
}

TEST(ExportJson, MethodologyResultSerializes) {
  synth::SynthApp app(synth::SynthCase::Case3);
  MethodologyOptions opt;
  opt.cutoff = 0.25;
  opt.sensitivity.n_variations = 20;
  opt.importance_samples = 0;
  opt.executor.evals_per_param = 2;
  opt.executor.min_evals = 6;
  opt.executor.enumerate_threshold = 0.0;
  Methodology m(opt);
  const auto result = m.run(app);

  const auto v = methodology_result_to_json(app, result);
  EXPECT_TRUE(v.contains("sensitivity"));
  EXPECT_TRUE(v.at("sensitivity").contains("Group3"));
  EXPECT_GE(v.at("plan").as_array().size(), 3u);
  EXPECT_TRUE(v.at("final_config").contains("x0"));
  EXPECT_GT(v.at("observations_total").as_number(), 0.0);

  const std::string path = temp_path("tunekit_methodology.json");
  write_json(path, v);
  const auto loaded = json::load(path);
  EXPECT_EQ(loaded.at("app").as_string(), app.name());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tunekit::core
