#include "service/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <utility>

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

double sphere(const search::Config& c) { return c[0] * c[0] + c[1] * c[1]; }

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SessionOptions fast_bo_options(std::size_t max_evals, std::uint64_t seed = 11) {
  SessionOptions opt;
  opt.max_evals = max_evals;
  opt.n_init = 4;
  opt.backend = SessionBackend::Bo;
  opt.bo.hyperopt_restarts = 1;
  opt.bo.hyperopt_max_iters = 20;
  opt.seed = seed;
  return opt;
}

TEST(TuningSession, AskHonorsBudgetAndExhausts) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  auto batch = session.ask(10);
  EXPECT_EQ(batch.size(), 6u);          // capped by budget
  EXPECT_TRUE(session.ask(4).empty());  // everything outstanding
  for (const auto& c : batch) {
    EXPECT_TRUE(space.is_valid(c.config));
    EXPECT_TRUE(session.tell(c.id, sphere(c.config)));
  }
  EXPECT_EQ(session.completed(), 6u);
  EXPECT_EQ(session.state(), SessionState::Exhausted);
  EXPECT_TRUE(session.ask(1).empty());
  ASSERT_TRUE(session.best().has_value());
}

TEST(TuningSession, TellOutOfOrderAndPartial) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  auto batch = session.ask(4);
  ASSERT_EQ(batch.size(), 4u);
  // Reverse order, and only half of them.
  EXPECT_TRUE(session.tell(batch[3].id, 3.0));
  EXPECT_TRUE(session.tell(batch[1].id, 1.0));
  EXPECT_EQ(session.completed(), 2u);
  EXPECT_EQ(session.outstanding(), 2u);
  // Unknown and duplicate tells are rejected, not fatal.
  EXPECT_FALSE(session.tell(9999, 1.0));
  EXPECT_FALSE(session.tell(batch[1].id, 1.0));
  EXPECT_EQ(session.completed(), 2u);
}

TEST(TuningSession, FailureRetriedThenDroppedAtPenalty) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 4;
  opt.max_attempts = 2;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  auto first = session.ask(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(session.tell_failure(first[0].id));
  EXPECT_EQ(session.completed(), 0u);  // queued for retry, not consumed

  auto retry = session.ask(1);
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0].id, first[0].id);
  EXPECT_EQ(retry[0].attempt, 1u);
  EXPECT_EQ(retry[0].config, first[0].config);

  EXPECT_TRUE(session.tell_failure(retry[0].id));  // attempts exhausted
  EXPECT_EQ(session.completed(), 1u);              // dropped: budget consumed
  const auto evals = session.evaluations();
  EXPECT_TRUE(std::isnan(evals[0].value));  // default failure_penalty
}

TEST(TuningSession, DeadlineExpiryRequeues) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 4;
  opt.deadline_seconds = 0.02;
  opt.max_attempts = 3;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  auto first = session.ask(1);
  ASSERT_EQ(first.size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  auto second = session.ask(1);  // expiry detected here
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, first[0].id);
  EXPECT_EQ(second[0].attempt, 1u);
  // A (very) late tell for the expired issue is rejected — the candidate was
  // re-issued under the same id, so only the new issue can resolve it once.
  EXPECT_TRUE(session.tell(second[0].id, 1.0));
  EXPECT_FALSE(session.tell(second[0].id, 1.0));
}

TEST(TuningSession, ReissuesDrainBeforeNewSuggestions) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  auto batch = session.ask(2);
  ASSERT_EQ(batch.size(), 2u);
  session.tell_failure(batch[0].id);
  const auto next = session.ask(4);  // only the retry until it resolves
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id, batch[0].id);
}

TEST(TuningSession, RandomBackendDeterministicAcrossInterleaving) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  opt.seed = 77;
  TuningSession a(space, opt);
  TuningSession b(space, opt);

  const auto batch_a = a.ask(6);
  // b interleaves asks and tells; candidate ids must map to the same configs.
  std::vector<Candidate> batch_b = b.ask(2);
  for (const auto& c : batch_b) b.tell(c.id, sphere(c.config));
  for (const auto& c : b.ask(4)) batch_b.push_back(c);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i].id, batch_b[i].id);
    EXPECT_EQ(batch_a[i].config, batch_b[i].config);
  }
}

TEST(TuningSession, GridBackendEnumeratesDiscreteSpace) {
  search::SearchSpace space;
  space.add(search::ParamSpec::ordinal("a", {1, 2, 4}, 1));
  space.add(search::ParamSpec::integer("b", 0, 1, 0));
  SessionOptions opt;
  opt.max_evals = 10;  // more than the 6 grid points
  opt.backend = SessionBackend::Grid;
  TuningSession session(space, opt);

  auto batch = session.ask(10);
  EXPECT_EQ(batch.size(), 6u);  // supply-limited
  std::set<std::pair<double, double>> seen;
  for (const auto& c : batch) {
    session.tell(c.id, c.config[0] + c.config[1]);
    seen.insert({c.config[0], c.config[1]});
  }
  EXPECT_EQ(seen.size(), 6u);  // every grid point exactly once
  EXPECT_EQ(session.state(), SessionState::Exhausted);
}

TEST(TuningSession, BoBackendAvoidsDuplicatesAcrossPendingAsks) {
  const auto space = two_dim_space();
  auto opt = fast_bo_options(12);
  TuningSession session(space, opt);

  // Initial design, told immediately so the surrogate has data.
  for (const auto& c : session.ask(4)) session.tell(c.id, sphere(c.config));
  // Two asks with NO tell in between: constant-liar pending candidates must
  // steer the second ask elsewhere.
  auto first = session.ask(2);
  auto second = session.ask(2);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  for (const auto& a : first) {
    for (const auto& b : second) EXPECT_NE(a.config, b.config);
  }
}

TEST(TuningSession, ObserveConsumesBudget) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 3;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);
  session.observe({1.0, 1.0}, 2.0);
  session.observe({0.5, 0.5}, 0.5);
  EXPECT_EQ(session.completed(), 2u);
  EXPECT_EQ(session.ask(5).size(), 1u);
  EXPECT_DOUBLE_EQ(session.best()->value, 0.5);
}

TEST(TuningSession, ClosedSessionIssuesNothing) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);
  session.close();
  EXPECT_EQ(session.state(), SessionState::Closed);
  EXPECT_TRUE(session.ask(3).empty());
}

// The acceptance scenario: a journaled session killed after ask(4) + 2 tells
// resumes with the same remaining budget, re-issues the 2 untold candidates,
// and finishes with exactly the result of an uninterrupted run.
TEST(TuningSession, JournalResumeMatchesUninterruptedRun) {
  const auto space = two_dim_space();
  const std::string path_a = temp_path("tunekit_session_uninterrupted.jsonl");
  const std::string path_b = temp_path("tunekit_session_interrupted.jsonl");

  const auto drive_to_exhaustion = [&](TuningSession& s) {
    while (true) {
      const auto batch = s.ask(4);
      if (batch.empty()) break;
      for (const auto& c : batch) s.tell(c.id, sphere(c.config));
    }
  };

  // Uninterrupted reference run.
  auto opt = fast_bo_options(12, /*seed=*/21);
  TuningSession reference(space, opt, path_a);
  drive_to_exhaustion(reference);
  const auto ref_result = reference.to_result();
  ASSERT_EQ(ref_result.evaluations, 12u);

  std::vector<Candidate> untold;
  {
    // Interrupted run: ask(4), tell 2, then the process "dies" (the session
    // goes out of scope without any closing write).
    TuningSession victim(space, opt, path_b);
    auto batch = victim.ask(4);
    ASSERT_EQ(batch.size(), 4u);
    victim.tell(batch[0].id, sphere(batch[0].config));
    victim.tell(batch[1].id, sphere(batch[1].config));
    untold = {batch[2], batch[3]};
  }

  auto resumed = TuningSession::resume(space, opt, path_b);
  const auto status = resumed->status();
  EXPECT_EQ(status.completed, 2u);
  EXPECT_EQ(status.queued, 2u);
  EXPECT_EQ(status.remaining, 8u);  // identical remaining budget: 12 - 2 - 2

  // The two untold candidates come back first, unchanged.
  const auto reissued = resumed->ask(4);
  ASSERT_EQ(reissued.size(), 2u);
  EXPECT_EQ(reissued[0].id, untold[0].id);
  EXPECT_EQ(reissued[0].config, untold[0].config);
  EXPECT_EQ(reissued[1].id, untold[1].id);
  EXPECT_EQ(reissued[1].config, untold[1].config);
  for (const auto& c : reissued) resumed->tell(c.id, sphere(c.config));

  drive_to_exhaustion(*resumed);
  const auto res_result = resumed->to_result();
  EXPECT_EQ(res_result.evaluations, ref_result.evaluations);
  EXPECT_DOUBLE_EQ(res_result.best_value, ref_result.best_value);
  EXPECT_EQ(res_result.best_config, ref_result.best_config);
  EXPECT_EQ(res_result.values, ref_result.values);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::filesystem::remove(path_a + ".snapshot.json");
  std::filesystem::remove(path_b + ".snapshot.json");
}

// Failed and dropped candidates survive a crash-resume round trip: the
// classified failure outcomes, the NaN failure_penalty records, the measured
// dispersions, and the per-candidate retry budget all come back.
TEST(TuningSession, FailureRecordsSurviveResume) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_session_failures.jsonl");
  SessionOptions opt;
  opt.max_evals = 6;
  opt.max_attempts = 2;
  opt.backend = SessionBackend::Random;

  std::uint64_t midretry_id = 0;
  {
    TuningSession session(space, opt, path);
    auto batch = session.ask(3);
    ASSERT_EQ(batch.size(), 3u);
    // Candidate 0 times out twice — attempts exhausted, dropped at penalty.
    session.tell_failure(batch[0].id, robust::EvalOutcome::TimedOut);
    auto retry = session.ask(1);
    ASSERT_EQ(retry.size(), 1u);
    ASSERT_EQ(retry[0].id, batch[0].id);
    session.tell_failure(retry[0].id, robust::EvalOutcome::TimedOut);
    // Candidate 1 crashes once and is awaiting its retry when the process
    // "dies".
    session.tell_failure(batch[1].id, robust::EvalOutcome::Crashed);
    // Candidate 2 succeeds, with a repeat-measurement dispersion.
    session.tell(batch[2].id, 4.0, /*cost_seconds=*/0.5, /*dispersion=*/0.25);
    midretry_id = batch[1].id;
  }

  auto resumed = TuningSession::resume(space, opt, path);
  EXPECT_EQ(resumed->completed(), 2u);
  const auto evals = resumed->evaluations();
  ASSERT_EQ(evals.size(), 2u);
  // The drop kept its classified outcome, not a generic crash.
  EXPECT_EQ(evals[0].outcome, robust::EvalOutcome::TimedOut);
  EXPECT_TRUE(std::isnan(evals[0].value));  // default failure_penalty
  EXPECT_EQ(evals[1].outcome, robust::EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(evals[1].value, 4.0);
  EXPECT_DOUBLE_EQ(evals[1].dispersion, 0.25);

  // The mid-retry candidate is re-issued with its attempt count intact, so
  // one more failure exhausts the budget exactly as it would have pre-kill.
  auto reissued = resumed->ask(1);
  ASSERT_EQ(reissued.size(), 1u);
  EXPECT_EQ(reissued[0].id, midretry_id);
  EXPECT_EQ(reissued[0].attempt, 1u);
  resumed->tell_failure(reissued[0].id, robust::EvalOutcome::Crashed);
  EXPECT_EQ(resumed->completed(), 3u);
  const auto after = resumed->evaluations();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[2].outcome, robust::EvalOutcome::Crashed);
  EXPECT_TRUE(std::isnan(after[2].value));

  std::remove(path.c_str());
  std::filesystem::remove(path + ".snapshot.json");
}

TEST(TuningSession, CompactionBoundsJournalAndPreservesState) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_session_compact.jsonl");
  SessionOptions opt;
  opt.max_evals = 20;
  opt.backend = SessionBackend::Random;
  opt.compact_every = 4;
  opt.seed = 5;
  std::vector<Candidate> untold;
  {
    TuningSession session(space, opt, path);
    for (int round = 0; round < 4; ++round) {
      const auto batch = session.ask(4);
      for (const auto& c : batch) session.tell(c.id, sphere(c.config));
    }
    untold = session.ask(2);  // left in flight across the "crash"
    ASSERT_EQ(untold.size(), 2u);
  }
  EXPECT_TRUE(std::filesystem::exists(path + ".snapshot.json"));
  // The compacted journal holds the header plus only in-flight asks.
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_LE(lines, 1u + 2u + 4u);  // header + in-flight (+ at most one round)

  auto resumed = TuningSession::resume(space, opt, path);
  EXPECT_EQ(resumed->completed(), 16u);
  const auto reissued = resumed->ask(4);
  ASSERT_EQ(reissued.size(), 2u);
  EXPECT_EQ(reissued[0].config, untold[0].config);
  EXPECT_EQ(reissued[1].config, untold[1].config);

  std::remove(path.c_str());
  std::filesystem::remove(path + ".snapshot.json");
}

TEST(TuningSession, TornFinalJournalLineIsIgnored) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_session_torn.jsonl");
  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  {
    TuningSession session(space, opt, path);
    const auto batch = session.ask(2);
    session.tell(batch[0].id, 1.0);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"e\":\"tel";  // torn write: the crash hit mid-line
  }
  auto resumed = TuningSession::resume(space, opt, path);
  EXPECT_EQ(resumed->completed(), 1u);
  EXPECT_EQ(resumed->status().queued, 1u);
  std::remove(path.c_str());
}

TEST(TuningSession, ResumeRejectsSpaceMismatch) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_session_mismatch.jsonl");
  SessionOptions opt;
  opt.max_evals = 4;
  opt.backend = SessionBackend::Random;
  { TuningSession session(space, opt, path); }
  search::SearchSpace other;
  other.add(search::ParamSpec::real("only", 0.0, 1.0, 0.5));
  EXPECT_THROW(TuningSession::resume(other, opt, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SessionBackendNames, RoundTrip) {
  EXPECT_EQ(backend_from_string("bo"), SessionBackend::Bo);
  EXPECT_EQ(backend_from_string("random"), SessionBackend::Random);
  EXPECT_EQ(backend_from_string("grid"), SessionBackend::Grid);
  EXPECT_THROW(backend_from_string("annealing"), std::invalid_argument);
  EXPECT_STREQ(to_string(SessionState::Exhausted), "exhausted");
}

}  // namespace
}  // namespace tunekit::service
