// Tests for the hardened evaluation layer: failure taxonomy, watchdog
// deadlines with cooperative cancellation, transient-crash retries with
// backoff, MAD outlier rejection, robust repeated measurement, and the
// HardenedObjective decorator.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "robust/fault_injection.hpp"
#include "robust/measure.hpp"
#include "robust/outcome.hpp"
#include "robust/watchdog.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace tunekit::robust {
namespace {

// --- Outcome taxonomy ---

TEST(EvalOutcome, StringsRoundTrip) {
  for (EvalOutcome o : {EvalOutcome::Ok, EvalOutcome::Crashed, EvalOutcome::TimedOut,
                        EvalOutcome::InvalidConfig, EvalOutcome::NonFinite}) {
    EXPECT_EQ(outcome_from_string(to_string(o)), o);
  }
  EXPECT_THROW(outcome_from_string("bogus"), std::invalid_argument);
}

TEST(EvalOutcome, ClassifyValue) {
  EXPECT_EQ(classify_value(1.5), EvalOutcome::Ok);
  EXPECT_EQ(classify_value(0.0), EvalOutcome::Ok);
  EXPECT_EQ(classify_value(std::numeric_limits<double>::quiet_NaN()),
            EvalOutcome::NonFinite);
  EXPECT_EQ(classify_value(std::numeric_limits<double>::infinity()),
            EvalOutcome::NonFinite);
  EXPECT_EQ(classify_value(-std::numeric_limits<double>::infinity()),
            EvalOutcome::NonFinite);
}

TEST(EvalOutcome, IsFailure) {
  EXPECT_FALSE(is_failure(EvalOutcome::Ok));
  EXPECT_TRUE(is_failure(EvalOutcome::Crashed));
  EXPECT_TRUE(is_failure(EvalOutcome::TimedOut));
  EXPECT_TRUE(is_failure(EvalOutcome::InvalidConfig));
  EXPECT_TRUE(is_failure(EvalOutcome::NonFinite));
}

TEST(EvalFailure, CarriesOutcome) {
  const EvalFailure f(EvalOutcome::TimedOut, "deadline");
  EXPECT_EQ(f.outcome(), EvalOutcome::TimedOut);
  EXPECT_STREQ(f.what(), "deadline");
}

// --- MAD helpers ---

TEST(MadHelpers, MedianAndMad) {
  EXPECT_TRUE(std::isnan(median_of({})));
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 3.0}, 2.0), 1.0);
}

TEST(MadHelpers, KeepRejectsGrossOutlier) {
  const std::vector<double> samples = {10.0, 10.1, 9.9, 10.05, 100.0};
  const auto keep = mad_keep(samples, 3.5);
  ASSERT_EQ(keep.size(), 4u);
  for (std::size_t i : keep) EXPECT_LT(samples[i], 50.0);
}

TEST(MadHelpers, KeepsEverythingBelowThreeSamples) {
  EXPECT_EQ(mad_keep({1.0, 100.0}, 3.5).size(), 2u);
  EXPECT_EQ(mad_keep({1.0}, 3.5).size(), 1u);
}

TEST(MadHelpers, IdenticalSamplesKeepAll) {
  EXPECT_EQ(mad_keep({5.0, 5.0, 5.0, 5.0}, 3.5).size(), 4u);
}

TEST(MadHelpers, DisabledThresholdKeepsAll) {
  EXPECT_EQ(mad_keep({1.0, 2.0, 1000.0}, 0.0).size(), 3u);
}

// --- Watchdog ---

class SlowObjective final : public search::Objective {
 public:
  explicit SlowObjective(double seconds) : seconds_(seconds) {}

  double evaluate(const search::Config& c) override {
    return evaluate_cancellable(c, search::CancelFlag());
  }
  double evaluate_cancellable(const search::Config& c,
                              const search::CancelFlag& cancel) override {
    using clock = std::chrono::steady_clock;
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(seconds_));
    while (clock::now() < deadline) {
      if (cancel.cancelled()) {
        saw_cancel_.store(true);
        throw EvalFailure(EvalOutcome::TimedOut, "cancelled");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return c[0];
  }
  bool thread_safe() const override { return true; }

  bool saw_cancel() const { return saw_cancel_.load(); }

 private:
  double seconds_;
  std::atomic<bool> saw_cancel_{false};
};

TEST(Watchdog, TrivialOptionsRunInline) {
  Watchdog dog;
  EXPECT_TRUE(dog.trivial());
  search::FunctionObjective obj([](const search::Config& c) { return c[0] * 2.0; });
  const auto r = dog.evaluate(obj, {3.0});
  EXPECT_EQ(r.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(r.value, 6.0);
  EXPECT_EQ(r.attempts, 1u);
}

TEST(Watchdog, ClassifiesExceptions) {
  Watchdog dog;
  search::FunctionObjective crash(
      [](const search::Config&) -> double { throw std::runtime_error("boom"); });
  EXPECT_EQ(dog.evaluate(crash, {0.0}).outcome, EvalOutcome::Crashed);

  search::FunctionObjective invalid([](const search::Config&) -> double {
    throw std::invalid_argument("bad config");
  });
  EXPECT_EQ(dog.evaluate(invalid, {0.0}).outcome, EvalOutcome::InvalidConfig);

  search::FunctionObjective nonstd([](const search::Config&) -> double { throw 42; });
  const auto r = dog.evaluate(nonstd, {0.0});
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_EQ(r.error, "non-standard exception");

  search::FunctionObjective nan_obj([](const search::Config&) {
    return std::numeric_limits<double>::quiet_NaN();
  });
  EXPECT_EQ(dog.evaluate(nan_obj, {0.0}).outcome, EvalOutcome::NonFinite);
}

TEST(Watchdog, TimesOutAndCancelsHungEvaluation) {
  WatchdogOptions opts;
  opts.timeout_seconds = 0.05;
  Watchdog dog(opts);
  EXPECT_FALSE(dog.trivial());

  SlowObjective slow(30.0);  // would run half a minute without the watchdog
  const auto start = std::chrono::steady_clock::now();
  const auto r = dog.evaluate(slow, {1.0});
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_EQ(r.outcome, EvalOutcome::TimedOut);
  EXPECT_TRUE(std::isnan(r.value));
  EXPECT_LT(waited, 5.0);  // returned at the deadline, not after 30s
  // The cooperative objective notices the cancel shortly after.
  for (int i = 0; i < 100 && !slow.saw_cancel(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(slow.saw_cancel());
}

TEST(Watchdog, FastEvaluationUnaffectedByTimeout) {
  WatchdogOptions opts;
  opts.timeout_seconds = 10.0;
  Watchdog dog(opts);
  search::FunctionObjective obj([](const search::Config& c) { return c[0]; });
  const auto r = dog.evaluate(obj, {7.0});
  EXPECT_EQ(r.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(r.value, 7.0);
}

TEST(Watchdog, RetriesTransientCrashes) {
  WatchdogOptions opts;
  opts.max_retries = 3;
  opts.backoff_seconds = 0.001;
  Watchdog dog(opts);

  int calls = 0;
  search::FunctionObjective flaky([&calls](const search::Config& c) -> double {
    if (++calls < 3) throw std::runtime_error("transient");
    return c[0];
  });
  const auto r = dog.evaluate(flaky, {5.0});
  EXPECT_EQ(r.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  EXPECT_EQ(r.attempts, 3u);
}

TEST(Watchdog, DoesNotRetryInvalidConfig) {
  WatchdogOptions opts;
  opts.max_retries = 5;
  Watchdog dog(opts);
  int calls = 0;
  search::FunctionObjective invalid([&calls](const search::Config&) -> double {
    ++calls;
    throw std::invalid_argument("deterministically invalid");
  });
  const auto r = dog.evaluate(invalid, {0.0});
  EXPECT_EQ(r.outcome, EvalOutcome::InvalidConfig);
  EXPECT_EQ(calls, 1);
}

TEST(Watchdog, RetriesExhaustedStaysCrashed) {
  WatchdogOptions opts;
  opts.max_retries = 2;
  Watchdog dog(opts);
  search::FunctionObjective doomed(
      [](const search::Config&) -> double { throw std::runtime_error("always"); });
  const auto r = dog.evaluate(doomed, {0.0});
  EXPECT_EQ(r.outcome, EvalOutcome::Crashed);
  EXPECT_EQ(r.attempts, 3u);
}

// --- RobustMeasurer ---

TEST(RobustMeasurer, SingleRepeatMatchesBareCall) {
  RobustMeasurer measurer;
  search::FunctionObjective obj([](const search::Config& c) { return c[0] * c[0]; });
  const auto m = measurer.measure(obj, {3.0});
  EXPECT_EQ(m.outcome, EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(m.value, 9.0);
  EXPECT_EQ(m.n_samples, 1u);
  EXPECT_DOUBLE_EQ(m.dispersion, 0.0);
  EXPECT_DOUBLE_EQ(m.stderr_of_mean, 0.0);
}

TEST(RobustMeasurer, TrimsOutlierAndReportsDispersion) {
  MeasureOptions opts;
  opts.repeats = 7;
  RobustMeasurer measurer(opts);

  // Six tight samples and one 10x spike (an OS hiccup).
  const std::vector<double> script = {10.0, 10.2, 9.8, 10.1, 9.9, 100.0, 10.0};
  std::size_t call = 0;
  search::FunctionObjective obj(
      [&](const search::Config&) { return script[call++ % script.size()]; });

  const auto m = measurer.measure(obj, {0.0});
  EXPECT_EQ(m.outcome, EvalOutcome::Ok);
  EXPECT_EQ(m.n_samples, 7u);
  EXPECT_EQ(m.n_ok, 7u);
  EXPECT_EQ(m.n_rejected, 1u);
  // Trimmed mean of the six tight samples, unmoved by the spike.
  EXPECT_NEAR(m.value, 10.0, 0.2);
  EXPECT_GT(m.dispersion, 0.0);
  EXPECT_LT(m.dispersion, 1.0);
  EXPECT_NEAR(m.stderr_of_mean, m.dispersion / std::sqrt(6.0), 1e-12);
}

TEST(RobustMeasurer, ToleratesMinorityFailures) {
  MeasureOptions opts;
  opts.repeats = 5;
  RobustMeasurer measurer(opts);

  std::size_t call = 0;
  search::FunctionObjective obj([&](const search::Config&) -> double {
    if (call++ == 2) throw std::runtime_error("one bad repeat");
    return 4.0;
  });
  const auto m = measurer.measure(obj, {0.0});
  EXPECT_EQ(m.outcome, EvalOutcome::Ok);
  EXPECT_EQ(m.n_ok, 4u);
  EXPECT_DOUBLE_EQ(m.value, 4.0);
}

TEST(RobustMeasurer, AllFailuresReportDominantOutcome) {
  MeasureOptions opts;
  opts.repeats = 5;
  RobustMeasurer measurer(opts);

  std::size_t call = 0;
  search::FunctionObjective obj([&](const search::Config&) -> double {
    if (call++ < 2) return std::numeric_limits<double>::quiet_NaN();
    throw std::runtime_error("crash");
  });
  const auto m = measurer.measure(obj, {0.0});
  EXPECT_EQ(m.outcome, EvalOutcome::Crashed);  // 3 crashes beat 2 NaN
  EXPECT_TRUE(std::isnan(m.value));
  EXPECT_EQ(m.n_ok, 0u);
}

TEST(RobustMeasurer, MinOkEnforced) {
  MeasureOptions opts;
  opts.repeats = 4;
  opts.min_ok = 3;
  RobustMeasurer measurer(opts);

  std::size_t call = 0;
  search::FunctionObjective obj([&](const search::Config&) -> double {
    if (call++ % 2 == 0) throw std::runtime_error("half fail");
    return 1.0;
  });
  const auto m = measurer.measure(obj, {0.0});
  // Only 2 of 4 succeeded < min_ok=3: the measurement as a whole fails.
  EXPECT_EQ(m.outcome, EvalOutcome::Crashed);
}

TEST(RobustMeasurer, InvalidConfigShortCircuitsRepeats) {
  MeasureOptions opts;
  opts.repeats = 6;
  RobustMeasurer measurer(opts);
  int calls = 0;
  search::FunctionObjective obj([&calls](const search::Config&) -> double {
    ++calls;
    throw std::invalid_argument("never valid");
  });
  const auto m = measurer.measure(obj, {0.0});
  EXPECT_EQ(m.outcome, EvalOutcome::InvalidConfig);
  EXPECT_EQ(calls, 1);  // deterministic failure: repeating is waste
}

TEST(RobustMeasurer, RegionsAveragedOverKeptSamples) {
  MeasureOptions opts;
  opts.repeats = 3;
  RobustMeasurer measurer(opts);

  class RegionObj final : public search::RegionObjective {
   public:
    search::RegionTimes evaluate_regions(const search::Config&) override {
      search::RegionTimes t;
      t.regions["a"] = 1.0 + 0.1 * static_cast<double>(call_);
      t.regions["b"] = 2.0;
      t.total = t.regions["a"] + t.regions["b"];
      ++call_;
      return t;
    }

   private:
    int call_ = 0;
  } obj;

  const auto m = measurer.measure_regions(obj, {0.0});
  EXPECT_EQ(m.outcome, EvalOutcome::Ok);
  EXPECT_NEAR(m.regions.regions.at("a"), 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(m.regions.regions.at("b"), 2.0);
  EXPECT_DOUBLE_EQ(m.regions.total, m.value);
  EXPECT_GT(m.region_dispersion.at("a"), 0.0);
  EXPECT_DOUBLE_EQ(m.region_dispersion.at("b"), 0.0);
}

TEST(MeasureOptions, TrivialityDetection) {
  EXPECT_TRUE(is_trivial(MeasureOptions{}));
  MeasureOptions repeats;
  repeats.repeats = 3;
  EXPECT_FALSE(is_trivial(repeats));
  MeasureOptions timeout;
  timeout.watchdog.timeout_seconds = 1.0;
  EXPECT_FALSE(is_trivial(timeout));
  MeasureOptions retries;
  retries.watchdog.max_retries = 2;
  EXPECT_FALSE(is_trivial(retries));
}

// --- HardenedObjective ---

TEST(HardenedObjective, PassesThroughSuccess) {
  search::FunctionObjective inner([](const search::Config& c) { return c[0] + 1.0; });
  MeasureOptions opts;
  opts.repeats = 3;
  HardenedObjective hardened(inner, opts);
  EXPECT_DOUBLE_EQ(hardened.evaluate({2.0}), 3.0);
}

TEST(HardenedObjective, RethrowsClassifiedFailure) {
  search::FunctionObjective inner(
      [](const search::Config&) -> double { throw std::runtime_error("boom"); });
  HardenedObjective hardened(inner, MeasureOptions{});
  try {
    hardened.evaluate({0.0});
    FAIL() << "expected EvalFailure";
  } catch (const EvalFailure& e) {
    EXPECT_EQ(e.outcome(), EvalOutcome::Crashed);
  }
}

TEST(HardenedObjective, RetriesMakeFlakySucceed) {
  int calls = 0;
  search::FunctionObjective inner([&calls](const search::Config& c) -> double {
    if (++calls == 1) throw std::runtime_error("transient");
    return c[0];
  });
  MeasureOptions opts;
  opts.watchdog.max_retries = 2;
  HardenedObjective hardened(inner, opts);
  EXPECT_DOUBLE_EQ(hardened.evaluate({8.0}), 8.0);
}

// --- Fault injection ---

TEST(FaultyObjective, NoFaultsIsTransparent) {
  search::FunctionObjective inner([](const search::Config& c) { return c[0]; });
  FaultyObjective faulty(inner, FaultOptions{});
  EXPECT_DOUBLE_EQ(faulty.evaluate({3.5}), 3.5);
  EXPECT_EQ(faulty.stats().calls.load(), 1u);
  EXPECT_EQ(faulty.stats().crashes.load(), 0u);
}

TEST(FaultyObjective, InjectsCrashesAtRoughlyTheConfiguredRate) {
  search::FunctionObjective inner([](const search::Config& c) { return c[0]; });
  FaultOptions fopts;
  fopts.crash_prob = 0.3;
  fopts.seed = 7;
  FaultyObjective faulty(inner, fopts);

  std::size_t crashes = 0;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      faulty.evaluate({static_cast<double>(i)});
    } catch (const std::runtime_error&) {
      ++crashes;
    }
  }
  EXPECT_EQ(faulty.stats().crashes.load(), crashes);
  EXPECT_GT(crashes, n / 5);      // ~300 expected
  EXPECT_LT(crashes, 2 * n / 5);
}

TEST(FaultyObjective, PerConfigModelIsDeterministic) {
  search::FunctionObjective inner([](const search::Config& c) { return c[0]; });
  FaultOptions fopts;
  fopts.crash_prob = 0.5;
  fopts.model = FaultModel::PerConfig;
  fopts.seed = 11;
  FaultyObjective faulty(inner, fopts);

  auto crashes = [&](double x) {
    try {
      faulty.evaluate({x});
      return false;
    } catch (const std::runtime_error&) {
      return true;
    }
  };
  // The same config gets the same fate on every attempt; a fresh decorator
  // with the same seed agrees (restart determinism).
  bool any_crash = false, any_ok = false;
  for (int i = 0; i < 32; ++i) {
    const double x = static_cast<double>(i);
    const bool first = crashes(x);
    EXPECT_EQ(crashes(x), first);
    EXPECT_EQ(crashes(x), first);
    any_crash |= first;
    any_ok |= !first;
  }
  EXPECT_TRUE(any_crash);
  EXPECT_TRUE(any_ok);

  FaultyObjective again(inner, fopts);
  for (int i = 0; i < 32; ++i) {
    const double x = static_cast<double>(i);
    bool a;
    try {
      faulty.evaluate({x});
      a = false;
    } catch (const std::runtime_error&) {
      a = true;
    }
    bool b;
    try {
      again.evaluate({x});
      b = false;
    } catch (const std::runtime_error&) {
      b = true;
    }
    EXPECT_EQ(a, b);
  }
}

TEST(FaultyObjective, HeavyTailNoiseIsMultiplicativeAndPositive) {
  search::FunctionObjective inner([](const search::Config&) { return 10.0; });
  FaultOptions fopts;
  fopts.noise_scale = 0.05;
  fopts.seed = 3;
  FaultyObjective faulty(inner, fopts);

  double lo = 1e300, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = faulty.evaluate({static_cast<double>(i)});
    EXPECT_GT(v, 0.0);  // exp-noise keeps timings positive
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 10.0);  // noise actually moves the value both ways
  EXPECT_GT(hi, 10.0);
}

TEST(FaultyObjective, HangCancelledByWatchdog) {
  search::FunctionObjective inner([](const search::Config&) { return 1.0; });
  FaultOptions fopts;
  fopts.hang_prob = 1.0;
  fopts.hang_seconds = 30.0;
  FaultyObjective faulty(inner, fopts);

  WatchdogOptions wopts;
  wopts.timeout_seconds = 0.05;
  Watchdog dog(wopts);
  const auto start = std::chrono::steady_clock::now();
  const auto r = dog.evaluate(faulty, {0.0});
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(r.outcome, EvalOutcome::TimedOut);
  EXPECT_LT(waited, 5.0);
  EXPECT_EQ(faulty.stats().hangs.load(), 1u);
}

TEST(FaultyObjective, ShortHangWithoutWatchdogProceeds) {
  search::FunctionObjective inner([](const search::Config& c) { return c[0]; });
  FaultOptions fopts;
  fopts.hang_prob = 1.0;
  fopts.hang_seconds = 0.01;  // a straggler, not a true hang
  FaultyObjective faulty(inner, fopts);
  EXPECT_DOUBLE_EQ(faulty.evaluate({2.0}), 2.0);
  EXPECT_EQ(faulty.stats().hangs.load(), 1u);
}

TEST(FaultyApp, InjectsIntoRegionPath) {
  class TinyApp final : public core::TunableApp {
   public:
    const search::SearchSpace& space() const override { return space_; }
    std::vector<core::RoutineSpec> routines() const override {
      return {{"r", {0}}};
    }
    search::RegionTimes evaluate_regions(const search::Config& c) override {
      search::RegionTimes t;
      t.regions["r"] = c[0];
      t.total = c[0];
      return t;
    }
    bool thread_safe() const override { return true; }
    TinyApp() { space_.add(search::ParamSpec::real("x", 1.0, 10.0, 2.0)); }

   private:
    search::SearchSpace space_;
  } app;

  FaultOptions fopts;
  fopts.nan_prob = 1.0;
  FaultyApp faulty(app, fopts);
  EXPECT_EQ(faulty.name(), app.name() + "+faults");
  const auto t = faulty.evaluate_regions({2.0});
  EXPECT_TRUE(std::isnan(t.total));
  EXPECT_EQ(faulty.stats().nans.load(), 1u);
}

}  // namespace
}  // namespace tunekit::robust
