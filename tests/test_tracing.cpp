// Distributed-tracing tests: traceparent wire format, remote trace adoption,
// Prometheus hardening (name sanitization, label escaping, exemplars, the
// span-drop counter), the per-session flight recorder, heartbeat clock sync
// and skewed-clock span anchoring, replay span events, the /debug surfaces,
// and an end-to-end acceptance run: a remote drive through a 2-node fleet
// must produce one single-rooted trace tree whose root is the client request
// and whose leaves are worker-side objective spans.

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fleet/clock_sync.hpp"
#include "fleet/dispatcher.hpp"
#include "fleet/node_agent.hpp"
#include "net/client.hpp"
#include "net/rest_api.hpp"
#include "net/server.hpp"
#include "net/session_manager.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"

namespace tunekit {
namespace {

// --- traceparent wire format ---

TEST(Traceparent, RoundTripsThroughHeaderForm) {
  obs::TraceContext ctx;
  ctx.trace = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  ctx.parent = 0x00000000deadbeefULL;
  const std::string header = obs::to_traceparent(ctx);
  ASSERT_EQ(header.size(), 55u);
  EXPECT_EQ(header.substr(0, 3), "00-");
  EXPECT_EQ(header, "00-0123456789abcdeffedcba9876543210-00000000deadbeef-01");

  const auto parsed = obs::parse_traceparent(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace, ctx.trace);
  EXPECT_EQ(parsed->parent, ctx.parent);
}

TEST(Traceparent, RejectsMalformedHeaders) {
  EXPECT_FALSE(obs::parse_traceparent("").has_value());
  EXPECT_FALSE(obs::parse_traceparent("00-abc-def-01").has_value());
  // Zero trace id is explicitly invalid per the W3C spec.
  EXPECT_FALSE(obs::parse_traceparent(
                   "00-00000000000000000000000000000000-00000000deadbeef-01")
                   .has_value());
  // Non-hex characters in the trace field.
  EXPECT_FALSE(obs::parse_traceparent(
                   "00-0123456789abcdefzedcba9876543210-00000000deadbeef-01")
                   .has_value());
  // Unknown version prefix.
  EXPECT_FALSE(obs::parse_traceparent(
                   "ff-0123456789abcdeffedcba9876543210-00000000deadbeef-01")
                   .has_value());
}

// --- remote trace adoption ---

TEST(Telemetry, SpanAdoptsRemoteTraceContext) {
  obs::Telemetry t;
  t.enable();
  obs::TraceContext inbound;
  inbound.trace = {7, 9};
  inbound.parent = 42;
  {
    obs::ScopedSpan handler(&t, "server.POST /x", inbound, "http");
    obs::ScopedSpan child(&t, "inner");
    (void)handler;
  }
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    // Both the adopted handler span and its local child carry the remote
    // trace; the handler hangs from the remote parent span id.
    EXPECT_EQ(s.trace, inbound.trace) << s.name;
    if (s.name == "server.POST /x") {
      EXPECT_EQ(s.parent, inbound.parent);
    }
  }
}

TEST(Telemetry, InvalidContextFallsBackToFreshRootTrace) {
  obs::Telemetry t;
  t.enable();
  {
    obs::ScopedSpan handler(&t, "server.GET /x", obs::TraceContext{}, "http");
  }
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_TRUE(spans[0].trace.valid());  // minted, not inherited
}

// --- Prometheus exposition hardening ---

TEST(Export, SanitizesMetricNamesAndEscapesLabelValues) {
  EXPECT_EQ(obs::sanitize_metric_name("tunekit_ok_total"), "tunekit_ok_total");
  EXPECT_EQ(obs::sanitize_metric_name("bad name-with.dots"),
            "bad_name_with_dots");
  EXPECT_EQ(obs::sanitize_metric_name("0leading"), "_0leading");
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");

  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("a\nb"), "a\\nb");
}

TEST(Export, ExemplarsAndDroppedSpanCounterInExposition) {
  obs::Telemetry t;
  t.enable();
  auto& h = t.metrics().histogram(obs::metric::kHttpRequestSeconds);
  h.observe_with_exemplar(0.004, "0123456789abcdef0123456789abcdef");
  const std::string text = obs::prometheus_text(t);
  EXPECT_NE(text.find("# {trace_id=\"0123456789abcdef0123456789abcdef\"}"),
            std::string::npos);
  // The telemetry-level overload exports the span buffer's drop counter.
  EXPECT_NE(text.find(obs::metric::kDroppedSpans), std::string::npos);
}

// --- flight recorder ---

TEST(FlightRecorder, RingOverwritesOldestAndKeepsSequence) {
  obs::FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.record("tick", "n=" + std::to_string(i));
  }
  EXPECT_EQ(rec.total(), 20u);
  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and exactly the last 8 of the 20 recorded.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13u + i);
    EXPECT_EQ(events[i].kind, "tick");
  }
  const json::Value j = rec.to_json();
  EXPECT_EQ(j.number_or("recorded_total", 0.0), 20.0);
  EXPECT_EQ(j.number_or("capacity", 0.0), 8.0);
  EXPECT_EQ(j.at("events").as_array().size(), 8u);
}

TEST(FlightRecorder, AttachesAmbientTrace) {
  obs::FlightRecorder rec(8);
  const obs::TraceId trace{11, 22};
  {
    obs::CurrentSpanScope scope(/*id=*/5, trace);
    rec.record("ask", "k=1");
  }
  rec.record("close");  // no ambient trace here
  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace, trace);
  EXPECT_FALSE(events[1].trace.valid());
}

// --- heartbeat clock sync ---

TEST(ClockSync, KeepsMinRttEstimateAndResets) {
  fleet::ClockSync sync;
  EXPECT_FALSE(sync.synced());
  sync.observe(/*local=*/1'000'000, /*node=*/500'000, /*rtt=*/0);
  EXPECT_FALSE(sync.synced());  // rtt 0 = not yet measured, ignored

  // First real sample: offset = local - node - rtt/2.
  sync.observe(1'000'000, 500'000, 100'000);
  ASSERT_TRUE(sync.synced());
  EXPECT_EQ(sync.offset_ns(), 1'000'000 - 500'000 - 50'000);
  EXPECT_EQ(sync.best_rtt_ns(), 100'000u);

  // A slower (queue-inflated) sample must not displace the estimate.
  sync.observe(2'000'000, 1'200'000, 400'000);
  EXPECT_EQ(sync.best_rtt_ns(), 100'000u);
  EXPECT_EQ(sync.offset_ns(), 450'000);

  // A faster sample refines it.
  sync.observe(3'000'000, 2'560'000, 20'000);
  EXPECT_EQ(sync.best_rtt_ns(), 20'000u);
  EXPECT_EQ(sync.offset_ns(), 3'000'000 - 2'560'000 - 10'000);

  EXPECT_EQ(sync.to_local_ns(100), static_cast<std::uint64_t>(100 + sync.offset_ns()));
  sync.reset();
  EXPECT_FALSE(sync.synced());
  EXPECT_EQ(sync.offset_ns(), 0);
}

// --- skewed-clock span anchoring (the satellite acceptance case) ---

TEST(SpanAnchoring, SkewedNodeClockChildStaysInsideParentInterval) {
  // A node whose steady clock runs 5 s ahead of the dispatcher's. Scripted
  // heartbeat: sent at node time `send`, arriving rtt/2 later on the
  // dispatcher clock.
  const std::int64_t skew = 5'000'000'000;  // node = local + 5 s
  const std::uint64_t rtt = 2'000'000;      // 2 ms round trip
  fleet::ClockSync sync;
  const std::uint64_t local_send = 90'000'000'000ULL;
  const std::uint64_t node_send = local_send + skew;
  sync.observe(local_send + rtt / 2, node_send, rtt);
  ASSERT_TRUE(sync.synced());
  // Estimated offset maps node time back: error bounded by rtt/2.
  EXPECT_NEAR(static_cast<double>(sync.offset_ns()), static_cast<double>(-skew),
              static_cast<double>(rtt) / 2.0);

  // The rpc interval on the dispatcher clock, and a node-side objective
  // span measured on the skewed node clock strictly inside it.
  const std::uint64_t rpc_start = 100'000'000'000ULL;
  const std::uint64_t arrival = 101'000'000'000ULL;  // 1 s later
  std::vector<fleet::WireSpan> spans;
  spans.push_back({"node.objective",
                   /*start=*/rpc_start + 200'000'000 + skew,
                   /*dur=*/500'000'000});

  const std::int64_t shift =
      fleet::span_shift(true, sync.offset_ns(), spans, arrival);
  const fleet::AnchoredSpan a =
      fleet::anchor_span(spans[0], shift, rpc_start, arrival);
  // Mapped back to ~200 ms into the rpc (within the rtt/2 error bound)...
  EXPECT_NEAR(static_cast<double>(a.start_ns),
              static_cast<double>(rpc_start + 200'000'000),
              static_cast<double>(rtt) / 2.0);
  // ...and contained in the parent interval.
  EXPECT_GE(a.start_ns, rpc_start);
  EXPECT_LE(a.start_ns + a.dur_ns, arrival);
}

TEST(SpanAnchoring, ExtremeSkewAndUnsyncedFallbackStayClamped) {
  const std::uint64_t rpc_start = 100'000'000'000ULL;
  const std::uint64_t arrival = 101'000'000'000ULL;

  // A lying clock mapped far outside the interval is clamped into it.
  std::vector<fleet::WireSpan> wild;
  wild.push_back({"node.objective", /*start=*/999'000'000'000ULL,
                  /*dur=*/50'000'000'000ULL});
  for (const std::int64_t shift :
       {std::int64_t{0}, std::int64_t{-2'000'000'000'000},
        std::int64_t{+2'000'000'000'000}}) {
    const fleet::AnchoredSpan a =
        fleet::anchor_span(wild[0], shift, rpc_start, arrival);
    EXPECT_GE(a.start_ns, rpc_start) << "shift " << shift;
    EXPECT_LE(a.start_ns + a.dur_ns, arrival) << "shift " << shift;
  }

  // Before the first RTT sample (unsynced): the last span's end anchors at
  // the arrival, so everything lands in the past and inside the interval.
  std::vector<fleet::WireSpan> spans;
  spans.push_back({"node.queue", 7'000'000'000ULL, 100'000'000ULL});
  spans.push_back({"node.objective", 7'100'000'000ULL, 400'000'000ULL});
  const std::int64_t shift = fleet::span_shift(false, 0, spans, arrival);
  for (const auto& w : spans) {
    const fleet::AnchoredSpan a = fleet::anchor_span(w, shift, rpc_start, arrival);
    EXPECT_GE(a.start_ns, rpc_start);
    EXPECT_LE(a.start_ns + a.dur_ns, arrival);
  }
  // The last span's end sits exactly at the arrival under the fallback.
  const fleet::AnchoredSpan last =
      fleet::anchor_span(spans[1], shift, rpc_start, arrival);
  EXPECT_EQ(last.start_ns + last.dur_ns, arrival);
}

// --- session manager: replay events + /debug surfaces ---

json::Value tiny_session_spec(const std::string& id) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(8);
  spec["space"] = json::parse(
      "{\"params\":[{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
      "\"default\":0.5}]}");
  return json::Value(std::move(spec));
}

TEST(SessionManagerTracing, ReplayedAskRecordsEventNotSecondSpanTree) {
  obs::Telemetry t;
  t.enable();
  net::SessionManagerOptions mopt;
  mopt.telemetry = &t;
  net::SessionManager manager(mopt);
  manager.create(tiny_session_spec("rep"));

  const json::Value first = manager.ask("rep", 1, "key-1");
  const std::size_t spans_before = t.spans().size();
  json::Value replayed;
  {
    // Simulate the handler span a retried HTTP request would run under.
    obs::ScopedSpan handler(&t, "server.POST /v1/sessions/rep/ask",
                            obs::Telemetry::kInheritParent, "http");
    replayed = manager.ask("rep", 1, "key-1");
  }
  EXPECT_EQ(replayed.dump(), first.dump());

  bool saw_replay_event = false;
  for (const auto& e : t.events()) {
    if (e.name == "replayed") saw_replay_event = true;
  }
  EXPECT_TRUE(saw_replay_event);
  // The replay added the handler span itself but no second ask subtree.
  EXPECT_EQ(t.spans().size(), spans_before + 1);
}

TEST(SessionManagerTracing, DebugServesFlightRecorderAndNoteAnnotates) {
  net::SessionManagerOptions mopt;
  net::SessionManager manager(mopt);
  manager.create(tiny_session_spec("dbg"));
  manager.ask("dbg", 2);
  manager.note("dbg", "shed", "drive shed: fleet degraded");
  manager.note("unknown-session", "shed", "ignored");  // must not throw

  const json::Value debug = manager.debug("dbg");
  EXPECT_EQ(debug.at("id").as_string(), "dbg");
  EXPECT_TRUE(debug.at("resident").as_bool());
  const auto& events =
      debug.at("flight_recorder").at("events").as_array();
  std::set<std::string> kinds;
  for (const auto& e : events) kinds.insert(e.at("kind").as_string());
  EXPECT_TRUE(kinds.count("create"));
  EXPECT_TRUE(kinds.count("ask"));
  EXPECT_TRUE(kinds.count("shed"));

  EXPECT_THROW(manager.debug("unknown-session"), net::ApiError);
}

// --- end-to-end acceptance: remote drive through a 2-node fleet ---

class TracingBackend final : public robust::EvalBackend {
 public:
  robust::SandboxResult evaluate(const search::Config& config,
                                 double /*deadline_seconds*/) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    robust::SandboxResult r;
    r.outcome = robust::EvalOutcome::Ok;
    r.value = 0.0;
    for (const double v : config) r.value += v;
    return r;
  }
  bool healthy() const override { return true; }
  std::size_t concurrency() const override { return 2; }
};

TEST(FleetTracing, RemoteDriveYieldsSingleRootedTreeWithObjectiveLeaves) {
  obs::Telemetry server_tel;
  server_tel.enable();

  fleet::DispatcherOptions dopt;
  dopt.port = 0;
  dopt.heartbeat_interval_s = 0.05;
  dopt.telemetry = &server_tel;
  auto dispatcher = std::make_shared<fleet::FleetDispatcher>(dopt);

  auto make_agent = [&](const std::string& id) {
    fleet::NodeAgentOptions aopt;
    aopt.host = "127.0.0.1";
    aopt.port = dispatcher->port();
    aopt.node_id = id;
    aopt.slots = 2;
    aopt.backend = std::make_shared<TracingBackend>();
    aopt.reconnect_base_s = 0.05;
    aopt.reconnect_max_s = 0.2;
    return std::make_unique<fleet::NodeAgent>(aopt);
  };
  auto agent_a = make_agent("trace-a");
  auto agent_b = make_agent("trace-b");
  std::thread thread_a([&] { agent_a->run(); });
  std::thread thread_b([&] { agent_b->run(); });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dispatcher->registry().nodes_alive() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(dispatcher->registry().nodes_alive(), 2u);

  net::SessionManagerOptions mopt;
  mopt.telemetry = &server_tel;
  net::SessionManager manager(mopt);
  net::RestApi api(manager, &server_tel, dispatcher);
  net::ServerOptions sopt;
  sopt.host = "127.0.0.1";
  sopt.port = 0;
  sopt.telemetry = &server_tel;
  net::HttpServer server(sopt,
                         [&](const net::HttpRequest& r) { return api.handle(r); });
  server.start();

  // Traced client: its request span is the root of the distributed trace.
  obs::Telemetry client_tel;
  client_tel.enable();
  net::ClientRetryOptions retry;
  retry.telemetry = &client_tel;
  net::Client client("127.0.0.1", server.port(), 30.0, retry);
  client.create_session(tiny_session_spec("e2e"));
  const json::Value report =
      client.drive_session("e2e", json::Value(json::Object{}));
  EXPECT_GE(report.number_or("completed", 0.0), 8.0);

  // The client span that drove the run names the drive endpoint.
  obs::TraceId trace;
  for (const auto& s : client_tel.spans()) {
    if (s.name.find("/drive") != std::string::npos) trace = s.trace;
  }
  ASSERT_TRUE(trace.valid());

  // Server side: collect that trace's spans and check the tree shape.
  std::map<std::uint64_t, obs::SpanRecord> by_id;
  for (const auto& s : server_tel.spans()) {
    if (s.trace == trace) by_id[s.id] = s;
  }
  ASSERT_FALSE(by_id.empty());

  const obs::SpanRecord* root = nullptr;
  std::size_t roots = 0;
  for (const auto& [id, s] : by_id) {
    if (s.parent == 0 || by_id.find(s.parent) == by_id.end()) {
      root = &s;
      ++roots;
    }
  }
  ASSERT_EQ(roots, 1u) << "drive trace must be single-rooted";
  // The root is the server-side image of the client request.
  EXPECT_NE(root->name.find("server.POST"), std::string::npos);
  EXPECT_NE(root->name.find("/drive"), std::string::npos);

  // Leaves: worker-side objective spans, each chained up to the root and
  // contained within it.
  std::set<std::uint64_t> parents;
  for (const auto& [id, s] : by_id) parents.insert(s.parent);
  std::size_t objective_leaves = 0;
  for (const auto& [id, s] : by_id) {
    if (s.name != "node.objective") continue;
    ++objective_leaves;
    EXPECT_FALSE(parents.count(id)) << "objective spans must be leaves";
    EXPECT_GE(s.start_ns, root->start_ns);
    EXPECT_LE(s.start_ns + s.dur_ns, root->start_ns + root->dur_ns);
    // Walk the ancestry to the root.
    std::uint64_t cur = s.id;
    std::size_t hops = 0;
    while (by_id.at(cur).parent != 0 && by_id.count(by_id.at(cur).parent) &&
           hops < 64) {
      cur = by_id.at(cur).parent;
      ++hops;
    }
    EXPECT_EQ(cur, root->id);
  }
  EXPECT_GE(objective_leaves, 8u);  // one per completed evaluation

  // The introspection view agrees: the trace appears as one complete tree.
  bool found = false;
  const json::Value traces = obs::traces_json(server_tel);
  for (const auto& tr : traces.at("traces").as_array()) {
    if (tr.at("trace_id").as_string() == obs::trace_id_hex(trace)) found = true;
  }
  EXPECT_TRUE(found);

  server.shutdown();
  agent_a->stop();
  agent_b->stop();
  thread_a.join();
  thread_b.join();
  dispatcher->stop();
}

}  // namespace
}  // namespace tunekit
