// Exactly-once ask/tell under retries (ISSUE 8 acceptance): idempotency-key
// replay (byte-identical across retries, restarts, compaction, and shards),
// the client retry policy (what is safe to repeat, Retry-After honoring,
// 504 never retried), queue-deadline 504s, overload shedding with finite
// Retry-After, and a chaos soak where every client retries through injected
// connect refusals / resets / torn responses with zero lost tells and zero
// duplicate observations.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/deadline.hpp"
#include "net/rest_api.hpp"
#include "net/server.hpp"
#include "net/session_manager.hpp"
#include "obs/telemetry.hpp"
#include "service/replay_cache.hpp"
#include "service/scheduler.hpp"
#include "service/space_codec.hpp"

namespace tunekit::net {
namespace {

/// RAII process-global fault hook: tests must never leak one into each other.
struct FaultGuard {
  explicit FaultGuard(FaultNet* hook) { set_fault_net(hook); }
  ~FaultGuard() { set_fault_net(nullptr); }
};

json::Value session_spec(const std::string& id, std::size_t max_evals,
                         double compact_every = 0.0) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(max_evals);
  if (compact_every > 0.0) spec["compact_every"] = json::Value(compact_every);
  spec["space"] = json::parse(
      "{\"params\":[{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
      "\"default\":0.5}]}");
  return json::Value(std::move(spec));
}

json::Value tell_body(std::uint64_t eval_id, double value) {
  json::Object body;
  body["id"] = json::Value(eval_id);
  body["value"] = json::Value(value);
  return json::Value(std::move(body));
}

std::uint64_t first_candidate_id(const json::Value& ask_reply) {
  return static_cast<std::uint64_t>(
      ask_reply.at("candidates").as_array().at(0).at("id").as_number());
}

// --- ReplayCache unit ---

TEST(ReplayCache, EvictsFifoAndUpdatesInPlace) {
  service::ReplayCache cache(2);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_NE(cache.find("a"), nullptr);
  // Updating an existing key must not consume capacity or refresh its
  // eviction position: "a" is still the oldest entry.
  cache.put("a", "1'");
  EXPECT_EQ(*cache.find("a"), "1'");
  EXPECT_EQ(cache.size(), 2u);
  cache.put("c", "3");
  EXPECT_EQ(cache.find("a"), nullptr);  // oldest evicted
  EXPECT_NE(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  // entries() preserves insertion order — the journal replays it verbatim.
  const auto entries = cache.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "b");
  EXPECT_EQ(entries[1].first, "c");
}

// --- ScriptedFaultNet: new injection modes ---

TEST(ScriptedFaultNet, TruncatedReadDeliversPrefixThenEof) {
  ScriptedFaultNet::Script script;
  script.truncate_read_at = 2;
  script.truncate_read_bytes = 5;
  ScriptedFaultNet faults(script);
  EXPECT_EQ(faults.clamp_read(3), static_cast<std::size_t>(-1));  // read 1: free
  EXPECT_EQ(faults.clamp_read(3), 5u);                            // read 2: cut
  EXPECT_EQ(faults.clamp_read(3), 0u);  // everything after: Eof (torn frame)
  EXPECT_EQ(faults.faults_injected(), 1u);
}

TEST(ScriptedFaultNet, StalledConnectTracksFdAndSurvivesFdReuse) {
  ScriptedFaultNet::Script script;
  script.stall_connect_at = {1};
  ScriptedFaultNet faults(script);
  faults.on_connected(7);           // dial 1: stalls fd 7
  EXPECT_TRUE(faults.stall_read(7));
  EXPECT_FALSE(faults.stall_read(8));
  // The OS reuses fd numbers: a healthy second dial landing on fd 7 must
  // clear the stale stall or the fresh connection would hang forever.
  faults.on_connected(7);
  EXPECT_FALSE(faults.stall_read(7));
}

// --- Client retry policy ---

/// Bare HTTP server around a programmable handler (no sessions involved).
struct RawServer {
  obs::Telemetry telemetry;
  std::unique_ptr<HttpServer> server;

  explicit RawServer(HttpServer::Handler handler, ServerOptions options = {}) {
    telemetry.enable();
    options.host = "127.0.0.1";
    options.port = 0;
    options.telemetry = &telemetry;
    server = std::make_unique<HttpServer>(options, std::move(handler));
    server->start();
  }
  ~RawServer() { server->shutdown(); }
  std::uint16_t port() const { return server->port(); }
};

TEST(ClientRetry, RefusedConnectIsAlwaysRetried) {
  std::atomic<int> calls{0};
  RawServer raw([&](const HttpRequest&) {
    ++calls;
    return HttpResponse::json(200, json::Value(json::Object{}));
  });
  ScriptedFaultNet::Script script;
  script.refuse_connect_at = {1};
  ScriptedFaultNet faults(script);
  FaultGuard guard(&faults);

  ClientRetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_seconds = 0.01;
  Client client("127.0.0.1", raw.port(), 5.0, retry);
  // No idempotency key — but a refused dial provably never reached the
  // server, so the retry is safe regardless.
  const auto response = client.request("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(faults.faults_injected(), 1u);
}

TEST(ClientRetry, TornResponseRetriedOnlyWithIdempotencyKey) {
  std::atomic<int> calls{0};
  RawServer raw([&](const HttpRequest&) {
    ++calls;
    return HttpResponse::json(200, json::Value(json::Object{}));
  });
  {
    // Without a key the request may have executed: the client must refuse
    // to guess and surface the transport error instead.
    ScriptedFaultNet::Script script;
    script.truncate_read_at = 1;
    script.truncate_read_bytes = 3;
    ScriptedFaultNet faults(script);
    FaultGuard guard(&faults);
    ClientRetryOptions retry;
    retry.max_attempts = 3;
    retry.base_backoff_seconds = 0.01;
    Client client("127.0.0.1", raw.port(), 5.0, retry);
    EXPECT_THROW(client.request("POST", "/v1/sessions", "{}"), std::runtime_error);
  }
  {
    // Same fault with a key attached: retried and healed.
    ScriptedFaultNet::Script script;
    script.truncate_read_at = 1;
    script.truncate_read_bytes = 3;
    ScriptedFaultNet faults(script);
    FaultGuard guard(&faults);
    ClientRetryOptions retry;
    retry.max_attempts = 3;
    retry.base_backoff_seconds = 0.01;
    Client client("127.0.0.1", raw.port(), 5.0, retry);
    RequestOptions options;
    options.idempotency_key = "torn-1";
    const auto response = client.request("POST", "/v1/sessions", "{}", options);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(faults.faults_injected(), 1u);
  }
}

TEST(ClientRetry, HonorsRetryAfterWithOneCourtesyRetry) {
  std::atomic<int> calls{0};
  RawServer raw([&](const HttpRequest&) {
    if (++calls == 1) {
      HttpResponse shed = HttpResponse::error(503, "overloaded");
      shed.retry_after_seconds = 1;
      return shed;
    }
    return HttpResponse::json(200, json::Value(json::Object{}));
  });
  // max_attempts = 1: no retry budget at all — yet the server said exactly
  // when to come back, and that hint earns one capped courtesy retry.
  Client client("127.0.0.1", raw.port(), 5.0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.request("GET", "/healthz");
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_GE(waited, 0.5);  // actually slept on the hint (1s, jittered >=0.75)
}

TEST(ClientRetry, DeadlineExpiry504IsNeverRetried) {
  std::atomic<int> calls{0};
  RawServer raw([&](const HttpRequest&) {
    ++calls;
    return HttpResponse::error(504, "deadline expired");
  });
  ClientRetryOptions retry;
  retry.max_attempts = 4;
  retry.base_backoff_seconds = 0.01;
  Client client("127.0.0.1", raw.port(), 5.0, retry);
  RequestOptions options;
  options.idempotency_key = "k504";
  const auto response = client.request("POST", "/v1/sessions", "{}", options);
  EXPECT_EQ(response.status, 504);
  EXPECT_EQ(calls.load(), 1);  // waiting cannot un-spend a budget
}

// --- Deadline propagation ---

TEST(DeadlineBudget, ExpiredBudgetRejectedBeforeDispatch) {
  obs::Telemetry telemetry;
  telemetry.enable();
  SessionManagerOptions mopt;
  mopt.telemetry = &telemetry;
  SessionManager manager(mopt);
  RestApi api(manager, &telemetry);
  manager.create(session_spec("dl0", 4));

  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/sessions/dl0/ask";
  request.headers["x-tunekit-deadline"] = "0.000";
  request.body = "{}";
  const HttpResponse response = api.handle(request);
  EXPECT_EQ(response.status, 504);
}

TEST(DeadlineBudget, SchedulerStopsIssuingBatchesPastDeadline) {
  auto spec = session_spec("sched-dl", 32);
  service::SessionOptions opt;
  opt.max_evals = 32;
  opt.backend = service::SessionBackend::Random;
  auto space = service::space_from_json(spec.at("space"));
  service::TuningSession session(space, opt);

  service::SchedulerOptions sopt;
  sopt.n_threads = 2;
  sopt.batch_size = 4;
  sopt.deadline = std::chrono::steady_clock::now();  // already spent
  service::EvalScheduler scheduler(sopt);
  struct Obj final : search::Objective {
    double evaluate(const search::Config& c) override { return c[0]; }
    bool thread_safe() const override { return true; }
  } objective;
  const auto result = scheduler.run(session, objective);
  EXPECT_EQ(result.evaluations, 0u);
  EXPECT_EQ(session.state(), service::SessionState::Active);
}

TEST(DeadlineBudget, QueuedRequestPastBudgetGets504WithoutHandler) {
  std::atomic<int> handled{0};
  ServerOptions options;
  options.worker_threads = 1;
  RawServer raw(
      [&](const HttpRequest& r) {
        ++handled;
        if (r.path == "/slow") {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
        return HttpResponse::json(200, json::Value(json::Object{}));
      },
      options);

  // Occupy the single worker, then queue a request whose budget is smaller
  // than the wait it is about to suffer.
  std::thread slow([&] {
    Client client("127.0.0.1", raw.port(), 5.0);
    (void)client.request("GET", "/slow");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(raw.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string wire =
      "GET /fast HTTP/1.1\r\nHost: t\r\nX-Tunekit-Deadline: 0.050\r\n"
      "Connection: close\r\n\r\n";
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  slow.join();

  EXPECT_NE(reply.find("504"), std::string::npos) << reply;
  EXPECT_NE(reply.find("queued"), std::string::npos) << reply;
  EXPECT_EQ(handled.load(), 1);  // the expired request never ran
}

// --- Overload shedding ---

TEST(Shedding, OverCapRejectsWithFiniteRetryAfter) {
  // max_queue = 0: the cap check (total >= cap) sheds every request — the
  // deterministic way to observe the shed path and its Retry-After.
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 0;
  RawServer raw(
      [&](const HttpRequest&) {
        return HttpResponse::json(200, json::Value(json::Object{}));
      },
      options);

  ClientRetryOptions retry;
  retry.honor_retry_after = false;  // we want to *see* the 429, not sleep on it
  Client client("127.0.0.1", raw.port(), 5.0, retry);
  const auto shed = client.request("GET", "/shedme");
  ASSERT_EQ(shed.status, 429);
  // Every shed response carries a finite, bounded Retry-After.
  EXPECT_GE(shed.retry_after_seconds(), 1.0);
  EXPECT_LE(shed.retry_after_seconds(), 30.0);
  EXPECT_GE(raw.telemetry.metrics()
                .counter(obs::metric::kShedRequests)
                .value(),
            1.0);
}

TEST(Shedding, RestApiPriorityShedsTellsLastDrivesFirst) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/sessions/s1/tell";
  EXPECT_EQ(RestApi::priority(request), 0);
  request.path = "/v1/sessions/s1/drive";
  EXPECT_EQ(RestApi::priority(request), 2);
  request.path = "/v1/sessions/s1/ask";
  EXPECT_EQ(RestApi::priority(request), 1);
  request.method = "GET";
  request.path = "/healthz";
  EXPECT_EQ(RestApi::priority(request), 1);
}

// --- Exactly-once replay ---

TEST(ReplayExactlyOnce, RetriedTellIsByteIdenticalAndRecordedOnce) {
  obs::Telemetry telemetry;
  telemetry.enable();
  SessionManagerOptions mopt;
  mopt.telemetry = &telemetry;
  SessionManager manager(mopt);
  manager.create(session_spec("once", 4));

  const auto asked = manager.ask("once", 1, "ask-key-1");
  // Retrying the ask replays the same candidates instead of issuing more.
  EXPECT_EQ(manager.ask("once", 1, "ask-key-1").dump(), asked.dump());

  const std::uint64_t eval_id = first_candidate_id(asked);
  const auto told = manager.tell("once", tell_body(eval_id, 1.5), "tell-key-1");
  const auto retried = manager.tell("once", tell_body(eval_id, 1.5), "tell-key-1");
  EXPECT_EQ(retried.dump(), told.dump());

  const auto report = manager.report("once");
  EXPECT_EQ(report.at("completed").as_number(), 1.0);
}

TEST(ReplayExactlyOnce, ReplaySurvivesRestartOnSameJournal) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tunekit_replay_restart_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::string told_dump;
  std::uint64_t eval_id = 0;
  {
    SessionManagerOptions mopt;
    mopt.journal_dir = dir.string();
    SessionManager manager(mopt);
    manager.create(session_spec("restart", 4));
    eval_id = first_candidate_id(manager.ask("restart", 1, "a1"));
    told_dump = manager.tell("restart", tell_body(eval_id, 2.5), "t1").dump();
    manager.flush_all();
  }  // SIGKILL-equivalent: the manager (and its cache) is simply gone
  {
    SessionManagerOptions mopt;
    mopt.journal_dir = dir.string();
    SessionManager manager(mopt);
    // The retry of a tell whose response was lost in transit arrives at the
    // *restarted* server: replayed byte-identically from the journal.
    const auto retried = manager.tell("restart", tell_body(eval_id, 2.5), "t1");
    EXPECT_EQ(retried.dump(), told_dump);
    EXPECT_EQ(manager.report("restart").at("completed").as_number(), 1.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(ReplayExactlyOnce, ReplaySurvivesJournalCompaction) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tunekit_replay_compact_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  SessionManagerOptions mopt;
  mopt.journal_dir = dir.string();
  SessionManager manager(mopt);
  // compact_every=2: the journal is rewritten mid-run, after the keyed tell.
  manager.create(session_spec("compact", 8, /*compact_every=*/2.0));

  const std::uint64_t first = first_candidate_id(manager.ask("compact", 1, "ka"));
  const std::string told = manager.tell("compact", tell_body(first, 1.0), "kt").dump();
  // Push enough further traffic through to trigger at least one compaction.
  for (int i = 0; i < 4; ++i) {
    const auto asked = manager.ask("compact", 1, "");
    if (asked.at("candidates").as_array().empty()) break;
    manager.tell("compact", tell_body(first_candidate_id(asked), 3.0 + i), "");
  }
  const auto retried = manager.tell("compact", tell_body(first, 1.0), "kt");
  EXPECT_EQ(retried.dump(), told);
  std::filesystem::remove_all(dir);
}

TEST(ReplayExactlyOnce, ReplayWorksAcrossShardedManager) {
  SessionManagerOptions mopt;
  mopt.shards = 4;
  SessionManager manager(mopt);
  for (int s = 0; s < 6; ++s) {
    const std::string id = "shard" + std::to_string(s);
    manager.create(session_spec(id, 4));
    const std::uint64_t eval_id = first_candidate_id(manager.ask(id, 1, id + "-a"));
    const auto told = manager.tell(id, tell_body(eval_id, 0.5), id + "-t");
    EXPECT_EQ(manager.tell(id, tell_body(eval_id, 0.5), id + "-t").dump(),
              told.dump());
    EXPECT_EQ(manager.report(id).at("completed").as_number(), 1.0);
  }
}

// --- Chaos soak: retrying clients vs an injected-fault network ---

TEST(RetryChaos, SoakZeroLostTellsZeroDuplicateObservations) {
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kMaxEvals = 12;

  obs::Telemetry telemetry;
  telemetry.enable();
  SessionManagerOptions mopt;
  mopt.telemetry = &telemetry;
  SessionManager manager(mopt);
  RestApi api(manager, &telemetry);
  ServerOptions sopt;
  sopt.host = "127.0.0.1";
  sopt.port = 0;
  sopt.worker_threads = 4;
  sopt.priority = RestApi::priority;
  sopt.telemetry = &telemetry;
  HttpServer server(sopt, [&](const HttpRequest& r) { return api.handle(r); });
  server.start();

  // Sessions are created before the network turns hostile: creation is
  // deliberately unkeyed (a retried create can't disambiguate id conflicts),
  // so it is the one call the chaos schedule must not hit.
  for (std::size_t n = 0; n < kClients; ++n) {
    manager.create(session_spec("chaos" + std::to_string(n), kMaxEvals));
  }

  // The hostile network: refusals, write resets, torn responses, and one
  // accepted-then-dead connection, spread over the soak. The hook is
  // process-global, so which client absorbs which fault is scheduling luck —
  // exactly-once must hold regardless.
  ScriptedFaultNet::Script script;
  script.refuse_connect_at = {3, 11, 19};
  script.reset_write_at = {5, 17, 29};
  script.truncate_read_at = 23;
  script.truncate_read_bytes = 9;
  script.stall_connect_at = {9};
  ScriptedFaultNet faults(script);
  FaultGuard guard(&faults);

  std::atomic<std::size_t> client_told{0};
  std::atomic<std::size_t> failures{0};
  auto run_one = [&](std::size_t n) {
    const std::string id = "chaos" + std::to_string(n);
    ClientRetryOptions retry;
    retry.max_attempts = 5;
    retry.base_backoff_seconds = 0.01;
    retry.max_backoff_seconds = 0.1;
    retry.jitter_seed = n;
    retry.telemetry = &telemetry;
    Client client("127.0.0.1", server.port(), 2.0, retry);
    try {
      std::set<std::uint64_t> told;
      while (told.size() < kMaxEvals) {
        const auto asked = client.ask(id, 1);
        const auto& cands = asked.at("candidates").as_array();
        if (cands.empty()) break;
        const auto eval_id =
            static_cast<std::uint64_t>(cands.at(0).at("id").as_number());
        client.tell(id, tell_body(eval_id, static_cast<double>(eval_id) * 0.25));
        told.insert(eval_id);
      }
      client_told.fetch_add(told.size());
    } catch (const std::exception& e) {
      ++failures;
      ADD_FAILURE() << "chaos client " << n << ": " << e.what();
    }
  };
  std::vector<std::thread> clients;
  for (std::size_t n = 0; n < kClients; ++n) clients.emplace_back(run_one, n);
  for (auto& t : clients) t.join();
  server.shutdown();

  EXPECT_EQ(failures.load(), 0u);
  // Zero lost tells: everything a client told is recorded. Zero duplicates:
  // the recorded count never exceeds what the clients issued.
  EXPECT_EQ(client_told.load(), kClients * kMaxEvals);
  std::size_t completed = 0;
  for (std::size_t n = 0; n < kClients; ++n) {
    completed += static_cast<std::size_t>(
        manager.report("chaos" + std::to_string(n)).at("completed").as_number());
  }
  EXPECT_EQ(completed, kClients * kMaxEvals);
  EXPECT_GT(faults.faults_injected(), 0u);
  // The metric contract from the acceptance list: retries happened and were
  // counted; at least one replay may have occurred on a maybe-executed retry.
  EXPECT_GT(telemetry.metrics().counter(obs::metric::kRetryAttempts).value(), 0.0);
}

}  // namespace
}  // namespace tunekit::net
