#include "search/samplers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace tunekit::search {
namespace {

TEST(UniformUnit, ShapeAndRange) {
  Rng rng(1);
  const auto pts = uniform_unit(50, 4, rng);
  ASSERT_EQ(pts.size(), 50u);
  for (const auto& p : pts) {
    ASSERT_EQ(p.size(), 4u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(LatinHypercube, StratificationProperty) {
  // Exactly one sample must fall in each of the n strata, per dimension.
  Rng rng(2);
  const std::size_t n = 16;
  const auto pts = latin_hypercube_unit(n, 3, rng);
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<int> count(n, 0);
    for (const auto& p : pts) {
      const auto cell = std::min<std::size_t>(
          n - 1, static_cast<std::size_t>(p[d] * static_cast<double>(n)));
      ++count[cell];
    }
    for (int c : count) EXPECT_EQ(c, 1);
  }
}

TEST(LatinHypercube, DeterministicPerSeed) {
  Rng a(7), b(7);
  const auto p1 = latin_hypercube_unit(10, 2, a);
  const auto p2 = latin_hypercube_unit(10, 2, b);
  EXPECT_EQ(p1, p2);
}

TEST(Halton, DeterministicAndLowDiscrepancy) {
  const auto p1 = halton_unit(100, 2);
  const auto p2 = halton_unit(100, 2);
  EXPECT_EQ(p1, p2);
  // Low discrepancy: each quadrant gets roughly a quarter of the points.
  int q[4] = {0, 0, 0, 0};
  for (const auto& p : p1) {
    q[(p[0] >= 0.5 ? 1 : 0) + (p[1] >= 0.5 ? 2 : 0)]++;
  }
  for (int c : q) EXPECT_NEAR(c, 25, 6);
}

TEST(Halton, DimensionLimit) {
  EXPECT_NO_THROW(halton_unit(5, 32));
  EXPECT_THROW(halton_unit(5, 33), std::invalid_argument);
}

TEST(SampleValidConfigs, AllValidAndExactCount) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 1, 10, 1));
  space.add(ParamSpec::integer("b", 1, 10, 1));
  space.add_constraint("sum", [](const Config& c) { return c[0] + c[1] <= 12.0; });
  Rng rng(3);
  const auto configs = sample_valid_configs(space, 40, rng);
  EXPECT_EQ(configs.size(), 40u);
  for (const auto& c : configs) EXPECT_TRUE(space.is_valid(c));
}

TEST(GridConfigs, FullFactorialOverDiscrete) {
  SearchSpace space;
  space.add(ParamSpec::ordinal("a", {1, 2, 3}, 1));
  space.add(ParamSpec::integer("b", 0, 1, 0));
  const auto grid = grid_configs(space, 2);
  EXPECT_EQ(grid.size(), 6u);
}

TEST(GridConfigs, RealsDiscretized) {
  SearchSpace space;
  space.add(ParamSpec::real("x", 0.0, 1.0, 0.0));
  const auto grid = grid_configs(space, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front()[0], 0.0);
  EXPECT_DOUBLE_EQ(grid.back()[0], 1.0);
}

TEST(GridConfigs, ConstraintsFilter) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 1, 4, 1));
  space.add(ParamSpec::integer("b", 1, 4, 1));
  space.add_constraint("a_le_b", [](const Config& c) { return c[0] <= c[1]; });
  const auto grid = grid_configs(space, 2);
  EXPECT_EQ(grid.size(), 10u);  // upper triangle incl. diagonal of 4x4
  for (const auto& c : grid) EXPECT_LE(c[0], c[1]);
}

TEST(GridConfigs, ExplosionGuard) {
  SearchSpace space;
  for (int i = 0; i < 10; ++i) {
    space.add(ParamSpec::integer("p" + std::to_string(i), 1, 10, 1));
  }
  EXPECT_THROW(grid_configs(space, 2, 1000), std::runtime_error);
}

TEST(GridConfigs, RealLevelsValidation) {
  SearchSpace space;
  space.add(ParamSpec::real("x", 0, 1, 0));
  EXPECT_THROW(grid_configs(space, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::search
