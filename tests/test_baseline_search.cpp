#include <gtest/gtest.h>

#include <cmath>

#include "search/grid_search.hpp"
#include "search/random_search.hpp"

namespace tunekit::search {
namespace {

SearchSpace bowl_space() {
  SearchSpace s;
  s.add(ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

FunctionObjective bowl() {
  return FunctionObjective([](const Config& c) {
    return (c[0] - 1.0) * (c[0] - 1.0) + (c[1] + 2.0) * (c[1] + 2.0);
  });
}

TEST(RandomSearch, FindsReasonableMinimum) {
  auto obj = bowl();
  RandomSearchOptions opt;
  opt.max_evals = 300;
  opt.seed = 5;
  const auto result = RandomSearch(opt).run(obj, bowl_space());
  EXPECT_EQ(result.evaluations, 300u);
  EXPECT_EQ(result.method, "random");
  EXPECT_LT(result.best_value, 0.5);
  EXPECT_NEAR(result.best_config[0], 1.0, 1.5);
  EXPECT_NEAR(result.best_config[1], -2.0, 1.5);
}

TEST(RandomSearch, DeterministicPerSeed) {
  auto obj = bowl();
  RandomSearchOptions opt;
  opt.max_evals = 50;
  opt.seed = 11;
  const auto r1 = RandomSearch(opt).run(obj, bowl_space());
  const auto r2 = RandomSearch(opt).run(obj, bowl_space());
  EXPECT_EQ(r1.best_value, r2.best_value);
  EXPECT_EQ(r1.values, r2.values);
}

TEST(RandomSearch, TrajectoryMonotone) {
  auto obj = bowl();
  RandomSearchOptions opt;
  opt.max_evals = 100;
  const auto result = RandomSearch(opt).run(obj, bowl_space());
  ASSERT_EQ(result.trajectory.size(), 100u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.trajectory.back(), result.best_value);
}

TEST(RandomSearch, ParallelMatchesSequentialBest) {
  // Same seed, same configurations; threads only change evaluation order.
  auto obj = bowl();
  RandomSearchOptions seq;
  seq.max_evals = 120;
  seq.seed = 9;
  seq.n_threads = 1;
  RandomSearchOptions par = seq;
  par.n_threads = 4;
  const auto r_seq = RandomSearch(seq).run(obj, bowl_space());
  const auto r_par = RandomSearch(par).run(obj, bowl_space());
  EXPECT_DOUBLE_EQ(r_seq.best_value, r_par.best_value);
  EXPECT_EQ(r_seq.best_config, r_par.best_config);
}

TEST(RandomSearch, RespectsConstraints) {
  SearchSpace space = bowl_space();
  space.add_constraint("x_positive", [](const Config& c) { return c[0] >= 0.0; });
  auto obj = bowl();
  RandomSearchOptions opt;
  opt.max_evals = 50;
  const auto result = RandomSearch(opt).run(obj, space);
  EXPECT_GE(result.best_config[0], 0.0);
}

TEST(GridSearch, ExhaustiveOnDiscreteSpace) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 0, 9, 0));
  space.add(ParamSpec::integer("b", 0, 9, 0));
  FunctionObjective obj(
      [](const Config& c) { return std::abs(c[0] - 7.0) + std::abs(c[1] - 3.0); });
  const auto result = GridSearch().run(obj, space);
  EXPECT_EQ(result.evaluations, 100u);
  EXPECT_DOUBLE_EQ(result.best_value, 0.0);
  EXPECT_EQ(result.best_config, (Config{7.0, 3.0}));
  EXPECT_EQ(result.method, "grid");
}

TEST(GridSearch, BudgetSubsamples) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 0, 99, 0));
  FunctionObjective obj([](const Config& c) { return c[0]; });
  GridSearchOptions opt;
  opt.max_evals = 10;
  const auto result = GridSearch(opt).run(obj, space);
  EXPECT_LE(result.evaluations, 10u);
  EXPECT_GE(result.evaluations, 5u);
}

TEST(GridSearch, RealLevelsControlResolution) {
  SearchSpace space;
  space.add(ParamSpec::real("x", 0.0, 1.0, 0.0));
  FunctionObjective obj([](const Config& c) { return (c[0] - 0.5) * (c[0] - 0.5); });
  GridSearchOptions opt;
  opt.real_levels = 11;
  const auto result = GridSearch(opt).run(obj, space);
  EXPECT_EQ(result.evaluations, 11u);
  EXPECT_NEAR(result.best_config[0], 0.5, 1e-12);
}

}  // namespace
}  // namespace tunekit::search
