// tunekit_crash_fixture: a tunekit-worker-v1 speaker whose behavior is
// selected by the request config, used by the sandbox tests to exercise every
// row of the wait-status → EvalOutcome classification matrix.
//
//   config[0]  behavior
//   ---------  --------
//       0      reply ok: value = config[1], regions {a, b}
//       1      die of SIGSEGV mid-evaluation
//       2      die of SIGABRT
//       3      exit with code config[1] without replying
//       4      hang forever but keep heartbeating (deadline SIGKILL → timed-out)
//       5      allocate-and-touch memory forever (RLIMIT_AS → death)
//       6      write a garbage non-JSON line instead of a result
//       7      hang forever silently, no heartbeats (liveness → crashed)
//
// Deliberately dependency-free (no tunekit headers beyond the C++ standard
// library): the fixture must stay trustworthy even when the library under
// test is broken, and its hand-rolled protocol strings double as an
// independent check of the wire format.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

namespace {

std::mutex g_stdout_mutex;

void emit_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_stdout_mutex);
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// Extract `"key":<number>` from a flat JSON line. Good enough for the fixed
/// request shape the supervisor emits; no nesting in requests.
bool find_number(const std::string& line, const std::string& key, double& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Extract the numbers of `"config":[...]`.
std::vector<double> find_config(const std::string& line) {
  std::vector<double> config;
  const std::string needle = "\"config\":[";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return config;
  pos += needle.size();
  while (pos < line.size() && line[pos] != ']') {
    char* end = nullptr;
    const double v = std::strtod(line.c_str() + pos, &end);
    if (end == line.c_str() + pos) break;
    config.push_back(v);
    pos = static_cast<std::size_t>(end - line.c_str());
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return config;
}

[[noreturn]] void hang_forever() {
  volatile unsigned long long sink = 0;
  for (;;) ++sink;
}

[[noreturn]] void memory_hog() {
  // Touch every page so RLIMIT_AS (or the OOM killer) actually fires rather
  // than the allocation staying virtual.
  std::vector<char*> blocks;
  for (;;) {
    char* block = static_cast<char*>(std::malloc(16u << 20));
    if (!block) std::abort();  // allocation refused: die loudly instead
    std::memset(block, 0x5a, 16u << 20);
    blocks.push_back(block);
  }
}

}  // namespace

int main() {
#if defined(__unix__) || defined(__APPLE__)
  std::signal(SIGPIPE, SIG_IGN);
#endif

  emit_line("{\"e\":\"ready\",\"format\":\"tunekit-worker-v1\",\"app\":\"crash-fixture\"}");

  std::atomic<bool> stop{false};
  std::atomic<bool> heartbeats{true};
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!stop.load(std::memory_order_relaxed)) {
      if (hb_cv.wait_for(lock, std::chrono::milliseconds(100),
                         [&] { return stop.load(std::memory_order_relaxed); })) {
        break;
      }
      if (heartbeats.load(std::memory_order_relaxed)) emit_line("{\"e\":\"hb\"}");
    }
  });

  int rc = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line.find("\"op\":\"ping\"") != std::string::npos) {
      emit_line("{\"e\":\"pong\"}");
      continue;
    }
    if (line.find("\"op\":\"exit\"") != std::string::npos) break;
    if (line.find("\"op\":\"eval\"") == std::string::npos) {
      rc = 3;
      break;
    }

    double id = 0.0;
    find_number(line, "id", id);
    const std::vector<double> config = find_config(line);
    const int mode = config.empty() ? 0 : static_cast<int>(config[0]);
    const double operand = config.size() > 1 ? config[1] : 0.0;

    switch (mode) {
      case 1: {
        volatile int* p = nullptr;
        *p = 42;  // SIGSEGV
        std::abort();
      }
      case 2:
        std::abort();  // SIGABRT
      case 3:
        std::exit(static_cast<int>(operand));  // exit without replying
      case 4:
        hang_forever();  // heartbeats continue → deadline SIGKILL
      case 5:
        memory_hog();
      case 6:
        emit_line("this is not json {{{");
        continue;
      case 7:
        heartbeats.store(false, std::memory_order_relaxed);
        hang_forever();  // silent → liveness timeout
      default: {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"e\":\"result\",\"id\":%.0f,\"outcome\":\"ok\","
                      "\"value\":%.17g,\"total\":%.17g,\"cost\":0.001,"
                      "\"regions\":{\"a\":%.17g,\"b\":%.17g}}",
                      id, operand, operand, operand * 0.5, operand * 0.5);
        emit_line(buf);
        continue;
      }
    }
  }

  stop.store(true, std::memory_order_relaxed);
  hb_cv.notify_all();
  if (heartbeat.joinable()) heartbeat.join();
  return rc;
}
