#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace tunekit {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(500, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsExceptionViaFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that wait on each other only finish if the pool has >= 2
  // workers actually running them in parallel.
  ThreadPool pool(2);
  std::atomic<bool> first_started{false};
  std::atomic<bool> second_done{false};
  auto f1 = pool.submit([&] {
    first_started = true;
    while (!second_done) {
      std::this_thread::yield();
    }
    return 1;
  });
  auto f2 = pool.submit([&] {
    while (!first_started) {
      std::this_thread::yield();
    }
    second_done = true;
    return 2;
  });
  EXPECT_EQ(f1.get() + f2.get(), 3);
}

TEST(ThreadPool, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must drain nothing but join safely
  // Note: tasks submitted but not yet run may be dropped at shutdown only
  // after completion of queued jobs — here we just require no crash and a
  // consistent counter value.
  EXPECT_LE(counter.load(), 50);
}

}  // namespace
}  // namespace tunekit
