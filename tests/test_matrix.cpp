#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace tunekit::linalg {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
  EXPECT_THROW(m.row(5), std::out_of_range);
  EXPECT_THROW(m.col(5), std::out_of_range);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_DOUBLE_EQ(m.transposed().transposed().max_abs_diff(m), 0.0);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix scaled2 = 0.5 * a;
  EXPECT_DOUBLE_EQ(scaled2(0, 1), 1.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.max_abs_diff(b), std::invalid_argument);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ProductShapes) {
  Matrix a(2, 3, 1.0), b(3, 4, 1.0);
  const Matrix p = a * b;
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_EQ(p.cols(), 4u);
  EXPECT_DOUBLE_EQ(p(0, 0), 3.0);
  Matrix bad(2, 2);
  EXPECT_THROW(a * bad, std::invalid_argument);
}

TEST(Matrix, IdentityIsNeutral) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ((a * Matrix::identity(2)).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ((Matrix::identity(2) * a).max_abs_diff(a), 0.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 2}, {3, 4}};
  const auto v = a.mul({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_THROW(a.mul({1.0}), std::invalid_argument);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2}, {3, 4.5}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(a), 0.0);
}

}  // namespace
}  // namespace tunekit::linalg
