// Parameterized sweeps of the BO driver across its option axes: every
// acquisition kind, kernel, and initial design must produce a working,
// budget-respecting, monotone search.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bo/bayes_opt.hpp"

namespace tunekit::bo {
namespace {

using search::Config;
using search::FunctionObjective;
using search::ParamSpec;
using search::SearchSpace;

SearchSpace mixed_space() {
  SearchSpace s;
  s.add(ParamSpec::real("x", -3.0, 3.0, 0.0));
  s.add(ParamSpec::ordinal("tile", {8, 16, 32, 64}, 16));
  s.add(ParamSpec::categorical("algo", 3, 0));
  return s;
}

FunctionObjective mixed_objective() {
  return FunctionObjective([](const Config& c) {
    const double dx = c[0] - 1.0;
    const double tile_term = std::abs(std::log2(c[1] / 32.0));
    const double algo_term = c[2] == 1.0 ? 0.0 : 0.5;
    return dx * dx + 0.4 * tile_term + algo_term;
  });
}

using BoAxes = std::tuple<AcquisitionKind, KernelKind, InitialDesign>;

class BoSweep : public ::testing::TestWithParam<BoAxes> {};

TEST_P(BoSweep, RunsRespectsBudgetAndImproves) {
  const auto [acq, kernel, init] = GetParam();
  auto obj = mixed_objective();
  BoOptions opt;
  opt.max_evals = 30;
  opt.n_init = 6;
  opt.seed = 17;
  opt.acquisition = acq;
  opt.kernel = kernel;
  opt.init_design = init;
  const auto result = BayesOpt(opt).run(obj, mixed_space());

  EXPECT_EQ(result.evaluations, 30u);
  EXPECT_TRUE(result.found());
  // Monotone trajectory ending at the best value.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.trajectory.back(), result.best_value);
  // Meaningful optimization: better than the worst sampled value.
  const double worst = *std::max_element(result.values.begin(), result.values.end());
  EXPECT_LT(result.best_value, worst);
  // Mixed space handled: categorical stays in {0,1,2}.
  EXPECT_GE(result.best_config[2], 0.0);
  EXPECT_LE(result.best_config[2], 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllOptionCombos, BoSweep,
    ::testing::Combine(
        ::testing::Values(AcquisitionKind::ExpectedImprovement,
                          AcquisitionKind::ProbabilityOfImprovement,
                          AcquisitionKind::LowerConfidenceBound),
        ::testing::Values(KernelKind::RBF, KernelKind::Matern32, KernelKind::Matern52),
        ::testing::Values(InitialDesign::LatinHypercube, InitialDesign::Sobol)),
    [](const auto& info) {
      // No structured bindings here: commas inside the macro argument break
      // INSTANTIATE_TEST_SUITE_P's preprocessing.
      std::string name = to_string(std::get<0>(info.param));
      name += "_";
      name += to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) == InitialDesign::Sobol ? "_sobol" : "_lhs";
      return name;
    });

}  // namespace
}  // namespace tunekit::bo
