#include "bo/bayes_opt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "search/random_search.hpp"

namespace tunekit::bo {
namespace {

using search::Config;
using search::FunctionObjective;
using search::ParamSpec;
using search::SearchSpace;

SearchSpace bowl_space(std::size_t dims = 2) {
  SearchSpace s;
  for (std::size_t i = 0; i < dims; ++i) {
    s.add(ParamSpec::real("x" + std::to_string(i), -5.0, 5.0, 0.0));
  }
  return s;
}

FunctionObjective bowl() {
  return FunctionObjective([](const Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double d = c[i] - 1.0;
      acc += d * d;
    }
    return acc;
  });
}

TEST(BayesOpt, ConvergesOnBowl) {
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 40;
  opt.seed = 1;
  const auto result = BayesOpt(opt).run(obj, bowl_space());
  EXPECT_EQ(result.evaluations, 40u);
  EXPECT_EQ(result.method, "bo");
  EXPECT_LT(result.best_value, 0.5);
}

TEST(BayesOpt, BeatsRandomSearchAtEqualBudget) {
  // Averaged over seeds to be robust; BO should win on a smooth 3-d bowl.
  double bo_total = 0.0, rs_total = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto obj = bowl();
    BoOptions bopt;
    bopt.max_evals = 35;
    bopt.seed = seed;
    bo_total += BayesOpt(bopt).run(obj, bowl_space(3)).best_value;

    search::RandomSearchOptions ropt;
    ropt.max_evals = 35;
    ropt.seed = seed;
    rs_total += search::RandomSearch(ropt).run(obj, bowl_space(3)).best_value;
  }
  EXPECT_LT(bo_total, rs_total);
}

TEST(BayesOpt, DeterministicPerSeed) {
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 20;
  opt.seed = 77;
  const auto r1 = BayesOpt(opt).run(obj, bowl_space());
  const auto r2 = BayesOpt(opt).run(obj, bowl_space());
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_EQ(r1.best_config, r2.best_config);
}

TEST(BayesOpt, RespectsConstraints) {
  SearchSpace space = bowl_space();
  space.add_constraint("x0_negative", [](const Config& c) { return c[0] <= 0.0; });
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 25;
  opt.seed = 5;
  search::EvalDb db;
  const auto result = BayesOpt(opt).run(obj, space, db);
  for (const auto& e : db.all()) {
    EXPECT_LE(e.config[0], 0.0);
  }
  EXPECT_LE(result.best_config[0], 0.0);
}

TEST(BayesOpt, HandlesDiscreteSpaces) {
  SearchSpace space;
  space.add(ParamSpec::ordinal("a", {1, 2, 4, 8, 16}, 1));
  space.add(ParamSpec::integer("b", 0, 9, 0));
  FunctionObjective obj([](const Config& c) {
    return std::abs(c[0] - 8.0) + std::abs(c[1] - 3.0);
  });
  BoOptions opt;
  opt.max_evals = 30;
  opt.seed = 2;
  const auto result = BayesOpt(opt).run(obj, space);
  EXPECT_LE(result.best_value, 4.0);  // found a decent cell despite duplicates
}

TEST(BayesOpt, TrajectoryMonotone) {
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 25;
  const auto result = BayesOpt(opt).run(obj, bowl_space());
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(BayesOpt, CheckpointWritesAndResumes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tunekit_bo_ckpt.json").string();
  std::remove(path.c_str());

  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 15;
  opt.seed = 3;
  opt.checkpoint_path = path;
  opt.checkpoint_every = 5;
  BayesOpt(opt).run(obj, bowl_space());
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume with a larger budget: the first 15 evaluations come from disk.
  BoOptions resume_opt = opt;
  resume_opt.max_evals = 25;
  resume_opt.resume = true;
  search::CountingObjective counted(obj);
  const auto resumed = BayesOpt(resume_opt).run(counted, bowl_space());
  EXPECT_EQ(resumed.evaluations, 25u);
  EXPECT_EQ(counted.count(), 10u);  // only the new evaluations ran
  std::remove(path.c_str());
}

TEST(BayesOpt, TimeoutValueClampsSurrogateTargets) {
  // Objective with a huge spike; timeout clamps what the GP sees but the
  // recorded values stay raw.
  SearchSpace space;
  space.add(ParamSpec::real("x", 0.0, 1.0, 0.5));
  FunctionObjective obj([](const Config& c) {
    return c[0] < 0.1 ? 1e9 : (c[0] - 0.6) * (c[0] - 0.6);
  });
  BoOptions opt;
  opt.max_evals = 20;
  opt.seed = 4;
  opt.timeout_value = 10.0;
  const auto result = BayesOpt(opt).run(obj, space);
  EXPECT_LT(result.best_value, 0.3);
}

TEST(BayesOpt, WarmStartEvaluatedFirst) {
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 15;
  opt.seed = 8;
  opt.warm_start = {{1.0, 1.0}, {2.0, 2.0}};
  search::EvalDb db;
  const auto result = BayesOpt(opt).run(obj, bowl_space(), db);
  const auto evals = db.all();
  ASSERT_GE(evals.size(), 2u);
  EXPECT_EQ(evals[0].config, (Config{1.0, 1.0}));
  EXPECT_EQ(evals[1].config, (Config{2.0, 2.0}));
  // Warm start at the optimum: the best value is immediately 0.
  EXPECT_DOUBLE_EQ(result.trajectory[0], 0.0);
}

TEST(BayesOpt, WarmStartSkipsInvalidAndDuplicates) {
  SearchSpace space = bowl_space();
  space.add_constraint("x0_neg", [](const Config& c) { return c[0] <= 0.0; });
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 10;
  opt.seed = 8;
  opt.warm_start = {{3.0, 0.0},   // invalid: x0 > 0
                    {-1.0, 0.0},  // fine
                    {-1.0, 0.0}}; // duplicate
  search::EvalDb db;
  BayesOpt(opt).run(obj, space, db);
  const auto evals = db.all();
  EXPECT_EQ(evals[0].config, (Config{-1.0, 0.0}));
  // Only one warm-start evaluation made it in.
  std::size_t warm_count = 0;
  for (const auto& e : evals) {
    if (e.config == Config{-1.0, 0.0}) ++warm_count;
  }
  EXPECT_EQ(warm_count, 1u);
}

TEST(BayesOpt, InitialDesignVariantsAllWork) {
  for (auto design : {InitialDesign::LatinHypercube, InitialDesign::Sobol,
                      InitialDesign::UniformRandom}) {
    auto obj = bowl();
    BoOptions opt;
    opt.max_evals = 15;
    opt.n_init = 6;
    opt.seed = 13;
    opt.init_design = design;
    const auto result = BayesOpt(opt).run(obj, bowl_space());
    EXPECT_EQ(result.evaluations, 15u);
    EXPECT_LT(result.best_value, 30.0);
  }
}

TEST(BayesOpt, SobolInitDiffersFromLhs) {
  auto obj = bowl();
  BoOptions lhs;
  lhs.max_evals = 6;
  lhs.n_init = 6;
  lhs.seed = 14;
  BoOptions sobol = lhs;
  sobol.init_design = InitialDesign::Sobol;
  search::EvalDb db_lhs, db_sobol;
  BayesOpt(lhs).run(obj, bowl_space(), db_lhs);
  BayesOpt(sobol).run(obj, bowl_space(), db_sobol);
  EXPECT_NE(db_lhs.all()[0].config, db_sobol.all()[0].config);
}

TEST(BayesOpt, SurvivesCrashingObjective) {
  // The objective throws on part of the space (a crashing application);
  // the search records failures and still finds the basin elsewhere.
  SearchSpace space = bowl_space();
  FunctionObjective obj([](const Config& c) -> double {
    if (c[0] > 2.5) throw std::runtime_error("segfault in kernel");
    const double d0 = c[0] - 1.0, d1 = c[1] - 1.0;
    return d0 * d0 + d1 * d1;
  });
  BoOptions opt;
  opt.max_evals = 30;
  opt.seed = 6;
  search::EvalDb db;
  const auto result = BayesOpt(opt).run(obj, space, db);
  EXPECT_EQ(db.size(), 30u);  // failures count toward the budget
  EXPECT_LT(result.best_value, 1.0);
  EXPECT_LE(result.best_config[0], 2.5);
  // At least one crash was recorded as NaN (a quarter of the space throws).
  std::size_t failures = 0;
  for (const auto& e : db.all()) {
    if (std::isnan(e.value)) ++failures;
  }
  EXPECT_GE(failures, 1u);
}

TEST(BayesOpt, FailurePenaltySteersAwayFromCrashes) {
  SearchSpace space = bowl_space();
  FunctionObjective obj([](const Config& c) -> double {
    if (c[0] > 0.0) throw std::runtime_error("crash");
    return (c[0] + 2.0) * (c[0] + 2.0) + c[1] * c[1];
  });
  BoOptions opt;
  opt.max_evals = 40;
  opt.seed = 7;
  opt.failure_penalty = 100.0;  // crashes look terrible to the surrogate
  search::EvalDb db;
  const auto result = BayesOpt(opt).run(obj, space, db);
  EXPECT_LT(result.best_config[0], 0.0);
  EXPECT_LT(result.best_value, 5.0);
}

TEST(BayesOpt, AllFailuresStillTerminates) {
  SearchSpace space = bowl_space();
  FunctionObjective obj([](const Config&) -> double {
    throw std::runtime_error("always crashes");
  });
  BoOptions opt;
  opt.max_evals = 12;
  opt.seed = 8;
  search::EvalDb db;
  const auto result = BayesOpt(opt).run(obj, space, db);
  EXPECT_EQ(db.size(), 12u);
  EXPECT_FALSE(result.found());
}

TEST(BayesOpt, InitialDesignRespectsBudget) {
  auto obj = bowl();
  BoOptions opt;
  opt.max_evals = 3;
  opt.n_init = 10;  // larger than the budget
  const auto result = BayesOpt(opt).run(obj, bowl_space());
  EXPECT_EQ(result.evaluations, 3u);
}

}  // namespace
}  // namespace tunekit::bo
