// The hardened-evaluation acceptance scenario: a 20-dimensional synthetic
// application with seeded faults — 15% crashes, 5% hangs, heavy-tailed
// measurement noise — driven through every layer that must survive it:
//
//  * Methodology::run (sensitivity, planning, plan execution) completes and
//    returns a valid tuned configuration;
//  * a journaled EvalScheduler session completes, classifying every failure
//    with its EvalOutcome, and the classification survives a journal resume;
//  * a session killed mid-run resumes to exactly the uninterrupted result,
//    because PerConfig faults are deterministic across restarts;
//  * with repeated measurement, influence scoring under heavy-tail noise
//    produces the same DAG partition as a noise-free run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/methodology.hpp"
#include "robust/fault_injection.hpp"
#include "robust/measure.hpp"
#include "robust/outcome.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"
#include "synth/synth_app.hpp"

namespace tunekit {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The acceptance fault mix: 15% crashes, 5% hangs, heavy-tail noise. Hangs
/// "sleep forever" on the test's timescale and must be reclaimed by the
/// watchdog.
robust::FaultOptions acceptance_faults(std::uint64_t seed) {
  robust::FaultOptions f;
  f.crash_prob = 0.15;
  f.hang_prob = 0.05;
  f.noise_scale = 0.02;
  f.hang_seconds = 30.0;
  f.seed = seed;
  return f;
}

// --- Methodology::run end to end under the acceptance fault mix. ---

TEST(FaultInjection, MethodologyRunSurvivesAcceptanceFaults) {
  synth::SynthApp app(synth::SynthCase::Case3, /*noise_scale=*/0.0);
  robust::FaultyApp faulty(app, acceptance_faults(/*seed=*/42));

  // Strict measurement policy: 3 repeats, 2 of which must succeed, no
  // retries — at 20% per-call fault rate roughly one measurement in ten
  // fails as a whole, so the failure-tolerance paths genuinely run.
  robust::MeasureOptions measure;
  measure.repeats = 3;
  measure.min_ok = 2;
  measure.watchdog.timeout_seconds = 0.1;

  core::MethodologyOptions opt;
  opt.cutoff = 0.25;
  opt.importance_samples = 0;
  opt.sensitivity.n_variations = 6;
  opt.sensitivity.measure = measure;
  opt.executor.evals_per_param = 3;
  opt.executor.min_evals = 6;
  opt.executor.enumerate_threshold = 0.0;
  opt.executor.measure = measure;

  core::Methodology m(opt);
  const auto result = m.run(faulty);

  // Faults actually fired — this was not a clean run.
  EXPECT_GT(faulty.stats().crashes.load(), 0u);
  EXPECT_GT(faulty.stats().hangs.load(), 0u);

  // And yet the pipeline finished with a coherent result.
  EXPECT_FALSE(result.plan.searches.empty());
  EXPECT_FALSE(result.execution.outcomes.empty());
  EXPECT_TRUE(app.space().is_valid(result.execution.final_config));
  EXPECT_GT(result.total_observations, result.analysis.observations);

  // The sensitivity analysis recorded (rather than silently ate) the
  // variation measurements it lost to faults.
  EXPECT_GT(result.analysis.sensitivity.failed_observations, 0u);

  // The searches kept going past their failures: failed evaluations were
  // recorded at the NaN penalty next to finite successes, and every search
  // still found a best point.
  std::size_t failed_evals = 0;
  std::size_t finite_evals = 0;
  for (const auto& outcome : result.execution.outcomes) {
    for (double v : outcome.result.values) {
      if (std::isfinite(v)) {
        ++finite_evals;
      } else {
        ++failed_evals;
      }
    }
    EXPECT_TRUE(outcome.result.found()) << outcome.planned.name;
  }
  EXPECT_GT(failed_evals, 0u);
  EXPECT_GT(finite_evals, 0u);
}

// --- Journaled scheduler session: completion + failure classification. ---

TEST(FaultInjection, ScheduledSessionClassifiesEveryFailure) {
  synth::SynthApp app(synth::SynthCase::Case1, /*noise_scale=*/0.0);
  auto fopts = acceptance_faults(/*seed=*/7);
  fopts.nan_prob = 0.05;  // some evaluations return garbage instead of dying
  robust::FaultyObjective faulty(app, fopts);

  const std::string path = temp_path("tunekit_fault_sched.jsonl");
  service::SessionOptions sopt;
  sopt.max_evals = 60;
  sopt.backend = service::SessionBackend::Random;
  sopt.max_attempts = 1;  // drop on first failure so every fault is recorded
  sopt.seed = 9;
  service::TuningSession session(app.space(), sopt, path);

  service::SchedulerOptions scheduler_opt;
  scheduler_opt.n_threads = 4;
  scheduler_opt.measure.watchdog.timeout_seconds = 0.25;
  const auto result = service::EvalScheduler(scheduler_opt).run(session, faulty);

  EXPECT_EQ(session.completed(), 60u);
  EXPECT_EQ(session.state(), service::SessionState::Exhausted);
  EXPECT_EQ(result.evaluations, 60u);

  // Every evaluation is classified, and the classification agrees with the
  // value: failures carry a non-finite penalty, successes a finite time.
  std::map<robust::EvalOutcome, std::size_t> counts;
  for (const auto& e : session.evaluations()) {
    ++counts[e.outcome];
    EXPECT_EQ(robust::is_failure(e.outcome), !std::isfinite(e.value))
        << "outcome " << robust::to_string(e.outcome) << " vs value " << e.value;
  }
  EXPECT_GT(counts[robust::EvalOutcome::Ok], 0u);
  EXPECT_GT(counts[robust::EvalOutcome::Crashed], 0u);      // 15% of 60
  EXPECT_GT(counts[robust::EvalOutcome::TimedOut], 0u);     // 5% of 60
  EXPECT_GT(counts[robust::EvalOutcome::NonFinite], 0u);    // 5% of 60
  EXPECT_EQ(faulty.stats().hangs.load(),
            counts[robust::EvalOutcome::TimedOut]);

  // The classification is durable: resuming the finished journal restores
  // the same outcome histogram, not just the same values.
  auto resumed = service::TuningSession::resume(app.space(), sopt, path);
  std::map<robust::EvalOutcome, std::size_t> resumed_counts;
  for (const auto& e : resumed->evaluations()) ++resumed_counts[e.outcome];
  EXPECT_EQ(resumed_counts, counts);

  std::remove(path.c_str());
  std::filesystem::remove(path + ".snapshot.json");
}

// --- Mid-run kill + resume == uninterrupted, faults included. ---

// PerConfig faults are a deterministic function of the configuration, so a
// crashing point crashes identically before and after the restart — the
// resumed run must reproduce the uninterrupted run exactly, failures and all.
TEST(FaultInjection, ResumeAfterKillMatchesUninterruptedRunWithFaults) {
  synth::SynthApp app(synth::SynthCase::Case1, /*noise_scale=*/0.0);
  robust::FaultOptions fopts;
  fopts.crash_prob = 0.20;
  fopts.nan_prob = 0.05;
  fopts.noise_scale = 0.02;
  fopts.model = robust::FaultModel::PerConfig;
  fopts.seed = 13;

  service::SessionOptions sopt;
  sopt.max_evals = 24;
  sopt.backend = service::SessionBackend::Random;
  sopt.max_attempts = 2;
  sopt.seed = 31;

  const robust::RobustMeasurer measurer;  // trivial options: classify only
  const auto drive_rounds = [&](service::TuningSession& s,
                                robust::FaultyObjective& obj, int rounds) {
    for (int round = 0; rounds < 0 || round < rounds; ++round) {
      const auto batch = s.ask(4);
      if (batch.empty()) return;
      for (const auto& c : batch) {
        const robust::Measurement m = measurer.measure(obj, c.config);
        if (m.outcome == robust::EvalOutcome::Ok) {
          s.tell(c.id, m.value, m.seconds, m.dispersion);
        } else {
          s.tell_failure(c.id, m.outcome);
        }
      }
    }
  };

  const std::string path_a = temp_path("tunekit_fault_uninterrupted.jsonl");
  const std::string path_b = temp_path("tunekit_fault_interrupted.jsonl");

  robust::FaultyObjective reference_obj(app, fopts);
  service::TuningSession reference(app.space(), sopt, path_a);
  drive_rounds(reference, reference_obj, -1);
  const auto ref_result = reference.to_result();
  const auto ref_evals = reference.evaluations();
  ASSERT_EQ(ref_evals.size(), 24u);

  {
    // Two rounds in, the process "dies" with candidates still in flight and
    // failed candidates mid-retry.
    robust::FaultyObjective victim_obj(app, fopts);
    service::TuningSession victim(app.space(), sopt, path_b);
    drive_rounds(victim, victim_obj, 2);
    victim.ask(4);  // issued but never told — must be re-issued on resume
  }

  robust::FaultyObjective resumed_obj(app, fopts);
  auto resumed = service::TuningSession::resume(app.space(), sopt, path_b);
  drive_rounds(*resumed, resumed_obj, -1);

  const auto res_result = resumed->to_result();
  const auto res_evals = resumed->evaluations();
  ASSERT_EQ(res_evals.size(), ref_evals.size());
  for (std::size_t i = 0; i < ref_evals.size(); ++i) {
    EXPECT_EQ(res_evals[i].config, ref_evals[i].config) << "eval " << i;
    EXPECT_EQ(res_evals[i].outcome, ref_evals[i].outcome) << "eval " << i;
    if (std::isfinite(ref_evals[i].value)) {
      EXPECT_DOUBLE_EQ(res_evals[i].value, ref_evals[i].value) << "eval " << i;
    } else {
      EXPECT_FALSE(std::isfinite(res_evals[i].value)) << "eval " << i;
    }
  }
  EXPECT_DOUBLE_EQ(res_result.best_value, ref_result.best_value);
  EXPECT_EQ(res_result.best_config, ref_result.best_config);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::filesystem::remove(path_a + ".snapshot.json");
  std::filesystem::remove(path_b + ".snapshot.json");
}

// --- Influence scoring under noise: same DAG partition as noise-free. ---

TEST(FaultInjection, RepeatedMeasurementPreservesPartitionUnderNoise) {
  core::MethodologyOptions opt;
  opt.cutoff = 0.25;
  opt.importance_samples = 0;
  opt.sensitivity.n_variations = 30;
  opt.sensitivity.ladder_factor = 1.10;

  const auto partition_of = [](core::TunableApp& app,
                               const core::MethodologyOptions& o) {
    core::Methodology m(o);
    const auto analysis = m.analyze(app);
    const auto plan = m.make_plan(app, analysis);
    std::vector<std::string> names;
    for (const auto& s : plan.searches) names.push_back(s.name);
    return names;
  };

  // Reference: the clean app, single measurements.
  synth::SynthApp clean(synth::SynthCase::Case3, /*noise_scale=*/0.0);
  const auto clean_partition = partition_of(clean, opt);
  ASSERT_FALSE(clean_partition.empty());

  // Noisy: heavy-tail noise plus crashes, countered by repeats + MAD
  // trimming + the lower-confidence-bound influence rule.
  synth::SynthApp noisy_inner(synth::SynthCase::Case3, /*noise_scale=*/0.0);
  robust::FaultOptions fopts;
  fopts.noise_scale = 0.05;
  fopts.crash_prob = 0.10;
  fopts.seed = 99;
  robust::FaultyApp noisy(noisy_inner, fopts);

  auto noisy_opt = opt;
  noisy_opt.sensitivity.measure.repeats = 5;
  noisy_opt.sensitivity.measure.watchdog.max_retries = 2;
  const auto noisy_partition = partition_of(noisy, noisy_opt);

  EXPECT_EQ(noisy_partition, clean_partition);
}

}  // namespace
}  // namespace tunekit
