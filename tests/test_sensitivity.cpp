#include "stats/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace tunekit::stats {
namespace {

using search::Config;
using search::ParamSpec;
using search::RegionTimes;
using search::SearchSpace;

/// Two regions: "A" depends only on p0, "B" on p0 and p1; p2 is inert.
class TwoRegionApp final : public search::RegionObjective {
 public:
  RegionTimes evaluate_regions(const Config& c) override {
    RegionTimes t;
    t.regions["A"] = 10.0 + 2.0 * c[0];
    t.regions["B"] = 5.0 + 1.0 * c[0] + 3.0 * c[1];
    t.total = t.regions["A"] + t.regions["B"];
    return t;
  }
};

SearchSpace three_param_space() {
  SearchSpace s;
  s.add(ParamSpec::real("p0", 0.1, 100.0, 1.0));
  s.add(ParamSpec::real("p1", 0.1, 100.0, 1.0));
  s.add(ParamSpec::real("p2", 0.1, 100.0, 1.0));
  return s;
}

TEST(Sensitivity, DetectsInfluenceStructure) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityOptions opt;
  opt.n_variations = 5;
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});

  // p0 influences both regions; p1 only B; p2 nothing.
  EXPECT_GT(report.score("A", 0), 0.01);
  EXPECT_NEAR(report.score("A", 1), 0.0, 1e-12);
  EXPECT_NEAR(report.score("A", 2), 0.0, 1e-12);
  EXPECT_GT(report.score("B", 0), 0.0);
  EXPECT_GT(report.score("B", 1), report.score("B", 0));
  EXPECT_NEAR(report.score("B", 2), 0.0, 1e-12);
  EXPECT_GT(report.score("total", 0), 0.0);
}

TEST(Sensitivity, ObservationCountIsBaselinePlusVariations) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityOptions opt;
  opt.n_variations = 4;
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});
  // 1 baseline + up to 4 variations per parameter (ladder may dedup).
  EXPECT_GE(report.observations, 1u + 3u * 2u);
  EXPECT_LE(report.observations, 1u + 3u * 4u);
}

TEST(Sensitivity, MatchesPaperFormulaExactly) {
  // Region time = c[0]; variations from ladder around baseline 10 with
  // factor 2: values 20, 40. Variability = mean(|10-20|/10, |10-40|/10).
  class Linear final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config& c) override {
      RegionTimes t;
      t.regions["R"] = c[0];
      t.total = c[0];
      return t;
    }
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 1.0, 100.0, 10.0));
  Linear app;
  SensitivityOptions opt;
  opt.n_variations = 2;
  opt.ladder_factor = 2.0;
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, s, {10.0});
  EXPECT_NEAR(report.score("R", 0), (1.0 + 3.0) / 2.0, 1e-12);
}

TEST(Sensitivity, TopKOrdering) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityAnalyzer analyzer;
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});
  const auto top = report.top("B", 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].param_name, "p1");
  EXPECT_EQ(top[1].param_name, "p0");
  EXPECT_GE(top[0].variability, top[1].variability);
  EXPECT_EQ(report.top("B", 99).size(), 3u);  // capped at param count
}

TEST(Sensitivity, AboveCutoffFilters) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityAnalyzer analyzer;
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});
  const auto strong = report.above_cutoff("B", 0.05);
  for (const auto& e : strong) EXPECT_GE(e.variability, 0.05);
  EXPECT_GE(strong.size(), 1u);
}

TEST(Sensitivity, UnknownRegionThrows) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityAnalyzer analyzer;
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});
  EXPECT_THROW(report.score("nope", 0), std::out_of_range);
}

TEST(Sensitivity, InvalidBaselineThrows) {
  TwoRegionApp app;
  auto space = three_param_space();
  SensitivityAnalyzer analyzer;
  EXPECT_THROW(analyzer.analyze(app, space, {-5.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(Sensitivity, ZeroBaselineRegionThrows) {
  class ZeroRegion final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config&) override {
      RegionTimes t;
      t.regions["Z"] = 0.0;
      t.total = 1.0;
      return t;
    }
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 0.1, 10.0, 1.0));
  ZeroRegion app;
  SensitivityAnalyzer analyzer;
  EXPECT_THROW(analyzer.analyze(app, s, {1.0}), std::invalid_argument);
}

TEST(Sensitivity, ExpertValuesMode) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityOptions opt;
  opt.mode = VariationMode::ExpertValues;
  opt.expert_values["p0"] = {2.0, 4.0};
  opt.n_variations = 3;  // ladder fallback for p1/p2
  SensitivityAnalyzer analyzer(opt);

  const auto vals = analyzer.variation_values(space.param(0), 1.0);
  EXPECT_EQ(vals, (std::vector<double>{2.0, 4.0}));
  // Fallback param uses the ladder.
  const auto fallback = analyzer.variation_values(space.param(1), 1.0);
  EXPECT_FALSE(fallback.empty());
  for (double v : fallback) EXPECT_NE(v, 1.0);
}

TEST(Sensitivity, SkipsInvalidVariations) {
  class Identity final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config& c) override {
      RegionTimes t;
      t.regions["R"] = 1.0 + c[0];
      t.total = 1.0 + c[0];
      return t;
    }
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 0.0, 100.0, 1.0));
  s.add_constraint("small", [](const Config& c) { return c[0] <= 1.5; });
  Identity app;
  SensitivityOptions opt;
  opt.n_variations = 10;  // most ladder steps violate the constraint
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, s, {1.0});
  // Variability computed only from the valid steps (1.1, ~1.21, ~1.331...).
  EXPECT_GT(report.score("R", 0), 0.0);
  EXPECT_LT(report.score("R", 0), 0.3);
}

TEST(Sensitivity, LadderVariationsForOrdinalWalkLevels) {
  SensitivityAnalyzer analyzer;
  const auto spec = ParamSpec::ordinal("tb", {1, 2, 4, 8, 16, 32}, 4);
  const auto vals = analyzer.variation_values(spec, 4.0);
  EXPECT_FALSE(vals.empty());
  for (double v : vals) {
    EXPECT_NE(v, 4.0);
    EXPECT_TRUE(spec.is_valid_value(v));
  }
}

TEST(Sensitivity, LadderFromZeroBaselineUsesSpanWalk) {
  SensitivityOptions opt;
  opt.n_variations = 4;
  SensitivityAnalyzer analyzer(opt);
  const auto spec = ParamSpec::real("x", -1.0, 1.0, 0.0);
  const auto vals = analyzer.variation_values(spec, 0.0);
  EXPECT_FALSE(vals.empty());
  for (double v : vals) EXPECT_NE(v, 0.0);
}

TEST(Sensitivity, SingleMeasurementKeepsStderrZero) {
  TwoRegionApp app;
  const auto space = three_param_space();
  SensitivityAnalyzer analyzer;
  const auto report = analyzer.analyze(app, space, {1.0, 1.0, 1.0});
  for (const auto& r : report.regions()) {
    for (std::size_t p = 0; p < space.size(); ++p) {
      EXPECT_DOUBLE_EQ(report.score_stderr(r, p), 0.0);
      // With zero stderr the lower bound is the score itself: the seed-era
      // influence semantics are unchanged.
      EXPECT_DOUBLE_EQ(report.lower_bound(r, p, 1.96), report.score(r, p));
    }
  }
  EXPECT_EQ(report.failed_observations, 0u);
}

TEST(Sensitivity, RepeatedMeasurementPropagatesStderr) {
  // Each call jitters the region time deterministically, so repeats of the
  // same configuration disperse and the score gets a standard error.
  class Jittery final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config& c) override {
      const double jitter = 1.0 + 0.01 * static_cast<double>(call_++ % 5);
      RegionTimes t;
      t.regions["R"] = (10.0 + 2.0 * c[0]) * jitter;
      t.total = t.regions["R"];
      return t;
    }

   private:
    std::size_t call_ = 0;
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 0.1, 100.0, 1.0));
  Jittery app;
  SensitivityOptions opt;
  opt.n_variations = 3;
  opt.measure.repeats = 5;
  opt.measure.mad_threshold = 0.0;  // keep all samples: jitter is the signal
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, s, {1.0});

  EXPECT_GT(report.score("R", 0), 0.0);
  EXPECT_GT(report.score_stderr("R", 0), 0.0);
  EXPECT_LE(report.lower_bound("R", 0, 1.96), report.score("R", 0));
  EXPECT_GE(report.lower_bound("R", 0, 1.96), 0.0);
  // Every repeat counts as an observation: baseline + variations, 5 each.
  EXPECT_GE(report.observations, 5u * (1u + 2u));
}

TEST(Sensitivity, FailedVariationsAreCountedNotFatal) {
  // Configurations beyond a threshold crash; their variations are dropped
  // and counted, and the score averages over the survivors.
  class Fragile final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config& c) override {
      if (c[0] > 10.0) throw std::runtime_error("injected crash");
      RegionTimes t;
      t.regions["R"] = c[0];
      t.total = c[0];
      return t;
    }
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 1.0, 100.0, 4.0));
  Fragile app;
  SensitivityOptions opt;
  opt.n_variations = 5;
  opt.ladder_factor = 1.5;  // 6, 9, 13.5, 20.25, 30.4 — last three crash
  SensitivityAnalyzer analyzer(opt);
  const auto report = analyzer.analyze(app, s, {4.0});

  EXPECT_EQ(report.failed_observations, 3u);
  // Score from the two surviving variations: mean(|4-6|/4, |4-9|/4).
  EXPECT_NEAR(report.score("R", 0), (0.5 + 1.25) / 2.0, 1e-12);
}

TEST(Sensitivity, FailingBaselineThrowsWithOutcome) {
  class Doomed final : public search::RegionObjective {
   public:
    RegionTimes evaluate_regions(const Config&) override {
      throw std::runtime_error("always dead");
    }
  };
  SearchSpace s;
  s.add(ParamSpec::real("p", 0.1, 10.0, 1.0));
  Doomed app;
  SensitivityAnalyzer analyzer;
  try {
    analyzer.analyze(app, s, {1.0});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos);
  }
}

TEST(Sensitivity, AnalyzeTotalWrapsScalarObjective) {
  search::FunctionObjective obj([](const Config& c) { return 5.0 + c[0]; });
  SearchSpace s;
  s.add(ParamSpec::real("p", 0.1, 100.0, 1.0));
  SensitivityAnalyzer analyzer;
  const auto report = analyzer.analyze_total(obj, s, {1.0});
  EXPECT_EQ(report.regions(), (std::vector<std::string>{"total"}));
  EXPECT_GT(report.score("total", 0), 0.0);
}

}  // namespace
}  // namespace tunekit::stats
