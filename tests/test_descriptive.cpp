#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

namespace tunekit::stats {
namespace {

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({-5}), -5.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Descriptive, VarianceAndStddev) {
  EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(variance({3}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1, 1, 1}), 0.0);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min_value({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(max_value({3, -1, 2}), 3.0);
  EXPECT_THROW(min_value({}), std::invalid_argument);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Descriptive, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({4, 1, 3, 2}, 0.5), 2.5);
}

TEST(Descriptive, Median) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, RSquaredPerfectAndBaseline) {
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
  // Predicting the mean gives R^2 = 0.
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r_squared(y, mean_pred), 0.0, 1e-12);
  EXPECT_THROW(r_squared({1}, {1, 2}), std::invalid_argument);
}

TEST(Descriptive, RSquaredConstantTruth) {
  EXPECT_DOUBLE_EQ(r_squared({2, 2, 2}, {2, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(r_squared({2, 2, 2}, {1, 2, 3}), 0.0);
}

TEST(Descriptive, Summary) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(OneInTen, Rule) {
  EXPECT_EQ(one_in_ten_required(20), 200u);
  EXPECT_TRUE(one_in_ten_ok(200, 20));
  EXPECT_FALSE(one_in_ten_ok(199, 20));
  EXPECT_TRUE(one_in_ten_ok(0, 0));
}

}  // namespace
}  // namespace tunekit::stats
