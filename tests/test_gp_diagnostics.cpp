#include <gtest/gtest.h>

#include <cmath>

#include "bo/gp.hpp"
#include "common/rng.hpp"

namespace tunekit::bo {
namespace {

struct Data {
  linalg::Matrix x;
  std::vector<double> y;
};

Data smooth_1d(std::size_t n, double noise_sd, std::uint64_t seed) {
  tunekit::Rng rng(seed);
  Data d{linalg::Matrix(n, 1), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    d.x(i, 0) = rng.uniform();
    d.y[i] = std::sin(5.0 * d.x(i, 0)) + noise_sd * rng.normal();
  }
  return d;
}

TEST(GpLoo, WellSpecifiedModelCoversAndCalibrates) {
  const auto data = smooth_1d(60, 0.05, 1);
  GaussianProcess gp;
  tunekit::Rng rng(2);
  gp.fit_with_hyperopt(data.x, data.y, rng, 3);

  const auto loo = gp.leave_one_out();
  ASSERT_EQ(loo.mean.size(), 60u);
  // Coverage of the 95% interval should be near 95%.
  EXPECT_GE(loo.coverage95, 0.85);
  // LOO predictions track the function well.
  EXPECT_LT(loo.rmse, 0.15);
  // Standardized residuals should have variance near 1 (calibration).
  double var = 0.0;
  for (double r : loo.standardized_residuals) var += r * r;
  var /= static_cast<double>(loo.standardized_residuals.size());
  EXPECT_GT(var, 0.2);
  EXPECT_LT(var, 3.0);
}

TEST(GpLoo, MisspecifiedModelShowsPoorDiagnostics) {
  // Fit with absurdly long lengthscale and near-zero noise: the model
  // cannot explain the data and the LOO log density collapses.
  const auto data = smooth_1d(40, 0.05, 3);
  GaussianProcess good;
  tunekit::Rng rng(4);
  good.fit_with_hyperopt(data.x, data.y, rng, 3);

  GaussianProcess bad;
  bad.set_hyperparams(GpHyperparams::isotropic(1, 100.0, 1.0, 1e-8));
  bad.fit(data.x, data.y);

  EXPECT_GT(good.leave_one_out().mean_log_density,
            bad.leave_one_out().mean_log_density);
}

TEST(GpLoo, RequiresFit) {
  GaussianProcess gp;
  EXPECT_THROW(gp.leave_one_out(), std::runtime_error);
}

TEST(GpLoo, VarianceIsPositive) {
  const auto data = smooth_1d(25, 0.1, 5);
  GaussianProcess gp;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.2, 1.0, 1e-4));
  gp.fit(data.x, data.y);
  for (double v : gp.leave_one_out().variance) EXPECT_GT(v, 0.0);
}

TEST(GpLoo, WorksWithPriorMean) {
  const auto data = smooth_1d(30, 0.05, 6);
  GaussianProcess gp;
  gp.set_prior_mean([](const std::vector<double>&) { return 10.0; });
  std::vector<double> shifted = data.y;
  for (double& v : shifted) v += 10.0;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.2, 1.0, 1e-3));
  gp.fit(data.x, shifted);
  const auto loo = gp.leave_one_out();
  // LOO means live in the shifted target range.
  for (double m : loo.mean) {
    EXPECT_GT(m, 8.0);
    EXPECT_LT(m, 12.0);
  }
}

}  // namespace
}  // namespace tunekit::bo
