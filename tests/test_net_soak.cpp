// Acceptance soak for the remote tuning server (ISSUE acceptance criteria):
// eight concurrent HTTP clients drive four journaled sessions, a chaos client
// interleaves malformed requests, and the server is drained mid-run and
// restarted on the same journal directory. Asserts: zero double-issued
// candidates, malformed traffic answered with 4xx while real work continues,
// and every session resumes by id after the restart and runs to completion.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "net/rest_api.hpp"
#include "net/session_manager.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {
namespace {

constexpr std::size_t kSessions = 4;
constexpr std::size_t kMaxEvals = 24;
constexpr std::size_t kClients = 8;

std::vector<std::string> session_ids() {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < kSessions; ++i) ids.push_back("soak" + std::to_string(i));
  return ids;
}

json::Value soak_spec(const std::string& id) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(kMaxEvals);
  spec["space"] = json::parse(
      "{\"params\": ["
      "{\"name\":\"x\",\"kind\":\"real\",\"lo\":-2,\"hi\":2,\"default\":0},"
      "{\"name\":\"tb\",\"kind\":\"integer\",\"lo\":1,\"hi\":64,\"default\":8}"
      "]}");
  return json::Value(std::move(spec));
}

/// One server generation: manager + api + server over a shared journal dir.
struct Generation {
  obs::Telemetry telemetry;
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<RestApi> api;
  std::unique_ptr<HttpServer> server;

  explicit Generation(const std::string& journal_dir) {
    telemetry.enable();
    SessionManagerOptions mopt;
    mopt.journal_dir = journal_dir;
    mopt.telemetry = &telemetry;
    manager = std::make_unique<SessionManager>(mopt);
    api = std::make_unique<RestApi>(*manager, &telemetry);
    ServerOptions sopt;
    sopt.host = "127.0.0.1";
    sopt.port = 0;
    sopt.worker_threads = 4;
    sopt.telemetry = &telemetry;
    server = std::make_unique<HttpServer>(
        sopt, [this](const HttpRequest& r) { return api->handle(r); });
    server->start();
  }

  /// The same sequence `tunekit_cli serve` runs on SIGTERM: stop accepting,
  /// drain in-flight requests, flush every journal.
  void drain() {
    server->request_shutdown();
    server->wait();
    manager->flush_all();
  }

  ~Generation() { server->shutdown(); }
};

/// Issued-candidate ledger shared by all clients of one server generation; a
/// second insert of the same (session, eval id, attempt) means the server
/// double-issued a candidate. (One ledger per generation: after a restart the
/// journal legitimately re-issues in-flight candidates at the same attempt.)
struct Ledger {
  std::mutex mutex;
  std::set<std::tuple<std::string, std::uint64_t, std::size_t>> issued;
  std::size_t duplicates = 0;

  void record(const std::string& session, const json::Value& cand) {
    const auto key = std::make_tuple(
        session, static_cast<std::uint64_t>(cand.at("id").as_number()),
        static_cast<std::size_t>(cand.at("attempt").as_number()));
    std::lock_guard<std::mutex> lock(mutex);
    if (!issued.insert(key).second) ++duplicates;
  }
};

/// Ask/tell worker: round-robins over all sessions until every one reports a
/// terminal state (or `stop` is raised for the mid-run drain).
void run_client(std::uint16_t port, Ledger& ledger, const std::atomic<bool>& stop,
                std::atomic<std::size_t>& tells) {
  Client client("127.0.0.1", port, 10.0);
  std::set<std::string> done;
  const auto ids = session_ids();
  while (!stop.load() && done.size() < ids.size()) {
    for (const auto& id : ids) {
      if (stop.load() || done.count(id)) continue;
      json::Value batch;
      try {
        batch = client.ask(id, 2);
      } catch (const std::exception&) {
        done.insert(id);  // drained under us; phase 2 finishes the rest
        continue;
      }
      const auto& cands = batch.at("candidates").as_array();
      if (cands.empty()) {
        if (batch.at("state").as_string() != "active") done.insert(id);
        continue;
      }
      for (const auto& cand : cands) {
        ledger.record(id, cand);
        json::Object tell;
        tell["id"] = cand.at("id");
        tell["value"] = json::Value(cand.at("config").at("x").as_number());
        try {
          client.tell(id, json::Value(std::move(tell)));
          tells.fetch_add(1);
        } catch (const std::exception&) {
          done.insert(id);
          break;
        }
      }
    }
  }
}

/// Chaos client: hammers the API with malformed traffic and asserts every
/// answer is a 4xx — never a 5xx, never a dropped connection.
void run_chaos(std::uint16_t port, const std::atomic<bool>& stop,
               std::atomic<std::size_t>& rejections) {
  Client client("127.0.0.1", port, 10.0);
  const std::pair<const char*, const char*> attacks[] = {
      {"/v1/sessions", "{\"nope\""},                       // malformed JSON
      {"/v1/sessions", "{\"space\":{\"params\":[]}}"},     // invalid spec
      {"/v1/sessions/soak0/tell", "{\"id\":999999}"},      // unknown eval id
      {"/v1/sessions/absent/ask", "{\"k\":1}"},            // unknown session
      {"/v1/sessions/soak0/ask", "{\"k\":0}"},             // k out of range
  };
  while (!stop.load()) {
    for (const auto& [path, body] : attacks) {
      if (stop.load()) return;
      ClientResponse r;
      try {
        r = client.request("POST", path, body);
      } catch (const std::exception&) {
        return;  // server drained mid-attack
      }
      EXPECT_GE(r.status, 400) << path;
      EXPECT_LT(r.status, 500) << path << " must be a client error, got "
                               << r.status << ": " << r.body;
      rejections.fetch_add(1);
    }
  }
}

TEST(NetSoak, ConcurrentClientsSurviveChaosDrainAndResume) {
  const auto dir = std::filesystem::temp_directory_path() / "tunekit_net_soak";
  std::filesystem::remove_all(dir);
  const std::string journal_dir = dir.string();

  Ledger ledger1, ledger2;
  std::atomic<std::size_t> tells{0};
  std::atomic<std::size_t> rejections{0};
  std::map<std::string, double> completed_at_drain;

  // --- Phase 1: partial run, then SIGTERM-style drain mid-flight. ---------
  {
    Generation gen(journal_dir);
    Client admin("127.0.0.1", gen.server->port(), 10.0);
    for (const auto& id : session_ids()) admin.create_session(soak_spec(id));

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i)
      clients.emplace_back(run_client, gen.server->port(), std::ref(ledger1),
                           std::cref(stop), std::ref(tells));
    std::thread chaos(run_chaos, gen.server->port(), std::cref(stop),
                      std::ref(rejections));

    // Let roughly half the total budget complete under chaos, then drain.
    while (tells.load() < kSessions * kMaxEvals / 2) std::this_thread::yield();
    EXPECT_TRUE(admin.healthy()) << "server must stay up under malformed traffic";
    for (const auto& id : session_ids())
      completed_at_drain[id] = admin.report(id).at("completed").as_number();

    stop.store(true);
    for (auto& t : clients) t.join();
    chaos.join();
    gen.drain();
    EXPECT_FALSE(gen.server->running());
  }
  EXPECT_GT(rejections.load(), 0u) << "chaos client never got through";

  // --- Phase 2: new server generation on the same journal dir. ------------
  {
    Generation gen(journal_dir);
    Client admin("127.0.0.1", gen.server->port(), 10.0);

    // Every session resumes by id with at least its pre-drain progress.
    for (const auto& id : session_ids()) {
      const json::Value report = admin.report(id);
      EXPECT_GE(report.at("completed").as_number(), completed_at_drain[id])
          << id << " lost journaled progress across the restart";
    }

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i)
      clients.emplace_back(run_client, gen.server->port(), std::ref(ledger2),
                           std::cref(stop), std::ref(tells));
    for (auto& t : clients) t.join();

    for (const auto& id : session_ids()) {
      const json::Value report = admin.report(id);
      EXPECT_EQ(report.at("state").as_string(), "exhausted") << id;
      EXPECT_DOUBLE_EQ(report.at("completed").as_number(),
                       static_cast<double>(kMaxEvals))
          << id;
      EXPECT_TRUE(report.contains("best_value")) << id;
    }
    gen.drain();
  }

  EXPECT_EQ(ledger1.duplicates, 0u)
      << "a candidate was double-issued to concurrent clients before the drain";
  EXPECT_EQ(ledger2.duplicates, 0u)
      << "a candidate was double-issued to concurrent clients after resume";
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tunekit::net
