#include "synth/synth_app.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tunekit::synth {
namespace {

TEST(SynthApp, SpaceHasTwentyRealParams) {
  SynthApp app(SynthCase::Case1);
  EXPECT_EQ(app.space().size(), 20u);
  for (const auto& p : app.space().params()) {
    EXPECT_EQ(p.kind(), search::ParamKind::Real);
    EXPECT_DOUBLE_EQ(p.lo(), -50.0);
    EXPECT_DOUBLE_EQ(p.hi(), 50.0);
  }
  EXPECT_EQ(app.space().index_of("x0"), 0u);
  EXPECT_EQ(app.space().index_of("x19"), 19u);
}

TEST(SynthApp, RoutinesOwnFiveVariablesEach) {
  SynthApp app(SynthCase::Case2);
  const auto routines = app.routines();
  ASSERT_EQ(routines.size(), 4u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(routines[g].name, "Group" + std::to_string(g + 1));
    ASSERT_EQ(routines[g].params.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(routines[g].params[i], 5 * g + i);
    }
  }
}

TEST(SynthApp, NoOuterRegionsOrBoundGroups) {
  SynthApp app(SynthCase::Case1);
  EXPECT_TRUE(app.outer_regions().empty());
  EXPECT_TRUE(app.bound_groups().empty());
}

TEST(SynthApp, BaselineValidAndAwayFromZero) {
  SynthApp app(SynthCase::Case3, 0.01, 555);
  const auto baseline = app.baseline();
  ASSERT_EQ(baseline.size(), 20u);
  EXPECT_TRUE(app.space().is_valid(baseline));
  for (double v : baseline) {
    EXPECT_GE(std::abs(v), 2.0);
    EXPECT_LE(std::abs(v), 15.0);
  }
  const auto raw = app.function().raw_abs_groups(baseline);
  for (double g : raw) EXPECT_GE(g, 0.1);
}

TEST(SynthApp, BaselineReproduciblePerSeed) {
  SynthApp a(SynthCase::Case1, 0.01, 42);
  SynthApp b(SynthCase::Case1, 0.01, 42);
  EXPECT_EQ(a.baseline(), b.baseline());
  SynthApp c(SynthCase::Case1, 0.01, 43);
  EXPECT_NE(a.baseline(), c.baseline());
}

TEST(SynthApp, RegionsAreRawAbsTotalIsLogSum) {
  SynthApp app(SynthCase::Case3);
  const auto config = app.baseline();
  const auto t = app.evaluate_regions(config);
  const auto raw = app.function().raw_abs_groups(config);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(t.regions.at("Group" + std::to_string(g + 1)), raw[g]);
  }
  EXPECT_NEAR(t.total, app.function().evaluate(config), 1e-12);
}

TEST(SynthApp, ThreadSafeAndNamed) {
  SynthApp app(SynthCase::Case5);
  EXPECT_TRUE(app.thread_safe());
  EXPECT_NE(app.name().find("Case 5"), std::string::npos);
}

TEST(SynthApp, GroupRegionHelper) {
  EXPECT_EQ(SynthApp::group_region(1), "Group1");
  EXPECT_EQ(SynthApp::group_region(4), "Group4");
}

}  // namespace
}  // namespace tunekit::synth
