#include "search/eval_db.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace tunekit::search {
namespace {

SearchSpace two_dim_space() {
  SearchSpace s;
  s.add(ParamSpec::real("a", 0, 1, 0));
  s.add(ParamSpec::real("b", 0, 1, 0));
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EvalDb, RecordAndBest) {
  EvalDb db;
  EXPECT_TRUE(db.empty());
  EXPECT_FALSE(db.best().has_value());
  db.record({0.1, 0.2}, 5.0);
  db.record({0.3, 0.4}, 2.0, 1.5);
  db.record({0.5, 0.6}, 9.0);
  EXPECT_EQ(db.size(), 3u);
  const auto best = db.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->value, 2.0);
  EXPECT_DOUBLE_EQ(best->cost_seconds, 1.5);
  EXPECT_EQ(best->config, (Config{0.3, 0.4}));
}

TEST(EvalDb, BestIgnoresNaN) {
  EvalDb db;
  db.record({0.0, 0.0}, std::nan(""));
  EXPECT_FALSE(db.best().has_value());
  db.record({0.1, 0.1}, 7.0);
  EXPECT_DOUBLE_EQ(db.best()->value, 7.0);
}

TEST(EvalDb, BestKSortedAscending) {
  EvalDb db;
  db.record({0.1, 0.1}, 5.0);
  db.record({0.2, 0.2}, 1.0);
  db.record({0.3, 0.3}, std::nan(""));
  db.record({0.4, 0.4}, 3.0);
  const auto top2 = db.best_k(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[0].value, 1.0);
  EXPECT_DOUBLE_EQ(top2[1].value, 3.0);
  // Requesting more than available returns all non-NaN, sorted.
  EXPECT_EQ(db.best_k(10).size(), 3u);
  EXPECT_TRUE(db.best_k(0).empty());
}

TEST(EvalDb, TrajectoryIsMonotoneNonIncreasing) {
  EvalDb db;
  db.record({0, 0}, 5.0);
  db.record({0, 0}, 7.0);
  db.record({0, 0}, 3.0);
  db.record({0, 0}, 4.0);
  const auto traj = db.best_trajectory();
  EXPECT_EQ(traj, (std::vector<double>{5.0, 5.0, 3.0, 3.0}));
}

TEST(EvalDb, SaveLoadRoundTrip) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_evaldb_roundtrip.json");
  EvalDb db;
  db.record({0.25, 0.75}, 1.25, 0.5);
  db.record({1.0, 0.0}, -3.5);
  db.save(path);

  const EvalDb loaded = EvalDb::load(path, space);
  EXPECT_EQ(loaded.size(), 2u);
  const auto all = loaded.all();
  EXPECT_EQ(all[0].config, (Config{0.25, 0.75}));
  EXPECT_DOUBLE_EQ(all[0].value, 1.25);
  EXPECT_DOUBLE_EQ(all[0].cost_seconds, 0.5);
  EXPECT_DOUBLE_EQ(all[1].value, -3.5);
  std::remove(path.c_str());
}

TEST(EvalDb, LoadRejectsArityMismatch) {
  const std::string path = temp_path("tunekit_evaldb_arity.json");
  EvalDb db;
  db.record({0.1, 0.2}, 1.0);
  db.save(path);

  SearchSpace three;
  three.add(ParamSpec::real("a", 0, 1, 0));
  three.add(ParamSpec::real("b", 0, 1, 0));
  three.add(ParamSpec::real("c", 0, 1, 0));
  EXPECT_THROW(EvalDb::load(path, three), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalDb, LoadRejectsWrongFormat) {
  const std::string path = temp_path("tunekit_evaldb_badformat.json");
  {
    std::ofstream out(path);
    out << "{\"format\": \"other\", \"evaluations\": []}";
  }
  EXPECT_THROW(EvalDb::load(path, two_dim_space()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalDb, LoadMissingFileThrows) {
  EXPECT_THROW(EvalDb::load("/no/such/file.json", two_dim_space()), std::exception);
}

TEST(EvalDb, NaNValueSurvivesRoundTrip) {
  const std::string path = temp_path("tunekit_evaldb_nan.json");
  EvalDb db;
  db.record({0.0, 0.0}, std::numeric_limits<double>::quiet_NaN());
  db.save(path);
  const EvalDb loaded = EvalDb::load(path, two_dim_space());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(std::isnan(loaded.all()[0].value));
  std::remove(path.c_str());
}

TEST(EvalDb, SaveIsAtomicNoTempFileLeftBehind) {
  const std::string path = temp_path("tunekit_evaldb_atomic.json");
  EvalDb db;
  db.record({0.1, 0.2}, 1.0);
  db.save(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(EvalDb, SaveOverwritesExistingCheckpointSafely) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_evaldb_overwrite.json");
  {
    EvalDb first;
    first.record({0.1, 0.2}, 1.0);
    first.save(path);
  }
  // A second save replaces the checkpoint wholesale — never a partial mix.
  EvalDb second;
  second.record({0.3, 0.4}, 2.0);
  second.record({0.5, 0.6}, 3.0);
  second.save(path);

  const EvalDb loaded = EvalDb::load(path, space);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.all()[0].value, 2.0);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(EvalDb, BestIgnoresInfinitySentinels) {
  EvalDb db;
  db.record({0.0, 0.0}, std::numeric_limits<double>::infinity());
  db.record({0.1, 0.1}, -std::numeric_limits<double>::infinity());
  EXPECT_FALSE(db.best().has_value());
  EXPECT_TRUE(db.best_k(5).empty());
  db.record({0.2, 0.2}, 4.0);
  ASSERT_TRUE(db.best().has_value());
  EXPECT_DOUBLE_EQ(db.best()->value, 4.0);
  // -inf must not become the incumbent; the trajectory stays at +inf until a
  // finite value lands.
  const auto traj = db.best_trajectory();
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_TRUE(std::isinf(traj[0]) && traj[0] > 0.0);
  EXPECT_TRUE(std::isinf(traj[1]) && traj[1] > 0.0);
  EXPECT_DOUBLE_EQ(traj[2], 4.0);
}

TEST(EvalDb, RecordClassifiesValueByDefault) {
  EvalDb db;
  db.record({0.0, 0.0}, 1.0);
  db.record({0.1, 0.1}, std::nan(""));
  db.record({0.2, 0.2}, std::numeric_limits<double>::infinity());
  const auto all = db.all();
  EXPECT_EQ(all[0].outcome, robust::EvalOutcome::Ok);
  EXPECT_EQ(all[1].outcome, robust::EvalOutcome::NonFinite);
  EXPECT_EQ(all[2].outcome, robust::EvalOutcome::NonFinite);
}

TEST(EvalDb, OutcomeCountsTallyEveryKind) {
  EvalDb db;
  db.record({0.0, 0.0}, 1.0);
  db.record({0.1, 0.1}, 2.0);
  db.record({0.2, 0.2}, std::nan(""), 0.0, robust::EvalOutcome::Crashed);
  db.record({0.3, 0.3}, std::nan(""), 0.0, robust::EvalOutcome::TimedOut);
  const auto counts = db.outcome_counts();
  EXPECT_EQ(counts.at(robust::EvalOutcome::Ok), 2u);
  EXPECT_EQ(counts.at(robust::EvalOutcome::Crashed), 1u);
  EXPECT_EQ(counts.at(robust::EvalOutcome::TimedOut), 1u);
  EXPECT_EQ(counts.count(robust::EvalOutcome::InvalidConfig), 0u);
}

TEST(EvalDb, OutcomeAndDispersionSurviveRoundTrip) {
  const auto space = two_dim_space();
  const std::string path = temp_path("tunekit_evaldb_outcome.json");
  EvalDb db;
  db.record({0.25, 0.75}, 1.25, 0.5, robust::EvalOutcome::Ok, 0.125);
  db.record({0.5, 0.5}, std::nan(""), 2.0, robust::EvalOutcome::TimedOut);
  db.record({0.0, 1.0}, std::nan(""), 0.0, robust::EvalOutcome::InvalidConfig);
  db.save(path);

  const EvalDb loaded = EvalDb::load(path, space);
  ASSERT_EQ(loaded.size(), 3u);
  const auto all = loaded.all();
  EXPECT_EQ(all[0].outcome, robust::EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(all[0].dispersion, 0.125);
  EXPECT_EQ(all[1].outcome, robust::EvalOutcome::TimedOut);
  EXPECT_TRUE(std::isnan(all[1].value));
  EXPECT_EQ(all[2].outcome, robust::EvalOutcome::InvalidConfig);
  EXPECT_DOUBLE_EQ(all[2].dispersion, 0.0);
  std::remove(path.c_str());
}

TEST(EvalDb, LegacyCheckpointWithoutOutcomeClassifiesFromValue) {
  // A seed-era checkpoint has no outcome/dispersion fields: finite values
  // load as Ok, null (NaN) values as NonFinite.
  const std::string path = temp_path("tunekit_evaldb_legacy.json");
  {
    std::ofstream out(path);
    out << R"({"format": "tunekit-evaldb-v1", "evaluations": [)"
        << R"({"config": [0.1, 0.2], "value": 3.5, "cost_seconds": 1.0},)"
        << R"({"config": [0.3, 0.4], "value": null}]})";
  }
  const EvalDb loaded = EvalDb::load(path, two_dim_space());
  ASSERT_EQ(loaded.size(), 2u);
  const auto all = loaded.all();
  EXPECT_EQ(all[0].outcome, robust::EvalOutcome::Ok);
  EXPECT_DOUBLE_EQ(all[0].dispersion, 0.0);
  EXPECT_EQ(all[1].outcome, robust::EvalOutcome::NonFinite);
  std::remove(path.c_str());
}

TEST(EvalDb, MoveTransfersContents) {
  EvalDb db;
  db.record({0.0, 0.0}, 1.0);
  EvalDb moved = std::move(db);
  EXPECT_EQ(moved.size(), 1u);
}

}  // namespace
}  // namespace tunekit::search
