#include "search/sobol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tunekit::search {
namespace {

TEST(Sobol, FirstDimensionIsVanDerCorput) {
  SobolSequence seq(1);
  EXPECT_DOUBLE_EQ(seq.next()[0], 0.0);
  EXPECT_DOUBLE_EQ(seq.next()[0], 0.5);
  EXPECT_DOUBLE_EQ(seq.next()[0], 0.75);
  EXPECT_DOUBLE_EQ(seq.next()[0], 0.25);
  EXPECT_DOUBLE_EQ(seq.next()[0], 0.375);
}

TEST(Sobol, PointsInUnitCube) {
  SobolSequence seq(24);
  for (int i = 0; i < 500; ++i) {
    const auto p = seq.next();
    ASSERT_EQ(p.size(), 24u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sobol, DyadicBalanceInEveryDimension) {
  // A Sobol' sequence of 2^k points puts exactly half of them in each half
  // of every axis.
  SobolSequence seq(8);
  const std::size_t n = 256;
  std::vector<int> low_count(8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = seq.next();
    for (std::size_t d = 0; d < 8; ++d) {
      if (p[d] < 0.5) ++low_count[d];
    }
  }
  for (int c : low_count) EXPECT_EQ(c, 128);
}

TEST(Sobol, QuadrantBalance2D) {
  // First two dimensions: 2^k points distribute evenly across quadrants.
  SobolSequence seq(2);
  int quadrant[4] = {0, 0, 0, 0};
  for (int i = 0; i < 64; ++i) {
    const auto p = seq.next();
    quadrant[(p[0] >= 0.5 ? 1 : 0) + (p[1] >= 0.5 ? 2 : 0)]++;
  }
  for (int q : quadrant) EXPECT_EQ(q, 16);
}

TEST(Sobol, DistinctPoints) {
  SobolSequence seq(4);
  std::set<std::vector<double>> seen;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(seen.insert(seq.next()).second);
  }
}

TEST(Sobol, ScramblingChangesPointsPreservesRange) {
  SobolSequence plain(3);
  SobolSequence scrambled(3, 99);
  plain.skip(8);
  scrambled.skip(8);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    const auto a = plain.next();
    const auto b = scrambled.next();
    if (a != b) any_diff = true;
    for (double x : b) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Sobol, ScrambleSeedDeterministic) {
  SobolSequence a(3, 7), b(3, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Sobol, DimensionLimits) {
  EXPECT_THROW(SobolSequence(0), std::invalid_argument);
  EXPECT_THROW(SobolSequence(25), std::invalid_argument);
  EXPECT_NO_THROW(SobolSequence(24));
}

TEST(Sobol, SampleRespectsConstraints) {
  SearchSpace space;
  space.add(ParamSpec::integer("a", 1, 16, 1));
  space.add(ParamSpec::integer("b", 1, 16, 1));
  space.add_constraint("prod", [](const Config& c) { return c[0] * c[1] <= 64.0; });
  const auto configs = SobolSequence::sample(space, 30, 5);
  EXPECT_EQ(configs.size(), 30u);
  for (const auto& c : configs) EXPECT_TRUE(space.is_valid(c));
}

TEST(Sobol, SampleBetterCoverageThanClumping) {
  // Coarse discrepancy check: 100 Sobol points in 2-d hit at least 14 of a
  // 4x4 grid's cells.
  SearchSpace space;
  space.add(ParamSpec::real("x", 0.0, 1.0, 0.5));
  space.add(ParamSpec::real("y", 0.0, 1.0, 0.5));
  const auto configs = SobolSequence::sample(space, 100, 0);
  std::set<int> cells;
  for (const auto& c : configs) {
    const int cx = std::min(3, static_cast<int>(c[0] * 4.0));
    const int cy = std::min(3, static_cast<int>(c[1] * 4.0));
    cells.insert(4 * cy + cx);
  }
  EXPECT_GE(cells.size(), 14u);
}

}  // namespace
}  // namespace tunekit::search
