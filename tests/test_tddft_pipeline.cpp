#include "tddft/slater_pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tunekit::tddft {
namespace {

PipelineTunables quiet_tunables() {
  PipelineTunables t;
  t.noise_level = 0.0;
  return t;
}

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : pipeline_(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                  PipelineTunables{}, /*noise_seed=*/0) {}

  SlaterPipeline pipeline_;
};

TEST_F(PipelineFixture, DefaultConfigValidAndPositiveTimes) {
  const auto config = TddftConfig::defaults();
  ASSERT_TRUE(pipeline_.valid(config));
  const auto b = pipeline_.simulate(config);
  EXPECT_GT(b.group1, 0.0);
  EXPECT_GT(b.group2, 0.0);
  EXPECT_GT(b.group3, 0.0);
  EXPECT_GT(b.slater, 0.0);
  EXPECT_GT(b.total, b.slater);  // total adds non-offloaded work
}

TEST_F(PipelineFixture, InvalidConfigsRejected) {
  auto config = TddftConfig::defaults();
  config.grid = {64, 1, 1};  // 64 ranks > 40 allocated
  EXPECT_FALSE(pipeline_.valid(config));
  EXPECT_THROW(pipeline_.simulate(config), std::invalid_argument);

  config = TddftConfig::defaults();
  config.tunings[KernelId::Pairwise].tb_sm = 32;  // 256*32 > 2048
  EXPECT_FALSE(pipeline_.valid(config));

  config = TddftConfig::defaults();
  config.nbatches = 0;
  EXPECT_FALSE(pipeline_.valid(config));
}

TEST_F(PipelineFixture, DeterministicPerSeed) {
  const auto config = TddftConfig::defaults();
  const auto a = pipeline_.simulate(config);
  const auto b = pipeline_.simulate(config);
  EXPECT_DOUBLE_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.group3, b.group3);
}

TEST(Pipeline, KernelSplitMatchesPaperAtDefaults) {
  // Paper §V-A: cuFFT 61.4%, cuZcopy 14.2%, cuVec2Zvec 12.4%, cuPairwise
  // 4.9%, cuDscal 4.2%, cuZvec2Vec 2.9% of GPU compute time at default
  // tuning values (transfers excluded).
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40);
  const auto split = pipeline.kernel_breakdown(TddftConfig::defaults());
  double total = 0.0;
  for (const auto& [name, t] : split) total += t;
  const std::map<std::string, double> expected{
      {"cuFFT", 61.4},     {"cuZcopy", 14.2},   {"cuVec2Zvec", 12.4},
      {"cuPairwise", 4.9}, {"cuDscal", 4.2},    {"cuZvec2Vec", 2.9}};
  for (const auto& [name, share] : expected) {
    EXPECT_NEAR(100.0 * split.at(name) / total, share, 4.0) << name;
  }
}

TEST(Pipeline, BatchingReducesPerBandGroupTimes) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto small = TddftConfig::defaults();
  small.nbatches = 1;
  auto large = TddftConfig::defaults();
  large.nbatches = 32;
  const auto t_small = pipeline.simulate(small);
  const auto t_large = pipeline.simulate(large);
  EXPECT_LT(t_large.group1, t_small.group1);
  EXPECT_LT(t_large.group2, t_small.group2);
  EXPECT_LT(t_large.group3, t_small.group3);
}

TEST(Pipeline, StreamsSpeedUpSlaterButNotWithoutBound) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto one = TddftConfig::defaults();
  one.nstreams = 1;
  auto four = TddftConfig::defaults();
  four.nstreams = 4;
  auto many = TddftConfig::defaults();
  many.nstreams = 32;
  const double t1 = pipeline.simulate(one).slater;
  const double t4 = pipeline.simulate(four).slater;
  const double t32 = pipeline.simulate(many).slater;
  EXPECT_LT(t4, t1);        // overlap helps
  EXPECT_GT(t32, t4 * 0.9); // diminishing returns / overhead past the limit
}

TEST(Pipeline, PairwiseOccupancyInterferesWithGroup3) {
  // The paper's G2 -> G3 cache interdependence: raising cuPairwise's
  // resident-thread count slows Group 3 even though Group 3's own tuning is
  // unchanged.
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto low = TddftConfig::defaults();
  low.tunings[KernelId::Pairwise] = {1, 128, 1};
  auto high = TddftConfig::defaults();
  high.tunings[KernelId::Pairwise] = {1, 1024, 2};
  const auto t_low = pipeline.simulate(low);
  const auto t_high = pipeline.simulate(high);
  EXPECT_GT(t_high.group3, t_low.group3 * 1.1);
  // Group 1 is unaffected by pairwise tuning.
  EXPECT_NEAR(t_high.group1, t_low.group1, 1e-12);
}

TEST(Pipeline, ZcopyTuningSharedBetweenGroups) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto base = TddftConfig::defaults();
  auto tuned = TddftConfig::defaults();
  tuned.tunings[KernelId::Zcopy] = {2, 512, 4};  // better zcopy config
  const auto t_base = pipeline.simulate(base);
  const auto t_tuned = pipeline.simulate(tuned);
  // Both groups that call cuZcopy move together.
  EXPECT_NE(t_tuned.group1, t_base.group1);
  EXPECT_NE(t_tuned.group3, t_base.group3);
}

TEST(Pipeline, MoreRanksShrinkSlaterTime) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto narrow = TddftConfig::defaults();
  narrow.grid = {1, 1, 1};
  auto wide = TddftConfig::defaults();
  wide.grid = {16, 1, 1};
  EXPECT_GT(pipeline.simulate(narrow).slater, pipeline.simulate(wide).slater * 2.0);
}

TEST(Pipeline, CaseStudy2SeesKpointScaling) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_2(), GpuArch::a100(), 40,
                          quiet_tunables());
  auto serial_k = TddftConfig::defaults();
  serial_k.grid = {1, 1, 1};
  auto parallel_k = TddftConfig::defaults();
  parallel_k.grid = {1, 36, 1};
  EXPECT_GT(pipeline.simulate(serial_k).slater,
            pipeline.simulate(parallel_k).slater * 10.0);
}

TEST(Pipeline, NoiseIsBoundedAndSeedKeyed) {
  PipelineTunables noisy;
  noisy.noise_level = 0.01;
  SlaterPipeline p1(PhysicalSystem::case_study_1(), GpuArch::a100(), 40, noisy, 1);
  SlaterPipeline p2(PhysicalSystem::case_study_1(), GpuArch::a100(), 40, noisy, 2);
  SlaterPipeline quiet(PhysicalSystem::case_study_1(), GpuArch::a100(), 40,
                       quiet_tunables(), 1);
  const auto config = TddftConfig::defaults();
  const double clean = quiet.simulate(config).total;
  const double n1 = p1.simulate(config).total;
  const double n2 = p2.simulate(config).total;
  EXPECT_NE(n1, n2);
  EXPECT_NEAR(n1, clean, clean * 0.03);
  EXPECT_NEAR(n2, clean, clean * 0.03);
}

TEST(Pipeline, KernelBreakdownValidatesConfig) {
  SlaterPipeline pipeline(PhysicalSystem::case_study_1(), GpuArch::a100(), 40);
  auto bad = TddftConfig::defaults();
  bad.grid = {64, 2, 1};
  EXPECT_THROW(pipeline.kernel_breakdown(bad), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::tddft
