#include <gtest/gtest.h>

#include "tddft/gpu_arch.hpp"
#include "tddft/kernel_models.hpp"
#include "tddft/mpi_grid.hpp"
#include "tddft/physical_system.hpp"
#include "tddft/transfer_model.hpp"

namespace tunekit::tddft {
namespace {

TEST(GpuArch, A100Characteristics) {
  const GpuArch a = GpuArch::a100();
  EXPECT_EQ(a.max_blocks_per_sm, 32);       // paper: up to 32 blocks/SM
  EXPECT_EQ(a.max_threads_per_block, 1024); // 32 warps per threadblock
  EXPECT_EQ(a.max_threads_per_sm, 2048);
}

TEST(GpuArch, KernelConfigValidity) {
  const GpuArch a = GpuArch::a100();
  EXPECT_TRUE(a.valid_kernel_config(256, 2));
  EXPECT_TRUE(a.valid_kernel_config(1024, 2));   // 2048 resident threads
  EXPECT_FALSE(a.valid_kernel_config(1024, 3));  // exceeds threads/SM
  EXPECT_FALSE(a.valid_kernel_config(2048, 1));  // exceeds threads/block
  EXPECT_FALSE(a.valid_kernel_config(100, 2));   // not warp multiple
  EXPECT_FALSE(a.valid_kernel_config(32, 33));   // too many blocks
  EXPECT_FALSE(a.valid_kernel_config(0, 1));
  EXPECT_FALSE(a.valid_kernel_config(32, 0));
}

TEST(GpuArch, OccupancyFractions) {
  const GpuArch a = GpuArch::a100();
  EXPECT_DOUBLE_EQ(a.occupancy(1024, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.occupancy(256, 2), 0.25);
  EXPECT_DOUBLE_EQ(a.occupancy(32, 1), 32.0 / 2048.0);
}

TEST(PhysicalSystem, CaseStudiesMatchPaper) {
  const auto cs1 = PhysicalSystem::case_study_1();
  EXPECT_EQ(cs1.nspin, 1);
  EXPECT_EQ(cs1.nkpoints, 1);
  EXPECT_EQ(cs1.nbands, 64);
  EXPECT_EQ(cs1.fft_size, 3'000'000u);
  EXPECT_EQ(cs1.band_bytes(), 48'000'000u);

  const auto cs2 = PhysicalSystem::case_study_2();
  EXPECT_EQ(cs2.nkpoints, 36);
  EXPECT_EQ(cs2.nbands, 64);
  EXPECT_EQ(cs2.fft_size, 620'000u);
}

class KernelModelFixture : public ::testing::Test {
 protected:
  KernelModelFixture() : arch_(GpuArch::a100()), kernels_(make_default_kernels(arch_)) {}

  const KernelModel& kernel(KernelId id) const { return kernels_.at(id); }

  GpuArch arch_;
  std::map<KernelId, KernelModel> kernels_;
  static constexpr std::size_t kElems = 3'000'000;
};

TEST_F(KernelModelFixture, AllFiveKernelsPresent) {
  EXPECT_EQ(kernels_.size(), 5u);
  for (KernelId id : {KernelId::Vec2Zvec, KernelId::Zcopy, KernelId::Dscal,
                      KernelId::Pairwise, KernelId::Zvec2Vec}) {
    EXPECT_EQ(kernels_.at(id).id(), id);
  }
}

TEST_F(KernelModelFixture, TimePositiveAndScalesWithWork) {
  const KernelTuning t{2, 256, 4};
  const auto& zcopy = kernel(KernelId::Zcopy);
  const double t1 = zcopy.launch_seconds(kElems, 1, t);
  const double t2 = zcopy.launch_seconds(2 * kElems, 1, t);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, 1.8 * t1);
}

TEST_F(KernelModelFixture, BatchingAmortizes) {
  const KernelTuning t{2, 256, 4};
  const auto& vec = kernel(KernelId::Vec2Zvec);
  const double per_band_b1 = vec.launch_seconds(kElems, 1, t);
  const double per_band_b16 = vec.launch_seconds(kElems, 16, t) / 16.0;
  EXPECT_LT(per_band_b16, per_band_b1);
}

TEST_F(KernelModelFixture, HigherOccupancyFasterInTypicalRange) {
  const auto& pair = kernel(KernelId::Pairwise);
  const double low = pair.launch_seconds(kElems, 8, {4, 128, 1});
  const double high = pair.launch_seconds(kElems, 8, {4, 128, 8});
  EXPECT_LT(high, low);
}

TEST_F(KernelModelFixture, PreferredUnrollIsOptimal) {
  const auto& dscal = kernel(KernelId::Dscal);  // preferred unroll 4
  const double at_pref = dscal.launch_seconds(kElems, 8, {4, 256, 4});
  const double at_one = dscal.launch_seconds(kElems, 8, {1, 256, 4});
  const double at_eight = dscal.launch_seconds(kElems, 8, {8, 256, 4});
  EXPECT_LT(at_pref, at_one);
  EXPECT_LT(at_pref, at_eight);
}

TEST_F(KernelModelFixture, InterferenceSlowsKernel) {
  const auto& zvec = kernel(KernelId::Zvec2Vec);
  const KernelTuning t{2, 256, 4};
  EXPECT_GT(zvec.launch_seconds(kElems, 8, t, 1.5), zvec.launch_seconds(kElems, 8, t));
}

TEST_F(KernelModelFixture, InvalidTuningThrows) {
  const auto& vec = kernel(KernelId::Vec2Zvec);
  EXPECT_THROW(vec.launch_seconds(kElems, 1, {1, 1024, 3}), std::invalid_argument);
  EXPECT_THROW(vec.efficiency({1, 100, 2}, 1, kElems), std::invalid_argument);
}

TEST_F(KernelModelFixture, EfficiencyBounded) {
  const auto& zcopy = kernel(KernelId::Zcopy);
  for (int tb : {32, 256, 1024}) {
    for (int tb_sm : {1, 2}) {
      const double e = zcopy.efficiency({2, tb, tb_sm}, 16, kElems);
      EXPECT_GT(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST(FftModel, ScalesWithSizeAndBatch) {
  const GpuArch arch = GpuArch::a100();
  FftModel fft(arch);
  const double small = fft.launch_seconds(620'000, 1);
  const double large = fft.launch_seconds(3'000'000, 1);
  EXPECT_GT(large, small);
  // Batched per-band cost decreases.
  const double per_band_b1 = fft.launch_seconds(3'000'000, 1);
  const double per_band_b16 = fft.launch_seconds(3'000'000, 16) / 16.0;
  EXPECT_LT(per_band_b16, per_band_b1);
}

TEST(KernelId, Names) {
  EXPECT_STREQ(to_string(KernelId::Vec2Zvec), "cuVec2Zvec");
  EXPECT_STREQ(to_string(KernelId::Pairwise), "cuPairwise");
}

TEST(MpiGridModel, Validity) {
  const auto sys = PhysicalSystem::case_study_2();
  MpiGridModel mpi(40);  // 10 nodes x 4
  EXPECT_TRUE(mpi.valid({4, 9, 1}, sys));    // 36 ranks
  EXPECT_FALSE(mpi.valid({8, 9, 1}, sys));   // 72 > 40 ranks
  EXPECT_FALSE(mpi.valid({1, 37, 1}, sys));  // nkpb > k-points
  EXPECT_FALSE(mpi.valid({1, 1, 2}, sys));   // nspb > spins
  EXPECT_FALSE(mpi.valid({0, 1, 1}, sys));
  EXPECT_FALSE(mpi.valid({65, 1, 1}, sys));  // nstb > bands
}

TEST(MpiGridModel, LocalExtentsUseCeil) {
  const auto sys = PhysicalSystem::case_study_2();
  MpiGridModel mpi(40);
  EXPECT_EQ(mpi.bands_loc({4, 1, 1}, sys), 16);
  EXPECT_EQ(mpi.bands_loc({3, 1, 1}, sys), 22);  // ceil(64/3)
  EXPECT_EQ(mpi.kpoints_loc({1, 9, 1}, sys), 4);
  EXPECT_EQ(mpi.kpoints_loc({1, 12, 1}, sys), 3);
  EXPECT_EQ(mpi.spins_loc({1, 1, 1}, sys), 1);
}

TEST(MpiGridModel, ImbalanceFactor) {
  EXPECT_DOUBLE_EQ(MpiGridModel::imbalance(64, 4), 1.0);
  EXPECT_GT(MpiGridModel::imbalance(64, 3), 1.0);
  EXPECT_DOUBLE_EQ(MpiGridModel::imbalance(64, 3), 22.0 / (64.0 / 3.0));
  EXPECT_THROW(MpiGridModel::imbalance(0, 3), std::invalid_argument);
}

TEST(MpiGridModel, AllreduceScalesWithRanksAndBytes) {
  MpiGridModel mpi(64);
  EXPECT_DOUBLE_EQ(mpi.allreduce_seconds(1024, 1), 0.0);
  const double r4 = mpi.allreduce_seconds(1 << 20, 4);
  const double r16 = mpi.allreduce_seconds(1 << 20, 16);
  EXPECT_GT(r16, r4);
  EXPECT_GT(mpi.allreduce_seconds(1 << 24, 4), r4);
}

TEST(MpiGridModel, ConstructionValidated) {
  EXPECT_THROW(MpiGridModel(0), std::invalid_argument);
}

TEST(TransferModel, LatencyPlusBandwidth) {
  const GpuArch arch = GpuArch::a100();
  TransferModel xfer(arch);
  const double one = xfer.seconds(100 * 1000 * 1000, 1);
  const double split = xfer.seconds(100 * 1000 * 1000, 10);
  EXPECT_GT(split, one);  // more transfers pay more latency
  // Bandwidth term dominates large transfers: 100 MB at 25 GB/s = 4 ms.
  EXPECT_NEAR(one, 1e8 / (arch.pcie_bandwidth_gbs * 1e9), 1e-4);
}

}  // namespace
}  // namespace tunekit::tddft
