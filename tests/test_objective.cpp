#include "search/objective.hpp"

#include <gtest/gtest.h>

namespace tunekit::search {
namespace {

TEST(FunctionObjective, EvaluatesAndFlagsThreadSafety) {
  FunctionObjective f([](const Config& c) { return c[0] * 2.0; });
  EXPECT_DOUBLE_EQ(f.evaluate({3.0}), 6.0);
  EXPECT_TRUE(f.thread_safe());
  FunctionObjective g([](const Config&) { return 0.0; }, /*thread_safe=*/false);
  EXPECT_FALSE(g.thread_safe());
}

TEST(CountingObjective, Counts) {
  FunctionObjective f([](const Config& c) { return c[0]; });
  CountingObjective counted(f);
  EXPECT_EQ(counted.count(), 0u);
  counted.evaluate({1.0});
  counted.evaluate({2.0});
  EXPECT_EQ(counted.count(), 2u);
}

TEST(RegionTimes, RegionOrTotal) {
  RegionTimes t;
  t.total = 10.0;
  t.regions["a"] = 3.0;
  EXPECT_DOUBLE_EQ(t.region_or_total("a"), 3.0);
  EXPECT_DOUBLE_EQ(t.region_or_total("total"), 10.0);
  EXPECT_DOUBLE_EQ(t.region_or_total(""), 10.0);
  EXPECT_DOUBLE_EQ(t.region_or_total("missing"), 10.0);
}

class SubspaceFixture : public ::testing::Test {
 protected:
  SubspaceFixture() {
    space_.add(ParamSpec::real("x", 0.0, 10.0, 5.0));
    space_.add(ParamSpec::real("y", 0.0, 10.0, 5.0));
    space_.add(ParamSpec::real("z", 0.0, 10.0, 5.0));
    space_.add_constraint("sum_le_20",
                          [](const Config& c) { return c[0] + c[1] + c[2] <= 20.0; });
  }

  SearchSpace space_;
  FunctionObjective inner_{[](const Config& c) { return c[0] + 10.0 * c[1] + 100.0 * c[2]; }};
};

TEST_F(SubspaceFixture, EmbedsIntoBase) {
  SubspaceObjective sub(inner_, space_, {2, 0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(sub.space().size(), 2u);
  EXPECT_EQ(sub.space().param(0).name(), "z");
  const Config full = sub.embed({9.0, 4.0});
  EXPECT_EQ(full, (Config{4.0, 2.0, 9.0}));
  // Evaluate: x=4, y=2 (frozen), z=9 -> 4 + 20 + 900
  EXPECT_DOUBLE_EQ(sub.evaluate({9.0, 4.0}), 924.0);
}

TEST_F(SubspaceFixture, InheritsParentConstraint) {
  SubspaceObjective sub(inner_, space_, {0}, {0.0, 9.0, 9.0});
  // x can be at most 2 before sum exceeds 20.
  EXPECT_TRUE(sub.space().is_valid({2.0}));
  EXPECT_FALSE(sub.space().is_valid({3.0}));
}

TEST_F(SubspaceFixture, SetBaseUpdatesFrozenCoords) {
  SubspaceObjective sub(inner_, space_, {0}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(sub.evaluate({1.0}), 1.0);
  sub.set_base({0.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(sub.evaluate({1.0}), 111.0);
  EXPECT_THROW(sub.set_base({0.0}), std::invalid_argument);
}

TEST_F(SubspaceFixture, ValidatesConstruction) {
  EXPECT_THROW(SubspaceObjective(inner_, space_, {5}, space_.defaults()),
               std::out_of_range);
  EXPECT_THROW(SubspaceObjective(inner_, space_, {0}, {1.0}), std::invalid_argument);
}

TEST_F(SubspaceFixture, EmbedArityChecked) {
  SubspaceObjective sub(inner_, space_, {0, 1}, space_.defaults());
  EXPECT_THROW(sub.embed({1.0}), std::invalid_argument);
}

class RegionStub final : public RegionObjective {
 public:
  RegionTimes evaluate_regions(const Config& c) override {
    RegionTimes t;
    t.regions["r1"] = c[0];
    t.regions["r2"] = 2.0 * c[0];
    t.total = 3.0 * c[0];
    return t;
  }
};

TEST(RegionObjective, ScalarEvaluateUsesTotal) {
  RegionStub stub;
  EXPECT_DOUBLE_EQ(stub.evaluate({2.0}), 6.0);
}

}  // namespace
}  // namespace tunekit::search
