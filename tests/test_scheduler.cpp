#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>

#include "common/stopwatch.hpp"
#include "search/objective.hpp"
#include "service/session.hpp"

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

/// Thread-safe sphere objective that counts calls and records every config
/// it was asked to evaluate, so the stress test can prove nothing was lost
/// or evaluated twice.
class CountingObjective final : public search::Objective {
 public:
  explicit CountingObjective(double sleep_ms = 0.0) : sleep_ms_(sleep_ms) {}

  double evaluate(const search::Config& c) override {
    if (sleep_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(sleep_ms_ * 1000.0)));
    }
    calls_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seen_.push_back(c);
    }
    return c[0] * c[0] + c[1] * c[1];
  }

  bool thread_safe() const override { return true; }

  std::size_t calls() const { return calls_.load(); }
  std::vector<search::Config> seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_;
  }

 private:
  double sleep_ms_;
  std::atomic<std::size_t> calls_{0};
  mutable std::mutex mutex_;
  std::vector<search::Config> seen_;
};

/// Crashes on every first attempt of an unseen config, succeeds on retries.
class FlakyObjective final : public search::Objective {
 public:
  double evaluate(const search::Config& c) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (attempted_.insert(c).second) throw std::runtime_error("transient crash");
    return c[0] + c[1];
  }
  bool thread_safe() const override { return true; }

 private:
  std::mutex mutex_;
  std::set<search::Config> attempted_;
};

TEST(EvalScheduler, NoLostOrDuplicateEvaluations) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 64;
  opt.backend = SessionBackend::Random;
  opt.seed = 13;
  TuningSession session(space, opt);

  CountingObjective objective;
  EvalScheduler scheduler({/*n_threads=*/8, /*batch_size=*/8});
  const auto result = scheduler.run(session, objective);

  // Budget is consumed exactly: every candidate evaluated once, none lost,
  // none repeated.
  EXPECT_EQ(result.evaluations, 64u);
  EXPECT_EQ(objective.calls(), 64u);
  const auto seen = objective.seen();
  std::set<search::Config> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());
  EXPECT_EQ(session.state(), SessionState::Exhausted);
  EXPECT_EQ(session.outstanding(), 0u);
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(std::isfinite(result.best_value));
}

TEST(EvalScheduler, CrashingEvaluationsAreRetried) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 16;
  opt.max_attempts = 3;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  FlakyObjective objective;
  EvalScheduler scheduler({4, 4});
  const auto result = scheduler.run(session, objective);

  // Every candidate crashed once then succeeded on retry — all 16 recorded.
  EXPECT_EQ(result.evaluations, 16u);
  EXPECT_TRUE(result.found());
  for (const auto& e : session.evaluations()) EXPECT_TRUE(std::isfinite(e.value));
}

TEST(EvalScheduler, AlwaysCrashingConfigsDropAtPenalty) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.max_attempts = 2;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  class DoomedObjective final : public search::Objective {
   public:
    double evaluate(const search::Config&) override {
      throw std::runtime_error("always crashes");
    }
    bool thread_safe() const override { return true; }
  } objective;

  EvalScheduler scheduler({2, 2});
  const auto result = scheduler.run(session, objective);
  // Attempts exhausted for every candidate; budget fully consumed by drops.
  EXPECT_EQ(session.completed(), 6u);
  EXPECT_FALSE(result.found());  // all NaN: no best config
  for (const auto& e : session.evaluations()) EXPECT_TRUE(std::isnan(e.value));
}

TEST(EvalScheduler, NonThreadSafeObjectiveForcedSequential) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  class SerialObjective final : public search::Objective {
   public:
    double evaluate(const search::Config& c) override {
      const int now = ++in_flight_;
      EXPECT_EQ(now, 1) << "objective entered concurrently";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --in_flight_;
      return c[0];
    }
    bool thread_safe() const override { return false; }

   private:
    std::atomic<int> in_flight_{0};
  } objective;

  EvalScheduler scheduler({8, 8});
  const auto result = scheduler.run(session, objective);
  EXPECT_EQ(result.evaluations, 8u);
}

TEST(EvalScheduler, ParallelFasterThanSequentialOnSlowObjective) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 24;
  opt.backend = SessionBackend::Random;
  opt.seed = 99;

  const double sleep_ms = 10.0;
  Stopwatch w1;
  {
    TuningSession session(space, opt);
    CountingObjective objective(sleep_ms);
    EvalScheduler scheduler({1, 1});
    scheduler.run(session, objective);
  }
  const double sequential = w1.seconds();

  Stopwatch w8;
  {
    TuningSession session(space, opt);
    CountingObjective objective(sleep_ms);
    EvalScheduler scheduler({8, 8});
    scheduler.run(session, objective);
  }
  const double parallel = w8.seconds();

  // 24 x 10ms sequentially is ~240ms; eight workers need only ~3 rounds.
  // Generous 2x margin keeps this robust on loaded CI machines.
  EXPECT_LT(parallel * 2.0, sequential);
}

}  // namespace
}  // namespace tunekit::service
