#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>

#include "common/stopwatch.hpp"
#include "search/objective.hpp"
#include "service/session.hpp"

namespace tunekit::service {
namespace {

search::SearchSpace two_dim_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -5.0, 5.0, 0.0));
  s.add(search::ParamSpec::real("y", -5.0, 5.0, 0.0));
  return s;
}

/// Thread-safe sphere objective that counts calls and records every config
/// it was asked to evaluate, so the stress test can prove nothing was lost
/// or evaluated twice.
class CountingObjective final : public search::Objective {
 public:
  explicit CountingObjective(double sleep_ms = 0.0) : sleep_ms_(sleep_ms) {}

  double evaluate(const search::Config& c) override {
    if (sleep_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(sleep_ms_ * 1000.0)));
    }
    calls_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seen_.push_back(c);
    }
    return c[0] * c[0] + c[1] * c[1];
  }

  bool thread_safe() const override { return true; }

  std::size_t calls() const { return calls_.load(); }
  std::vector<search::Config> seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_;
  }

 private:
  double sleep_ms_;
  std::atomic<std::size_t> calls_{0};
  mutable std::mutex mutex_;
  std::vector<search::Config> seen_;
};

/// Crashes on every first attempt of an unseen config, succeeds on retries.
class FlakyObjective final : public search::Objective {
 public:
  double evaluate(const search::Config& c) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (attempted_.insert(c).second) throw std::runtime_error("transient crash");
    return c[0] + c[1];
  }
  bool thread_safe() const override { return true; }

 private:
  std::mutex mutex_;
  std::set<search::Config> attempted_;
};

TEST(EvalScheduler, NoLostOrDuplicateEvaluations) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 64;
  opt.backend = SessionBackend::Random;
  opt.seed = 13;
  TuningSession session(space, opt);

  CountingObjective objective;
  EvalScheduler scheduler({/*n_threads=*/8, /*batch_size=*/8, {}});
  const auto result = scheduler.run(session, objective);

  // Budget is consumed exactly: every candidate evaluated once, none lost,
  // none repeated.
  EXPECT_EQ(result.evaluations, 64u);
  EXPECT_EQ(objective.calls(), 64u);
  const auto seen = objective.seen();
  std::set<search::Config> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());
  EXPECT_EQ(session.state(), SessionState::Exhausted);
  EXPECT_EQ(session.outstanding(), 0u);
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(std::isfinite(result.best_value));
}

TEST(EvalScheduler, CrashingEvaluationsAreRetried) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 16;
  opt.max_attempts = 3;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  FlakyObjective objective;
  EvalScheduler scheduler({4, 4, {}});
  const auto result = scheduler.run(session, objective);

  // Every candidate crashed once then succeeded on retry — all 16 recorded.
  EXPECT_EQ(result.evaluations, 16u);
  EXPECT_TRUE(result.found());
  for (const auto& e : session.evaluations()) EXPECT_TRUE(std::isfinite(e.value));
}

TEST(EvalScheduler, AlwaysCrashingConfigsDropAtPenalty) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.max_attempts = 2;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  class DoomedObjective final : public search::Objective {
   public:
    double evaluate(const search::Config&) override {
      throw std::runtime_error("always crashes");
    }
    bool thread_safe() const override { return true; }
  } objective;

  EvalScheduler scheduler({2, 2, {}});
  const auto result = scheduler.run(session, objective);
  // Attempts exhausted for every candidate; budget fully consumed by drops.
  EXPECT_EQ(session.completed(), 6u);
  EXPECT_FALSE(result.found());  // all NaN: no best config
  for (const auto& e : session.evaluations()) EXPECT_TRUE(std::isnan(e.value));
}

TEST(EvalScheduler, NonThreadSafeObjectiveForcedSequential) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 8;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  class SerialObjective final : public search::Objective {
   public:
    double evaluate(const search::Config& c) override {
      const int now = ++in_flight_;
      EXPECT_EQ(now, 1) << "objective entered concurrently";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --in_flight_;
      return c[0];
    }
    bool thread_safe() const override { return false; }

   private:
    std::atomic<int> in_flight_{0};
  } objective;

  EvalScheduler scheduler({8, 8, {}});
  const auto result = scheduler.run(session, objective);
  EXPECT_EQ(result.evaluations, 8u);
}

TEST(EvalScheduler, ParallelFasterThanSequentialOnSlowObjective) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 24;
  opt.backend = SessionBackend::Random;
  opt.seed = 99;

  const double sleep_ms = 10.0;
  Stopwatch w1;
  {
    TuningSession session(space, opt);
    CountingObjective objective(sleep_ms);
    EvalScheduler scheduler({1, 1, {}});
    scheduler.run(session, objective);
  }
  const double sequential = w1.seconds();

  Stopwatch w8;
  {
    TuningSession session(space, opt);
    CountingObjective objective(sleep_ms);
    EvalScheduler scheduler({8, 8, {}});
    scheduler.run(session, objective);
  }
  const double parallel = w8.seconds();

  // 24 x 10ms sequentially is ~240ms; eight workers need only ~3 rounds.
  // Generous 2x margin keeps this robust on loaded CI machines.
  EXPECT_LT(parallel * 2.0, sequential);
}

TEST(EvalScheduler, NonStandardThrowClassifiedAsCrash) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 4;
  opt.max_attempts = 1;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  // Throwing a non-std::exception must not kill the worker pool; it is
  // classified as a crash like any other.
  class RudeObjective final : public search::Objective {
   public:
    double evaluate(const search::Config&) override { throw 42; }
    bool thread_safe() const override { return true; }
  } objective;

  EvalScheduler scheduler({2, 2, {}});
  scheduler.run(session, objective);
  EXPECT_EQ(session.completed(), 4u);
  for (const auto& e : session.evaluations()) {
    EXPECT_EQ(e.outcome, robust::EvalOutcome::Crashed);
    EXPECT_TRUE(std::isnan(e.value));
  }
}

TEST(EvalScheduler, HungEvaluationsTimeOutAndAreClassified) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 4;
  opt.max_attempts = 1;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  // Hangs forever unless the watchdog's cancel flag fires.
  class HangingObjective final : public search::Objective {
   public:
    double evaluate(const search::Config& c) override {
      return evaluate_cancellable(c, search::CancelFlag());
    }
    double evaluate_cancellable(const search::Config&,
                                const search::CancelFlag& cancel) override {
      while (!cancel.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw robust::EvalFailure(robust::EvalOutcome::TimedOut, "cancelled");
    }
    bool thread_safe() const override { return true; }
  } objective;

  SchedulerOptions sched;
  sched.n_threads = 2;
  sched.batch_size = 2;
  sched.measure.watchdog.timeout_seconds = 0.05;
  Stopwatch watch;
  EvalScheduler(sched).run(session, objective);
  // Reclaimed at the deadline, not wedged forever: 4 candidates on 2 workers
  // cost ~2 deadlines.
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(session.completed(), 4u);
  for (const auto& e : session.evaluations()) {
    EXPECT_EQ(e.outcome, robust::EvalOutcome::TimedOut);
    EXPECT_TRUE(std::isnan(e.value));
  }
}

TEST(EvalScheduler, RepeatedMeasurementTellsDispersion) {
  const auto space = two_dim_space();
  SessionOptions opt;
  opt.max_evals = 6;
  opt.backend = SessionBackend::Random;
  TuningSession session(space, opt);

  // Deterministic per-call jitter around the sphere value: repeats of one
  // config disagree slightly, so the session learns a dispersion.
  class JitteryObjective final : public search::Objective {
   public:
    double evaluate(const search::Config& c) override {
      const auto k = calls_.fetch_add(1, std::memory_order_relaxed);
      const double jitter = 1.0 + 0.02 * static_cast<double>(k % 3);
      return (1.0 + c[0] * c[0] + c[1] * c[1]) * jitter;
    }
    bool thread_safe() const override { return true; }

   private:
    std::atomic<std::size_t> calls_{0};
  } objective;

  SchedulerOptions sched;
  sched.n_threads = 2;
  sched.batch_size = 2;
  sched.measure.repeats = 3;
  sched.measure.mad_threshold = 0.0;  // jitter is the signal — keep all
  EvalScheduler(sched).run(session, objective);

  EXPECT_EQ(session.completed(), 6u);
  std::size_t with_dispersion = 0;
  for (const auto& e : session.evaluations()) {
    EXPECT_EQ(e.outcome, robust::EvalOutcome::Ok);
    if (e.dispersion > 0.0) ++with_dispersion;
  }
  EXPECT_GT(with_dispersion, 0u);
}

}  // namespace
}  // namespace tunekit::service
