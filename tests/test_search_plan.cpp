#include "graph/search_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tunekit::graph {
namespace {

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

const PlannedSearch* find_search(const SearchPlan& plan, const std::string& name) {
  for (const auto& s : plan.searches) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Synthetic-style graph: 4 routines, 2 params each; params of routine 3
/// influence routine 2 with `coupling`.
InfluenceGraph synth_graph(double coupling) {
  InfluenceGraph g({"G1", "G2", "G3", "G4"},
                   {"a0", "a1", "b0", "b1", "c0", "c1", "d0", "d1"});
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t k = 0; k < 2; ++k) {
      const std::size_t p = 2 * r + k;
      g.add_owner(p, r);
      g.set_influence(p, r, 0.9);
    }
  }
  g.set_influence(6, 2, coupling);  // d0 -> G3
  g.set_influence(7, 2, coupling);  // d1 -> G3
  return g;
}

TEST(BuildPlan, IndependentWhenCouplingBelowCutoff) {
  PlanOptions opt;
  opt.cutoff = 0.25;
  const auto plan = build_plan(synth_graph(0.1), opt);
  ASSERT_EQ(plan.searches.size(), 4u);
  for (const auto& s : plan.searches) {
    EXPECT_EQ(s.params.size(), 2u);
    EXPECT_EQ(s.kind, SearchStageKind::RoutineGroup);
    EXPECT_EQ(s.stage, 0u);
  }
  EXPECT_TRUE(plan.untuned_params.empty());
}

TEST(BuildPlan, MergesWhenCouplingAboveCutoff) {
  PlanOptions opt;
  opt.cutoff = 0.25;
  const auto plan = build_plan(synth_graph(0.5), opt);
  ASSERT_EQ(plan.searches.size(), 3u);
  const auto* merged = find_search(plan, "G3+G4");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->params.size(), 4u);
  EXPECT_EQ(merged->objective_regions, (std::vector<std::string>{"G3", "G4"}));
}

TEST(BuildPlan, DimCapDropsLeastImportant) {
  auto g = synth_graph(0.5);
  PlanOptions opt;
  opt.cutoff = 0.25;
  opt.max_dims = 3;
  // Importance ranks d1 (idx 7) lowest within the merged group.
  opt.importance = {9, 9, 9, 9, 5, 4, 3, 1};
  const auto plan = build_plan(g, opt);
  const auto* merged = find_search(plan, "G3+G4");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->params.size(), 3u);
  ASSERT_EQ(merged->dropped_params.size(), 1u);
  EXPECT_EQ(merged->dropped_params[0], 7u);
  EXPECT_TRUE(contains(plan.untuned_params, 7u));
}

TEST(BuildPlan, SharedParamGoesToHighestInfluenceOwner) {
  // One param owned by both routines; influence higher on B.
  InfluenceGraph g({"A", "B"}, {"shared", "a_own", "b_own"});
  g.add_owner(0, 0);
  g.add_owner(0, 1);
  g.add_owner(1, 0);
  g.add_owner(2, 1);
  g.set_influence(0, 0, 0.1);
  g.set_influence(0, 1, 0.6);
  g.set_influence(1, 0, 0.5);
  g.set_influence(2, 1, 0.5);
  PlanOptions opt;
  opt.cutoff = 0.25;
  const auto plan = build_plan(g, opt);
  const auto* a = find_search(plan, "A");
  const auto* b = find_search(plan, "B");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(contains(a->params, 0u));
  EXPECT_TRUE(contains(b->params, 0u));
}

/// Graph with an outer region and globals of each classification.
InfluenceGraph global_graph() {
  InfluenceGraph g({"R1", "R2", "Outer"},
                   {"r1p", "r2p", "multi", "single", "outer_only", "inert"});
  g.add_owner(0, 0);
  g.add_owner(1, 1);
  g.set_influence(0, 0, 0.8);
  g.set_influence(1, 1, 0.8);
  g.set_influence(2, 0, 0.4);  // multi-component global
  g.set_influence(2, 1, 0.4);
  g.set_influence(3, 1, 0.5);  // single-component global
  g.set_influence(4, 2, 0.9);  // outer-only global
  // param 5 influences nothing above the cutoff
  g.set_influence(5, 0, 0.01);
  return g;
}

TEST(BuildPlan, GlobalsClassified) {
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {2};
  const auto plan = build_plan(global_graph(), opt);

  const auto* shared = find_search(plan, "SharedGlobals");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->kind, SearchStageKind::SharedGlobal);
  EXPECT_EQ(shared->stage, 0u);
  EXPECT_EQ(shared->params, (std::vector<std::size_t>{2}));
  EXPECT_EQ(shared->objective_regions, (std::vector<std::string>{"Outer"}));

  const auto* structure = find_search(plan, "Structure");
  ASSERT_NE(structure, nullptr);
  EXPECT_EQ(structure->kind, SearchStageKind::Structure);
  EXPECT_EQ(structure->stage, 1u);
  EXPECT_EQ(structure->params, (std::vector<std::size_t>{4}));

  const auto* r2 = find_search(plan, "R2");
  ASSERT_NE(r2, nullptr);
  EXPECT_TRUE(contains(r2->params, 3u));  // single-component global joins R2
  EXPECT_EQ(r2->stage, 2u);

  EXPECT_TRUE(contains(plan.untuned_params, 5u));
}

TEST(BuildPlan, OuterRoutineNeverMerges) {
  // A routine-owned param influencing the outer region must not merge them.
  InfluenceGraph g({"R1", "Outer"}, {"p"});
  g.add_owner(0, 0);
  g.set_influence(0, 0, 0.9);
  g.set_influence(0, 1, 0.9);  // strongly influences the outer region
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {1};
  const auto plan = build_plan(g, opt);
  ASSERT_EQ(plan.searches.size(), 1u);
  EXPECT_EQ(plan.searches[0].name, "R1");
  EXPECT_EQ(plan.searches[0].routines, (std::vector<std::size_t>{0}));
}

TEST(BuildPlan, BoundGroupPullsMembersTogether) {
  auto g = global_graph();
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {2};
  // Bind the outer-only global with the inert param: the inert one must be
  // pulled into the structure search instead of staying untuned.
  opt.bound_groups = {{"MPI Grid", {4, 5}}};
  const auto plan = build_plan(g, opt);
  const auto* structure = find_search(plan, "MPI Grid");
  ASSERT_NE(structure, nullptr);
  EXPECT_TRUE(contains(structure->params, 4u));
  EXPECT_TRUE(contains(structure->params, 5u));
  EXPECT_FALSE(contains(plan.untuned_params, 5u));
}

TEST(BuildPlan, BoundGroupNameAppliesToSharedSearch) {
  InfluenceGraph g({"R1", "R2", "Outer"}, {"r1p", "r2p", "ga", "gb"});
  g.add_owner(0, 0);
  g.add_owner(1, 1);
  g.set_influence(0, 0, 0.8);
  g.set_influence(1, 1, 0.8);
  g.set_influence(2, 0, 0.5);
  g.set_influence(2, 1, 0.5);
  g.set_influence(3, 0, 0.5);
  g.set_influence(3, 1, 0.5);
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {2};
  opt.bound_groups = {{"Iterations", {2, 3}}};
  const auto plan = build_plan(g, opt);
  EXPECT_NE(find_search(plan, "Iterations"), nullptr);
}

TEST(BuildPlan, StagesAndAccessors) {
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {2};
  const auto plan = build_plan(global_graph(), opt);
  EXPECT_EQ(plan.n_stages(), 3u);
  EXPECT_EQ(plan.stage_searches(0).size(), 1u);
  EXPECT_EQ(plan.stage_searches(1).size(), 1u);
  EXPECT_EQ(plan.stage_searches(2).size(), 2u);
  EXPECT_TRUE(plan.stage_searches(9).empty());
}

TEST(BuildPlan, DescribeMentionsSearchesAndUntuned) {
  PlanOptions opt;
  opt.cutoff = 0.10;
  opt.outer_routines = {2};
  const auto g = global_graph();
  const auto plan = build_plan(g, opt);
  const std::string desc = plan.describe(g);
  EXPECT_NE(desc.find("SharedGlobals"), std::string::npos);
  EXPECT_NE(desc.find("untuned"), std::string::npos);
  EXPECT_NE(desc.find("inert"), std::string::npos);
}

TEST(BuildPlan, ImportanceArityValidated) {
  PlanOptions opt;
  opt.cutoff = 0.25;
  opt.importance = {1.0};  // wrong arity
  EXPECT_THROW(build_plan(synth_graph(0.5), opt), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::graph
