// Unit tests for the deterministic fault-injection seams: CRC32C (the
// journal's record framing checksum), FaultIo (scripted hostile disks), and
// ScriptedFaultNet (scripted hostile networks). These are the primitives the
// durability and chaos suites build on, so their semantics are pinned here
// in isolation.

#include "common/crc32c.hpp"
#include "common/io.hpp"
#include "net/deadline.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

namespace tunekit {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

// --- CRC32C ---

TEST(Crc32c, MatchesKnownVectors) {
  // The canonical Castagnoli check vector.
  EXPECT_EQ(common::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(common::crc32c(""), 0u);
  // 32 zero bytes — a classic table-error catcher.
  const std::string zeros(32, '\0');
  EXPECT_EQ(common::crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  const std::string payload = "{\"e\":\"tell\",\"id\":7,\"value\":1.5}";
  const std::uint32_t good = common::crc32c(payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string damaged = payload;
    damaged[i] ^= 0x01;
    EXPECT_NE(common::crc32c(damaged), good) << "flip at byte " << i;
  }
}

TEST(Crc32c, HexIsFixedWidthLowercase) {
  EXPECT_EQ(common::crc32c_hex("123456789"), "e3069283");
  // Zero-padding: the empty string's CRC is 0.
  EXPECT_EQ(common::crc32c_hex(""), "00000000");
  EXPECT_EQ(common::crc32c_hex("").size(), 8u);
}

// --- FaultIo ---

TEST(FaultIo, EnospcRejectsTheWholeWriteOnceTheDiskFills) {
  const std::string path = temp_path("tunekit_faultio_enospc.bin");
  common::FaultScript script;
  script.enospc_after_bytes = 150;
  common::FaultIo io(script);

  std::FILE* f = io.open(path, "wb");
  ASSERT_NE(f, nullptr);
  const std::string chunk(100, 'x');
  EXPECT_EQ(io.write(f, chunk.data(), chunk.size()), chunk.size());
  // 100 + 100 > 150: the write is rejected whole (no partial record lands).
  errno = 0;
  EXPECT_EQ(io.write(f, chunk.data(), chunk.size()), 0u);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(io.faults_injected(), 1u);
  EXPECT_EQ(io.bytes_written(), 100u);
  io.close(f);
  std::filesystem::remove(path);
}

TEST(FaultIo, ShortWriteAcceptsHalf) {
  const std::string path = temp_path("tunekit_faultio_short.bin");
  common::FaultScript script;
  script.short_write_at = 2;
  common::FaultIo io(script);

  std::FILE* f = io.open(path, "wb");
  ASSERT_NE(f, nullptr);
  const std::string chunk(10, 'a');
  EXPECT_EQ(io.write(f, chunk.data(), chunk.size()), 10u);
  EXPECT_EQ(io.write(f, chunk.data(), chunk.size()), 5u) << "interrupted write";
  EXPECT_EQ(io.write(f, chunk.data(), chunk.size()), 10u);
  EXPECT_EQ(io.faults_injected(), 1u);
  io.close(f);
  std::filesystem::remove(path);
}

TEST(FaultIo, FsyncEioFiresOnceThenFalselySucceeds) {
  const std::string path = temp_path("tunekit_faultio_fsync.bin");
  common::FaultScript script;
  script.fail_fsync_at = 2;
  common::FaultIo io(script);

  std::FILE* f = io.open(path, "wb");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(io.fsync_file(f), 0);
  errno = 0;
  EXPECT_EQ(io.fsync_file(f), -1);
  EXPECT_EQ(errno, EIO);
  // fsyncgate: the page is gone and the error flag was consumed — a retried
  // fsync reports success without persisting anything. The caller must treat
  // the first EIO as final, which is exactly what store poisoning does.
  EXPECT_EQ(io.fsync_file(f), 0);
  EXPECT_EQ(io.faults_injected(), 1u);
  io.close(f);
  std::filesystem::remove(path);
}

TEST(FaultIo, TornWriteLandsAPrefixThenSwallowsEverything) {
  const std::string path = temp_path("tunekit_faultio_torn.bin");
  common::FaultScript script;
  script.torn_write_at = 2;
  common::FaultIo io(script);

  std::FILE* f = io.open(path, "wb");
  ASSERT_NE(f, nullptr);
  const std::string first = "first-record\n";
  const std::string second = "second-record\n";
  EXPECT_EQ(io.write(f, first.data(), first.size()), first.size());
  // The "crash": half the bytes land, but the caller is told all of them did.
  EXPECT_EQ(io.write(f, second.data(), second.size()), second.size());
  EXPECT_TRUE(io.crashed());
  // Post-crash the instance is dead: writes/flushes/fsyncs all silently
  // succeed without touching the file — what a powered-off disk would do.
  EXPECT_EQ(io.write(f, first.data(), first.size()), first.size());
  EXPECT_EQ(io.flush(f), 0);
  EXPECT_EQ(io.fsync_file(f), 0);
  io.close(f);

  const std::string on_disk = slurp(path);
  EXPECT_EQ(on_disk, first + second.substr(0, second.size() / 2))
      << "exactly the pre-crash bytes plus the torn prefix must be on disk";
  std::filesystem::remove(path);
}

TEST(FaultIo, RenameFailsAtScriptedIndex) {
  const std::string from = temp_path("tunekit_faultio_rename_a.bin");
  const std::string to = temp_path("tunekit_faultio_rename_b.bin");
  { std::ofstream(from) << "x"; }
  common::FaultScript script;
  script.rename_fail_at = 1;
  common::FaultIo io(script);

  std::error_code ec;
  EXPECT_FALSE(io.rename(from, to, ec));
  EXPECT_TRUE(ec);
  EXPECT_EQ(io.faults_injected(), 1u);
  EXPECT_TRUE(std::filesystem::exists(from));
  // The next rename goes through.
  EXPECT_TRUE(io.rename(from, to, ec));
  EXPECT_FALSE(ec);
  EXPECT_TRUE(std::filesystem::exists(to));
  std::filesystem::remove(to);
}

TEST(FaultIo, PathFilterConfinesFaultsToMatchingFiles) {
  const std::string victim = temp_path("tunekit_faultio_victim.bin");
  const std::string bystander = temp_path("tunekit_faultio_bystander.bin");
  common::FaultScript script;
  script.enospc_after_bytes = 1;  // any write to a faulted file fails
  script.path_contains = "victim";
  common::FaultIo io(script);

  std::FILE* fv = io.open(victim, "wb");
  std::FILE* fb = io.open(bystander, "wb");
  ASSERT_NE(fv, nullptr);
  ASSERT_NE(fb, nullptr);
  const std::string chunk(16, 'z');
  errno = 0;
  EXPECT_EQ(io.write(fv, chunk.data(), chunk.size()), 0u);
  EXPECT_EQ(errno, ENOSPC);
  // The bystander file shares the FaultIo but never matches the filter:
  // this is how chaos tests poison one session out of a whole manager.
  EXPECT_EQ(io.write(fb, chunk.data(), chunk.size()), chunk.size());
  EXPECT_EQ(io.fsync_file(fb), 0);
  io.close(fv);
  io.close(fb);
  std::filesystem::remove(victim);
  std::filesystem::remove(bystander);
}

// --- ScriptedFaultNet ---

TEST(ScriptedFaultNet, FiresOnOneBasedCallIndicesPerCategory) {
  net::ScriptedFaultNet::Script script;
  script.refuse_connect_at = {2, 3};
  script.reset_write_at = {1};
  net::ScriptedFaultNet faults(script);

  EXPECT_FALSE(faults.refuse_connect("127.0.0.1", 1));
  EXPECT_TRUE(faults.refuse_connect("127.0.0.1", 1));
  EXPECT_TRUE(faults.refuse_connect("127.0.0.1", 1));
  EXPECT_FALSE(faults.refuse_connect("127.0.0.1", 1));

  EXPECT_TRUE(faults.reset_write(3));
  EXPECT_FALSE(faults.reset_write(3));
  // Categories count independently: no stall was scripted.
  EXPECT_FALSE(faults.stall_read(3));
  EXPECT_EQ(faults.faults_injected(), 3u);
}

TEST(ScriptedFaultNet, InjectedConnectRefusalReachesDialTcp) {
  net::ScriptedFaultNet::Script script;
  script.refuse_connect_at = {1};
  net::ScriptedFaultNet faults(script);
  net::set_fault_net(&faults);

  std::string error;
  const int fd = net::dial_tcp("127.0.0.1", 65535,
                               net::Deadline::after(1.0), &error);
  net::set_fault_net(nullptr);

  EXPECT_LT(fd, 0);
  EXPECT_NE(error.find("(injected)"), std::string::npos)
      << "error was: " << error;
  EXPECT_EQ(faults.faults_injected(), 1u);
}

}  // namespace
}  // namespace tunekit
