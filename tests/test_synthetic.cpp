#include "synth/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::synth {
namespace {

std::vector<double> constant_config(double v) {
  return std::vector<double>(SyntheticFunction::kDim, v);
}

class AllCases : public ::testing::TestWithParam<SynthCase> {};

TEST_P(AllCases, DeterministicEvaluation) {
  SyntheticFunction f(GetParam(), 0.01, 7);
  const auto x = constant_config(3.0);
  EXPECT_DOUBLE_EQ(f.evaluate(x), f.evaluate(x));
  const auto g1 = f.evaluate_groups(x);
  const auto g2 = f.evaluate_groups(x);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g1.groups[i], g2.groups[i]);
}

TEST_P(AllCases, TotalIsSumOfGroups) {
  SyntheticFunction f(GetParam(), 0.01, 3);
  tunekit::Rng rng(1);
  std::vector<double> x(SyntheticFunction::kDim);
  for (auto& v : x) v = rng.uniform(2.0, 15.0);
  const auto g = f.evaluate_groups(x);
  EXPECT_NEAR(f.evaluate(x), g.groups[0] + g.groups[1] + g.groups[2] + g.groups[3],
              1e-12);
}

TEST_P(AllCases, GroupsAreLogOfRaw) {
  SyntheticFunction f(GetParam(), 0.0, 0);
  const auto x = constant_config(4.0);
  const auto raw = f.raw_abs_groups(x);
  const auto g = f.evaluate_groups(x);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(g.groups[i], std::log(std::max(raw[i], 1e-12)), 1e-9);
  }
}

TEST_P(AllCases, ArityChecked) {
  SyntheticFunction f(GetParam());
  EXPECT_THROW(f.evaluate({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(f.raw_abs_groups({}), std::invalid_argument);
}

TEST_P(AllCases, Group3VariesWithOwnVariables) {
  SyntheticFunction f(GetParam(), 0.0, 0);
  auto x = constant_config(5.0);
  const double before = f.group3_raw(x);
  x[12] = 40.0;
  EXPECT_NE(f.group3_raw(x), before);
}

TEST_P(AllCases, Group1IgnoresOtherGroupsVariables) {
  SyntheticFunction f(GetParam(), 0.0, 0);
  auto x = constant_config(5.0);
  const double before = f.group1_raw(x);
  x[10] = 40.0;
  x[16] = -20.0;
  EXPECT_DOUBLE_EQ(f.group1_raw(x), before);
}

INSTANTIATE_TEST_SUITE_P(Cases, AllCases,
                         ::testing::Values(SynthCase::Case1, SynthCase::Case2,
                                           SynthCase::Case3, SynthCase::Case4,
                                           SynthCase::Case5),
                         [](const auto& info) {
                           return "Case" + std::to_string(static_cast<int>(info.param));
                         });

TEST(Synthetic, Group1ClosedFormNoNoise) {
  SyntheticFunction f(SynthCase::Case1, 0.0, 0);
  // x_i = 1 for all i: differences vanish, A_i = 10*cos(0) = 10.
  const auto x = constant_config(1.0);
  EXPECT_NEAR(f.group1_raw(x), 50.0, 1e-9);
  EXPECT_NEAR(f.group2_raw(x), 50.0, 1e-9);
}

TEST(Synthetic, Group4ClosedForm) {
  SyntheticFunction f(SynthCase::Case1, 0.0, 0);
  const auto x = constant_config(2.0);
  EXPECT_NEAR(f.group4_raw(x), 5.0 / 2.0, 1e-9);
}

TEST(Synthetic, Group3Case1ClosedForm) {
  SyntheticFunction f(SynthCase::Case1, 0.0, 0);
  // x_u = 3 (sum 15), cos(2pi*3) = 1 per v (sum 5).
  const auto x = constant_config(3.0);
  EXPECT_NEAR(f.group3_raw(x), 20.0, 1e-9);
}

TEST(Synthetic, Group3Case3ClosedForm) {
  SyntheticFunction f(SynthCase::Case3, 0.0, 0);
  const auto x = constant_config(2.0);
  // 5 * 4 + 5 * 4 = 40.
  EXPECT_NEAR(f.group3_raw(x), 40.0, 1e-9);
}

TEST(Synthetic, Group3Case4And5Powers) {
  SyntheticFunction f4(SynthCase::Case4, 0.0, 0);
  SyntheticFunction f5(SynthCase::Case5, 0.0, 0);
  const auto x = constant_config(2.0);
  // Case4 term: (2 * 2^4)^2 = 1024 per pair, 5 pairs.
  EXPECT_NEAR(f4.group3_raw(x), 5.0 * 1024.0, 1e-6);
  // Case5 term: (2 * 2^8)^2 = 262144 per pair.
  EXPECT_NEAR(f5.group3_raw(x), 5.0 * 262144.0, 1e-3);
}

TEST(Synthetic, Group4InfluenceOnGroup3OrderedByCase) {
  // Relative impact of perturbing a Group-4 variable on Group 3 must grow
  // from Case 1 to Case 5 (Table I's influence column).
  double prev = -1.0;
  for (auto c : {SynthCase::Case1, SynthCase::Case2, SynthCase::Case3, SynthCase::Case4,
                 SynthCase::Case5}) {
    SyntheticFunction f(c, 0.0, 0);
    auto x = constant_config(5.0);
    const double base = std::abs(f.group3_raw(x));
    x[17] = 10.0;  // perturb a Group-4 variable
    const double moved = std::abs(f.group3_raw(x));
    const double impact = std::abs(moved - base) / std::max(base, 1e-12);
    EXPECT_GT(impact, prev * 0.99);  // non-decreasing (cases 4->5 both huge)
    if (c != SynthCase::Case5) prev = impact;
  }
}

TEST(Synthetic, NoiseBoundedByScale) {
  SyntheticFunction noisy(SynthCase::Case2, 0.05, 1);
  SyntheticFunction clean(SynthCase::Case2, 0.0, 1);
  const auto x = constant_config(4.0);
  // Group 4 raw has 1 noise draw; difference bounded by the scale.
  EXPECT_LE(std::abs(noisy.group4_raw(x) - clean.group4_raw(x)), 0.05);
  EXPECT_GE(noisy.group4_raw(x), clean.group4_raw(x));  // noise is U(0, scale)
}

TEST(Synthetic, NoiseDiffersAcrossConfigs) {
  SyntheticFunction f(SynthCase::Case1, 0.5, 9);
  auto x = constant_config(4.0);
  auto y = constant_config(4.0);
  y[19] = 4.000001;
  // Different configs draw different noise (hash-keyed).
  EXPECT_NE(f.group4_raw(x) - 5.0 / 4.0, f.group4_raw(y) - (4.0 / 4.0 + 1.0 / 4.000001));
}

TEST(Synthetic, Group4PoleGuard) {
  SyntheticFunction f(SynthCase::Case1, 0.0, 0);
  auto x = constant_config(5.0);
  x[15] = 0.0;  // exact pole
  EXPECT_TRUE(std::isfinite(f.group4_raw(x)));
}

TEST(Synthetic, NegativeNoiseScaleRejected) {
  EXPECT_THROW(SyntheticFunction(SynthCase::Case1, -0.1), std::invalid_argument);
}

TEST(Synthetic, Labels) {
  EXPECT_STREQ(to_string(SynthCase::Case3), "Case 3");
  EXPECT_STREQ(group4_influence_label(SynthCase::Case1), "Very Low");
  EXPECT_STREQ(group4_influence_label(SynthCase::Case5), "Extremely High");
}

}  // namespace
}  // namespace tunekit::synth
