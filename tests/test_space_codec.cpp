// SearchSpace <-> JSON codec tests: every parameter kind round-trips, and
// malformed specs are rejected with a JsonError naming the offending
// parameter (this is the validation boundary for untrusted session specs).

#include "service/space_codec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tunekit::service {
namespace {

search::SearchSpace all_kinds_space() {
  search::SearchSpace s;
  s.add(search::ParamSpec::real("x", -50.0, 50.0, 0.0));
  s.add(search::ParamSpec::integer("tb", 1, 1024, 128));
  s.add(search::ParamSpec::ordinal("u", {1.0, 2.0, 4.0, 8.0}, 4.0));
  s.add(search::ParamSpec::categorical("alg", 3, 1));
  return s;
}

TEST(SpaceCodec, RoundTripsEveryKind) {
  const auto space = all_kinds_space();
  const json::Value spec = space_to_json(space);
  const auto rebuilt = space_from_json(spec);

  ASSERT_EQ(rebuilt.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& a = space.param(i);
    const auto& b = rebuilt.param(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.kind(), b.kind());
    EXPECT_DOUBLE_EQ(a.default_value(), b.default_value());
    EXPECT_EQ(a.cardinality(), b.cardinality());
  }
  EXPECT_EQ(rebuilt.defaults(), space.defaults());
  // Representability carries over: a config valid in one is valid in the
  // other (no constraints are registered on either side).
  EXPECT_TRUE(rebuilt.is_valid(space.defaults()));
}

TEST(SpaceCodec, SerializedSpecIsSelfDescribing) {
  const json::Value spec = space_to_json(all_kinds_space());
  const auto& params = spec.at("params").as_array();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].at("kind").as_string(), "real");
  EXPECT_DOUBLE_EQ(params[0].at("lo").as_number(), -50.0);
  EXPECT_EQ(params[2].at("kind").as_string(), "ordinal");
  EXPECT_EQ(params[2].at("levels").as_array().size(), 4u);
  EXPECT_EQ(params[3].at("kind").as_string(), "categorical");
  EXPECT_DOUBLE_EQ(params[3].at("n").as_number(), 3.0);
}

TEST(SpaceCodec, MalformedSpecsAreRejected) {
  const auto expect_bad = [](const std::string& text, const char* hint) {
    EXPECT_THROW(space_from_json(json::parse(text)), json::JsonError) << hint;
  };
  expect_bad("{}", "missing params");
  expect_bad("{\"params\": []}", "empty params");
  expect_bad("{\"params\": [1]}", "non-object entry");
  expect_bad("{\"params\": [{\"kind\":\"real\"}]}", "missing name");
  expect_bad("{\"params\": [{\"name\":\"x\",\"kind\":\"fuzzy\"}]}", "unknown kind");
  expect_bad("{\"params\": [{\"name\":\"x\",\"kind\":\"real\",\"lo\":1,\"hi\":0,"
             "\"default\":0}]}",
             "lo >= hi");
  expect_bad("{\"params\": [{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
             "\"default\":7}]}",
             "default outside range");
  expect_bad("{\"params\": [{\"name\":\"x\",\"kind\":\"integer\",\"lo\":0.5,"
             "\"hi\":2,\"default\":1}]}",
             "fractional integer bound");
  expect_bad("{\"params\": [{\"name\":\"u\",\"kind\":\"ordinal\","
             "\"levels\":[4,2,1],\"default\":2}]}",
             "levels not increasing");
  expect_bad("{\"params\": [{\"name\":\"a\",\"kind\":\"categorical\",\"n\":0,"
             "\"default\":0}]}",
             "zero categories");
  expect_bad("{\"params\": [{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
             "\"default\":0},{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
             "\"default\":0}]}",
             "duplicate name");
}

TEST(SpaceCodec, ErrorsNameTheOffendingParameter) {
  try {
    space_from_json(json::parse(
        "{\"params\": [{\"name\":\"tb_sm\",\"kind\":\"real\",\"lo\":1,\"hi\":0,"
        "\"default\":0}]}"));
    FAIL() << "expected JsonError";
  } catch (const json::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("tb_sm"), std::string::npos)
        << "message should say which parameter is broken: " << e.what();
  }
}

}  // namespace
}  // namespace tunekit::service
