#include "stats/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::stats {
namespace {

struct Dataset {
  linalg::Matrix x;
  std::vector<double> y;
};

/// y = 4 x0 + sin(3 x2) * 0.5, features 1 and 3 are noise.
Dataset make_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d{linalg::Matrix(n, 4), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < 4; ++f) d.x(i, f) = rng.uniform();
    d.y[i] = 4.0 * d.x(i, 0) + 0.5 * std::sin(3.0 * d.x(i, 2));
  }
  return d;
}

TEST(RandomForest, FitsSignalWithGoodR2) {
  const auto train = make_dataset(400, 1);
  const auto test = make_dataset(100, 2);
  ForestOptions opt;
  opt.n_trees = 60;
  RandomForest forest(opt);
  forest.fit(train.x, train.y);
  EXPECT_GT(forest.score(test.x, test.y), 0.8);
}

TEST(RandomForest, ImpurityImportanceRanksInformativeFeatures) {
  const auto train = make_dataset(400, 3);
  ForestOptions opt;
  opt.n_trees = 60;
  RandomForest forest(opt);
  forest.fit(train.x, train.y);
  const auto imp = forest.impurity_importance();
  ASSERT_EQ(imp.size(), 4u);
  // Feature 0 dominates; noise features 1 and 3 rank lowest.
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[2], imp[1]);
  // Normalized to 1.
  EXPECT_NEAR(imp[0] + imp[1] + imp[2] + imp[3], 1.0, 1e-9);
}

TEST(RandomForest, PermutationImportanceAgreesOnTopFeature) {
  const auto train = make_dataset(250, 4);
  ForestOptions opt;
  opt.n_trees = 40;
  RandomForest forest(opt);
  forest.fit(train.x, train.y);
  const auto imp = forest.permutation_importance(train.x, train.y, 3);
  ASSERT_EQ(imp.size(), 4u);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[3]);
}

TEST(RandomForest, DeterministicPerSeed) {
  const auto train = make_dataset(100, 5);
  ForestOptions opt;
  opt.n_trees = 10;
  opt.seed = 99;
  RandomForest f1(opt), f2(opt);
  f1.fit(train.x, train.y);
  f2.fit(train.x, train.y);
  EXPECT_DOUBLE_EQ(f1.predict({0.5, 0.5, 0.5, 0.5}), f2.predict({0.5, 0.5, 0.5, 0.5}));
}

TEST(RandomForest, AveragingSmoothsPredictions) {
  const auto train = make_dataset(200, 6);
  ForestOptions small;
  small.n_trees = 1;
  ForestOptions big;
  big.n_trees = 80;
  RandomForest f_small(small), f_big(big);
  f_small.fit(train.x, train.y);
  f_big.fit(train.x, train.y);
  const auto test = make_dataset(100, 7);
  EXPECT_GE(f_big.score(test.x, test.y), f_small.score(test.x, test.y) - 0.05);
}

TEST(RandomForest, BootstrapFractionControlsTreeData) {
  const auto train = make_dataset(100, 8);
  ForestOptions opt;
  opt.n_trees = 5;
  opt.bootstrap_fraction = 0.2;
  RandomForest forest(opt);
  EXPECT_NO_THROW(forest.fit(train.x, train.y));
  EXPECT_EQ(forest.n_trees(), 5u);
}

TEST(RandomForest, InputValidation) {
  RandomForest forest;
  EXPECT_THROW(forest.fit(linalg::Matrix(0, 2), {}), std::invalid_argument);
  EXPECT_THROW(forest.predict({0.0}), std::runtime_error);
  EXPECT_THROW(forest.impurity_importance(), std::runtime_error);
  const auto train = make_dataset(30, 9);
  forest.fit(train.x, train.y);
  EXPECT_THROW(forest.permutation_importance(linalg::Matrix(1, 4), {1.0}, 2),
               std::invalid_argument);
}

TEST(RandomForest, MaxFeaturesOptionRespected) {
  const auto train = make_dataset(150, 10);
  ForestOptions opt;
  opt.n_trees = 20;
  opt.max_features = 1;  // heavy feature subsampling still learns something
  RandomForest forest(opt);
  forest.fit(train.x, train.y);
  EXPECT_GT(forest.score(train.x, train.y), 0.5);
}

}  // namespace
}  // namespace tunekit::stats
