#include "bo/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::bo {
namespace {

linalg::Matrix grid_1d(std::size_t n) {
  linalg::Matrix x(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return x;
}

TEST(GaussianProcess, InterpolatesTrainingDataWithLowNoise) {
  const auto x = grid_1d(8);
  std::vector<double> y(8);
  for (std::size_t i = 0; i < 8; ++i) y[i] = std::sin(6.0 * x(i, 0));

  GaussianProcess gp(KernelKind::Matern52);
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.2, 1.0, 1e-8));
  gp.fit(x, y);

  for (std::size_t i = 0; i < 8; ++i) {
    const auto p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.stddev(), 0.05);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  const auto x = grid_1d(5);
  std::vector<double> y{0.0, 0.5, 1.0, 0.5, 0.0};
  GaussianProcess gp;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.1, 1.0, 1e-6));
  gp.fit(x, y);

  const auto at_data = gp.predict({0.5});
  const auto off_data = gp.predict({0.625});
  EXPECT_GT(off_data.variance, at_data.variance);
}

TEST(GaussianProcess, PredictionInterpolatesSmoothly) {
  // Between two equal training values, the mean stays near that value.
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.3;
  x(1, 0) = 0.7;
  GaussianProcess gp;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.5, 1.0, 1e-8));
  gp.fit(x, {2.0, 2.0});
  EXPECT_NEAR(gp.predict({0.5}).mean, 2.0, 0.05);
}

TEST(GaussianProcess, HandlesConstantTargets) {
  const auto x = grid_1d(5);
  GaussianProcess gp;
  EXPECT_NO_THROW(gp.fit(x, std::vector<double>(5, 3.0)));
  EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 1e-6);
}

TEST(GaussianProcess, HyperoptImprovesLikelihood) {
  tunekit::Rng rng(4);
  const std::size_t n = 25;
  linalg::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(8.0 * x(i, 0)) + 0.05 * rng.normal();
  }

  GaussianProcess fixed;
  fixed.set_hyperparams(GpHyperparams::isotropic(1, 1e2, 1.0, 0.5));  // bad guess
  fixed.fit(x, y);
  const double lml_fixed = fixed.log_marginal_likelihood();

  GaussianProcess tuned;
  tuned.set_hyperparams(GpHyperparams::isotropic(1, 1e2, 1.0, 0.5));
  tunekit::Rng hrng(5);
  tuned.fit_with_hyperopt(x, y, hrng, 3);
  EXPECT_GT(tuned.log_marginal_likelihood(), lml_fixed);
}

TEST(GaussianProcess, HyperoptKeepsLengthscalesInBounds) {
  tunekit::Rng rng(6);
  linalg::Matrix x(10, 2);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = x(i, 0);
  }
  GaussianProcess gp;
  tunekit::Rng hrng(7);
  gp.fit_with_hyperopt(x, y, hrng, 2);
  for (double ls : gp.hyperparams().lengthscales) {
    EXPECT_GE(ls, 1e-2 * 0.99);
    EXPECT_LE(ls, 1e2 * 1.01);
  }
  EXPECT_GT(gp.hyperparams().noise_variance, 0.0);
}

TEST(GaussianProcess, PriorMeanShiftsPrediction) {
  // Far from data, prediction reverts to the prior mean, not zero.
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 0.05;
  GaussianProcess gp;
  gp.set_prior_mean([](const std::vector<double>& u) { return 10.0 + u[0]; });
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.05, 1.0, 1e-6));
  gp.fit(x, {10.0, 10.05});  // data agrees with the prior
  const auto far = gp.predict({1.0});
  EXPECT_NEAR(far.mean, 11.0, 0.2);
}

TEST(GaussianProcess, PredictBeforeFitThrows) {
  GaussianProcess gp;
  EXPECT_THROW(gp.predict({0.5}), std::runtime_error);
}

TEST(GaussianProcess, InputValidation) {
  GaussianProcess gp;
  EXPECT_THROW(gp.fit(linalg::Matrix(0, 1), {}), std::invalid_argument);
  EXPECT_THROW(gp.fit(grid_1d(3), {1.0, 2.0}), std::invalid_argument);
  gp.fit(grid_1d(3), {1.0, 2.0, 3.0});
  EXPECT_THROW(gp.predict({0.1, 0.2}), std::invalid_argument);
}

TEST(GaussianProcess, AccessorsReportState) {
  GaussianProcess gp(KernelKind::RBF);
  EXPECT_EQ(gp.kernel_kind(), KernelKind::RBF);
  EXPECT_FALSE(gp.fitted());
  gp.fit(grid_1d(4), {1, 2, 3, 4});
  EXPECT_TRUE(gp.fitted());
  EXPECT_EQ(gp.n_points(), 4u);
  EXPECT_EQ(gp.dim(), 1u);
}

TEST(GaussianProcess, VarianceNeverNegative) {
  const auto x = grid_1d(6);
  GaussianProcess gp;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.15, 1.0, 1e-9));
  gp.fit(x, {0, 1, 0, 1, 0, 1});
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    EXPECT_GE(gp.predict({t}).variance, 0.0);
  }
}

TEST(GaussianProcess, RankDeficientGramFitsViaJitterEscalation) {
  // Duplicate training rows with (numerically) zero noise make the Gram
  // matrix exactly singular — the degenerate case a tuning session produces
  // when a retried configuration is recorded more than once. The fit must
  // survive via the jitter ladder instead of throwing, report the jitter it
  // needed, and still predict finite values.
  linalg::Matrix x(6, 1);
  x(0, 0) = 0.1; x(1, 0) = 0.1; x(2, 0) = 0.1;  // triple duplicate
  x(3, 0) = 0.5; x(4, 0) = 0.5;                 // double duplicate
  x(5, 0) = 0.9;
  const std::vector<double> y{1.0, 1.0, 1.0, 2.0, 2.0, 3.0};

  GaussianProcess gp;
  gp.set_hyperparams(GpHyperparams::isotropic(1, 0.3, 1.0, 0.0));
  ASSERT_NO_THROW(gp.fit(x, y));
  EXPECT_GT(gp.last_jitter(), 0.0) << "singular Gram factored without jitter?";
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
  for (double q : {0.1, 0.5, 0.9, 0.3}) {
    const auto p = gp.predict({q});
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
    EXPECT_GE(p.variance, 0.0);
  }
  // A clean, well-separated fit needs no jitter and says so.
  GaussianProcess clean;
  clean.set_hyperparams(GpHyperparams::isotropic(1, 0.3, 1.0, 1e-4));
  clean.fit(grid_1d(6), std::vector<double>{0., 1., 2., 3., 4., 5.});
  EXPECT_EQ(clean.last_jitter(), 0.0);
}

}  // namespace
}  // namespace tunekit::bo
