#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "common/stopwatch.hpp"
#include "core/methodology.hpp"
#include "core/tunable_app.hpp"
#include "synth/synth_app.hpp"

namespace tunekit::core {
namespace {

/// Two-routine app with a stage-relevant global: `chunk` affects both
/// regions; each routine has one knob with a known optimum.
class StagedApp final : public TunableApp {
 public:
  StagedApp() {
    space_.add(search::ParamSpec::integer("chunk", 1, 16, 1));      // global
    space_.add(search::ParamSpec::ordinal("a", {1, 2, 4, 8}, 1));   // routine A
    space_.add(search::ParamSpec::ordinal("b", {1, 2, 4, 8}, 1));   // routine B
  }

  const search::SearchSpace& space() const override { return space_; }

  std::vector<RoutineSpec> routines() const override {
    return {{"A", {1}}, {"B", {2}}};
  }

  std::vector<std::string> outer_regions() const override { return {"Outer"}; }

  search::RegionTimes evaluate_regions(const search::Config& c) override {
    const double chunk_penalty = 1.0 + 8.0 / c[0];
    const double ta = (1.0 + std::abs(std::log2(c[1] / 4.0))) * chunk_penalty;
    const double tb = (1.0 + std::abs(std::log2(c[2] / 2.0))) * chunk_penalty;
    search::RegionTimes t;
    t.regions["A"] = ta;
    t.regions["B"] = tb;
    t.regions["Outer"] = ta + tb + 0.5 * chunk_penalty;
    t.total = t.regions["Outer"];
    return t;
  }

  bool thread_safe() const override { return true; }

 private:
  search::SearchSpace space_;
};

graph::SearchPlan plan_for(StagedApp& app) {
  MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  return m.make_plan(app, analysis);
}

TEST(PlanExecutor, BudgetRule) {
  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 20;
  PlanExecutor exec(opt);
  EXPECT_EQ(exec.budget_for(1), 20u);   // min applies
  EXPECT_EQ(exec.budget_for(5), 50u);   // 10 x dims
  EXPECT_EQ(exec.budget_for(10), 100u); // the paper's 10 x num_parameters
}

TEST(PlanExecutor, ExecutesStagedPlanAndImproves) {
  StagedApp app;
  const auto plan = plan_for(app);
  ASSERT_GE(plan.searches.size(), 3u);  // chunk (stage 0), A, B

  ExecutorOptions opt;
  opt.evals_per_param = 8;
  opt.min_evals = 8;
  opt.bo.seed = 3;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);

  const double baseline = app.evaluate_regions(app.space().defaults()).total;
  EXPECT_LT(result.final_times.total, baseline);
  EXPECT_TRUE(app.space().is_valid(result.final_config));
  EXPECT_EQ(result.outcomes.size(), plan.searches.size());
  EXPECT_GT(result.total_evaluations, 0u);

  // The tuned config should land near the known optima.
  EXPECT_GE(result.final_config[0], 8.0);   // chunk as large as possible
  EXPECT_DOUBLE_EQ(result.final_config[1], 4.0);  // a* = 4
  EXPECT_DOUBLE_EQ(result.final_config[2], 2.0);  // b* = 2
}

TEST(PlanExecutor, SmallDiscreteSearchesAreEnumerated) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 20;
  opt.enumerate_threshold = 1.0;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);
  // Routine searches over 4 levels are cheaper to enumerate than to model.
  std::size_t enumerated = 0;
  for (const auto& o : result.outcomes) {
    if (o.result.method == "enumerate") ++enumerated;
  }
  EXPECT_GE(enumerated, 2u);
}

TEST(PlanExecutor, StageZeroResultFeedsLaterStages) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 8;
  opt.min_evals = 8;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);

  // The global search ran first and its tuned value is in the final config.
  const auto& first = result.outcomes.front();
  EXPECT_EQ(first.planned.stage, 0u);
  ASSERT_TRUE(first.tuned_values.count("chunk"));
  EXPECT_DOUBLE_EQ(result.final_config[0], first.tuned_values.at("chunk"));
}

TEST(PlanExecutor, ParallelStageMatchesSequential) {
  StagedApp app_seq, app_par;
  const auto plan = plan_for(app_seq);

  ExecutorOptions seq;
  seq.evals_per_param = 6;
  seq.min_evals = 6;
  seq.n_threads = 1;
  seq.bo.seed = 9;
  ExecutorOptions par = seq;
  par.n_threads = 4;

  const auto r_seq = PlanExecutor(seq).execute(app_seq, plan);
  const auto r_par = PlanExecutor(par).execute(app_par, plan);
  EXPECT_EQ(r_seq.final_config, r_par.final_config);
}

TEST(PlanExecutor, TotalBudgetTruncatesAndSkips) {
  StagedApp app;
  const auto plan = plan_for(app);
  ASSERT_GE(plan.searches.size(), 3u);

  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 10;
  opt.max_total_evals = 12;  // enough for one search plus a stub
  opt.enumerate_threshold = 1.0;
  const auto result = PlanExecutor(opt).execute(app, plan);

  // Total evaluations respect the cap (+1 for the final verification run).
  EXPECT_LE(result.total_evaluations, 13u);
  // At least one later search was skipped outright.
  std::size_t skipped = 0;
  for (const auto& o : result.outcomes) {
    if (o.result.method == "skipped") ++skipped;
  }
  EXPECT_GE(skipped, 1u);
  // The final configuration is still valid and evaluable.
  EXPECT_TRUE(app.space().is_valid(result.final_config));
}

TEST(PlanExecutor, UnlimitedBudgetRunsEverySearch) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 5;
  opt.min_evals = 5;
  opt.max_total_evals = 0;  // unlimited
  const auto result = PlanExecutor(opt).execute(app, plan);
  for (const auto& o : result.outcomes) {
    EXPECT_NE(o.result.method, "skipped");
    EXPECT_GT(o.result.evaluations, 0u);
  }
}

/// Wraps another app, adding a fixed sleep per region evaluation — turns the
/// instant synthetic model into an "expensive" objective so intra-search
/// parallelism has something to win.
class SlowApp final : public TunableApp {
 public:
  SlowApp(TunableApp& inner, double sleep_ms) : inner_(inner), sleep_ms_(sleep_ms) {}

  const search::SearchSpace& space() const override { return inner_.space(); }
  std::vector<RoutineSpec> routines() const override { return inner_.routines(); }
  std::vector<std::string> outer_regions() const override {
    return inner_.outer_regions();
  }
  search::Config baseline() const override { return inner_.baseline(); }
  bool thread_safe() const override { return inner_.thread_safe(); }

  search::RegionTimes evaluate_regions(const search::Config& c) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(sleep_ms_ * 1000.0)));
    return inner_.evaluate_regions(c);
  }

 private:
  TunableApp& inner_;
  double sleep_ms_;
};

TEST(PlanExecutor, SessionSchedulerProducesValidPlanResult) {
  StagedApp app;
  const auto plan = plan_for(app);

  ExecutorOptions opt;
  opt.evals_per_param = 8;
  opt.min_evals = 8;
  opt.bo.seed = 3;
  opt.session_scheduler = true;
  opt.n_threads = 4;
  const auto result = PlanExecutor(opt).execute(app, plan);

  EXPECT_TRUE(app.space().is_valid(result.final_config));
  EXPECT_EQ(result.outcomes.size(), plan.searches.size());
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.result.method.rfind("session-", 0) == 0) << o.result.method;
    EXPECT_GT(o.result.evaluations, 0u);
  }
  const double baseline = app.evaluate_regions(app.space().defaults()).total;
  EXPECT_LT(result.final_times.total, baseline);
}

TEST(PlanExecutor, SessionSchedulerBeatsSequentialOnSlowApp) {
  StagedApp inner_seq, inner_par;
  const auto plan = plan_for(inner_seq);
  const double sleep_ms = 5.0;

  ExecutorOptions base;
  base.evals_per_param = 8;
  base.min_evals = 8;
  base.bo.seed = 3;
  base.enumerate_threshold = 0.0;  // force BO so budgets match exactly

  ExecutorOptions seq = base;  // blocking BayesOpt::run path
  ExecutorOptions par = base;
  par.session_scheduler = true;
  par.n_threads = 8;

  SlowApp slow_seq(inner_seq, sleep_ms);
  SlowApp slow_par(inner_par, sleep_ms);

  Stopwatch w_seq;
  const auto r_seq = PlanExecutor(seq).execute(slow_seq, plan);
  const double t_seq = w_seq.seconds();

  Stopwatch w_par;
  const auto r_par = PlanExecutor(par).execute(slow_par, plan);
  const double t_par = w_par.seconds();

  // Equal budget, measurably less wall-clock with batched evaluation.
  EXPECT_EQ(r_par.total_evaluations, r_seq.total_evaluations);
  EXPECT_LT(t_par, t_seq);
  EXPECT_TRUE(slow_par.space().is_valid(r_par.final_config));
}

TEST(PlanExecutor, SessionSchedulerCase3EightThreads) {
  // The acceptance scenario: synth:case3 through the scheduler on 8 threads
  // vs the sequential path at equal budget. Synthetic evaluations are
  // instant, so a fixed per-evaluation sleep stands in for a real measured
  // kernel and makes the wall-clock difference observable.
  synth::SynthApp inner_seq(synth::SynthCase::Case3, 0.01, 11);
  synth::SynthApp inner_par(synth::SynthCase::Case3, 0.01, 11);

  MethodologyOptions mopt;
  mopt.cutoff = 0.25;
  mopt.sensitivity.n_variations = 30;
  mopt.importance_samples = 0;
  Methodology m(mopt);
  const auto plan = m.make_plan(inner_seq, m.analyze(inner_seq));
  ASSERT_FALSE(plan.searches.empty());

  ExecutorOptions base;
  base.evals_per_param = 4;
  base.min_evals = 4;
  base.bo.seed = 11;
  base.enumerate_threshold = 0.0;  // same backend both paths: equal budget
  ExecutorOptions par = base;
  par.session_scheduler = true;
  par.n_threads = 8;

  SlowApp slow_seq(inner_seq, 4.0);
  SlowApp slow_par(inner_par, 4.0);

  Stopwatch w_seq;
  const auto r_seq = PlanExecutor(base).execute(slow_seq, plan);
  const double t_seq = w_seq.seconds();
  Stopwatch w_par;
  const auto r_par = PlanExecutor(par).execute(slow_par, plan);
  const double t_par = w_par.seconds();

  EXPECT_EQ(r_par.total_evaluations, r_seq.total_evaluations);
  EXPECT_EQ(r_par.outcomes.size(), plan.searches.size());
  EXPECT_TRUE(inner_par.space().is_valid(r_par.final_config));
  EXPECT_LT(t_par, t_seq);
}

TEST(PlanExecutor, SessionSchedulerJournalsAndResumes) {
  StagedApp app;
  const auto plan = plan_for(app);
  const auto dir = std::filesystem::temp_directory_path() / "tunekit_exec_journals";
  std::filesystem::remove_all(dir);

  ExecutorOptions opt;
  opt.evals_per_param = 6;
  opt.min_evals = 6;
  opt.session_scheduler = true;
  opt.n_threads = 2;
  opt.checkpoint_dir = dir.string();
  const auto first = PlanExecutor(opt).execute(app, plan);
  EXPECT_TRUE(app.space().is_valid(first.final_config));

  // One journal per search was written.
  std::size_t journals = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().string().ends_with(".journal.jsonl")) ++journals;
  }
  EXPECT_EQ(journals, plan.searches.size());

  // A rerun with resume picks the finished journals up and still produces a
  // valid result (every search is already exhausted, so no new evals).
  opt.bo.resume = true;
  const auto second = PlanExecutor(opt).execute(app, plan);
  EXPECT_TRUE(app.space().is_valid(second.final_config));

  std::filesystem::remove_all(dir);
}

TEST(PlanExecutor, TunedValuesNamedCorrectly) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 5;
  opt.min_evals = 5;
  const auto result = PlanExecutor(opt).execute(app, plan);
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.tuned_values.size(), o.planned.params.size());
    for (std::size_t p : o.planned.params) {
      EXPECT_TRUE(o.tuned_values.count(app.space().param(p).name()));
    }
  }
}

}  // namespace
}  // namespace tunekit::core
