#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/methodology.hpp"
#include "core/tunable_app.hpp"

namespace tunekit::core {
namespace {

/// Two-routine app with a stage-relevant global: `chunk` affects both
/// regions; each routine has one knob with a known optimum.
class StagedApp final : public TunableApp {
 public:
  StagedApp() {
    space_.add(search::ParamSpec::integer("chunk", 1, 16, 1));      // global
    space_.add(search::ParamSpec::ordinal("a", {1, 2, 4, 8}, 1));   // routine A
    space_.add(search::ParamSpec::ordinal("b", {1, 2, 4, 8}, 1));   // routine B
  }

  const search::SearchSpace& space() const override { return space_; }

  std::vector<RoutineSpec> routines() const override {
    return {{"A", {1}}, {"B", {2}}};
  }

  std::vector<std::string> outer_regions() const override { return {"Outer"}; }

  search::RegionTimes evaluate_regions(const search::Config& c) override {
    const double chunk_penalty = 1.0 + 8.0 / c[0];
    const double ta = (1.0 + std::abs(std::log2(c[1] / 4.0))) * chunk_penalty;
    const double tb = (1.0 + std::abs(std::log2(c[2] / 2.0))) * chunk_penalty;
    search::RegionTimes t;
    t.regions["A"] = ta;
    t.regions["B"] = tb;
    t.regions["Outer"] = ta + tb + 0.5 * chunk_penalty;
    t.total = t.regions["Outer"];
    return t;
  }

  bool thread_safe() const override { return true; }

 private:
  search::SearchSpace space_;
};

graph::SearchPlan plan_for(StagedApp& app) {
  MethodologyOptions opt;
  opt.cutoff = 0.10;
  opt.importance_samples = 0;
  Methodology m(opt);
  const auto analysis = m.analyze(app);
  return m.make_plan(app, analysis);
}

TEST(PlanExecutor, BudgetRule) {
  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 20;
  PlanExecutor exec(opt);
  EXPECT_EQ(exec.budget_for(1), 20u);   // min applies
  EXPECT_EQ(exec.budget_for(5), 50u);   // 10 x dims
  EXPECT_EQ(exec.budget_for(10), 100u); // the paper's 10 x num_parameters
}

TEST(PlanExecutor, ExecutesStagedPlanAndImproves) {
  StagedApp app;
  const auto plan = plan_for(app);
  ASSERT_GE(plan.searches.size(), 3u);  // chunk (stage 0), A, B

  ExecutorOptions opt;
  opt.evals_per_param = 8;
  opt.min_evals = 8;
  opt.bo.seed = 3;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);

  const double baseline = app.evaluate_regions(app.space().defaults()).total;
  EXPECT_LT(result.final_times.total, baseline);
  EXPECT_TRUE(app.space().is_valid(result.final_config));
  EXPECT_EQ(result.outcomes.size(), plan.searches.size());
  EXPECT_GT(result.total_evaluations, 0u);

  // The tuned config should land near the known optima.
  EXPECT_GE(result.final_config[0], 8.0);   // chunk as large as possible
  EXPECT_DOUBLE_EQ(result.final_config[1], 4.0);  // a* = 4
  EXPECT_DOUBLE_EQ(result.final_config[2], 2.0);  // b* = 2
}

TEST(PlanExecutor, SmallDiscreteSearchesAreEnumerated) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 20;
  opt.enumerate_threshold = 1.0;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);
  // Routine searches over 4 levels are cheaper to enumerate than to model.
  std::size_t enumerated = 0;
  for (const auto& o : result.outcomes) {
    if (o.result.method == "enumerate") ++enumerated;
  }
  EXPECT_GE(enumerated, 2u);
}

TEST(PlanExecutor, StageZeroResultFeedsLaterStages) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 8;
  opt.min_evals = 8;
  PlanExecutor exec(opt);
  const auto result = exec.execute(app, plan);

  // The global search ran first and its tuned value is in the final config.
  const auto& first = result.outcomes.front();
  EXPECT_EQ(first.planned.stage, 0u);
  ASSERT_TRUE(first.tuned_values.count("chunk"));
  EXPECT_DOUBLE_EQ(result.final_config[0], first.tuned_values.at("chunk"));
}

TEST(PlanExecutor, ParallelStageMatchesSequential) {
  StagedApp app_seq, app_par;
  const auto plan = plan_for(app_seq);

  ExecutorOptions seq;
  seq.evals_per_param = 6;
  seq.min_evals = 6;
  seq.n_threads = 1;
  seq.bo.seed = 9;
  ExecutorOptions par = seq;
  par.n_threads = 4;

  const auto r_seq = PlanExecutor(seq).execute(app_seq, plan);
  const auto r_par = PlanExecutor(par).execute(app_par, plan);
  EXPECT_EQ(r_seq.final_config, r_par.final_config);
}

TEST(PlanExecutor, TotalBudgetTruncatesAndSkips) {
  StagedApp app;
  const auto plan = plan_for(app);
  ASSERT_GE(plan.searches.size(), 3u);

  ExecutorOptions opt;
  opt.evals_per_param = 10;
  opt.min_evals = 10;
  opt.max_total_evals = 12;  // enough for one search plus a stub
  opt.enumerate_threshold = 1.0;
  const auto result = PlanExecutor(opt).execute(app, plan);

  // Total evaluations respect the cap (+1 for the final verification run).
  EXPECT_LE(result.total_evaluations, 13u);
  // At least one later search was skipped outright.
  std::size_t skipped = 0;
  for (const auto& o : result.outcomes) {
    if (o.result.method == "skipped") ++skipped;
  }
  EXPECT_GE(skipped, 1u);
  // The final configuration is still valid and evaluable.
  EXPECT_TRUE(app.space().is_valid(result.final_config));
}

TEST(PlanExecutor, UnlimitedBudgetRunsEverySearch) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 5;
  opt.min_evals = 5;
  opt.max_total_evals = 0;  // unlimited
  const auto result = PlanExecutor(opt).execute(app, plan);
  for (const auto& o : result.outcomes) {
    EXPECT_NE(o.result.method, "skipped");
    EXPECT_GT(o.result.evaluations, 0u);
  }
}

TEST(PlanExecutor, TunedValuesNamedCorrectly) {
  StagedApp app;
  const auto plan = plan_for(app);
  ExecutorOptions opt;
  opt.evals_per_param = 5;
  opt.min_evals = 5;
  const auto result = PlanExecutor(opt).execute(app, plan);
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.tuned_values.size(), o.planned.params.size());
    for (std::size_t p : o.planned.params) {
      EXPECT_TRUE(o.tuned_values.count(app.space().param(p).name()));
    }
  }
}

}  // namespace
}  // namespace tunekit::core
