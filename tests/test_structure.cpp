// The living partition: online dependency-structure learning.
//
// Covers the four contracts of src/structure/:
//   * evidence — the affinity estimator separates genuinely coupled pairs
//     from additive ones, and the random-forest channel is bit-identical
//     regardless of fitting thread count;
//   * policy — hysteresis and cooldown gate repartitions (no thrashing,
//     no spurious re-cuts on a correctly-seeded run);
//   * adaptation — seeded with a deliberately wrong partition, the learner
//     re-cuts an AdditiveBo search mid-run and reaches the oracle
//     (static-correct) best within 1.5x its budget;
//   * durability — {"e":"struct"} journal records restore the learner
//     byte-for-byte across kill/resume, survive compaction, and legacy
//     journals without structure records still resume.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "bo/additive_bo.hpp"
#include "common/rng.hpp"
#include "service/session.hpp"
#include "service/session_store.hpp"
#include "stats/random_forest.hpp"
#include "structure/online_learner.hpp"

namespace tunekit {
namespace {

using structure::AffinityEstimator;
using structure::OnlineLearner;
using structure::OnlineLearnerOptions;
using structure::Partition;
using structure::RepartitionPolicy;
using structure::RepartitionPolicyOptions;

/// Coupled pair term with a genuine multiplicative cross term; unique
/// minimum 0 at a=0.4, b=0.6.
double pair_term(double a, double b) {
  const double u = a + b - 1.0;
  const double v = a - b + 0.2;
  return u * u + 0.5 * v * v;
}

// --- Affinity evidence -----------------------------------------------------

TEST(AffinityEstimator, SeparatesCoupledPairFromAdditiveDimensions) {
  // y couples (x0, x1); x2 and x3 contribute only additive terms.
  AffinityEstimator est(4, {});
  Rng rng(11);
  for (std::size_t r = 0; r < 80; ++r) {
    std::vector<double> u(4);
    for (auto& x : u) x = rng.uniform();
    est.observe(u, pair_term(u[0], u[1]) + (u[2] - 0.3) * (u[2] - 0.3) + 0.5 * u[3]);
  }
  est.refit();
  const auto& aff = est.affinity();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      if (i == 0 && j == 1) continue;
      EXPECT_GT(aff(0, 1), aff(i, j))
          << "pair (" << i << "," << j << ") outscored the coupled pair";
    }
  }
  EXPECT_GT(aff(0, 1), 0.3);
}

TEST(AffinityEstimator, SnapshotRoundTripsExactly) {
  AffinityEstimator est(3, {});
  Rng rng(5);
  for (std::size_t r = 0; r < 40; ++r) {
    std::vector<double> u{rng.uniform(), rng.uniform(), rng.uniform()};
    est.observe(u, pair_term(u[0], u[1]) + u[2]);
  }
  est.refit();
  const json::Value snap = est.to_json();

  AffinityEstimator restored(3, {});
  restored.restore(snap);
  EXPECT_EQ(restored.to_json().dump(), snap.dump());
  EXPECT_EQ(restored.observations(), est.observations());
}

TEST(RandomForest, ImportancesAreIdenticalAcrossThreadCounts) {
  Rng rng(21);
  linalg::Matrix x(120, 4);
  std::vector<double> y(120);
  for (std::size_t r = 0; r < 120; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.uniform();
    y[r] = 4.0 * x(r, 0) + std::sin(3.0 * x(r, 2));
  }

  stats::ForestOptions serial;
  serial.n_trees = 40;
  serial.seed = 77;
  serial.n_threads = 1;
  stats::ForestOptions parallel = serial;
  parallel.n_threads = 4;

  stats::RandomForest f1(serial), f4(parallel);
  f1.fit(x, y);
  f4.fit(x, y);
  const auto imp1 = f1.impurity_importance();
  const auto imp4 = f4.impurity_importance();
  ASSERT_EQ(imp1.size(), 4u);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_DOUBLE_EQ(imp1[f], imp4[f]) << "feature " << f;
  }
  // Regression pin: the dominant linear feature outranks everything, the
  // nonlinear one outranks both noise features, and the scores normalize.
  EXPECT_GT(imp1[0], 0.5);
  EXPECT_GT(imp1[2], imp1[1]);
  EXPECT_GT(imp1[2], imp1[3]);
  EXPECT_NEAR(imp1[0] + imp1[1] + imp1[2] + imp1[3], 1.0, 1e-9);
  // Predictions agree too — the whole forest is the same forest.
  EXPECT_DOUBLE_EQ(f1.predict({0.3, 0.7, 0.5, 0.1}), f4.predict({0.3, 0.7, 0.5, 0.1}));
}

// --- Partition utilities and the repartition policy ------------------------

TEST(PartitionUtils, NormalizeSortsBlocksAndMembers) {
  const Partition p{{5, 2}, {0, 4}, {3, 1}};
  const Partition n = structure::normalize_partition(p);
  const Partition expected{{0, 4}, {1, 3}, {2, 5}};
  EXPECT_EQ(n, expected);
}

TEST(PartitionUtils, CutMassBounds) {
  linalg::Matrix aff(3, 3);
  aff(0, 1) = aff(1, 0) = 0.8;
  aff(0, 2) = aff(2, 0) = 0.1;
  aff(1, 2) = aff(2, 1) = 0.4;
  const double total = 0.8 + 0.1 + 0.4;
  EXPECT_DOUBLE_EQ(structure::cut_mass(aff, {{0}, {1}, {2}}), total);
  EXPECT_DOUBLE_EQ(structure::cut_mass(aff, {{0, 1, 2}}), 0.0);
  EXPECT_DOUBLE_EQ(structure::cut_mass(aff, {{0, 1}, {2}}), 0.1 + 0.4);
}

TEST(RepartitionPolicy, RequiresConsecutiveConfirmations) {
  RepartitionPolicyOptions opt;
  opt.evidence_threshold = 0.1;
  opt.hysteresis = 2;
  opt.cooldown = 5;
  RepartitionPolicy policy(opt);
  const Partition proposal{{0, 1}, {2}};

  EXPECT_FALSE(policy.consider(proposal, 0.2, 10, 0));  // streak 1
  EXPECT_TRUE(policy.consider(proposal, 0.2, 11, 0));   // streak 2: adopt
  // Adoption resets the streak; the same proposal must re-confirm.
  EXPECT_FALSE(policy.consider(proposal, 0.2, 20, 11));
}

TEST(RepartitionPolicy, DifferentProposalResetsTheStreak) {
  RepartitionPolicyOptions opt;
  opt.evidence_threshold = 0.1;
  opt.hysteresis = 2;
  opt.cooldown = 0;
  RepartitionPolicy policy(opt);
  EXPECT_FALSE(policy.consider({{0, 1}, {2}}, 0.2, 1, 0));
  // A different winning cut restarts confirmation from scratch.
  EXPECT_FALSE(policy.consider({{0, 2}, {1}}, 0.2, 2, 0));
  EXPECT_TRUE(policy.consider({{0, 2}, {1}}, 0.2, 3, 0));
}

TEST(RepartitionPolicy, WeakEvidenceAndCooldownBlockAdoption) {
  RepartitionPolicyOptions opt;
  opt.evidence_threshold = 0.1;
  opt.hysteresis = 1;
  opt.cooldown = 10;
  RepartitionPolicy policy(opt);
  const Partition proposal{{0, 1}, {2}};
  // Below-threshold evidence never builds a streak.
  EXPECT_FALSE(policy.consider(proposal, 0.05, 20, 0));
  EXPECT_FALSE(policy.consider(proposal, 0.05, 21, 0));
  // Strong evidence inside the cooldown window is still held back.
  EXPECT_FALSE(policy.consider(proposal, 0.5, 25, 20));
  EXPECT_TRUE(policy.consider(proposal, 0.5, 31, 20));
}

TEST(OnlineLearner, SnapshotRoundTripsByteForByte) {
  OnlineLearnerOptions opt;
  opt.cadence = 10;
  opt.min_observations = 10;
  OnlineLearner learner(4, {{0}, {1}, {2}, {3}}, opt);
  Rng rng(9);
  for (std::size_t r = 0; r < 25; ++r) {
    std::vector<double> u{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    learner.observe(u, pair_term(u[0], u[1]) + u[2] + u[3]);
  }
  const json::Value snap = learner.snapshot();

  OnlineLearner restored(4, {{0}, {1}, {2}, {3}}, opt);
  restored.restore(snap);
  EXPECT_EQ(restored.snapshot().dump(), snap.dump());
  EXPECT_EQ(restored.observations(), learner.observations());
  EXPECT_EQ(restored.active_partition(), learner.active_partition());
}

// --- Mid-run adaptation through AdditiveBo's regroup hook ------------------

constexpr std::size_t kDims = 6;
const std::vector<std::vector<std::size_t>> kTrueBlocks{{0, 1}, {2, 3}, {4, 5}};
const std::vector<std::vector<std::size_t>> kWrongBlocks{{0, 3}, {1, 4}, {2, 5}};

search::SearchSpace unit_cube() {
  search::SearchSpace s;
  for (std::size_t i = 0; i < kDims; ++i) {
    s.add(search::ParamSpec::real("x" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return s;
}

search::FunctionObjective coupled_objective() {
  return search::FunctionObjective([](const search::Config& c) {
    return pair_term(c[0], c[1]) + pair_term(c[2], c[3]) + pair_term(c[4], c[5]);
  });
}

OnlineLearnerOptions adaptation_options() {
  OnlineLearnerOptions opt;
  opt.cadence = 10;
  opt.min_observations = 20;
  opt.affinity_threshold = 0.3;
  opt.policy.evidence_threshold = 0.15;
  opt.policy.hysteresis = 2;
  opt.policy.cooldown = 10;
  opt.affinity.forest.seed = 900 ^ 0xbeefull;
  return opt;
}

struct HookedRun {
  search::SearchResult result;
  std::size_t repartitions = 0;
};

HookedRun run_with_learner(const std::vector<std::vector<std::size_t>>& seed_blocks,
                           std::size_t budget, std::uint64_t seed) {
  auto obj = coupled_objective();
  const auto space = unit_cube();
  auto learner = std::make_shared<OnlineLearner>(kDims, seed_blocks,
                                                 adaptation_options());
  auto fed = std::make_shared<std::size_t>(0);
  bo::AdditiveBoOptions opt;
  opt.max_evals = budget;
  opt.seed = seed;
  opt.regroup_hook = [learner, fed](const std::vector<std::vector<double>>& units,
                                    const std::vector<double>& values)
      -> std::optional<std::vector<std::vector<std::size_t>>> {
    bool repartitioned = false;
    for (; *fed < values.size(); ++*fed) {
      repartitioned |= learner->observe(units[*fed], values[*fed]).repartitioned;
    }
    if (!repartitioned) return std::nullopt;
    return learner->active_partition();
  };
  HookedRun out{bo::AdditiveBo(seed_blocks, opt).run(obj, space), 0};
  out.repartitions = learner->repartitions();
  return out;
}

TEST(OnlineLearner, RecoversFromWrongPartitionWithin150PercentBudget) {
  const std::size_t budget = 60;
  const std::uint64_t seed = 900;  // mirrors bench_structure_adapt repeat 1

  // Oracle: AdditiveBo seeded with the true blocks at budget B.
  auto obj = coupled_objective();
  const auto space = unit_cube();
  bo::AdditiveBoOptions oracle_opt;
  oracle_opt.max_evals = budget;
  oracle_opt.seed = seed;
  const auto oracle = bo::AdditiveBo(kTrueBlocks, oracle_opt).run(obj, space);

  // Online: seeded with a partition that cuts every true pair, 1.5x budget.
  const HookedRun online = run_with_learner(kWrongBlocks, budget + budget / 2, seed);

  EXPECT_GE(online.repartitions, 1u)
      << "the learner never corrected the wrong seed partition";
  EXPECT_LE(online.result.best_value, oracle.best_value + 0.02)
      << "online repartition did not reach the oracle's best within 1.5x budget";
}

TEST(OnlineLearner, CorrectSeedTriggersNoSpuriousRepartition) {
  const HookedRun online = run_with_learner(kTrueBlocks, 90, 900);
  EXPECT_EQ(online.repartitions, 0u)
      << "hysteresis failed: a correctly-seeded run re-cut the partition";
}

}  // namespace

// --- Durability: {"e":"struct"} journal records ----------------------------

namespace service_durability {

using service::SessionBackend;
using service::SessionOptions;
using service::SessionStore;
using service::TuningSession;

search::SearchSpace four_dim_space() {
  search::SearchSpace s;
  for (int i = 0; i < 4; ++i) {
    s.add(search::ParamSpec::real("p" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SessionOptions structure_options(std::size_t max_evals) {
  SessionOptions opt;
  opt.max_evals = max_evals;
  opt.backend = SessionBackend::Random;
  opt.seed = 33;
  opt.structure_online = true;
  opt.structure_cadence = 5;
  return opt;
}

/// Drive `n` ask/tell rounds; the value couples the first two parameters so
/// refits produce a non-trivial affinity matrix.
void drive(TuningSession& session, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    auto batch = session.ask(1);
    ASSERT_EQ(batch.size(), 1u);
    const auto& c = batch[0].config;
    ASSERT_TRUE(session.tell(batch[0].id, pair_term(c[0], c[1]) + 0.3 * c[2]));
  }
}

TEST(StructureDurability, KillResumeRestoresSnapshotByteForByte) {
  const auto space = four_dim_space();
  const std::string journal = temp_path("tunekit_struct_kill.jsonl");
  std::filesystem::remove(journal);

  std::string live_dump;
  {
    TuningSession session(space, structure_options(64), journal);
    // 23 tells: refits land on cadence boundaries (10, 15, 20), leaving
    // three observations newer than the last journaled snapshot — the
    // resume path must rebuild those from the EvalDb, not lose them.
    drive(session, 23);
    live_dump = session.structure_snapshot().dump();
    // Drop without close(): the journal holds only what tell-time appended.
  }
  ASSERT_FALSE(live_dump.empty());

  auto resumed = TuningSession::resume(space, structure_options(64), journal);
  EXPECT_EQ(resumed->structure_snapshot().dump(), live_dump)
      << "resume did not restore the learned structure byte-for-byte";

  // The resumed learner keeps learning seamlessly: two more tells cross the
  // next cadence boundary and the snapshot advances.
  drive(*resumed, 2);
  const json::Value after = resumed->structure_snapshot();
  EXPECT_EQ(after.at("observations").as_int(), 25);
  std::filesystem::remove(journal);
}

TEST(StructureDurability, CompactionPreservesLatestSnapshot) {
  const auto space = four_dim_space();
  const std::string journal = temp_path("tunekit_struct_compact.jsonl");
  std::filesystem::remove(journal);

  SessionOptions opt = structure_options(64);
  opt.compact_every = 5;  // compact aggressively: many rewrites
  std::string live_dump;
  {
    TuningSession session(space, opt, journal);
    drive(session, 30);
    live_dump = session.structure_snapshot().dump();
  }

  // The compacted journal still replays a structure record...
  const auto replay = SessionStore::replay(journal, space);
  ASSERT_FALSE(replay.structure.is_null())
      << "compaction dropped the {\"e\":\"struct\"} record";
  // ...and the resumed learner state is exactly the pre-kill state.
  auto resumed = TuningSession::resume(space, opt, journal);
  EXPECT_EQ(resumed->structure_snapshot().dump(), live_dump);
  // The adoption history (inside the snapshot) survived the rewrites too.
  EXPECT_TRUE(resumed->structure_snapshot().contains("history"));
  std::filesystem::remove(journal);
}

TEST(StructureDurability, LegacyJournalWithoutStructureRecordsResumes) {
  const auto space = four_dim_space();
  const std::string journal = temp_path("tunekit_struct_legacy.jsonl");
  std::filesystem::remove(journal);

  // A journal written before structure learning existed (or with it off).
  SessionOptions legacy;
  legacy.max_evals = 64;
  legacy.backend = SessionBackend::Random;
  legacy.seed = 33;
  {
    TuningSession session(space, legacy, journal);
    drive(session, 12);
  }

  // Resuming with structure learning on back-fills the learner from the
  // EvalDb and journals a first snapshot (migration-safe).
  std::string first_dump;
  {
    auto resumed = TuningSession::resume(space, structure_options(64), journal);
    const json::Value snap = resumed->structure_snapshot();
    ASSERT_FALSE(snap.is_null());
    EXPECT_EQ(snap.at("observations").as_int(), 12);
    first_dump = snap.dump();
  }
  // A second resume restores that journaled snapshot exactly.
  auto again = TuningSession::resume(space, structure_options(64), journal);
  EXPECT_EQ(again->structure_snapshot().dump(), first_dump);
  std::filesystem::remove(journal);
}

}  // namespace service_durability
}  // namespace tunekit
