#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tunekit {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // SplitMix64 mixing should make consecutive integer seeds unrelated.
  Rng a(100), b(101);
  double max_equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++max_equal;
  }
  EXPECT_EQ(max_equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(99);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsReproducible) {
  Rng p1(99), p2(99);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  const auto idx = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(17);
  const auto idx = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(17);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit
