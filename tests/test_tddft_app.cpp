#include "tddft/tddft_app.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace tunekit::tddft {
namespace {

TEST(RtTddftApp, SpaceHasTableIvParameters) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  const auto& space = app.space();
  EXPECT_EQ(space.size(), 20u);  // the paper's 20 tuning parameters
  for (const char* name :
       {"nstb", "nkpb", "nspb", "u_dscal", "tb_dscal", "tb_sm_dscal", "u_pair",
        "tb_pair", "tb_sm_pair", "u_zcopy", "tb_zcopy", "tb_sm_zcopy", "u_vec", "tb_vec",
        "tb_sm_vec", "u_zvec", "tb_zvec", "tb_sm_zvec", "nstreams", "nbatches"}) {
    EXPECT_TRUE(space.has(name)) << name;
  }
  // Per-kernel knob cardinalities from Table IV: 4 x 32 x 32.
  EXPECT_EQ(space.param(space.index_of("u_pair")).cardinality(), 4u);
  EXPECT_EQ(space.param(space.index_of("tb_pair")).cardinality(), 32u);
  EXPECT_EQ(space.param(space.index_of("tb_sm_pair")).cardinality(), 32u);
  EXPECT_EQ(space.param(space.index_of("nstreams")).cardinality(), 32u);
  EXPECT_EQ(space.param(space.index_of("nbatches")).cardinality(), 32u);
}

TEST(RtTddftApp, ResidencyConstraintEnforced) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  auto config = app.space().defaults();
  EXPECT_TRUE(app.space().is_valid(config));
  config[RtTddftApp::kTbPair] = 1024;
  config[RtTddftApp::kTbSmPair] = 4;  // 4096 > 2048 threads/SM
  EXPECT_FALSE(app.space().is_valid(config));
  config[RtTddftApp::kTbSmPair] = 2;  // exactly 2048: allowed
  EXPECT_TRUE(app.space().is_valid(config));
}

TEST(RtTddftApp, MpiConstraintEnforced) {
  RtTddftApp app(PhysicalSystem::case_study_1(), /*nodes=*/10);
  auto config = app.space().defaults();
  config[RtTddftApp::kNstb] = 64;  // 64 ranks > 40 allocated
  EXPECT_FALSE(app.space().is_valid(config));
  config[RtTddftApp::kNstb] = 32;
  EXPECT_TRUE(app.space().is_valid(config));
  // CS1 has a single k-point: nkpb > 1 invalid.
  config[RtTddftApp::kNkpb] = 2;
  EXPECT_FALSE(app.space().is_valid(config));
}

TEST(RtTddftApp, DecodeMapsAllParameters) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  auto config = app.space().defaults();
  config[RtTddftApp::kNstb] = 8;
  config[RtTddftApp::kUZcopy] = 4;
  config[RtTddftApp::kTbVec] = 512;
  config[RtTddftApp::kNbatches] = 7;
  const TddftConfig decoded = app.decode(config);
  EXPECT_EQ(decoded.grid.nstb, 8);
  EXPECT_EQ(decoded.tunings.at(KernelId::Zcopy).unroll, 4);
  EXPECT_EQ(decoded.tunings.at(KernelId::Vec2Zvec).tb, 512);
  EXPECT_EQ(decoded.nbatches, 7);
  EXPECT_THROW(app.decode({1.0, 2.0}), std::invalid_argument);
}

TEST(RtTddftApp, RoutinesMatchPaperOwnership) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  const auto routines = app.routines();
  ASSERT_EQ(routines.size(), 3u);
  EXPECT_EQ(routines[0].name, "Group1");
  EXPECT_EQ(routines[1].name, "Group2");
  EXPECT_EQ(routines[2].name, "Group3");

  auto owns = [&](std::size_t r, std::size_t p) {
    return std::find(routines[r].params.begin(), routines[r].params.end(), p) !=
           routines[r].params.end();
  };
  // cuZcopy is shared between Groups 1 and 3.
  EXPECT_TRUE(owns(0, RtTddftApp::kTbZcopy));
  EXPECT_TRUE(owns(2, RtTddftApp::kTbZcopy));
  // cuPairwise belongs only to Group 2.
  EXPECT_TRUE(owns(1, RtTddftApp::kTbPair));
  EXPECT_FALSE(owns(0, RtTddftApp::kTbPair));
  EXPECT_FALSE(owns(2, RtTddftApp::kTbPair));
  // VEC in Group 1 only; DSCAL/ZVEC in Group 3 only.
  EXPECT_TRUE(owns(0, RtTddftApp::kUVec));
  EXPECT_TRUE(owns(2, RtTddftApp::kUDscal));
  EXPECT_TRUE(owns(2, RtTddftApp::kUZvec));
}

TEST(RtTddftApp, OuterRegionAndBoundGroups) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  EXPECT_EQ(app.outer_regions(), (std::vector<std::string>{"SlaterDet"}));
  const auto bound = app.bound_groups();
  ASSERT_EQ(bound.size(), 2u);
  EXPECT_EQ(bound[0].name, "MPI Grid");
  EXPECT_EQ(bound[0].params,
            (std::vector<std::size_t>{RtTddftApp::kNstb, RtTddftApp::kNkpb,
                                      RtTddftApp::kNspb}));
  EXPECT_EQ(bound[1].name, "Iterations");
}

TEST(RtTddftApp, ExpertVariationsCoverEveryParameter) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  const auto vars = app.expert_variations();
  for (const auto& p : app.space().params()) {
    ASSERT_TRUE(vars.count(p.name())) << p.name();
    EXPECT_FALSE(vars.at(p.name()).empty());
    EXPECT_LE(vars.at(p.name()).size(), 5u);  // paper: five variations
  }
}

TEST(RtTddftApp, EvaluateRegionsReportsAllRegions) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  const auto t = app.evaluate_regions(app.space().defaults());
  for (const char* region : {"Group1", "Group2", "Group3", "SlaterDet"}) {
    ASSERT_TRUE(t.regions.count(region)) << region;
    EXPECT_GT(t.regions.at(region), 0.0);
  }
  EXPECT_GT(t.total, t.regions.at("SlaterDet"));
}

TEST(RtTddftApp, SamplingProducesValidConfigs) {
  RtTddftApp app(PhysicalSystem::case_study_2());
  tunekit::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto c = app.space().sample_valid(rng);
    EXPECT_TRUE(app.space().is_valid(c));
    const auto decoded = app.decode(c);
    EXPECT_TRUE(app.pipeline().valid(decoded));
  }
}

TEST(RtTddftApp, SearchSpaceSizeMatchesTableIvScale) {
  RtTddftApp app(PhysicalSystem::case_study_1());
  // 41,943,040 x N_mpi configurations in the paper. Our per-kernel space is
  // (4 x 32 x 32)^5 x 32 x 32; check the GPU-parameter block's log10 size.
  std::vector<std::size_t> gpu_params;
  for (std::size_t i = 3; i < 20; ++i) gpu_params.push_back(i);
  const auto gpu_space = app.space().subspace(gpu_params);
  // (4*32*32)^5 * 32 * 32 ~ 1.2e21.
  EXPECT_NEAR(gpu_space.log10_cardinality(), 21.1, 0.2);
}

TEST(RtTddftApp, ThreadSafeAndNamed) {
  RtTddftApp app(PhysicalSystem::case_study_2());
  EXPECT_TRUE(app.thread_safe());
  EXPECT_NE(app.name().find("h-BN"), std::string::npos);
  EXPECT_THROW(RtTddftApp(PhysicalSystem::case_study_1(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::tddft
