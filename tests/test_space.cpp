#include "search/space.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "search/config.hpp"

namespace tunekit::search {
namespace {

SearchSpace make_space() {
  SearchSpace s;
  s.add(ParamSpec::real("x", -1.0, 1.0, 0.0));
  s.add(ParamSpec::integer("n", 1, 8, 2));
  s.add(ParamSpec::ordinal("tb", {32, 64, 128}, 64));
  s.add_constraint("n_times_tb", [](const Config& c) { return c[1] * c[2] <= 512.0; });
  return s;
}

TEST(SearchSpace, AddAndLookup) {
  const auto s = make_space();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.index_of("n"), 1u);
  EXPECT_TRUE(s.has("tb"));
  EXPECT_FALSE(s.has("zzz"));
  EXPECT_THROW(s.index_of("zzz"), std::out_of_range);
}

TEST(SearchSpace, DuplicateNameRejected) {
  SearchSpace s;
  s.add(ParamSpec::real("x", 0, 1, 0));
  EXPECT_THROW(s.add(ParamSpec::integer("x", 0, 1, 0)), std::invalid_argument);
}

TEST(SearchSpace, NullConstraintRejected) {
  SearchSpace s;
  EXPECT_THROW(s.add_constraint("bad", nullptr), std::invalid_argument);
}

TEST(SearchSpace, Defaults) {
  const auto s = make_space();
  EXPECT_EQ(s.defaults(), (Config{0.0, 2.0, 64.0}));
}

TEST(SearchSpace, ValidityChecks) {
  const auto s = make_space();
  EXPECT_TRUE(s.is_valid({0.5, 4, 128}));
  EXPECT_FALSE(s.is_valid({0.5, 8, 128}));   // constraint: 8*128 > 512
  EXPECT_FALSE(s.is_valid({2.0, 4, 128}));   // x out of range
  EXPECT_FALSE(s.is_valid({0.5, 4.5, 128})); // n not integer
  EXPECT_FALSE(s.is_valid({0.5, 4, 100}));   // tb not a level
  EXPECT_FALSE(s.is_valid({0.5, 4}));        // arity
}

TEST(SearchSpace, FirstViolationNames) {
  const auto s = make_space();
  EXPECT_FALSE(s.first_violation({0.0, 2, 64}).has_value());
  EXPECT_EQ(s.first_violation({5.0, 2, 64}).value(), "range:x");
  EXPECT_EQ(s.first_violation({0.0, 8, 128}).value(), "n_times_tb");
  EXPECT_EQ(s.first_violation({0.0}).value(), "arity");
}

TEST(SearchSpace, SnapProducesRepresentable) {
  const auto s = make_space();
  const Config snapped = s.snap({7.0, 3.3, 90.0});
  EXPECT_DOUBLE_EQ(snapped[0], 1.0);
  EXPECT_DOUBLE_EQ(snapped[1], 3.0);
  EXPECT_DOUBLE_EQ(snapped[2], 64.0);
}

TEST(SearchSpace, UnitCodecRoundTrip) {
  const auto s = make_space();
  const Config c{0.25, 5, 128};
  const auto u = s.encode_unit(c);
  ASSERT_EQ(u.size(), 3u);
  const Config back = s.decode_unit(u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], c[i], 1e-9);
}

TEST(SearchSpace, DecodeArityChecked) {
  const auto s = make_space();
  EXPECT_THROW(s.decode_unit({0.5}), std::invalid_argument);
  EXPECT_THROW(s.encode_unit({0.5}), std::invalid_argument);
}

TEST(SearchSpace, SampleValidRespectsConstraints) {
  const auto s = make_space();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.is_valid(s.sample_valid(rng)));
  }
}

TEST(SearchSpace, SampleValidThrowsOnUnsatisfiable) {
  SearchSpace s;
  s.add(ParamSpec::real("x", 0, 1, 0));
  s.add_constraint("never", [](const Config&) { return false; });
  Rng rng(1);
  EXPECT_THROW(s.sample_valid(rng, 100), std::runtime_error);
}

TEST(SearchSpace, Log10Cardinality) {
  SearchSpace s;
  s.add(ParamSpec::integer("a", 1, 10, 1));    // 10
  s.add(ParamSpec::ordinal("b", {1, 2}, 1));   // 2
  EXPECT_NEAR(s.log10_cardinality(), std::log10(20.0), 1e-12);
  s.add(ParamSpec::real("c", 0, 1, 0));        // counted as `real_resolution`
  EXPECT_NEAR(s.log10_cardinality(100), std::log10(2000.0), 1e-12);
}

TEST(SearchSpace, Subspace) {
  const auto s = make_space();
  const auto sub = s.subspace({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.param(0).name(), "tb");
  EXPECT_EQ(sub.param(1).name(), "x");
  EXPECT_THROW(s.subspace({7}), std::out_of_range);
}

TEST(NamedConfig, RoundTrip) {
  const auto s = make_space();
  const Config c{0.5, 3, 128};
  const auto named = to_named(s, c);
  EXPECT_DOUBLE_EQ(named.at("x"), 0.5);
  EXPECT_DOUBLE_EQ(named.at("tb"), 128.0);
  const Config back = from_named(s, named);
  EXPECT_EQ(back, c);
}

TEST(NamedConfig, MissingNamesTakeDefaults) {
  const auto s = make_space();
  const Config c = from_named(s, {{"n", 7.0}});
  EXPECT_EQ(c, (Config{0.0, 7.0, 64.0}));
}

TEST(NamedConfig, Describe) {
  const auto s = make_space();
  const std::string d = describe(s, {0.5, 3, 128});
  EXPECT_NE(d.find("x=0.5"), std::string::npos);
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("tb=128"), std::string::npos);
}

}  // namespace
}  // namespace tunekit::search
