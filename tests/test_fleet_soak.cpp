// Fleet acceptance soak (ISSUE acceptance criteria): a sharded session
// manager drives 1000+ sessions through a dispatcher with five nodes while
// one node is killed mid-run with work in flight and another hangs its
// heartbeat (chaos mute). Asserts: every session runs to exhaustion with its
// exact budget (zero double-issued candidates, zero lost tells), both chaos
// nodes are declared dead under the existing failure taxonomy, and their
// in-flight evaluations are re-dispatched to surviving nodes.
//
// The second test is the first fleet performance baseline: evals/sec and
// p50/p99 dispatch latency at 1 node vs 4 nodes, written to
// BENCH_fleet_throughput.json (override the path with TUNEKIT_BENCH_OUT).
// Evaluation cost is dominated by an artificial per-eval delay, so the
// 4-node stage must sustain at least twice the single-node rate.

#include "fleet/dispatcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/hash.hpp"
#include "fleet/node_agent.hpp"
#include "net/session_manager.hpp"
#include "obs/telemetry.hpp"
#include "robust/eval_backend.hpp"

namespace tunekit::fleet {
namespace {

using robust::EvalOutcome;

constexpr std::size_t kSessions = 1050;
constexpr std::size_t kEvalsPerSession = 4;
constexpr std::size_t kShards = 8;

/// Thread-safe synthetic backend: value = sum of coordinates, optional
/// per-eval delay so chaos events reliably catch work in flight.
class SyntheticBackend final : public robust::EvalBackend {
 public:
  explicit SyntheticBackend(double delay_ms = 0.0) : delay_ms_(delay_ms) {}

  robust::SandboxResult evaluate(const search::Config& config,
                                 double /*deadline_seconds*/) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (delay_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(delay_ms_ * 1000.0)));
    }
    robust::SandboxResult r;
    double sum = 0.0;
    for (const double c : config) sum += c;
    r.outcome = EvalOutcome::Ok;
    r.value = sum;
    r.cost_seconds = delay_ms_ / 1e3;
    r.regions.total = sum;
    return r;
  }

  bool healthy() const override { return true; }
  std::size_t concurrency() const override { return 2; }
  std::size_t calls() const { return calls_.load(); }

 private:
  double delay_ms_;
  std::atomic<std::size_t> calls_{0};
};

struct AgentHandle {
  std::shared_ptr<SyntheticBackend> backend;
  std::unique_ptr<NodeAgent> agent;
  std::thread thread;

  void stop_join() {
    if (agent) agent->stop();
    if (thread.joinable()) thread.join();
  }
};

AgentHandle start_agent(std::uint16_t port, const std::string& id,
                        double delay_ms, double chaos_mute_after_s = 0.0) {
  AgentHandle h;
  h.backend = std::make_shared<SyntheticBackend>(delay_ms);
  NodeAgentOptions opt;
  opt.host = "127.0.0.1";
  opt.port = port;
  opt.node_id = id;
  opt.slots = 2;
  opt.backend = h.backend;
  opt.reconnect_base_s = 0.05;
  opt.reconnect_max_s = 0.2;
  opt.chaos_mute_after_s = chaos_mute_after_s;
  h.agent = std::make_unique<NodeAgent>(opt);
  NodeAgent* raw = h.agent.get();
  h.thread = std::thread([raw] { raw->run(); });
  return h;
}

void wait_nodes(const FleetDispatcher& d, std::size_t n, double timeout_s = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (d.registry().nodes_alive() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(d.registry().nodes_alive(), n);
}

json::Value soak_spec(const std::string& id) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(kEvalsPerSession);
  spec["space"] = json::parse(
      "{\"params\": ["
      "{\"name\":\"x\",\"kind\":\"real\",\"lo\":-2,\"hi\":2,\"default\":0},"
      "{\"name\":\"y\",\"kind\":\"real\",\"lo\":-2,\"hi\":2,\"default\":0}"
      "]}");
  return json::Value(std::move(spec));
}

TEST(FleetSoak, ChaosSoakSurvivesNodeKillAndHeartbeatHang) {
  obs::Telemetry telemetry;
  telemetry.enable();

  DispatcherOptions dopt;
  dopt.port = 0;
  dopt.heartbeat_interval_s = 0.1;
  dopt.registry.heartbeat_timeout_s = 0.8;
  dopt.registry.readmit_base_s = 60.0;  // chaos nodes stay out once dead
  dopt.telemetry = &telemetry;
  auto dispatcher = std::make_shared<FleetDispatcher>(dopt);

  // Five nodes: three healthy, one that will be killed with work in flight,
  // one that hangs its heartbeat (and holds its evals) after ~1s.
  std::vector<AgentHandle> healthy;
  for (int i = 0; i < 3; ++i) {
    healthy.push_back(start_agent(dispatcher->port(),
                                  "healthy-" + std::to_string(i),
                                  /*delay_ms=*/1.0));
  }
  auto doomed = start_agent(dispatcher->port(), "doomed", /*delay_ms=*/20.0);
  auto mute = start_agent(dispatcher->port(), "mute", /*delay_ms=*/20.0,
                          /*chaos_mute_after_s=*/1.0);
  wait_nodes(*dispatcher, 5);
  EXPECT_EQ(dispatcher->concurrency(), 10u);

  net::SessionManagerOptions mopt;
  mopt.max_sessions = kSessions + 8;
  mopt.max_resident = 32;
  mopt.shards = kShards;
  mopt.telemetry = &telemetry;
  net::SessionManager manager(mopt);
  EXPECT_EQ(manager.shards(), kShards);

  std::vector<std::string> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::string id = "soak-" + std::to_string(i);
    manager.create(soak_spec(id));
    ids.push_back(id);
  }

  // Kill the doomed node mid-run, abruptly: its connection drops with evals
  // in flight, exactly what a SIGKILLed machine looks like to the
  // dispatcher.
  std::thread chaos([&doomed] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    doomed.stop_join();
  });

  // Four concurrent drivers: demand (4 drives x 4 evals) exceeds the live
  // slot count once the chaos nodes fall over, so the central queue builds
  // and freed slots must steal queued work.
  std::atomic<std::size_t> exhausted{0};
  std::atomic<std::uint64_t> tells{0};
  std::vector<std::thread> drivers;
  for (std::size_t t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      for (std::size_t i = t; i < ids.size(); i += 4) {
        const json::Value reply =
            manager.drive(ids[i], dispatcher, json::Value(json::Object{}));
        if (reply.at("state").as_string() == "exhausted") exhausted.fetch_add(1);
        // Exact budget consumption is the zero-double-issue / zero-lost-tell
        // assertion: one lost tell leaves the session short, one
        // double-issued candidate would overshoot (the session refuses
        // duplicate tells).
        EXPECT_EQ(static_cast<std::size_t>(reply.at("completed").as_number()),
                  kEvalsPerSession)
            << "session " << ids[i];
        tells.fetch_add(
            static_cast<std::uint64_t>(reply.at("completed").as_number()));
      }
    });
  }
  for (auto& d : drivers) d.join();
  chaos.join();

  EXPECT_EQ(exhausted.load(), kSessions);
  EXPECT_EQ(tells.load(), kSessions * kEvalsPerSession);

  // Both chaos nodes were declared dead (dropped connection / missed
  // heartbeat deadline) and their in-flight work was re-dispatched.
  EXPECT_FALSE(dispatcher->registry().alive("doomed"));
  EXPECT_FALSE(dispatcher->registry().alive("mute"));
  EXPECT_EQ(dispatcher->registry().nodes_alive(), 3u);
  EXPECT_GE(dispatcher->redispatches(), 1u);
  EXPECT_EQ(dispatcher->queue_depth(), 0u);

  // Every delivered eval ran on some node; chaos re-runs may exceed tells,
  // never undershoot them.
  std::uint64_t served = doomed.backend->calls() + mute.backend->calls();
  for (const auto& h : healthy) served += h.backend->calls();
  EXPECT_GE(served, tells.load());

  // Work stealing happened: freed slots pulled queued work (the counter only
  // moves on steal-path assignments).
  EXPECT_GE(dispatcher->steals(), 1u);

  // The metrics surface saw the fleet.
  EXPECT_GE(telemetry.metrics().counter(obs::metric::kFleetRedispatches).value(),
            1u);

  mute.stop_join();
  for (auto& h : healthy) h.stop_join();
  dispatcher->stop();
}

TEST(FleetSoak, ShardedJournalLayoutRoutesById) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tunekit_shard_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  net::SessionManagerOptions mopt;
  mopt.journal_dir = dir.string();
  mopt.shards = 4;
  net::SessionManager manager(mopt);

  for (int i = 0; i < 12; ++i) {
    manager.create(soak_spec("shard-test-" + std::to_string(i)));
  }
  // Every shard subdirectory exists, and each session's journal lives in the
  // shard its id hashes to — the same assignment shard_of computes.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(std::filesystem::is_directory(dir / ("shard-" + std::to_string(k))));
  }
  for (int i = 0; i < 12; ++i) {
    const std::string id = "shard-test-" + std::to_string(i);
    const std::size_t k = common::shard_of(id, 4);
    EXPECT_TRUE(std::filesystem::exists(
        dir / ("shard-" + std::to_string(k)) / (id + ".journal.jsonl")))
        << id << " expected in shard " << k;
  }
  std::filesystem::remove_all(dir);
}

// --- First fleet performance baseline. ---

struct BenchStage {
  std::size_t nodes = 0;
  std::size_t slots = 0;
  std::size_t evals = 0;
  double evals_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

BenchStage run_stage(FleetDispatcher& dispatcher, std::size_t nodes,
                     std::size_t evals) {
  BenchStage stage;
  stage.nodes = nodes;
  stage.slots = dispatcher.concurrency();
  stage.evals = evals;

  std::vector<double> latencies_ms(evals, 0.0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < stage.slots; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= evals) break;
        const auto e0 = std::chrono::steady_clock::now();
        const auto r =
            dispatcher.evaluate({static_cast<double>(i % 7), 1.0}, 60.0);
        const auto e1 = std::chrono::steady_clock::now();
        if (r.outcome != EvalOutcome::Ok) failed.fetch_add(1);
        latencies_ms[i] =
            std::chrono::duration<double, std::milli>(e1 - e0).count();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(failed.load(), 0u);

  std::sort(latencies_ms.begin(), latencies_ms.end());
  stage.evals_per_sec = static_cast<double>(evals) / wall;
  stage.p50_ms = latencies_ms[evals / 2];
  stage.p99_ms = latencies_ms[std::min(evals - 1, evals * 99 / 100)];
  return stage;
}

json::Value stage_json(const BenchStage& s) {
  json::Object o;
  o["nodes"] = json::Value(s.nodes);
  o["slots"] = json::Value(s.slots);
  o["evals"] = json::Value(s.evals);
  o["evals_per_sec"] = json::Value(s.evals_per_sec);
  o["dispatch_p50_ms"] = json::Value(s.p50_ms);
  o["dispatch_p99_ms"] = json::Value(s.p99_ms);
  return json::Value(std::move(o));
}

TEST(FleetSoak, ThroughputBaselineScalesWithNodes) {
  constexpr double kEvalMs = 5.0;  // artificial per-eval cost (--spin-ms twin)

  DispatcherOptions dopt;
  dopt.port = 0;
  dopt.heartbeat_interval_s = 0.1;
  FleetDispatcher dispatcher(dopt);

  std::vector<AgentHandle> agents;
  agents.push_back(start_agent(dispatcher.port(), "bench-0", kEvalMs));
  wait_nodes(dispatcher, 1);
  const BenchStage single = run_stage(dispatcher, 1, 150);

  for (int i = 1; i < 4; ++i) {
    agents.push_back(start_agent(dispatcher.port(),
                                 "bench-" + std::to_string(i), kEvalMs));
  }
  wait_nodes(dispatcher, 4);
  const BenchStage four = run_stage(dispatcher, 4, 400);

  const double speedup = four.evals_per_sec / single.evals_per_sec;
  // Acceptance: four nodes sustain at least twice the single-node rate. With
  // delay-dominated evals the ideal is 4x; 2x leaves headroom for a loaded
  // single-core CI box.
  EXPECT_GE(speedup, 2.0) << "1 node: " << single.evals_per_sec
                          << " evals/s, 4 nodes: " << four.evals_per_sec;

  json::Object bench;
  bench["bench"] = json::Value(std::string("fleet_throughput"));
  bench["eval_ms"] = json::Value(kEvalMs);
  bench["single_node"] = stage_json(single);
  bench["four_nodes"] = stage_json(four);
  bench["speedup"] = json::Value(speedup);

  const char* out_env = std::getenv("TUNEKIT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_fleet_throughput.json";
  std::ofstream out(out_path);
  out << json::Value(std::move(bench)).dump(2) << "\n";

  for (auto& h : agents) h.stop_join();
  dispatcher.stop();
}

}  // namespace
}  // namespace tunekit::fleet
