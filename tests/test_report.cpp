#include "core/report.hpp"

#include <gtest/gtest.h>

#include "synth/synth_app.hpp"

namespace tunekit::core {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture() : app_(synth::SynthCase::Case3) {
    MethodologyOptions opt;
    opt.cutoff = 0.25;
    opt.sensitivity.n_variations = 20;
    opt.importance_samples = 0;
    opt.executor.evals_per_param = 2;
    opt.executor.min_evals = 6;
    opt.executor.enumerate_threshold = 0.0;
    Methodology m(opt);
    result_ = std::make_unique<MethodologyResult>(m.run(app_));
  }

  synth::SynthApp app_;
  std::unique_ptr<MethodologyResult> result_;
};

TEST_F(ReportFixture, SensitivityTableHasRegionAndEntries) {
  const std::string t = sensitivity_table(result_->analysis.sensitivity, "Group3", 5);
  EXPECT_NE(t.find("Region: Group3"), std::string::npos);
  EXPECT_NE(t.find("Variability"), std::string::npos);
  EXPECT_NE(t.find('%'), std::string::npos);
}

TEST_F(ReportFixture, SensitivityTablesSideBySide) {
  const std::string t =
      sensitivity_tables(result_->analysis.sensitivity, {"Group1", "Group2"}, 4);
  EXPECT_NE(t.find("Group1 feature"), std::string::npos);
  EXPECT_NE(t.find("Group2 feature"), std::string::npos);
}

TEST_F(ReportFixture, PlanTableListsSearchesAndObjectives) {
  const std::string t = plan_table(result_->plan, result_->analysis.graph);
  EXPECT_NE(t.find("Group3+Group4"), std::string::npos);
  EXPECT_NE(t.find("Objective"), std::string::npos);
  EXPECT_NE(t.find("Stage"), std::string::npos);
}

TEST_F(ReportFixture, ExecutionReportShowsFinalConfig) {
  const std::string t = execution_report(app_, result_->execution);
  EXPECT_NE(t.find("Final objective"), std::string::npos);
  EXPECT_NE(t.find("x0="), std::string::npos);
  EXPECT_NE(t.find("Total search evaluations"), std::string::npos);
}

TEST_F(ReportFixture, FullReportHasAllSections) {
  const std::string t = full_report(app_, *result_);
  for (const char* section : {"Methodology report", "Influence analysis", "Search plan",
                              "Execution", "Wall time"}) {
    EXPECT_NE(t.find(section), std::string::npos) << section;
  }
  EXPECT_NE(t.find(app_.name()), std::string::npos);
}

TEST_F(ReportFixture, UnknownRegionThrows) {
  EXPECT_THROW(sensitivity_table(result_->analysis.sensitivity, "Nope", 3),
               std::out_of_range);
}

}  // namespace
}  // namespace tunekit::core
