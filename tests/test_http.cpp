// Unit tests for the HTTP/1.1 message layer (net/http): incremental parsing
// byte by byte, limit enforcement (413/431), error classification, keep-alive
// semantics, pipelining, and response serialization. No sockets — the parser
// consumes bytes from anywhere.

#include "net/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tunekit::net {
namespace {

RequestParser::Status feed_all(RequestParser& p, const std::string& bytes) {
  return p.feed(bytes.data(), bytes.size());
}

TEST(HttpParser, ParsesSimpleGet) {
  RequestParser p;
  const std::string wire = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(feed_all(p, wire), RequestParser::Status::Complete);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().path, "/healthz");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_TRUE(p.request().body.empty());
  EXPECT_TRUE(p.request().keep_alive());
}

TEST(HttpParser, ByteByByteDelivery) {
  // The parser must yield exactly one Complete no matter how the bytes are
  // chunked — one at a time is the adversarial extreme.
  RequestParser p;
  const std::string wire =
      "POST /v1/sessions HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"";
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(p.feed(&wire[i], 1), RequestParser::Status::NeedMore)
        << "premature completion at byte " << i;
  }
  ASSERT_EQ(p.feed(&wire[wire.size() - 1], 1), RequestParser::Status::Complete);
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "{\"a\"");
}

TEST(HttpParser, QuerySplitAndHeaderNormalization) {
  RequestParser p;
  ASSERT_EQ(feed_all(p,
                     "GET /v1/sessions?limit=5&offset=2 HTTP/1.1\r\n"
                     "X-Custom-HEADER:   padded value  \r\n\r\n"),
            RequestParser::Status::Complete);
  EXPECT_EQ(p.request().path, "/v1/sessions");
  EXPECT_EQ(p.request().query, "limit=5&offset=2");
  // Field names are case-insensitive: stored lower-cased, values trimmed.
  const std::string* v = p.request().header("x-custom-header");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "padded value");
}

TEST(HttpParser, KeepAliveSemantics) {
  {
    RequestParser p;
    feed_all(p, "GET / HTTP/1.1\r\n\r\n");
    EXPECT_TRUE(p.request().keep_alive()) << "HTTP/1.1 defaults to keep-alive";
  }
  {
    RequestParser p;
    feed_all(p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(p.request().keep_alive());
  }
  {
    RequestParser p;
    feed_all(p, "GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(p.request().keep_alive()) << "HTTP/1.0 defaults to close";
  }
  {
    RequestParser p;
    feed_all(p, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    EXPECT_TRUE(p.request().keep_alive());
  }
}

TEST(HttpParser, PipelinedRequestsSurviveReset) {
  RequestParser p;
  const std::string two =
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(feed_all(p, two), RequestParser::Status::Complete);
  EXPECT_EQ(p.request().path, "/a");
  EXPECT_EQ(p.request().body, "hi");
  p.reset();
  // The second request was already buffered; no further bytes needed.
  ASSERT_EQ(p.advance(), RequestParser::Status::Complete);
  EXPECT_EQ(p.request().path, "/b");
}

TEST(HttpParser, BareLfLineEndingsTolerated) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "GET /x HTTP/1.1\nHost: y\n\n"),
            RequestParser::Status::Complete);
  EXPECT_EQ(p.request().path, "/x");
}

TEST(HttpParser, MalformedRequestLineIs400) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "NONSENSE\r\n\r\n"), RequestParser::Status::Error);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, UnsupportedVersionIs400) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "GET / HTTP/2.0\r\n\r\n"), RequestParser::Status::Error);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, TransferEncodingIs501) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            RequestParser::Status::Error);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParser, NegativeOrJunkContentLengthIs400) {
  for (const char* bad : {"-5", "abc", "", "1e3", "18446744073709551616"}) {
    RequestParser p;
    const std::string wire = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                             bad + "\r\n\r\n";
    ASSERT_EQ(feed_all(p, wire), RequestParser::Status::Error) << bad;
    EXPECT_EQ(p.error_status(), 400) << bad;
  }
}

TEST(HttpParser, OversizedBodyIs413BeforeTheBodyArrives) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  RequestParser p(limits);
  // Rejected on the declared length alone — the server never buffers it.
  ASSERT_EQ(feed_all(p, "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            RequestParser::Status::Error);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  RequestParser p(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire.append(200, 'a');
  // No terminating blank line needed: the cap fires while still buffering.
  ASSERT_EQ(feed_all(p, wire), RequestParser::Status::Error);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, HeadersCompleteSignalsExpectContinueWindow) {
  RequestParser p;
  ASSERT_EQ(feed_all(p,
                     "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                     "Expect: 100-continue\r\n\r\n"),
            RequestParser::Status::NeedMore);
  EXPECT_TRUE(p.headers_complete());
  ASSERT_NE(p.request().header("expect"), nullptr);
  ASSERT_EQ(feed_all(p, "hello"), RequestParser::Status::Complete);
  EXPECT_EQ(p.request().body, "hello");
}

TEST(HttpResponseTest, SerializationCarriesLengthAndConnection) {
  HttpResponse r = HttpResponse::text(200, "hi", "text/plain");
  const std::string keep = serialize(r, /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(keep.substr(keep.size() - 2), "hi");

  const std::string close = serialize(r, /*keep_alive=*/false);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);

  r.close = true;  // the response can force close over the request's wish
  EXPECT_NE(serialize(r, true).find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, ErrorBodyIsJson) {
  const HttpResponse r = HttpResponse::error(422, "bad spec");
  EXPECT_EQ(r.status, 422);
  EXPECT_EQ(r.content_type, "application/json");
  const json::Value body = json::parse(r.body);
  EXPECT_EQ(body.at("error").as_string(), "bad spec");
}

}  // namespace
}  // namespace tunekit::net
