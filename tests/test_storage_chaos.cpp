// Chaos acceptance for hostile-machine storage: a sharded SessionManager
// with a FaultIo poisoning exactly one session's disk must degrade *that*
// session to 503-with-Retry-After while every other session keeps every
// acked tell; and deterministic byte corruption must be found — and repaired
// — by fsck, both through the library and through the `tunekit_cli fsck`
// command.

#include "net/session_manager.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "service/session_store.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#define TUNEKIT_HAVE_SYSTEM_EXIT_CODE 1
#endif

namespace tunekit::net {
namespace {

json::Value inline_space_spec(const std::string& id, std::size_t max_evals) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(max_evals);
  spec["seed"] = json::Value(7);
  spec["space"] = json::parse(
      "{\"params\": ["
      "{\"name\":\"x\",\"kind\":\"real\",\"lo\":-5,\"hi\":5,\"default\":0},"
      "{\"name\":\"y\",\"kind\":\"real\",\"lo\":-5,\"hi\":5,\"default\":0}"
      "]}");
  return json::Value(std::move(spec));
}

std::string fresh_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// One ask(1) + tell round against `id`; returns true when the tell was
/// acked, throws ApiError when the session is degraded.
bool one_round(SessionManager& manager, const std::string& id, double value) {
  const json::Value batch = manager.ask(id, 1);
  const auto& candidates = batch.at("candidates").as_array();
  if (candidates.size() != 1) return false;
  json::Object tell;
  tell["id"] = candidates[0].at("id");
  tell["value"] = json::Value(value);
  manager.tell(id, json::Value(std::move(tell)));
  return true;
}

std::string find_journal(const std::string& dir, const std::string& id) {
  const std::string want = id + ".journal.jsonl";
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().filename() == want &&
        entry.path().parent_path().filename() != "corrupt") {
      return entry.path().string();
    }
  }
  return "";
}

TEST(StorageChaos, PoisonedSessionDegradesAloneOthersLoseNothing) {
  const std::string dir = fresh_dir("tunekit_chaos_poison");

  // The disk under exactly one session fills mid-run. The path filter is the
  // blast-radius boundary: every other journal shares the FaultIo untouched.
  common::FaultScript script;
  script.enospc_after_bytes = 1500;
  script.path_contains = "victim.journal";
  script.seed = 42;
  common::FaultIo fault_io(script);

  SessionManagerOptions opt;
  opt.journal_dir = dir;
  opt.shards = 4;
  opt.io = &fault_io;

  const int rounds = 24;
  int victim_acked = 0;
  int victim_rejected = 0;
  {
    SessionManager manager(opt);
    manager.create(inline_space_spec("victim", 64));
    manager.create(inline_space_spec("healthy-a", 64));
    manager.create(inline_space_spec("healthy-b", 64));

    for (int i = 0; i < rounds; ++i) {
      for (const char* id : {"victim", "healthy-a", "healthy-b"}) {
        try {
          ASSERT_TRUE(one_round(manager, id, static_cast<double>(i)));
          if (std::string(id) == "victim") ++victim_acked;
        } catch (const ApiError& e) {
          // Degradation must be confined to the session whose disk failed,
          // and advertised as transient: 503 + Retry-After.
          EXPECT_STREQ(id, "victim")
              << "a healthy session degraded: " << e.what();
          EXPECT_EQ(e.status(), 503) << e.what();
          EXPECT_EQ(e.retry_after_seconds(), 5);
          ++victim_rejected;
        }
      }
    }
    EXPECT_GT(victim_acked, 0) << "the disk filled before anything landed";
    EXPECT_GT(victim_rejected, 0) << "ENOSPC never degraded the victim";

    // The healthy sessions completed every single round.
    for (const char* id : {"healthy-a", "healthy-b"}) {
      EXPECT_DOUBLE_EQ(manager.report(id).at("completed").as_number(), rounds);
    }
  }

  // Durability across a restart: a fresh manager over the same directory
  // (healthy disk now) resumes every session from its journal. Zero acked
  // tells lost anywhere — the poisoned session kept its pre-failure prefix.
  SessionManagerOptions clean_opt;
  clean_opt.journal_dir = dir;
  clean_opt.shards = 4;
  SessionManager resumed(clean_opt);
  for (const char* id : {"healthy-a", "healthy-b"}) {
    EXPECT_DOUBLE_EQ(resumed.report(id).at("completed").as_number(), rounds);
  }
  EXPECT_DOUBLE_EQ(resumed.report("victim").at("completed").as_number(),
                   victim_acked);
  std::filesystem::remove_all(dir);
}

#ifdef TUNEKIT_HAVE_SYSTEM_EXIT_CODE
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(TUNEKIT_CLI_BIN) + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}
#endif

TEST(StorageChaos, FsckFindsAndRepairsExactlyTheInjectedCorruption) {
  const std::string dir = fresh_dir("tunekit_chaos_fsck");
  {
    SessionManagerOptions opt;
    opt.journal_dir = dir;
    opt.shards = 2;
    SessionManager manager(opt);
    manager.create(inline_space_spec("s-one", 16));
    manager.create(inline_space_spec("s-two", 16));
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(one_round(manager, "s-one", static_cast<double>(i)));
      ASSERT_TRUE(one_round(manager, "s-two", static_cast<double>(i)));
    }
  }
  const std::string target = find_journal(dir, "s-one");
  const std::string bystander = find_journal(dir, "s-two");
  ASSERT_FALSE(target.empty());
  ASSERT_FALSE(bystander.empty());

  // Deterministic injection: flip one byte of the first tell record.
  {
    std::ifstream in(target, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const auto pos = bytes.find("\"e\":\"tell\"");
    ASSERT_NE(pos, std::string::npos);
    bytes[pos] ^= 0x01;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Read-only fsck pins the damage to exactly one record of one file and
  // reports the same thing every time (deterministic, no repair side
  // effects).
  for (int pass = 0; pass < 2; ++pass) {
    const auto report = service::SessionStore::fsck(target);
    EXPECT_TRUE(report.ok);
    EXPECT_FALSE(report.legacy_v1);
    EXPECT_EQ(report.salvage.lost_records, 1u) << "pass " << pass;
    EXPECT_EQ(report.salvage.corrupt_segments, 1u);
    EXPECT_EQ(report.salvage.torn_tails, 0u);
  }
  EXPECT_TRUE(service::SessionStore::fsck(bystander).salvage.clean())
      << "fsck flagged damage in an untouched journal";

#ifdef TUNEKIT_HAVE_SYSTEM_EXIT_CODE
  // The CLI wraps the same pass: damage without --repair exits 1, repair
  // exits 0, and a re-check of the repaired tree is clean.
  EXPECT_EQ(run_cli("fsck --journal-dir " + dir), 1);
  EXPECT_EQ(run_cli("fsck --journal-dir " + dir + " --repair"), 0);
  EXPECT_EQ(run_cli("fsck --journal-dir " + dir), 0);
#else
  const auto repaired = service::SessionStore::fsck(target, /*repair=*/true);
  EXPECT_TRUE(repaired.ok);
  EXPECT_EQ(repaired.salvage.lost_records, 1u);
#endif

  // After repair: the journal is structurally clean, the damaged bytes were
  // quarantined for forensics, and the session resumes with the salvaged
  // records (one tell lost, its candidate re-issuable).
  EXPECT_TRUE(service::SessionStore::fsck(target).salvage.clean());
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(target).parent_path() / "corrupt" /
      "s-one.journal.jsonl"));
  SessionManagerOptions resume_opt;
  resume_opt.journal_dir = dir;
  resume_opt.shards = 2;
  SessionManager resumed(resume_opt);
  EXPECT_DOUBLE_EQ(resumed.report("s-one").at("completed").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(resumed.report("s-two").at("completed").as_number(), 6.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tunekit::net
