// Property/fuzz tests over randomly generated mixed-kind search spaces:
// invariants of the unit codec, snapping, and sampling that every module
// above (samplers, BO, executor) silently relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "search/samplers.hpp"
#include "search/space.hpp"

namespace tunekit::search {
namespace {

/// Random space with 1-8 parameters of mixed kinds.
SearchSpace random_space(Rng& rng) {
  SearchSpace space;
  const auto dims = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t i = 0; i < dims; ++i) {
    const std::string name = "p" + std::to_string(i);
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const double lo = rng.uniform(-100.0, 50.0);
        const double hi = lo + rng.uniform(0.5, 150.0);
        space.add(ParamSpec::real(name, lo, hi, lo + 0.5 * (hi - lo)));
        break;
      }
      case 1: {
        const auto lo = rng.uniform_int(-20, 10);
        const auto hi = lo + rng.uniform_int(0, 40);
        space.add(ParamSpec::integer(name, lo, hi, lo));
        break;
      }
      case 2: {
        std::vector<double> levels;
        double v = rng.uniform(0.5, 4.0);
        const auto n = rng.uniform_int(2, 9);
        for (int k = 0; k < n; ++k) {
          levels.push_back(v);
          v += rng.uniform(0.5, 10.0);
        }
        space.add(ParamSpec::ordinal(name, levels, levels.front()));
        break;
      }
      default: {
        const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
        space.add(ParamSpec::categorical(name, n, 0));
        break;
      }
    }
  }
  return space;
}

class SpaceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpaceProperty, DecodeEncodeIsIdentityOnSamples) {
  Rng rng(GetParam());
  const SearchSpace space = random_space(rng);
  for (int trial = 0; trial < 50; ++trial) {
    const Config c = space.sample(rng);
    // Every sampled coordinate is representable.
    for (std::size_t i = 0; i < space.size(); ++i) {
      EXPECT_TRUE(space.param(i).is_valid_value(c[i]))
          << space.param(i).name() << " = " << c[i];
    }
    // decode(encode(c)) == c up to floating tolerance for reals, exactly
    // for discrete kinds.
    const Config back = space.decode_unit(space.encode_unit(c));
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (space.param(i).cardinality() == 0) {
        const double span = space.param(i).hi() - space.param(i).lo();
        EXPECT_NEAR(back[i], c[i], 1e-9 * span);
      } else {
        EXPECT_DOUBLE_EQ(back[i], c[i]);
      }
    }
  }
}

TEST_P(SpaceProperty, SnapIsIdempotentAndRepresentable) {
  Rng rng(GetParam() ^ 0xabc);
  const SearchSpace space = random_space(rng);
  for (int trial = 0; trial < 50; ++trial) {
    Config wild(space.size());
    for (auto& v : wild) v = rng.uniform(-1000.0, 1000.0);
    const Config snapped = space.snap(wild);
    for (std::size_t i = 0; i < space.size(); ++i) {
      EXPECT_TRUE(space.param(i).is_valid_value(snapped[i]));
    }
    EXPECT_EQ(space.snap(snapped), snapped);  // idempotent
  }
}

TEST_P(SpaceProperty, DefaultsAreValidWithoutConstraints) {
  Rng rng(GetParam() ^ 0xdef);
  const SearchSpace space = random_space(rng);
  EXPECT_TRUE(space.is_valid(space.defaults()));
}

TEST_P(SpaceProperty, LhsConfigsCoverEveryParameterRange) {
  Rng rng(GetParam() ^ 0x123);
  const SearchSpace space = random_space(rng);
  const auto configs = sample_valid_configs(space, 32, rng);
  ASSERT_EQ(configs.size(), 32u);
  for (std::size_t i = 0; i < space.size(); ++i) {
    double lo = 1e300, hi = -1e300;
    for (const auto& c : configs) {
      lo = std::min(lo, c[i]);
      hi = std::max(hi, c[i]);
    }
    // Stratified sampling must spread over more than a third of the range
    // (for parameters with more than one value).
    const auto& p = space.param(i);
    if (p.cardinality() != 1) {
      EXPECT_GT(hi - lo, (p.hi() - p.lo()) / 3.0 - 1e-12) << p.name();
    }
  }
}

TEST_P(SpaceProperty, UnitEncodingStaysInUnitCube) {
  Rng rng(GetParam() ^ 0x456);
  const SearchSpace space = random_space(rng);
  for (int trial = 0; trial < 30; ++trial) {
    const auto u = space.encode_unit(space.sample(rng));
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaceProperty,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull, 66ull,
                                           77ull, 88ull));

}  // namespace
}  // namespace tunekit::search
