#include "graph/partition.hpp"

#include <gtest/gtest.h>

namespace tunekit::graph {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.n_sets(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_TRUE(uf.connected(2, 2));
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already connected
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.n_sets(), 3u);
}

TEST(UnionFind, GroupsSortedAndComplete) {
  UnionFind uf(6);
  uf.unite(4, 2);
  uf.unite(5, 0);
  const auto groups = uf.groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 5}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(groups[3], (std::vector<std::size_t>{3}));
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW(uf.find(2), std::out_of_range);
}

TEST(UnionFind, LongChainCollapses) {
  UnionFind uf(100);
  for (std::size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.n_sets(), 1u);
  EXPECT_TRUE(uf.connected(0, 99));
}

TEST(MergeRoutines, NoEdgesMeansSingletons) {
  InfluenceGraph g({"A", "B", "C"}, {"p"});
  g.add_owner(0, 0);
  const auto groups = merge_routines(g);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(MergeRoutines, CrossEdgeMerges) {
  InfluenceGraph g({"A", "B", "C"}, {"p"});
  g.add_owner(0, 1);
  g.set_influence(0, 2, 0.5);  // B's param influences C
  const auto groups = merge_routines(g);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 2}));
}

TEST(MergeRoutines, TransitiveMerge) {
  InfluenceGraph g({"A", "B", "C"}, {"pa", "pb"});
  g.add_owner(0, 0);
  g.add_owner(1, 1);
  g.set_influence(0, 1, 0.3);  // A -> B
  g.set_influence(1, 2, 0.3);  // B -> C
  const auto groups = merge_routines(g);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(MergeRoutines, PrunedGraphControlsMerging) {
  InfluenceGraph g({"A", "B"}, {"p"});
  g.add_owner(0, 0);
  g.set_influence(0, 1, 0.15);
  EXPECT_EQ(merge_routines(g.pruned(0.25)).size(), 2u);
  EXPECT_EQ(merge_routines(g.pruned(0.10)).size(), 1u);
}

}  // namespace
}  // namespace tunekit::graph
