// In-process integration tests for the HTTP server + REST API + client:
// a real socket server on an ephemeral port, driven by net::Client and, for
// the protocol-abuse cases, by a raw TCP socket sending malformed bytes.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "net/client.hpp"
#include "net/rest_api.hpp"
#include "net/session_manager.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {
namespace {

json::Value tiny_session_spec(const std::string& id) {
  json::Object spec;
  spec["id"] = json::Value(id);
  spec["backend"] = json::Value(std::string("random"));
  spec["max_evals"] = json::Value(3);
  spec["space"] = json::parse(
      "{\"params\":[{\"name\":\"x\",\"kind\":\"real\",\"lo\":0,\"hi\":1,"
      "\"default\":0.5}]}");
  return json::Value(std::move(spec));
}

/// Server + manager + api wired together on 127.0.0.1:<ephemeral>.
struct TestServer {
  obs::Telemetry telemetry;
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<RestApi> api;
  std::unique_ptr<HttpServer> server;

  explicit TestServer(ServerOptions options = {}) {
    telemetry.enable();
    SessionManagerOptions mopt;
    mopt.telemetry = &telemetry;
    manager = std::make_unique<SessionManager>(mopt);
    api = std::make_unique<RestApi>(*manager, &telemetry);
    options.host = "127.0.0.1";
    options.port = 0;
    options.telemetry = &telemetry;
    server = std::make_unique<HttpServer>(
        options, [this](const HttpRequest& r) { return api->handle(r); });
    server->start();
  }

  ~TestServer() { server->shutdown(); }

  Client client() { return Client("127.0.0.1", server->port(), 10.0); }
};

/// Send raw bytes on a fresh TCP connection, return everything the server
/// answers until it closes (or the 2s receive timeout fires).
std::string raw_exchange(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(NetServer, HealthzAndMetrics) {
  TestServer ts;
  Client client = ts.client();
  EXPECT_TRUE(client.healthy());
  const std::string metrics = client.metrics();
  EXPECT_NE(metrics.find("tunekit_http_requests_total"), std::string::npos)
      << "the server's own requests must show up in /metrics";
}

TEST(NetServer, FullSessionCycleOverOneKeepAliveConnection) {
  TestServer ts;
  Client client = ts.client();
  const json::Value created = client.create_session(tiny_session_spec("cycle"));
  EXPECT_EQ(created.at("id").as_string(), "cycle");

  std::size_t completed = 0;
  while (completed < 3) {
    const json::Value batch = client.ask("cycle", 2);
    const auto& cands = batch.at("candidates").as_array();
    if (cands.empty()) break;
    for (const auto& cand : cands) {
      json::Object tell;
      tell["id"] = cand.at("id");
      tell["value"] = json::Value(cand.at("config").at("x").as_number());
      const json::Value reply = client.tell("cycle", json::Value(std::move(tell)));
      EXPECT_TRUE(reply.at("accepted").as_bool());
      ++completed;
    }
  }
  const json::Value report = client.report("cycle");
  EXPECT_EQ(report.at("state").as_string(), "exhausted");
  EXPECT_TRUE(report.contains("best_value"));

  const json::Value closed = client.close_session("cycle");
  EXPECT_EQ(closed.at("id").as_string(), "cycle");
  // Closed means gone: the id now 404s.
  const ClientResponse after = client.request("GET", "/v1/sessions/cycle/report");
  EXPECT_EQ(after.status, 404);
}

TEST(NetServer, FailureOutcomesRoundTrip) {
  TestServer ts;
  Client client = ts.client();
  client.create_session(tiny_session_spec("fail"));
  const json::Value batch = client.ask("fail", 1);
  const json::Value& id = batch.at("candidates").as_array().at(0).at("id");

  json::Object tell;
  tell["id"] = id;
  tell["outcome"] = json::Value(std::string("timed-out"));
  const json::Value reply = client.tell("fail", json::Value(std::move(tell)));
  EXPECT_TRUE(reply.at("accepted").as_bool());
  const json::Value report = client.report("fail");
  EXPECT_DOUBLE_EQ(
      report.at("metrics").at("outcomes").at("timed-out").as_number(), 1.0);
}

TEST(NetServer, ClientErrorsDoNotKillTheServer) {
  TestServer ts;
  Client client = ts.client();

  // Unknown route.
  EXPECT_EQ(client.request("GET", "/nope").status, 404);
  // Wrong method.
  EXPECT_EQ(client.request("DELETE", "/healthz").status, 405);
  // Malformed JSON body.
  EXPECT_EQ(client.request("POST", "/v1/sessions", "{not json").status, 400);
  // Valid JSON, bad spec.
  EXPECT_EQ(client.request("POST", "/v1/sessions", "{\"app\":\"nope\"}").status, 422);
  // Unknown session.
  EXPECT_EQ(client.request("POST", "/v1/sessions/ghost/ask", "{}").status, 404);

  // Raw protocol garbage on fresh connections.
  EXPECT_NE(raw_exchange(ts.server->port(), "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(raw_exchange(ts.server->port(),
                         "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .find("501"),
            std::string::npos);

  // After all that abuse the server still works.
  EXPECT_TRUE(client.healthy());
}

TEST(NetServer, OversizedBodyIs413) {
  ServerOptions options;
  options.limits.max_body_bytes = 256;
  TestServer ts(options);
  Client client = ts.client();
  const std::string big(1024, 'x');
  const ClientResponse r = client.request("POST", "/v1/sessions", big);
  EXPECT_EQ(r.status, 413);
}

TEST(NetServer, ShutdownDrainsAndStopsAccepting) {
  auto ts = std::make_unique<TestServer>();
  const std::uint16_t port = ts->server->port();
  {
    Client client("127.0.0.1", port, 5.0);
    EXPECT_TRUE(client.healthy());
  }
  ts->server->shutdown();
  EXPECT_FALSE(ts->server->running());
  Client client("127.0.0.1", port, 1.0);
  EXPECT_FALSE(client.healthy()) << "a drained server must not accept connections";
}

}  // namespace
}  // namespace tunekit::net
