#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/table.hpp"

namespace tunekit {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"A", "B"});
  t.add_row({"very-long-cell", "x"});
  const std::string s = t.str();
  // Every line must have the same length (alignment).
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    const std::size_t len = next - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = next + 1;
  }
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(-1.0, 0), "-1");
  EXPECT_EQ(Table::pct(0.614, 1), "61.4%");
  EXPECT_EQ(Table::pct(1.2, 0), "120%");
}

TEST(Log, LevelFiltering) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These should be no-ops (manually verified not to crash).
  log_debug("dropped ", 1);
  log_info("dropped ", 2);
  log_warn("dropped ", 3);
  set_log_level(LogLevel::Off);
  log_error("also dropped");
  set_log_level(old_level);
}

TEST(Log, ConcatenatesArguments) {
  // Exercised via the Off level: formatting must not crash on mixed types.
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::Off);
  log_error("a", 1, 2.5, std::string("b"));
  set_log_level(old_level);
}

}  // namespace
}  // namespace tunekit
