#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "minislater/minislater_app.hpp"

namespace tunekit::minislater {
namespace {

TEST(Fft1d, MatchesAnalyticDft) {
  // Compare against a direct O(n^2) DFT on random data.
  const std::size_t n = 16;
  tunekit::Rng rng(1);
  std::vector<Complex> data(n), reference(n);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += data[j] * Complex(std::cos(angle), std::sin(angle));
    }
    reference[k] = acc;
  }
  fft1d(data.data(), n, -1);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), reference[k].real(), 1e-9);
    EXPECT_NEAR(data[k].imag(), reference[k].imag(), 1e-9);
  }
}

TEST(Fft1d, RoundTripRecoversInput) {
  const std::size_t n = 64;
  tunekit::Rng rng(2);
  std::vector<Complex> data(n), original;
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  original = data;
  fft1d(data.data(), n, -1);
  fft1d(data.data(), n, +1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / static_cast<double>(n), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag() / static_cast<double>(n), original[i].imag(), 1e-9);
  }
}

TEST(Fft1d, ParsevalHolds) {
  const std::size_t n = 32;
  tunekit::Rng rng(3);
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(c);
  }
  fft1d(data.data(), n, -1);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-8);
}

TEST(Fft1d, ValidatesInput) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft1d(data.data(), 12, -1), std::invalid_argument);
  EXPECT_THROW(fft1d(data.data(), 8, 0), std::invalid_argument);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(TransposeXy, IsInvolutionAndCorrect) {
  Grid3d grid(8);
  tunekit::Rng rng(4);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid.data()[i] = Complex(rng.uniform(), rng.uniform());
  }
  Grid3d original = grid;
  transpose_xy(grid, 4);
  // Element check.
  EXPECT_EQ(grid.at(1, 2, 3), original.at(2, 1, 3));
  EXPECT_EQ(grid.at(7, 0, 5), original.at(0, 7, 5));
  transpose_xy(grid, 3);  // different block size must still invert
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.data()[i], original.data()[i]);
  }
}

TEST(Fft3d, RoundTripAnyTuning) {
  // The tuning knobs change the access pattern, never the result.
  Grid3d grid(8);
  tunekit::Rng rng(5);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid.data()[i] = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  const Grid3d original = grid;
  const double norm = static_cast<double>(grid.size());
  for (const Fft3dTuning tuning : {Fft3dTuning{4, 1}, Fft3dTuning{16, 8},
                                   Fft3dTuning{64, 16}}) {
    Grid3d work = original;
    fft3d(work, -1, tuning);
    fft3d(work, +1, tuning);
    double max_err = 0.0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      max_err = std::max(max_err,
                         std::abs(work.data()[i] / norm - original.data()[i]));
    }
    EXPECT_LT(max_err, 1e-9);
  }
}

TEST(Fft3d, TuningInvariantResult) {
  Grid3d a(8), b(8);
  tunekit::Rng rng(6);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Complex v(rng.uniform(), rng.uniform());
    a.data()[i] = v;
    b.data()[i] = v;
  }
  fft3d(a, -1, {4, 1});
  fft3d(b, -1, {32, 16});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a.data()[i] - b.data()[i]), 0.0, 1e-9);
  }
}

TEST(Kernels, PackUnpackRoundTrip) {
  const std::size_t count = 100, stride = 2;
  tunekit::Rng rng(7);
  std::vector<Complex> src(count * stride), packed(count), back(count * stride);
  for (auto& c : src) c = Complex(rng.uniform(), rng.uniform());
  pack_strided(src.data(), packed.data(), count, stride, 16);
  unpack_strided(packed.data(), back.data(), count, stride, 7);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(back[i * stride], src[i * stride]);
  }
  EXPECT_THROW(pack_strided(src.data(), packed.data(), count, stride, 0),
               std::invalid_argument);
}

TEST(Kernels, UnrollVariantsAgree) {
  const std::size_t count = 101;  // odd: exercises the tail loop
  tunekit::Rng rng(8);
  std::vector<Complex> base(count), other(count);
  for (std::size_t i = 0; i < count; ++i) {
    base[i] = Complex(rng.uniform(), rng.uniform());
    other[i] = Complex(rng.uniform(), rng.uniform());
  }
  std::vector<Complex> ref = base;
  pairwise_multiply(ref.data(), other.data(), count, 1);
  for (int u : {2, 4, 8}) {
    std::vector<Complex> v = base;
    pairwise_multiply(v.data(), other.data(), count, u);
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(v[i], ref[i]);
  }
  EXPECT_THROW(pairwise_multiply(base.data(), other.data(), count, 3),
               std::invalid_argument);

  std::vector<Complex> s_ref = base;
  scale(s_ref.data(), count, 0.5, 1);
  for (int u : {2, 4, 8}) {
    std::vector<Complex> v = base;
    scale(v.data(), count, 0.5, u);
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(v[i], s_ref[i]);
  }
}

class MiniPipelineFixture : public ::testing::Test {
 protected:
  MiniPipelineFixture() : pipeline_(16, 2, /*reps=*/1) {}
  MiniSlaterPipeline pipeline_;
};

TEST_F(MiniPipelineFixture, RunsAndTimesAllRegions) {
  const auto t = pipeline_.run(PipelineTuning{});
  EXPECT_GT(t.group1, 0.0);
  EXPECT_GT(t.group2, 0.0);
  EXPECT_GT(t.group3, 0.0);
  EXPECT_GE(t.slater, t.group1 + t.group2 + t.group3 - 1e-6);
  EXPECT_GT(t.total, t.slater);
}

TEST_F(MiniPipelineFixture, TuningNeverChangesTheNumbers) {
  // The checksum of the accumulated result is tuning-invariant: tuning may
  // only change performance, never correctness.
  const double reference = pipeline_.run(PipelineTuning{}).checksum;
  PipelineTuning fancy;
  fancy.pack_tile = 4096;
  fancy.transpose_block = 64;
  fancy.z_tile = 16;
  fancy.pair_unroll = 8;
  fancy.scale_unroll = 4;
  fancy.batch = 2;
  EXPECT_NEAR(pipeline_.run(fancy).checksum, reference, 1e-9 * std::abs(reference));
}

TEST_F(MiniPipelineFixture, RejectsInvalidTuning) {
  PipelineTuning bad;
  bad.pair_unroll = 3;
  EXPECT_FALSE(pipeline_.valid(bad));
  EXPECT_THROW(pipeline_.run(bad), std::invalid_argument);
  bad = PipelineTuning{};
  bad.pack_tile = 0;
  EXPECT_FALSE(pipeline_.valid(bad));
}

TEST(MiniSlaterApp, SpaceAndOwnershipStructure) {
  MiniSlaterApp app(16, 2, 1);
  EXPECT_EQ(app.space().size(), 6u);
  const auto routines = app.routines();
  ASSERT_EQ(routines.size(), 3u);
  // pack_tile and the FFT knobs are shared between Groups 1 and 3.
  for (std::size_t p : {MiniSlaterApp::kPackTile, MiniSlaterApp::kTransposeBlock,
                        MiniSlaterApp::kZTile}) {
    EXPECT_NE(std::find(routines[0].params.begin(), routines[0].params.end(), p),
              routines[0].params.end());
    EXPECT_NE(std::find(routines[2].params.begin(), routines[2].params.end(), p),
              routines[2].params.end());
  }
  EXPECT_EQ(routines[1].params, (std::vector<std::size_t>{MiniSlaterApp::kPairUnroll}));
  EXPECT_FALSE(app.thread_safe());  // real timing
}

TEST(MiniSlaterApp, EvaluatesMeasuredRegions) {
  MiniSlaterApp app(16, 2, 1);
  const auto t = app.evaluate_regions(app.space().defaults());
  for (const char* region : {"Group1", "Group2", "Group3", "Slater"}) {
    ASSERT_TRUE(t.regions.count(region));
    EXPECT_GT(t.regions.at(region), 0.0);
  }
  EXPECT_GT(t.total, 0.0);
}

TEST(MiniSlaterApp, DecodeMapsKnobs) {
  MiniSlaterApp app(16, 2, 1);
  auto config = app.space().defaults();
  config[MiniSlaterApp::kPairUnroll] = 8;
  config[MiniSlaterApp::kBatch] = 4;
  const auto tuning = app.decode(config);
  EXPECT_EQ(tuning.pair_unroll, 8);
  EXPECT_EQ(tuning.batch, 4);
  EXPECT_THROW(app.decode({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tunekit::minislater
