#include "linalg/vecops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tunekit::linalg {

namespace {
void check_same_size(std::size_t a, std::size_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}
}  // namespace

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  check_same_size(a.size(), b.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  check_same_size(a.size(), b.size(), "squared_distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double scaled_squared_distance(const std::vector<double>& a, const std::vector<double>& b,
                               const std::vector<double>& scale) {
  check_same_size(a.size(), b.size(), "scaled_squared_distance");
  check_same_size(a.size(), scale.size(), "scaled_squared_distance(scale)");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / scale[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b) {
  check_same_size(a.size(), b.size(), "add");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b) {
  check_same_size(a.size(), b.size(), "sub");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void clamp_inplace(std::vector<double>& v, double lo, double hi) {
  for (double& x : v) x = std::clamp(x, lo, hi);
}

}  // namespace tunekit::linalg
