#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "common/log.hpp"

namespace tunekit::linalg {

namespace {

/// Attempt a plain Cholesky; returns false if a non-positive pivot appears.
bool try_cholesky(const Matrix& a, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l.row_ptr(i);
      const double* lj = l.row_ptr(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s / ljj;
    }
  }
  return true;
}

}  // namespace

Matrix cholesky(const Matrix& a, double initial_jitter, double max_jitter,
                double* jitter_used) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: matrix not square");
  Matrix l;
  if (try_cholesky(a, l)) {
    if (jitter_used) *jitter_used = 0.0;
    return l;
  }
  // Scale the jitter by the mean diagonal so it is meaningful for matrices
  // of any magnitude.
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += a(i, i);
  mean_diag = std::abs(mean_diag) / static_cast<double>(a.rows());
  if (mean_diag == 0.0) mean_diag = 1.0;

  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix aj = a;
    const double eps = jitter * mean_diag;
    for (std::size_t i = 0; i < aj.rows(); ++i) aj(i, i) += eps;
    if (try_cholesky(aj, l)) {
      if (jitter_used) *jitter_used = eps;
      log_debug("cholesky: succeeded with jitter ", eps);
      return l;
    }
  }
  throw std::runtime_error("cholesky: matrix not positive definite even with jitter");
}

std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= row[k] * y[k];
    y[i] = s / row[i];
  }
  return y;
}

std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& y) {
  const std::size_t n = l.rows();
  if (y.size() != n) throw std::invalid_argument("solve_lower_transpose: size mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_with_cholesky(const Matrix& l, const std::vector<double>& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

}  // namespace tunekit::linalg
