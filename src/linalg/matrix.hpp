#pragma once
// Dense row-major matrix of doubles. Small, cache-friendly, exactly what the
// Gaussian-process surrogate needs (N up to a few hundred evaluations); no
// external BLAS dependency.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace tunekit::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Contiguous view of row r.
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product (throws on shape mismatch).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product.
  std::vector<double> mul(const std::vector<double>& v) const;

  /// Max absolute element difference; both must share shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tunekit::linalg
