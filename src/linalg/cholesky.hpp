#pragma once
// Cholesky factorization with adaptive jitter, plus triangular and SPD
// solves. The Gaussian-process surrogate is built entirely on these.

#include <vector>

#include "linalg/matrix.hpp"

namespace tunekit::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix.
/// If the factorization fails (matrix not numerically PD), a diagonal
/// "jitter" is added and escalated up to `max_jitter`; throws
/// std::runtime_error if that is still insufficient.
///
/// `jitter_used`, if non-null, receives the jitter that succeeded (0 when
/// none was needed) — the GP logs it to explain conditioning issues.
Matrix cholesky(const Matrix& a, double initial_jitter = 1e-10,
                double max_jitter = 1e-2, double* jitter_used = nullptr);

/// Solve L y = b for lower-triangular L.
std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b);

/// Solve L^T x = y for lower-triangular L.
std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& y);

/// Solve A x = b given the Cholesky factor L of A.
std::vector<double> solve_with_cholesky(const Matrix& l, const std::vector<double>& b);

/// log |A| from its Cholesky factor: 2 Σ log L_ii.
double log_det_from_cholesky(const Matrix& l);

}  // namespace tunekit::linalg
