#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace tunekit::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return std::vector<double>(row_ptr(r), row_ptr(r) + cols_);
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("Matrix product: shape mismatch");
  Matrix out(a.rows(), b.cols());
  // ikj loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      double* orow = out.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::mul(const std::vector<double>& v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::mul: shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_ptr(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace tunekit::linalg
