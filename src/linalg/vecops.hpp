#pragma once
// Small vector helpers shared by the GP, acquisition optimizers, and stats.

#include <cstddef>
#include <vector>

namespace tunekit::linalg {

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm2(const std::vector<double>& v);
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Weighted squared distance Σ ((a_i - b_i) / scale_i)^2 — the workhorse of
/// ARD kernels.
double scaled_squared_distance(const std::vector<double>& a, const std::vector<double>& b,
                               const std::vector<double>& scale);

std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b);
std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b);
std::vector<double> scale(const std::vector<double>& a, double s);

/// Elementwise clamp into [lo, hi].
void clamp_inplace(std::vector<double>& v, double lo, double hi);

}  // namespace tunekit::linalg
