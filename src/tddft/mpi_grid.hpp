#pragma once
// MPI decomposition model (paper Fig. 3): the wavefunction is distributed
// over an nspb x nkpb x nstb rank grid (ngb = 1 in the GPU version). The
// model provides grid validity, local loop extents, load-imbalance factors
// from non-divisible decompositions, and allreduce cost.

#include <cstddef>

#include "tddft/physical_system.hpp"

namespace tunekit::tddft {

struct MpiGrid {
  int nstb = 1;
  int nkpb = 1;
  int nspb = 1;

  int ranks() const { return nstb * nkpb * nspb; }
};

class MpiGridModel {
 public:
  /// `total_ranks`: the allocation bound (paper: 10 nodes x 4 GPU ranks).
  explicit MpiGridModel(int total_ranks, double net_latency_us = 10.0,
                        double net_bandwidth_gbs = 22.0);

  int total_ranks() const { return total_ranks_; }

  /// Grid validity: positive dims, product within the allocation, and no
  /// dimension exceeding its wavefunction extent.
  bool valid(const MpiGrid& grid, const PhysicalSystem& system) const;

  /// Local loop extents on the most-loaded rank (ceil division).
  int bands_loc(const MpiGrid& grid, const PhysicalSystem& system) const;
  int kpoints_loc(const MpiGrid& grid, const PhysicalSystem& system) const;
  int spins_loc(const MpiGrid& grid, const PhysicalSystem& system) const;

  /// Ratio of the most-loaded rank's items to the perfectly balanced share
  /// (1.0 when parts divides items).
  static double imbalance(int items, int parts);

  /// Allreduce of `bytes` over `ranks` ranks (recursive-doubling model).
  double allreduce_seconds(std::size_t bytes, int ranks) const;

 private:
  int total_ranks_;
  double net_latency_s_;
  double net_bandwidth_bs_;
};

}  // namespace tunekit::tddft
