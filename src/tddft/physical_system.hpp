#pragma once
// Physical systems driving the RT-TDDFT workload (paper §VII). The
// wavefunction is a 4-D (spin, k-point, band, G-vector) object; the
// dimensions below determine every workload size in the simulator.

#include <cstddef>
#include <string>

namespace tunekit::tddft {

struct PhysicalSystem {
  std::string name;
  int nspin = 1;
  int nkpoints = 1;
  int nbands = 64;
  /// Double-complex elements per band in the FFT grid.
  std::size_t fft_size = 1;

  /// Case Study 1: magnesium porphyrin molecule (0D). 1 spin, 1 k-point,
  /// 64 bands, 3M double-complex FFT elements.
  static PhysicalSystem case_study_1();

  /// Case Study 2: 4x4 hexagonal boron-nitride slab (2D periodic). 1 spin,
  /// 36 k-points, 64 bands, 620k double-complex FFT elements.
  static PhysicalSystem case_study_2();

  /// Bytes of one band's wavefunction slice (16 bytes per double complex).
  std::size_t band_bytes() const { return fft_size * 16; }
};

}  // namespace tunekit::tddft
