#pragma once
// Host<->device transfer model over PCIe: bandwidth term plus a per-transfer
// latency, so batching several bands into one copy pays the latency once —
// one of the two mechanisms behind nbatches' outsized influence.

#include <cstddef>

#include "tddft/gpu_arch.hpp"

namespace tunekit::tddft {

class TransferModel {
 public:
  explicit TransferModel(const GpuArch& arch) : arch_(arch) {}

  /// Seconds to move `bytes` in `n_transfers` separate copies.
  double seconds(std::size_t bytes, int n_transfers = 1) const;

 private:
  GpuArch arch_;
};

}  // namespace tunekit::tddft
