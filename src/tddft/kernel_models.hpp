#pragma once
// Analytical performance models of the six GPU kernels in the offloaded
// Slater-Determinant computation (paper §V-A): cuFFT-3D, cuVec2Zvec,
// cuZcopy, cuDscal, cuPairwise, cuZvec2Vec.
//
// The five copy/compute kernels are memory-bandwidth bound; their runtime
// responds to the three tuning knobs the paper exposes per kernel —
// unrolling factor, threadblock size, and active threadblocks per SM —
// through an occupancy/ILP/quantization model. cuFFT has no per-kernel
// knobs (only nbatches/nstreams act on it), matching the paper.
//
// Calibration targets the paper's measured GPU-time split at default tuning
// (cuFFT 61.4%, cuZcopy 14.2%, cuVec2Zvec 12.4%, cuPairwise 4.9%, cuDscal
// 4.2%, cuZvec2Vec 2.9%); tests assert the split within tolerance.

#include <cstddef>
#include <map>
#include <string>

#include "tddft/gpu_arch.hpp"

namespace tunekit::tddft {

/// The three per-kernel tuning knobs of Table IV.
struct KernelTuning {
  int unroll = 1;
  int tb = 256;
  int tb_sm = 2;
};

enum class KernelId { Vec2Zvec, Zcopy, Dscal, Pairwise, Zvec2Vec };

const char* to_string(KernelId id);

/// Memory-bound kernel model.
class KernelModel {
 public:
  struct Params {
    /// Bytes moved per FFT-grid element processed (reads + writes).
    double bytes_per_element = 16.0;
    /// Peak fraction of memory bandwidth this kernel's access pattern can
    /// sustain at ideal tuning (strided remaps are lower than streaming).
    double base_efficiency = 0.8;
    /// Unroll factor with the best ILP/register-pressure trade-off.
    int preferred_unroll = 4;
    /// Efficiency loss per octave of distance from the preferred unroll.
    double unroll_penalty = 0.10;
    /// Scheduling overhead weight for small threadblocks.
    double small_tb_penalty = 0.12;
    /// Batch amortization constant: efficiency = b / (b + c).
    double batch_constant = 6.0;
  };

  KernelModel(KernelId id, const GpuArch& arch, Params params);

  KernelId id() const { return id_; }
  const Params& params() const { return params_; }

  /// Seconds for one launch processing `elements` grid elements with
  /// `batch` bands packed into the invocation. `interference` >= 1 scales
  /// the memory path (cross-kernel cache pressure).
  double launch_seconds(std::size_t elements, int batch, const KernelTuning& tuning,
                        double interference = 1.0) const;

  /// The composite efficiency factor in (0, 1]; exposed for tests.
  double efficiency(const KernelTuning& tuning, int batch,
                    std::size_t elements) const;

 private:
  KernelId id_;
  GpuArch arch_;
  Params params_;
};

/// cuFFT-3D model: runtime from 5 N log2 N flops at a batch-dependent
/// effective throughput.
class FftModel {
 public:
  explicit FftModel(const GpuArch& arch, double batch_constant = 3.0);

  /// Seconds for one batched 3D-FFT launch over `batch` bands of
  /// `fft_size` elements.
  double launch_seconds(std::size_t fft_size, int batch) const;

 private:
  GpuArch arch_;
  double batch_constant_;
};

/// Default-calibrated models for all five tunable kernels.
std::map<KernelId, KernelModel> make_default_kernels(const GpuArch& arch);

}  // namespace tunekit::tddft
