#pragma once
// GPU architecture model (NVIDIA A100-like, paper §VII). Provides the
// occupancy calculation and the hardware constraints the tuning space must
// respect: at most 32 active threadblocks per SM and tb * tb_sm bounded by
// the maximum resident threads per SM.

#include <string>

namespace tunekit::tddft {

struct GpuArch {
  std::string name = "A100";
  int num_sms = 108;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  /// HBM2e effective bandwidth.
  double mem_bandwidth_gbs = 1555.0;
  /// PCIe 4.0 x16 effective host<->device bandwidth.
  double pcie_bandwidth_gbs = 25.0;
  /// Per-transfer latency (pinned memory, driver overhead).
  double transfer_latency_us = 20.0;
  /// Kernel launch overhead.
  double kernel_launch_us = 5.0;
  double l2_bytes = 40.0 * 1024 * 1024;
  /// Effective FP64 throughput for batched Z2Z 3D-FFT workloads.
  double fft_gflops = 1280.0;

  static GpuArch a100();

  /// True if a (tb, tb_sm) pair is resident on this architecture:
  /// tb * tb_sm <= max resident threads, tb <= max threads per block,
  /// tb_sm <= max blocks per SM, tb a multiple of the warp size.
  bool valid_kernel_config(int tb, int tb_sm) const;

  /// Fraction of the SM's thread capacity occupied by (tb, tb_sm), in
  /// (0, 1].
  double occupancy(int tb, int tb_sm) const;
};

}  // namespace tunekit::tddft
