#include "tddft/physical_system.hpp"

namespace tunekit::tddft {

PhysicalSystem PhysicalSystem::case_study_1() {
  PhysicalSystem s;
  s.name = "CS1: Mg-porphyrin molecule";
  s.nspin = 1;
  s.nkpoints = 1;
  s.nbands = 64;
  s.fft_size = 3'000'000;
  return s;
}

PhysicalSystem PhysicalSystem::case_study_2() {
  PhysicalSystem s;
  s.name = "CS2: 4x4 h-BN slab";
  s.nspin = 1;
  s.nkpoints = 36;
  s.nbands = 64;
  s.fft_size = 620'000;
  return s;
}

}  // namespace tunekit::tddft
