#pragma once
// The original CPU/MPI Slater-Determinant pipeline (paper §V): before GPU
// offloading, QBox computes the 3D FFT *distributed* over ngb MPI ranks —
// a 2D FFT, a transpose & padding step (all-to-all among the ngb ranks),
// and a 1D FFT. The paper profiles 40-50% of the runtime in communication
// primitives, dominated by this transpose.
//
// This model provides the baseline the GPU version (slater_pipeline.hpp)
// replaced: the GPU refactoring substitutes the nqb ranks with a single-rank
// shared-memory 3D FFT (nqb = 1), which is why the MPI grid must be re-tuned
// after offloading. bench/cpu_vs_gpu reproduces the communication share and
// the offloading speedup.

#include <cstdint>

#include "tddft/mpi_grid.hpp"
#include "tddft/physical_system.hpp"

namespace tunekit::tddft {

/// CPU-side machine model (Perlmutter-like node: one EPYC 7763 socket).
struct CpuArch {
  std::string name = "EPYC 7763";
  int cores = 64;
  /// Effective FFT throughput per rank with OpenMP threads (GFLOP/s).
  double fft_gflops = 120.0;
  /// Memory bandwidth per rank (GB/s) for copy/scale phases.
  double mem_bandwidth_gbs = 204.8;
  /// Interconnect per-rank bandwidth (GB/s) and latency for the
  /// transpose all-to-all (Slingshot-11-like).
  double net_bandwidth_gbs = 22.0;
  double net_latency_us = 10.0;

  static CpuArch perlmutter_cpu();
};

/// MPI grid for the CPU version: the GPU grid plus the ngb (G-vector/plane
/// wave) dimension over which the 3D FFT is distributed.
struct CpuGrid {
  int nstb = 1;
  int nkpb = 1;
  int nspb = 1;
  int nqb = 8;

  int ranks() const { return nstb * nkpb * nspb * nqb; }
};

struct CpuBreakdown {
  /// Per outer iteration, seconds.
  double fft_compute = 0.0;
  double transpose_comm = 0.0;
  double pointwise = 0.0;
  double reductions = 0.0;
  double slater = 0.0;
  double total = 0.0;

  /// Fraction of the Slater region spent in communication primitives
  /// (the paper measures 40-50% for the whole run).
  double comm_share() const {
    return slater > 0.0 ? (transpose_comm + reductions) / slater : 0.0;
  }
};

class CpuPipeline {
 public:
  CpuPipeline(PhysicalSystem system, CpuArch arch, int total_ranks,
              std::uint64_t noise_seed = 0);

  const PhysicalSystem& system() const { return system_; }

  bool valid(const CpuGrid& grid) const;

  /// Simulate one outer iteration of the CPU pipeline.
  CpuBreakdown simulate(const CpuGrid& grid) const;

 private:
  PhysicalSystem system_;
  CpuArch arch_;
  MpiGridModel mpi_;
  std::uint64_t noise_seed_;
};

}  // namespace tunekit::tddft
