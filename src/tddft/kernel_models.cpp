#include "tddft/kernel_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tunekit::tddft {

const char* to_string(KernelId id) {
  switch (id) {
    case KernelId::Vec2Zvec: return "cuVec2Zvec";
    case KernelId::Zcopy: return "cuZcopy";
    case KernelId::Dscal: return "cuDscal";
    case KernelId::Pairwise: return "cuPairwise";
    case KernelId::Zvec2Vec: return "cuZvec2Vec";
  }
  return "?";
}

KernelModel::KernelModel(KernelId id, const GpuArch& arch, Params params)
    : id_(id), arch_(arch), params_(params) {
  if (params_.bytes_per_element <= 0 || params_.base_efficiency <= 0) {
    throw std::invalid_argument("KernelModel: bad parameters");
  }
}

double KernelModel::efficiency(const KernelTuning& tuning, int batch,
                               std::size_t elements) const {
  if (!arch_.valid_kernel_config(tuning.tb, tuning.tb_sm)) {
    throw std::invalid_argument("KernelModel: invalid (tb, tb_sm) configuration");
  }
  // Occupancy: saturating benefit of resident threads hiding memory
  // latency; a floor reflects the latency hiding ILP provides even with few
  // resident warps.
  const double occ = arch_.occupancy(tuning.tb, tuning.tb_sm);
  const double occ_eff = 1.18 * (occ + 0.08) / (occ + 0.29);

  // Unrolling: ILP gain up to the preferred factor, register pressure past
  // it. Penalty per octave of distance.
  const double octaves = std::abs(std::log2(static_cast<double>(tuning.unroll)) -
                                  std::log2(static_cast<double>(params_.preferred_unroll)));
  const double unroll_eff = std::max(0.5, 1.0 - params_.unroll_penalty * octaves);

  // Small threadblocks pay block-scheduling overhead.
  const double tb_eff =
      std::max(0.4, 1.0 - params_.small_tb_penalty * (64.0 / static_cast<double>(tuning.tb)));

  // Tail quantization: partially filled waves waste capacity.
  const auto total_work = static_cast<double>(elements) * std::max(1, batch);
  const double work_threads = total_work / static_cast<double>(tuning.unroll);
  const double blocks = std::ceil(work_threads / static_cast<double>(tuning.tb));
  const double capacity = static_cast<double>(arch_.num_sms) * tuning.tb_sm;
  const double waves = std::max(1.0, std::ceil(blocks / capacity));
  const double quant_eff = std::min(1.0, blocks / (waves * capacity));

  // Batching amortizes per-invocation underutilization.
  const double b = static_cast<double>(std::max(1, batch));
  const double batch_eff = b / (b + params_.batch_constant);

  const double eff =
      params_.base_efficiency * occ_eff * unroll_eff * tb_eff * quant_eff * batch_eff;
  return std::clamp(eff, 1e-3, 1.0);
}

double KernelModel::launch_seconds(std::size_t elements, int batch,
                                   const KernelTuning& tuning, double interference) const {
  const double bytes =
      params_.bytes_per_element * static_cast<double>(elements) * std::max(1, batch);
  const double eff = efficiency(tuning, batch, elements);
  const double transfer_time = bytes / (arch_.mem_bandwidth_gbs * 1e9 * eff);
  return transfer_time * std::max(1.0, interference) + arch_.kernel_launch_us * 1e-6;
}

FftModel::FftModel(const GpuArch& arch, double batch_constant)
    : arch_(arch), batch_constant_(batch_constant) {}

double FftModel::launch_seconds(std::size_t fft_size, int batch) const {
  const double n = static_cast<double>(fft_size);
  const double flops = 5.0 * n * std::log2(std::max(2.0, n)) * std::max(1, batch);
  const double b = static_cast<double>(std::max(1, batch));
  const double batch_eff = b / (b + batch_constant_);
  const double throughput = arch_.fft_gflops * 1e9 * batch_eff;
  return flops / throughput + arch_.kernel_launch_us * 1e-6;
}

std::map<KernelId, KernelModel> make_default_kernels(const GpuArch& arch) {
  std::map<KernelId, KernelModel> kernels;

  // Calibrated so the default-tuning GPU-time split matches the paper's
  // measured shares (see kernel_models.hpp). bytes_per_element are in bytes
  // per double-complex FFT-grid element touched by the kernel.
  KernelModel::Params vec;  // domain-structure remap: strided, low peak
  vec.bytes_per_element = 32.0;
  vec.base_efficiency = 0.63;
  vec.preferred_unroll = 4;
  vec.batch_constant = 6.0;
  kernels.emplace(KernelId::Vec2Zvec, KernelModel(KernelId::Vec2Zvec, arch, vec));

  KernelModel::Params zcopy;  // transpose & padding copies
  zcopy.bytes_per_element = 32.0;
  zcopy.base_efficiency = 0.97;
  zcopy.preferred_unroll = 2;
  zcopy.batch_constant = 6.0;
  kernels.emplace(KernelId::Zcopy, KernelModel(KernelId::Zcopy, arch, zcopy));

  KernelModel::Params dscal;  // coefficient scaling, streaming
  dscal.bytes_per_element = 8.0;
  dscal.base_efficiency = 0.88;
  dscal.preferred_unroll = 4;
  dscal.batch_constant = 5.0;
  kernels.emplace(KernelId::Dscal, KernelModel(KernelId::Dscal, arch, dscal));

  KernelModel::Params pair;  // pairwise multiplication
  pair.bytes_per_element = 16.0;
  pair.base_efficiency = 0.80;
  pair.preferred_unroll = 4;
  pair.batch_constant = 6.0;
  kernels.emplace(KernelId::Pairwise, KernelModel(KernelId::Pairwise, arch, pair));

  KernelModel::Params zvec;  // back-conversion, truncating write
  zvec.bytes_per_element = 12.8;
  zvec.base_efficiency = 0.91;
  zvec.preferred_unroll = 2;
  zvec.batch_constant = 5.0;
  kernels.emplace(KernelId::Zvec2Vec, KernelModel(KernelId::Zvec2Vec, arch, zvec));

  return kernels;
}

}  // namespace tunekit::tddft
