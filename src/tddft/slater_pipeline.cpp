#include "tddft/slater_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace tunekit::tddft {

TddftConfig TddftConfig::defaults() {
  TddftConfig c;
  c.grid = {4, 1, 1};
  c.nstreams = 1;
  c.nbatches = 16;
  const KernelTuning default_tuning{1, 256, 2};
  for (KernelId id : {KernelId::Vec2Zvec, KernelId::Zcopy, KernelId::Dscal,
                      KernelId::Pairwise, KernelId::Zvec2Vec}) {
    c.tunings[id] = default_tuning;
  }
  return c;
}

SlaterPipeline::SlaterPipeline(PhysicalSystem system, GpuArch arch, int total_ranks,
                               PipelineTunables tunables, std::uint64_t noise_seed)
    : system_(std::move(system)),
      arch_(arch),
      mpi_(total_ranks),
      xfer_(arch),
      fft_(arch),
      kernels_(make_default_kernels(arch)),
      tunables_(tunables),
      noise_seed_(noise_seed) {}

bool SlaterPipeline::valid(const TddftConfig& config) const {
  if (!mpi_.valid(config.grid, system_)) return false;
  if (config.nstreams < 1 || config.nbatches < 1) return false;
  for (const auto& [id, tuning] : config.tunings) {
    if (tuning.unroll < 1 || !arch_.valid_kernel_config(tuning.tb, tuning.tb_sm)) {
      return false;
    }
  }
  return true;
}

double SlaterPipeline::pair_cache_interference(const TddftConfig& config) const {
  // Concurrent cuPairwise threads determine how much of L2 its working set
  // occupies when Group 3's kernels start; higher occupancy evicts more of
  // the data Group 3 re-reads.
  const KernelTuning& pair = config.tunings.at(KernelId::Pairwise);
  const double pressure = arch_.occupancy(pair.tb, pair.tb_sm);
  return 1.0 + tunables_.cache_alpha * pressure;
}

namespace {
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

double SlaterPipeline::noise_factor(const TddftConfig& config,
                                    std::uint64_t channel) const {
  if (tunables_.noise_level <= 0.0) return 1.0;
  std::uint64_t h = splitmix(noise_seed_ ^ channel);
  auto mix_int = [&h](std::int64_t v) { h = splitmix(h ^ static_cast<std::uint64_t>(v)); };
  mix_int(config.grid.nstb);
  mix_int(config.grid.nkpb);
  mix_int(config.grid.nspb);
  mix_int(config.nstreams);
  mix_int(config.nbatches);
  for (const auto& [id, t] : config.tunings) {
    mix_int(static_cast<int>(id));
    mix_int(t.unroll);
    mix_int(t.tb);
    mix_int(t.tb_sm);
  }
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 + tunables_.noise_level * (2.0 * u - 1.0);
}

RegionBreakdown SlaterPipeline::simulate(const TddftConfig& config) const {
  if (!valid(config)) {
    throw std::invalid_argument("SlaterPipeline::simulate: invalid configuration");
  }
  const int bands_loc = mpi_.bands_loc(config.grid, system_);
  const int kpts_loc = mpi_.kpoints_loc(config.grid, system_);
  const int spins_loc = mpi_.spins_loc(config.grid, system_);

  // Per-band kernel profiles are reported at the requested batch size (a
  // profiler's view is dominated by full batches); the Slater loop below
  // caps the batch at the locally available bands.
  const int batch = config.nbatches;
  const int loop_batch = std::min(config.nbatches, bands_loc);
  const int n_invocations = (bands_loc + loop_batch - 1) / loop_batch;

  const std::size_t n = system_.fft_size;
  const auto& vec = kernels_.at(KernelId::Vec2Zvec);
  const auto& zcopy = kernels_.at(KernelId::Zcopy);
  const auto& dscal = kernels_.at(KernelId::Dscal);
  const auto& pair = kernels_.at(KernelId::Pairwise);
  const auto& zvec = kernels_.at(KernelId::Zvec2Vec);

  const KernelTuning& t_vec = config.tunings.at(KernelId::Vec2Zvec);
  const KernelTuning& t_zcopy = config.tunings.at(KernelId::Zcopy);
  const KernelTuning& t_dscal = config.tunings.at(KernelId::Dscal);
  const KernelTuning& t_pair = config.tunings.at(KernelId::Pairwise);
  const KernelTuning& t_zvec = config.tunings.at(KernelId::Zvec2Vec);

  // Group 3: the whole kernel group re-reads data that cuPairwise's
  // resident threads evicted from L2, and shares SMs with the asynchronous
  // DtoH of the previous chunk when several streams are active.
  const double interference = pair_cache_interference(config);
  const double stream_penalty =
      1.0 + tunables_.stream_g3_penalty *
                static_cast<double>(std::min(config.nstreams, 8) - 1);

  // --- Component times of one batched invocation over `b` bands. ---
  struct InvocationTimes {
    double htod, g1, g2, g3, dtoh;
    double serial() const { return htod + g1 + g2 + g3 + dtoh; }
  };
  auto invocation = [&](int b) {
    InvocationTimes t{};
    const std::size_t bytes = static_cast<std::size_t>(b) * system_.band_bytes();
    t.htod = xfer_.seconds(bytes, 1);
    t.dtoh = xfer_.seconds(
        static_cast<std::size_t>(tunables_.dtoh_fraction * static_cast<double>(bytes)), 1);
    t.g1 = vec.launch_seconds(n, b, t_vec) + fft_.launch_seconds(n, b) +
           zcopy.launch_seconds(n, b, t_zcopy) + fft_.launch_seconds(n, b);
    t.g2 = pair.launch_seconds(n, b, t_pair);
    t.g3 = (fft_.launch_seconds(n, b) + dscal.launch_seconds(n, b, t_dscal) +
            zcopy.launch_seconds(n, b, t_zcopy) + fft_.launch_seconds(n, b) +
            dscal.launch_seconds(n, b, t_dscal) + zvec.launch_seconds(n, b, t_zvec)) *
           interference * stream_penalty;
    return t;
  };

  // --- Per-band region times (what a per-kernel profile reports). ---
  const InvocationTimes profile = invocation(batch);
  RegionBreakdown out;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  out.group1 = (profile.htod + profile.g1) * inv_batch * noise_factor(config, 1);
  out.group2 = profile.g2 * inv_batch * noise_factor(config, 2);
  out.group3 = (profile.g3 + profile.dtoh) * inv_batch * noise_factor(config, 3);

  // --- Slater Determinant region: the full batched loop with streams. ---
  const InvocationTimes loop_times = invocation(loop_batch);
  const double serial_invocation = loop_times.serial();
  const double per_kpoint_serial = serial_invocation * n_invocations;

  // Streams subdivide each batch and pipeline chunks, so transfers overlap
  // compute; the overlappable fraction is bounded by the transfer share
  // plus a slice of inter-chunk concurrency. Extra streams beyond the PCIe
  // limit only add overhead.
  const double transfer_share = (loop_times.htod + loop_times.dtoh) / serial_invocation;
  const double overlappable = std::min(0.65, transfer_share + 0.15);
  const int s_eff = std::min(config.nstreams, tunables_.max_useful_streams);
  const double overlap_gain = overlappable * (1.0 - 1.0 / static_cast<double>(s_eff));
  const double per_kpoint =
      per_kpoint_serial * (1.0 - overlap_gain) +
      tunables_.stream_overhead * static_cast<double>(config.nstreams - 1);

  // daxpy accumulation per band plus the k-point reduction.
  const double daxpy = static_cast<double>(bands_loc) * 2.0 *
                       static_cast<double>(system_.band_bytes()) /
                       (arch_.mem_bandwidth_gbs * 1e9);
  const double reduce =
      mpi_.allreduce_seconds(system_.band_bytes(), config.grid.ranks());

  out.slater = (static_cast<double>(spins_loc) * kpts_loc) * (per_kpoint + daxpy + reduce) *
               noise_factor(config, 4);

  // --- Non-offloaded remainder: dense linear algebra, SCF bookkeeping, and
  // MPI exchanges outside the Slater region. It parallelizes over the rank
  // grid and is sized so communication + other work is a comparable share
  // of the runtime (paper: 40-50% in communication primitives). ---
  const double work_units = static_cast<double>(system_.nspin) * system_.nkpoints *
                            system_.nbands * static_cast<double>(system_.fft_size);
  const double other_parallel = 0.35 * work_units * 1e-9 /  // tuned constant
                                static_cast<double>(config.grid.ranks());
  const double other_serial =
      0.002 + mpi_.allreduce_seconds(4 * system_.band_bytes(), config.grid.ranks());
  out.total = (out.slater + other_parallel + other_serial) * noise_factor(config, 5);
  return out;
}

std::map<std::string, double> SlaterPipeline::kernel_breakdown(
    const TddftConfig& config) const {
  if (!valid(config)) {
    throw std::invalid_argument("SlaterPipeline::kernel_breakdown: invalid configuration");
  }
  const int batch = config.nbatches;
  const std::size_t n = system_.fft_size;

  std::map<std::string, double> out;
  out["cuFFT"] = 4.0 * fft_.launch_seconds(n, batch);
  out["cuVec2Zvec"] = kernels_.at(KernelId::Vec2Zvec)
                          .launch_seconds(n, batch, config.tunings.at(KernelId::Vec2Zvec));
  out["cuZcopy"] = 2.0 * kernels_.at(KernelId::Zcopy)
                             .launch_seconds(n, batch, config.tunings.at(KernelId::Zcopy));
  out["cuDscal"] = 2.0 * kernels_.at(KernelId::Dscal)
                             .launch_seconds(n, batch, config.tunings.at(KernelId::Dscal));
  out["cuPairwise"] =
      kernels_.at(KernelId::Pairwise)
          .launch_seconds(n, batch, config.tunings.at(KernelId::Pairwise));
  out["cuZvec2Vec"] =
      kernels_.at(KernelId::Zvec2Vec)
          .launch_seconds(n, batch, config.tunings.at(KernelId::Zvec2Vec));
  return out;
}

}  // namespace tunekit::tddft
