#pragma once
// Simulator of the dominant RT-TDDFT computational pattern (paper Fig. 4):
// for each local (spin, k-point), the bands are processed in batches through
//
//   Group 1: memcpy(HtoD), cuVec2Zvec, cuFFT-3D, cuZcopy, cuFFT-3D
//   Group 2: cuPairwise
//   Group 3: cuFFT-3D + cuDscal, cuZcopy, cuFFT-3D + cuDscal, cuZvec2Vec,
//            memcpy(DtoH)
//
// followed by daxpy accumulation and MPI reductions. The model reproduces
// the interdependence structure the paper measures:
//   * nbatches couples to every group (batch amortization of kernels and
//     transfer latency),
//   * nstreams overlaps transfers with compute at the pipeline level and
//     adds a mild SM-sharing penalty to Group 3 (it overlaps the DtoH of
//     the previous batch),
//   * Group 2's cuPairwise threadblock configuration creates L2 cache
//     pressure that slows Group 3's memory-bound kernels — the paper's
//     "unexpected" G2 -> G3 interdependence attributed to GPU-cache effects,
//   * cuZcopy is shared by Groups 1 and 3 (same tuning values everywhere).
//
// Region semantics: Group1/2/3 are *per-band* kernel-group times within one
// batched invocation (what a profiler reports per kernel), SlaterDet is the
// full region runtime for one outer iteration, total adds the non-offloaded
// remainder of the application.

#include <cstdint>
#include <map>

#include "tddft/gpu_arch.hpp"
#include "tddft/kernel_models.hpp"
#include "tddft/mpi_grid.hpp"
#include "tddft/physical_system.hpp"
#include "tddft/transfer_model.hpp"

namespace tunekit::tddft {

/// Fully decoded tuning configuration (Table IV's 20 parameters).
struct TddftConfig {
  MpiGrid grid;
  int nstreams = 1;
  int nbatches = 16;
  std::map<KernelId, KernelTuning> tunings;

  static TddftConfig defaults();
};

struct RegionBreakdown {
  /// Per-band kernel-group times (seconds/band), transfers included.
  double group1 = 0.0;
  double group2 = 0.0;
  double group3 = 0.0;
  /// Full Slater-Determinant region for one outer iteration (seconds).
  double slater = 0.0;
  /// Application total for one outer iteration (seconds).
  double total = 0.0;
};

struct PipelineTunables {
  /// L2 pressure coupling strength of cuPairwise onto Group 3.
  double cache_alpha = 0.5;
  /// Group 3 SM-sharing penalty per extra stream.
  double stream_g3_penalty = 0.035;
  /// Streams beyond this stop helping overlap (PCIe is shared).
  int max_useful_streams = 4;
  /// Per-extra-stream setup/synchronization overhead (seconds).
  double stream_overhead = 40e-6;
  /// DtoH moves reduced data: fraction of a band's bytes.
  double dtoh_fraction = 0.10;
  /// Runtime jitter amplitude (multiplicative, +- fraction).
  double noise_level = 0.005;
};

class SlaterPipeline {
 public:
  SlaterPipeline(PhysicalSystem system, GpuArch arch, int total_ranks,
                 PipelineTunables tunables = {}, std::uint64_t noise_seed = 0);

  const PhysicalSystem& system() const { return system_; }
  const GpuArch& arch() const { return arch_; }
  const MpiGridModel& mpi() const { return mpi_; }
  const PipelineTunables& tunables() const { return tunables_; }

  /// True if the configuration satisfies the hardware and decomposition
  /// constraints.
  bool valid(const TddftConfig& config) const;

  /// Simulate one outer (rt) iteration; throws std::invalid_argument on an
  /// invalid configuration.
  RegionBreakdown simulate(const TddftConfig& config) const;

  /// Per-call GPU kernel seconds at a given batch size and tuning, keyed by
  /// kernel name plus "cuFFT" — used by the Table IV/V harnesses and the
  /// calibration test of the paper's kernel-share split.
  std::map<std::string, double> kernel_breakdown(const TddftConfig& config) const;

 private:
  double pair_cache_interference(const TddftConfig& config) const;
  double noise_factor(const TddftConfig& config, std::uint64_t channel) const;

  PhysicalSystem system_;
  GpuArch arch_;
  MpiGridModel mpi_;
  TransferModel xfer_;
  FftModel fft_;
  std::map<KernelId, KernelModel> kernels_;
  PipelineTunables tunables_;
  std::uint64_t noise_seed_;
};

}  // namespace tunekit::tddft
