#include "tddft/tddft_app.hpp"

#include <algorithm>
#include <stdexcept>

namespace tunekit::tddft {

namespace {
/// Divisor-flavoured ordinal levels used for the MPI dimensions; the expert
/// constraint of §VIII (only divisors of the band/k-point counts to keep
/// ranks balanced) is applied through the grid validity constraint plus the
/// imbalance penalty inside the model.
std::vector<double> nstb_levels() { return {1, 2, 4, 8, 16, 32, 64}; }
std::vector<double> nkpb_levels() { return {1, 2, 3, 4, 6, 9, 12, 18, 36}; }
std::vector<double> nspb_levels() { return {1, 2}; }
std::vector<double> unroll_levels() { return {1, 2, 4, 8}; }

std::vector<double> tb_levels() {
  std::vector<double> v;
  for (int tb = 32; tb <= 1024; tb += 32) v.push_back(tb);
  return v;
}
}  // namespace

RtTddftApp::RtTddftApp(PhysicalSystem system, int nodes, PipelineTunables tunables,
                       std::uint64_t noise_seed)
    : pipeline_(std::move(system), GpuArch::a100(), nodes * 4, tunables, noise_seed) {
  if (nodes <= 0) throw std::invalid_argument("RtTddftApp: nodes <= 0");
  build_space();
}

void RtTddftApp::build_space() {
  using search::ParamSpec;
  space_.add(ParamSpec::ordinal("nstb", nstb_levels(), 4));
  space_.add(ParamSpec::ordinal("nkpb", nkpb_levels(), 1));
  space_.add(ParamSpec::ordinal("nspb", nspb_levels(), 1));

  const char* kernels[5] = {"dscal", "pair", "zcopy", "vec", "zvec"};
  for (const char* k : kernels) {
    space_.add(ParamSpec::ordinal(std::string("u_") + k, unroll_levels(), 1));
    space_.add(ParamSpec::ordinal(std::string("tb_") + k, tb_levels(), 256));
    space_.add(ParamSpec::integer(std::string("tb_sm_") + k, 1, 32, 2));
  }
  space_.add(ParamSpec::integer("nstreams", 1, 32, 1));
  space_.add(ParamSpec::integer("nbatches", 1, 32, 16));

  // Hardware residency: tb * tb_sm bounded per kernel.
  const GpuArch arch = pipeline_.arch();
  for (std::size_t k = 0; k < 5; ++k) {
    const std::size_t tb_idx = 3 + 3 * k + 1;
    const std::size_t tb_sm_idx = 3 + 3 * k + 2;
    space_.add_constraint(
        std::string("residency_") + kernels[k],
        [arch, tb_idx, tb_sm_idx](const search::Config& c) {
          return arch.valid_kernel_config(static_cast<int>(c[tb_idx]),
                                          static_cast<int>(c[tb_sm_idx]));
        });
  }

  // MPI grid must fit the allocation and the wavefunction extents.
  const MpiGridModel mpi = pipeline_.mpi();
  const PhysicalSystem sys = pipeline_.system();
  space_.add_constraint("mpi_grid", [mpi, sys](const search::Config& c) {
    const MpiGrid grid{static_cast<int>(c[kNstb]), static_cast<int>(c[kNkpb]),
                       static_cast<int>(c[kNspb])};
    return mpi.valid(grid, sys);
  });

  // Constraint repair (feasibility projection): residency violations clamp
  // tb_sm to the largest resident value; oversized MPI grids step their
  // largest dimension down until the grid fits. Rejection sampling alone
  // accepts well under 1% of this space.
  const GpuArch arch_copy = arch;
  space_.set_repair([arch_copy, mpi, sys](const search::Config& in) {
    search::Config c = in;
    for (std::size_t k = 0; k < 5; ++k) {
      const std::size_t tb_idx = 3 + 3 * k + 1;
      const std::size_t tb_sm_idx = 3 + 3 * k + 2;
      const int tb = static_cast<int>(c[tb_idx]);
      if (tb > 0) {
        const int max_sm = std::max(1, arch_copy.max_threads_per_sm / tb);
        c[tb_sm_idx] = std::min(c[tb_sm_idx], static_cast<double>(
                                                  std::min(max_sm, arch_copy.max_blocks_per_sm)));
      }
    }
    // Clamp grid dims to wavefunction extents, then shrink until it fits.
    // step_down: the largest level strictly below v.
    auto step_down = [](const std::vector<double>& levels, double v) {
      double out = levels.front();
      for (double l : levels) {
        if (l < v) out = std::max(out, l);
      }
      return out;
    };
    c[kNkpb] = std::min(c[kNkpb], static_cast<double>(sys.nkpoints));
    c[kNspb] = std::min(c[kNspb], static_cast<double>(sys.nspin));
    c[kNstb] = std::min(c[kNstb], static_cast<double>(sys.nbands));
    for (int guard = 0; guard < 64; ++guard) {
      const double product = c[kNstb] * c[kNkpb] * c[kNspb];
      if (product <= static_cast<double>(mpi.total_ranks())) break;
      if (c[kNstb] >= c[kNkpb] && c[kNstb] > 1) {
        c[kNstb] = step_down(nstb_levels(), c[kNstb]);
      } else if (c[kNkpb] > 1) {
        c[kNkpb] = step_down(nkpb_levels(), c[kNkpb]);
      } else if (c[kNspb] > 1) {
        c[kNspb] = step_down(nspb_levels(), c[kNspb]);
      } else {
        break;
      }
    }
    return c;
  });
}

TddftConfig RtTddftApp::decode(const search::Config& config) const {
  if (config.size() != kNumParams) {
    throw std::invalid_argument("RtTddftApp::decode: expected 20 parameters");
  }
  TddftConfig c;
  c.grid = {static_cast<int>(config[kNstb]), static_cast<int>(config[kNkpb]),
            static_cast<int>(config[kNspb])};
  c.nstreams = static_cast<int>(config[kNstreams]);
  c.nbatches = static_cast<int>(config[kNbatches]);
  c.tunings[KernelId::Dscal] = {static_cast<int>(config[kUDscal]),
                                static_cast<int>(config[kTbDscal]),
                                static_cast<int>(config[kTbSmDscal])};
  c.tunings[KernelId::Pairwise] = {static_cast<int>(config[kUPair]),
                                   static_cast<int>(config[kTbPair]),
                                   static_cast<int>(config[kTbSmPair])};
  c.tunings[KernelId::Zcopy] = {static_cast<int>(config[kUZcopy]),
                                static_cast<int>(config[kTbZcopy]),
                                static_cast<int>(config[kTbSmZcopy])};
  c.tunings[KernelId::Vec2Zvec] = {static_cast<int>(config[kUVec]),
                                   static_cast<int>(config[kTbVec]),
                                   static_cast<int>(config[kTbSmVec])};
  c.tunings[KernelId::Zvec2Vec] = {static_cast<int>(config[kUZvec]),
                                   static_cast<int>(config[kTbZvec]),
                                   static_cast<int>(config[kTbSmZvec])};
  return c;
}

std::vector<core::RoutineSpec> RtTddftApp::routines() const {
  std::vector<core::RoutineSpec> out(3);
  out[0].name = "Group1";
  out[0].params = {kUVec, kTbVec, kTbSmVec, kUZcopy, kTbZcopy, kTbSmZcopy};
  out[1].name = "Group2";
  out[1].params = {kUPair, kTbPair, kTbSmPair};
  out[2].name = "Group3";
  out[2].params = {kUZcopy, kTbZcopy, kTbSmZcopy, kUDscal, kTbDscal, kTbSmDscal,
                   kUZvec,  kTbZvec,  kTbSmZvec};
  return out;
}

std::vector<graph::BoundGroup> RtTddftApp::bound_groups() const {
  return {{"MPI Grid", {kNstb, kNkpb, kNspb}}, {"Iterations", {kNstreams, kNbatches}}};
}

std::map<std::string, std::vector<double>> RtTddftApp::expert_variations() const {
  std::map<std::string, std::vector<double>> vars;
  vars["nstb"] = {1, 2, 8, 16, 32};
  vars["nkpb"] = {2, 3, 6, 12, 36};
  vars["nspb"] = {2};
  for (const char* k : {"dscal", "pair", "zcopy", "vec", "zvec"}) {
    vars[std::string("u_") + k] = {2, 4, 8};
    vars[std::string("tb_") + k] = {32, 64, 128, 512, 1024};
    vars[std::string("tb_sm_") + k] = {1, 4, 8, 16, 32};
  }
  vars["nstreams"] = {2, 4, 8, 16, 32};
  vars["nbatches"] = {1, 2, 4, 8, 32};
  return vars;
}

std::string RtTddftApp::name() const {
  return "RT-TDDFT (" + pipeline_.system().name + ")";
}

search::RegionTimes RtTddftApp::evaluate_regions(const search::Config& config) {
  const RegionBreakdown b = pipeline_.simulate(decode(config));
  search::RegionTimes t;
  t.regions["Group1"] = b.group1;
  t.regions["Group2"] = b.group2;
  t.regions["Group3"] = b.group3;
  t.regions["SlaterDet"] = b.slater;
  t.total = b.total;
  return t;
}

}  // namespace tunekit::tddft
