#include "tddft/gpu_arch.hpp"

#include <algorithm>

namespace tunekit::tddft {

GpuArch GpuArch::a100() { return GpuArch{}; }

bool GpuArch::valid_kernel_config(int tb, int tb_sm) const {
  if (tb <= 0 || tb_sm <= 0) return false;
  if (tb % warp_size != 0) return false;
  if (tb > max_threads_per_block) return false;
  if (tb_sm > max_blocks_per_sm) return false;
  return tb * tb_sm <= max_threads_per_sm;
}

double GpuArch::occupancy(int tb, int tb_sm) const {
  const int resident = std::min(tb * tb_sm, max_threads_per_sm);
  return static_cast<double>(resident) / static_cast<double>(max_threads_per_sm);
}

}  // namespace tunekit::tddft
