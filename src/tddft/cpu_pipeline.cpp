#include "tddft/cpu_pipeline.hpp"

#include <cmath>
#include <stdexcept>

namespace tunekit::tddft {

CpuArch CpuArch::perlmutter_cpu() { return CpuArch{}; }

CpuPipeline::CpuPipeline(PhysicalSystem system, CpuArch arch, int total_ranks,
                         std::uint64_t noise_seed)
    : system_(std::move(system)),
      arch_(arch),
      mpi_(total_ranks, arch.net_latency_us, arch.net_bandwidth_gbs),
      noise_seed_(noise_seed) {}

bool CpuPipeline::valid(const CpuGrid& grid) const {
  if (grid.nstb <= 0 || grid.nkpb <= 0 || grid.nspb <= 0 || grid.nqb <= 0) return false;
  if (grid.ranks() > mpi_.total_ranks()) return false;
  if (grid.nstb > system_.nbands) return false;
  if (grid.nkpb > system_.nkpoints) return false;
  if (grid.nspb > system_.nspin) return false;
  return true;
}

CpuBreakdown CpuPipeline::simulate(const CpuGrid& grid) const {
  if (!valid(grid)) {
    throw std::invalid_argument("CpuPipeline::simulate: invalid grid");
  }
  const MpiGrid outer{grid.nstb, grid.nkpb, grid.nspb};
  const int bands_loc = mpi_.bands_loc(outer, system_);
  const int kpts_loc = mpi_.kpoints_loc(outer, system_);
  const int spins_loc = mpi_.spins_loc(outer, system_);

  const double n = static_cast<double>(system_.fft_size);
  const double band_bytes = static_cast<double>(system_.band_bytes());
  const double nqb = static_cast<double>(grid.nqb);

  // Four 3D-FFT equivalents per band (two backward, two forward), each
  // split into 2D + 1D stages over the nqb ranks.
  const double fft_flops = 4.0 * 5.0 * n * std::log2(std::max(2.0, n));
  const double fft_per_band = fft_flops / nqb / (arch_.fft_gflops * 1e9);

  // Transpose & padding: an all-to-all among the nqb ranks per FFT stage
  // boundary (4 per band). Each rank exchanges its band slice.
  const double bytes_per_rank = band_bytes / nqb;
  const double alltoall = bytes_per_rank / (arch_.net_bandwidth_gbs * 1e9) +
                          (nqb - 1.0) * arch_.net_latency_us * 1e-6;
  const double transpose_per_band = grid.nqb > 1 ? 4.0 * alltoall : 0.0;

  // Pointwise work (pairwise multiplication, conversions, scaling): ~5
  // passes over the band slice at memory bandwidth.
  const double pointwise_per_band =
      5.0 * bytes_per_rank / (arch_.mem_bandwidth_gbs * 1e9);

  const double bands = static_cast<double>(bands_loc);
  const double loops = static_cast<double>(spins_loc) * kpts_loc;

  CpuBreakdown out;
  out.fft_compute = loops * bands * fft_per_band;
  out.transpose_comm = loops * bands * transpose_per_band;
  out.pointwise = loops * bands * pointwise_per_band;
  out.reductions =
      loops * mpi_.allreduce_seconds(system_.band_bytes(), grid.ranks());
  out.slater = out.fft_compute + out.transpose_comm + out.pointwise + out.reductions;

  // Non-Slater remainder, as in the GPU model: parallel dense algebra plus
  // a serial/communication floor.
  const double work_units = static_cast<double>(system_.nspin) * system_.nkpoints *
                            system_.nbands * n;
  const double other_parallel = 0.35 * work_units * 1e-9 / grid.ranks();
  const double other_serial =
      0.002 + mpi_.allreduce_seconds(4 * system_.band_bytes(), grid.ranks());
  out.total = out.slater + other_parallel + other_serial;

  if (noise_seed_ != 0) {
    // Light multiplicative jitter keyed by the grid.
    std::uint64_t h = noise_seed_;
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(grid.nstb));
    mix(static_cast<std::uint64_t>(grid.nkpb));
    mix(static_cast<std::uint64_t>(grid.nspb));
    mix(static_cast<std::uint64_t>(grid.nqb));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double factor = 1.0 + 0.005 * (2.0 * u - 1.0);
    out.fft_compute *= factor;
    out.transpose_comm *= factor;
    out.pointwise *= factor;
    out.reductions *= factor;
    out.slater *= factor;
    out.total *= factor;
  }
  return out;
}

}  // namespace tunekit::tddft
