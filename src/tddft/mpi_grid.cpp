#include "tddft/mpi_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace tunekit::tddft {

MpiGridModel::MpiGridModel(int total_ranks, double net_latency_us,
                           double net_bandwidth_gbs)
    : total_ranks_(total_ranks),
      net_latency_s_(net_latency_us * 1e-6),
      net_bandwidth_bs_(net_bandwidth_gbs * 1e9) {
  if (total_ranks <= 0) throw std::invalid_argument("MpiGridModel: total_ranks <= 0");
}

bool MpiGridModel::valid(const MpiGrid& grid, const PhysicalSystem& system) const {
  if (grid.nstb <= 0 || grid.nkpb <= 0 || grid.nspb <= 0) return false;
  if (grid.ranks() > total_ranks_) return false;
  if (grid.nstb > system.nbands) return false;
  if (grid.nkpb > system.nkpoints) return false;
  if (grid.nspb > system.nspin) return false;
  return true;
}

int MpiGridModel::bands_loc(const MpiGrid& grid, const PhysicalSystem& system) const {
  return (system.nbands + grid.nstb - 1) / grid.nstb;
}

int MpiGridModel::kpoints_loc(const MpiGrid& grid, const PhysicalSystem& system) const {
  return (system.nkpoints + grid.nkpb - 1) / grid.nkpb;
}

int MpiGridModel::spins_loc(const MpiGrid& grid, const PhysicalSystem& system) const {
  return (system.nspin + grid.nspb - 1) / grid.nspb;
}

double MpiGridModel::imbalance(int items, int parts) {
  if (items <= 0 || parts <= 0) throw std::invalid_argument("imbalance: non-positive");
  const double balanced = static_cast<double>(items) / parts;
  const double loaded = std::ceil(balanced);
  return loaded / balanced;
}

double MpiGridModel::allreduce_seconds(std::size_t bytes, int ranks) const {
  if (ranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
  return rounds * (net_latency_s_ + static_cast<double>(bytes) / net_bandwidth_bs_);
}

}  // namespace tunekit::tddft
