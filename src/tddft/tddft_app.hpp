#pragma once
// RtTddftApp: the TunableApp facade over the Slater-pipeline simulator,
// exposing exactly the paper's Table IV tuning space — 3 MPI parameters,
// 3 knobs for each of the 5 tunable kernels, nstreams, and nbatches
// (20 parameters) — with the hardware/decomposition validity constraints
// and the routine/ownership structure of §VI:
//   Group 1 owns {VEC, ZCOPY} knobs, Group 2 owns {PAIR}, Group 3 owns
//   {ZCOPY, DSCAL, ZVEC} (cuZcopy shared between Groups 1 and 3), MPI grid
//   + nstreams + nbatches are application-level, and "SlaterDet" is the
//   enclosing outer region.

#include <cstdint>

#include "core/tunable_app.hpp"
#include "tddft/slater_pipeline.hpp"

namespace tunekit::tddft {

class RtTddftApp final : public core::TunableApp {
 public:
  /// `nodes`: allocation size (paper budget: 10 nodes, 4 GPU ranks each).
  explicit RtTddftApp(PhysicalSystem system, int nodes = 10,
                      PipelineTunables tunables = {}, std::uint64_t noise_seed = 0);

  const search::SearchSpace& space() const override { return space_; }
  std::vector<core::RoutineSpec> routines() const override;
  std::vector<std::string> outer_regions() const override { return {"SlaterDet"}; }
  std::vector<graph::BoundGroup> bound_groups() const override;
  std::map<std::string, std::vector<double>> expert_variations() const override;
  std::string name() const override;

  search::RegionTimes evaluate_regions(const search::Config& config) override;
  bool thread_safe() const override { return true; }

  const SlaterPipeline& pipeline() const { return pipeline_; }

  /// Positional config -> decoded simulator configuration.
  TddftConfig decode(const search::Config& config) const;

  /// Parameter indices (Table IV order).
  enum Index : std::size_t {
    kNstb = 0,
    kNkpb,
    kNspb,
    kUDscal,
    kTbDscal,
    kTbSmDscal,
    kUPair,
    kTbPair,
    kTbSmPair,
    kUZcopy,
    kTbZcopy,
    kTbSmZcopy,
    kUVec,
    kTbVec,
    kTbSmVec,
    kUZvec,
    kTbZvec,
    kTbSmZvec,
    kNstreams,
    kNbatches,
    kNumParams
  };

 private:
  void build_space();

  SlaterPipeline pipeline_;
  search::SearchSpace space_;
};

}  // namespace tunekit::tddft
