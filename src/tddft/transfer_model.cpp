#include "tddft/transfer_model.hpp"

#include <algorithm>

namespace tunekit::tddft {

double TransferModel::seconds(std::size_t bytes, int n_transfers) const {
  const double bw = arch_.pcie_bandwidth_gbs * 1e9;
  const double latency = arch_.transfer_latency_us * 1e-6;
  return static_cast<double>(bytes) / bw + latency * std::max(1, n_transfers);
}

}  // namespace tunekit::tddft
