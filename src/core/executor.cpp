#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <numeric>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/tunable_app.hpp"
#include "obs/telemetry.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"

namespace tunekit::core {

PlanExecutor::PlanExecutor(ExecutorOptions options) : options_(std::move(options)) {}

std::size_t PlanExecutor::budget_for(std::size_t dims) const {
  return std::max(options_.min_evals, options_.evals_per_param * dims);
}

namespace {

/// Product of discrete cardinalities of the selected params; 0 if any
/// parameter is continuous or the product overflows `limit`.
std::size_t discrete_cardinality(const search::SearchSpace& space,
                                 const std::vector<std::size_t>& params,
                                 std::size_t limit) {
  std::size_t total = 1;
  for (std::size_t idx : params) {
    const std::size_t card = space.param(idx).cardinality();
    if (card == 0) return 0;
    if (total > limit / card) return 0;  // would exceed limit
    total *= card;
  }
  return total;
}

}  // namespace

ExecutionResult PlanExecutor::execute(TunableApp& app,
                                      const graph::SearchPlan& plan) const {
  Stopwatch watch;
  const search::SearchSpace& space = app.space();
  obs::Telemetry* telemetry = options_.telemetry;

  // Process isolation: evaluate through sandboxed worker processes. The
  // wrap happens at TunableApp level so subspace embedding stays on this
  // side of the process boundary (full-space configs cross the wire), and
  // the pool's SIGKILL deadline takes over from the in-process watchdog.
  robust::IsolationOptions isolation = options_.isolation;
  if (isolation.telemetry == nullptr) isolation.telemetry = telemetry;
  const auto sandbox = robust::WorkerPool::create(
      isolation, std::max<std::size_t>(1, options_.n_threads));
  robust::MeasureOptions measure = options_.measure;
  std::unique_ptr<robust::SandboxedApp> sandboxed;
  if (sandbox) {
    sandboxed = std::make_unique<robust::SandboxedApp>(
        app, sandbox, measure.watchdog.timeout_seconds);
    measure.watchdog.timeout_seconds = std::numeric_limits<double>::infinity();
  }
  TunableApp& eval_app = sandboxed ? *sandboxed : app;

  ExecutionResult exec;
  search::Config base = app.baseline();
  if (!space.is_valid(base)) {
    // Fall back to a deterministic valid sample when the app baseline
    // violates constraints.
    tunekit::Rng rng(options_.seed ^ 0x5eedbeef);
    base = space.sample_valid(rng);
  }

  if (!options_.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options_.checkpoint_dir);
  }

  std::size_t search_counter = 0;
  const std::size_t n_stages = plan.n_stages();
  for (std::size_t stage = 0; stage < n_stages; ++stage) {
    const auto searches = plan.stage_searches(stage);
    if (searches.empty()) continue;

    std::vector<SearchOutcome> stage_outcomes(searches.size());

    // Allocate this stage's per-search budgets up front, honoring the total
    // budget (paper step 1: a predetermined computing budget bounds the
    // whole tuning campaign).
    std::vector<std::size_t> budgets(searches.size());
    for (std::size_t si = 0; si < searches.size(); ++si) {
      std::size_t b = budget_for(searches[si]->params.size());
      if (options_.max_total_evals > 0) {
        const std::size_t used = exec.total_evaluations +
                                 std::accumulate(budgets.begin(),
                                                 budgets.begin() + static_cast<std::ptrdiff_t>(si),
                                                 std::size_t{0});
        const std::size_t remaining =
            options_.max_total_evals > used ? options_.max_total_evals - used : 0;
        b = std::min(b, remaining);
        if (b > 0 && b < 3) b = 0;  // too small to search meaningfully
        if (b == 0) {
          log_warn("executor: budget exhausted; skipping search '", searches[si]->name,
                   "'");
        }
      }
      budgets[si] = b;
    }

    // Captured before the fan-out: stage searches may run on pool threads,
    // where the ambient span would otherwise be empty.
    const obs::SpanId stage_parent = obs::Telemetry::current_span();

    auto run_one = [&](std::size_t si) {
      const graph::PlannedSearch& planned = *searches[si];
      const std::size_t search_id = search_counter + si;
      obs::CurrentSpanScope ambient(stage_parent);
      obs::ScopedSpan search_span(telemetry, "search." + planned.name);

      if (budgets[si] == 0) {
        SearchOutcome skipped;
        skipped.planned = planned;
        skipped.result.method = "skipped";
        stage_outcomes[si] = std::move(skipped);
        return;
      }

      RegionSumObjective region_obj(eval_app, planned.objective_regions);
      search::SubspaceObjective sub_obj(region_obj, space, planned.params, base);
      // Hardened evaluation for the blocking drivers: watchdog + repeats per
      // call, classified failures re-thrown as EvalFailure (which BayesOpt
      // records and GridSearch tolerates). The session path instead passes
      // the options to the scheduler, which measures on its own workers.
      const bool harden = !robust::is_trivial(measure);
      robust::HardenedObjective hardened_obj(sub_obj, measure);
      search::Objective& driver_obj =
          harden ? static_cast<search::Objective&>(hardened_obj) : sub_obj;

      const std::size_t budget = budgets[si];
      search::SearchResult result;

      const std::size_t card = discrete_cardinality(
          space, planned.params,
          static_cast<std::size_t>(options_.enumerate_threshold *
                                   static_cast<double>(budget)) +
              1);
      const bool enumerate =
          options_.enumerate_threshold > 0.0 && card > 0 &&
          static_cast<double>(card) <=
              options_.enumerate_threshold * static_cast<double>(budget);

      if (options_.session_scheduler) {
        // Session service path: ask/tell batches evaluated concurrently.
        service::SessionOptions sopts;
        sopts.telemetry = telemetry;
        sopts.bo = options_.bo;
        sopts.n_init = options_.bo.n_init;
        sopts.failure_penalty = options_.bo.failure_penalty;
        sopts.seed = options_.bo.seed + 7919 * (search_id + 1);
        if (enumerate) {
          sopts.backend = service::SessionBackend::Grid;
          sopts.max_evals = options_.max_total_evals > 0 ? std::min(card, budget) : card;
          log_info("executor: '", planned.name, "' enumerated through the scheduler (",
                   sopts.max_evals, " configs)");
        } else {
          sopts.backend = service::SessionBackend::Bo;
          sopts.max_evals = budget;
        }
        std::string journal;
        if (!options_.checkpoint_dir.empty()) {
          journal = options_.checkpoint_dir + "/search_" + std::to_string(search_id) +
                    ".journal.jsonl";
        }
        std::unique_ptr<service::TuningSession> session;
        if (!journal.empty() && options_.bo.resume && std::filesystem::exists(journal)) {
          session = service::TuningSession::resume(sub_obj.space(), sopts, journal);
        } else {
          session = std::make_unique<service::TuningSession>(sub_obj.space(), sopts,
                                                             journal);
        }
        // The scheduler gets the stripped measure options and default
        // (thread) isolation: sub_obj already routes through the sandbox, so
        // giving the scheduler its own pool would double-sandbox.
        service::SchedulerOptions sched_opts;
        sched_opts.n_threads = options_.n_threads;
        sched_opts.measure = measure;
        sched_opts.telemetry = telemetry;
        service::EvalScheduler scheduler(sched_opts);
        result = scheduler.run(*session, sub_obj);
      } else if (enumerate) {
        log_info("executor: '", planned.name, "' enumerated exhaustively (", card,
                 " configs)");
        search::GridSearchOptions grid_opts;
        if (options_.max_total_evals > 0) grid_opts.max_evals = budget;
        search::GridSearch grid(grid_opts);
        result = grid.run(driver_obj, sub_obj.space());
        result.method = "enumerate";
      } else {
        bo::BoOptions bo_opts = options_.bo;
        bo_opts.telemetry = telemetry;
        bo_opts.max_evals = budget;
        bo_opts.seed = options_.bo.seed + 7919 * (search_id + 1);
        if (!options_.checkpoint_dir.empty()) {
          bo_opts.checkpoint_path =
              options_.checkpoint_dir + "/search_" + std::to_string(search_id) + ".json";
        }
        bo::BayesOpt driver(bo_opts);
        result = driver.run(driver_obj, sub_obj.space());
      }

      SearchOutcome outcome;
      outcome.planned = planned;
      outcome.result = std::move(result);
      if (outcome.result.found()) {
        for (std::size_t k = 0; k < planned.params.size(); ++k) {
          outcome.tuned_values[space.param(planned.params[k]).name()] =
              outcome.result.best_config[k];
        }
      }
      stage_outcomes[si] = std::move(outcome);
    };

    // With the session scheduler, n_threads parallelizes *within* each
    // search; running searches concurrently on top would nest thread pools.
    // (A sandboxed app is always thread-safe: workers are processes.)
    const bool parallel = options_.n_threads > 1 && eval_app.thread_safe() &&
                          searches.size() > 1 && !options_.session_scheduler;
    if (parallel) {
      ThreadPool pool(std::min(options_.n_threads, searches.size()));
      pool.parallel_for(searches.size(), run_one);
    } else {
      for (std::size_t si = 0; si < searches.size(); ++si) run_one(si);
    }

    // Adopt this stage's tuned values into the base configuration.
    for (auto& outcome : stage_outcomes) {
      if (outcome.result.found()) {
        for (std::size_t k = 0; k < outcome.planned.params.size(); ++k) {
          base[outcome.planned.params[k]] = outcome.result.best_config[k];
        }
      }
      exec.total_evaluations += outcome.result.evaluations;
      exec.outcomes.push_back(std::move(outcome));
    }
    search_counter += searches.size();
  }

  exec.final_config = base;
  // The confirming measurement of the tuned configuration runs under the
  // same hardening. If even the final measurement fails, report NaN times
  // rather than aborting after the whole campaign succeeded.
  const robust::RobustMeasurer measurer(measure);
  obs::ScopedSpan final_span(telemetry, "eval");
  const robust::Measurement final_m = measurer.measure_regions(eval_app, base);
  final_span.end();
  if (final_m.outcome == robust::EvalOutcome::Ok) {
    exec.final_times = final_m.regions;
  } else {
    log_warn("executor: final measurement failed as ",
             robust::to_string(final_m.outcome), "; reporting NaN times");
    exec.final_times.total = std::numeric_limits<double>::quiet_NaN();
  }
  ++exec.total_evaluations;
  exec.seconds = watch.seconds();
  return exec;
}

}  // namespace tunekit::core
