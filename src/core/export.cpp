#include "core/export.hpp"

#include <fstream>
#include <stdexcept>

#include "search/config.hpp"

namespace tunekit::core {

void write_trajectories_csv(const std::string& path,
                            const std::vector<std::string>& labels,
                            const std::vector<std::vector<double>>& series) {
  if (labels.size() != series.size()) {
    throw std::invalid_argument("write_trajectories_csv: label/series arity mismatch");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_trajectories_csv: cannot open " + path);

  out << "evaluation";
  for (const auto& label : labels) out << ',' << label;
  out << '\n';

  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  for (std::size_t r = 0; r < rows; ++r) {
    out << (r + 1);
    for (const auto& s : series) {
      out << ',';
      if (s.empty()) continue;
      out << (r < s.size() ? s[r] : s.back());
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_trajectories_csv: write failed for " + path);
}

json::Value search_result_to_json(const search::SearchSpace& space,
                                  const search::SearchResult& result) {
  json::Object obj;
  obj["method"] = json::Value(result.method);
  obj["best_value"] = json::Value(result.best_value);
  obj["evaluations"] = json::Value(result.evaluations);
  obj["seconds"] = json::Value(result.seconds);

  json::Object best;
  if (result.found()) {
    for (const auto& [name, value] : search::to_named(space, result.best_config)) {
      best[name] = json::Value(value);
    }
  }
  obj["best_config"] = json::Value(std::move(best));

  json::Array values, trajectory;
  for (double v : result.values) values.emplace_back(v);
  for (double v : result.trajectory) trajectory.emplace_back(v);
  obj["values"] = json::Value(std::move(values));
  obj["trajectory"] = json::Value(std::move(trajectory));
  return json::Value(std::move(obj));
}

json::Value methodology_result_to_json(const TunableApp& app,
                                       const MethodologyResult& result) {
  json::Object obj;
  obj["app"] = json::Value(app.name());
  obj["observations_analysis"] = json::Value(result.analysis.observations);
  obj["observations_total"] = json::Value(result.total_observations);
  obj["seconds"] = json::Value(result.seconds);

  // Sensitivity scores per region.
  json::Object sensitivity;
  const auto& report = result.analysis.sensitivity;
  for (const auto& region : report.regions()) {
    json::Object scores;
    for (std::size_t p = 0; p < report.param_names().size(); ++p) {
      scores[report.param_names()[p]] = json::Value(report.score(region, p));
    }
    sensitivity[region] = json::Value(std::move(scores));
  }
  obj["sensitivity"] = json::Value(std::move(sensitivity));

  // Plan.
  json::Array searches;
  for (const auto& s : result.plan.searches) {
    json::Object search_obj;
    search_obj["name"] = json::Value(s.name);
    search_obj["stage"] = json::Value(s.stage);
    json::Array params;
    for (std::size_t p : s.params) {
      params.emplace_back(result.analysis.graph.param_name(p));
    }
    search_obj["params"] = json::Value(std::move(params));
    searches.emplace_back(std::move(search_obj));
  }
  obj["plan"] = json::Value(std::move(searches));

  // Outcomes + final configuration.
  json::Array outcomes;
  for (const auto& o : result.execution.outcomes) {
    json::Object outcome;
    outcome["search"] = json::Value(o.planned.name);
    outcome["result"] = search_result_to_json(app.space(), o.result);
    outcomes.emplace_back(std::move(outcome));
  }
  obj["outcomes"] = json::Value(std::move(outcomes));

  json::Object final_config;
  for (const auto& [name, value] :
       search::to_named(app.space(), result.execution.final_config)) {
    final_config[name] = json::Value(value);
  }
  obj["final_config"] = json::Value(std::move(final_config));
  obj["final_total"] = json::Value(result.execution.final_times.total);
  return json::Value(std::move(obj));
}

void write_json(const std::string& path, const json::Value& value) {
  json::save(path, value);
}

}  // namespace tunekit::core
