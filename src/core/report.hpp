#pragma once
// Human-readable reporting of methodology runs: sensitivity tables, the
// search plan (Table VII style), and execution summaries.

#include <string>

#include "core/methodology.hpp"
#include "core/tunable_app.hpp"

namespace tunekit::core {

/// Top-k sensitivity table for one region (Tables II/V/VI style).
std::string sensitivity_table(const stats::SensitivityReport& report,
                              const std::string& region, std::size_t k);

/// Side-by-side top-k sensitivity for several regions.
std::string sensitivity_tables(const stats::SensitivityReport& report,
                               const std::vector<std::string>& regions, std::size_t k);

/// The final search set (Table VII style).
std::string plan_table(const graph::SearchPlan& plan, const graph::InfluenceGraph& g);

/// Per-search outcomes + final configuration.
std::string execution_report(const TunableApp& app, const ExecutionResult& exec);

/// Everything above, for a full MethodologyResult.
std::string full_report(const TunableApp& app, const MethodologyResult& result);

}  // namespace tunekit::core
