#include "core/tunable_app.hpp"

// TunableApp is an interface; this translation unit anchors its vtable.

namespace tunekit::core {}  // namespace tunekit::core
