#include "core/app_registry.hpp"

#include <stdexcept>

#include "minislater/minislater_app.hpp"
#include "synth/synth_app.hpp"
#include "tddft/tddft_app.hpp"

namespace tunekit::core {

const char* builtin_app_names() {
  return "synth:case1..case5, tddft:cs1, tddft:cs2, minislater";
}

AppBundle make_builtin_app(const std::string& name, std::uint64_t seed) {
  AppBundle bundle;
  if (name.rfind("synth:case", 0) == 0 && name.size() == 11) {
    const int c = name.back() - '0';
    if (c >= 1 && c <= 5) {
      bundle.app = std::make_unique<synth::SynthApp>(static_cast<synth::SynthCase>(c),
                                                     0.01, seed);
      bundle.default_cutoff = 0.25;
      bundle.default_variations = 100;
      return bundle;
    }
  }
  if (name == "tddft:cs1") {
    bundle.app = std::make_unique<tddft::RtTddftApp>(tddft::PhysicalSystem::case_study_1());
    return bundle;
  }
  if (name == "tddft:cs2") {
    bundle.app = std::make_unique<tddft::RtTddftApp>(tddft::PhysicalSystem::case_study_2());
    return bundle;
  }
  if (name == "minislater") {
    // Real measured kernels: higher cut-off absorbs timer noise.
    bundle.app = std::make_unique<minislater::MiniSlaterApp>(32, 4, 2, seed);
    bundle.default_cutoff = 0.15;
    return bundle;
  }
  throw std::runtime_error("unknown app '" + name + "' (expected " +
                           builtin_app_names() + ")");
}

}  // namespace tunekit::core
