#include "core/methodology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "search/samplers.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"

namespace tunekit::core {

namespace {

/// Per-phase wall time as a gauge: tunekit_phase_<name>_seconds. The gauge is
/// set from a Stopwatch started/stopped at the same points as the phase span,
/// so `tunekit_cli report` reproduces the span totals from the metrics
/// snapshot alone.
void add_phase_seconds(obs::Telemetry* telemetry, const char* phase, double seconds) {
  if (telemetry == nullptr || !telemetry->enabled()) return;
  telemetry->metrics()
      .gauge(std::string("tunekit_phase_") + phase + "_seconds")
      .add(seconds);
}

}  // namespace

Methodology::Methodology(MethodologyOptions options) : options_(std::move(options)) {}

std::shared_ptr<robust::WorkerPool> Methodology::make_pool() const {
  // The executor's spec wins when both phases request isolation — it carries
  // the parallelism the pool should be sized for.
  const robust::IsolationOptions* iso = nullptr;
  if (options_.executor.isolation.mode == robust::IsolationMode::Process) {
    iso = &options_.executor.isolation;
  } else if (options_.sensitivity.isolation.mode == robust::IsolationMode::Process) {
    iso = &options_.sensitivity.isolation;
  }
  if (!iso) return nullptr;
  robust::IsolationOptions iso_copy = *iso;
  if (iso_copy.telemetry == nullptr) iso_copy.telemetry = options_.telemetry;
  return robust::WorkerPool::create(
      iso_copy, std::max<std::size_t>(1, options_.executor.n_threads));
}

InfluenceAnalysis Methodology::analyze(TunableApp& app) const {
  return analyze_impl(app, make_pool());
}

InfluenceAnalysis Methodology::analyze_impl(
    TunableApp& app, std::shared_ptr<robust::WorkerPool> pool) const {
  const search::SearchSpace& space = app.space();
  const auto routines = app.routines();
  const auto outer = app.outer_regions();
  obs::Telemetry* telemetry = options_.telemetry;

  // --- Phase 1/2: sensitivity analysis around the app's baseline. ---
  stats::SensitivityOptions sens_opts = options_.sensitivity;
  if (sens_opts.telemetry == nullptr) sens_opts.telemetry = telemetry;
  if (pool) {
    sens_opts.isolation.mode = robust::IsolationMode::Process;
    sens_opts.isolation.pool = pool;
  }
  if (options_.use_app_expert_variations) {
    const auto expert = app.expert_variations();
    if (!expert.empty() && sens_opts.expert_values.empty()) {
      sens_opts.mode = stats::VariationMode::ExpertValues;
      sens_opts.expert_values = expert;
    }
  }
  stats::SensitivityAnalyzer analyzer(sens_opts);
  obs::ScopedSpan sens_span(telemetry, "phase.sensitivity");
  Stopwatch sens_watch;
  stats::SensitivityReport report = analyzer.analyze(app, space, app.baseline());
  add_phase_seconds(telemetry, "sensitivity", sens_watch.seconds());
  sens_span.end();

  // --- Build the influence graph: routines + outer regions as vertices. ---
  std::vector<std::string> vertex_names;
  vertex_names.reserve(routines.size() + outer.size());
  for (const auto& r : routines) vertex_names.push_back(r.name);
  for (const auto& o : outer) vertex_names.push_back(o);

  std::vector<std::string> param_names;
  param_names.reserve(space.size());
  for (const auto& p : space.params()) param_names.push_back(p.name());

  graph::InfluenceGraph g(vertex_names, param_names);
  for (std::size_t ri = 0; ri < routines.size(); ++ri) {
    for (std::size_t p : routines[ri].params) g.add_owner(p, ri);
  }
  // Influence scores from the per-region sensitivity. With repeated
  // measurement the graph gets the lower confidence bound instead of the raw
  // score, so a cross edge (and the merged search it forces) appears only
  // when the influence clears the cutoff after measurement noise is
  // discounted — a noisy spike on a single run cannot inflate the DAG.
  const bool use_lcb = sens_opts.measure.repeats > 1;
  const auto& report_regions = report.regions();
  for (std::size_t v = 0; v < vertex_names.size(); ++v) {
    const bool have_region = std::find(report_regions.begin(), report_regions.end(),
                                       vertex_names[v]) != report_regions.end();
    if (!have_region) {
      log_warn("methodology: app does not report region '", vertex_names[v],
               "'; its influences stay zero");
      continue;
    }
    for (std::size_t p = 0; p < space.size(); ++p) {
      const double influence =
          use_lcb ? report.lower_bound(vertex_names[v], p, options_.confidence_z)
                  : report.score(vertex_names[v], p);
      g.set_influence(p, v, influence);
    }
  }

  InfluenceAnalysis analysis{std::move(report), std::move(g), {}, {}, 0};
  analysis.observations = analysis.sensitivity.observations;

  // --- Feature importance + correlations over a sampled dataset. ---
  if (options_.importance_samples > 0) {
    obs::ScopedSpan imp_span(telemetry, "phase.importance");
    Stopwatch imp_watch;
    const bool traced = telemetry != nullptr && telemetry->enabled();
    const std::size_t n = options_.importance_samples;
    if (!stats::one_in_ten_ok(n, space.size())) {
      log_warn("methodology: ", n, " samples for ", space.size(),
               " parameters violates the one-in-ten rule (need ",
               stats::one_in_ten_required(space.size()),
               "); importance estimates may be unstable");
    }
    tunekit::Rng rng(options_.seed ^ 0xfeedface);
    const auto configs = search::sample_valid_configs(space, n, rng);
    // Importance samples are random configurations — exactly the kind of
    // probing most likely to hit a crashing corner of the space, so with
    // isolation active they run out of process too.
    std::unique_ptr<robust::SandboxedApp> sandboxed;
    if (pool) {
      sandboxed = std::make_unique<robust::SandboxedApp>(
          app, pool, options_.sensitivity.measure.watchdog.timeout_seconds);
    }
    TunableApp& eval_app = sandboxed ? *sandboxed : app;
    // A flaky app must not abort the whole analysis: failed or non-finite
    // samples are dropped and the forest fits whatever survived.
    std::vector<std::vector<double>> units;
    std::vector<double> y;
    units.reserve(n);
    y.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      obs::ScopedSpan eval_span(telemetry, "eval");
      if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
      double value = std::numeric_limits<double>::quiet_NaN();
      robust::EvalOutcome outcome = robust::EvalOutcome::Crashed;
      try {
        value = eval_app.evaluate(configs[i]);
        outcome = robust::classify_value(value);
      } catch (const std::exception& e) {
        log_warn("methodology: importance sample failed (", e.what(), "); dropped");
      } catch (...) {
        log_warn("methodology: importance sample threw a non-standard exception; dropped");
      }
      eval_span.end();
      if (traced) {
        obs::outcome_counter(telemetry->metrics(), robust::to_string(outcome)).inc();
      }
      if (!std::isfinite(value)) continue;
      units.push_back(space.encode_unit(configs[i]));
      y.push_back(value);
    }
    analysis.observations += n;
    if (units.size() < n) {
      log_warn("methodology: ", n - units.size(), " of ", n,
               " importance samples failed");
    }

    if (units.size() >= 2) {
      linalg::Matrix x(units.size(), space.size());
      for (std::size_t i = 0; i < units.size(); ++i) {
        for (std::size_t k = 0; k < space.size(); ++k) x(i, k) = units[i][k];
      }
      stats::RandomForest forest(options_.forest);
      forest.fit(x, y);
      analysis.importance = forest.impurity_importance();
      analysis.correlated = stats::correlated_pairs(x, options_.correlation_threshold);
    } else {
      log_warn("methodology: too few successful importance samples (", units.size(),
               "); skipping the random-forest step");
    }
    add_phase_seconds(telemetry, "importance", imp_watch.seconds());
  }

  return analysis;
}

graph::SearchPlan Methodology::make_plan(TunableApp& app,
                                         const InfluenceAnalysis& analysis) const {
  graph::PlanOptions plan_opts;
  plan_opts.cutoff = options_.cutoff;
  plan_opts.max_dims = options_.max_dims;
  plan_opts.importance = analysis.importance;
  plan_opts.bound_groups = app.bound_groups();

  const auto outer = app.outer_regions();
  for (const auto& o : outer) {
    plan_opts.outer_routines.push_back(analysis.graph.routine_index(o));
  }
  return graph::build_plan(analysis.graph, plan_opts);
}

MethodologyResult Methodology::run(TunableApp& app) const {
  Stopwatch watch;
  obs::Telemetry* telemetry = options_.telemetry;
  obs::ScopedSpan run_span(telemetry, "methodology.run");
  // One shared pool for every phase: quarantine knowledge gathered during
  // the analysis protects the execution phase (and vice versa), and workers
  // survive across phases instead of respawning.
  const auto pool = make_pool();
  MethodologyResult result{analyze_impl(app, pool), {}, {}, 0, 0.0};
  {
    obs::ScopedSpan part_span(telemetry, "phase.partition");
    Stopwatch part_watch;
    result.plan = make_plan(app, result.analysis);
    add_phase_seconds(telemetry, "partition", part_watch.seconds());
  }

  ExecutorOptions exec_opts = options_.executor;
  if (exec_opts.telemetry == nullptr) exec_opts.telemetry = telemetry;
  if (pool) {
    exec_opts.isolation.mode = robust::IsolationMode::Process;
    exec_opts.isolation.pool = pool;
  }
  PlanExecutor executor(exec_opts);
  {
    obs::ScopedSpan exec_span(telemetry, "phase.execution");
    Stopwatch exec_watch;
    result.execution = executor.execute(app, result.plan);
    add_phase_seconds(telemetry, "execution", exec_watch.seconds());
  }

  result.total_observations = result.analysis.observations +
                              result.execution.total_evaluations;
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::core
