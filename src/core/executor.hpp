#pragma once
// PlanExecutor: runs a SearchPlan against a TunableApp.
//
// Stages run sequentially; stage results (tuned parameter values) are
// written into the base configuration before the next stage starts — this
// is how "first determine the batch value that optimizes the Slater
// Determinant region" happens before the per-group searches. Searches
// within a stage are independent (disjoint parameters) and run in parallel
// when the app is thread-safe and n_threads > 1.
//
// Backend choice per search: BO by default; a search whose discrete
// sub-space is smaller than its evaluation budget is exhaustively
// enumerated instead (the paper obtains the MPI grid "without incurring the
// overhead of a guided BO search").

#include <string>
#include <vector>

#include "bo/bayes_opt.hpp"
#include "graph/search_plan.hpp"
#include "robust/measure.hpp"
#include "robust/worker_pool.hpp"
#include "search/grid_search.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::core {

class TunableApp;  // fwd

struct ExecutorOptions {
  /// Evaluation budget per search: max(min_evals, evals_per_param * dims).
  /// The paper uses 10 x num_parameters.
  std::size_t evals_per_param = 10;
  std::size_t min_evals = 20;

  /// Total evaluation budget across all searches (the paper's step 1:
  /// "define the maximum cost of the tuning search"). 0 = unlimited. When
  /// the remaining budget is smaller than a search's nominal budget, the
  /// search is truncated; searches after exhaustion are skipped (their
  /// parameters keep the base configuration).
  std::size_t max_total_evals = 0;

  /// Template BO options (seed is offset per search).
  bo::BoOptions bo;

  /// Enumerate exhaustively instead of BO when the discrete sub-space has
  /// at most this multiple of the search budget (1.0 = enumerate only when
  /// cheaper than the BO budget; 0 disables enumeration).
  double enumerate_threshold = 1.0;

  /// Parallel searches within a stage (requires a thread-safe app).
  std::size_t n_threads = 1;

  /// Route every search through the session service (service::TuningSession
  /// + service::EvalScheduler) instead of the blocking drivers: candidates
  /// are asked in constant-liar batches and evaluated concurrently on
  /// n_threads workers — *intra-search* parallelism, which pays off when a
  /// single evaluation is expensive. Requires a thread-safe app; stage-level
  /// search parallelism is disabled to avoid nesting thread pools. With a
  /// checkpoint_dir set, each search journals to
  /// <dir>/search_<id>.journal.jsonl and bo.resume picks a killed search
  /// back up with its in-flight candidates re-issued.
  bool session_scheduler = false;

  /// Directory for per-search checkpoint files; empty disables.
  std::string checkpoint_dir;

  /// Hardened-evaluation settings applied to every search evaluation:
  /// watchdog timeout, transient-crash retries, and repeats with MAD outlier
  /// rejection. Defaults are the seed behavior (one bare call, no deadline).
  robust::MeasureOptions measure;

  /// IsolationMode::Process wraps the app in a SandboxedApp: every search
  /// evaluation and the final confirming measurement run in worker
  /// processes, the watchdog deadline becomes the workers' SIGKILL deadline,
  /// and repeatedly-crashing configurations are quarantined. Defaults to
  /// Thread — the in-process path.
  robust::IsolationOptions isolation;

  /// Spans ("search.<name>" per planned search, propagated into the drivers)
  /// and evaluation metrics (null = disabled, the default).
  obs::Telemetry* telemetry = nullptr;

  std::uint64_t seed = 1234;
};

struct SearchOutcome {
  graph::PlannedSearch planned;
  search::SearchResult result;
  /// Tuned values adopted into the final configuration, by parameter name.
  search::NamedConfig tuned_values;
};

struct ExecutionResult {
  std::vector<SearchOutcome> outcomes;
  search::Config final_config;
  search::RegionTimes final_times;
  std::size_t total_evaluations = 0;
  double seconds = 0.0;
};

class PlanExecutor {
 public:
  explicit PlanExecutor(ExecutorOptions options = {});

  ExecutionResult execute(TunableApp& app, const graph::SearchPlan& plan) const;

  /// Budget for one search of the given dimensionality.
  std::size_t budget_for(std::size_t dims) const;

 private:
  ExecutorOptions options_;
};

}  // namespace tunekit::core
