#pragma once
// The paper's methodology, end to end (§IV):
//
//   1. constrain the search (the app's SearchSpace constraints + budget),
//   2. statistical insights (sensitivity on the total runtime, feature
//      importance via random forest, Pearson correlation),
//   3. per-routine sensitivity analysis to infer interdependence,
//   4. DAG construction + cut-off pruning + partition into an optimized set
//      of merged/independent searches, capped at 10 dimensions,
//   5. shared kernels tuned only in their highest-impact region.
//
// analyze() performs phases 1-3, make_plan() phase 4-5, and run() executes
// the plan with the chosen search backend (BO by default) through
// PlanExecutor.

#include <cstdint>
#include <memory>
#include <optional>

#include "bo/bayes_opt.hpp"
#include "core/executor.hpp"
#include "core/tunable_app.hpp"
#include "graph/influence_graph.hpp"
#include "graph/search_plan.hpp"
#include "linalg/matrix.hpp"
#include "stats/correlation.hpp"
#include "stats/random_forest.hpp"
#include "stats/sensitivity.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::core {

struct MethodologyOptions {
  /// Influence cut-off (fraction) for edge pruning.
  double cutoff = 0.10;
  /// Per-search dimension cap.
  std::size_t max_dims = 10;

  /// Sensitivity analysis settings (V variations, ladder factor, repeated
  /// measurement via sensitivity.measure, ...).
  stats::SensitivityOptions sensitivity;

  /// With repeated measurement (sensitivity.measure.repeats > 1) the graph
  /// influence becomes the score's lower confidence bound
  /// max(0, score - z * stderr): a DAG cross edge is created only when the
  /// influence is distinguishable from measurement noise at this z. Ignored
  /// for single measurements (stderr is 0, the bound is the score).
  double confidence_z = 1.96;

  /// Adopt the app's expert_variations() automatically (the paper's
  /// protocol). Set false to force the configured variation mode, e.g. for
  /// ladder-based ablations of V.
  bool use_app_expert_variations = true;

  /// Feature-importance dataset size (0 disables the random-forest step and
  /// ranks by influence instead). The one-in-ten rule is checked and a
  /// warning logged when violated.
  std::size_t importance_samples = 100;
  stats::ForestOptions forest;

  /// Pearson threshold for reporting correlated parameter pairs.
  double correlation_threshold = 0.5;

  /// Search execution settings (budget rule, backend, parallelism).
  ExecutorOptions executor;

  /// Root of the span tree ("methodology.run" → "phase.*") plus
  /// tunekit_phase_<name>_seconds gauges; propagated into every phase (null =
  /// disabled, the default).
  obs::Telemetry* telemetry = nullptr;

  std::uint64_t seed = 42;
};

/// Phase 1-3 output: scores, graph, insight data.
struct InfluenceAnalysis {
  stats::SensitivityReport sensitivity;
  graph::InfluenceGraph graph;
  /// Normalized feature importance per parameter (empty if disabled).
  std::vector<double> importance;
  /// Correlated parameter pairs above the threshold.
  std::vector<stats::CorrelatedPair> correlated;
  /// Total application evaluations consumed by the analysis.
  std::size_t observations = 0;
};

struct MethodologyResult {
  InfluenceAnalysis analysis;
  graph::SearchPlan plan;
  ExecutionResult execution;
  /// Analysis + search evaluations.
  std::size_t total_observations = 0;
  double seconds = 0.0;
};

class Methodology {
 public:
  explicit Methodology(MethodologyOptions options = {});

  const MethodologyOptions& options() const { return options_; }

  /// Phases 1-3: sensitivity per routine/outer region, influence graph,
  /// feature importance, correlations.
  InfluenceAnalysis analyze(TunableApp& app) const;

  /// Phases 4-5: partition the (pruned) graph into the final search set.
  graph::SearchPlan make_plan(TunableApp& app, const InfluenceAnalysis& analysis) const;

  /// Full pipeline: analyze, plan, execute.
  MethodologyResult run(TunableApp& app) const;

 private:
  /// One worker pool for the whole pipeline, built from whichever phase
  /// requested process isolation — sensitivity, importance sampling, and
  /// execution then share workers and quarantine knowledge. Null when no
  /// phase asked for isolation (or the pool could not start).
  std::shared_ptr<robust::WorkerPool> make_pool() const;
  InfluenceAnalysis analyze_impl(TunableApp& app,
                                 std::shared_ptr<robust::WorkerPool> pool) const;

  MethodologyOptions options_;
};

}  // namespace tunekit::core
