#include "core/report.hpp"

#include <sstream>

#include "common/table.hpp"
#include "search/config.hpp"

namespace tunekit::core {

std::string sensitivity_table(const stats::SensitivityReport& report,
                              const std::string& region, std::size_t k) {
  Table table({"Feature", "Variability"});
  for (const auto& e : report.top(region, k)) {
    table.add_row({e.param_name, Table::pct(e.variability)});
  }
  std::ostringstream os;
  os << "Region: " << region << "\n" << table.str();
  return os.str();
}

std::string sensitivity_tables(const stats::SensitivityReport& report,
                               const std::vector<std::string>& regions, std::size_t k) {
  std::vector<std::string> headers;
  for (const auto& r : regions) {
    headers.push_back(r + " feature");
    headers.push_back("var");
  }
  Table table(headers);
  std::vector<std::vector<stats::SensitivityEntry>> tops;
  tops.reserve(regions.size());
  for (const auto& r : regions) tops.push_back(report.top(r, k));
  for (std::size_t row = 0; row < k; ++row) {
    std::vector<std::string> cells;
    for (const auto& top : tops) {
      if (row < top.size()) {
        cells.push_back(top[row].param_name);
        cells.push_back(Table::pct(top[row].variability));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    table.add_row(std::move(cells));
  }
  return table.str();
}

std::string plan_table(const graph::SearchPlan& plan, const graph::InfluenceGraph& g) {
  Table table({"Search", "Stage", "#Params", "Parameters", "Objective"});
  for (const auto& s : plan.searches) {
    std::ostringstream params, objective;
    for (std::size_t i = 0; i < s.params.size(); ++i) {
      if (i) params << ", ";
      params << g.param_name(s.params[i]);
    }
    if (s.objective_regions.empty()) {
      objective << "total";
    } else {
      for (std::size_t i = 0; i < s.objective_regions.size(); ++i) {
        if (i) objective << "+";
        objective << s.objective_regions[i];
      }
    }
    table.add_row({s.name, std::to_string(s.stage), std::to_string(s.params.size()),
                   params.str(), objective.str()});
  }
  std::ostringstream os;
  os << table.str();
  if (!plan.untuned_params.empty()) {
    os << "Untuned (defaults): ";
    for (std::size_t i = 0; i < plan.untuned_params.size(); ++i) {
      if (i) os << ", ";
      os << g.param_name(plan.untuned_params[i]);
    }
    os << "\n";
  }
  return os.str();
}

std::string execution_report(const TunableApp& app, const ExecutionResult& exec) {
  std::ostringstream os;
  Table table({"Search", "Method", "Evals", "Best value", "Seconds"});
  for (const auto& o : exec.outcomes) {
    table.add_row({o.planned.name, o.result.method, std::to_string(o.result.evaluations),
                   Table::fmt(o.result.best_value, 4), Table::fmt(o.result.seconds, 2)});
  }
  os << table.str();
  os << "Final objective (total): " << Table::fmt(exec.final_times.total, 4) << "\n";
  os << "Final configuration: " << search::describe(app.space(), exec.final_config)
     << "\n";
  os << "Total search evaluations: " << exec.total_evaluations << "\n";
  return os.str();
}

std::string full_report(const TunableApp& app, const MethodologyResult& result) {
  std::ostringstream os;
  os << "=== Methodology report: " << app.name() << " ===\n\n";
  os << "-- Influence analysis (" << result.analysis.observations
     << " observations) --\n";
  std::vector<std::string> regions = result.analysis.sensitivity.regions();
  os << sensitivity_tables(result.analysis.sensitivity, regions,
                           std::min<std::size_t>(10, app.space().size()));
  os << "\n-- Search plan (cutoff " << Table::pct(result.plan.cutoff, 0) << ") --\n";
  os << plan_table(result.plan, result.analysis.graph);
  os << "\n-- Execution --\n";
  os << execution_report(app, result.execution);
  os << "\nTotal observations (analysis + search): " << result.total_observations << "\n";
  os << "Wall time: " << Table::fmt(result.seconds, 2) << " s\n";
  return os.str();
}

}  // namespace tunekit::core
