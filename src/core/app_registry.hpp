#pragma once
// Registry of the built-in TunableApps, shared by tunekit_cli and
// tunekit_worker: both sides of the process sandbox must construct the
// *same* application from the same "--app <name> --seed N" spec, or the
// worker would evaluate a different space than the supervisor searches.

#include <cstdint>
#include <memory>
#include <string>

#include "core/tunable_app.hpp"

namespace tunekit::core {

/// A built-in app plus the per-app defaults the CLI applies when the user
/// did not override them.
struct AppBundle {
  std::unique_ptr<TunableApp> app;
  double default_cutoff = 0.10;
  std::size_t default_variations = 5;
};

/// Construct a built-in app by name: synth:case1..case5, tddft:cs1,
/// tddft:cs2, minislater. Throws std::runtime_error on an unknown name.
AppBundle make_builtin_app(const std::string& name, std::uint64_t seed);

/// The names make_builtin_app accepts, for usage/error messages.
const char* builtin_app_names();

}  // namespace tunekit::core
