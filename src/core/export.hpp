#pragma once
// Result exporters: CSV for figure series (best-so-far trajectories) and
// JSON for full methodology runs, so external plotting tools can regenerate
// the paper's figures from bench output.

#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/methodology.hpp"
#include "search/result.hpp"

namespace tunekit::core {

/// Write labeled trajectories as CSV: one `evaluation` column plus one
/// column per series (shorter series pad with their final value). This is
/// the Figure 6 format.
void write_trajectories_csv(const std::string& path,
                            const std::vector<std::string>& labels,
                            const std::vector<std::vector<double>>& series);

/// Serialize a search result (best config, values, trajectory) to JSON.
json::Value search_result_to_json(const search::SearchSpace& space,
                                  const search::SearchResult& result);

/// Serialize a full methodology run: analysis scores, plan, outcomes, final
/// configuration.
json::Value methodology_result_to_json(const TunableApp& app,
                                       const MethodologyResult& result);

/// Convenience: write any json value to a file.
void write_json(const std::string& path, const json::Value& value);

}  // namespace tunekit::core
