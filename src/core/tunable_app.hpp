#pragma once
// TunableApp: what an application must expose for the methodology to tune
// it — a search space, a set of routines (each owning parameters), and a
// region-timed evaluation. The synthetic function family and the RT-TDDFT
// simulator both implement this interface; so can any user application.

#include <string>
#include <vector>

#include "graph/search_plan.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace tunekit::core {

/// A tunable routine (the paper's "kernel or code region"): its region name
/// must match a key of RegionTimes::regions, and it owns the parameters
/// that configure its code. A parameter may be owned by several routines
/// (shared kernel) or by none (application-level).
struct RoutineSpec {
  std::string name;
  std::vector<std::size_t> params;
};

class TunableApp : public search::RegionObjective {
 public:
  /// The full parameter space, including validity constraints.
  virtual const search::SearchSpace& space() const = 0;

  /// Tunable routines. Region names must appear in evaluate_regions output.
  virtual std::vector<RoutineSpec> routines() const = 0;

  /// Enclosing regions (e.g. the Slater Determinant around Groups 1-3):
  /// reported in RegionTimes, used as stage-0 objectives, excluded from the
  /// merge step. Empty for flat applications.
  virtual std::vector<std::string> outer_regions() const { return {}; }

  /// Parameter sets that must always be tuned in the same search (e.g. the
  /// MPI grid triple). Indices refer to space().
  virtual std::vector<graph::BoundGroup> bound_groups() const { return {}; }

  /// Baseline configuration for the sensitivity analysis. Defaults to the
  /// space defaults; override to supply the paper's "randomly selected
  /// baseline".
  virtual search::Config baseline() const { return space().defaults(); }

  /// Expert-suggested variation values per parameter (paper §VIII: five
  /// variations per parameter "suggested by experts"). Empty map = use the
  /// multiplicative ladder.
  virtual std::map<std::string, std::vector<double>> expert_variations() const {
    return {};
  }

  /// Human-readable name used in reports.
  virtual std::string name() const { return "app"; }
};

/// Helper objective: the sum of selected region times of a TunableApp
/// (a joint search over merged routines minimizes their combined runtime).
class RegionSumObjective final : public search::Objective {
 public:
  RegionSumObjective(TunableApp& app, std::vector<std::string> regions)
      : app_(app), regions_(std::move(regions)) {}

  double evaluate(const search::Config& config) override {
    return sum_regions(app_.evaluate_regions(config));
  }

  double evaluate_cancellable(const search::Config& config,
                              const search::CancelFlag& cancel) override {
    return sum_regions(app_.evaluate_regions_cancellable(config, cancel));
  }

  bool thread_safe() const override { return app_.thread_safe(); }

 private:
  double sum_regions(const search::RegionTimes& t) const {
    if (regions_.empty()) return t.total;
    double acc = 0.0;
    for (const auto& r : regions_) acc += t.region_or_total(r);
    return acc;
  }

  TunableApp& app_;
  std::vector<std::string> regions_;
};

}  // namespace tunekit::core
