#pragma once
// WorkerPool: a supervised pool of sandboxed worker processes, plus the
// objective adapters that let every existing evaluation path (scheduler,
// sensitivity analysis, plan executor) route its calls through it.
//
// The pool owns N WorkerProcess slots. evaluate() checks the crash
// quarantine, checks out a slot (blocking until one is free), lazily
// (re)spawns its worker with bounded exponential backoff, runs the round
// trip, and — when the worker died — schedules a respawn for the next
// checkout. A slot whose worker dies `max_restarts` times in a row stops
// respawning; when every slot has given up the pool reports unhealthy and
// callers degrade to the in-process path.
//
// Isolation is threaded through the rest of the system as IsolationOptions:
// SchedulerOptions, stats::SensitivityOptions, and core::ExecutorOptions all
// carry one, defaulting to IsolationMode::Thread (the PR-2 in-process
// watchdog — exactly the old behavior). Methodology shares a single pool
// across the sensitivity and execution phases so quarantine knowledge and
// worker restarts carry over.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tunable_app.hpp"
#include "robust/eval_backend.hpp"
#include "robust/process_sandbox.hpp"
#include "robust/quarantine.hpp"
#include "search/objective.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::robust {

enum class IsolationMode {
  Thread,   ///< PR-2 in-process watchdog (cooperative cancel, detached threads).
  Process,  ///< Out-of-process workers, SIGKILL deadlines, crash quarantine.
};

const char* to_string(IsolationMode mode);
/// Parses "thread" / "process"; throws std::invalid_argument otherwise.
IsolationMode isolation_from_string(const std::string& name);

class WorkerPool;

struct IsolationOptions {
  IsolationMode mode = IsolationMode::Thread;
  /// Worker process settings (Process mode).
  SandboxOptions sandbox;
  /// Crashes of one config before it is quarantined (0 disables).
  std::size_t quarantine_after = 2;
  /// A pre-built pool to share across phases (e.g. Methodology runs
  /// sensitivity and execution against the same workers). When null, each
  /// consumer creates its own from `sandbox`.
  std::shared_ptr<WorkerPool> pool;
  /// Telemetry to trace rpc round trips and worker-side timings into
  /// (null = disabled; the hot path then costs one branch).
  obs::Telemetry* telemetry = nullptr;
};

class WorkerPool final : public EvalBackend {
 public:
  struct Stats {
    std::atomic<std::size_t> dispatched{0};      ///< requests sent to a worker
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> crashed{0};
    std::atomic<std::size_t> timed_out{0};
    std::atomic<std::size_t> invalid{0};
    std::atomic<std::size_t> non_finite{0};
    std::atomic<std::size_t> restarts{0};        ///< worker respawns after death
    std::atomic<std::size_t> quarantine_hits{0}; ///< evals refused pre-dispatch
  };

  /// Build a pool of `n_workers` per `iso`, or return iso.pool when the
  /// caller was handed a shared one. Returns null — after a log_warn — when
  /// isolation is not requested, unsupported, unconfigured, or the first
  /// worker cannot be spawned (callers degrade to the in-process path).
  static std::shared_ptr<WorkerPool> create(const IsolationOptions& iso,
                                            std::size_t n_workers);

  WorkerPool(SandboxOptions sandbox, std::size_t n_workers,
             std::size_t quarantine_after = 2,
             obs::Telemetry* telemetry = nullptr);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Evaluate `config` on some worker, waiting for a free slot if needed.
  /// Never throws: every failure mode comes back as a classified
  /// SandboxResult. Thread-safe.
  SandboxResult evaluate(const search::Config& config,
                         double deadline_seconds) override;

  /// At least one slot can still (re)spawn a worker.
  bool healthy() const override;

  std::size_t concurrency() const override { return slots_.size(); }
  std::size_t n_workers() const { return slots_.size(); }
  const Stats& stats() const { return stats_; }
  obs::Telemetry* telemetry() const { return telemetry_; }
  CrashQuarantine& quarantine() { return quarantine_; }
  const CrashQuarantine& quarantine() const { return quarantine_; }

 private:
  struct Slot {
    std::unique_ptr<WorkerProcess> worker;
    std::size_t consecutive_deaths = 0;
    bool in_use = false;
    bool given_up = false;
  };

  std::size_t acquire_slot();
  void release_slot(std::size_t index);

  SandboxOptions sandbox_;
  CrashQuarantine quarantine_;
  std::vector<Slot> slots_;
  Stats stats_;
  obs::Telemetry* telemetry_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
};

/// Scalar objective whose evaluations run on an EvalBackend (a local
/// WorkerPool or a fleet dispatcher). Failures are re-thrown as EvalFailure
/// with the classified outcome, the contract every driver (RobustMeasurer,
/// BayesOpt, schedulers) already understands.
class SandboxedObjective final : public search::Objective {
 public:
  SandboxedObjective(std::shared_ptr<EvalBackend> pool, double deadline_seconds)
      : pool_(std::move(pool)), deadline_seconds_(deadline_seconds) {}

  double evaluate(const search::Config& config) override;
  /// The pool enforces its own (SIGKILL) deadline; the flag is ignored.
  double evaluate_cancellable(const search::Config& config,
                              const search::CancelFlag&) override {
    return evaluate(config);
  }
  bool thread_safe() const override { return true; }

 private:
  std::shared_ptr<EvalBackend> pool_;
  double deadline_seconds_;
};

/// Region-reporting variant: what the sensitivity analysis consumes.
class SandboxedRegionObjective final : public search::RegionObjective {
 public:
  SandboxedRegionObjective(std::shared_ptr<EvalBackend> pool, double deadline_seconds)
      : pool_(std::move(pool)), deadline_seconds_(deadline_seconds) {}

  search::RegionTimes evaluate_regions(const search::Config& config) override;
  search::RegionTimes evaluate_regions_cancellable(
      const search::Config& config, const search::CancelFlag&) override {
    return evaluate_regions(config);
  }
  bool thread_safe() const override { return true; }

 private:
  std::shared_ptr<EvalBackend> pool_;
  double deadline_seconds_;
};

/// TunableApp decorator: metadata (space, routines, baseline, ...) comes
/// from the in-process app object; evaluations run out of process on the
/// pool. This is the wrapping point for the executor and methodology — the
/// full-space config crosses the process boundary, so subspace embedding
/// stays supervisor-side where the base configuration lives.
class SandboxedApp final : public core::TunableApp {
 public:
  SandboxedApp(core::TunableApp& inner, std::shared_ptr<EvalBackend> pool,
               double deadline_seconds)
      : inner_(inner), eval_(std::move(pool), deadline_seconds) {}

  const search::SearchSpace& space() const override { return inner_.space(); }
  std::vector<core::RoutineSpec> routines() const override { return inner_.routines(); }
  std::vector<std::string> outer_regions() const override {
    return inner_.outer_regions();
  }
  std::vector<graph::BoundGroup> bound_groups() const override {
    return inner_.bound_groups();
  }
  search::Config baseline() const override { return inner_.baseline(); }
  std::map<std::string, std::vector<double>> expert_variations() const override {
    return inner_.expert_variations();
  }
  std::string name() const override { return inner_.name(); }

  search::RegionTimes evaluate_regions(const search::Config& config) override {
    return eval_.evaluate_regions(config);
  }
  search::RegionTimes evaluate_regions_cancellable(
      const search::Config& config, const search::CancelFlag&) override {
    return eval_.evaluate_regions(config);
  }
  /// Worker processes are independent; concurrent evaluations are safe
  /// regardless of the inner app's thread safety.
  bool thread_safe() const override { return true; }

 private:
  core::TunableApp& inner_;
  SandboxedRegionObjective eval_;
};

}  // namespace tunekit::robust
