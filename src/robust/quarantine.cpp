#include "robust/quarantine.hpp"

#include <cstring>

namespace tunekit::robust {

std::string CrashQuarantine::key_of(const search::Config& config) {
  // Exact bit patterns: the identity that survives a journal round trip
  // (json serializes doubles with enough digits to reparse exactly).
  std::string key(config.size() * sizeof(double), '\0');
  if (!config.empty()) {
    std::memcpy(key.data(), config.data(), config.size() * sizeof(double));
  }
  return key;
}

std::size_t CrashQuarantine::record_crash(const search::Config& config) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[key_of(config)];
  if (e.config.empty()) e.config = config;
  return ++e.crashes;
}

bool CrashQuarantine::quarantined(const search::Config& config) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key_of(config));
  return it != entries_.end() && it->second.crashes >= threshold_;
}

void CrashQuarantine::quarantine_now(const search::Config& config) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[key_of(config)];
  if (e.config.empty()) e.config = config;
  if (e.crashes < threshold_) e.crashes = threshold_;
}

std::size_t CrashQuarantine::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (e.crashes >= threshold_) ++n;
  }
  return n;
}

std::vector<search::Config> CrashQuarantine::configs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<search::Config> out;
  for (const auto& [key, e] : entries_) {
    if (e.crashes >= threshold_) out.push_back(e.config);
  }
  return out;
}

}  // namespace tunekit::robust
