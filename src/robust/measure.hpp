#pragma once
// Robust repeated measurement (Gramacy & Taddy: variable-selection scores
// computed from noisy code timings need replication to be trustworthy).
//
// RobustMeasurer takes `repeats` watchdog-guarded measurements of one
// configuration, rejects outliers by median-absolute-deviation, and returns
// the trimmed mean together with a robust dispersion estimate
// (1.4826 · MAD ≈ σ under Gaussian noise) — giving BO and the Phase-1
// influence analysis variance-aware observations instead of a single draw
// that one OS hiccup can ruin.
//
// A measurement is Ok when at least `min_ok` of the repeats succeeded; the
// failed repeats are tolerated (a flaky run should not discard its siblings).
// When every repeat fails, the outcome reported is the failure kind observed
// most often, so the EvalDb/journal records *why* the point failed.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "robust/outcome.hpp"
#include "robust/watchdog.hpp"
#include "search/objective.hpp"

namespace tunekit::robust {

struct MeasureOptions {
  /// Measurements per configuration (1 = single measurement, seed behavior).
  std::size_t repeats = 1;
  /// Samples farther than this many (scaled) MADs from the median are
  /// rejected before averaging; <= 0 disables outlier rejection.
  double mad_threshold = 3.5;
  /// Successful repeats required for an Ok outcome (clamped to repeats).
  std::size_t min_ok = 1;
  /// Per-measurement deadline and transient-crash retry policy.
  WatchdogOptions watchdog;
};

/// True when the options reduce to one bare objective call.
bool is_trivial(const MeasureOptions& options);

struct Measurement {
  EvalOutcome outcome = EvalOutcome::Crashed;
  /// MAD-trimmed mean of the successful samples; NaN unless outcome == Ok.
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Robust sigma (1.4826 · MAD) of the kept samples; 0 for a single sample.
  double dispersion = 0.0;
  /// Standard error of `value` (dispersion / sqrt(kept samples)).
  double stderr_of_mean = 0.0;
  /// Region-time estimates (region measurement path) and their dispersions.
  search::RegionTimes regions;
  std::map<std::string, double> region_dispersion;

  std::size_t n_samples = 0;   ///< Repeats attempted.
  std::size_t n_ok = 0;        ///< Repeats that produced a finite value.
  std::size_t n_rejected = 0;  ///< Ok samples discarded as outliers.
  /// Total wall-clock seconds across every repeat and retry.
  double seconds = 0.0;
  /// Error message of the last failed repeat (empty if none failed).
  std::string error;

  std::size_t n_kept() const { return n_ok - n_rejected; }
};

/// Median of a sample set (empty -> NaN).
double median_of(std::vector<double> values);
/// Median absolute deviation around `center`.
double mad_of(const std::vector<double>& values, double center);
/// Indices of the samples kept by the MAD rule (threshold <= 0 keeps all).
std::vector<std::size_t> mad_keep(const std::vector<double>& values, double threshold);

class RobustMeasurer {
 public:
  explicit RobustMeasurer(MeasureOptions options = {});

  const MeasureOptions& options() const { return options_; }

  Measurement measure(search::Objective& objective, const search::Config& config) const;
  Measurement measure_regions(search::RegionObjective& objective,
                              const search::Config& config) const;

 private:
  Measurement combine(std::vector<GuardedEval> evals) const;

  MeasureOptions options_;
};

/// Objective decorator that turns every evaluate() into a robust measurement.
/// Failures re-throw as EvalFailure so drivers that only understand
/// exceptions (BayesOpt, GridSearch callers) still learn the classified
/// outcome. This is how the blocking search paths get watchdog + repeat
/// semantics without changing their loops.
class HardenedObjective final : public search::Objective {
 public:
  HardenedObjective(search::Objective& inner, MeasureOptions options)
      : inner_(inner), measurer_(options) {}

  double evaluate(const search::Config& config) override;
  bool thread_safe() const override { return inner_.thread_safe(); }

  /// The last measurement's dispersion is not exposed per call (evaluate()
  /// is value-only); use RobustMeasurer directly when dispersion matters.

 private:
  search::Objective& inner_;
  RobustMeasurer measurer_;
};

}  // namespace tunekit::robust
