#pragma once
// EvalBackend: the one interface every evaluation substrate implements.
//
// EvalScheduler (and anything else that dispatches candidate configurations)
// used to know about WorkerPool concretely, which made "evaluate somewhere
// else" — on a fleet of remote nodes, in a simulator, on a batch system — a
// scheduler change instead of a backend swap. The contract is deliberately
// the narrow one WorkerPool already honored: evaluate() never throws, every
// failure mode comes back as a classified SandboxResult, and the call blocks
// until a slot is free (callers bound concurrency themselves).
//
// Implementations: robust::WorkerPool (local fork/exec slots) and
// fleet::FleetDispatcher (TCP worker nodes with work stealing).

#include <cstddef>
#include <string>

#include "robust/process_sandbox.hpp"
#include "search/space.hpp"

namespace tunekit::robust {

class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Evaluate `config`, blocking until capacity is available. Never throws:
  /// crashes, timeouts, and transport failures all come back classified.
  /// Must be thread-safe.
  virtual SandboxResult evaluate(const search::Config& config,
                                 double deadline_seconds) = 0;

  /// The backend can still run evaluations (some slot/node is usable).
  virtual bool healthy() const = 0;

  /// The backend is temporarily shedding load (e.g. every fleet node's
  /// circuit breaker is open). Drivers should back off and retry rather
  /// than queue more work; the REST layer maps this to 503 + Retry-After.
  virtual bool degraded() const { return false; }

  /// Evaluations the backend can run concurrently — drivers size their
  /// thread pools and batches from this.
  virtual std::size_t concurrency() const = 0;
};

/// Slot/node that ran the calling thread's most recent EvalBackend::evaluate
/// (-1 before any). The sandboxed adapters erase the SandboxResult on the way
/// up (plain values / EvalFailure), so drivers that want per-slot provenance
/// (EvalDb worker_slot) read it here right after the measurement returns.
int last_worker_slot();
/// Record provenance for the calling thread; every backend sets this.
void set_last_worker_slot(int slot);

/// Fleet node that served the calling thread's most recent evaluate() (""
/// when the backend was local). Set by FleetDispatcher, cleared by local
/// backends, read by drivers for per-node journal attribution.
const std::string& last_worker_node();
void set_last_worker_node(std::string node);

}  // namespace tunekit::robust
