#pragma once
// Failure taxonomy for hardened evaluations.
//
// The seed code used an implicit convention: a NaN objective value means
// "something went wrong". Real HPC evaluations fail in distinguishable ways —
// the binary crashed, the run hung past its deadline, the configuration was
// rejected before launch, or the measurement came back non-finite — and the
// tuner reacts differently to each (retry a transient crash, never retry an
// invalid configuration, stop waiting on a hang). EvalOutcome makes the
// distinction explicit; it is recorded in EvalDb entries and session journals
// so resumes and reports know *why* a point failed, not just that it did.
//
// This header is standalone (no tunekit dependencies) so every layer — search,
// bo, service, core — can record outcomes without cycles.

#include <stdexcept>
#include <string>

namespace tunekit::robust {

enum class EvalOutcome {
  Ok,             ///< Finite measurement obtained.
  Crashed,        ///< The evaluation threw / the application aborted.
  TimedOut,       ///< The watchdog deadline expired before completion.
  InvalidConfig,  ///< The configuration was rejected before/at launch.
  NonFinite,      ///< The evaluation returned NaN or ±inf.
};

const char* to_string(EvalOutcome outcome);

/// Inverse of to_string. Throws std::invalid_argument on unknown names.
EvalOutcome outcome_from_string(const std::string& name);

/// Everything except Ok.
bool is_failure(EvalOutcome outcome);

/// Ok for finite values, NonFinite otherwise — the classification of a bare
/// objective return value with no further context.
EvalOutcome classify_value(double value);

/// Exception that carries a classified failure out of a hardened objective
/// (e.g. robust::HardenedObjective) into a driver that only understands
/// exceptions, so the driver can record the precise outcome instead of a
/// generic crash.
class EvalFailure : public std::runtime_error {
 public:
  EvalFailure(EvalOutcome outcome, const std::string& what)
      : std::runtime_error(what), outcome_(outcome) {}

  EvalOutcome outcome() const { return outcome_; }

 private:
  EvalOutcome outcome_;
};

}  // namespace tunekit::robust
