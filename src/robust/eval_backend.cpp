#include "robust/eval_backend.hpp"

namespace tunekit::robust {

namespace {
thread_local int t_last_worker_slot = -1;
thread_local std::string t_last_worker_node;
}

int last_worker_slot() { return t_last_worker_slot; }
void set_last_worker_slot(int slot) { t_last_worker_slot = slot; }

const std::string& last_worker_node() { return t_last_worker_node; }
void set_last_worker_node(std::string node) {
  t_last_worker_node = std::move(node);
}

}  // namespace tunekit::robust
