#include "robust/eval_backend.hpp"

namespace tunekit::robust {

namespace {
thread_local int t_last_worker_slot = -1;
}

int last_worker_slot() { return t_last_worker_slot; }
void set_last_worker_slot(int slot) { t_last_worker_slot = slot; }

}  // namespace tunekit::robust
