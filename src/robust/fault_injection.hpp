#pragma once
// Fault injection: seeded decorators that make a well-behaved objective
// misbehave in the ways real HPC evaluations do — crash, hang, return
// non-finite garbage, or time out under heavy-tailed measurement noise
// (BoGraph's premise: a structured tuner must ingest failure-laden logs
// gracefully). Tier-1 tests wrap the synthetic apps with these to prove the
// search backends, the scheduler, session resume, and the full methodology
// survive injected faults and still converge.
//
// Two fault models:
//  * PerCall  — every call draws fresh randomness (counter-seeded): faults
//    are transient, so retries can succeed. Use to exercise retry/backoff.
//  * PerConfig — the fault is a deterministic function of the configuration:
//    a crashing point crashes on every attempt and every process restart.
//    Use for resume-determinism tests (interrupted == uninterrupted).
//
// Hang injection is cooperative: the hang sleeps in small slices, polling
// the CancelFlag, so a watchdogged evaluation is reclaimed at the deadline
// and the worker thread exits promptly instead of leaking.

#include <atomic>
#include <cstdint>

#include "core/tunable_app.hpp"
#include "robust/outcome.hpp"
#include "search/objective.hpp"

namespace tunekit::robust {

enum class FaultModel { PerCall, PerConfig };

struct FaultOptions {
  double crash_prob = 0.0;    ///< Throw std::runtime_error.
  double hang_prob = 0.0;     ///< Sleep hang_seconds (cooperatively) first.
  double nan_prob = 0.0;      ///< Return NaN.
  double inf_prob = 0.0;      ///< Return +inf.
  double invalid_prob = 0.0;  ///< Throw std::invalid_argument.

  /// Injected hang duration; without a watchdog the call proceeds after the
  /// sleep (a straggler), with one it is cancelled at the deadline.
  double hang_seconds = 3600.0;

  /// Heavy-tailed multiplicative noise: value *= exp(noise_scale * t) with t
  /// Student-t-like (normal / sqrt(exponential)) — median 1, occasional
  /// large spikes, the shape of real timer interference. 0 disables.
  double noise_scale = 0.0;

  FaultModel model = FaultModel::PerCall;
  std::uint64_t seed = 1;
};

/// Thread-safe injection counters (what actually fired).
struct FaultStats {
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> crashes{0};
  std::atomic<std::size_t> hangs{0};
  std::atomic<std::size_t> nans{0};
  std::atomic<std::size_t> infs{0};
  std::atomic<std::size_t> invalids{0};
};

/// Shared fault-decision engine used by both decorators.
class FaultInjector {
 public:
  enum class Kind { None, Crash, Hang, Nan, Inf, Invalid };

  struct Decision {
    Kind kind = Kind::None;
    double noise_factor = 1.0;
  };

  explicit FaultInjector(FaultOptions options);

  /// Decide this call's fate. PerCall advances an atomic counter; PerConfig
  /// hashes the configuration, so the decision is stable across retries.
  Decision decide(const search::Config& config);

  /// Execute the pre-evaluation side of a decision: count it, throw for
  /// crash/invalid, sleep (cancellably) for hang. Returns false when the
  /// decision already determined a non-finite result (nan/inf).
  void apply_pre(const Decision& decision, const search::CancelFlag& cancel);

  const FaultOptions& options() const { return options_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultOptions options_;
  FaultStats stats_;
  std::atomic<std::uint64_t> counter_{0};
};

/// Scalar-objective decorator.
class FaultyObjective final : public search::Objective {
 public:
  FaultyObjective(search::Objective& inner, FaultOptions options)
      : inner_(inner), injector_(options) {}

  double evaluate(const search::Config& config) override {
    return evaluate_cancellable(config, search::CancelFlag());
  }
  double evaluate_cancellable(const search::Config& config,
                              const search::CancelFlag& cancel) override;
  bool thread_safe() const override { return inner_.thread_safe(); }

  const FaultStats& stats() const { return injector_.stats(); }

 private:
  search::Objective& inner_;
  FaultInjector injector_;
};

/// TunableApp decorator: same faults on the region-timed path, so the full
/// methodology (sensitivity, importance sampling, plan execution) can be
/// stress-tested end to end.
class FaultyApp final : public core::TunableApp {
 public:
  FaultyApp(core::TunableApp& inner, FaultOptions options)
      : inner_(inner), injector_(options) {}

  const search::SearchSpace& space() const override { return inner_.space(); }
  std::vector<core::RoutineSpec> routines() const override { return inner_.routines(); }
  std::vector<std::string> outer_regions() const override {
    return inner_.outer_regions();
  }
  std::vector<graph::BoundGroup> bound_groups() const override {
    return inner_.bound_groups();
  }
  search::Config baseline() const override { return inner_.baseline(); }
  std::map<std::string, std::vector<double>> expert_variations() const override {
    return inner_.expert_variations();
  }
  std::string name() const override { return inner_.name() + "+faults"; }
  bool thread_safe() const override { return inner_.thread_safe(); }

  search::RegionTimes evaluate_regions(const search::Config& config) override {
    return evaluate_regions_cancellable(config, search::CancelFlag());
  }
  search::RegionTimes evaluate_regions_cancellable(
      const search::Config& config, const search::CancelFlag& cancel) override;

  const FaultStats& stats() const { return injector_.stats(); }

 private:
  core::TunableApp& inner_;
  FaultInjector injector_;
};

}  // namespace tunekit::robust
