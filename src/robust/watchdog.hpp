#pragma once
// Watchdog: run one evaluation with a per-call deadline and classify the
// outcome (paper context: real HPC runs hang — Case Study 2 imposes a
// 15-minute timeout per configuration — and transient MPI/IO crashes are
// routine).
//
// With a finite timeout the evaluation runs on a worker thread holding a
// CancelFlag. If the deadline passes, the flag is set, the worker is
// abandoned (detached; its shared state keeps it memory-safe) and the caller
// gets EvalOutcome::TimedOut immediately — the tuner stops waiting. A
// cooperative objective polls the flag and exits promptly; a non-cooperative
// one keeps its thread until the evaluation finishes on its own, which is
// the best any in-process watchdog can do without killing threads.
//
// Transient crashes (EvalOutcome::Crashed) are re-attempted up to
// `max_retries` times with bounded exponential backoff. Timeouts and invalid
// configurations are not retried: a hang costs a full deadline per attempt,
// and an invalid configuration is deterministic.

#include <functional>
#include <limits>
#include <string>

#include "robust/outcome.hpp"
#include "search/objective.hpp"

namespace tunekit::robust {

struct WatchdogOptions {
  /// Per-call deadline in seconds; infinity disables the worker thread and
  /// runs the evaluation inline.
  double timeout_seconds = std::numeric_limits<double>::infinity();
  /// Extra attempts after a Crashed outcome (0 = no retries).
  std::size_t max_retries = 0;
  /// Sleep before the first retry; doubled per retry, capped at
  /// backoff_max_seconds. 0 retries immediately.
  double backoff_seconds = 0.0;
  double backoff_max_seconds = 1.0;
};

/// Result of one guarded evaluation (after retries).
struct GuardedEval {
  EvalOutcome outcome = EvalOutcome::Crashed;
  /// Objective value; NaN unless outcome == Ok.
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Region times (evaluate_regions path); empty otherwise.
  search::RegionTimes regions;
  /// Wall-clock seconds across all attempts.
  double seconds = 0.0;
  /// Attempts consumed (1 = no retry needed).
  std::size_t attempts = 0;
  /// Exception message of the last failure (empty on success).
  std::string error;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {}) : options_(options) {}

  const WatchdogOptions& options() const { return options_; }

  /// True when the options add nothing over a bare objective call (no
  /// deadline, no retries) — callers may skip thread setup entirely.
  bool trivial() const;

  GuardedEval evaluate(search::Objective& objective, const search::Config& config) const;
  GuardedEval evaluate_regions(search::RegionObjective& objective,
                               const search::Config& config) const;

 private:
  GuardedEval guard(
      const std::function<search::RegionTimes(const search::CancelFlag&)>& call) const;

  WatchdogOptions options_;
};

}  // namespace tunekit::robust
