#include "robust/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::robust {

const char* to_string(IsolationMode mode) {
  switch (mode) {
    case IsolationMode::Thread: return "thread";
    case IsolationMode::Process: return "process";
  }
  return "?";
}

IsolationMode isolation_from_string(const std::string& name) {
  if (name == "thread") return IsolationMode::Thread;
  if (name == "process") return IsolationMode::Process;
  throw std::invalid_argument("unknown isolation mode '" + name +
                              "' (expected thread or process)");
}

std::shared_ptr<WorkerPool> WorkerPool::create(const IsolationOptions& iso,
                                               std::size_t n_workers) {
  if (iso.mode != IsolationMode::Process) return nullptr;
  if (iso.pool) return iso.pool;
  if (!process_sandbox_supported()) {
    log_warn("sandbox: process isolation requested but unsupported on this "
             "platform; falling back to in-process evaluation");
    return nullptr;
  }
  if (iso.sandbox.argv.empty()) {
    log_warn("sandbox: process isolation requested but no worker binary "
             "configured; falling back to in-process evaluation");
    return nullptr;
  }
  auto pool = std::make_shared<WorkerPool>(iso.sandbox,
                                           std::max<std::size_t>(1, n_workers),
                                           iso.quarantine_after, iso.telemetry);
  // Spawn-check one worker up front: a missing or broken binary should
  // degrade immediately (and loudly), not fail every evaluation one by one.
  if (!pool->healthy()) {
    log_warn("sandbox: worker '", iso.sandbox.argv[0],
             "' could not be started; falling back to in-process evaluation");
    return nullptr;
  }
  return pool;
}

WorkerPool::WorkerPool(SandboxOptions sandbox, std::size_t n_workers,
                       std::size_t quarantine_after, obs::Telemetry* telemetry)
    : sandbox_(std::move(sandbox)),
      quarantine_(quarantine_after),
      slots_(std::max<std::size_t>(1, n_workers)),
      telemetry_(telemetry) {
  // Eagerly spawn the first worker so health is known at construction; the
  // rest spawn lazily on first checkout.
  slots_[0].worker = std::make_unique<WorkerProcess>(sandbox_);
  if (!slots_[0].worker->spawn()) {
    slots_[0].worker.reset();
    slots_[0].given_up = true;
    ++slots_[0].consecutive_deaths;
    for (auto& s : slots_) s.given_up = true;  // same binary, same failure
  }
}

WorkerPool::~WorkerPool() {
  for (auto& s : slots_) {
    if (s.worker) s.worker->kill_now();
  }
}

bool WorkerPool::healthy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : slots_) {
    if (!s.given_up) return true;
  }
  return false;
}

std::size_t WorkerPool::acquire_slot() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Prefer a live worker; otherwise any free slot that has not given up;
    // otherwise any free slot (to report the permanent failure).
    std::size_t fallback = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].in_use) continue;
      if (slots_[i].worker && slots_[i].worker->alive()) {
        slots_[i].in_use = true;
        return i;
      }
      if (fallback == slots_.size() || (!slots_[i].given_up && slots_[fallback].given_up)) {
        fallback = i;
      }
    }
    if (fallback != slots_.size()) {
      slots_[fallback].in_use = true;
      return fallback;
    }
    slot_free_.wait(lock);
  }
}

void WorkerPool::release_slot(std::size_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[index].in_use = false;
  }
  slot_free_.notify_one();
}

SandboxResult WorkerPool::evaluate(const search::Config& config,
                                   double deadline_seconds) {
  // Circuit breaker: a config that already crashed its way into quarantine
  // is refused before any worker is touched.
  if (quarantine_.quarantined(config)) {
    stats_.quarantine_hits.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().counter(obs::metric::kEvalsQuarantined).inc();
    }
    set_last_worker_slot(-1);
    set_last_worker_node({});
    SandboxResult r;
    r.outcome = EvalOutcome::Crashed;
    r.error = "configuration quarantined after " +
              std::to_string(quarantine_.threshold()) + " crashes";
    return r;
  }

  const std::size_t si = acquire_slot();
  set_last_worker_slot(static_cast<int>(si));
  set_last_worker_node({});
  Slot& slot = slots_[si];

  // (Re)spawn the slot's worker if needed, with bounded backoff.
  if (!slot.worker || !slot.worker->alive()) {
    if (slot.given_up) {
      release_slot(si);
      SandboxResult r;
      r.outcome = EvalOutcome::Crashed;
      r.error = "worker restart budget exhausted (" +
                std::to_string(sandbox_.max_restarts) + " consecutive deaths)";
      r.worker_slot = static_cast<int>(si);
      return r;
    }
    if (slot.consecutive_deaths > 0) {
      const double backoff = std::min(
          sandbox_.restart_backoff_seconds *
              static_cast<double>(1ull << std::min<std::size_t>(
                                      slot.consecutive_deaths - 1, 20)),
          sandbox_.restart_backoff_max_seconds);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      stats_.restarts.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().counter(obs::metric::kWorkerRestarts).inc();
      }
    }
    slot.worker = std::make_unique<WorkerProcess>(sandbox_);
    if (!slot.worker->spawn()) {
      slot.worker.reset();
      bool gave_up = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (++slot.consecutive_deaths > sandbox_.max_restarts) {
          slot.given_up = true;
          gave_up = true;
        }
      }
      if (gave_up) {
        log_warn("sandbox: worker slot ", si, " gave up after ",
                 slot.consecutive_deaths, " consecutive failures");
      }
      release_slot(si);
      SandboxResult r;
      r.outcome = EvalOutcome::Crashed;
      r.error = "worker failed to spawn";
      r.worker_died = true;
      r.worker_slot = static_cast<int>(si);
      return r;
    }
  }

  const std::uint64_t request_id =
      stats_.dispatched.fetch_add(1, std::memory_order_relaxed) + 1;

  // Trace the round trip: the rpc span inherits the calling thread's current
  // span (the driver's "eval"), its id rides the request over the pipe, and
  // the worker's phase timings come back anchored at our dispatch timestamp
  // so they nest inside the rpc span on a single consistent timeline.
  obs::ScopedSpan rpc_span(telemetry_, "worker.rpc");
  const std::uint64_t dispatch_ns =
      rpc_span.id() != 0 ? telemetry_->now_ns() : 0;
  SandboxResult r =
      slot.worker->evaluate(request_id, config, deadline_seconds, rpc_span.id());
  r.worker_slot = static_cast<int>(si);
  if (rpc_span.id() != 0 && !r.worker_spans.empty()) {
    const std::uint64_t end_ns = telemetry_->now_ns();
    for (const WorkerSpan& w : r.worker_spans) {
      // Clamp into [dispatch, reply] so the trace stays monotonically
      // consistent even if the worker's clock disagrees slightly.
      std::uint64_t start = dispatch_ns + w.start_ns;
      if (start > end_ns) start = end_ns;
      std::uint64_t dur = w.dur_ns;
      if (start + dur > end_ns) dur = end_ns - start;
      telemetry_->record_span("worker." + w.name, rpc_span.id(), start, dur,
                              r.worker_pid);
    }
  }
  rpc_span.end();

  switch (r.outcome) {
    case EvalOutcome::Ok: stats_.ok.fetch_add(1, std::memory_order_relaxed); break;
    case EvalOutcome::Crashed: stats_.crashed.fetch_add(1, std::memory_order_relaxed); break;
    case EvalOutcome::TimedOut: stats_.timed_out.fetch_add(1, std::memory_order_relaxed); break;
    case EvalOutcome::InvalidConfig: stats_.invalid.fetch_add(1, std::memory_order_relaxed); break;
    case EvalOutcome::NonFinite: stats_.non_finite.fetch_add(1, std::memory_order_relaxed); break;
  }

  if (r.worker_died) {
    slot.worker.reset();
    bool gave_up = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++slot.consecutive_deaths > sandbox_.max_restarts) {
        slot.given_up = true;
        gave_up = true;
      }
    }
    if (gave_up) {
      log_warn("sandbox: worker slot ", si, " gave up after ",
               slot.consecutive_deaths, " consecutive deaths");
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    slot.consecutive_deaths = 0;
  }

  // Quarantine accounting: only genuine process deaths count — they are the
  // failures that cost a restart and threaten the supervisor's throughput.
  // (TimedOut has its own no-retry policy; a thrown exception inside a live
  // worker is contained and retried by the session layer as before.)
  if (r.outcome == EvalOutcome::Crashed && r.worker_died &&
      quarantine_.enabled()) {
    const std::size_t crashes = quarantine_.record_crash(config);
    if (crashes == quarantine_.threshold()) {
      log_warn("sandbox: configuration quarantined after ", crashes,
               " crashes (", r.error, ")");
    }
  }

  release_slot(si);
  return r;
}

namespace {

/// Shared failure-to-exception translation for the sandboxed adapters.
[[noreturn]] void throw_failure(const SandboxResult& r) {
  throw EvalFailure(r.outcome, r.error.empty()
                                   ? std::string("sandboxed evaluation failed as ") +
                                         to_string(r.outcome)
                                   : r.error);
}

}  // namespace

double SandboxedObjective::evaluate(const search::Config& config) {
  const SandboxResult r = pool_->evaluate(config, deadline_seconds_);
  if (r.outcome != EvalOutcome::Ok) throw_failure(r);
  return r.value;
}

search::RegionTimes SandboxedRegionObjective::evaluate_regions(
    const search::Config& config) {
  const SandboxResult r = pool_->evaluate(config, deadline_seconds_);
  if (r.outcome != EvalOutcome::Ok) throw_failure(r);
  return r.regions;
}

}  // namespace tunekit::robust
