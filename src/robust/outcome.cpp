#include "robust/outcome.hpp"

#include <cmath>

namespace tunekit::robust {

const char* to_string(EvalOutcome outcome) {
  switch (outcome) {
    case EvalOutcome::Ok: return "ok";
    case EvalOutcome::Crashed: return "crashed";
    case EvalOutcome::TimedOut: return "timed-out";
    case EvalOutcome::InvalidConfig: return "invalid-config";
    case EvalOutcome::NonFinite: return "non-finite";
  }
  return "?";
}

EvalOutcome outcome_from_string(const std::string& name) {
  if (name == "ok") return EvalOutcome::Ok;
  if (name == "crashed") return EvalOutcome::Crashed;
  if (name == "timed-out") return EvalOutcome::TimedOut;
  if (name == "invalid-config") return EvalOutcome::InvalidConfig;
  if (name == "non-finite") return EvalOutcome::NonFinite;
  throw std::invalid_argument("unknown EvalOutcome '" + name + "'");
}

bool is_failure(EvalOutcome outcome) { return outcome != EvalOutcome::Ok; }

EvalOutcome classify_value(double value) {
  return std::isfinite(value) ? EvalOutcome::Ok : EvalOutcome::NonFinite;
}

}  // namespace tunekit::robust
