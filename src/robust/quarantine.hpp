#pragma once
// CrashQuarantine: a per-configuration crash circuit breaker.
//
// A configuration that keeps killing its evaluation process is almost always
// deterministic (a tile size that overruns a buffer, a thread count that
// deadlocks the runtime) — retrying it wastes a worker restart per attempt
// and, in the worst case, turns the tuning run into a crash loop. After
// `threshold` observed crashes a configuration is quarantined: the supervisor
// refuses to dispatch it again and reports the attempt as Crashed without
// spawning anything. The session layer journals the same event ("quar"
// lines) so the quarantine survives a supervisor kill + resume.
//
// Keys are the exact double bit patterns of the configuration, so two
// configs compare equal iff every coordinate is bit-identical — the same
// identity the journal round-trips.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "search/space.hpp"

namespace tunekit::robust {

class CrashQuarantine {
 public:
  /// `threshold` crashes of one config trip the breaker; 0 disables.
  explicit CrashQuarantine(std::size_t threshold = 2) : threshold_(threshold) {}

  std::size_t threshold() const { return threshold_; }
  bool enabled() const { return threshold_ > 0; }

  /// Record one crash of `config`; returns the updated crash count (so the
  /// caller can detect the exact transition into quarantine: count ==
  /// threshold()). No-op returning 0 when disabled.
  std::size_t record_crash(const search::Config& config);

  /// True once `config` has crashed at least `threshold` times (or was
  /// force-quarantined by quarantine_now).
  bool quarantined(const search::Config& config) const;

  /// Force `config` into quarantine regardless of its crash count — used
  /// when restoring journaled quarantine records on resume.
  void quarantine_now(const search::Config& config);

  /// Number of quarantined configurations.
  std::size_t size() const;

  /// The quarantined configurations (unordered).
  std::vector<search::Config> configs() const;

 private:
  struct Entry {
    search::Config config;
    std::size_t crashes = 0;
  };

  static std::string key_of(const search::Config& config);

  std::size_t threshold_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tunekit::robust
