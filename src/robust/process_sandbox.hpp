#pragma once
// Process-isolated evaluation: one worker process per WorkerProcess object.
//
// The PR-2 watchdog contains exceptions and cooperative hangs, but a genuine
// SIGSEGV in the measured application still kills the whole tuning service,
// and a hang in uninterruptible code wedges a worker thread forever. The
// only containment that survives both is an OS process boundary — the shape
// GPTune and every production tuner use. WorkerProcess fork/execs a
// `tunekit_worker` (or any binary speaking the same protocol), talks
// newline-delimited JSON over pipes, and enforces the deadline with SIGKILL:
// a hard kill no amount of uncooperative code can ignore.
//
// Wire protocol ("tunekit-worker-v1", one JSON object per line):
//
//   supervisor -> worker (stdin):
//     {"op":"eval","id":N,"config":[...],"deadline_s":S[,"span":P]}
//     {"op":"ping"}           liveness probe
//     {"op":"exit"}           orderly shutdown
//
//   worker -> supervisor (stdout):
//     {"e":"ready","format":"tunekit-worker-v1",...}   handshake, once
//     {"e":"hb"}                                       heartbeat during eval
//     {"e":"pong"}                                     ping reply
//     {"e":"result","id":N,"outcome":"ok","value":V,"cost":C,
//      "regions":{...}[,"dispersion":D][,"error":MSG]
//      [,"span":P,"spans":[{"name":"objective","start_ns":A,"dur_ns":B},..]]}
//
// Trace propagation (telemetry era, still tunekit-worker-v1 — both fields
// are optional and unknown keys are ignored on both sides, so old workers
// and old supervisors interoperate): when the supervisor sends a "span"
// trace id, the worker times its request phases (setup / objective /
// teardown) and reports them as "spans", each with start_ns/dur_ns measured
// on the worker's steady clock *relative to request receipt*. The supervisor
// anchors them at its own dispatch timestamp so they stitch into the parent
// trace as children of the worker.rpc span.
//
// Wait-status classification (the taxonomy mapping the tests pin down):
//   reply line with outcome      -> that outcome
//   SIGKILL on deadline          -> TimedOut
//   death by signal              -> Crashed   ("killed by signal N")
//   nonzero exit code            -> InvalidConfig ("worker exited with N")
//   clean exit, no reply         -> Crashed
//   malformed reply line         -> InvalidConfig (worker killed + replaced)
//   heartbeat silence            -> Crashed   ("worker went silent")
//
// The child also gets setrlimit caps: RLIMIT_AS (mem_limit_mb),
// RLIMIT_CPU (cpu_limit_seconds), and RLIMIT_CORE = 0 (a tuning campaign
// that crashes hundreds of configs must not litter core dumps).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "robust/outcome.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace tunekit::robust {

/// True when this platform can run the process sandbox at all (POSIX
/// fork/exec/pipes). On other platforms WorkerPool::create returns null and
/// callers degrade to the in-process watchdog path.
bool process_sandbox_supported();

struct SandboxOptions {
  /// Worker command line; argv[0] is the binary path. Empty = sandbox
  /// unavailable (degrade to the thread path).
  std::vector<std::string> argv;

  /// RLIMIT_AS cap for the worker, in MiB; 0 = unlimited. Note: address-
  /// space limits are incompatible with ASan-instrumented workers (the
  /// shadow mapping alone exceeds any sane cap).
  double mem_limit_mb = 0.0;
  /// RLIMIT_CPU cap for the worker, in seconds; 0 = unlimited.
  double cpu_limit_seconds = 0.0;

  /// Seconds to wait for the "ready" handshake after spawn.
  double spawn_timeout_seconds = 10.0;
  /// A worker that produces neither a reply nor a heartbeat for this long
  /// during an evaluation is presumed wedged and SIGKILLed (classified
  /// Crashed, not TimedOut — it died silent, it did not run out of budget).
  /// 0 disables the liveness check (the per-eval deadline still applies).
  double liveness_timeout_seconds = 0.0;

  /// Consecutive worker deaths tolerated before a pool slot gives up
  /// respawning (resets on any successful evaluation round trip).
  std::size_t max_restarts = 5;
  /// Backoff before a respawn after a crash: doubled per consecutive death,
  /// capped at restart_backoff_max_seconds.
  double restart_backoff_seconds = 0.02;
  double restart_backoff_max_seconds = 1.0;

  /// Append the worker's stderr to this file ("" = inherit the supervisor's
  /// stderr). CI sets this to capture crash diagnostics as artifacts.
  std::string stderr_path;
};

/// Worker-side phase timing from a reply's "spans" array: start_ns is
/// relative to the worker's receipt of the eval request.
struct WorkerSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Outcome of one sandboxed evaluation round trip.
struct SandboxResult {
  EvalOutcome outcome = EvalOutcome::Crashed;
  double value = std::numeric_limits<double>::quiet_NaN();
  double cost_seconds = 0.0;
  double dispersion = 0.0;
  search::RegionTimes regions;
  std::string error;

  /// Wall-clock seconds for the round trip (including any kill + reap).
  double seconds = 0.0;
  /// The worker process died (or was killed) and must be respawned before
  /// the next evaluation.
  bool worker_died = false;
  /// Terminating signal when the worker died by signal, else 0.
  int term_signal = 0;
  /// Exit code when the worker exited, else -1.
  int exit_code = -1;

  /// Worker-reported phase timings (empty unless the request carried a
  /// trace span id and the worker understands the extension).
  std::vector<WorkerSpan> worker_spans;
  /// OS pid of the worker that produced the reply (0 when it never ran).
  long worker_pid = 0;
  /// Pool slot that ran the evaluation (-1 when not run via a WorkerPool).
  int worker_slot = -1;
  /// Fleet node that served the evaluation ("" when local) — stamped by the
  /// dispatcher so journals can attribute evals to machines.
  std::string worker_node;
};

/// Map a waitpid() status to the failure taxonomy. Exposed so the
/// classification matrix is unit-testable against real child processes.
struct WaitClassification {
  EvalOutcome outcome = EvalOutcome::Crashed;
  std::string detail;
  int term_signal = 0;
  int exit_code = -1;
};
WaitClassification classify_wait_status(int wait_status);

/// One supervised worker process. Not thread-safe: a WorkerProcess belongs
/// to exactly one pool slot at a time (WorkerPool serializes access).
class WorkerProcess {
 public:
  explicit WorkerProcess(SandboxOptions options);
  ~WorkerProcess();

  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  /// Fork/exec the worker and wait for its handshake. Returns false (with
  /// the child reaped) on spawn or handshake failure.
  bool spawn();

  bool alive() const { return pid_ > 0; }
  long pid() const { return pid_; }

  /// Send one evaluation request and wait for the reply, the deadline, or
  /// the worker's death — whichever comes first. On deadline or silence the
  /// worker is SIGKILLed and reaped before returning. A nonzero `trace_span`
  /// is propagated on the wire and asks the worker for phase timings
  /// (returned in SandboxResult::worker_spans).
  SandboxResult evaluate(std::uint64_t id, const search::Config& config,
                         double deadline_seconds, std::uint64_t trace_span = 0);

  /// SIGKILL + reap immediately (idempotent).
  void kill_now();

 private:
  /// Read one complete line from the worker's stdout, waiting at most
  /// `timeout_seconds`. Returns 1 on a line, 0 on timeout, -1 on EOF/error
  /// (the worker closed its stdout — it is dead or dying).
  int read_line(std::string& line, double timeout_seconds);

  /// waitpid (blocking) and classify; resets pid/fds.
  WaitClassification reap();

  SandboxOptions options_;
  long pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string rx_buffer_;
};

}  // namespace tunekit::robust
