#include "robust/process_sandbox.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/json.hpp"
#include "common/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TUNEKIT_HAVE_PROCESS_SANDBOX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace tunekit::robust {

bool process_sandbox_supported() {
#ifdef TUNEKIT_HAVE_PROCESS_SANDBOX
  return true;
#else
  return false;
#endif
}

#ifdef TUNEKIT_HAVE_PROCESS_SANDBOX

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serialize one eval request line.
std::string eval_request(std::uint64_t id, const search::Config& config,
                         double deadline_seconds, std::uint64_t trace_span) {
  json::Object obj;
  obj["op"] = json::Value("eval");
  obj["id"] = json::Value(static_cast<double>(id));
  json::Array cfg;
  for (double x : config) cfg.emplace_back(x);
  obj["config"] = json::Value(std::move(cfg));
  if (std::isfinite(deadline_seconds)) {
    obj["deadline_s"] = json::Value(deadline_seconds);
  }
  // Trace propagation: opt the worker into reporting phase timings. Old
  // workers ignore the unknown key.
  if (trace_span != 0) obj["span"] = json::Value(static_cast<double>(trace_span));
  return json::Value(std::move(obj)).dump();
}

/// Parse a worker result line into a SandboxResult; returns false when the
/// line is not a valid result for `id` (heartbeats return true with
/// outcome untouched via the `is_heartbeat` flag).
bool parse_reply(const std::string& line, std::uint64_t id, SandboxResult& out,
                 bool& is_heartbeat) {
  is_heartbeat = false;
  json::Value v;
  try {
    v = json::parse(line);
  } catch (const json::JsonError&) {
    return false;
  }
  if (!v.is_object() || !v.contains("e")) return false;
  const std::string& e = v.at("e").as_string();
  if (e == "hb" || e == "pong" || e == "ready") {
    is_heartbeat = true;
    return true;
  }
  if (e != "result") return false;
  try {
    if (v.contains("id") &&
        static_cast<std::uint64_t>(v.at("id").as_number()) != id) {
      // A stale reply from a previous (killed) request on a reused worker
      // would be a supervisor bug — workers are killed on deadline, so a
      // mismatched id means protocol corruption.
      return false;
    }
    out.outcome = outcome_from_string(v.at("outcome").as_string());
    if (v.contains("value") && !v.at("value").is_null()) {
      out.value = v.at("value").as_number();
    }
    out.cost_seconds = v.number_or("cost", 0.0);
    out.dispersion = v.number_or("dispersion", 0.0);
    if (v.contains("error")) out.error = v.at("error").as_string();
    if (v.contains("regions")) {
      for (const auto& [name, t] : v.at("regions").as_object()) {
        out.regions.regions[name] = t.as_number();
      }
    }
    out.regions.total = v.number_or("total", out.value);
    if (v.contains("spans") && v.at("spans").is_array()) {
      for (const auto& s : v.at("spans").as_array()) {
        if (!s.is_object() || !s.contains("name")) continue;
        WorkerSpan span;
        span.name = s.at("name").as_string();
        span.start_ns = static_cast<std::uint64_t>(s.number_or("start_ns", 0.0));
        span.dur_ns = static_cast<std::uint64_t>(s.number_or("dur_ns", 0.0));
        out.worker_spans.push_back(std::move(span));
      }
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

WaitClassification classify_wait_status(int wait_status) {
  WaitClassification c;
  if (WIFSIGNALED(wait_status)) {
    c.term_signal = WTERMSIG(wait_status);
    c.outcome = EvalOutcome::Crashed;
    c.detail = "worker killed by signal " + std::to_string(c.term_signal);
    const char* name = ::strsignal(c.term_signal);
    if (name) c.detail += std::string(" (") + name + ")";
    return c;
  }
  if (WIFEXITED(wait_status)) {
    c.exit_code = WEXITSTATUS(wait_status);
    if (c.exit_code == 0) {
      // Exiting cleanly in the middle of a request is still a broken
      // evaluation — the reply never arrived.
      c.outcome = EvalOutcome::Crashed;
      c.detail = "worker exited without replying";
    } else {
      // A deliberate nonzero exit is the worker's way of rejecting the
      // request/protocol state, not a crash.
      c.outcome = EvalOutcome::InvalidConfig;
      c.detail = "worker exited with code " + std::to_string(c.exit_code);
    }
    return c;
  }
  c.outcome = EvalOutcome::Crashed;
  c.detail = "worker stopped with unrecognized wait status";
  return c;
}

WorkerProcess::WorkerProcess(SandboxOptions options)
    : options_(std::move(options)) {}

WorkerProcess::~WorkerProcess() { kill_now(); }

bool WorkerProcess::spawn() {
  if (alive() || options_.argv.empty()) return alive();

  int to_child[2];   // supervisor writes requests
  int from_child[2]; // supervisor reads replies
  if (::pipe(to_child) != 0) return false;
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return false;
  }

  if (pid == 0) {
    // --- Child: wire pipes to stdio, apply rlimits, exec the worker. ---
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);

    if (!options_.stderr_path.empty()) {
      const int fd = ::open(options_.stderr_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }

    // No core dumps: a campaign crashing hundreds of configs must not fill
    // the disk with them.
    struct rlimit no_core = {0, 0};
    ::setrlimit(RLIMIT_CORE, &no_core);
    if (options_.mem_limit_mb > 0.0) {
      const rlim_t bytes =
          static_cast<rlim_t>(options_.mem_limit_mb * 1024.0 * 1024.0);
      struct rlimit mem = {bytes, bytes};
      ::setrlimit(RLIMIT_AS, &mem);
    }
    if (options_.cpu_limit_seconds > 0.0) {
      const rlim_t secs =
          static_cast<rlim_t>(std::ceil(options_.cpu_limit_seconds));
      struct rlimit cpu = {secs, secs};
      ::setrlimit(RLIMIT_CPU, &cpu);
    }

    std::vector<char*> argv;
    argv.reserve(options_.argv.size() + 1);
    for (const auto& a : options_.argv) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    // exec failed: exit with a distinctive code (classified InvalidConfig
    // by the handshake failure path; the pool then degrades).
    _exit(127);
  }

  // --- Supervisor side. ---
  ::close(to_child[0]);
  ::close(from_child[1]);
  pid_ = pid;
  stdin_fd_ = to_child[1];
  stdout_fd_ = from_child[0];
  rx_buffer_.clear();

  // Never die on EPIPE when a worker crashes mid-write.
  ::signal(SIGPIPE, SIG_IGN);

  // Handshake: the worker must announce itself before the first request.
  std::string line;
  if (read_line(line, options_.spawn_timeout_seconds) != 1) {
    log_warn("sandbox: worker '", options_.argv[0],
             "' produced no handshake within ", options_.spawn_timeout_seconds,
             "s; giving up on it");
    kill_now();
    return false;
  }
  bool is_hs = false;
  SandboxResult ignored;
  if (!parse_reply(line, 0, ignored, is_hs) || !is_hs) {
    log_warn("sandbox: worker '", options_.argv[0],
             "' sent a malformed handshake; giving up on it");
    kill_now();
    return false;
  }
  return true;
}

int WorkerProcess::read_line(std::string& line, double timeout_seconds) {
  const double deadline = now_seconds() + timeout_seconds;
  while (true) {
    const auto nl = rx_buffer_.find('\n');
    if (nl != std::string::npos) {
      line = rx_buffer_.substr(0, nl);
      rx_buffer_.erase(0, nl + 1);
      return 1;
    }
    const double remaining = deadline - now_seconds();
    if (remaining <= 0.0) return 0;

    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min(remaining * 1000.0, 1000.0 * 3600.0)) + 1;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;  // timeout
    char buf[4096];
    const ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
    if (n < 0) return errno == EINTR ? 0 : -1;
    if (n == 0) return -1;  // EOF: the worker closed its stdout
    rx_buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

WaitClassification WorkerProcess::reap() {
  WaitClassification c;
  if (pid_ <= 0) return c;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (r < 0 && errno == EINTR);
  if (r == static_cast<pid_t>(pid_)) c = classify_wait_status(status);
  pid_ = -1;
  close_fd(stdin_fd_);
  close_fd(stdout_fd_);
  rx_buffer_.clear();
  return c;
}

void WorkerProcess::kill_now() {
  if (pid_ <= 0) return;
  ::kill(static_cast<pid_t>(pid_), SIGKILL);
  reap();
}

SandboxResult WorkerProcess::evaluate(std::uint64_t id,
                                      const search::Config& config,
                                      double deadline_seconds,
                                      std::uint64_t trace_span) {
  SandboxResult result;
  const double start = now_seconds();
  result.worker_pid = pid_ > 0 ? pid_ : 0;
  auto finish = [&]() -> SandboxResult& {
    result.seconds = now_seconds() - start;
    return result;
  };

  if (!alive()) {
    result.worker_died = true;
    result.error = "worker not running";
    return finish();
  }

  const std::string request =
      eval_request(id, config, deadline_seconds, trace_span) + "\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n =
        ::write(stdin_fd_, request.data() + written, request.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The worker died before/while reading the request.
      const WaitClassification c = [&] {
        ::kill(static_cast<pid_t>(pid_), SIGKILL);
        return reap();
      }();
      result.outcome = c.outcome;
      result.error = c.detail.empty() ? "request write failed" : c.detail;
      result.term_signal = c.term_signal;
      result.exit_code = c.exit_code;
      result.worker_died = true;
      return finish();
    }
    written += static_cast<std::size_t>(n);
  }

  const bool have_deadline = std::isfinite(deadline_seconds);
  const bool have_liveness = options_.liveness_timeout_seconds > 0.0;
  const double hard_deadline =
      have_deadline ? start + deadline_seconds
                    : std::numeric_limits<double>::infinity();

  std::string line;
  while (true) {
    // Wait until the next of: reply/heartbeat arrives, the deadline passes,
    // or the liveness window closes.
    double wait = hard_deadline - now_seconds();
    if (have_liveness) wait = std::min(wait, options_.liveness_timeout_seconds);
    if (!std::isfinite(wait)) wait = 3600.0;  // re-poll hourly, effectively forever

    if (wait <= 0.0 && have_deadline) {
      // Deadline: hard kill. Unlike the cooperative thread watchdog this
      // reclaims the worker no matter what the evaluation is doing.
      kill_now();
      result.outcome = EvalOutcome::TimedOut;
      result.error = "deadline of " + std::to_string(deadline_seconds) +
                     "s enforced with SIGKILL";
      result.worker_died = true;
      return finish();
    }

    const int rr = read_line(line, std::max(wait, 0.0));
    if (rr == 1) {
      bool is_hb = false;
      SandboxResult parsed;
      if (!parse_reply(line, id, parsed, is_hb)) {
        // Garbage on the protocol stream: the worker is not trustworthy any
        // more. Classify the request InvalidConfig and replace the worker.
        kill_now();
        result.outcome = EvalOutcome::InvalidConfig;
        result.error = "malformed worker reply";
        result.worker_died = true;
        return finish();
      }
      if (is_hb) continue;  // heartbeat: the worker is alive, keep waiting
      parsed.seconds = 0.0;
      parsed.worker_pid = result.worker_pid;
      result = parsed;
      return finish();
    }

    if (rr == -1) {
      // EOF: the worker is dead or dying — reap (blocking; death is
      // imminent) and classify the wait status.
      const WaitClassification c = reap();
      result.outcome = c.outcome;
      result.error = c.detail;
      result.term_signal = c.term_signal;
      result.exit_code = c.exit_code;
      result.worker_died = true;
      return finish();
    }

    // rr == 0: the wait slice elapsed with total silence.
    const double now = now_seconds();
    if (have_deadline && now >= hard_deadline) continue;  // top of loop kills

    if (have_liveness) {
      // Neither output nor death for a full liveness window: presumed
      // wedged beyond even heartbeating. Killed and classified Crashed.
      kill_now();
      result.outcome = EvalOutcome::Crashed;
      result.error = "worker went silent (no heartbeat for " +
                     std::to_string(options_.liveness_timeout_seconds) + "s)";
      result.worker_died = true;
      return finish();
    }
  }
}

#else  // !TUNEKIT_HAVE_PROCESS_SANDBOX

WaitClassification classify_wait_status(int) {
  return {EvalOutcome::Crashed, "process sandbox unsupported on this platform", 0, -1};
}

WorkerProcess::WorkerProcess(SandboxOptions options) : options_(std::move(options)) {}
WorkerProcess::~WorkerProcess() = default;
bool WorkerProcess::spawn() { return false; }
void WorkerProcess::kill_now() {}
int WorkerProcess::read_line(std::string&, double) { return -1; }
WaitClassification WorkerProcess::reap() { return {}; }

SandboxResult WorkerProcess::evaluate(std::uint64_t, const search::Config&, double,
                                      std::uint64_t) {
  SandboxResult r;
  r.error = "process sandbox unsupported on this platform";
  r.worker_died = true;
  return r;
}

#endif  // TUNEKIT_HAVE_PROCESS_SANDBOX

}  // namespace tunekit::robust
