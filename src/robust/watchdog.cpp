#include "robust/watchdog.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/stopwatch.hpp"

namespace tunekit::robust {

namespace {

/// One attempt's classified result.
struct Attempt {
  EvalOutcome outcome = EvalOutcome::Crashed;
  search::RegionTimes regions;
  std::string error;
};

EvalOutcome classify_times(const search::RegionTimes& t) {
  if (!std::isfinite(t.total)) return EvalOutcome::NonFinite;
  for (const auto& [name, value] : t.regions) {
    if (!std::isfinite(value)) return EvalOutcome::NonFinite;
  }
  return EvalOutcome::Ok;
}

Attempt run_attempt(const std::function<search::RegionTimes(const search::CancelFlag&)>& call,
                    const search::CancelFlag& cancel) {
  Attempt a;
  try {
    a.regions = call(cancel);
    a.outcome = classify_times(a.regions);
    if (a.outcome == EvalOutcome::NonFinite) a.error = "non-finite measurement";
  } catch (const EvalFailure& e) {
    a.outcome = e.outcome();
    a.error = e.what();
  } catch (const std::invalid_argument& e) {
    a.outcome = EvalOutcome::InvalidConfig;
    a.error = e.what();
  } catch (const std::exception& e) {
    a.outcome = EvalOutcome::Crashed;
    a.error = e.what();
  } catch (...) {
    // A non-std::exception throw from a user objective is still a crash, not
    // a process abort.
    a.outcome = EvalOutcome::Crashed;
    a.error = "non-standard exception";
  }
  return a;
}

/// State shared with the worker thread; kept alive by shared_ptr so an
/// abandoned (timed-out, detached) worker stays memory-safe.
struct WorkerState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Attempt attempt;
};

Attempt attempt_with_deadline(
    const std::function<search::RegionTimes(const search::CancelFlag&)>& call,
    double timeout_seconds) {
  auto state = std::make_shared<WorkerState>();
  search::CancelFlag cancel;
  // `call` is copied into the worker: on timeout the caller returns while the
  // worker may still be running. The objective it references must either
  // honor the cancel flag promptly or outlive the abandoned attempt.
  std::thread worker([state, call, cancel]() {
    Attempt a = run_attempt(call, cancel);
    std::lock_guard<std::mutex> lock(state->mutex);
    state->attempt = std::move(a);
    state->done = true;
    state->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool finished = state->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [&] { return state->done; });
  if (finished) {
    Attempt a = std::move(state->attempt);
    lock.unlock();
    worker.join();
    return a;
  }
  cancel.cancel();
  lock.unlock();
  worker.detach();
  Attempt a;
  a.outcome = EvalOutcome::TimedOut;
  a.error = "deadline of " + std::to_string(timeout_seconds) + "s expired";
  return a;
}

}  // namespace

bool Watchdog::trivial() const {
  return !std::isfinite(options_.timeout_seconds) && options_.max_retries == 0;
}

GuardedEval Watchdog::guard(
    const std::function<search::RegionTimes(const search::CancelFlag&)>& call) const {
  Stopwatch watch;
  GuardedEval out;
  double backoff = options_.backoff_seconds;
  const std::size_t max_attempts = 1 + options_.max_retries;
  for (std::size_t k = 0; k < max_attempts; ++k) {
    Attempt a = std::isfinite(options_.timeout_seconds)
                    ? attempt_with_deadline(call, options_.timeout_seconds)
                    : run_attempt(call, search::CancelFlag());
    ++out.attempts;
    out.outcome = a.outcome;
    out.error = std::move(a.error);
    if (a.outcome == EvalOutcome::Ok) {
      out.regions = std::move(a.regions);
      out.value = out.regions.total;
      break;
    }
    // Only transient crashes are worth retrying: a timeout costs a whole
    // deadline per attempt and an invalid configuration is deterministic.
    if (a.outcome != EvalOutcome::Crashed || k + 1 == max_attempts) break;
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, options_.backoff_max_seconds);
    }
  }
  out.seconds = watch.seconds();
  return out;
}

GuardedEval Watchdog::evaluate(search::Objective& objective,
                               const search::Config& config) const {
  return guard([&objective, &config](const search::CancelFlag& cancel) {
    search::RegionTimes t;
    t.total = objective.evaluate_cancellable(config, cancel);
    return t;
  });
}

GuardedEval Watchdog::evaluate_regions(search::RegionObjective& objective,
                                       const search::Config& config) const {
  return guard([&objective, &config](const search::CancelFlag& cancel) {
    return objective.evaluate_regions_cancellable(config, cancel);
  });
}

}  // namespace tunekit::robust
