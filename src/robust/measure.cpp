#include "robust/measure.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace tunekit::robust {

namespace {

/// 1.4826 scales the MAD to the standard deviation under Gaussian noise.
constexpr double kMadToSigma = 1.4826;

double mean_of(const std::vector<double>& v) { return stats::mean(v); }

}  // namespace

bool is_trivial(const MeasureOptions& options) {
  return options.repeats <= 1 && Watchdog(options.watchdog).trivial();
}

double median_of(std::vector<double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return stats::median(std::move(values));
}

double mad_of(const std::vector<double>& values, double center) {
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double v : values) dev.push_back(std::abs(v - center));
  return median_of(std::move(dev));
}

std::vector<std::size_t> mad_keep(const std::vector<double>& values, double threshold) {
  std::vector<std::size_t> keep;
  keep.reserve(values.size());
  if (threshold <= 0.0 || values.size() < 3) {
    // With fewer than 3 samples the MAD cannot distinguish signal from
    // outlier; keep everything.
    for (std::size_t i = 0; i < values.size(); ++i) keep.push_back(i);
    return keep;
  }
  const double med = median_of(values);
  const double mad = mad_of(values, med);
  if (mad == 0.0) {
    // Degenerate spread (e.g. identical samples): nothing is an outlier.
    for (std::size_t i = 0; i < values.size(); ++i) keep.push_back(i);
    return keep;
  }
  const double limit = threshold * kMadToSigma * mad;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - med) <= limit) keep.push_back(i);
  }
  return keep;
}

RobustMeasurer::RobustMeasurer(MeasureOptions options) : options_(options) {
  if (options_.repeats == 0) options_.repeats = 1;
}

Measurement RobustMeasurer::combine(std::vector<GuardedEval> evals) const {
  Measurement m;
  m.n_samples = evals.size();
  std::vector<std::size_t> ok_idx;
  std::map<EvalOutcome, std::size_t> failure_counts;
  EvalOutcome dominant_failure = EvalOutcome::Crashed;
  std::size_t dominant_count = 0;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    m.seconds += evals[i].seconds;
    if (evals[i].outcome == EvalOutcome::Ok) {
      ok_idx.push_back(i);
    } else {
      m.error = evals[i].error;
      const std::size_t n = ++failure_counts[evals[i].outcome];
      if (n >= dominant_count) {
        dominant_count = n;
        dominant_failure = evals[i].outcome;
      }
    }
  }
  m.n_ok = ok_idx.size();

  const std::size_t min_ok =
      std::clamp<std::size_t>(options_.min_ok, 1, options_.repeats);
  if (m.n_ok < min_ok) {
    m.outcome = dominant_failure;
    return m;
  }

  std::vector<double> totals;
  totals.reserve(ok_idx.size());
  for (std::size_t i : ok_idx) totals.push_back(evals[i].regions.total);
  const auto keep = mad_keep(totals, options_.mad_threshold);
  m.n_rejected = totals.size() - keep.size();

  std::vector<double> kept;
  kept.reserve(keep.size());
  for (std::size_t k : keep) kept.push_back(totals[k]);
  m.value = mean_of(kept);
  m.dispersion = kept.size() > 1 ? kMadToSigma * mad_of(kept, median_of(kept)) : 0.0;
  m.stderr_of_mean =
      kept.empty() ? 0.0 : m.dispersion / std::sqrt(static_cast<double>(kept.size()));
  m.outcome = EvalOutcome::Ok;

  // Per-region trimmed estimates over the same kept sample set, so region
  // and total estimates stay consistent.
  std::map<std::string, std::vector<double>> per_region;
  for (std::size_t k : keep) {
    for (const auto& [name, value] : evals[ok_idx[k]].regions.regions) {
      per_region[name].push_back(value);
    }
  }
  for (auto& [name, samples] : per_region) {
    m.regions.regions[name] = mean_of(samples);
    m.region_dispersion[name] =
        samples.size() > 1 ? kMadToSigma * mad_of(samples, median_of(samples)) : 0.0;
  }
  m.regions.total = m.value;
  return m;
}

Measurement RobustMeasurer::measure(search::Objective& objective,
                                    const search::Config& config) const {
  const Watchdog watchdog(options_.watchdog);
  std::vector<GuardedEval> evals;
  evals.reserve(options_.repeats);
  for (std::size_t r = 0; r < options_.repeats; ++r) {
    evals.push_back(watchdog.evaluate(objective, config));
    // An invalid configuration is deterministic; repeating it is waste.
    if (evals.back().outcome == EvalOutcome::InvalidConfig) break;
  }
  return combine(std::move(evals));
}

Measurement RobustMeasurer::measure_regions(search::RegionObjective& objective,
                                            const search::Config& config) const {
  const Watchdog watchdog(options_.watchdog);
  std::vector<GuardedEval> evals;
  evals.reserve(options_.repeats);
  for (std::size_t r = 0; r < options_.repeats; ++r) {
    evals.push_back(watchdog.evaluate_regions(objective, config));
    if (evals.back().outcome == EvalOutcome::InvalidConfig) break;
  }
  return combine(std::move(evals));
}

double HardenedObjective::evaluate(const search::Config& config) {
  const Measurement m = measurer_.measure(inner_, config);
  if (m.outcome == EvalOutcome::Ok) return m.value;
  throw EvalFailure(m.outcome,
                    m.error.empty() ? std::string(to_string(m.outcome)) : m.error);
}

}  // namespace tunekit::robust
