#include "robust/fault_injection.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"

namespace tunekit::robust {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic hash of a configuration's coordinate bits.
std::uint64_t config_hash(const search::Config& config) {
  std::uint64_t h = 0x51'7c'c1'b7'27'22'0a'95ull;
  for (double v : config) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h = splitmix64(h ^ bits);
  }
  return h;
}

/// Heavy-tailed standard variate: normal / sqrt(exponential), a Student-t
/// flavored draw whose occasional extreme values model timer interference.
double heavy_tail(Rng& rng) {
  const double u = rng.uniform();
  const double denom = std::sqrt(std::max(1e-12, -std::log(1.0 - u)));
  return rng.normal() / denom;
}

/// Sleep `seconds` in small slices, bailing out as soon as `cancel` fires.
/// Returns true when cancelled.
bool cooperative_sleep(double seconds, const search::CancelFlag& cancel) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                           std::chrono::duration<double>(seconds));
  while (clock::now() < deadline) {
    if (cancel.cancelled()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return cancel.cancelled();
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options) : options_(options) {}

FaultInjector::Decision FaultInjector::decide(const search::Config& config) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t stream =
      options_.model == FaultModel::PerConfig
          ? splitmix64(options_.seed ^ config_hash(config))
          : splitmix64(options_.seed ^
                       (counter_.fetch_add(1, std::memory_order_relaxed) + 1));
  Rng rng(stream);

  Decision d;
  const double u = rng.uniform();
  double edge = options_.crash_prob;
  if (u < edge) {
    d.kind = Kind::Crash;
  } else if (u < (edge += options_.hang_prob)) {
    d.kind = Kind::Hang;
  } else if (u < (edge += options_.nan_prob)) {
    d.kind = Kind::Nan;
  } else if (u < (edge += options_.inf_prob)) {
    d.kind = Kind::Inf;
  } else if (u < (edge += options_.invalid_prob)) {
    d.kind = Kind::Invalid;
  }
  if (options_.noise_scale > 0.0) {
    d.noise_factor = std::exp(options_.noise_scale * heavy_tail(rng));
  }
  return d;
}

void FaultInjector::apply_pre(const Decision& decision, const search::CancelFlag& cancel) {
  switch (decision.kind) {
    case Kind::Crash:
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("injected crash");
    case Kind::Invalid:
      stats_.invalids.fetch_add(1, std::memory_order_relaxed);
      throw std::invalid_argument("injected invalid configuration");
    case Kind::Hang:
      stats_.hangs.fetch_add(1, std::memory_order_relaxed);
      if (cooperative_sleep(options_.hang_seconds, cancel)) {
        // The watchdog gave up on this attempt; unwind the worker thread
        // instead of burning cycles on a result nobody will read.
        throw EvalFailure(EvalOutcome::TimedOut, "injected hang cancelled");
      }
      break;  // Survived the hang: proceed as a straggler.
    case Kind::Nan:
      stats_.nans.fetch_add(1, std::memory_order_relaxed);
      break;
    case Kind::Inf:
      stats_.infs.fetch_add(1, std::memory_order_relaxed);
      break;
    case Kind::None:
      break;
  }
}

double FaultyObjective::evaluate_cancellable(const search::Config& config,
                                             const search::CancelFlag& cancel) {
  const FaultInjector::Decision d = injector_.decide(config);
  injector_.apply_pre(d, cancel);
  if (d.kind == FaultInjector::Kind::Nan) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (d.kind == FaultInjector::Kind::Inf) {
    return std::numeric_limits<double>::infinity();
  }
  return inner_.evaluate_cancellable(config, cancel) * d.noise_factor;
}

search::RegionTimes FaultyApp::evaluate_regions_cancellable(
    const search::Config& config, const search::CancelFlag& cancel) {
  const FaultInjector::Decision d = injector_.decide(config);
  injector_.apply_pre(d, cancel);
  if (d.kind == FaultInjector::Kind::Nan || d.kind == FaultInjector::Kind::Inf) {
    search::RegionTimes t;
    t.total = d.kind == FaultInjector::Kind::Nan
                  ? std::numeric_limits<double>::quiet_NaN()
                  : std::numeric_limits<double>::infinity();
    return t;
  }
  search::RegionTimes t = inner_.evaluate_regions_cancellable(config, cancel);
  // One factor for the whole run keeps total == sum(regions) consistent.
  for (auto& [name, value] : t.regions) value *= d.noise_factor;
  t.total *= d.noise_factor;
  return t;
}

}  // namespace tunekit::robust
