#pragma once
// TunableApp adapter for the synthetic function family: four routines
// ("Group1".."Group4") each owning five variables; the per-group transformed
// values are reported as region "times" and their sum as the total, exactly
// mirroring how the paper treats groups as independently measurable code
// regions.

#include <cstdint>

#include "core/tunable_app.hpp"
#include "synth/synthetic.hpp"

namespace tunekit::synth {

class SynthApp final : public core::TunableApp {
 public:
  /// `baseline_seed` picks the paper's "randomly selected baseline"
  /// configuration reproducibly; values are drawn away from zero so the
  /// multiplicative variation ladder is well defined.
  explicit SynthApp(SynthCase which, double noise_scale = 0.01,
                    std::uint64_t baseline_seed = 12345);

  const search::SearchSpace& space() const override { return space_; }
  std::vector<core::RoutineSpec> routines() const override;
  search::Config baseline() const override { return baseline_; }
  std::string name() const override;

  search::RegionTimes evaluate_regions(const search::Config& config) override;
  bool thread_safe() const override { return true; }

  const SyntheticFunction& function() const { return fn_; }

  /// Region name of group g (1-based): "Group1".."Group4".
  static std::string group_region(std::size_t g);

 private:
  SyntheticFunction fn_;
  search::SearchSpace space_;
  search::Config baseline_;
};

}  // namespace tunekit::synth
