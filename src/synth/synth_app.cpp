#include "synth/synth_app.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace tunekit::synth {

SynthApp::SynthApp(SynthCase which, double noise_scale, std::uint64_t baseline_seed)
    : fn_(which, noise_scale, baseline_seed ^ 0x5117a17e) {
  for (std::size_t i = 0; i < SyntheticFunction::kDim; ++i) {
    space_.add(search::ParamSpec::real("x" + std::to_string(i), SyntheticFunction::kLo,
                                       SyntheticFunction::kHi, 1.0));
  }
  // Random baseline from the domain-expert band |x| in [2, 15] (methodology
  // step 1: experts center the analysis on a non-degenerate operating
  // point). Re-sample until every group's raw output is well away from
  // zero — relative variability is undefined around a zero crossing.
  tunekit::Rng rng(baseline_seed);
  baseline_.resize(SyntheticFunction::kDim);
  for (int tries = 0; tries < 1000; ++tries) {
    for (auto& v : baseline_) {
      v = rng.uniform(2.0, 15.0) * (rng.uniform() < 0.5 ? -1.0 : 1.0);
    }
    const auto raw = fn_.raw_abs_groups(baseline_);
    bool ok = true;
    for (double g : raw) ok = ok && g >= 0.1;
    if (ok) break;
  }
}

std::string SynthApp::group_region(std::size_t g) { return "Group" + std::to_string(g); }

std::vector<core::RoutineSpec> SynthApp::routines() const {
  std::vector<core::RoutineSpec> out;
  for (std::size_t g = 0; g < 4; ++g) {
    core::RoutineSpec spec;
    spec.name = group_region(g + 1);
    for (std::size_t i = 0; i < 5; ++i) spec.params.push_back(5 * g + i);
    out.push_back(std::move(spec));
  }
  return out;
}

std::string SynthApp::name() const {
  return std::string("synthetic ") + to_string(fn_.which());
}

search::RegionTimes SynthApp::evaluate_regions(const search::Config& config) {
  // Regions carry the |raw| group outputs (the quantity whose variability
  // Table II reports and whose relative changes drive the influence graph);
  // the total is the paper's objective, the sum of log-transformed groups.
  const auto raw = fn_.raw_abs_groups(config);
  const GroupValues values = fn_.evaluate_groups(config);
  search::RegionTimes t;
  for (std::size_t g = 0; g < 4; ++g) {
    t.regions[group_region(g + 1)] = raw[g];
  }
  t.total = values.total();
  return t;
}

}  // namespace tunekit::synth
