#include "synth/synthetic.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

namespace tunekit::synth {

const char* to_string(SynthCase c) {
  switch (c) {
    case SynthCase::Case1: return "Case 1";
    case SynthCase::Case2: return "Case 2";
    case SynthCase::Case3: return "Case 3";
    case SynthCase::Case4: return "Case 4";
    case SynthCase::Case5: return "Case 5";
  }
  return "?";
}

const char* group4_influence_label(SynthCase c) {
  switch (c) {
    case SynthCase::Case1: return "Very Low";
    case SynthCase::Case2: return "Low";
    case SynthCase::Case3: return "Medium";
    case SynthCase::Case4: return "High";
    case SynthCase::Case5: return "Extremely High";
  }
  return "?";
}

SyntheticFunction::SyntheticFunction(SynthCase which, double noise_scale,
                                     std::uint64_t noise_seed)
    : which_(which), noise_scale_(noise_scale), noise_seed_(noise_seed) {
  if (noise_scale < 0.0) throw std::invalid_argument("SyntheticFunction: negative noise");
}

namespace {
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_config(const std::vector<double>& x, std::uint64_t seed) {
  std::uint64_t h = splitmix(seed ^ 0x243f6a8885a308d3ull);
  for (double v : x) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = splitmix(h ^ bits);
  }
  return h;
}
}  // namespace

double SyntheticFunction::noise(const std::vector<double>& x, std::uint64_t draw) const {
  if (noise_scale_ == 0.0) return 0.0;
  const std::uint64_t h = splitmix(hash_config(x, noise_seed_) ^ splitmix(draw));
  // Map the top 53 bits to [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u * noise_scale_;
}

double SyntheticFunction::a_term(const std::vector<double>& x, std::size_t i,
                                 std::uint64_t draw) const {
  return 10.0 * std::cos(2.0 * std::numbers::pi * (x[i] - 1.0)) + noise(x, draw);
}

double SyntheticFunction::group1_raw(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i <= 3; ++i) acc += (x[i] - x[i + 1]) * (x[i] - x[i + 1]);
  for (std::size_t i = 0; i <= 4; ++i) acc += a_term(x, i, 100 + i);
  return acc;
}

double SyntheticFunction::group2_raw(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t k = 5; k <= 8; ++k) {
    const double d = x[k] - x[k + 1];
    acc += d * d * d * d;
  }
  for (std::size_t k = 5; k <= 9; ++k) acc += a_term(x, k, 200 + k);
  return acc;
}

double SyntheticFunction::group3_raw(const std::vector<double>& x) const {
  double acc = 0.0;
  switch (which_) {
    case SynthCase::Case1:
      for (std::size_t u = 10; u <= 14; ++u) acc += x[u];
      for (std::size_t v = 15; v <= 19; ++v) {
        acc += std::cos(2.0 * std::numbers::pi * x[v]);
      }
      break;
    case SynthCase::Case2:
      for (std::size_t u = 10; u <= 14; ++u) acc += x[u] * x[u];
      for (std::size_t v = 15; v <= 19; ++v) acc += x[v];
      break;
    case SynthCase::Case3:
      for (std::size_t u = 10; u <= 14; ++u) acc += x[u] * x[u];
      for (std::size_t v = 15; v <= 19; ++v) acc += x[v] * x[v];
      break;
    case SynthCase::Case4:
      for (std::size_t t = 0; t < 5; ++t) {
        const double xu = x[10 + t];
        const double xv = x[15 + t];
        const double term = xu * xv * xv * xv * xv;  // x_u * x_v^4
        acc += term * term;
      }
      break;
    case SynthCase::Case5:
      for (std::size_t t = 0; t < 5; ++t) {
        const double xu = x[10 + t];
        const double xv8 = std::pow(x[15 + t], 8.0);
        const double term = xu * xv8;  // x_u * x_v^8
        acc += term * term;
      }
      break;
  }
  return acc + noise(x, 300);
}

double SyntheticFunction::group4_raw(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t v = 15; v <= 19; ++v) {
    // Guard the pole at x_v = 0 (the paper's domain is continuous; exact
    // zeros only appear via deliberately crafted configurations).
    const double xv = std::abs(x[v]) < 1e-9 ? (x[v] < 0.0 ? -1e-9 : 1e-9) : x[v];
    acc += 1.0 / xv;
  }
  return acc + noise(x, 400);
}

std::array<double, 4> SyntheticFunction::raw_abs_groups(const std::vector<double>& x) const {
  if (x.size() != kDim) {
    throw std::invalid_argument("SyntheticFunction: expected 20 variables");
  }
  return {std::abs(group1_raw(x)), std::abs(group2_raw(x)), std::abs(group3_raw(x)),
          std::abs(group4_raw(x))};
}

GroupValues SyntheticFunction::evaluate_groups(const std::vector<double>& x) const {
  if (x.size() != kDim) {
    throw std::invalid_argument("SyntheticFunction: expected 20 variables");
  }
  auto log_abs = [](double v) {
    const double a = std::abs(v);
    return std::log(a > 1e-12 ? a : 1e-12);
  };
  GroupValues out;
  out.groups[0] = log_abs(group1_raw(x));
  out.groups[1] = log_abs(group2_raw(x));
  out.groups[2] = log_abs(group3_raw(x));
  out.groups[3] = log_abs(group4_raw(x));
  return out;
}

double SyntheticFunction::evaluate(const std::vector<double>& x) const {
  return evaluate_groups(x).total();
}

}  // namespace tunekit::synth
