#pragma once
// The paper's five 20-dimensional synthetic objective functions (Fig. 1 and
// Table I). Four groups of five variables each; Group 3's body varies per
// case and mixes in Group 4's variables with increasing strength:
//
//   Group 1:  Σ_{i=0..3} (x_i − x_{i+1})^2 + Σ_{i=0..4} A_i
//   Group 2:  Σ_{k=5..8} (x_k − x_{k+1})^4 + Σ_{k=5..9} A_k
//   Group 3:  per Table I (cases 1-5)
//   Group 4:  Σ_{v=15..19} 1/x_v + ε
//   A_i = 10 cos(2π (x_i − 1)) + ε,   x_i ∈ [−50, 50]
//
// A log(|·|) transform is applied to each group's raw value; the objective
// is the sum of the transformed groups. Noise ε is deterministic per
// (configuration, seed, draw index) so evaluations are reproducible and
// thread-safe while still behaving like runtime jitter.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tunekit::synth {

enum class SynthCase { Case1 = 1, Case2, Case3, Case4, Case5 };

const char* to_string(SynthCase c);

/// Qualitative Group-4-on-Group-3 influence per Table I.
const char* group4_influence_label(SynthCase c);

struct GroupValues {
  /// log(|raw group value|) per group.
  std::array<double, 4> groups{};
  double total() const { return groups[0] + groups[1] + groups[2] + groups[3]; }
};

class SyntheticFunction {
 public:
  static constexpr std::size_t kDim = 20;
  static constexpr double kLo = -50.0;
  static constexpr double kHi = 50.0;

  explicit SyntheticFunction(SynthCase which, double noise_scale = 0.01,
                             std::uint64_t noise_seed = 0);

  SynthCase which() const { return which_; }
  double noise_scale() const { return noise_scale_; }

  /// Per-group transformed values; total() is the objective (minimized).
  GroupValues evaluate_groups(const std::vector<double>& x) const;
  double evaluate(const std::vector<double>& x) const;

  /// |raw| group values before the log transform — the "group output" whose
  /// variability Table II reports.
  std::array<double, 4> raw_abs_groups(const std::vector<double>& x) const;

  /// Raw (pre-log) group values, noise included — exposed for tests.
  double group1_raw(const std::vector<double>& x) const;
  double group2_raw(const std::vector<double>& x) const;
  double group3_raw(const std::vector<double>& x) const;
  double group4_raw(const std::vector<double>& x) const;

 private:
  /// Deterministic U(0, noise_scale) draw keyed by (x, draw index).
  double noise(const std::vector<double>& x, std::uint64_t draw) const;
  double a_term(const std::vector<double>& x, std::size_t i, std::uint64_t draw) const;

  SynthCase which_;
  double noise_scale_;
  std::uint64_t noise_seed_;
};

}  // namespace tunekit::synth
