#pragma once
// Nelder-Mead downhill simplex, used (a) to maximize acquisition functions
// inside the unit cube and (b) to optimize GP hyperparameters against the
// log marginal likelihood. Derivative-free on purpose: neither surface has
// cheap exact gradients in our setting.

#include <functional>
#include <vector>

namespace tunekit::bo {

struct NelderMeadOptions {
  std::size_t max_iters = 200;
  /// Convergence: simplex function-value spread below this.
  double f_tol = 1e-9;
  /// Convergence also requires the simplex diameter below this — equal
  /// function values at distinct vertices (symmetric objectives) must not
  /// terminate the search; they force a shrink instead.
  double x_tol = 1e-7;
  /// Initial simplex step per coordinate.
  double initial_step = 0.1;
  /// Optional box bounds applied by clamping (empty = unbounded).
  std::vector<double> lower;
  std::vector<double> upper;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
};

/// Minimize `f` starting from `x0`.
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options = {});

}  // namespace tunekit::bo
