#pragma once
// Acquisition functions balancing exploration and exploitation
// (paper §III-A), plus the candidate-set + local-refinement maximizer.

#include <functional>
#include <vector>

#include "bo/gp.hpp"
#include "common/rng.hpp"

namespace tunekit::bo {

enum class AcquisitionKind { ExpectedImprovement, ProbabilityOfImprovement, LowerConfidenceBound };

const char* to_string(AcquisitionKind kind);

struct AcquisitionParams {
  /// EI / PI exploration jitter.
  double xi = 0.01;
  /// LCB exploration weight (we minimize, so LCB = mean - beta * sd; its
  /// score is the negated bound).
  double beta = 2.0;
};

/// Standard normal pdf / cdf.
double normal_pdf(double z);
double normal_cdf(double z);

/// Acquisition score at a predicted (mean, sd) given the incumbent best
/// objective value. Higher is better (for all kinds).
double acquisition_score(AcquisitionKind kind, double mean, double sd, double best,
                         const AcquisitionParams& params);

struct AcquisitionMaximizerOptions {
  std::size_t n_candidates = 512;
  /// Fraction of candidates drawn as perturbations of the incumbent best
  /// point (local exploitation); the rest are uniform.
  double local_fraction = 0.25;
  double local_sigma = 0.08;
  /// Nelder-Mead refinement iterations from the best candidate (0 = none).
  std::size_t refine_iters = 40;
};

/// Maximize the acquisition over the unit cube; `incumbent_unit` may be
/// empty (no local candidates then). `accept` filters candidates (constraint
/// feasibility after decoding); refined points failing `accept` fall back to
/// the best accepted candidate. Returns the chosen unit-cube point.
std::vector<double> maximize_acquisition(
    const GaussianProcess& gp, AcquisitionKind kind, const AcquisitionParams& params,
    double best_value, const std::vector<double>& incumbent_unit, tunekit::Rng& rng,
    const AcquisitionMaximizerOptions& options,
    const std::function<bool(const std::vector<double>&)>& accept);

}  // namespace tunekit::bo
