#pragma once
// Additive Gaussian process (Kandasamy et al., ICML'15): the covariance is a
// sum of independent kernels over disjoint coordinate groups,
//
//   k(x, x') = Σ_g  k_g(x_g, x'_g).
//
// This models objectives that decompose as f(x) = Σ_g f_g(x_g) and is the
// "decomposition" strategy of the paper's related work — effective when the
// decomposition is known, but *finding* it needs the expensive
// orthogonality analysis (stats/orthogonality.hpp) the paper replaces.
//
// predict_group() exposes each group's posterior contribution so the
// acquisition can be maximized group-by-group — the key efficiency of
// additive BO.

#include <vector>

#include "bo/kernels.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace tunekit::bo {

class AdditiveGp {
 public:
  /// `groups`: disjoint coordinate index sets covering a subset of [0, D).
  AdditiveGp(std::vector<std::vector<std::size_t>> groups,
             KernelKind kind = KernelKind::Matern52);

  std::size_t n_groups() const { return groups_.size(); }
  const std::vector<std::vector<std::size_t>>& groups() const { return groups_; }

  /// Fit on full-dimensional unit-cube inputs.
  void fit(linalg::Matrix x, std::vector<double> y);

  /// Fit with hyperparameter optimization (one signal variance and one
  /// isotropic lengthscale per group + shared noise).
  void fit_with_hyperopt(linalg::Matrix x, std::vector<double> y, tunekit::Rng& rng,
                         std::size_t n_restarts = 2, std::size_t max_iters = 80);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
    double stddev() const;
  };

  /// Full posterior at a point.
  Prediction predict(const std::vector<double>& point) const;

  /// Posterior of group g's additive component at a point (only the group's
  /// coordinates matter). Mean contributions sum to the full mean minus the
  /// shared offset.
  Prediction predict_group(std::size_t g, const std::vector<double>& point) const;

  double log_marginal_likelihood() const { return lml_; }
  bool fitted() const { return fitted_; }
  std::size_t dim() const { return dim_; }

 private:
  double group_kernel(std::size_t g, const std::vector<double>& a,
                      const std::vector<double>& b) const;
  void refit();

  std::vector<std::vector<std::size_t>> groups_;
  KernelKind kind_;
  std::size_t dim_ = 0;

  /// Per-group (signal variance, lengthscale); shared noise.
  std::vector<double> signal_;
  std::vector<double> lengthscale_;
  double noise_ = 1e-6;

  linalg::Matrix x_;
  std::vector<double> y_raw_;
  double y_shift_ = 0.0;
  double y_scale_ = 1.0;
  linalg::Matrix chol_;
  std::vector<double> alpha_;
  double lml_ = 0.0;
  bool fitted_ = false;
};

}  // namespace tunekit::bo
