#include "bo/additive_bo.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "search/samplers.hpp"

namespace tunekit::bo {

AdditiveBo::AdditiveBo(std::vector<std::vector<std::size_t>> groups,
                       AdditiveBoOptions options)
    : groups_(std::move(groups)), options_(options) {
  if (groups_.empty()) throw std::invalid_argument("AdditiveBo: no groups");
}

search::SearchResult AdditiveBo::run(search::Objective& objective,
                                     const search::SearchSpace& space) const {
  Stopwatch watch;
  tunekit::Rng rng(options_.seed);
  const std::size_t dims = space.size();

  // Groups must cover a subset of the space; uncovered coordinates keep the
  // incumbent's values (they are not modeled).
  std::set<std::size_t> covered;
  for (const auto& g : groups_) {
    for (std::size_t idx : g) {
      if (idx >= dims) throw std::invalid_argument("AdditiveBo: group index out of range");
      covered.insert(idx);
    }
  }

  // The active decomposition; the regroup hook may re-cut it mid-run.
  std::vector<std::vector<std::size_t>> groups = groups_;
  bool regrouped = false;

  search::SearchResult result;
  result.method = "additive-bo";

  std::vector<std::vector<double>> units;
  std::vector<double> values;

  auto evaluate = [&](const search::Config& config) {
    const double v = objective.evaluate(config);
    units.push_back(space.encode_unit(config));
    values.push_back(v);
    if (v < result.best_value) {
      result.best_value = v;
      result.best_config = config;
    }
    result.values.push_back(v);
    result.trajectory.push_back(result.best_value);

    if (options_.regroup_hook) {
      auto revised = options_.regroup_hook(units, values);
      if (revised && !revised->empty() && *revised != groups) {
        bool valid = true;
        for (const auto& g : *revised) {
          for (std::size_t idx : g) valid = valid && idx < dims;
        }
        if (valid) {
          log_info("additive-bo: adopting revised decomposition (",
                   revised->size(), " groups, ", values.size(), " evals kept)");
          groups = std::move(*revised);
          regrouped = true;
        }
      }
    }
  };

  for (const auto& config : search::sample_valid_configs(
           space, std::min(options_.n_init, options_.max_evals), rng)) {
    evaluate(config);
  }

  AdditiveGp gp(groups, options_.kernel);
  std::size_t iteration = 0;
  while (values.size() < options_.max_evals) {
    if (regrouped) {
      // Migrate, don't discard: the archive is full-dimensional, so a
      // re-cut only means refitting the additive GP over the new groups.
      gp = AdditiveGp(groups, options_.kernel);
      regrouped = false;
    }
    linalg::Matrix x(units.size(), dims);
    for (std::size_t r = 0; r < units.size(); ++r) {
      for (std::size_t k = 0; k < dims; ++k) x(r, k) = units[r][k];
    }

    try {
      if (options_.hyperopt_every > 0 && iteration % options_.hyperopt_every == 0) {
        gp.fit_with_hyperopt(std::move(x), values, rng, options_.hyperopt_restarts,
                             options_.hyperopt_max_iters);
      } else {
        gp.fit(std::move(x), values);
      }
    } catch (const std::exception& e) {
      log_warn("additive-bo: surrogate failed (", e.what(), "); random step");
      evaluate(space.sample_valid(rng));
      ++iteration;
      continue;
    }

    // Group-wise acquisition maximization: each group's component is
    // optimized independently over candidate values of its coordinates.
    std::vector<double> proposal_unit = space.encode_unit(result.best_config);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::vector<double> best_coords;
      double best_score = -std::numeric_limits<double>::infinity();
      std::vector<double> candidate = proposal_unit;
      for (std::size_t c = 0; c < options_.group_candidates; ++c) {
        for (std::size_t idx : groups[g]) candidate[idx] = rng.uniform();
        const auto pred = gp.predict_group(g, candidate);
        // Per-group LCB: group contribution mean minus exploration bonus.
        const double score = acquisition_score(AcquisitionKind::LowerConfidenceBound,
                                               pred.mean, pred.stddev(), 0.0,
                                               options_.acq_params);
        if (score > best_score) {
          best_score = score;
          best_coords.clear();
          for (std::size_t idx : groups[g]) best_coords.push_back(candidate[idx]);
        }
      }
      std::size_t k = 0;
      for (std::size_t idx : groups[g]) proposal_unit[idx] = best_coords[k++];
    }

    search::Config proposal = space.decode_unit(proposal_unit);
    if (!space.is_valid(proposal)) {
      if (space.has_repair()) proposal = space.repair(std::move(proposal));
      if (!space.is_valid(proposal)) proposal = space.sample_valid(rng);
    }
    // Duplicate guard for discrete spaces.
    const auto is_dup = [&](const std::vector<double>& u) {
      for (const auto& seen : units) {
        bool same = true;
        for (std::size_t k = 0; k < dims && same; ++k) {
          same = std::abs(seen[k] - u[k]) < 1e-12;
        }
        if (same) return true;
      }
      return false;
    };
    if (is_dup(space.encode_unit(proposal))) proposal = space.sample_valid(rng);

    evaluate(proposal);
    ++iteration;
  }

  result.evaluations = values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::bo
