#pragma once
// Transfer learning between tuning tasks (paper §VIII: Case Study 2 reuses
// Case Study 1's configuration database).
//
// A GP is fitted to the source task's evaluations (in unit-cube coordinates
// shared by both tasks) and its posterior mean becomes the *prior mean* of
// the target task's GP. The target GP then models only the residual between
// the tasks, which needs far fewer target evaluations when the tasks are
// related — the same effect GPTune's multitask learning exploits.

#include <memory>
#include <vector>

#include "bo/gp.hpp"
#include "common/rng.hpp"
#include "search/eval_db.hpp"
#include "search/space.hpp"

namespace tunekit::bo {

class TransferPrior {
 public:
  /// Fit a source-task GP from recorded evaluations. `scale` multiplies the
  /// source prediction before use (1.0 = same magnitude; use e.g. the ratio
  /// of baseline runtimes when tasks differ in scale).
  static TransferPrior fit(const search::SearchSpace& space,
                           const std::vector<search::Evaluation>& source_evals,
                           tunekit::Rng& rng, KernelKind kind = KernelKind::Matern52,
                           double scale = 1.0);

  /// Source prediction at a unit-cube point.
  double mean_at(const std::vector<double>& unit_point) const;

  std::size_t source_points() const { return gp_ ? gp_->n_points() : 0; }
  double scale() const { return scale_; }

 private:
  TransferPrior() = default;

  std::shared_ptr<GaussianProcess> gp_;
  double scale_ = 1.0;
};

}  // namespace tunekit::bo
