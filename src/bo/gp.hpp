#pragma once
// Gaussian-process surrogate over unit-cube inputs.
//
// Targets are standardized internally; an optional prior-mean function (the
// transfer-learning hook) is subtracted before standardization so the GP
// models the *residual* between the target task and the source task's
// prediction — the mechanism behind the CS1 -> CS2 transfer in the paper.
//
// Training is the classic O(N^3) Cholesky pipeline, which is exactly the
// cost the paper cites as the reason joint high-dimensional searches need
// disproportionally many evaluations (bench/perf_gp_scaling measures it).

#include <functional>
#include <optional>
#include <vector>

#include "bo/kernels.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace tunekit::bo {

class GaussianProcess {
 public:
  explicit GaussianProcess(KernelKind kind = KernelKind::Matern52) : kind_(kind) {}

  KernelKind kernel_kind() const { return kind_; }

  /// Prior mean subtracted from targets before fitting (transfer learning);
  /// call before fit(). Empty function = zero prior mean.
  void set_prior_mean(std::function<double(const std::vector<double>&)> prior);
  bool has_prior_mean() const { return static_cast<bool>(prior_mean_); }

  void set_hyperparams(GpHyperparams hp) { hp_ = std::move(hp); }
  const GpHyperparams& hyperparams() const { return hp_; }

  /// Fit on x (rows = points, unit cube) and y using current hyperparameters
  /// (defaults to isotropic if none were set for this dimension).
  void fit(linalg::Matrix x, std::vector<double> y);

  /// Fit with hyperparameter optimization: multistart Nelder-Mead on the
  /// negative log marginal likelihood over log-hyperparameters.
  void fit_with_hyperopt(linalg::Matrix x, std::vector<double> y, tunekit::Rng& rng,
                         std::size_t n_restarts = 3, std::size_t max_iters = 120);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
    double stddev() const;
  };

  Prediction predict(const std::vector<double>& point) const;

  /// Log marginal likelihood of the current fit (standardized targets).
  double log_marginal_likelihood() const { return lml_; }

  /// Leave-one-out cross-validation diagnostics (Rasmussen & Williams
  /// §5.4.2), computed from the existing Cholesky factor without refitting.
  /// Use to judge whether the surrogate is trustworthy before relying on
  /// its suggestions.
  struct LooDiagnostics {
    /// LOO predictive mean/variance per training point (raw target units).
    std::vector<double> mean;
    std::vector<double> variance;
    /// (y_i − μ_i) / σ_i — should look standard normal when well specified.
    std::vector<double> standardized_residuals;
    double rmse = 0.0;
    /// Fraction of targets inside their 95% predictive interval.
    double coverage95 = 0.0;
    /// Mean log predictive density (higher is better).
    double mean_log_density = 0.0;
  };
  LooDiagnostics leave_one_out() const;

  bool fitted() const { return fitted_; }
  std::size_t n_points() const { return x_.rows(); }
  std::size_t dim() const { return x_.cols(); }

  /// Diagonal jitter the last (re)fit needed to factor the Gram matrix
  /// (0 = it was numerically PD as-is). A persistently non-zero value means
  /// the model is rank-deficient — duplicate training rows with near-zero
  /// noise — and its uncertainty estimates should be treated with suspicion.
  double last_jitter() const { return last_jitter_; }

 private:
  void refit();

  KernelKind kind_;
  GpHyperparams hp_;
  std::function<double(const std::vector<double>&)> prior_mean_;

  linalg::Matrix x_;
  std::vector<double> y_raw_;
  std::vector<double> y_std_;  // standardized residuals
  double y_shift_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix chol_;
  std::vector<double> alpha_;
  double lml_ = 0.0;
  double last_jitter_ = 0.0;
  bool fitted_ = false;
};

}  // namespace tunekit::bo
