#include "bo/transfer.hpp"

#include <stdexcept>

namespace tunekit::bo {

TransferPrior TransferPrior::fit(const search::SearchSpace& space,
                                 const std::vector<search::Evaluation>& source_evals,
                                 tunekit::Rng& rng, KernelKind kind, double scale) {
  if (source_evals.empty()) {
    throw std::invalid_argument("TransferPrior::fit: no source evaluations");
  }
  linalg::Matrix x(source_evals.size(), space.size());
  std::vector<double> y(source_evals.size());
  for (std::size_t i = 0; i < source_evals.size(); ++i) {
    const auto unit = space.encode_unit(source_evals[i].config);
    for (std::size_t k = 0; k < unit.size(); ++k) x(i, k) = unit[k];
    y[i] = source_evals[i].value;
  }
  TransferPrior prior;
  prior.gp_ = std::make_shared<GaussianProcess>(kind);
  prior.gp_->fit_with_hyperopt(std::move(x), std::move(y), rng, /*n_restarts=*/3);
  prior.scale_ = scale;
  return prior;
}

double TransferPrior::mean_at(const std::vector<double>& unit_point) const {
  if (!gp_) throw std::runtime_error("TransferPrior: not fitted");
  return scale_ * gp_->predict(unit_point).mean;
}

}  // namespace tunekit::bo
