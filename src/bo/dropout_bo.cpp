#include "bo/dropout_bo.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "search/samplers.hpp"

namespace tunekit::bo {

search::SearchResult DropoutBo::run(search::Objective& objective,
                                    const search::SearchSpace& space) const {
  Stopwatch watch;
  tunekit::Rng rng(options_.seed);
  const std::size_t total_dims = space.size();
  const std::size_t d = std::min(options_.active_dims, total_dims);

  search::SearchResult result;
  result.method = "dropout-bo";

  std::vector<search::Config> configs;
  std::vector<std::vector<double>> units;
  std::vector<double> values;

  auto evaluate = [&](const search::Config& config) {
    const double v = objective.evaluate(config);
    configs.push_back(config);
    units.push_back(space.encode_unit(config));
    values.push_back(v);
    if (v < result.best_value) {
      result.best_value = v;
      result.best_config = config;
    }
    result.values.push_back(v);
    result.trajectory.push_back(result.best_value);
  };

  for (const auto& config : search::sample_valid_configs(
           space, std::min(options_.n_init, options_.max_evals), rng)) {
    evaluate(config);
  }

  GaussianProcess gp(options_.kernel);
  std::size_t iteration = 0;
  while (values.size() < options_.max_evals) {
    // Pick this iteration's active subspace.
    const auto active = rng.sample_without_replacement(total_dims, d);

    // Training inputs restricted to the active dimensions. The projection
    // makes the model myopic — exactly the weakness the paper points out.
    linalg::Matrix x(units.size(), d);
    for (std::size_t r = 0; r < units.size(); ++r) {
      for (std::size_t k = 0; k < d; ++k) x(r, k) = units[r][active[k]];
    }

    try {
      if (options_.hyperopt_every > 0 && iteration % options_.hyperopt_every == 0) {
        gp.set_hyperparams(GpHyperparams::isotropic(d));
        gp.fit_with_hyperopt(std::move(x), values, rng, options_.hyperopt_restarts,
                             options_.hyperopt_max_iters);
      } else {
        if (gp.dim() != d) gp.set_hyperparams(GpHyperparams::isotropic(d));
        gp.fit(std::move(x), values);
      }
    } catch (const std::exception& e) {
      log_warn("dropout-bo: surrogate failed (", e.what(), "); random step");
      evaluate(space.sample_valid(rng));
      ++iteration;
      continue;
    }

    // Incumbent's active coordinates seed the local candidates.
    const auto best_unit = space.encode_unit(result.best_config);
    std::vector<double> incumbent_active(d);
    for (std::size_t k = 0; k < d; ++k) incumbent_active[k] = best_unit[active[k]];

    const auto active_point = maximize_acquisition(
        gp, options_.acquisition, options_.acq_params, result.best_value,
        incumbent_active, rng, options_.maximizer, nullptr);

    // Assemble the full proposal: active coords from the acquisition,
    // dropped coords from the incumbent or at random.
    std::vector<double> unit(total_dims);
    for (std::size_t i = 0; i < total_dims; ++i) {
      unit[i] = options_.fill_from_best ? best_unit[i] : rng.uniform();
    }
    for (std::size_t k = 0; k < d; ++k) unit[active[k]] = active_point[k];

    search::Config proposal = space.decode_unit(unit);
    if (!space.is_valid(proposal)) {
      proposal = space.has_repair() ? space.repair(std::move(proposal))
                                    : space.sample_valid(rng);
      if (!space.is_valid(proposal)) proposal = space.sample_valid(rng);
    }
    evaluate(proposal);
    ++iteration;
  }

  result.evaluations = values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::bo
