#include "bo/rembo.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace tunekit::bo {

std::vector<double> Rembo::project(const linalg::Matrix& embedding,
                                   const std::vector<double>& y) {
  // x_unit = clip(0.5 + A y, [0, 1]) — the embedding acts around the cube
  // center so y = 0 maps to the center configuration.
  std::vector<double> x = embedding.mul(y);
  for (double& v : x) v = std::clamp(0.5 + v, 0.0, 1.0);
  return x;
}

search::SearchResult Rembo::run(search::Objective& objective,
                                const search::SearchSpace& space) const {
  Stopwatch watch;
  tunekit::Rng rng(options_.seed);
  const std::size_t total_dims = space.size();
  const std::size_t d = std::min(options_.embedding_dims, total_dims);
  const double box = std::sqrt(static_cast<double>(d));

  // Gaussian random embedding, scaled so typical |A y| spans the cube.
  linalg::Matrix embedding(total_dims, d);
  for (std::size_t i = 0; i < total_dims; ++i) {
    for (std::size_t k = 0; k < d; ++k) {
      embedding(i, k) = rng.normal() / (2.0 * box);
    }
  }

  search::SearchResult result;
  result.method = "rembo";

  linalg::Matrix ys(0, 0);
  std::vector<std::vector<double>> y_points;
  std::vector<double> values;

  auto evaluate_y = [&](const std::vector<double>& y) {
    const auto unit = project(embedding, y);
    search::Config config = space.decode_unit(unit);
    if (!space.is_valid(config)) {
      if (space.has_repair()) config = space.repair(std::move(config));
      if (!space.is_valid(config)) return false;  // infeasible projection
    }
    const double v = objective.evaluate(config);
    y_points.push_back(y);
    values.push_back(v);
    if (v < result.best_value) {
      result.best_value = v;
      result.best_config = config;
    }
    result.values.push_back(v);
    result.trajectory.push_back(result.best_value);
    return true;
  };

  // Initial design in the embedded box.
  std::size_t guard = 0;
  while (values.size() < std::min(options_.n_init, options_.max_evals) &&
         guard++ < 100 * options_.n_init) {
    std::vector<double> y(d);
    for (auto& v : y) v = rng.uniform(-box, box);
    evaluate_y(y);
  }
  if (values.empty()) {
    throw std::runtime_error("rembo: no feasible projection found in the initial design");
  }

  // Unit-scale the embedded box for the GP.
  auto y_to_unit = [&](const std::vector<double>& y) {
    std::vector<double> u(d);
    for (std::size_t k = 0; k < d; ++k) u[k] = (y[k] + box) / (2.0 * box);
    return u;
  };
  auto unit_to_y = [&](const std::vector<double>& u) {
    std::vector<double> y(d);
    for (std::size_t k = 0; k < d; ++k) y[k] = u[k] * 2.0 * box - box;
    return y;
  };

  GaussianProcess gp(options_.kernel);
  std::size_t iteration = 0;
  while (values.size() < options_.max_evals && guard++ < 100 * options_.max_evals) {
    linalg::Matrix x(y_points.size(), d);
    std::size_t best_idx = 0;
    for (std::size_t r = 0; r < y_points.size(); ++r) {
      const auto u = y_to_unit(y_points[r]);
      for (std::size_t k = 0; k < d; ++k) x(r, k) = u[k];
      if (values[r] < values[best_idx]) best_idx = r;
    }

    try {
      if (options_.hyperopt_every > 0 && iteration % options_.hyperopt_every == 0) {
        gp.set_hyperparams(GpHyperparams::isotropic(d));
        gp.fit_with_hyperopt(std::move(x), values, rng, options_.hyperopt_restarts,
                             options_.hyperopt_max_iters);
      } else {
        gp.fit(std::move(x), values);
      }
    } catch (const std::exception& e) {
      log_warn("rembo: surrogate failed (", e.what(), "); random step");
      std::vector<double> y(d);
      for (auto& v : y) v = rng.uniform(-box, box);
      evaluate_y(y);
      ++iteration;
      continue;
    }

    const auto proposal_unit = maximize_acquisition(
        gp, options_.acquisition, options_.acq_params, values[best_idx],
        y_to_unit(y_points[best_idx]), rng, options_.maximizer, nullptr);
    if (!evaluate_y(unit_to_y(proposal_unit))) {
      // Infeasible projection: fall back to a random embedded point.
      std::vector<double> y(d);
      for (auto& v : y) v = rng.uniform(-box, box);
      evaluate_y(y);
    }
    ++iteration;
  }

  result.evaluations = values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::bo
