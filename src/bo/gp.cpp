#include "bo/gp.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "bo/nelder_mead.hpp"
#include "common/log.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vecops.hpp"

namespace tunekit::bo {

double GaussianProcess::Prediction::stddev() const {
  return std::sqrt(std::max(0.0, variance));
}

void GaussianProcess::set_prior_mean(
    std::function<double(const std::vector<double>&)> prior) {
  prior_mean_ = std::move(prior);
  fitted_ = false;
}

void GaussianProcess::fit(linalg::Matrix x, std::vector<double> y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("GaussianProcess::fit: bad training data");
  }
  x_ = std::move(x);
  y_raw_ = std::move(y);
  if (hp_.lengthscales.size() != x_.cols()) {
    hp_ = GpHyperparams::isotropic(x_.cols());
  }
  refit();
}

void GaussianProcess::refit() {
  const std::size_t n = x_.rows();

  // Residuals against the prior mean, then standardization.
  std::vector<double> resid(n);
  for (std::size_t i = 0; i < n; ++i) {
    resid[i] = y_raw_[i] - (prior_mean_ ? prior_mean_(x_.row(i)) : 0.0);
  }
  double mean = 0.0;
  for (double v : resid) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : resid) var += (v - mean) * (v - mean);
  var = n > 1 ? var / static_cast<double>(n - 1) : 1.0;
  y_shift_ = mean;
  y_scale_ = var > 1e-300 ? std::sqrt(var) : 1.0;

  y_std_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_std_[i] = (resid[i] - y_shift_) / y_scale_;

  const linalg::Matrix gram = kernel_gram(kind_, x_, hp_);
  // Jitter escalation before the model is rejected: the quiet ladder
  // (1e-10 → 1e-6) handles ordinary round-off; if the Gram is genuinely
  // rank-deficient — duplicate configs with near-zero noise, exactly what a
  // tuning session that retries crashed candidates produces — a second,
  // wider ladder up to 1e-2 is tried, loudly, before the failure propagates
  // (hyperopt then scores the region at 1e12 and moves on).
  last_jitter_ = 0.0;
  try {
    chol_ = linalg::cholesky(gram, 1e-10, 1e-6, &last_jitter_);
  } catch (const std::exception&) {
    chol_ = linalg::cholesky(gram, 1e-5, 1e-2, &last_jitter_);
    log_warn("GP: Gram matrix rank-deficient; factored with escalated jitter ",
             last_jitter_, " (duplicate training points with near-zero noise?)");
  }
  alpha_ = linalg::solve_with_cholesky(chol_, y_std_);

  // LML = -1/2 y^T alpha - 1/2 log|K| - n/2 log 2π   (standardized y).
  const double quad = linalg::dot(y_std_, alpha_);
  const double logdet = linalg::log_det_from_cholesky(chol_);
  lml_ = -0.5 * quad - 0.5 * logdet -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  fitted_ = true;
}

void GaussianProcess::fit_with_hyperopt(linalg::Matrix x, std::vector<double> y,
                                        tunekit::Rng& rng, std::size_t n_restarts,
                                        std::size_t max_iters) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("GaussianProcess::fit_with_hyperopt: bad data");
  }
  x_ = std::move(x);
  y_raw_ = std::move(y);
  const std::size_t d = x_.cols();
  if (hp_.lengthscales.size() != d) hp_ = GpHyperparams::isotropic(d);

  // theta = [log sv, log ls_0..d-1, log nv]
  auto unpack = [d](const std::vector<double>& theta) {
    GpHyperparams hp;
    hp.signal_variance = std::exp(theta[0]);
    hp.lengthscales.resize(d);
    for (std::size_t i = 0; i < d; ++i) hp.lengthscales[i] = std::exp(theta[1 + i]);
    hp.noise_variance = std::exp(theta[1 + d]);
    return hp;
  };

  auto neg_lml = [&](const std::vector<double>& theta) {
    GpHyperparams saved = hp_;
    hp_ = unpack(theta);
    double value;
    try {
      refit();
      value = -lml_;
    } catch (const std::exception&) {
      value = 1e12;  // non-PD Gram even with jitter: reject this region
    }
    hp_ = std::move(saved);
    return value;
  };

  NelderMeadOptions nm;
  nm.max_iters = max_iters;
  nm.initial_step = 0.5;
  const double kLogLsLo = std::log(1e-2), kLogLsHi = std::log(1e2);
  const double kLogSvLo = std::log(1e-4), kLogSvHi = std::log(1e4);
  const double kLogNvLo = std::log(1e-8), kLogNvHi = std::log(1.0);
  nm.lower.assign(d + 2, kLogLsLo);
  nm.upper.assign(d + 2, kLogLsHi);
  nm.lower[0] = kLogSvLo;
  nm.upper[0] = kLogSvHi;
  nm.lower[d + 1] = kLogNvLo;
  nm.upper[d + 1] = kLogNvHi;

  std::vector<double> best_theta;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, n_restarts);
       ++restart) {
    std::vector<double> theta0(d + 2);
    if (restart == 0) {
      // Warm start from the current hyperparameters.
      theta0[0] = std::log(hp_.signal_variance);
      for (std::size_t i = 0; i < d; ++i) theta0[1 + i] = std::log(hp_.lengthscales[i]);
      theta0[1 + d] = std::log(std::max(hp_.noise_variance, 1e-8));
    } else {
      theta0[0] = rng.uniform(std::log(0.1), std::log(10.0));
      for (std::size_t i = 0; i < d; ++i) {
        theta0[1 + i] = rng.uniform(std::log(0.05), std::log(2.0));
      }
      theta0[1 + d] = rng.uniform(std::log(1e-6), std::log(1e-2));
    }
    const auto res = nelder_mead(neg_lml, std::move(theta0), nm);
    if (res.value < best_value) {
      best_value = res.value;
      best_theta = res.x;
    }
  }

  if (!best_theta.empty() && best_value < 1e12) {
    hp_ = unpack(best_theta);
  } else {
    log_warn("GP hyperopt failed to find a PD model; keeping previous hyperparameters");
  }
  refit();
}

GaussianProcess::LooDiagnostics GaussianProcess::leave_one_out() const {
  if (!fitted_) throw std::runtime_error("GaussianProcess::leave_one_out before fit");
  const std::size_t n = x_.rows();

  // Diagonal of K^{-1} via column solves against the Cholesky factor.
  std::vector<double> kinv_diag(n);
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    e[i] = 1.0;
    const auto col = linalg::solve_with_cholesky(chol_, e);
    kinv_diag[i] = col[i];
    e[i] = 0.0;
  }

  LooDiagnostics out;
  out.mean.resize(n);
  out.variance.resize(n);
  out.standardized_residuals.resize(n);
  double sse = 0.0;
  std::size_t covered = 0;
  double log_density = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Standardized-unit LOO prediction (R&W eq. 5.12).
    const double var_std = 1.0 / kinv_diag[i];
    const double mean_std = y_std_[i] - alpha_[i] * var_std;
    const double prior = prior_mean_ ? prior_mean_(x_.row(i)) : 0.0;
    out.mean[i] = prior + y_shift_ + y_scale_ * mean_std;
    out.variance[i] = y_scale_ * y_scale_ * var_std;
    const double sd = std::sqrt(std::max(out.variance[i], 1e-300));
    const double resid = y_raw_[i] - out.mean[i];
    out.standardized_residuals[i] = resid / sd;
    sse += resid * resid;
    if (std::abs(resid) <= 1.96 * sd) ++covered;
    log_density += -0.5 * std::log(2.0 * std::numbers::pi * out.variance[i]) -
                   0.5 * resid * resid / out.variance[i];
  }
  out.rmse = std::sqrt(sse / static_cast<double>(n));
  out.coverage95 = static_cast<double>(covered) / static_cast<double>(n);
  out.mean_log_density = log_density / static_cast<double>(n);
  return out;
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& point) const {
  if (!fitted_) throw std::runtime_error("GaussianProcess::predict before fit");
  if (point.size() != x_.cols()) {
    throw std::invalid_argument("GaussianProcess::predict: dimension mismatch");
  }
  const std::vector<double> k = kernel_cross(kind_, x_, point, hp_);
  const double mean_std = linalg::dot(k, alpha_);
  const std::vector<double> v = linalg::solve_lower(chol_, k);
  const double k_self = hp_.signal_variance + hp_.noise_variance;
  const double var_std = std::max(0.0, k_self - linalg::dot(v, v));

  Prediction p;
  const double prior = prior_mean_ ? prior_mean_(point) : 0.0;
  p.mean = prior + y_shift_ + y_scale_ * mean_std;
  p.variance = y_scale_ * y_scale_ * var_std;
  return p;
}

}  // namespace tunekit::bo
